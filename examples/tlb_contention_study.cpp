/**
 * @file
 * TLB contention study: uses the library's introspection API to watch
 * what actually happens inside the shared L2 TLB when two irregular
 * applications share the GPU — miss rates, walker pressure, stalled
 * warps, and how MASK's tokens change the picture — across a sweep of
 * shared L2 TLB sizes.
 *
 *   ./build/examples/tlb_contention_study
 */

#include <cstdio>

#include "sim/gpu.hh"
#include "sim/presets.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace mask;

    const BenchmarkParams &a = findBenchmark("MUM");
    const BenchmarkParams &b = findBenchmark("CONS");
    std::printf("Workload: MUM + CONS (both High/High in Table 2)\n\n");
    std::printf("%-8s %-10s %8s %8s %9s %9s %9s %8s\n", "L2TLB",
                "design", "IPC", "l2miss", "missLat", "walks",
                "warps/miss", "tokens");

    for (const std::uint32_t entries : {128u, 512u, 2048u}) {
        for (const DesignPoint point :
             {DesignPoint::SharedTlb, DesignPoint::Mask}) {
            GpuConfig cfg =
                applyDesignPoint(archByName("maxwell"), point);
            cfg.l2Tlb.entries = entries;
            Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
            gpu.run(20000);
            gpu.resetStats();
            gpu.run(60000);
            GpuStats s = gpu.collect();
            std::printf(
                "%-8u %-10s %8.2f %7.1f%% %9.0f %9llu %9.1f %8u\n",
                entries, designPointName(point),
                s.ipc[0] + s.ipc[1], 100.0 * s.l2Tlb.missRate(),
                s.tlbMissLatency.mean(),
                static_cast<unsigned long long>(s.walks),
                s.warpsPerMiss.mean(), s.tokens[0]);
        }
    }

    std::printf("\nThings to notice:\n"
                " - a bigger shared TLB cuts miss rates for both "
                "designs (capacity), but\n"
                " - MASK's tokens + bypass cache cut *thrashing* at "
                "the same capacity, and\n"
                " - the remaining misses complete faster (L2 bypass + "
                "golden queue).\n");
    return 0;
}
