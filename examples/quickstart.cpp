/**
 * @file
 * Quickstart: run one two-application workload (3DS + HISTO) on the
 * three main design points and print the headline metrics the paper
 * reports — weighted speedup, IPC throughput, unfairness, and the TLB
 * behaviour that explains them.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/check.hh"
#include "common/stats.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace {

int
run()
{
    using namespace mask;

    const GpuConfig arch = archByName("maxwell");
    Evaluator eval(defaultRunOptions());
    const std::vector<std::string> pair = {"3DS", "HISTO"};

    std::printf("Workload: 3DS_HISTO on %s (%u cores)\n",
                arch.name.c_str(), arch.numCores);
    std::printf("%-10s %8s %8s %8s %10s %10s %10s\n", "design", "WS",
                "IPC", "unfair", "L1TLBmiss", "L2TLBmiss", "walks");

    for (const DesignPoint point :
         {DesignPoint::SharedTlb, DesignPoint::Mask,
          DesignPoint::Ideal}) {
        const PairResult r = eval.evaluate(arch, point, pair);
        std::printf("%-10s %8.3f %8.3f %8.3f %10s %10s %10llu\n",
                    designPointName(point), r.weightedSpeedup,
                    r.ipcThroughput, r.unfairness,
                    pct(r.stats.l1Tlb.missRate()).c_str(),
                    pct(r.stats.l2Tlb.missRate()).c_str(),
                    static_cast<unsigned long long>(r.stats.walks));
    }
    return 0;
}

} // namespace

int
main()
{
    // A tripped hard invariant surfaces as one diagnostic block (and
    // a crash-repro file written by the runner) instead of an abort.
    try {
        return run();
    } catch (const mask::SimInvariantError &err) {
        std::fputs(err.diagnostic().c_str(), stderr);
        return 2;
    }
}
