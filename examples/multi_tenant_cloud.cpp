/**
 * @file
 * Multi-tenant cloud scenario: three tenants with different memory
 * behaviour share one GPU (the paper's motivating setting). Compares
 * the Static-partitioning product baseline (NVIDIA GRID / AMD FirePro
 * style), the SharedTLB MMU baseline, and MASK on throughput and
 * per-tenant slowdown (QoS).
 *
 *   ./build/examples/multi_tenant_cloud
 */

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

int
main()
{
    using namespace mask;

    // A latency-sensitive inference tenant (small working set), an
    // analytics tenant (irregular, large footprint), and a scientific
    // batch job (streaming).
    const std::vector<std::string> tenants = {"LPS", "MUM", "HISTO"};
    const GpuConfig arch = archByName("maxwell");
    Evaluator eval(defaultRunOptions());

    std::printf("Tenants: LPS (inference-like), MUM (analytics-like),"
                " HISTO (batch streaming)\n\n");
    std::printf("%-10s %8s %10s | per-tenant slowdown (alone/shared)\n",
                "design", "WS", "unfairness");

    for (const DesignPoint point :
         {DesignPoint::Static, DesignPoint::SharedTlb,
          DesignPoint::Mask, DesignPoint::Ideal}) {
        const PairResult r = eval.evaluate(arch, point, tenants);
        std::printf("%-10s %8.3f %10.3f |", designPointName(point),
                    r.weightedSpeedup, r.unfairness);
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            std::printf("  %s %.2fx", tenants[i].c_str(),
                        safeDiv(r.aloneIpc[i], r.sharedIpc[i]));
        }
        std::printf("\n");
    }

    std::printf("\nA cloud operator reads this as: MASK approaches "
                "Ideal throughput while keeping the worst tenant "
                "slowdown (QoS) below the static-partitioning "
                "product baseline.\n");
    return 0;
}
