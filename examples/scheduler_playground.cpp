/**
 * @file
 * DRAM scheduler playground: shows how the Address-Space-Aware DRAM
 * Scheduler's knobs trade translation latency against data row-buffer
 * locality. Sweeps the golden-queue bandwidth guard and prints the
 * latency split, row-buffer behaviour, and throughput.
 *
 *   ./build/examples/scheduler_playground
 */

#include <cstdio>

#include "sim/gpu.hh"
#include "sim/presets.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace mask;

    const BenchmarkParams &a = findBenchmark("3DS");
    const BenchmarkParams &b = findBenchmark("SCAN");
    std::printf("Workload: 3DS + SCAN, MASK-DRAM design, sweeping the "
                "golden-queue bandwidth guard\n\n");
    std::printf("%-12s %8s %10s %10s %10s %10s\n", "guard(cyc)",
                "IPC", "transLat", "dataLat", "rowHits", "rowConf");

    for (const Cycle guard : {0u, 25u, 100u, 400u, 1600u}) {
        GpuConfig cfg = applyDesignPoint(archByName("maxwell"),
                                         DesignPoint::MaskDram);
        cfg.mask.goldenMaxDelay = guard;
        Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
        gpu.run(20000);
        gpu.resetStats();
        gpu.run(60000);
        GpuStats s = gpu.collect();
        std::printf("%-12llu %8.2f %10.0f %10.0f %10llu %10llu\n",
                    static_cast<unsigned long long>(guard),
                    s.ipc[0] + s.ipc[1], s.dram.latency[1].mean(),
                    s.dram.latency[0].mean(),
                    static_cast<unsigned long long>(s.dram.rowHits),
                    static_cast<unsigned long long>(
                        s.dram.rowConflicts));
    }

    std::printf("\nguard = 0 is the paper's strict Golden Queue "
                "priority; larger guards let pending data row hits "
                "drain before a conflicting translation closes their "
                "row (Section 4.4's \"without sacrificing DRAM "
                "bandwidth utilization\").\n");
    return 0;
}
