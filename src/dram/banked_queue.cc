#include "dram/banked_queue.hh"

#include "common/check.hh"

namespace mask {

BankedRequestQueue::BankedRequestQueue(std::uint32_t num_banks)
    : banks_(num_banks)
{
}

void
BankedRequestQueue::linkHit(std::uint32_t node, BankIndex &bank)
{
    Node &n = nodes_[node];
    n.inHitChain = true;
    n.hitPrev = bank.hitTail;
    n.hitNext = kNil;
    if (bank.hitTail != kNil)
        nodes_[bank.hitTail].hitNext = node;
    else
        bank.hitHead = node;
    bank.hitTail = node;
}

void
BankedRequestQueue::unlinkHit(std::uint32_t node, BankIndex &bank)
{
    Node &n = nodes_[node];
    if (n.hitPrev != kNil)
        nodes_[n.hitPrev].hitNext = n.hitNext;
    else
        bank.hitHead = n.hitNext;
    if (n.hitNext != kNil)
        nodes_[n.hitNext].hitPrev = n.hitPrev;
    else
        bank.hitTail = n.hitPrev;
    n.hitPrev = n.hitNext = kNil;
    n.inHitChain = false;
}

void
BankedRequestQueue::push(const DramQueueEntry &e,
                         const std::vector<DramBank> &banks)
{
    std::uint32_t node;
    if (!freeNodes_.empty()) {
        node = freeNodes_.back();
        freeNodes_.pop_back();
    } else {
        node = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
    }
    Node &n = nodes_[node];
    n.entry = e;
    n.seq = nextSeq_++;
    n.hitPrev = n.hitNext = kNil;
    n.inHitChain = false;

    // Age list tail (youngest).
    n.agePrev = ageTail_;
    n.ageNext = kNil;
    if (ageTail_ != kNil)
        nodes_[ageTail_].ageNext = node;
    else
        ageHead_ = node;
    ageTail_ = node;

    // Bank FIFO tail.
    BankIndex &bank = banks_[e.bank];
    n.bankPrev = bank.tail;
    n.bankNext = kNil;
    if (bank.tail != kNil)
        nodes_[bank.tail].bankNext = node;
    else
        bank.head = node;
    bank.tail = node;
    ++bank.count;

    // Row-hit chain: appending keeps the chain age-ordered because
    // the new entry is the youngest in its bank.
    const DramBank &state = banks[e.bank];
    if (state.rowValid && state.openRow == e.row)
        linkHit(node, bank);

    ++size_;
}

DramQueueEntry
BankedRequestQueue::take(std::uint32_t node)
{
    Node &n = nodes_[node];
    BankIndex &bank = banks_[n.entry.bank];

    if (n.agePrev != kNil)
        nodes_[n.agePrev].ageNext = n.ageNext;
    else
        ageHead_ = n.ageNext;
    if (n.ageNext != kNil)
        nodes_[n.ageNext].agePrev = n.agePrev;
    else
        ageTail_ = n.agePrev;

    if (n.bankPrev != kNil)
        nodes_[n.bankPrev].bankNext = n.bankNext;
    else
        bank.head = n.bankNext;
    if (n.bankNext != kNil)
        nodes_[n.bankNext].bankPrev = n.bankPrev;
    else
        bank.tail = n.bankPrev;
    --bank.count;

    if (n.inHitChain)
        unlinkHit(node, bank);

    --size_;
    freeNodes_.push_back(node);
    return n.entry;
}

DramQueueEntry &
BankedRequestQueue::entry(std::uint32_t node)
{
    return nodes_[node].entry;
}

const DramQueueEntry &
BankedRequestQueue::entry(std::uint32_t node) const
{
    return nodes_[node].entry;
}

std::uint32_t
BankedRequestQueue::pick(const std::vector<DramBank> &banks, Cycle now,
                         std::uint32_t starvation_cap,
                         std::uint64_t *cap_escalations,
                         std::uint64_t *scanned)
{
    // The age-scan minima reduce to per-bank head minima: within a
    // bank the FIFO head is its oldest entry (and the hit-chain head
    // its oldest open-row hit), so the globally oldest serviceable
    // entry / row hit is the minimum sequence number over ready
    // banks' heads.
    std::uint32_t oldest = kNil;
    std::uint64_t oldest_seq = ~std::uint64_t{0};
    std::uint32_t hit = kNil;
    std::uint64_t hit_seq = ~std::uint64_t{0};

    for (std::uint32_t b = 0; b < banks_.size(); ++b) {
        const BankIndex &bank = banks_[b];
        if (bank.count == 0)
            continue;
        if (scanned != nullptr)
            ++*scanned;
        if (banks[b].readyAt > now)
            continue;
        const Node &head = nodes_[bank.head];
        if (head.seq < oldest_seq) {
            oldest = bank.head;
            oldest_seq = head.seq;
        }
        if (bank.hitHead != kNil) {
            const Node &hit_head = nodes_[bank.hitHead];
            if (hit_head.seq < hit_seq) {
                hit = bank.hitHead;
                hit_seq = hit_head.seq;
            }
        }
    }

    if (oldest == kNil)
        return kNil;

    if (hit != kNil && hit != oldest) {
        DramQueueEntry &entry = nodes_[oldest].entry;
        if (entry.bypassed >= starvation_cap) {
            if (cap_escalations != nullptr)
                ++*cap_escalations;
            return oldest;
        }
        ++entry.bypassed;
        return hit;
    }
    return oldest;
}

std::uint32_t
BankedRequestQueue::pickReference(const std::vector<DramBank> &banks,
                                  Cycle now,
                                  std::uint32_t starvation_cap,
                                  std::uint64_t *cap_escalations,
                                  std::uint64_t *scanned)
{
    std::uint32_t oldest = kNil;
    std::uint32_t hit = kNil;

    for (std::uint32_t n = ageHead_; n != kNil; n = nodes_[n].ageNext) {
        if (scanned != nullptr)
            ++*scanned;
        const DramQueueEntry &entry = nodes_[n].entry;
        const DramBank &bank = banks[entry.bank];
        if (bank.readyAt > now)
            continue;
        if (oldest == kNil)
            oldest = n;
        if (hit == kNil && bank.rowValid && bank.openRow == entry.row) {
            hit = n;
            break; // age-ordered walk: first row hit is oldest
        }
    }

    if (oldest == kNil)
        return kNil;

    if (hit != kNil && hit != oldest) {
        DramQueueEntry &entry = nodes_[oldest].entry;
        if (entry.bypassed >= starvation_cap) {
            if (cap_escalations != nullptr)
                ++*cap_escalations;
            return oldest;
        }
        ++entry.bypassed;
        return hit;
    }
    return oldest;
}

Cycle
BankedRequestQueue::nextWake(const std::vector<DramBank> &banks,
                             Cycle now) const
{
    Cycle wake = kNeverCycle;
    for (std::uint32_t b = 0; b < banks_.size(); ++b) {
        if (banks_[b].count == 0)
            continue;
        const Cycle ready = banks[b].readyAt;
        if (ready <= now)
            return now;
        if (ready < wake)
            wake = ready;
    }
    return wake;
}

bool
BankedRequestQueue::hasRowHitReference(
    std::uint32_t bank, const std::vector<DramBank> &banks) const
{
    const DramBank &state = banks[bank];
    if (!state.rowValid)
        return false;
    for (std::uint32_t n = ageHead_; n != kNil; n = nodes_[n].ageNext) {
        const DramQueueEntry &entry = nodes_[n].entry;
        if (entry.bank == bank && entry.row == state.openRow)
            return true;
    }
    return false;
}

void
BankedRequestQueue::onRowChange(std::uint32_t bank,
                                const std::vector<DramBank> &banks)
{
    BankIndex &idx = banks_[bank];
    // Drop the stale chain, then relink matches by walking the bank
    // FIFO list (age-ordered, so the rebuilt chain is too).
    while (idx.hitHead != kNil)
        unlinkHit(idx.hitHead, idx);
    const DramBank &state = banks[bank];
    if (!state.rowValid)
        return;
    for (std::uint32_t n = idx.head; n != kNil;
         n = nodes_[n].bankNext) {
        if (nodes_[n].entry.row == state.openRow)
            linkHit(n, idx);
    }
}

void
BankedRequestQueue::clear()
{
    nodes_.clear();
    freeNodes_.clear();
    for (BankIndex &bank : banks_)
        bank = BankIndex{};
    ageHead_ = ageTail_ = kNil;
    size_ = 0;
    nextSeq_ = 0;
}

void
BankedRequestQueue::serialize(StateWriter &w) const
{
    w.u(static_cast<std::uint64_t>(size_));
    forEachAge(
        [&w](const DramQueueEntry &e) { e.serialize(w); });
}

void
BankedRequestQueue::deserialize(StateReader &r,
                                const std::vector<DramBank> &banks)
{
    const std::uint64_t n = r.count(kMaxSeqItems);
    clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        DramQueueEntry e;
        e.deserialize(r);
        push(e, banks);
    }
}

} // namespace mask
