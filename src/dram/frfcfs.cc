/**
 * @file
 * FR-FCFS scheduling decision (Rixner et al. / Zuravleff-Robinson),
 * shared by the baseline single-queue controller and by MASK's Silver
 * and Normal queues (the paper uses FR-FCFS within both, Section 5.4).
 */

#include "dram/dram.hh"

namespace mask {

int
frFcfsPick(std::vector<DramQueueEntry> &queue,
           const std::vector<DramBank> &banks, Cycle now,
           std::uint32_t starvation_cap,
           std::uint64_t *cap_escalations)
{
    int oldest_serviceable = -1;
    int oldest_row_hit = -1;

    for (std::size_t i = 0; i < queue.size(); ++i) {
        const DramQueueEntry &entry = queue[i];
        const DramBank &bank = banks[entry.bank];
        if (bank.readyAt > now)
            continue;
        if (oldest_serviceable < 0)
            oldest_serviceable = static_cast<int>(i);
        if (oldest_row_hit < 0 && bank.rowValid &&
            bank.openRow == entry.row) {
            oldest_row_hit = static_cast<int>(i);
            break; // queue is age-ordered; first row hit is oldest
        }
    }

    if (oldest_serviceable < 0)
        return -1;

    // Starvation control: once the oldest serviceable request has been
    // bypassed too many times, first-come-first-serve wins.
    DramQueueEntry &oldest = queue[oldest_serviceable];
    if (oldest_row_hit >= 0 && oldest_row_hit != oldest_serviceable) {
        if (oldest.bypassed >= starvation_cap) {
            if (cap_escalations != nullptr)
                ++*cap_escalations;
            return oldest_serviceable;
        }
        ++oldest.bypassed;
        return oldest_row_hit;
    }
    return oldest_serviceable;
}

Cycle
frFcfsNextWake(const std::vector<DramQueueEntry> &queue,
               const std::vector<DramBank> &banks, Cycle now)
{
    Cycle wake = kNeverCycle;
    for (const DramQueueEntry &entry : queue) {
        const Cycle ready = banks[entry.bank].readyAt;
        if (ready <= now)
            return now;
        if (ready < wake)
            wake = ready;
    }
    return wake;
}

} // namespace mask
