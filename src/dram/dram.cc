#include "dram/dram.hh"

#include <algorithm>
#include <cstdlib>

#include "common/check.hh"

namespace mask {

namespace {

std::uint32_t
log2u(std::uint32_t x)
{
    std::uint32_t bits = 0;
    while ((1u << bits) < x)
        ++bits;
    return bits;
}

/** MASK_SCHED_REFERENCE=1 re-enables the original rescan picks. */
bool
schedReferenceByEnv()
{
    const char *env = std::getenv("MASK_SCHED_REFERENCE");
    return env != nullptr && env[0] == '1';
}

} // namespace

// ---------------------------------------------------------------------
// AddressMapper
// ---------------------------------------------------------------------

AddressMapper::AddressMapper(const DramConfig &cfg,
                             std::uint32_t line_bits,
                             bool partition_channels,
                             std::uint32_t num_apps)
    : lineBits_(line_bits),
      channels_(cfg.channels),
      channelBits_(log2u(cfg.channels)),
      banks_(cfg.banksPerChannel),
      bankBits_(log2u(cfg.banksPerChannel)),
      rowBits_(log2u(std::max<std::uint32_t>(1, cfg.rowBytes))),
      partition_(partition_channels),
      numApps_(num_apps == 0 ? 1 : num_apps)
{
}

DramCoord
AddressMapper::map(Addr paddr, AppId app) const
{
    // Row-granular interleaving (row : bank : channel : row offset):
    // each DRAM row holds rowBytes of contiguous physical addresses,
    // so streaming accesses produce the high row-buffer locality the
    // paper observes for GPGPU data (Section 4.3), while consecutive
    // rows rotate across channels and then banks for parallelism.
    const std::uint64_t row_global = paddr >> rowBits_;
    DramCoord coord;

    std::uint64_t rest;
    if (partition_ && numApps_ > 1 && channels_ >= numApps_) {
        // Static baseline: application app owns a contiguous slice of
        // channels; its rows interleave across that slice only.
        const std::uint32_t per_app = channels_ / numApps_;
        const std::uint32_t base = (app % numApps_) * per_app;
        coord.channel =
            base + static_cast<std::uint32_t>(row_global % per_app);
        rest = row_global / per_app;
    } else if ((channels_ & (channels_ - 1)) == 0) {
        coord.channel =
            static_cast<std::uint32_t>(row_global) & (channels_ - 1);
        rest = row_global >> channelBits_;
    } else {
        // Non-power-of-two channel counts interleave by modulo.
        coord.channel =
            static_cast<std::uint32_t>(row_global % channels_);
        rest = row_global / channels_;
    }

    if ((banks_ & (banks_ - 1)) == 0) {
        coord.bank = static_cast<std::uint32_t>(rest) & (banks_ - 1);
        coord.row = rest >> bankBits_;
    } else {
        coord.bank = static_cast<std::uint32_t>(rest % banks_);
        coord.row = rest / banks_;
    }
    return coord;
}

// ---------------------------------------------------------------------
// DramChannel
// ---------------------------------------------------------------------

DramChannel::DramChannel(const DramConfig &cfg,
                         const MaskConfig &mask_cfg, DramSchedMode mode,
                         std::uint32_t num_apps)
    : cfg_(cfg),
      maskCfg_(mask_cfg),
      mode_(mode),
      numApps_(num_apps == 0 ? 1 : num_apps),
      reference_(schedReferenceByEnv()),
      banks_(cfg.banksPerChannel),
      silver_(cfg.banksPerChannel),
      normal_(cfg.banksPerChannel)
{
    silverCredits_ = maskCfg_.threshMax / numApps_;
}

bool
DramChannel::canEnqueue(const MemRequest &req) const
{
    if (mode_ == DramSchedMode::FrFcfs)
        return normal_.size() < cfg_.queueEntries;

    if (req.type == ReqType::Translation)
        return golden_.size() < maskCfg_.goldenQueueEntries;

    // A data request goes to silver when it is the silver app's turn,
    // credits remain, and the silver queue has room; otherwise it
    // falls back to the normal queue.
    if (req.app == silverApp_ && silverCredits_ > 0 &&
        silver_.size() < maskCfg_.silverQueueEntries) {
        return true;
    }
    return normal_.size() < maskCfg_.normalQueueEntries;
}

void
DramChannel::enqueue(ReqId id, MemRequest &req, const DramCoord &coord,
                     Cycle now)
{
    SIM_CHECK_CTX(canEnqueue(req), "dram.channel", now,
                  "enqueue into a full request buffer",
                  (CheckContext{.reqId = id, .app = req.app,
                                .paddr = req.paddr}));

    DramQueueEntry entry;
    entry.id = id;
    entry.bank = coord.bank;
    entry.row = coord.row;
    entry.app = req.app;
    entry.type = req.type;
    entry.enqueueCycle = now;
    req.dramEnqueueCycle = now;

    if (mode_ == DramSchedMode::MaskQueues &&
        req.type == ReqType::Translation) {
        golden_.push_back(entry);
    } else if (mode_ == DramSchedMode::MaskQueues &&
               req.app == silverApp_ && silverCredits_ > 0 &&
               silver_.size() < maskCfg_.silverQueueEntries) {
        // Section 5.4 routing: the silver app spends a credit per
        // enqueued request until its quota is gone.
        --silverCredits_;
        silver_.push(entry, banks_);
    } else {
        normal_.push(entry, banks_);
    }
}

void
DramChannel::rotateSilverTurn()
{
    silverApp_ = static_cast<AppId>((silverApp_ + 1) % numApps_);
    if (quotaProvider_ != nullptr) {
        silverCredits_ = quotaProvider_->silverQuota(silverApp_);
    } else {
        silverCredits_ = maskCfg_.threshMax / numApps_;
    }
    if (silverCredits_ == 0)
        silverCredits_ = 1;
}

bool
DramChannel::hasPendingRowHit(std::uint32_t bank_idx) const
{
    if (reference_) {
        return silver_.hasRowHitReference(bank_idx, banks_) ||
               normal_.hasRowHitReference(bank_idx, banks_);
    }
    return silver_.hasRowHit(bank_idx) || normal_.hasRowHit(bank_idx);
}

void
DramChannel::checkQueueBounds(Cycle now, std::uint32_t channel_idx) const
{
    const std::string where =
        "channel " + std::to_string(channel_idx);
    if (mode_ == DramSchedMode::FrFcfs) {
        SIM_CHECK(normal_.size() <= cfg_.queueEntries, "dram.queue",
                  now, where + ": request buffer above queueEntries");
        return;
    }
    SIM_CHECK(golden_.size() <= maskCfg_.goldenQueueEntries,
              "dram.queue", now,
              where + ": Golden Queue above its bound");
    SIM_CHECK(silver_.size() <= maskCfg_.silverQueueEntries,
              "dram.queue", now,
              where + ": Silver Queue above its bound");
    SIM_CHECK(normal_.size() <= maskCfg_.normalQueueEntries,
              "dram.queue", now,
              where + ": Normal Queue above its bound");
}

void
DramChannel::onEpoch()
{
    if (mode_ == DramSchedMode::MaskQueues)
        rotateSilverTurn();
}

void
DramChannel::serviceEntry(const DramQueueEntry &entry, Cycle now,
                          RequestPool &pool)
{
    DramBank &bank = banks_[entry.bank];
    const bool was_valid = bank.rowValid;
    const std::uint64_t old_row = bank.openRow;
    std::uint32_t latency;
    std::uint32_t bank_busy;
    if (bank.rowValid && bank.openRow == entry.row) {
        // Row hit: reads to the open row pipeline at the burst rate.
        latency = cfg_.tCl;
        bank_busy = cfg_.tBurst;
        ++stats_.rowHits;
    } else if (!bank.rowValid) {
        latency = cfg_.tRcd + cfg_.tCl;
        bank_busy = cfg_.tRcd + cfg_.tBurst;
        ++stats_.rowMisses;
    } else {
        latency = cfg_.tRp + cfg_.tRcd + cfg_.tCl;
        bank_busy = cfg_.tRp + cfg_.tRcd + cfg_.tBurst;
        ++stats_.rowConflicts;
    }

    const Cycle done = now + latency + cfg_.tBurst;
    bank.openRow = entry.row;
    bank.rowValid = true;
    bank.readyAt = now + bank_busy;
    busFreeAt_ = now + cfg_.tBurst;

    const auto type_idx = static_cast<std::size_t>(entry.type);
    stats_.busBusy[type_idx] += cfg_.tBurst;
    ++stats_.serviced[type_idx];
    stats_.latency[type_idx].add(
        static_cast<double>(done - entry.enqueueCycle));
    (void)pool;

    inService_.push(Completion{done, entry.id});

    // An activate invalidated the bank's row-hit chains; rebuild them
    // from its FIFO lists (amortized against the row change itself).
    if (!was_valid || old_row != entry.row) {
        silver_.onRowChange(entry.bank, banks_);
        normal_.onRowChange(entry.bank, banks_);
    }
}

void
DramChannel::serviceNode(BankedRequestQueue &queue, std::uint32_t node,
                         Cycle now, RequestPool &pool)
{
    const DramQueueEntry entry = queue.take(node);
    serviceEntry(entry, now, pool);
}

std::uint32_t
DramChannel::pickFrom(BankedRequestQueue &queue, Cycle now)
{
    ++schedPicks_;
    if (reference_) {
        return queue.pickReference(banks_, now, cfg_.starvationCap,
                                   &stats_.capEscalations,
                                   &schedScanned_);
    }
    return queue.pick(banks_, now, cfg_.starvationCap,
                      &stats_.capEscalations, &schedScanned_);
}

void
DramChannel::tick(Cycle now, RequestPool &pool)
{
    // Retire finished requests.
    while (!inService_.empty() && inService_.top().at <= now) {
        completed_.push_back(inService_.top().id);
        inService_.pop();
    }

    if (busFreeAt_ > now)
        return;

    // Strict priority: Golden (FIFO) > Silver > Normal (both FR-FCFS).
    if (!golden_.empty()) {
        // FIFO among serviceable golden requests: the paper notes that
        // row-buffer reordering does not help translation requests.
        for (std::size_t i = 0; i < golden_.size(); ++i) {
            DramQueueEntry &entry = golden_[i];
            const DramBank &bank = banks_[entry.bank];
            if (bank.readyAt > now)
                continue;
            // Bandwidth guard (Section 4.4): don't close a row that
            // still has data row-hits pending unless this request has
            // already been delayed long enough.
            const bool row_conflict =
                bank.rowValid && bank.openRow != entry.row;
            if (row_conflict &&
                now < entry.enqueueCycle + maskCfg_.goldenMaxDelay &&
                hasPendingRowHit(entry.bank)) {
                continue;
            }
            const DramQueueEntry picked = entry;
            golden_.erase(golden_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            ++servicedFromQueue_[0];
            serviceEntry(picked, now, pool);
            return;
        }
    }

    if (mode_ == DramSchedMode::MaskQueues) {
        // Advance the silver turn when the current app used its quota
        // and its queued silver requests drained.
        if (silverCredits_ == 0 && silver_.empty())
            rotateSilverTurn();

        const std::uint32_t pick = pickFrom(silver_, now);
        if (pick != BankedRequestQueue::kNil) {
            // Bandwidth guard: a silver row-conflict defers briefly
            // to pending data row hits (same rationale as golden).
            const DramQueueEntry &entry = silver_.entry(pick);
            const DramBank &bank = banks_[entry.bank];
            const bool row_conflict =
                bank.rowValid && bank.openRow != entry.row;
            if (!row_conflict ||
                now >= entry.enqueueCycle + maskCfg_.silverMaxDelay ||
                !hasPendingRowHit(entry.bank)) {
                ++servicedFromQueue_[1];
                serviceNode(silver_, pick, now, pool);
                return;
            }
        }
    }

    const std::uint32_t pick = pickFrom(normal_, now);
    if (pick != BankedRequestQueue::kNil) {
        ++servicedFromQueue_[2];
        serviceNode(normal_, pick, now, pool);
    }
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    // Completions waiting for the caller to drain: work this cycle.
    if (!completed_.empty())
        return now;

    Cycle next =
        inService_.empty() ? kNeverCycle : inService_.top().at;

    // A pending silver-turn rotation reads the quota controller's
    // per-cycle Equation 1 accumulators; deferring it across a skip
    // would rotate with different weights. Pin it to the cycle tick()
    // would perform it (the first cycle the bus is free).
    if (mode_ == DramSchedMode::MaskQueues && silverCredits_ == 0 &&
        silver_.empty()) {
        if (busFreeAt_ <= now)
            return now;
        next = std::min(next, busFreeAt_);
    }

    if (queuedRequests() == 0)
        return next;

    // tick() returns before scheduling until the bus frees up.
    if (busFreeAt_ > now)
        return std::min(next, busFreeAt_);

    // Bus free: the scheduler acts on the first cycle any queued
    // entry's bank is ready (including all guard/starvation paths).
    Cycle wake = frFcfsNextWake(golden_, banks_, now);
    if (wake <= now)
        return now;
    next = std::min(next, wake);
    wake = silver_.nextWake(banks_, now);
    if (wake <= now)
        return now;
    next = std::min(next, wake);
    wake = normal_.nextWake(banks_, now);
    if (wake <= now)
        return now;
    return std::min(next, wake);
}

void
DramChannel::resetStats()
{
    stats_.reset();
    schedPicks_ = 0;
    schedScanned_ = 0;
}

// ---------------------------------------------------------------------
// Dram
// ---------------------------------------------------------------------

Dram::Dram(const DramConfig &cfg, const MaskConfig &mask_cfg,
           std::uint32_t line_bits, DramSchedMode mode,
           std::uint32_t num_apps, bool partition_channels)
    : mapper_(cfg, line_bits, partition_channels, num_apps)
{
    channels_.reserve(cfg.channels);
    for (std::uint32_t c = 0; c < cfg.channels; ++c)
        channels_.emplace_back(cfg, mask_cfg, mode, num_apps);
}

void
Dram::setQuotaProvider(const SilverQuotaProvider *provider)
{
    for (auto &channel : channels_)
        channel.setQuotaProvider(provider);
}

bool
Dram::canEnqueue(const MemRequest &req) const
{
    const DramCoord coord = mapper_.map(req.paddr, req.app);
    return channels_[coord.channel].canEnqueue(req);
}

void
Dram::enqueue(ReqId id, MemRequest &req, Cycle now)
{
    const DramCoord coord = mapper_.map(req.paddr, req.app);
    channels_[coord.channel].enqueue(id, req, coord, now);
}

void
Dram::tick(Cycle now, RequestPool &pool)
{
    for (auto &channel : channels_) {
        // Idle channels with no pending silver rotation have nothing
        // to retire, schedule, or drain: their tick is a no-op.
        if (!channel.busy() && !channel.rotationPending())
            continue;
        channel.tick(now, pool);
        auto &done = channel.completed();
        while (!done.empty()) {
            completed_.push_back(done.front());
            done.pop_front();
        }
    }
}

Cycle
Dram::nextEventCycle(Cycle now) const
{
    if (!completed_.empty())
        return now;
    Cycle next = kNeverCycle;
    for (const DramChannel &channel : channels_) {
        next = std::min(next, channel.nextEventCycle(now));
        if (next <= now)
            return now;
    }
    return next;
}

void
Dram::noteReject(const MemRequest &req)
{
    const DramCoord coord = mapper_.map(req.paddr, req.app);
    channels_[coord.channel].noteReject();
}

void
Dram::onEpoch()
{
    for (auto &channel : channels_)
        channel.onEpoch();
}

DramChannelStats
Dram::aggregateStats() const
{
    DramChannelStats agg;
    for (const auto &channel : channels_) {
        const DramChannelStats &s = channel.stats();
        for (int t = 0; t < 2; ++t) {
            agg.busBusy[t] += s.busBusy[t];
            agg.serviced[t] += s.serviced[t];
            agg.latency[t].count += s.latency[t].count;
            agg.latency[t].sum += s.latency[t].sum;
        }
        agg.rowHits += s.rowHits;
        agg.rowMisses += s.rowMisses;
        agg.rowConflicts += s.rowConflicts;
        agg.enqueueRejects += s.enqueueRejects;
        agg.capEscalations += s.capEscalations;
    }
    return agg;
}

void
Dram::resetStats()
{
    for (auto &channel : channels_)
        channel.resetStats();
}

std::uint64_t
Dram::schedPicks() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.schedPicks();
    return total;
}

std::uint64_t
Dram::schedUnitsScanned() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.schedUnitsScanned();
    return total;
}

namespace {

/**
 * Expose std::priority_queue's protected underlying container. The
 * heap array must round-trip verbatim: completions that tie on `at`
 * pop in heap-layout order, so rebuilding the heap by re-pushing would
 * not reproduce the service order bit-exactly.
 */
struct CompletionHeapAccess
    : std::priority_queue<DramChannel::Completion,
                          std::vector<DramChannel::Completion>,
                          std::greater<>>
{
    using priority_queue::c;
};

template <typename PQ>
const std::vector<DramChannel::Completion> &
heapArray(const PQ &pq)
{
    return static_cast<const CompletionHeapAccess &>(pq).c;
}

template <typename PQ>
std::vector<DramChannel::Completion> &
heapArray(PQ &pq)
{
    return static_cast<CompletionHeapAccess &>(pq).c;
}

void
putQueue(StateWriter &w, const std::vector<DramQueueEntry> &queue)
{
    putSeq(w, queue, [](StateWriter &sw, const DramQueueEntry &e) {
        e.serialize(sw);
    });
}

void
getQueue(StateReader &r, std::vector<DramQueueEntry> &queue)
{
    getSeq(r, queue,
           [](StateReader &sr, DramQueueEntry &e) { e.deserialize(sr); });
}

} // namespace

void
DramChannel::serialize(StateWriter &w) const
{
    w.tag("chan");
    w.u(banks_.size());
    for (const DramBank &bank : banks_)
        bank.serialize(w);
    putQueue(w, golden_);
    // Age-ordered entries only: byte-identical to the flat vectors
    // these queues replaced. Index links are rebuilt on restore.
    silver_.serialize(w);
    normal_.serialize(w);
    w.u(silverApp_);
    w.u(silverCredits_);
    w.u(busFreeAt_);
    const std::vector<Completion> &heap = heapArray(inService_);
    putSeq(w, heap, [](StateWriter &sw, const Completion &c) {
        sw.u(c.at);
        sw.u(c.id);
    });
    putUintSeq(w, completed_);
    stats_.serialize(w);
}

void
DramChannel::deserialize(StateReader &r)
{
    r.tag("chan");
    const std::uint64_t banks = r.u();
    if (banks != banks_.size())
        r.fail("DRAM bank count mismatch (" + std::to_string(banks) +
               " vs configured " + std::to_string(banks_.size()) + ")");
    for (DramBank &bank : banks_)
        bank.deserialize(r);
    getQueue(r, golden_);
    // Banks are restored above, so replaying pushes rebuilds the
    // row-hit chains exactly as the live run had them.
    silver_.deserialize(r, banks_);
    normal_.deserialize(r, banks_);
    silverApp_ = static_cast<AppId>(r.u());
    silverCredits_ = static_cast<std::uint32_t>(r.u());
    busFreeAt_ = r.u();
    std::vector<Completion> &heap = heapArray(inService_);
    getSeq(r, heap, [](StateReader &sr, Completion &c) {
        c.at = sr.u();
        c.id = static_cast<ReqId>(sr.u());
    });
    if (!std::is_heap(heap.begin(), heap.end(), std::greater<>{}))
        r.fail("in-service completion array is not a min-heap");
    getUintSeq(r, completed_);
    stats_.deserialize(r);
}

void
Dram::serialize(StateWriter &w) const
{
    w.tag("dram");
    w.u(channels_.size());
    for (const DramChannel &channel : channels_)
        channel.serialize(w);
    putUintSeq(w, completed_);
}

void
Dram::deserialize(StateReader &r)
{
    r.tag("dram");
    const std::uint64_t n = r.u();
    if (n != channels_.size())
        r.fail("DRAM channel count mismatch (" + std::to_string(n) +
               " vs configured " + std::to_string(channels_.size()) +
               ")");
    for (DramChannel &channel : channels_)
        channel.deserialize(r);
    getUintSeq(r, completed_);
}

} // namespace mask
