/**
 * @file
 * GDDR5-like DRAM model: per-channel request buffers, per-bank row
 * buffer state and timing, an FR-FCFS scheduler, and the three-queue
 * (Golden/Silver/Normal) organization used by MASK's Address-Space-
 * Aware DRAM Scheduler (paper Section 5.4).
 *
 * Silver and Normal queues are BankedRequestQueue instances
 * (DESIGN.md §12): per-bank FIFO and open-row hit chains maintained
 * incrementally, so each per-cycle pick costs O(banks) instead of
 * O(queued requests). MASK_SCHED_REFERENCE=1 switches every pick back
 * to the original age-list rescan over the same storage, which the
 * determinism gate uses to prove the indices observationally inert.
 */

#ifndef MASK_DRAM_DRAM_HH
#define MASK_DRAM_DRAM_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/config.hh"
#include "common/memreq.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/banked_queue.hh"

namespace mask {

/** Decoded DRAM coordinates of a physical address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
};

/**
 * Physical address -> (channel, bank, row) mapping with line-granular
 * channel interleaving. When the Static baseline partitions channels,
 * each application's traffic is folded onto its private channel slice.
 */
class AddressMapper
{
  public:
    AddressMapper(const DramConfig &cfg, std::uint32_t line_bits,
                  bool partition_channels = false,
                  std::uint32_t num_apps = 1);

    DramCoord map(Addr paddr, AppId app) const;

    std::uint32_t channels() const { return channels_; }

  private:
    std::uint32_t lineBits_;
    std::uint32_t channels_;
    std::uint32_t channelBits_;
    std::uint32_t banks_;
    std::uint32_t bankBits_;
    std::uint32_t rowBits_;
    bool partition_;
    std::uint32_t numApps_;
};

/**
 * Quota source for the Silver Queue (Equation 1). Implemented by the
 * MASK layer; the DRAM channel calls it when rotating the silver turn
 * to a new application.
 */
class SilverQuotaProvider
{
  public:
    virtual ~SilverQuotaProvider() = default;

    /** thresh_i: silver-queue request quota for application @p app. */
    virtual std::uint32_t silverQuota(AppId app) const = 0;
};

/** Which scheduling organization a channel runs. */
enum class DramSchedMode : std::uint8_t {
    FrFcfs,     //!< single request buffer, FR-FCFS (baselines)
    MaskQueues, //!< Golden/Silver/Normal queues (MASK, Section 5.4)
};

/** Statistics kept per channel, split by request type where relevant. */
struct DramChannelStats
{
    std::uint64_t busBusy[2] = {0, 0};   //!< indexed by ReqType
    std::uint64_t serviced[2] = {0, 0};
    RunningStat latency[2];              //!< enqueue -> data returned
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;   //!< closed-row activates
    std::uint64_t rowConflicts = 0;
    std::uint64_t enqueueRejects = 0;
    /** Starvation-cap escalations: requests serviced FCFS after being
     *  bypassed starvationCap times by younger row hits. */
    std::uint64_t capEscalations = 0;

    void
    reset()
    {
        *this = DramChannelStats{};
    }

    void
    serialize(StateWriter &w) const
    {
        w.tag("dstats");
        for (const std::uint64_t v : busBusy)
            w.u(v);
        for (const std::uint64_t v : serviced)
            w.u(v);
        for (const RunningStat &s : latency)
            s.serialize(w);
        w.u(rowHits);
        w.u(rowMisses);
        w.u(rowConflicts);
        w.u(enqueueRejects);
        w.u(capEscalations);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("dstats");
        for (std::uint64_t &v : busBusy)
            v = r.u();
        for (std::uint64_t &v : serviced)
            v = r.u();
        for (RunningStat &s : latency)
            s.deserialize(r);
        rowHits = r.u();
        rowMisses = r.u();
        rowConflicts = r.u();
        enqueueRejects = r.u();
        capEscalations = r.u();
    }
};

/** One DRAM channel: banks + request buffers + scheduler. */
class DramChannel
{
  public:
    DramChannel(const DramConfig &cfg, const MaskConfig &mask_cfg,
                DramSchedMode mode, std::uint32_t num_apps);

    /** Attach the Equation 1 quota source (MaskQueues mode only). */
    void setQuotaProvider(const SilverQuotaProvider *provider)
    {
        quotaProvider_ = provider;
    }

    /** True if the appropriate queue can take this request. */
    bool canEnqueue(const MemRequest &req) const;

    /** Insert a request (caller checked canEnqueue). */
    void enqueue(ReqId id, MemRequest &req, const DramCoord &coord,
                 Cycle now);

    /** Advance one cycle: schedule and retire. */
    void tick(Cycle now, RequestPool &pool);

    /**
     * Earliest cycle >= @p now at which tick() does anything: retires
     * a completion, services a request, or rotates the silver turn.
     * Returns @p now itself whenever any queued request's bank is
     * already ready while the bus is free — that pins the conservative
     * cases (bandwidth-guard deferrals, starvation-cap bookkeeping in
     * the FR-FCFS pick) to per-cycle stepping, since every such path
     * requires a ready bank. kNeverCycle when nothing is pending.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Epoch boundary (Section 5.2/5.4): force the silver turn to
     * rotate so an idle quota holder cannot pin the Silver Queue.
     */
    void onEpoch();

    /** Requests whose data has returned; caller drains. */
    std::deque<ReqId> &completed() { return completed_; }

    const DramChannelStats &stats() const { return stats_; }
    void resetStats();
    void noteReject() { ++stats_.enqueueRejects; }

    std::size_t queuedRequests() const
    {
        return golden_.size() + silver_.size() + normal_.size();
    }

    /** Any request queued, in service, or awaiting drain. */
    bool busy() const
    {
        return queuedRequests() > 0 || !inService_.empty() ||
               !completed_.empty();
    }

    /**
     * True when the next bus-free tick() would rotate the silver turn
     * even with nothing queued (quota exhausted, Silver Queue
     * drained). Lets Dram::tick skip otherwise-idle channels.
     */
    bool rotationPending() const
    {
        return mode_ == DramSchedMode::MaskQueues &&
               silverCredits_ == 0 && silver_.empty();
    }

    /** Queue introspection for tests. */
    std::size_t goldenSize() const { return golden_.size(); }
    std::size_t silverSize() const { return silver_.size(); }
    std::size_t normalSize() const { return normal_.size(); }
    AppId silverApp() const { return silverApp_; }

    /** Host-side scheduler work counters (never serialized): picks
     *  attempted and index units examined across them. In indexed mode
     *  a unit is an occupied bank; under MASK_SCHED_REFERENCE=1 it is
     *  a queue entry, so the ratio exposes exactly what the indices
     *  save. */
    std::uint64_t schedPicks() const { return schedPicks_; }
    std::uint64_t schedUnitsScanned() const { return schedScanned_; }

    /** Host-side issue-mix counter (never serialized): requests
     *  serviced from each scheduling queue — 0 = Golden, 1 = Silver,
     *  2 = Normal (the FR-FCFS baselines issue everything from the
     *  Normal slot). Feeds the obs timeseries (DESIGN.md §13). */
    std::uint64_t servicedFromQueue(std::size_t queue) const
    {
        return servicedFromQueue_[queue];
    }

    /**
     * Watchdog hook: throw SimInvariantError if any queue exceeds its
     * configured bound (Golden/Silver/Normal under MaskQueues, the
     * single request buffer under FR-FCFS).
     */
    void checkQueueBounds(Cycle now, std::uint32_t channel_idx) const;

    /**
     * Snapshot queues, banks, and in-flight completions. The
     * completion heap's physical array is serialized verbatim:
     * completions that tie on `at` pop in heap-layout order, so the
     * layout itself is semantic state. Silver/Normal index links are
     * derived state: only the age-ordered entries are written (the
     * same bytes as the flat vectors they replaced), and restore
     * rebuilds the links against the already-restored bank state.
     */
    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

    /** A request in service; public so the snapshot code can name the
     *  completion heap's element type. */
    struct Completion
    {
        Cycle at;
        ReqId id;
        bool operator>(const Completion &o) const { return at > o.at; }
    };

  private:
    /** Any queued data request that hits @p bank_idx's open row? */
    bool hasPendingRowHit(std::uint32_t bank_idx) const;

    /** FR-FCFS pick on @p queue honoring MASK_SCHED_REFERENCE. */
    std::uint32_t pickFrom(BankedRequestQueue &queue, Cycle now);

    void serviceEntry(const DramQueueEntry &entry, Cycle now,
                      RequestPool &pool);
    void serviceNode(BankedRequestQueue &queue, std::uint32_t node,
                     Cycle now, RequestPool &pool);
    void rotateSilverTurn();

    DramConfig cfg_;
    MaskConfig maskCfg_;
    DramSchedMode mode_;
    std::uint32_t numApps_;
    bool reference_; //!< MASK_SCHED_REFERENCE=1: rescan picks

    std::vector<DramBank> banks_;
    std::vector<DramQueueEntry> golden_; //!< FIFO, translation only
    BankedRequestQueue silver_;
    BankedRequestQueue normal_;

    const SilverQuotaProvider *quotaProvider_ = nullptr;
    AppId silverApp_ = 0;
    std::uint32_t silverCredits_ = 0;

    Cycle busFreeAt_ = 0;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>>
        inService_;
    std::deque<ReqId> completed_;
    DramChannelStats stats_;

    std::uint64_t schedPicks_ = 0;   //!< host observability only
    std::uint64_t schedScanned_ = 0; //!< host observability only
    /** Serviced per queue (Golden/Silver/Normal); host only. */
    std::uint64_t servicedFromQueue_[3] = {0, 0, 0};
};

/** The full DRAM subsystem: mapper + channels. */
class Dram
{
  public:
    Dram(const DramConfig &cfg, const MaskConfig &mask_cfg,
         std::uint32_t line_bits, DramSchedMode mode,
         std::uint32_t num_apps, bool partition_channels);

    void setQuotaProvider(const SilverQuotaProvider *provider);

    bool canEnqueue(const MemRequest &req) const;
    void enqueue(ReqId id, MemRequest &req, Cycle now);
    void tick(Cycle now, RequestPool &pool);
    void onEpoch();

    /**
     * Earliest cycle >= @p now at which tick() does anything on any
     * channel; kNeverCycle when the subsystem is idle. Valid as a
     * skip bound because tick() advances every channel whenever any
     * is busy — exactly the condition under which the GPU calls it.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Record that @p req found its channel queue full (stats). */
    void noteReject(const MemRequest &req);

    /** Completed requests across all channels; caller drains. */
    std::deque<ReqId> &completed() { return completed_; }

    /** True if any channel holds work or completions await drain. */
    bool busy() const
    {
        if (!completed_.empty())
            return true;
        for (const DramChannel &ch : channels_) {
            if (ch.busy())
                return true;
        }
        return false;
    }

    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }
    DramChannel &channel(std::uint32_t idx) { return channels_[idx]; }
    const DramChannel &channel(std::uint32_t idx) const
    {
        return channels_[idx];
    }
    const AddressMapper &mapper() const { return mapper_; }

    /** Aggregate stats over all channels. */
    DramChannelStats aggregateStats() const;
    void resetStats();

    /** Scheduler work counters summed over channels (host-side). */
    std::uint64_t schedPicks() const;
    std::uint64_t schedUnitsScanned() const;

    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    AddressMapper mapper_;
    std::vector<DramChannel> channels_;
    std::deque<ReqId> completed_;
};

/**
 * FR-FCFS pick: index of the entry to service from @p queue, or -1 if
 * none is serviceable (bank ready) this cycle. Prefers the oldest
 * row-buffer hit, falling back to the oldest serviceable request, and
 * forces the queue head once it has been bypassed more than
 * @p starvation_cap times (Section 6 baseline policy). Each forced
 * pick increments @p cap_escalations when the caller provides it, so
 * the cap's effect is observable in stats.
 *
 * This is the reference rescan over a flat vector; the channel hot
 * path uses BankedRequestQueue::pick, which must agree with it (see
 * tests/test_sched_index.cc).
 */
int frFcfsPick(std::vector<DramQueueEntry> &queue,
               const std::vector<DramBank> &banks, Cycle now,
               std::uint32_t starvation_cap,
               std::uint64_t *cap_escalations = nullptr);

/**
 * Earliest cycle >= @p now at which some entry of @p queue has a ready
 * bank (the precondition for frFcfsPick to return, mutate bypass
 * counts, or for the golden FIFO to consider an entry). Returns @p now
 * when a bank is already ready, kNeverCycle for an empty queue.
 */
Cycle frFcfsNextWake(const std::vector<DramQueueEntry> &queue,
                     const std::vector<DramBank> &banks, Cycle now);

} // namespace mask

#endif // MASK_DRAM_DRAM_HH
