/**
 * @file
 * Incrementally indexed DRAM request queue (DESIGN.md §12).
 *
 * Replaces the per-cycle O(queue) rescans of the FR-FCFS scheduler
 * with indices maintained at enqueue/dequeue/row-change time, the way
 * Ramulator-style controllers keep their request buffers: a global
 * age list (FIFO order), a per-bank FIFO list, and a per-bank
 * open-row hit chain. Every per-cycle pick then touches O(banks)
 * state instead of O(entries), and `hasRowHit` is a head-pointer
 * test.
 *
 * The structure is observationally identical to scanning the
 * age-ordered vector with frFcfsPick()/frFcfsNextWake(): the oldest
 * serviceable entry is the minimum sequence number over ready banks'
 * FIFO heads, and the oldest row hit is the minimum over ready banks'
 * hit-chain heads (chains are kept in age order). pickReference()
 * retains the original rescan algorithm over the same storage so the
 * equivalence is enforced by tests and by a MASK_SCHED_REFERENCE=1
 * determinism leg.
 *
 * All index state is derived: serialization writes only the entries
 * in age order (byte-identical to the flat-vector format it
 * replaces), and deserialization rebuilds the links by replaying
 * pushes against the already-restored bank state.
 */

#ifndef MASK_DRAM_BANKED_QUEUE_HH
#define MASK_DRAM_BANKED_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

/** Row-buffer and busy state of one DRAM bank. */
struct DramBank
{
    std::uint64_t openRow = 0;
    bool rowValid = false;
    Cycle readyAt = 0;

    void
    serialize(StateWriter &w) const
    {
        w.u(openRow);
        w.b(rowValid);
        w.u(readyAt);
    }

    void
    deserialize(StateReader &r)
    {
        openRow = r.u();
        rowValid = r.b();
        readyAt = r.u();
    }
};

/** An entry in a channel request buffer. */
struct DramQueueEntry
{
    ReqId id = kInvalidReq;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    AppId app = 0;
    ReqType type = ReqType::Data;
    Cycle enqueueCycle = 0;
    std::uint32_t bypassed = 0; //!< times skipped by younger row hits

    void
    serialize(StateWriter &w) const
    {
        w.u(id);
        w.u(bank);
        w.u(row);
        w.u(app);
        w.u(static_cast<std::uint64_t>(type));
        w.u(enqueueCycle);
        w.u(bypassed);
    }

    void
    deserialize(StateReader &r)
    {
        id = static_cast<ReqId>(r.u());
        bank = static_cast<std::uint32_t>(r.u());
        row = r.u();
        app = static_cast<AppId>(r.u());
        type = static_cast<ReqType>(r.u());
        enqueueCycle = r.u();
        bypassed = static_cast<std::uint32_t>(r.u());
    }
};

/** Age-ordered request queue with per-bank FIFO and row-hit indices. */
class BankedRequestQueue
{
  public:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    explicit BankedRequestQueue(std::uint32_t num_banks);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Append @p e (youngest); joins @p e's bank list and, when the
     *  bank's open row matches, its row-hit chain. */
    void push(const DramQueueEntry &e,
              const std::vector<DramBank> &banks);

    /** Unlink @p node from every index and return its entry. */
    DramQueueEntry take(std::uint32_t node);

    DramQueueEntry &entry(std::uint32_t node);
    const DramQueueEntry &entry(std::uint32_t node) const;

    /**
     * FR-FCFS pick over the per-bank indices: node to service, or
     * kNil. Exactly frFcfsPick() on the age-ordered sequence,
     * including the starvation-cap bookkeeping (mutates the oldest
     * serviceable entry's bypass count when a younger row hit wins,
     * escalates into @p cap_escalations past the cap). Adds the
     * number of banks examined to @p scanned when provided.
     */
    std::uint32_t pick(const std::vector<DramBank> &banks, Cycle now,
                       std::uint32_t starvation_cap,
                       std::uint64_t *cap_escalations,
                       std::uint64_t *scanned);

    /**
     * Reference implementation: the original age-list rescan,
     * ignoring the per-bank indices (kept for differential tests and
     * the MASK_SCHED_REFERENCE=1 mode). Adds entries examined to
     * @p scanned.
     */
    std::uint32_t pickReference(const std::vector<DramBank> &banks,
                                Cycle now,
                                std::uint32_t starvation_cap,
                                std::uint64_t *cap_escalations,
                                std::uint64_t *scanned);

    /**
     * Earliest cycle >= @p now at which some entry's bank is ready
     * (frFcfsNextWake), from the per-bank occupancy counts: O(banks).
     */
    Cycle nextWake(const std::vector<DramBank> &banks,
                   Cycle now) const;

    /** Any queued entry hitting @p bank's open row? O(1). */
    bool hasRowHit(std::uint32_t bank) const
    {
        return banks_[bank].hitHead != kNil;
    }

    /** Reference rescan of the age list for the same predicate. */
    bool hasRowHitReference(std::uint32_t bank,
                            const std::vector<DramBank> &banks) const;

    /**
     * Bank @p bank's open row changed (or became valid): rebuild its
     * row-hit chain by walking the bank's FIFO list. Amortized
     * against the service that closed the row.
     */
    void onRowChange(std::uint32_t bank,
                     const std::vector<DramBank> &banks);

    /** Visit entries oldest-first (reference mode, serialization). */
    template <typename Fn>
    void
    forEachAge(Fn &&fn) const
    {
        for (std::uint32_t n = ageHead_; n != kNil;
             n = nodes_[n].ageNext)
            fn(nodes_[n].entry);
    }

    /** Byte-identical to putSeq over the age-ordered entries. */
    void serialize(StateWriter &w) const;

    /** Rebuilds every index; @p banks must already be restored so
     *  the row-hit chains come back correct. */
    void deserialize(StateReader &r,
                     const std::vector<DramBank> &banks);

  private:
    struct Node
    {
        DramQueueEntry entry;
        std::uint64_t seq = 0;
        std::uint32_t agePrev = kNil, ageNext = kNil;
        std::uint32_t bankPrev = kNil, bankNext = kNil;
        std::uint32_t hitPrev = kNil, hitNext = kNil;
        bool inHitChain = false;
    };

    struct BankIndex
    {
        std::uint32_t head = kNil, tail = kNil;     //!< FIFO list
        std::uint32_t hitHead = kNil, hitTail = kNil;
        std::uint32_t count = 0;
    };

    void linkHit(std::uint32_t node, BankIndex &bank);
    void unlinkHit(std::uint32_t node, BankIndex &bank);
    void clear();

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> freeNodes_;
    std::vector<BankIndex> banks_;
    std::uint32_t ageHead_ = kNil, ageTail_ = kNil;
    std::size_t size_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace mask

#endif // MASK_DRAM_BANKED_QUEUE_HH
