/**
 * @file
 * Shader core (streaming multiprocessor) model: 64 warps, a
 * greedy-then-oldest (GTO) warp scheduler, a private L1 TLB, a private
 * L1 data cache with MSHRs, and drain support for address-space
 * switches (paper Sections 5.1 and 6, Table 1).
 */

#ifndef MASK_CORE_SHADER_CORE_HH
#define MASK_CORE_SHADER_CORE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/warp.hh"
#include "tlb/tlb.hh"
#include "workload/generator.hh"

namespace mask {

/** A memory instruction leaving the core's issue stage. */
struct IssuedAccess
{
    /** Independent line addresses after intra-warp coalescing. */
    static constexpr std::uint32_t kMaxParts = 8;
    Addr vaddrs[kMaxParts] = {};
    std::uint32_t count = 1;
    WarpId warp = 0;
};

/** One GPU core. */
class ShaderCore
{
  public:
    ShaderCore(CoreId id, const GpuConfig &cfg);

    /**
     * (Re)assign the core to an application. Starts fresh warps;
     * the caller is responsible for having drained the core first
     * (see startDrain / drained). @p stream_table is the
     * application's shared per-stream progress; @p warp_index_base is
     * this core's offset into the application-wide warp index space
     * (core-within-app index x warps per core).
     */
    void assign(AppId app, Asid asid, const BenchmarkParams *program,
                StreamTable *stream_table,
                std::uint32_t warp_index_base, std::uint64_t seed);

    CoreId id() const { return id_; }
    AppId app() const { return app_; }
    Asid asid() const { return asid_; }
    const BenchmarkParams *program() const { return program_; }

    /**
     * Issue stage for one cycle: selects a warp GTO-style and issues
     * one instruction. Returns the memory access when the issued
     * instruction is a memory instruction.
     */
    std::optional<IssuedAccess> issue(Cycle now);

    /**
     * One coalesced access of @p warp's memory instruction completed;
     * the warp becomes ready when all of them have.
     */
    void accessDone(WarpId warp, Cycle now);

    /** Warps currently able to issue (latency-hiding headroom). */
    std::uint32_t readyWarps() const { return readyCount_; }

    /**
     * True when the next issue(now) call will issue an instruction.
     * Every Ready warp is reachable (it is either the greedy warp or
     * queued), so readyCount_ > 0 is exact, not a heuristic. An idle
     * core has no self-wakeup: it becomes issuable only through
     * accessDone() (a memory event) or assign(), so its next-event
     * bound is "never" and the GPU's memory hierarchy supplies the
     * wakeup cycle (DESIGN.md §9).
     */
    bool
    canIssueNow() const
    {
        return program_ != nullptr && !draining_ && readyCount_ > 0;
    }

    /**
     * Account @p cycles skipped issue() calls on a core for which
     * canIssueNow() is false: the legacy loop would have burned one
     * stall cycle per tick when draining or when all warps wait on
     * memory, and nothing else in issue() mutates on those paths.
     */
    void
    skipIdleCycles(Cycle cycles)
    {
        if (draining_ || (program_ != nullptr && readyCount_ == 0))
            stallCycles_ += cycles;
    }

    std::uint32_t numWarps() const
    {
        return static_cast<std::uint32_t>(warps_.size());
    }

    /** Instructions issued since the last resetStats. */
    std::uint64_t instructions() const { return instructions_; }

    /** Memory accesses below the issue stage still outstanding. */
    std::uint32_t outstanding() const { return outstanding_; }
    void noteAccessInFlight() { ++outstanding_; }

    // --- Address-space switch (Section 5.1) ---

    /** Stop issuing; the core completes in-flight accesses first. */
    void startDrain() { draining_ = true; }
    bool draining() const { return draining_; }
    bool drained() const { return draining_ && outstanding_ == 0; }

    /** Private L1 structures (wired by the GPU top level). */
    Tlb &l1Tlb() { return l1Tlb_; }
    SetAssocCache &l1d() { return l1d_; }
    MshrTable &l1Mshr() { return l1Mshr_; }
    HitMiss &l1dStats() { return l1dStats_; }
    Rng &rng() { return rng_; }

    /** Aggregate warp stall cycles spent waiting on memory. */
    std::uint64_t stallCycles() const { return stallCycles_; }

    void resetStats();

    /**
     * Snapshot all mutable core state. The program/stream-table
     * pointers are owned by the Gpu and are NOT serialized; after
     * deserialize the Gpu re-attaches them via rebindAfterRestore.
     */
    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);
    void rebindAfterRestore(const BenchmarkParams *program,
                            StreamTable *stream_table);
    /** True when the snapshot had a program bound (restore must call
     *  rebindAfterRestore with non-null pointers). */
    bool needsRebind() const { return hadProgram_; }

  private:
    Warp &warp(WarpId w) { return warps_[w]; }
    void makeReady(WarpId w);

    CoreId id_;
    const GpuConfig &cfg_;
    AppId app_ = 0;
    Asid asid_ = 0;
    const BenchmarkParams *program_ = nullptr;
    StreamTable *streamTable_ = nullptr;
    std::uint32_t warpIndexBase_ = 0;

    std::vector<Warp> warps_;
    std::deque<WarpId> readyQueue_;
    std::uint32_t readyCount_ = 0;
    int greedyWarp_ = -1;

    Tlb l1Tlb_;
    SetAssocCache l1d_;
    MshrTable l1Mshr_;
    HitMiss l1dStats_;
    Rng rng_;

    std::uint64_t instructions_ = 0;
    std::uint64_t stallCycles_ = 0;
    std::uint32_t outstanding_ = 0;
    bool draining_ = false;
    bool hadProgram_ = false; //!< set by deserialize (see needsRebind)
};

} // namespace mask

#endif // MASK_CORE_SHADER_CORE_HH
