/**
 * @file
 * Warp execution state. A warp alternates between compute phases
 * (one instruction per scheduler slot) and memory instructions whose
 * addresses come from the synthetic workload model; a warp issuing a
 * memory instruction blocks until the access completes (translation +
 * data), which is exactly the stall behaviour Fig. 4 of the paper
 * analyzes.
 */

#ifndef MASK_CORE_WARP_HH
#define MASK_CORE_WARP_HH

#include <cstdint>

#include "common/types.hh"
#include "workload/generator.hh"

namespace mask {

/** Scheduling state of one warp. */
enum class WarpState : std::uint8_t {
    Ready,   //!< has a compute or memory instruction to issue
    Waiting, //!< blocked on an outstanding memory access
};

/** One warp's execution and workload-cursor state. */
struct Warp
{
    WarpState state = WarpState::Ready;
    /** Compute instructions left before the next memory instruction. */
    std::uint32_t computeRemaining = 0;
    /** Outstanding coalesced accesses of the current mem instruction. */
    std::uint32_t partsOutstanding = 0;
    /** Instructions issued (compute + memory). */
    std::uint64_t instructions = 0;
    /** Memory accesses issued. */
    std::uint64_t memAccesses = 0;
    /** Cycle the outstanding access was issued (stall accounting). */
    Cycle stallStart = 0;
    /** Workload generator cursor. */
    WarpMemState mem;

    void
    reset()
    {
        *this = Warp{};
    }

    void
    serialize(StateWriter &w) const
    {
        w.tag("warp");
        w.u(static_cast<std::uint64_t>(state));
        w.u(computeRemaining);
        w.u(partsOutstanding);
        w.u(instructions);
        w.u(memAccesses);
        w.u(stallStart);
        mem.serialize(w);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("warp");
        const std::uint64_t s = r.u();
        if (s > static_cast<std::uint64_t>(WarpState::Waiting))
            r.fail("invalid warp state " + std::to_string(s));
        state = static_cast<WarpState>(s);
        computeRemaining = static_cast<std::uint32_t>(r.u());
        partsOutstanding = static_cast<std::uint32_t>(r.u());
        instructions = r.u();
        memAccesses = r.u();
        stallStart = r.u();
        mem.deserialize(r);
    }
};

} // namespace mask

#endif // MASK_CORE_WARP_HH
