// Warp is a plain aggregate; this file anchors the translation unit.
#include "core/warp.hh"
