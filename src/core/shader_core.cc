#include "core/shader_core.hh"

#include <algorithm>
#include <cassert>

namespace mask {

ShaderCore::ShaderCore(CoreId id, const GpuConfig &cfg)
    : id_(id),
      cfg_(cfg),
      l1Tlb_(cfg.l1Tlb),
      l1d_(cfg.l1d.numSets(), cfg.l1d.ways),
      l1Mshr_(cfg.l1d.mshrs),
      rng_(cfg.seed)
{
    warps_.resize(cfg.warpsPerCore);
}

void
ShaderCore::assign(AppId app, Asid asid, const BenchmarkParams *program,
                   StreamTable *stream_table,
                   std::uint32_t warp_index_base, std::uint64_t seed)
{
    assert(outstanding_ == 0 && "assigning a core that is not drained");
    app_ = app;
    asid_ = asid;
    program_ = program;
    streamTable_ = stream_table;
    warpIndexBase_ = warp_index_base;
    rng_.seed(seed ^ (0x9e37u + id_));
    draining_ = false;

    // Fresh kernel launch: new warps, cold private structures.
    l1Tlb_.flushAll();
    l1d_.flush();

    readyQueue_.clear();
    readyCount_ = 0;
    greedyWarp_ = -1;
    for (WarpId w = 0; w < warps_.size(); ++w) {
        warps_[w].reset();
        warps_[w].computeRemaining =
            program_ ? nextComputeInterval(*program_, rng_) : 0;
        readyQueue_.push_back(w);
        ++readyCount_;
    }
}

void
ShaderCore::makeReady(WarpId w)
{
    warps_[w].state = WarpState::Ready;
    readyQueue_.push_back(w);
    ++readyCount_;
}

std::optional<IssuedAccess>
ShaderCore::issue(Cycle now)
{
    if (program_ == nullptr || draining_) {
        stallCycles_ += draining_ ? 1 : 0;
        return std::nullopt;
    }

    // All warps waiting on memory: skip the scheduler entirely (the
    // ready queue holds no Ready entries when readyCount_ is 0).
    if (readyCount_ == 0) {
        ++stallCycles_;
        return std::nullopt;
    }

    // GTO: stick with the greedy warp while it can issue; otherwise
    // take the oldest ready warp (FIFO order of stall completion).
    WarpId selected;
    if (greedyWarp_ >= 0 &&
        warps_[greedyWarp_].state == WarpState::Ready) {
        selected = static_cast<WarpId>(greedyWarp_);
    } else {
        // Drop stale queue entries of warps that went Waiting.
        while (!readyQueue_.empty() &&
               warps_[readyQueue_.front()].state != WarpState::Ready) {
            readyQueue_.pop_front();
        }
        if (readyQueue_.empty()) {
            ++stallCycles_;
            return std::nullopt;
        }
        selected = readyQueue_.front();
        readyQueue_.pop_front();
        greedyWarp_ = selected;
    }

    Warp &w = warps_[selected];
    ++w.instructions;
    ++instructions_;

    if (w.computeRemaining > 0) {
        --w.computeRemaining;
        // Greedy warp stays selected; ensure it is findable next
        // cycle without a queue entry.
        return std::nullopt;
    }

    // Memory instruction: generate the (possibly divergent) accesses
    // and block the warp until all of them complete. Accesses that
    // reuse the warp's previous line are serviced locally and create
    // no memory traffic.
    IssuedAccess issued;
    issued.warp = selected;
    issued.count = 0;
    const std::uint32_t parts = std::min<std::uint32_t>(
        std::max<std::uint32_t>(1, program_->memDivergence),
        IssuedAccess::kMaxParts);
    for (std::uint32_t i = 0; i < parts; ++i) {
        bool reused = false;
        const Addr vaddr = nextVaddr(
            *program_, w.mem, rng_, warpIndexBase_ + selected,
            *streamTable_, cfg_.pageBits, cfg_.lineBits, &reused);
        if (!reused)
            issued.vaddrs[issued.count++] = vaddr;
    }
    ++w.memAccesses;

    if (issued.count == 0) {
        // Entirely warp-local: the instruction completes immediately.
        w.computeRemaining = nextComputeInterval(*program_, rng_);
        return std::nullopt;
    }

    w.state = WarpState::Waiting;
    w.stallStart = now;
    w.partsOutstanding = issued.count;
    --readyCount_;
    greedyWarp_ = -1;
    return issued;
}

void
ShaderCore::accessDone(WarpId warp_id, Cycle now)
{
    Warp &w = warps_[warp_id];
    assert(w.state == WarpState::Waiting);
    assert(w.partsOutstanding > 0);
    assert(outstanding_ > 0);
    --outstanding_;
    if (--w.partsOutstanding > 0)
        return;
    stallCycles_ += now - w.stallStart;
    w.computeRemaining = nextComputeInterval(*program_, rng_);
    makeReady(warp_id);
}

void
ShaderCore::serialize(StateWriter &w) const
{
    w.tag("core");
    w.u(app_);
    w.u(asid_);
    w.b(program_ != nullptr);
    w.u(warpIndexBase_);
    w.u(warps_.size());
    for (const Warp &warp : warps_)
        warp.serialize(w);
    putUintSeq(w, readyQueue_);
    w.u(readyCount_);
    w.i(greedyWarp_);
    l1Tlb_.serialize(w);
    l1d_.serialize(w);
    l1Mshr_.serialize(w);
    l1dStats_.serialize(w);
    rng_.serialize(w);
    w.u(instructions_);
    w.u(stallCycles_);
    w.u(outstanding_);
    w.b(draining_);
}

void
ShaderCore::deserialize(StateReader &r)
{
    r.tag("core");
    app_ = static_cast<AppId>(r.u());
    asid_ = static_cast<Asid>(r.u());
    // Whether a program was bound; the Gpu re-attaches the actual
    // pointer via rebindAfterRestore (nullptr when this is false).
    const bool had_program = r.b();
    program_ = nullptr;
    streamTable_ = nullptr;
    warpIndexBase_ = static_cast<std::uint32_t>(r.u());
    const std::uint64_t warp_count = r.u();
    if (warp_count != warps_.size())
        r.fail("warp count mismatch (" + std::to_string(warp_count) +
               " vs configured " + std::to_string(warps_.size()) + ")");
    for (Warp &warp : warps_)
        warp.deserialize(r);
    getUintSeq(r, readyQueue_);
    for (const WarpId w : readyQueue_) {
        if (w >= warps_.size())
            r.fail("ready-queue warp id out of range");
    }
    readyCount_ = static_cast<std::uint32_t>(r.u());
    greedyWarp_ = static_cast<int>(r.i());
    if (greedyWarp_ < -1 ||
        greedyWarp_ >= static_cast<int>(warps_.size()))
        r.fail("greedy warp index out of range");
    l1Tlb_.deserialize(r);
    l1d_.deserialize(r);
    l1Mshr_.deserialize(r);
    l1dStats_.deserialize(r);
    rng_.deserialize(r);
    instructions_ = r.u();
    stallCycles_ = r.u();
    outstanding_ = static_cast<std::uint32_t>(r.u());
    draining_ = r.b();
    hadProgram_ = had_program;
}

void
ShaderCore::rebindAfterRestore(const BenchmarkParams *program,
                               StreamTable *stream_table)
{
    program_ = program;
    streamTable_ = stream_table;
}

void
ShaderCore::resetStats()
{
    instructions_ = 0;
    stallCycles_ = 0;
    l1Tlb_.resetStats();
    l1dStats_.reset();
}

} // namespace mask
