/**
 * @file
 * Deterministic checkpoint/restore of full GPU state (DESIGN.md §11).
 *
 * A snapshot file is one header line plus the raw StateWriter payload:
 *
 *   MASKSNAP <version> <configFingerprint> <cycle> <payloadLen> <fnv1a>
 *   <payload bytes>
 *
 * The loader is strict: the magic, format version, configuration
 * fingerprint, payload length, and FNV-1a checksum must all match
 * before a single payload token is decoded, and the payload itself is
 * decoded by the bounds-checked StateReader — so a truncated,
 * bit-flipped, stale-version, or wrong-config snapshot is rejected
 * with a structured SnapshotError (never UB; the corruption tests run
 * under ASan/UBSan).
 *
 * Periodic checkpointing is driven by three environment knobs:
 *
 *   MASK_CKPT_INTERVAL_CYCLES  checkpoint every N simulated cycles
 *                              (0 / unset = disabled)
 *   MASK_CKPT_DIR              directory for snapshot files
 *                              (default ".")
 *   MASK_CKPT_KEEP=1           keep snapshots after a successful run
 *                              (default: deleted on success)
 *
 * Every periodic checkpoint also publishes its rendered bytes to a
 * thread-local double buffer; the fatal-signal handlers flush the last
 * complete buffer to "<path>.sig" with async-signal-safe calls, so a
 * SIGSEGV/SIGABRT mid-run loses at most one checkpoint interval.
 */

#ifndef MASK_SIM_SNAPSHOT_HH
#define MASK_SIM_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

class Gpu;
struct GpuStats;

/** Snapshot file format version (bump on any payload layout change). */
constexpr std::uint64_t kSnapshotVersion = 1;

/** FNV-1a 64-bit hash (payload checksums). */
std::uint64_t fnv1a64(std::string_view data);

/** Render the complete snapshot file image for @p gpu. */
std::string renderSnapshot(std::uint64_t config_fingerprint,
                           const Gpu &gpu);

/**
 * Serialize @p gpu and atomically write it to @p path (tmp + rename,
 * so a crash mid-write never leaves a half-snapshot under the real
 * name). Returns the file size in bytes; throws std::runtime_error on
 * I/O failure.
 */
std::uint64_t saveSnapshotFile(const std::string &path,
                               std::uint64_t config_fingerprint,
                               const Gpu &gpu);

/**
 * Validate the header of the snapshot image in @p data against
 * @p config_fingerprint and return the payload view. Throws
 * SnapshotError naming the failing check (magic, version,
 * fingerprint, truncation, checksum).
 */
std::string_view validateSnapshotImage(
    std::string_view data, std::uint64_t config_fingerprint,
    std::uint64_t *cycle_out = nullptr);

/**
 * Load, validate, and restore @p path into @p gpu, which must have
 * been constructed from the configuration whose fingerprint is
 * @p config_fingerprint. Throws SnapshotError on any validation or
 * decode failure (the Gpu must then be discarded, not reused).
 */
void loadSnapshotFile(const std::string &path,
                      std::uint64_t config_fingerprint, Gpu &gpu);

/**
 * Cycle recorded in the header of @p path, without restoring the
 * payload. Throws SnapshotError if the file is missing or its header
 * fails validation against @p config_fingerprint.
 */
std::uint64_t snapshotFileCycle(const std::string &path,
                                std::uint64_t config_fingerprint);

// --- Periodic checkpoint policy (MASK_CKPT_* knobs) ------------------

struct CheckpointPolicy
{
    Cycle intervalCycles = 0; //!< 0 = checkpointing disabled
    std::string dir = ".";    //!< directory for snapshot files
    bool keep = false;        //!< keep snapshots after success

    bool enabled() const { return intervalCycles != 0; }
};

/** Policy from MASK_CKPT_INTERVAL_CYCLES / MASK_CKPT_DIR /
 *  MASK_CKPT_KEEP. */
CheckpointPolicy checkpointPolicyFromEnv();

/**
 * Deterministic per-job snapshot path: the same (config, workload,
 * windows) job always maps to the same file, so a re-run after a kill
 * finds the checkpoints its previous incarnation wrote.
 */
std::string checkpointPath(const CheckpointPolicy &policy,
                           std::uint64_t config_fingerprint,
                           const std::vector<std::string> &benches,
                           Cycle warmup, Cycle measure);

/**
 * Run warmup + measure windows on a Gpu built by @p make_gpu, with
 * checkpoint/resume under @p policy, and return collect(). With
 * checkpointing disabled this is exactly run(warmup); resetStats();
 * run(measure). When enabled:
 *
 *  - the newest valid snapshot among {path, path + ".sig"} is
 *    restored first (an invalid candidate is skipped with a stderr
 *    warning — and the Gpu rebuilt via @p make_gpu if the restore
 *    failed mid-payload — falling back to cycle 0 when none loads);
 *  - a checkpoint is written every intervalCycles and mirrored to the
 *    emergency buffer flushed by the fatal-signal handlers;
 *  - on success the snapshot files are deleted unless policy.keep.
 *
 * Simulated results are bit-identical with checkpointing on, off, or
 * resumed mid-run — checkpoints only observe state, never change it.
 */
GpuStats
runWithCheckpoints(const std::function<std::unique_ptr<Gpu>()> &make_gpu,
                   const CheckpointPolicy &policy,
                   std::uint64_t config_fingerprint,
                   const std::string &path, Cycle warmup,
                   Cycle measure);

// --- Emergency snapshots (fatal-signal flush) -------------------------

/**
 * Arm the calling thread's emergency snapshot sink for this scope: the
 * fatal-signal handlers write the last buffer published with
 * publishEmergencySnapshot() to @p path. Scopes nest; destruction
 * restores the previous state.
 */
class ScopedEmergencySnapshot
{
  public:
    explicit ScopedEmergencySnapshot(const std::string &path);
    ~ScopedEmergencySnapshot();

    ScopedEmergencySnapshot(const ScopedEmergencySnapshot &) = delete;
    ScopedEmergencySnapshot &
    operator=(const ScopedEmergencySnapshot &) = delete;

  private:
    std::string prevPath_;
    bool prevArmed_;
};

/**
 * Publish a freshly-rendered snapshot image to the calling thread's
 * double buffer. The write goes to the buffer the signal handler is
 * NOT reading, then the ready index flips atomically — a signal
 * landing mid-publish flushes the previous complete image.
 */
void publishEmergencySnapshot(const std::string &image);

/**
 * Move-publish overload for the periodic checkpoint path: the caller
 * is done with @p image, so the bytes move into the double buffer
 * instead of being copied (snapshots run to megabytes).
 */
void publishEmergencySnapshot(std::string &&image);

/**
 * Flush the calling thread's armed emergency snapshot, if any, to its
 * path with async-signal-safe calls only (open/write/close). Invoked
 * by the fatal-signal handlers in crash_repro.cc next to the repro
 * flush; safe to call from any context.
 */
void flushEmergencySnapshotFromSignal() noexcept;

} // namespace mask

#endif // MASK_SIM_SNAPSHOT_HH
