#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/check.hh"
#include "sim/cancel.hh"
#include "sim/crash_repro.hh"
#include "sim/snapshot.hh"
#include "sim/sweep_io.hh"

namespace mask {

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    const long long n = std::atoll(env);
    return n >= 0 ? static_cast<std::uint64_t>(n) : fallback;
}

/**
 * Deterministic fault injection for the resilience smoke tests:
 * MASK_SWEEP_FAULT_CRASH=<job index> segfaults that job on every
 * attempt, MASK_SWEEP_FAULT_HANG=<job index> spins it forever
 * (cancellable, so a deadline can reclaim it in-process; SIGKILL
 * reclaims it in isolation mode). Unset, this is a few getenv calls
 * per job — invisible next to a simulation.
 */
void
injectSweepTestFault(std::size_t job_idx)
{
    const auto matches = [job_idx](const char *name) {
        const char *env = std::getenv(name);
        if (env == nullptr || env[0] == '\0')
            return false;
        return std::atoll(env) ==
               static_cast<long long>(job_idx);
    };
    if (matches("MASK_SWEEP_FAULT_CRASH")) {
        volatile int *null_ptr = nullptr;
        *null_ptr = 42; // deliberate SIGSEGV
    }
    if (matches("MASK_SWEEP_FAULT_HANG")) {
        for (;;) {
            pollCancellation();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    }
}

/** Watch a token for the scope of one attempt (no-op without a
 *  monitor or deadline). */
struct DeadlineWatch
{
    DeadlineMonitor *monitor = nullptr;
    std::uint64_t handle = 0;

    DeadlineWatch(DeadlineMonitor *m, CancelToken &token,
                  std::uint64_t timeout_ms)
    {
        if (m != nullptr && timeout_ms > 0) {
            monitor = m;
            handle = m->watch(&token, timeout_ms);
        }
    }

    ~DeadlineWatch()
    {
        if (monitor != nullptr)
            monitor->unwatch(handle);
    }

    DeadlineWatch(const DeadlineWatch &) = delete;
    DeadlineWatch &operator=(const DeadlineWatch &) = delete;
};

const char *
fatalSignalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGILL: return "SIGILL";
      default: return "signal";
    }
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), R_OK) == 0;
}

void
writeAllFd(int fd, const std::string &data)
{
    std::size_t done = 0;
    while (done < data.size()) {
        const ::ssize_t n =
            ::write(fd, data.data() + done, data.size() - done);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // reader gone; parent will see a short payload
        }
        done += static_cast<std::size_t>(n);
    }
}

} // namespace

unsigned
sweepJobs()
{
    const char *env = std::getenv("MASK_BENCH_JOBS");
    if (env == nullptr || env[0] == '\0')
        return 1;
    const long n = std::atol(env);
    if (n < 0)
        return 1;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw != 0 ? hw : 1;
    }
    return static_cast<unsigned>(n);
}

const char *
sweepStatusName(SweepStatus status)
{
    switch (status) {
      case SweepStatus::Ok: return "Ok";
      case SweepStatus::Failed: return "Failed";
      case SweepStatus::TimedOut: return "TimedOut";
      case SweepStatus::Crashed: return "Crashed";
      case SweepStatus::Abandoned: return "Abandoned";
    }
    return "Unknown";
}

SweepStatus
sweepStatusFromName(const std::string &name)
{
    for (const SweepStatus status :
         {SweepStatus::Ok, SweepStatus::Failed, SweepStatus::TimedOut,
          SweepStatus::Crashed, SweepStatus::Abandoned}) {
        if (name == sweepStatusName(status))
            return status;
    }
    return SweepStatus::Failed;
}

SweepPolicy
sweepPolicyFromEnv()
{
    SweepPolicy policy;
    policy.timeoutMs = envU64("MASK_SWEEP_TIMEOUT_MS", 0);
    policy.retries =
        static_cast<unsigned>(envU64("MASK_SWEEP_RETRIES", 0));
    policy.backoffMs = envU64("MASK_SWEEP_BACKOFF_MS", 100);
    if (const char *iso = std::getenv("MASK_SWEEP_ISOLATE");
        iso != nullptr && iso[0] == '1') {
        policy.isolate = true;
    }
    if (const char *journal = std::getenv("MASK_SWEEP_JOURNAL");
        journal != nullptr && journal[0] != '\0') {
        policy.journalPath = journal;
    }
    return policy;
}

std::uint64_t
sweepBackoffMs(const SweepPolicy &policy, unsigned attempt)
{
    constexpr std::uint64_t kCapMs = 5000;
    if (policy.backoffMs == 0)
        return 0;
    if (attempt >= 16)
        return kCapMs;
    return std::min(kCapMs, policy.backoffMs << attempt);
}

// ---------------------------------------------------------------------
// Warm-state cache (DESIGN.md §14)
// ---------------------------------------------------------------------

WarmPolicy
warmPolicyFromEnv()
{
    WarmPolicy policy;
    if (const char *on = std::getenv("MASK_SWEEP_WARM");
        on != nullptr && on[0] == '1') {
        policy.enabled = true;
    }
    if (const char *dir = std::getenv("MASK_SWEEP_WARM_DIR");
        dir != nullptr && dir[0] != '\0') {
        policy.dir = dir;
        policy.enabled = true;
    }
    policy.memCapBytes = static_cast<std::size_t>(
                             envU64("MASK_SWEEP_WARM_MEM_MB", 256))
                         << 20;
    return policy;
}

namespace {

/** Read @p path fully into @p out; false when it does not exist. */
bool
readWarmFile(const std::string &path, std::string &out)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    out.clear();
    char buf[1 << 16];
    for (;;) {
        const ::ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        ::close(fd);
        // A read error mid-file degrades to a miss: the caller
        // re-produces the image and overwrites the file.
        return n == 0;
    }
}

/** Atomic tmp + rename publish (cross-process readers never see a
 *  half-written warm snapshot; the pid suffix keeps concurrent
 *  producers of the same key from clobbering each other's tmp). */
void
writeWarmFile(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw std::runtime_error("cannot write warm snapshot: " + tmp);
    writeAllFd(fd, content);
    if (::close(fd) != 0 ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot publish warm snapshot: " +
                                 path);
    }
}

} // namespace

WarmStateCache::WarmStateCache(WarmPolicy policy)
    : policy_(std::move(policy))
{
    if (!policy_.dir.empty())
        ::mkdir(policy_.dir.c_str(), 0777); // best-effort; open reports
}

std::string
WarmStateCache::filePath(const std::string &key) const
{
    return policy_.dir + "/" + key + ".snap";
}

std::string
WarmStateCache::getOrWarm(const std::string &key, Cycle warmup_cycles,
                          const std::function<std::string()> &produce)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        auto it = slots_.find(key);
        if (it == slots_.end())
            break; // this thread produces (or reads the file)
        if (it->second.ready) {
            lru_.splice(lru_.begin(), lru_, it->second.lru);
            ++stats_.hits;
            stats_.warmupCyclesSaved += warmup_cycles;
            return it->second.image;
        }
        // Another thread is warming this key; if it fails the slot is
        // erased and the loop falls through to retry.
        ready_.wait(lock);
    }
    slots_.emplace(key, Slot{});
    lock.unlock();

    std::string image;
    bool from_file = false;
    try {
        // A file left by another process (fork-isolated sibling, a
        // previous journal-interrupted sweep) is as good as a memory
        // hit — the consumer validates header + checksum either way.
        if (!policy_.dir.empty())
            from_file = readWarmFile(filePath(key), image);
        if (!from_file)
            image = produce();
    } catch (...) {
        lock.lock();
        slots_.erase(key);
        ready_.notify_all();
        throw;
    }
    if (!from_file && !policy_.dir.empty()) {
        try {
            writeWarmFile(filePath(key), image);
        } catch (const std::exception &err) {
            // Disk trouble costs cross-process reuse, nothing else.
            std::fprintf(stderr, "[sweep] %s\n", err.what());
        }
    }

    lock.lock();
    if (from_file) {
        ++stats_.hits;
        stats_.warmupCyclesSaved += warmup_cycles;
    } else {
        ++stats_.misses;
    }
    publishLocked(key, image);
    ready_.notify_all();
    return image;
}

void
WarmStateCache::publishLocked(const std::string &key,
                              const std::string &image)
{
    auto it = slots_.find(key);
    if (it == slots_.end())
        return; // invalidated while producing
    if (policy_.memCapBytes != 0 &&
        image.size() > policy_.memCapBytes) {
        // Never memory-resident; the file (if any) still serves it.
        slots_.erase(it);
        return;
    }
    it->second.image = image;
    it->second.ready = true;
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    memBytes_ += image.size();
    while (policy_.memCapBytes != 0 && memBytes_ > policy_.memCapBytes &&
           lru_.size() > 1) {
        const std::string victim = lru_.back();
        lru_.pop_back();
        auto vit = slots_.find(victim);
        if (vit != slots_.end()) {
            memBytes_ -= vit->second.image.size();
            slots_.erase(vit);
        }
        ++stats_.evictions;
    }
}

void
WarmStateCache::invalidate(const std::string &key)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it != slots_.end() && it->second.ready) {
        memBytes_ -= it->second.image.size();
        lru_.erase(it->second.lru);
        slots_.erase(it);
    }
    if (!policy_.dir.empty())
        ::unlink(filePath(key).c_str());
}

void
WarmStateCache::noteBypass()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.bypasses;
}

void
WarmStateCache::noteFallback()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fallbacks;
}

WarmStateCache::Stats
WarmStateCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

SweepRunner::SweepRunner(RunOptions options)
    : SweepRunner(options, sweepJobs())
{}

SweepRunner::SweepRunner(RunOptions options, unsigned jobs)
    : options_(options), jobs_(jobs != 0 ? jobs : 1),
      policy_(sweepPolicyFromEnv()), dist_(distPolicyFromEnv()),
      cache_(std::make_shared<AloneIpcCache>())
{
    if (const WarmPolicy warm = warmPolicyFromEnv(); warm.enabled)
        warm_ = std::make_shared<WarmStateCache>(warm);
    applyDistWarmDefault();
}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::setPolicy(SweepPolicy policy)
{
    policy_ = std::move(policy);
    journal_.reset(); // re-bound (lazily) to the new path
    monitor_.reset();
}

void
SweepRunner::setWarmPolicy(WarmPolicy policy)
{
    warm_ = policy.enabled
                ? std::make_shared<WarmStateCache>(std::move(policy))
                : nullptr;
}

void
SweepRunner::setDistPolicy(DistPolicy policy)
{
    dist_ = std::move(policy);
    journal_.reset(); // re-bound to the worker shard on the next run
    applyDistWarmDefault();
}

void
SweepRunner::applyDistWarmDefault()
{
    if (!dist_.enabled())
        return;
    // Distributed workers share warm snapshots through the sweep
    // directory by default: a memory-only (or disabled) warm cache
    // becomes file-backed at <dist dir>/warm. An explicit
    // MASK_SWEEP_WARM_DIR (or setWarmPolicy with a dir) wins.
    WarmPolicy warm =
        warm_ != nullptr ? warm_->policy() : warmPolicyFromEnv();
    if (warm.enabled && !warm.dir.empty())
        return;
    warm.enabled = true;
    warm.dir = dist_.dir + "/warm";
    // The sweep dir may not exist yet (the coordinator creates it at
    // run()); the warm cache mkdirs only its own leaf, so make the
    // parent here.
    ::mkdir(dist_.dir.c_str(), 0755);
    warm_ = std::make_shared<WarmStateCache>(std::move(warm));
}

WarmStateCache::Stats
SweepRunner::warmStats() const
{
    return warm_ != nullptr ? warm_->stats() : WarmStateCache::Stats{};
}

void
SweepRunner::setExecutorForTest(Executor executor)
{
    executor_ = std::move(executor);
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    pending_.push_back(std::move(job));
    return results_.size() + pending_.size() - 1;
}

const PairResult &
SweepRunner::result(std::size_t index) const
{
    SIM_CHECK(index < results_.size(), "sim.sweep", kUnknownCycle,
              "sweep result index out of range (run() not called?)");
    const SweepOutcome &outcome = outcomes_[index];
    if (outcome.status != SweepStatus::Ok) {
        if (outcome.exception)
            std::rethrow_exception(outcome.exception);
        throw std::runtime_error(
            "sweep job " + std::to_string(index) + " " +
            sweepStatusName(outcome.status) + ": " + outcome.error);
    }
    return results_[index];
}

const SweepOutcome &
SweepRunner::outcome(std::size_t index) const
{
    SIM_CHECK(index < outcomes_.size(), "sim.sweep", kUnknownCycle,
              "sweep outcome index out of range (run() not called?)");
    return outcomes_[index];
}

std::size_t
SweepRunner::failedJobs() const
{
    std::size_t failed = 0;
    for (const SweepOutcome &outcome : outcomes_)
        failed += outcome.status != SweepStatus::Ok;
    return failed;
}

std::string
SweepRunner::jobKey(const SweepJob &job) const
{
    // Everything that determines the job's result: the structural
    // config fingerprint (covers seed, shares, hardening, ...), the
    // design point, the bench list, the sweep mode, and the run
    // windows.
    std::string key = std::to_string(configFingerprint(job.arch));
    key += '|';
    key += designPointName(job.point);
    for (const std::string &bench : job.benches) {
        key += '|';
        key += bench;
    }
    key += job.mode == SweepMode::SharedOnly ? "|shared" : "|metrics";
    const RunOptions &opts = job.options ? *job.options : options_;
    key += '|';
    key += std::to_string(opts.warmup);
    key += '|';
    key += std::to_string(opts.measure);
    return key;
}

PairResult
SweepRunner::execute(Evaluator &eval, const SweepJob &job)
{
    if (executor_)
        return executor_(eval, job);
    // A per-job window override gets an ephemeral Evaluator sharing
    // the worker's caches: the alone-IPC memo keys on the windows, and
    // the warm cache is exactly what lets a measure-length grid share
    // one warmed snapshot.
    Evaluator local(job.options ? *job.options : eval.options(),
                    cache_);
    local.setWarmCache(eval.warmCache());
    Evaluator &use = job.options ? local : eval;
    PairResult result;
    if (job.mode == SweepMode::SharedOnly) {
        result.stats = use.runShared(job.arch, job.point, job.benches);
        result.sharedIpc = result.stats.ipc;
    } else {
        result = use.evaluate(job.arch, job.point, job.benches);
    }
    return result;
}

void
SweepRunner::finishJob(std::size_t index, const std::string &key,
                       PairResult result, SweepOutcome outcome)
{
    if (journal_ != nullptr) {
        // A journal write failure must not sink the job it records.
        try {
            journal_->record(
                key, sweepStatusName(outcome.status),
                outcome.attempts, outcome.error,
                outcome.status == SweepStatus::Ok ? &result : nullptr,
                outcome.reproPath);
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "[sweep] journal write failed: %s\n",
                         err.what());
        }
    }
    results_[index] = std::move(result);
    outcomes_[index] = std::move(outcome);
}

SweepOutcome
SweepRunner::attemptWithPolicy(Evaluator &eval, const SweepJob &job,
                               std::size_t job_idx, PairResult &out)
{
    SweepOutcome outcome;
    for (unsigned attempt = 0;; ++attempt) {
        outcome.attempts = attempt + 1;
        try {
            CancelToken token;
            const ScopedCancelToken scoped(&token);
            const DeadlineWatch watch(monitor_.get(), token,
                                      policy_.timeoutMs);
            injectSweepTestFault(job_idx);
            out = execute(eval, job);
            outcome.status = SweepStatus::Ok;
            outcome.error.clear();
            outcome.exception = nullptr;
            return outcome;
        } catch (const SimCancelledError &err) {
            outcome.status = SweepStatus::TimedOut;
            outcome.error = err.what();
            outcome.exception = nullptr;
        } catch (const SimInvariantError &err) {
            outcome.status = SweepStatus::Failed;
            outcome.error = err.what();
            outcome.exception = std::current_exception();
            // captureCrash persisted the repro before rethrowing.
            outcome.reproPath = reproFilePath();
        } catch (const std::exception &err) {
            outcome.status = SweepStatus::Failed;
            outcome.error = err.what();
            outcome.exception = std::current_exception();
        } catch (...) {
            outcome.status = SweepStatus::Failed;
            outcome.error = "unknown exception";
            outcome.exception = std::current_exception();
        }
        if (attempt >= policy_.retries)
            return outcome;
        const std::uint64_t delay = sweepBackoffMs(policy_, attempt);
        if (delay > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

void
SweepRunner::runOne(Evaluator &eval, std::size_t pend_idx,
                    std::size_t base)
{
    const SweepJob &job = pending_[pend_idx];
    PairResult result;
    SweepOutcome outcome =
        attemptWithPolicy(eval, job, base + pend_idx, result);
    finishJob(base + pend_idx, jobKey(job), std::move(result),
              std::move(outcome));
}

void
SweepRunner::run()
{
    if (pending_.empty())
        return;
    const std::size_t base = results_.size();
    const std::size_t batch = pending_.size();
    results_.resize(base + batch);
    outcomes_.resize(base + batch);

    if (dist_.enabled()) {
        runDistributed(base);
        pending_.clear();
        return;
    }

    if (!policy_.journalPath.empty() && journal_ == nullptr)
        journal_ = std::make_unique<SweepJournal>(policy_.journalPath);

    // Journal pre-pass: jobs a previous run completed are loaded, not
    // re-simulated. The decoded results are bit-exact, so bench
    // output after a resume is byte-identical to an uninterrupted run.
    std::vector<std::size_t> todo;
    todo.reserve(batch);
    std::size_t loaded = 0;
    for (std::size_t i = 0; i < batch; ++i) {
        if (journal_ != nullptr) {
            PairResult result;
            unsigned attempts = 1;
            bool hit = false;
            try {
                hit = journal_->lookupOk(jobKey(pending_[i]), result,
                                         attempts);
            } catch (const std::exception &err) {
                // A corrupt entry degrades to a re-simulation.
                std::fprintf(stderr,
                             "[sweep] journal entry unusable: %s\n",
                             err.what());
            }
            if (hit) {
                SweepOutcome outcome;
                outcome.status = SweepStatus::Ok;
                outcome.attempts = attempts;
                outcome.fromJournal = true;
                results_[base + i] = std::move(result);
                outcomes_[base + i] = std::move(outcome);
                ++loaded;
                ++journalHits_;
                continue;
            }
        }
        todo.push_back(i);
    }
    if (journal_ != nullptr) {
        std::fprintf(stderr,
                     "[sweep] journal %s: loaded %zu/%zu jobs, "
                     "simulating %zu\n",
                     journal_->path().c_str(), loaded, batch,
                     todo.size());
    }

    if (!todo.empty()) {
        if (policy_.isolate) {
            runIsolated(todo, base);
        } else {
            if (policy_.timeoutMs > 0 && monitor_ == nullptr)
                monitor_ = std::make_unique<DeadlineMonitor>();
            runBatch(todo, base);
        }
    }
    pending_.clear();
}

void
SweepRunner::runBatch(const std::vector<std::size_t> &todo,
                      std::size_t base)
{
    // Inline on the calling thread whenever a single worker would do
    // all the work anyway: a one-thread pool pays spawn/join and
    // atomic work-queue overhead for zero parallelism (visible as a
    // <1.0 "speedup" on single-CPU hosts).
    const std::size_t workers =
        std::min<std::size_t>(jobs_, todo.size());
    if (workers <= 1) {
        Evaluator eval(options_, cache_);
        eval.setWarmCache(warm_);
        for (const std::size_t pend_idx : todo)
            runOne(eval, pend_idx, base);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        // Workers share the alone-IPC memo and the warm-state cache
        // but nothing else; each simulation is wholly thread-private,
        // and every failure is absorbed into the job's outcome rather
        // than thrown.
        Evaluator eval(options_, cache_);
        eval.setWarmCache(warm_);
        for (;;) {
            const std::size_t n =
                next.fetch_add(1, std::memory_order_relaxed);
            if (n >= todo.size())
                return;
            runOne(eval, todo[n], base);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

// ---------------------------------------------------------------------
// Distributed execution (MASK_SWEEP_DIST_DIR, DESIGN.md §15)
// ---------------------------------------------------------------------

void
SweepRunner::runDistributed(std::size_t base)
{
    const std::size_t batch = pending_.size();
    DistCoordinator dist(dist_);
    dist.noteJobs(batch);

    // In dist mode the per-worker shard IS the journal: finishJob()
    // lands every local outcome there as a durable, single-write
    // record, and peers learn of it by tailing the shard directory.
    if (!policy_.journalPath.empty() &&
        policy_.journalPath != dist.shardPath()) {
        std::fprintf(stderr,
                     "[dist] MASK_SWEEP_JOURNAL ignored: per-worker "
                     "shard %s is the journal\n",
                     dist.shardPath().c_str());
    }
    journal_ = std::make_unique<SweepJournal>(dist.shardPath());
    journal_->setWorkerTag(dist_.worker);

    if (policy_.timeoutMs > 0 && monitor_ == nullptr &&
        !policy_.isolate)
        monitor_ = std::make_unique<DeadlineMonitor>();

    Evaluator eval(options_, cache_);
    eval.setWarmCache(warm_);

    std::vector<std::string> keys(batch);
    for (std::size_t i = 0; i < batch; ++i)
        keys[i] = jobKey(pending_[i]);

    // Claim loop: repeated submission-order passes over the batch.
    // Every pass first ingests what other workers published; a job
    // with any terminal shard entry is done (unlike a serial-journal
    // resume, a Failed entry is not re-simulated here — one worker's
    // permafail must not cascade into every worker re-running it).
    // Unclaimed jobs are taken with a lease and executed; jobs whose
    // lease is held elsewhere are skipped and re-checked next pass.
    std::vector<char> done(batch, 0);
    std::vector<char> local(batch, 0);
    std::size_t remaining = batch;
    while (remaining > 0) {
        dist.refreshShards();
        bool progress = false;
        for (std::size_t i = 0; i < batch; ++i) {
            if (done[i] != 0)
                continue;
            if (dist.terminal(keys[i]) != nullptr) {
                done[i] = 1; // decoded in the merge pass below
                --remaining;
                progress = true;
                continue;
            }
            if (dist_.mergeOnly)
                continue;
            unsigned steals = 0;
            switch (dist.tryClaim(keys[i], &steals)) {
              case DistCoordinator::Claim::Acquired:
                if (policy_.isolate)
                    runIsolated(std::vector<std::size_t>{i}, base);
                else
                    runOne(eval, i, base);
                // Release only after finishJob made the shard record
                // durable: a lease must never vanish while the job's
                // completion is still invisible to peers.
                dist.release(keys[i]);
                dist.noteExecuted();
                local[i] = 1;
                done[i] = 1;
                --remaining;
                progress = true;
                break;
              case DistCoordinator::Claim::Abandoned: {
                SweepOutcome outcome;
                outcome.status = SweepStatus::Abandoned;
                outcome.attempts = 0;
                outcome.error =
                    "lease stolen " + std::to_string(steals) +
                    " time(s) with no durable result; job abandoned "
                    "(MASK_SWEEP_DIST_MAX_STEALS=" +
                    std::to_string(dist_.maxSteals) + ")";
                finishJob(base + i, keys[i], PairResult{},
                          std::move(outcome));
                dist.noteAbandoned();
                local[i] = 1;
                done[i] = 1;
                --remaining;
                progress = true;
                break;
              }
              case DistCoordinator::Claim::Busy:
                break;
            }
        }
        if (remaining == 0 || dist_.mergeOnly)
            break;
        if (!progress) {
            dist.noteWaiting(remaining);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(dist_.pollMs));
        }
    }

    // Deterministic merge: every job this worker did not execute is
    // decoded from the shard view's winning entry. The blobs are
    // bit-exact and winner selection is arrival-order independent, so
    // this worker's results_ — and any other worker's, and a
    // merge-only pass's — match a single-process serial run byte for
    // byte.
    dist.refreshShards();
    dist.finalizeMerge();
    for (std::size_t i = 0; i < batch; ++i) {
        if (local[i] != 0)
            continue;
        const DistCoordinator::Entry *entry = dist.terminal(keys[i]);
        PairResult result;
        SweepOutcome outcome;
        if (entry == nullptr) {
            outcome.status = SweepStatus::Failed;
            outcome.error =
                dist_.mergeOnly
                    ? "no shard entry for this job "
                      "(MASK_SWEEP_DIST_MERGE=1 never executes)"
                    : "no shard entry after distributed run";
        } else {
            outcome.status = sweepStatusFromName(entry->status);
            outcome.attempts = entry->attempts;
            outcome.error = entry->error;
            outcome.reproPath = entry->repro;
            outcome.fromJournal = true;
            if (outcome.status == SweepStatus::Ok) {
                try {
                    result = decodePairResult(entry->blob);
                    ++journalHits_;
                } catch (const std::exception &err) {
                    outcome.status = SweepStatus::Failed;
                    outcome.error =
                        std::string("shard entry undecodable: ") +
                        err.what();
                }
            }
            dist.noteLoaded();
        }
        results_[base + i] = std::move(result);
        outcomes_[base + i] = std::move(outcome);
    }

    const DistSweepStats stats = dist.stats();
    distStats_.worker = stats.worker;
    distStats_.jobs += stats.jobs;
    distStats_.executed += stats.executed;
    distStats_.loadedRemote += stats.loadedRemote;
    distStats_.leasesClaimed += stats.leasesClaimed;
    distStats_.leasesStolen += stats.leasesStolen;
    distStats_.staleSeen += stats.staleSeen;
    distStats_.stealRetries += stats.stealRetries;
    distStats_.duplicates += stats.duplicates;
    distStats_.tornLines += stats.tornLines;
    distStats_.abandoned += stats.abandoned;
    distStats_.waitPolls += stats.waitPolls;
}

// ---------------------------------------------------------------------
// Subprocess isolation (MASK_SWEEP_ISOLATE=1)
// ---------------------------------------------------------------------

void
SweepRunner::runIsolated(const std::vector<std::size_t> &todo,
                         std::size_t base)
{
    using Clock = std::chrono::steady_clock;

    // One forked child per job, up to jobs_ concurrent; the parent
    // stays single-threaded (fork from a multi-threaded process risks
    // inheriting a held allocator lock) and enforces deadlines with
    // SIGKILL, which reclaims even a hard-hung child. Children report
    // over a pipe: "ok <blob>" or "err <what>"; a fatal signal leaves
    // no payload and is classified from the wait status.
    struct Child
    {
        pid_t pid = -1;
        int fd = -1;
        std::size_t pendIdx = 0;
        unsigned attempt = 0;
        Clock::time_point deadline;
        bool hasDeadline = false;
        bool timedOut = false;
        std::string buf;
        std::string reproPath;
    };
    struct Ready
    {
        std::size_t pendIdx = 0;
        unsigned attempt = 0;
        Clock::time_point notBefore;
    };

    std::vector<Ready> ready;
    ready.reserve(todo.size());
    const auto start = Clock::now();
    for (const std::size_t pend_idx : todo)
        ready.push_back(Ready{pend_idx, 0, start});
    std::vector<Child> live;
    const std::size_t width = jobs_ != 0 ? jobs_ : 1;

    auto startChild = [&](const Ready &r) {
        const SweepJob &job = pending_[r.pendIdx];
        const std::size_t job_idx = base + r.pendIdx;
        Child child;
        child.pendIdx = r.pendIdx;
        child.attempt = r.attempt;
        child.reproPath =
            reproFilePath() + ".job" + std::to_string(job_idx);
        ::unlink(child.reproPath.c_str());

        int fds[2];
        if (::pipe(fds) != 0)
            throw std::runtime_error(
                "sweep isolation: pipe() failed");
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            throw std::runtime_error(
                "sweep isolation: fork() failed");
        }
        if (pid == 0) {
            // --- child ---
            ::close(fds[0]);
            // Redirect this job's crash-repro (both the invariant
            // path and the fatal-signal path honor the env) to a
            // per-job file the parent can harvest.
            ::setenv(kReproFileEnv, child.reproPath.c_str(), 1);
            int code = 0;
            std::string payload;
            try {
                // Job-level arm: a hard crash anywhere in the child
                // (even outside an evaluator run) leaves a repro.
                const ScopedSignalRepro armed(
                    makeRepro(job.arch, job.point, job.benches,
                              options_.warmup, options_.measure),
                    child.reproPath);
                injectSweepTestFault(job_idx);
                Evaluator eval(options_, cache_);
                // In-memory warm state dies with this child, so only a
                // file-backed cache (shared through the filesystem
                // with sibling children and future resumes) is worth
                // the snapshot-render cost here.
                if (warm_ != nullptr && !warm_->policy().dir.empty())
                    eval.setWarmCache(warm_);
                payload = "ok " + encodePairResult(execute(eval, job));
            } catch (const std::exception &err) {
                payload = std::string("err ") + err.what();
                code = 3;
            } catch (...) {
                payload = "err unknown exception";
                code = 3;
            }
            writeAllFd(fds[1], payload);
            ::close(fds[1]);
            std::_Exit(code);
        }
        // --- parent ---
        ::close(fds[1]);
        ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
        child.pid = pid;
        child.fd = fds[0];
        if (policy_.timeoutMs > 0) {
            child.hasDeadline = true;
            child.deadline =
                Clock::now() +
                std::chrono::milliseconds(policy_.timeoutMs);
        }
        live.push_back(std::move(child));
    };

    auto reap = [&](Child &child) {
        int status = 0;
        while (::waitpid(child.pid, &status, 0) < 0 &&
               errno == EINTR) {
        }
        ::close(child.fd);

        const SweepJob &job = pending_[child.pendIdx];
        const std::size_t index = base + child.pendIdx;
        SweepOutcome outcome;
        outcome.attempts = child.attempt + 1;
        PairResult result;

        if (child.timedOut) {
            outcome.status = SweepStatus::TimedOut;
            outcome.error =
                "deadline exceeded (MASK_SWEEP_TIMEOUT_MS=" +
                std::to_string(policy_.timeoutMs) +
                "), child killed";
        } else if (WIFSIGNALED(status)) {
            const int sig = WTERMSIG(status);
            outcome.status = SweepStatus::Crashed;
            outcome.error = std::string("child killed by ") +
                            fatalSignalName(sig) + " (signal " +
                            std::to_string(sig) + ")";
        } else if (child.buf.rfind("ok ", 0) == 0) {
            try {
                result = decodePairResult(child.buf.substr(3));
                outcome.status = SweepStatus::Ok;
            } catch (const std::exception &err) {
                outcome.status = SweepStatus::Failed;
                outcome.error =
                    std::string("isolation protocol: ") + err.what();
            }
        } else if (child.buf.rfind("err ", 0) == 0) {
            outcome.status = SweepStatus::Failed;
            outcome.error = child.buf.substr(4);
        } else {
            outcome.status = SweepStatus::Failed;
            outcome.error =
                "isolation protocol: child exited " +
                std::to_string(WIFEXITED(status)
                                   ? WEXITSTATUS(status)
                                   : -1) +
                " with no payload";
        }
        if (outcome.status != SweepStatus::Ok &&
            fileExists(child.reproPath)) {
            outcome.reproPath = child.reproPath;
        }

        if (outcome.status != SweepStatus::Ok &&
            child.attempt < policy_.retries) {
            ready.push_back(Ready{
                child.pendIdx, child.attempt + 1,
                Clock::now() +
                    std::chrono::milliseconds(
                        sweepBackoffMs(policy_, child.attempt))});
            return;
        }
        finishJob(index, jobKey(job), std::move(result),
                  std::move(outcome));
    };

    while (!ready.empty() || !live.empty()) {
        const auto now = Clock::now();

        // Launch eligible jobs into free slots.
        for (std::size_t i = 0;
             i < ready.size() && live.size() < width;) {
            if (ready[i].notBefore <= now) {
                startChild(ready[i]);
                ready.erase(ready.begin() +
                            static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        // Kill children past their deadline; their pipe EOF follows.
        for (Child &child : live) {
            if (child.hasDeadline && !child.timedOut &&
                child.deadline <= now) {
                ::kill(child.pid, SIGKILL);
                child.timedOut = true;
            }
        }

        if (live.empty()) {
            // Only backoff waits remain: sleep to the next expiry.
            auto next_ready = ready.front().notBefore;
            for (const Ready &r : ready)
                next_ready = std::min(next_ready, r.notBefore);
            if (next_ready > now)
                std::this_thread::sleep_until(next_ready);
            continue;
        }

        // Sleep until data, a deadline, or a backoff expiry.
        auto wake = now + std::chrono::milliseconds(200);
        for (const Child &child : live) {
            if (child.hasDeadline && !child.timedOut)
                wake = std::min(wake, child.deadline);
        }
        for (const Ready &r : ready)
            wake = std::min(wake, r.notBefore);
        const auto wait_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                wake - now)
                .count();

        std::vector<struct pollfd> fds(live.size());
        for (std::size_t i = 0; i < live.size(); ++i)
            fds[i] = {live[i].fd, POLLIN, 0};
        ::poll(fds.data(), fds.size(),
               static_cast<int>(std::max<long long>(1, wait_ms)));

        // Drain readable pipes; EOF means the child is done.
        for (std::size_t i = 0; i < live.size();) {
            Child &child = live[i];
            bool done = false;
            if (fds[i].revents != 0) {
                char buf[4096];
                for (;;) {
                    const ::ssize_t n =
                        ::read(child.fd, buf, sizeof(buf));
                    if (n > 0) {
                        child.buf.append(
                            buf, static_cast<std::size_t>(n));
                        continue;
                    }
                    if (n == 0)
                        done = true; // EOF
                    else if (errno == EINTR)
                        continue;
                    break; // EAGAIN or EOF
                }
            }
            if (done) {
                reap(child);
                fds.erase(fds.begin() +
                          static_cast<std::ptrdiff_t>(i));
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }
}

} // namespace mask
