#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.hh"

namespace mask {

unsigned
sweepJobs()
{
    const char *env = std::getenv("MASK_BENCH_JOBS");
    if (env == nullptr || env[0] == '\0')
        return 1;
    const long n = std::atol(env);
    if (n < 0)
        return 1;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw != 0 ? hw : 1;
    }
    return static_cast<unsigned>(n);
}

SweepRunner::SweepRunner(RunOptions options)
    : SweepRunner(options, sweepJobs())
{}

SweepRunner::SweepRunner(RunOptions options, unsigned jobs)
    : options_(options), jobs_(jobs != 0 ? jobs : 1),
      cache_(std::make_shared<AloneIpcCache>())
{}

std::size_t
SweepRunner::submit(SweepJob job)
{
    pending_.push_back(std::move(job));
    return results_.size() + pending_.size() - 1;
}

const PairResult &
SweepRunner::result(std::size_t index) const
{
    SIM_CHECK(index < results_.size(), "sim.sweep", kUnknownCycle,
              "sweep result index out of range (run() not called?)");
    return results_[index];
}

namespace {

PairResult
executeJob(Evaluator &eval, const SweepJob &job)
{
    PairResult result;
    if (job.mode == SweepMode::SharedOnly) {
        result.stats = eval.runShared(job.arch, job.point, job.benches);
        result.sharedIpc = result.stats.ipc;
    } else {
        result = eval.evaluate(job.arch, job.point, job.benches);
    }
    return result;
}

} // namespace

void
SweepRunner::run()
{
    if (pending_.empty())
        return;
    // Inline on the calling thread whenever a single worker would do
    // all the work anyway: a one-thread pool pays spawn/join and
    // atomic work-queue overhead for zero parallelism (visible as a
    // <1.0 "speedup" on single-CPU hosts).
    const std::size_t workers =
        std::min<std::size_t>(jobs_, pending_.size());
    if (workers <= 1)
        runSerial();
    else
        runParallel();
    pending_.clear();
}

void
SweepRunner::runSerial()
{
    Evaluator eval(options_, cache_);
    results_.reserve(results_.size() + pending_.size());
    for (const SweepJob &job : pending_)
        results_.push_back(executeJob(eval, job));
}

void
SweepRunner::runParallel()
{
    const std::size_t base = results_.size();
    const std::size_t batch = pending_.size();
    results_.resize(base + batch);

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, batch));

    std::atomic<std::size_t> next{0};
    std::mutex fail_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = batch;

    auto worker = [&]() {
        // Workers share the alone-IPC memo but nothing else; each
        // simulation is wholly thread-private.
        Evaluator eval(options_, cache_);
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch)
                return;
            try {
                results_[base + i] = executeJob(eval, pending_[i]);
            } catch (...) {
                // Keep the failure of the lowest-indexed job so the
                // surfaced error matches what a serial run would hit
                // first; later jobs keep running (their results are
                // discarded by the rethrow below).
                const std::lock_guard<std::mutex> lock(fail_mutex);
                if (i < first_error_index) {
                    first_error_index = i;
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace mask
