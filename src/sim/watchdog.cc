#include "sim/watchdog.hh"

#include <algorithm>
#include <string>

#include "common/check.hh"

namespace mask {

namespace {

const char *
reqTypeName(ReqType type)
{
    return type == ReqType::Translation ? "translation" : "data";
}

const char *
originName(ReqOrigin origin)
{
    return origin == ReqOrigin::PageWalk ? "page-walk" : "warp-data";
}

} // namespace

void
Watchdog::sweep(Cycle now, const WatchdogView &view)
{
    nextSweep_ = now + cfg_.sweepInterval;
    ++sweepsDone_;

    sweepDram(now, view);
    sweepTokens(now, view);
    sweepPool(now, view);
    sweepTlbMshr(now, view);
    sweepWalker(now, view);
}

void
Watchdog::sweepPool(Cycle now, const WatchdogView &view)
{
    const RequestPool &pool = *view.pool;
    for (ReqId id = 0; id < pool.capacity(); ++id) {
        const MemRequest &req = pool[id];
        if (!req.live)
            continue;
        const Cycle age = now - req.issueCycle;
        noteAge(age);
        if (age <= cfg_.maxAge)
            continue;
        std::string detail = "stuck ";
        detail += reqTypeName(req.type);
        detail += " request (origin ";
        detail += originName(req.origin);
        detail += ") last seen at '";
        detail += req.where;
        detail += "'";
        if (req.origin == ReqOrigin::PageWalk) {
            detail += ", level " + std::to_string(req.pwLevel);
        }
        throw SimInvariantError(
            "watchdog", now, detail,
            CheckContext{.reqId = id, .asid = req.asid, .app = req.app,
                         .walkId = req.origin == ReqOrigin::PageWalk
                                       ? req.walkId
                                       : CheckContext::kUnset,
                         .paddr = req.paddr, .age = age});
    }
}

void
Watchdog::sweepTlbMshr(Cycle now, const WatchdogView &view)
{
    // Find the oldest outstanding translation so the diagnostic names
    // the most-stuck miss (slot order is arbitrary, so scan fully).
    const TlbMshrTable::Entry *oldest = nullptr;
    view.tlbMshr->forEachEntry([&](const TlbMshrTable::Entry &entry) {
        noteAge(now - entry.firstMissCycle);
        if (oldest == nullptr ||
            entry.firstMissCycle < oldest->firstMissCycle) {
            oldest = &entry;
        }
    });
    if (oldest == nullptr)
        return;
    const Cycle age = now - oldest->firstMissCycle;
    if (age <= cfg_.maxAge)
        return;

    std::string detail = "stuck TLB miss with " +
                         std::to_string(oldest->waiters.size()) +
                         " waiting core(s)";
    if (oldest->walkStarted) {
        detail += "; walk " + std::to_string(oldest->walkId);
        // Chase the chain one level further: the walk's current state.
        const auto active = view.walker->activeWalkIds();
        bool walk_live = false;
        for (const WalkId id : active)
            walk_live |= (id == oldest->walkId);
        if (walk_live) {
            detail += " at level " +
                      std::to_string(
                          view.walker->fetchLevel(oldest->walkId));
            // Is the PTE fetch itself still in flight somewhere?
            const RequestPool &pool = *view.pool;
            bool fetch_in_flight = false;
            for (ReqId id = 0; id < pool.capacity(); ++id) {
                const MemRequest &req = pool[id];
                if (req.live && req.origin == ReqOrigin::PageWalk &&
                    req.walkId == oldest->walkId) {
                    detail += "; PTE fetch req " + std::to_string(id) +
                              " at '" + req.where + "'";
                    fetch_in_flight = true;
                    break;
                }
            }
            if (!fetch_in_flight)
                detail += "; no PTE fetch in flight (lost completion)";
        } else {
            detail += " already released (lost wakeup)";
        }
    } else {
        detail += "; walk never started";
    }
    throw SimInvariantError(
        "watchdog", now, detail,
        CheckContext{.asid = oldest->asid, .vpn = oldest->vpn,
                     .app = oldest->app,
                     .walkId = oldest->walkStarted
                                   ? oldest->walkId
                                   : CheckContext::kUnset,
                     .age = age});
}

void
Watchdog::sweepWalker(Cycle now, const WatchdogView &view)
{
    for (const WalkId id : view.walker->activeWalkIds()) {
        const PageTableWalker::WalkInfo &info = view.walker->info(id);
        const Cycle age = now - info.startCycle;
        noteAge(age);
        SIM_CHECK_CTX(age <= cfg_.maxAge, "watchdog", now,
                      "stuck page walk at level " +
                          std::to_string(view.walker->fetchLevel(id)),
                      (CheckContext{.asid = info.asid, .vpn = info.vpn,
                                    .app = info.app, .walkId = id,
                                    .age = age}));
    }
}

void
Watchdog::sweepDram(Cycle now, const WatchdogView &view)
{
    for (std::uint32_t c = 0; c < view.dram->numChannels(); ++c)
        view.dram->channel(c).checkQueueBounds(now, c);
}

void
Watchdog::sweepTokens(Cycle now, const WatchdogView &view)
{
    if (!view.tokensEnabled || view.tokens == nullptr)
        return;
    for (AppId a = 0; a < view.numApps; ++a) {
        const std::uint32_t count = view.tokens->tokens(a);
        SIM_CHECK_CTX(count >= 1 && count <= view.warpsPerApp,
                      "watchdog", now,
                      "token count outside [1, warps/app] (" +
                          std::to_string(count) + " of " +
                          std::to_string(view.warpsPerApp) + ")",
                      CheckContext{.app = a});
    }
}

// ---------------------------------------------------------------------
// Wall-clock deadline monitor
// ---------------------------------------------------------------------

DeadlineMonitor::DeadlineMonitor()
    : thread_([this]() { loop(); })
{}

DeadlineMonitor::~DeadlineMonitor()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::uint64_t
DeadlineMonitor::watch(CancelToken *token, std::uint64_t timeout_ms)
{
    Entry entry;
    entry.token = token;
    entry.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
    entry.timeoutMs = timeout_ms;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        entry.id = nextId_++;
        entries_.push_back(entry);
    }
    cv_.notify_all();
    return entry.id;
}

void
DeadlineMonitor::unwatch(std::uint64_t handle)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry &e) {
                                      return e.id == handle;
                                  }),
                   entries_.end());
}

std::uint64_t
DeadlineMonitor::expired() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return expired_;
}

void
DeadlineMonitor::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        const auto now = std::chrono::steady_clock::now();
        auto wake = now + std::chrono::seconds(60);
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->deadline <= now) {
                // The message stays wall-clock-free beyond the
                // configured budget so bench output keeps its
                // determinism guarantee.
                it->token->cancel(
                    "deadline exceeded (MASK_SWEEP_TIMEOUT_MS=" +
                    std::to_string(it->timeoutMs) + ")");
                ++expired_;
                it = entries_.erase(it);
            } else {
                wake = std::min(wake, it->deadline);
                ++it;
            }
        }
        cv_.wait_until(lock, wake);
    }
}

} // namespace mask
