#include "sim/sweep_dist.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <tuple>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/rate_limit.hh"
#include "sim/sweep_io.hh"

namespace mask {

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    return std::strtoull(raw, nullptr, 10);
}

/** Worker ids become file names and lease tokens: keep them to a
 *  conservative charset so neither role can be confused. */
std::string
sanitizeWorkerId(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("worker") : out;
}

std::string
hostName()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown-host";
    return sanitizeWorkerId(buf);
}

void
makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
        throw std::runtime_error("cannot create sweep dist dir: " +
                                 path + ": " + std::strerror(errno));
}

std::uint64_t
fnv1a64(const std::string &data)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    out.clear();
    char buf[1 << 14];
    for (;;) {
        const ::ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd);
    return true;
}

/** Parse "<token>=<u64>" after @p token in @p content. */
bool
leaseU64(const std::string &content, const char *token,
         std::uint64_t &out)
{
    const std::size_t at = content.find(token);
    if (at == std::string::npos)
        return false;
    const char *p = content.c_str() + at + std::strlen(token);
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(p, &end, 10);
    return end != p && errno == 0;
}

bool
leaseStr(const std::string &content, const char *token,
         std::string &out)
{
    const std::size_t at = content.find(token);
    if (at == std::string::npos)
        return false;
    const std::size_t start = at + std::strlen(token);
    std::size_t end = start;
    while (end < content.size() && content[end] != ' ' &&
           content[end] != '\n')
        ++end;
    out = content.substr(start, end - start);
    return !out.empty();
}

WarnRateLimiter &
stealWarns()
{
    static WarnRateLimiter limiter(8);
    return limiter;
}

WarnRateLimiter &
waitWarns()
{
    static WarnRateLimiter limiter(64);
    return limiter;
}

} // namespace

std::uint64_t
distEpochMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

DistPolicy
distPolicyFromEnv()
{
    DistPolicy policy;
    const char *dir = std::getenv("MASK_SWEEP_DIST_DIR");
    if (dir == nullptr || *dir == '\0')
        return policy;
    policy.dir = dir;
    const char *worker = std::getenv("MASK_SWEEP_DIST_WORKER");
    if (worker != nullptr && *worker != '\0')
        policy.worker = sanitizeWorkerId(worker);
    else
        policy.worker =
            hostName() + "-" + std::to_string(::getpid());
    policy.heartbeatMs = std::max<std::uint64_t>(
        10, envU64("MASK_SWEEP_DIST_HEARTBEAT_MS", 1000));
    // A lease must survive at least two missed heartbeats, or normal
    // scheduling jitter would read as worker death.
    policy.stealAfterMs = std::max<std::uint64_t>(
        2 * policy.heartbeatMs,
        envU64("MASK_SWEEP_DIST_STEAL_AFTER_MS", 10000));
    policy.maxSteals = static_cast<unsigned>(
        envU64("MASK_SWEEP_DIST_MAX_STEALS", 3));
    policy.pollMs = std::max<std::uint64_t>(
        10, envU64("MASK_SWEEP_DIST_POLL_MS", 200));
    const char *merge = std::getenv("MASK_SWEEP_DIST_MERGE");
    policy.mergeOnly = merge != nullptr && *merge == '1';
    return policy;
}

std::string
encodeLease(const DistLease &lease)
{
    char buf[kDistLeaseFileSize + 1];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "MASKLEASE v1 worker=%s pid=%" PRIu64 " host=%s"
        " deadline_ms=%" PRIu64 " steals=%u",
        lease.worker.c_str(), lease.pid, lease.host.c_str(),
        lease.deadlineMs, lease.steals);
    std::string out(buf,
                    n > 0 ? std::min<std::size_t>(
                                static_cast<std::size_t>(n),
                                kDistLeaseFileSize - 1)
                          : 0);
    // Pad to the fixed file size so an in-place heartbeat rewrite
    // fully overwrites the previous image — a reader can never see a
    // stale suffix of an older, longer record.
    out.resize(kDistLeaseFileSize - 1, ' ');
    out += '\n';
    return out;
}

bool
decodeLease(const std::string &content, DistLease &out)
{
    if (content.compare(0, 13, "MASKLEASE v1 ") != 0)
        return false;
    std::uint64_t pid = 0, deadline = 0, steals = 0;
    if (!leaseStr(content, "worker=", out.worker) ||
        !leaseU64(content, "pid=", pid) ||
        !leaseStr(content, "host=", out.host) ||
        !leaseU64(content, "deadline_ms=", deadline) ||
        !leaseU64(content, "steals=", steals))
        return false;
    out.pid = pid;
    out.deadlineMs = deadline;
    out.steals = static_cast<unsigned>(steals);
    return true;
}

std::string
distLeaseName(const std::string &job_key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, fnv1a64(job_key));
    return std::string(buf) + ".lease";
}

// ---------------------------------------------------------------------
// DistCoordinator
// ---------------------------------------------------------------------

DistCoordinator::DistCoordinator(DistPolicy policy)
    : policy_(std::move(policy))
{
    if (!policy_.enabled())
        throw std::logic_error(
            "DistCoordinator requires a non-empty dist dir");
    makeDir(policy_.dir);
    leaseDir_ = policy_.dir + "/leases";
    shardDir_ = policy_.dir + "/shards";
    makeDir(leaseDir_);
    makeDir(shardDir_);
    stats_.worker = policy_.worker;
    const std::string host = hostName();
    std::snprintf(hostBuf_, sizeof(hostBuf_), "%s", host.c_str());
}

DistCoordinator::~DistCoordinator()
{
    std::vector<std::string> leftover;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        for (auto &held : held_) {
            if (held.second.fd >= 0)
                ::close(held.second.fd);
            leftover.push_back(held.second.path);
        }
        held_.clear();
    }
    wake_.notify_all();
    if (heartbeat_.joinable())
        heartbeat_.join();
    // Leases still held at teardown (abnormal exit paths) are dropped
    // so peers need not wait out the staleness window.
    for (const std::string &path : leftover)
        ::unlink(path.c_str());
}

std::string
DistCoordinator::shardPath() const
{
    return shardDir_ + "/" + policy_.worker + ".jsonl";
}

std::string
DistCoordinator::warmDirDefault() const
{
    return policy_.dir + "/warm";
}

std::string
DistCoordinator::leasePath(const std::string &lease_name) const
{
    return leaseDir_ + "/" + lease_name;
}

void
DistCoordinator::writeLeaseLocked(Held &held, std::uint64_t now_ms)
{
    // Allocation-free (fixed buffers only): this also runs on the
    // heartbeat thread, and keeping that thread out of malloc keeps
    // fork-per-job isolation safe (no heap lock can be mid-flight in
    // the child's frozen image).
    char buf[kDistLeaseFileSize];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "MASKLEASE v1 worker=%s pid=%" PRIu64 " host=%s"
        " deadline_ms=%" PRIu64 " steals=%u",
        policy_.worker.c_str(), static_cast<std::uint64_t>(::getpid()),
        hostBuf_, now_ms + policy_.stealAfterMs, held.steals);
    std::size_t len = n > 0 ? static_cast<std::size_t>(n) : 0;
    if (len >= sizeof(buf))
        len = sizeof(buf) - 1;
    std::memset(buf + len, ' ', sizeof(buf) - len);
    buf[sizeof(buf) - 1] = '\n';
    ::ssize_t wrote;
    do {
        wrote = ::pwrite(held.fd, buf, sizeof(buf), 0);
    } while (wrote < 0 && errno == EINTR);
    // A failed heartbeat write is survivable: the lease goes stale
    // and the job gets stolen — wasted work, never lost work.
}

void
DistCoordinator::startHeartbeatLocked()
{
    if (heartbeat_.joinable())
        return;
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
}

void
DistCoordinator::heartbeatLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        wake_.wait_for(lock,
                       std::chrono::milliseconds(policy_.heartbeatMs));
        if (stop_)
            break;
        const std::uint64_t now = distEpochMs();
        for (auto &held : held_)
            writeLeaseLocked(held.second, now);
    }
}

DistCoordinator::Claim
DistCoordinator::tryClaim(const std::string &job_key,
                          unsigned *steals_out)
{
    const std::string name = distLeaseName(job_key);
    const std::string path = leasePath(name);
    if (steals_out != nullptr)
        *steals_out = 0;

    unsigned inherited = 0;
    {
        const auto it = stealObserved_.find(name);
        if (it != stealObserved_.end())
            inherited = it->second;
    }

    const auto acquire = [&](unsigned steals) -> Claim {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                              0644);
        if (fd < 0)
            return Claim::Busy; // raced: someone else owns it now
        const std::lock_guard<std::mutex> lock(mutex_);
        Held &held = held_[name];
        held.fd = fd;
        held.steals = steals;
        std::snprintf(held.path, sizeof(held.path), "%s",
                      path.c_str());
        writeLeaseLocked(held, distEpochMs());
        startHeartbeatLocked();
        if (steals_out != nullptr)
            *steals_out = steals;
        return Claim::Acquired;
    };

    if (acquire(inherited) == Claim::Acquired) {
        ++stats_.leasesClaimed;
        return Claim::Acquired;
    }

    // The lease exists. Stale means its holder missed the whole
    // steal-after window: the content deadline passed, or the content
    // is torn/corrupt and the file has not been touched either.
    struct ::stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return Claim::Busy; // released between open and stat
    std::string content;
    DistLease lease;
    bool parsed = false;
    if (readWholeFile(path, content))
        parsed = decodeLease(content, lease);
    const std::uint64_t now = distEpochMs();
    bool stale;
    unsigned steals;
    if (parsed) {
        stale = now > lease.deadlineMs;
        steals = std::max(inherited, lease.steals);
    } else {
        const std::uint64_t mtime_ms =
            static_cast<std::uint64_t>(st.st_mtime) * 1000;
        stale = mtime_ms + policy_.stealAfterMs < now;
        steals = inherited;
    }
    if (!stale)
        return Claim::Busy;

    ++stats_.staleSeen;
    stealObserved_[name] = steals;
    if (steals >= policy_.maxSteals) {
        if (steals_out != nullptr)
            *steals_out = steals;
        return Claim::Abandoned;
    }

    // Capped exponential backoff between steal attempts on the same
    // job: a job that keeps killing its workers should not be
    // hammered in a tight loop.
    StealBackoff &backoff = stealBackoff_[name];
    if (now < backoff.notBeforeMs) {
        ++stats_.stealRetries;
        return Claim::Busy;
    }
    const std::uint64_t delay = std::min<std::uint64_t>(
        policy_.stealAfterMs,
        policy_.pollMs << std::min(backoff.attempts, 10u));
    ++backoff.attempts;
    backoff.notBeforeMs = now + delay;

    // Steal: rename the stale lease aside. rename() is atomic, so
    // exactly one concurrent stealer wins; the losers see ENOENT and
    // retry against whatever the winner installs.
    const std::string tomb = path + ".steal." + policy_.worker + "." +
                             std::to_string(::getpid());
    if (::rename(path.c_str(), tomb.c_str()) != 0)
        return Claim::Busy;
    ::unlink(tomb.c_str());
    stealObserved_[name] = steals + 1;
    if (acquire(steals + 1) != Claim::Acquired)
        return Claim::Busy; // an interloper re-claimed first
    ++stats_.leasesStolen;
    if (const std::uint64_t n = stealWarns().tick()) {
        std::fprintf(stderr,
                     "[dist] worker %s stole stale lease %s (holder "
                     "%s pid %" PRIu64 ", steals now %u; occurrence "
                     "%" PRIu64 "%s)\n",
                     policy_.worker.c_str(), name.c_str(),
                     parsed ? lease.worker.c_str() : "<torn>",
                     parsed ? lease.pid : 0, steals + 1, n,
                     stealWarns().suppressNote());
    }
    return Claim::Acquired;
}

void
DistCoordinator::release(const std::string &job_key)
{
    const std::string name = distLeaseName(job_key);
    int fd = -1;
    char path[sizeof(Held::path)] = {0};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = held_.find(name);
        if (it == held_.end())
            return;
        fd = it->second.fd;
        std::memcpy(path, it->second.path, sizeof(path));
        held_.erase(it);
    }
    if (fd >= 0)
        ::close(fd);
    ::unlink(path);
}

void
DistCoordinator::noteWaiting(std::size_t pending_jobs)
{
    ++stats_.waitPolls;
    if (const std::uint64_t n = waitWarns().tick()) {
        std::fprintf(stderr,
                     "[dist] worker %s waiting on %zu job(s) held by "
                     "other workers (poll %" PRIu64 "%s)\n",
                     policy_.worker.c_str(), pending_jobs, n,
                     waitWarns().suppressNote());
    }
}

void
DistCoordinator::refreshShards()
{
    ::DIR *dir = ::opendir(shardDir_.c_str());
    if (dir != nullptr) {
        for (const struct ::dirent *ent = ::readdir(dir);
             ent != nullptr; ent = ::readdir(dir)) {
            const std::string name = ent->d_name;
            constexpr const char *kExt = ".jsonl";
            if (name.size() <= std::strlen(kExt) ||
                name.compare(name.size() - std::strlen(kExt),
                             std::string::npos, kExt) != 0)
                continue;
            ShardSource &src = sources_[name];
            if (src.path.empty())
                src.path = shardDir_ + "/" + name;
        }
        ::closedir(dir);
    }

    // std::map iteration is shard-name order: candidates from shard A
    // always carry a smaller tie-break key than shard B regardless of
    // which refresh discovered them.
    for (auto &source : sources_) {
        ShardSource &src = source.second;
        const int fd = ::open(src.path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0)
            continue;
        if (::lseek(fd, static_cast<::off_t>(src.offset),
                    SEEK_SET) < 0) {
            ::close(fd);
            continue;
        }
        std::string data;
        char buf[1 << 14];
        for (;;) {
            const ::ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n > 0) {
                data.append(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        ::close(fd);

        // Consume complete lines only. A partial tail is usually a
        // write in flight — it stays pending and is re-read once its
        // newline lands. (A dead writer's torn tail never completes;
        // finalizeMerge() counts those.)
        std::size_t pos = 0;
        while (pos < data.size()) {
            const std::size_t nl = data.find('\n', pos);
            if (nl == std::string::npos)
                break;
            consumeShardLine(source.first, src.lines,
                             data.substr(pos, nl - pos));
            ++src.lines;
            src.offset += nl - pos + 1;
            pos = nl + 1;
        }
    }
}

void
DistCoordinator::consumeShardLine(const std::string &shard,
                                  std::size_t line_no,
                                  const std::string &line)
{
    if (line.empty())
        return;
    Entry entry;
    std::string key, attempts;
    if (!jsonField(line, "key", key) ||
        !jsonField(line, "status", entry.status)) {
        ++stats_.tornLines; // complete but unparsable: corruption
        return;
    }
    jsonField(line, "error", entry.error);
    jsonField(line, "repro", entry.repro);
    jsonField(line, "worker", entry.worker);
    if (jsonField(line, "attempts", attempts))
        entry.attempts = static_cast<unsigned>(
            std::strtoul(attempts.c_str(), nullptr, 10));
    const bool is_ok = entry.status == "Ok";
    if (is_ok && !jsonField(line, "result", entry.blob)) {
        ++stats_.tornLines;
        return;
    }

    auto ok_it = hasOk_.find(key);
    if (is_ok) {
        if (ok_it != hasOk_.end() && ok_it->second)
            ++stats_.duplicates; // double claim: first entry won
        else
            hasOk_[key] = true;
    } else if (ok_it == hasOk_.end()) {
        hasOk_[key] = false;
    }

    Candidate cand;
    cand.shard = shard;
    cand.line = line_no;
    cand.entry = std::move(entry);

    const auto best_it = best_.find(key);
    if (best_it == best_.end()) {
        best_.emplace(key, std::move(cand));
        return;
    }
    // Deterministic winner, independent of arrival order: Ok beats
    // non-Ok; ties resolve by (shard filename, line number).
    const Candidate &cur = best_it->second;
    const bool cur_ok = cur.entry.status == "Ok";
    const bool better =
        (is_ok != cur_ok)
            ? is_ok
            : std::tie(cand.shard, cand.line) <
                  std::tie(cur.shard, cur.line);
    if (better)
        best_it->second = std::move(cand);
}

const DistCoordinator::Entry *
DistCoordinator::terminal(const std::string &job_key) const
{
    const auto it = best_.find(job_key);
    return it == best_.end() ? nullptr : &it->second.entry;
}

void
DistCoordinator::finalizeMerge()
{
    // Anything still unconsumed after the last refresh is a partial
    // final line with no writer left to finish it — the torn tail of
    // a crashed worker's shard. Remote shards are never truncated
    // (their owner repairs on its next open); just count and move on.
    for (const auto &source : sources_) {
        struct ::stat st = {};
        if (::stat(source.second.path.c_str(), &st) != 0)
            continue;
        if (static_cast<std::size_t>(st.st_size) > source.second.offset)
            ++stats_.tornLines;
    }
}

DistSweepStats
DistCoordinator::stats() const
{
    return stats_;
}

} // namespace mask
