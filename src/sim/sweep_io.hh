/**
 * @file
 * Exact serialization for sweep results, and the resumable results
 * journal.
 *
 * Both fault-tolerance transports need a PairResult to survive a trip
 * through bytes without perturbing a single bit: the subprocess
 * isolation mode pipes results from a forked child back to the
 * parent, and the JSONL journal replays completed jobs into a resumed
 * sweep whose bench output must stay byte-identical to an
 * uninterrupted run. Doubles are therefore encoded as C99 hex floats
 * ("%a"), which round-trip exactly; integers as decimal.
 *
 * The encoding is a versioned, space-separated token stream ("v2
 * ..."). It must cover every field of PairResult/GpuStats — when a
 * stat is added to GpuStats, extend encode/decode here and bump the
 * version, or journal-resumed benches will silently print zeros for
 * the new stat.
 *
 * Journal format (one JSON object per line, append-only):
 *
 *   {"key":"<job key>","status":"Ok","attempts":1,"error":"",
 *    "result":"v2 ..."}
 *
 * plus optional "repro" (harvested crash-repro path) and "worker"
 * (distributed-sweep worker id, DESIGN.md §15) fields when non-empty.
 *
 * The key fingerprints everything that determines a job's result:
 * config fingerprint, design point, bench list, sweep mode, and run
 * windows. On load, the latest "Ok" entry per key wins; failed
 * entries are kept for the record but are never resumed from, so a
 * re-run re-simulates exactly the jobs that did not complete.
 *
 * Crash tolerance: every record is appended with a single write() on
 * an O_APPEND descriptor, so concurrent writers (two processes
 * sharing one journal, per-worker distributed shards living in one
 * directory) never interleave bytes of different records. A process
 * killed mid-append can still leave a torn final line; on open the
 * journal tolerates it, truncates the file back to the last complete
 * record (so future appends start on a clean boundary), and counts
 * it in tornTailLines(). Torn or malformed lines never fail a
 * resume.
 */

#ifndef MASK_SIM_SWEEP_IO_HH
#define MASK_SIM_SWEEP_IO_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "sim/runner.hh"

namespace mask {

/** Encode @p result as a single-line token stream (exact). */
std::string encodePairResult(const PairResult &result);

/** Inverse of encodePairResult (throws std::runtime_error). */
PairResult decodePairResult(const std::string &blob);

/** Minimal JSON string escaping for journal fields. */
std::string jsonEscape(const std::string &raw);

/**
 * Extract and unescape the string value of @p field from a
 * single-line JSON object written by this module. Returns false when
 * the field is absent or the line is malformed.
 */
bool jsonField(const std::string &line, const std::string &field,
               std::string &out);

/**
 * Append-only JSONL journal of per-job sweep outcomes, keyed by job
 * fingerprint. Thread-safe; every record is flushed as it lands so a
 * killed process loses at most the in-flight line.
 */
class SweepJournal
{
  public:
    /**
     * Open @p path, loading any entries a previous run left. A torn
     * final line (writer killed mid-append) is truncated away and
     * counted, never fatal. Only open a journal this process owns:
     * the truncation repair must not race a live writer.
     */
    explicit SweepJournal(std::string path);

    ~SweepJournal();

    /**
     * Completed result for @p key from a previous run, if any.
     * Returns true and fills @p result / @p attempts on a hit.
     */
    bool lookupOk(const std::string &key, PairResult &result,
                  unsigned &attempts) const;

    /**
     * Append one outcome as a single O_APPEND write. @p result must
     * be non-null when @p status is "Ok"; @p repro (a harvested
     * crash-repro path) is recorded when non-empty. Malformed I/O
     * throws std::runtime_error.
     */
    void record(const std::string &key, const char *status,
                unsigned attempts, const std::string &error,
                const PairResult *result,
                const std::string &repro = std::string());

    /** Distinct keys with a completed result loaded or recorded. */
    std::size_t okEntries() const;

    /**
     * Tag every future record with a worker id ("worker" field) —
     * set by the distributed executor so merged shards identify who
     * produced each entry.
     */
    void setWorkerTag(std::string worker);

    /** Torn trailing lines truncated away on open (0 or 1). */
    std::size_t tornTailLines() const { return tornTail_; }

    /** Complete-but-unparsable lines skipped on open. */
    std::size_t malformedLines() const { return malformed_; }

    const std::string &path() const { return path_; }

  private:
    struct OkEntry
    {
        unsigned attempts = 1;
        std::string blob;
    };

    std::string path_;
    std::string worker_;
    std::size_t tornTail_ = 0;
    std::size_t malformed_ = 0;
    mutable std::mutex mutex_;
    int fd_ = -1; //!< lazily-opened O_APPEND descriptor
    std::map<std::string, OkEntry> ok_;
};

} // namespace mask

#endif // MASK_SIM_SWEEP_IO_HH
