#include "sim/crash_repro.hh"

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "sim/snapshot.hh"

namespace mask {

std::string
reproFilePath()
{
    if (const char *path = std::getenv(kReproFileEnv);
        path != nullptr && path[0] != '\0') {
        return path;
    }
    return "mask_crash.repro";
}

std::string
formatRepro(const CrashRepro &repro)
{
    std::ostringstream out;
    out << "arch " << repro.arch << "\n";
    out << "design " << repro.design << "\n";
    for (const std::string &bench : repro.benches)
        out << "bench " << bench << "\n";
    out << "seed " << repro.seed << "\n";
    out << "warmup " << repro.warmup << "\n";
    out << "measure " << repro.measure << "\n";

    const WatchdogConfig &wd = repro.harden.watchdog;
    out << "watchdog.enabled " << (wd.enabled ? 1 : 0) << "\n";
    out << "watchdog.sweepInterval " << wd.sweepInterval << "\n";
    out << "watchdog.maxAge " << wd.maxAge << "\n";

    const FaultInjectConfig &f = repro.harden.fault;
    out << "fault.enabled " << (f.enabled ? 1 : 0) << "\n";
    out << "fault.seed " << f.seed << "\n";
    out << "fault.dramDelayProb " << f.dramDelayProb << "\n";
    out << "fault.dramDelayCycles " << f.dramDelayCycles << "\n";
    out << "fault.walkDropProb " << f.walkDropProb << "\n";
    out << "fault.walkDropRetry " << (f.walkDropRetry ? 1 : 0) << "\n";
    out << "fault.walkRetryDelay " << f.walkRetryDelay << "\n";
    out << "fault.shootdownInterval " << f.shootdownInterval << "\n";
    out << "fault.portStallProb " << f.portStallProb << "\n";
    out << "fault.portStallCycles " << f.portStallCycles << "\n";

    out << "failCycle " << repro.failCycle << "\n";
    out << "module " << repro.module << "\n";
    out << "detail " << repro.detail << "\n";
    return out.str();
}

void
writeRepro(const std::string &path, const CrashRepro &repro)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write repro file: " + path);
    out << formatRepro(repro);
    if (!out)
        throw std::runtime_error("short write to repro file: " + path);
}

CrashRepro
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read repro file: " + path);

    CrashRepro repro;
    repro.benches.clear();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string key;
        row >> key;
        std::string rest;
        std::getline(row, rest);
        if (!rest.empty() && rest.front() == ' ')
            rest.erase(rest.begin());

        WatchdogConfig &wd = repro.harden.watchdog;
        FaultInjectConfig &f = repro.harden.fault;
        if (key == "arch")
            repro.arch = rest;
        else if (key == "design")
            repro.design = rest;
        else if (key == "bench")
            repro.benches.push_back(rest);
        else if (key == "seed")
            repro.seed = std::stoull(rest);
        else if (key == "warmup")
            repro.warmup = std::stoull(rest);
        else if (key == "measure")
            repro.measure = std::stoull(rest);
        else if (key == "watchdog.enabled")
            wd.enabled = rest != "0";
        else if (key == "watchdog.sweepInterval")
            wd.sweepInterval = std::stoull(rest);
        else if (key == "watchdog.maxAge")
            wd.maxAge = std::stoull(rest);
        else if (key == "fault.enabled")
            f.enabled = rest != "0";
        else if (key == "fault.seed")
            f.seed = std::stoull(rest);
        else if (key == "fault.dramDelayProb")
            f.dramDelayProb = std::stod(rest);
        else if (key == "fault.dramDelayCycles")
            f.dramDelayCycles = std::stoull(rest);
        else if (key == "fault.walkDropProb")
            f.walkDropProb = std::stod(rest);
        else if (key == "fault.walkDropRetry")
            f.walkDropRetry = rest != "0";
        else if (key == "fault.walkRetryDelay")
            f.walkRetryDelay = std::stoull(rest);
        else if (key == "fault.shootdownInterval")
            f.shootdownInterval = std::stoull(rest);
        else if (key == "fault.portStallProb")
            f.portStallProb = std::stod(rest);
        else if (key == "fault.portStallCycles")
            f.portStallCycles = std::stoull(rest);
        else if (key == "failCycle")
            repro.failCycle = std::stoull(rest);
        else if (key == "module")
            repro.module = rest;
        else if (key == "detail")
            repro.detail = rest;
        else
            throw std::runtime_error("repro file " + path +
                                     ": unknown key '" + key + "'");
    }
    if (repro.benches.empty())
        throw std::runtime_error("repro file " + path +
                                 ": no bench entries");
    return repro;
}

CrashRepro
makeRepro(const GpuConfig &arch, DesignPoint point,
          const std::vector<std::string> &benches, Cycle warmup,
          Cycle measure)
{
    CrashRepro repro;
    repro.arch = arch.name;
    repro.design = designPointName(point);
    repro.benches = benches;
    repro.seed = arch.seed;
    repro.warmup = warmup;
    repro.measure = measure;
    repro.harden = arch.harden;
    repro.module = "fatal-signal";
    repro.detail = "armed (no failure recorded)";
    return repro;
}

CrashRepro
makeRepro(const GpuConfig &arch, DesignPoint point,
          const std::vector<std::string> &benches, Cycle warmup,
          Cycle measure, const SimInvariantError &err)
{
    CrashRepro repro = makeRepro(arch, point, benches, warmup, measure);
    repro.failCycle = err.cycle();
    repro.module = err.module();
    repro.detail = err.detail();
    return repro;
}

// ---------------------------------------------------------------------
// Fatal-signal repro flushing
// ---------------------------------------------------------------------

namespace {

/**
 * Per-thread armed repro. The handler runs on the faulting thread, so
 * thread-local state picks the right record when several sweep
 * workers run concurrently. The content is pre-rendered at arm time;
 * the handler only open()s, write()s, and close()s — the
 * async-signal-safe subset.
 */
struct ArmedRepro
{
    bool armed = false;
    std::string path;
    std::string content;
};

thread_local ArmedRepro tl_armed_repro;

/** "module fatal-signal\ndetail <SIG>\n" override tail, appended
 *  after the base record so loadRepro's last-key-wins parse reports
 *  the signal instead of the placeholder detail. */
const char *
signalTail(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "module fatal-signal\ndetail killed by SIGSEGV\n";
      case SIGABRT:
        return "module fatal-signal\ndetail killed by SIGABRT\n";
      case SIGBUS:
        return "module fatal-signal\ndetail killed by SIGBUS\n";
      case SIGFPE:
        return "module fatal-signal\ndetail killed by SIGFPE\n";
      default:
        return "module fatal-signal\ndetail killed by signal\n";
    }
}

void
writeAllFd(int fd, const char *data, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ::ssize_t n = ::write(fd, data + done, len - done);
        if (n <= 0)
            return; // nothing safe left to do in a signal handler
        done += static_cast<std::size_t>(n);
    }
}

extern "C" void
fatalSignalHandler(int sig)
{
    const ArmedRepro &armed = tl_armed_repro;
    if (armed.armed && !armed.path.empty()) {
        const int fd = ::open(armed.path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            writeAllFd(fd, armed.content.data(),
                       armed.content.size());
            const char *tail = signalTail(sig);
            writeAllFd(fd, tail, __builtin_strlen(tail));
            ::close(fd);
        }
    }
    // Alongside the repro: flush the faulting thread's last complete
    // emergency checkpoint ("<path>.sig"), so a crashed run can resume
    // from its final published state instead of cycle 0. Uses only
    // async-signal-safe calls (open/write/close).
    flushEmergencySnapshotFromSignal();
    // Restore the default disposition and re-raise so the process
    // still dies by the original signal (exit status, core dump).
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

void
installFatalSignalHandlers()
{
    static std::once_flag once;
    std::call_once(once, []() {
        if (const char *off = std::getenv("MASK_NO_SIGNAL_REPRO");
            off != nullptr && off[0] == '1') {
            return;
        }
        struct sigaction action = {};
        action.sa_handler = fatalSignalHandler;
        sigemptyset(&action.sa_mask);
        for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
            ::sigaction(sig, &action, nullptr);
    });
}

ScopedSignalRepro::ScopedSignalRepro(const CrashRepro &repro,
                                     const std::string &path)
    : prevPath_(std::move(tl_armed_repro.path)),
      prevContent_(std::move(tl_armed_repro.content)),
      prevArmed_(tl_armed_repro.armed)
{
    installFatalSignalHandlers();
    tl_armed_repro.path = path;
    tl_armed_repro.content = formatRepro(repro);
    tl_armed_repro.armed = true;
}

ScopedSignalRepro::~ScopedSignalRepro()
{
    tl_armed_repro.path = std::move(prevPath_);
    tl_armed_repro.content = std::move(prevContent_);
    tl_armed_repro.armed = prevArmed_;
}

} // namespace mask
