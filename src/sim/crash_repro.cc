#include "sim/crash_repro.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mask {

std::string
reproFilePath()
{
    if (const char *path = std::getenv(kReproFileEnv);
        path != nullptr && path[0] != '\0') {
        return path;
    }
    return "mask_crash.repro";
}

void
writeRepro(const std::string &path, const CrashRepro &repro)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write repro file: " + path);

    out << "arch " << repro.arch << "\n";
    out << "design " << repro.design << "\n";
    for (const std::string &bench : repro.benches)
        out << "bench " << bench << "\n";
    out << "seed " << repro.seed << "\n";
    out << "warmup " << repro.warmup << "\n";
    out << "measure " << repro.measure << "\n";

    const WatchdogConfig &wd = repro.harden.watchdog;
    out << "watchdog.enabled " << (wd.enabled ? 1 : 0) << "\n";
    out << "watchdog.sweepInterval " << wd.sweepInterval << "\n";
    out << "watchdog.maxAge " << wd.maxAge << "\n";

    const FaultInjectConfig &f = repro.harden.fault;
    out << "fault.enabled " << (f.enabled ? 1 : 0) << "\n";
    out << "fault.seed " << f.seed << "\n";
    out << "fault.dramDelayProb " << f.dramDelayProb << "\n";
    out << "fault.dramDelayCycles " << f.dramDelayCycles << "\n";
    out << "fault.walkDropProb " << f.walkDropProb << "\n";
    out << "fault.walkDropRetry " << (f.walkDropRetry ? 1 : 0) << "\n";
    out << "fault.walkRetryDelay " << f.walkRetryDelay << "\n";
    out << "fault.shootdownInterval " << f.shootdownInterval << "\n";
    out << "fault.portStallProb " << f.portStallProb << "\n";
    out << "fault.portStallCycles " << f.portStallCycles << "\n";

    out << "failCycle " << repro.failCycle << "\n";
    out << "module " << repro.module << "\n";
    out << "detail " << repro.detail << "\n";
    if (!out)
        throw std::runtime_error("short write to repro file: " + path);
}

CrashRepro
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read repro file: " + path);

    CrashRepro repro;
    repro.benches.clear();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string key;
        row >> key;
        std::string rest;
        std::getline(row, rest);
        if (!rest.empty() && rest.front() == ' ')
            rest.erase(rest.begin());

        WatchdogConfig &wd = repro.harden.watchdog;
        FaultInjectConfig &f = repro.harden.fault;
        if (key == "arch")
            repro.arch = rest;
        else if (key == "design")
            repro.design = rest;
        else if (key == "bench")
            repro.benches.push_back(rest);
        else if (key == "seed")
            repro.seed = std::stoull(rest);
        else if (key == "warmup")
            repro.warmup = std::stoull(rest);
        else if (key == "measure")
            repro.measure = std::stoull(rest);
        else if (key == "watchdog.enabled")
            wd.enabled = rest != "0";
        else if (key == "watchdog.sweepInterval")
            wd.sweepInterval = std::stoull(rest);
        else if (key == "watchdog.maxAge")
            wd.maxAge = std::stoull(rest);
        else if (key == "fault.enabled")
            f.enabled = rest != "0";
        else if (key == "fault.seed")
            f.seed = std::stoull(rest);
        else if (key == "fault.dramDelayProb")
            f.dramDelayProb = std::stod(rest);
        else if (key == "fault.dramDelayCycles")
            f.dramDelayCycles = std::stoull(rest);
        else if (key == "fault.walkDropProb")
            f.walkDropProb = std::stod(rest);
        else if (key == "fault.walkDropRetry")
            f.walkDropRetry = rest != "0";
        else if (key == "fault.walkRetryDelay")
            f.walkRetryDelay = std::stoull(rest);
        else if (key == "fault.shootdownInterval")
            f.shootdownInterval = std::stoull(rest);
        else if (key == "fault.portStallProb")
            f.portStallProb = std::stod(rest);
        else if (key == "fault.portStallCycles")
            f.portStallCycles = std::stoull(rest);
        else if (key == "failCycle")
            repro.failCycle = std::stoull(rest);
        else if (key == "module")
            repro.module = rest;
        else if (key == "detail")
            repro.detail = rest;
        else
            throw std::runtime_error("repro file " + path +
                                     ": unknown key '" + key + "'");
    }
    if (repro.benches.empty())
        throw std::runtime_error("repro file " + path +
                                 ": no bench entries");
    return repro;
}

CrashRepro
makeRepro(const GpuConfig &arch, DesignPoint point,
          const std::vector<std::string> &benches, Cycle warmup,
          Cycle measure, const SimInvariantError &err)
{
    CrashRepro repro;
    repro.arch = arch.name;
    repro.design = designPointName(point);
    repro.benches = benches;
    repro.seed = arch.seed;
    repro.warmup = warmup;
    repro.measure = measure;
    repro.harden = arch.harden;
    repro.failCycle = err.cycle();
    repro.module = err.module();
    repro.detail = err.detail();
    return repro;
}

} // namespace mask
