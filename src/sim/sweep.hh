/**
 * @file
 * Parallel workload-sweep engine with fault-tolerant execution.
 *
 * Every figure/table bench walks the same shape of loop: for each
 * (workload pair, design point), build a GPU and simulate it. The runs
 * are independent, so SweepRunner fans them across a pool of worker
 * threads — each worker owns a private Evaluator, all workers share
 * one thread-safe alone-IPC memo — and hands results back in
 * submission order, so bench output is byte-identical to a serial run
 * regardless of worker count or completion order.
 *
 * A sweep survives any single job's failure (DESIGN.md §10): each job
 * finishes with a structured SweepOutcome instead of sinking the
 * fleet. Per-job wall-clock deadlines cancel stuck simulations
 * (TimedOut), transient failures retry with capped exponential
 * backoff, an opt-in fork-per-job isolation mode contains hard
 * crashes (Crashed, with the child's crash-repro file harvested), and
 * a JSONL journal lets an interrupted sweep resume with completed
 * jobs loaded instead of re-simulated. Surviving jobs' results stay
 * byte-identical to a fault-free serial run.
 *
 * Usage is two-phase:
 *
 *     SweepRunner sweep(options);
 *     std::vector<std::size_t> ids;
 *     for (...) ids.push_back(sweep.submit({arch, point, pair}));
 *     sweep.run();    // never throws for per-job failures
 *     for (...) {
 *         if (sweep.outcome(ids[i]).status == SweepStatus::Ok)
 *             use(sweep.result(ids[i]));
 *         else
 *             report(sweep.outcome(ids[i]));
 *     }
 *
 * The job count comes from MASK_BENCH_JOBS (default 1 = serial;
 * 0 = one per hardware thread). Resilience knobs, all env-driven:
 *
 *   MASK_SWEEP_TIMEOUT_MS=<ms>  per-attempt wall-clock deadline
 *                               (0 = none, the default)
 *   MASK_SWEEP_RETRIES=<n>      extra attempts per failed job
 *   MASK_SWEEP_BACKOFF_MS=<ms>  retry backoff base (doubles per
 *                               attempt, capped; default 100)
 *   MASK_SWEEP_ISOLATE=1        fork/exec-style subprocess per job
 *   MASK_SWEEP_JOURNAL=<path>   JSONL results journal for resume
 *
 * Warm-start execution (DESIGN.md §14): with MASK_SWEEP_WARM=1 (or
 * MASK_SWEEP_WARM_DIR=<dir>), jobs sharing a warmup fingerprint fork
 * one warmed snapshot instead of each re-simulating the warmup window
 * — results stay byte-identical to a fresh serial sweep.
 *
 * Distributed execution (DESIGN.md §15): with MASK_SWEEP_DIST_DIR set,
 * run() becomes one worker of a multi-process sweep coordinated
 * entirely through that shared directory — lease files claim jobs,
 * per-worker journal shards publish results, stale leases of crashed
 * workers are stolen, and every worker's merged output is
 * byte-identical to a single-process serial run (sweep_dist.hh).
 */

#ifndef MASK_SIM_SWEEP_HH
#define MASK_SIM_SWEEP_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"
#include "sim/sweep_dist.hh"
#include "sim/watchdog.hh"

namespace mask {

class SweepJournal;

/**
 * Worker count from MASK_BENCH_JOBS: unset or 1 means serial, 0 means
 * one worker per hardware thread, N means N workers.
 */
unsigned sweepJobs();

/** What one sweep job computes. */
enum class SweepMode : std::uint8_t {
    Metrics,    //!< shared run + alone runs + Section 6 metrics
    SharedOnly, //!< shared run only (PairResult.stats, no metrics)
};

/** One (architecture, design point, workload) simulation request. */
struct SweepJob
{
    GpuConfig arch;
    DesignPoint point = DesignPoint::SharedTlb;
    std::vector<std::string> benches;
    SweepMode mode = SweepMode::Metrics;
    /**
     * Per-job window override; the runner's RunOptions apply when
     * unset. Warm-start measure grids submit the same (arch, point,
     * workload) with varying measure windows — they share one warmup
     * fingerprint, so one warmed snapshot serves the whole grid.
     */
    std::optional<RunOptions> options = std::nullopt;
};

/** How one sweep job ended. */
enum class SweepStatus : std::uint8_t {
    Ok,       //!< completed; result() is valid
    Failed,   //!< threw (ConfigError, SimInvariantError, ...)
    TimedOut, //!< exceeded MASK_SWEEP_TIMEOUT_MS and was cancelled
    Crashed,  //!< isolated subprocess died on a fatal signal
    Abandoned, //!< distributed job stolen MASK_SWEEP_DIST_MAX_STEALS
               //!< times with no durable result; degraded, not run
};

/** "Ok" / "Failed" / "TimedOut" / "Crashed" / "Abandoned". */
const char *sweepStatusName(SweepStatus status);

/** Inverse of sweepStatusName (unknown names decode as Failed —
 *  shard entries from a newer writer still merge as failures). */
SweepStatus sweepStatusFromName(const std::string &name);

/** Structured per-job outcome (valid after run() returns). */
struct SweepOutcome
{
    SweepStatus status = SweepStatus::Ok;
    unsigned attempts = 0;      //!< total attempts, retries included
    std::string error;          //!< failure text ("" when Ok)
    std::string reproPath;      //!< harvested crash-repro file, if any
    bool fromJournal = false;   //!< loaded from MASK_SWEEP_JOURNAL
    std::exception_ptr exception; //!< original exception (Failed only)
};

/** Resilience policy (env-driven by default; settable for tests). */
struct SweepPolicy
{
    std::uint64_t timeoutMs = 0;  //!< 0 disables deadlines
    unsigned retries = 0;         //!< extra attempts after a failure
    std::uint64_t backoffMs = 100; //!< retry backoff base
    bool isolate = false;         //!< fork one subprocess per job
    std::string journalPath;      //!< "" disables the journal
};

/** Policy from the MASK_SWEEP_* environment knobs. */
SweepPolicy sweepPolicyFromEnv();

/** Backoff before retry @p attempt (0-based): base << attempt,
 *  capped at 5 seconds. */
std::uint64_t sweepBackoffMs(const SweepPolicy &policy,
                             unsigned attempt);

// --- Warm-state cache (DESIGN.md §14) --------------------------------

/** Warm-start policy (env-driven by default; settable for tests). */
struct WarmPolicy
{
    bool enabled = false; //!< fork warmed snapshots across jobs
    std::string dir;      //!< "" = in-memory only; else snapshot files
    /** In-memory budget; 0 = unlimited. Images over the cap are never
     *  memory-resident (file-backed mode still serves them). */
    std::size_t memCapBytes = std::size_t{256} << 20;
};

/**
 * Policy from the MASK_SWEEP_WARM* environment knobs:
 *
 *   MASK_SWEEP_WARM=1            enable the in-memory warm cache
 *   MASK_SWEEP_WARM_DIR=<dir>    also persist warm snapshots as files
 *                                (implies enabled; lets fork-isolated
 *                                jobs and journal resumes share them)
 *   MASK_SWEEP_WARM_MEM_MB=<n>   in-memory budget (default 256,
 *                                0 = unlimited)
 */
WarmPolicy warmPolicyFromEnv();

/**
 * Thread-safe, single-flight cache of warmed snapshot images keyed by
 * warmStateKey(). The first requester of a key runs warmup once (via
 * its produce callback) and publishes the image; concurrent requesters
 * of the same key block until it lands, so no warmup is ever simulated
 * twice in-process. Ready images live in an LRU ring capped by
 * WarmPolicy::memCapBytes and, when WarmPolicy::dir is set, as
 * snapshot files `<dir>/<key>.snap` that other processes (fork-
 * isolated jobs, journal resumes) restore instead of re-warming.
 *
 * The cache stores opaque bytes; consumers validate via
 * runMeasureFrom(), and on any header/checksum mismatch call
 * invalidate() + noteFallback() and re-run fresh — corruption can cost
 * time, never correctness.
 */
class WarmStateCache
{
  public:
    explicit WarmStateCache(WarmPolicy policy);

    /** Counters surfaced in bench footers and BENCH_throughput.json. */
    struct Stats
    {
        std::uint64_t hits = 0;       //!< restored a warmed snapshot
        std::uint64_t misses = 0;     //!< ran warmup and published
        std::uint64_t evictions = 0;  //!< dropped by the memory cap
        std::uint64_t bypasses = 0;   //!< run not warm-eligible
        std::uint64_t fallbacks = 0;  //!< bad image; re-ran fresh
        std::uint64_t warmupCyclesSaved = 0; //!< cycles not simulated
    };

    /**
     * Return the warm image for @p key, producing it via @p produce
     * (outside the lock) on a miss. @p warmup_cycles is the warmup
     * window the image replaces, credited to warmupCyclesSaved on
     * every hit. If the producing thread throws, one blocked waiter
     * retries the production.
     */
    std::string getOrWarm(const std::string &key, Cycle warmup_cycles,
                          const std::function<std::string()> &produce);

    /** Drop @p key from memory and disk (consumer-detected corruption). */
    void invalidate(const std::string &key);

    /** Count a warm-ineligible run (checkpointing or obs active). */
    void noteBypass();

    /** Count a rejected image that fell back to a fresh run. */
    void noteFallback();

    Stats stats() const;
    const WarmPolicy &policy() const { return policy_; }

  private:
    struct Slot
    {
        std::string image;
        bool ready = false;
        std::list<std::string>::iterator lru;
    };

    std::string filePath(const std::string &key) const;
    /** Publish @p image under @p key and evict past the cap. */
    void publishLocked(const std::string &key, const std::string &image);

    WarmPolicy policy_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<std::string, Slot> slots_;
    std::list<std::string> lru_; //!< most-recently-used first
    std::size_t memBytes_ = 0;
    Stats stats_;
};

/** Thread-pool executor for batches of independent SweepJobs. */
class SweepRunner
{
  public:
    /** @p jobs worker threads (defaults to sweepJobs()). */
    explicit SweepRunner(RunOptions options);
    SweepRunner(RunOptions options, unsigned jobs);
    ~SweepRunner();

    /** Queue a job; returns its index for result()/outcome(). */
    std::size_t submit(SweepJob job);

    /**
     * Run all jobs submitted since the last run() and block until
     * they finish. A job's failure never aborts the batch: it is
     * recorded in outcome() (after deadline/retry/isolation handling
     * per the policy) while every other job keeps running. Only
     * infrastructure errors (journal I/O, fork failure) throw. The
     * runner is reusable: submit/run again after it returns, with
     * the alone-IPC memo carried across batches.
     */
    void run();

    /**
     * Result of job @p index. For a job that did not complete, the
     * original exception is rethrown (Failed) or a
     * std::runtime_error with the outcome's reason is thrown
     * (TimedOut/Crashed) — check outcome() first to degrade
     * gracefully.
     */
    const PairResult &result(std::size_t index) const;

    /** Outcome of job @p index (valid after run() returns). */
    const SweepOutcome &outcome(std::size_t index) const;

    /** Jobs completed over the runner's lifetime (all batches). */
    std::size_t completedJobs() const { return results_.size(); }

    /** Jobs whose outcome is not Ok, over all batches. */
    std::size_t failedJobs() const;

    /** Jobs loaded from the journal instead of simulated. */
    std::size_t journalHits() const { return journalHits_; }

    unsigned jobs() const { return jobs_; }
    const RunOptions &options() const { return options_; }
    const SweepPolicy &policy() const { return policy_; }

    /** Override the env policy (tests); resets the journal binding. */
    void setPolicy(SweepPolicy policy);

    /** Override the env warm policy (tests / bench A-B legs). */
    void setWarmPolicy(WarmPolicy policy);

    /** Override the env dist policy (tests / multi-worker drivers). */
    void setDistPolicy(DistPolicy policy);

    /** Distributed execution enabled (MASK_SWEEP_DIST_DIR set)? */
    bool distActive() const { return dist_.enabled(); }

    const DistPolicy &distPolicy() const { return dist_; }

    /** Distributed counters, accumulated over all run() batches
     *  (zeroes when distribution is off). */
    const DistSweepStats &distStats() const { return distStats_; }

    /** Warm-cache counters (zeroes when the cache is disabled). */
    WarmStateCache::Stats warmStats() const;

    /** Warm cache in use, or null when disabled. */
    const std::shared_ptr<WarmStateCache> &warmCache() const
    {
        return warm_;
    }

    /** Replace the job executor (tests: inject failures/hangs). */
    using Executor =
        std::function<PairResult(Evaluator &, const SweepJob &)>;
    void setExecutorForTest(Executor executor);

    /** Distinct alone runs memoized so far (shared across workers). */
    std::size_t aloneCacheSize() const { return cache_->size(); }

  private:
    void runBatch(const std::vector<std::size_t> &todo,
                  std::size_t base);
    void runIsolated(const std::vector<std::size_t> &todo,
                     std::size_t base);
    void runDistributed(std::size_t base);
    void applyDistWarmDefault();
    void runOne(Evaluator &eval, std::size_t pend_idx,
                std::size_t base);
    SweepOutcome attemptWithPolicy(Evaluator &eval, const SweepJob &job,
                                   std::size_t job_idx,
                                   PairResult &out);
    PairResult execute(Evaluator &eval, const SweepJob &job);
    void finishJob(std::size_t index, const std::string &key,
                   PairResult result, SweepOutcome outcome);
    std::string jobKey(const SweepJob &job) const;

    RunOptions options_;
    unsigned jobs_;
    SweepPolicy policy_;
    DistPolicy dist_;
    DistSweepStats distStats_;
    std::shared_ptr<AloneIpcCache> cache_;
    std::shared_ptr<WarmStateCache> warm_;
    std::vector<SweepJob> pending_;
    std::vector<PairResult> results_;
    std::vector<SweepOutcome> outcomes_;
    std::unique_ptr<SweepJournal> journal_;
    std::unique_ptr<DeadlineMonitor> monitor_;
    std::size_t journalHits_ = 0;
    Executor executor_;
};

} // namespace mask

#endif // MASK_SIM_SWEEP_HH
