/**
 * @file
 * Parallel workload-sweep engine.
 *
 * Every figure/table bench walks the same shape of loop: for each
 * (workload pair, design point), build a GPU and simulate it. The runs
 * are independent, so SweepRunner fans them across a pool of worker
 * threads — each worker owns a private Evaluator, all workers share
 * one thread-safe alone-IPC memo — and hands results back in
 * submission order, so bench output is byte-identical to a serial run
 * regardless of worker count or completion order.
 *
 * Usage is two-phase:
 *
 *     SweepRunner sweep(options);
 *     std::vector<std::size_t> ids;
 *     for (...) ids.push_back(sweep.submit({arch, point, pair}));
 *     sweep.run();
 *     for (...) use(sweep.result(ids[...]));
 *
 * The job count comes from MASK_BENCH_JOBS (default 1 = serial;
 * 0 = one per hardware thread).
 */

#ifndef MASK_SIM_SWEEP_HH
#define MASK_SIM_SWEEP_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"

namespace mask {

/**
 * Worker count from MASK_BENCH_JOBS: unset or 1 means serial, 0 means
 * one worker per hardware thread, N means N workers.
 */
unsigned sweepJobs();

/** What one sweep job computes. */
enum class SweepMode : std::uint8_t {
    Metrics,    //!< shared run + alone runs + Section 6 metrics
    SharedOnly, //!< shared run only (PairResult.stats, no metrics)
};

/** One (architecture, design point, workload) simulation request. */
struct SweepJob
{
    GpuConfig arch;
    DesignPoint point = DesignPoint::SharedTlb;
    std::vector<std::string> benches;
    SweepMode mode = SweepMode::Metrics;
};

/** Thread-pool executor for batches of independent SweepJobs. */
class SweepRunner
{
  public:
    /** @p jobs worker threads (defaults to sweepJobs()). */
    explicit SweepRunner(RunOptions options);
    SweepRunner(RunOptions options, unsigned jobs);

    /** Queue a job; returns its index for result(). */
    std::size_t submit(SweepJob job);

    /**
     * Run all jobs submitted since the last run() and block until
     * they finish. If any job throws, the exception of the
     * lowest-indexed failing job is rethrown after all workers stop.
     * The runner is reusable: submit/run again after it returns, with
     * the alone-IPC memo carried across batches.
     */
    void run();

    /** Result of job @p index (valid after run() returns). */
    const PairResult &result(std::size_t index) const;

    unsigned jobs() const { return jobs_; }
    const RunOptions &options() const { return options_; }

    /** Distinct alone runs memoized so far (shared across workers). */
    std::size_t aloneCacheSize() const { return cache_->size(); }

  private:
    void runSerial();
    void runParallel();

    RunOptions options_;
    unsigned jobs_;
    std::shared_ptr<AloneIpcCache> cache_;
    std::vector<SweepJob> pending_;
    std::vector<PairResult> results_;
};

} // namespace mask

#endif // MASK_SIM_SWEEP_HH
