/**
 * @file
 * Forward-progress watchdog (DESIGN.md §6 invariants at runtime).
 *
 * Registered with the GPU top level, the watchdog sweeps every
 * in-flight structure on a configurable interval: the global request
 * pool (which covers DRAM queues, L2 MSHR waiters, and retry queues —
 * every request below the L1 structures is pool-live), the TLB MSHRs,
 * the page table walker slots, the DRAM queue occupancy bounds, and
 * the per-application token counts. Anything older than
 * WatchdogConfig::maxAge trips a SimInvariantError carrying the full
 * stuck-request chain (TLB miss -> walk -> outstanding PTE fetch).
 */

#ifndef MASK_SIM_WATCHDOG_HH
#define MASK_SIM_WATCHDOG_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/memreq.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "mask/tokens.hh"
#include "sim/cancel.hh"
#include "tlb/tlb_mshr.hh"
#include "vm/walker.hh"

namespace mask {

/** Everything one sweep inspects; borrowed for the call only. */
struct WatchdogView
{
    const RequestPool *pool = nullptr;
    const TlbMshrTable *tlbMshr = nullptr;
    const PageTableWalker *walker = nullptr;
    const Dram *dram = nullptr;
    const TokenManager *tokens = nullptr;
    std::uint32_t numApps = 0;
    std::uint32_t warpsPerApp = 0;
    bool tokensEnabled = false;
};

class Watchdog
{
  public:
    explicit Watchdog(const WatchdogConfig &cfg) : cfg_(cfg) {}

    /** True when a sweep is due at @p now. */
    bool
    due(Cycle now) const
    {
        return cfg_.enabled && cfg_.sweepInterval > 0 &&
               now >= nextSweep_;
    }

    /** First cycle at which due() becomes true, or kNeverCycle when
     *  sweeping is disabled (next-event bound, DESIGN.md §9). */
    Cycle
    nextDue() const
    {
        if (!cfg_.enabled || cfg_.sweepInterval == 0)
            return kNeverCycle;
        return nextSweep_;
    }

    /**
     * Inspect every structure in @p view; throws SimInvariantError on
     * the first stuck item or violated bound.
     */
    void sweep(Cycle now, const WatchdogView &view);

    std::uint64_t sweeps() const { return sweepsDone_; }

    /** Oldest in-flight age (cycles) observed across all sweeps. */
    Cycle maxAgeSeen() const { return maxAgeSeen_; }

    void
    resetStats()
    {
        sweepsDone_ = 0;
        maxAgeSeen_ = 0;
    }

    void
    serialize(StateWriter &w) const
    {
        w.tag("wdog");
        w.u(nextSweep_);
        w.u(sweepsDone_);
        w.u(maxAgeSeen_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("wdog");
        nextSweep_ = r.u();
        sweepsDone_ = r.u();
        maxAgeSeen_ = r.u();
    }

  private:
    void sweepPool(Cycle now, const WatchdogView &view);
    void sweepTlbMshr(Cycle now, const WatchdogView &view);
    void sweepWalker(Cycle now, const WatchdogView &view);
    void sweepDram(Cycle now, const WatchdogView &view);
    void sweepTokens(Cycle now, const WatchdogView &view);

    void noteAge(Cycle age)
    {
        if (age > maxAgeSeen_)
            maxAgeSeen_ = age;
    }

    WatchdogConfig cfg_;
    Cycle nextSweep_ = 0;
    std::uint64_t sweepsDone_ = 0;
    Cycle maxAgeSeen_ = 0;
};

/**
 * Wall-clock companion to the simulated-cycle watchdog: one monitor
 * thread tracks the deadlines of in-flight sweep jobs and cancels the
 * CancelToken of any job that overruns its budget
 * (MASK_SWEEP_TIMEOUT_MS). The cancelled job unwinds at its next
 * pollCancellation() and the sweep engine records it as TimedOut
 * instead of blocking the pool forever.
 */
class DeadlineMonitor
{
  public:
    DeadlineMonitor();
    ~DeadlineMonitor();

    DeadlineMonitor(const DeadlineMonitor &) = delete;
    DeadlineMonitor &operator=(const DeadlineMonitor &) = delete;

    /**
     * Watch @p token: cancel it @p timeout_ms from now unless
     * unwatch() is called first. Returns a handle for unwatch().
     * @p token must outlive the watch (unwatch before destroying it).
     */
    std::uint64_t watch(CancelToken *token, std::uint64_t timeout_ms);

    /** Stop watching @p handle (idempotent). */
    void unwatch(std::uint64_t handle);

    /** Tokens cancelled because their deadline passed. */
    std::uint64_t expired() const;

  private:
    struct Entry
    {
        std::uint64_t id = 0;
        CancelToken *token = nullptr;
        std::chrono::steady_clock::time_point deadline;
        std::uint64_t timeoutMs = 0;
    };

    void loop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Entry> entries_;
    std::uint64_t nextId_ = 1;
    std::uint64_t expired_ = 0;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace mask

#endif // MASK_SIM_WATCHDOG_HH
