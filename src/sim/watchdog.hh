/**
 * @file
 * Forward-progress watchdog (DESIGN.md §6 invariants at runtime).
 *
 * Registered with the GPU top level, the watchdog sweeps every
 * in-flight structure on a configurable interval: the global request
 * pool (which covers DRAM queues, L2 MSHR waiters, and retry queues —
 * every request below the L1 structures is pool-live), the TLB MSHRs,
 * the page table walker slots, the DRAM queue occupancy bounds, and
 * the per-application token counts. Anything older than
 * WatchdogConfig::maxAge trips a SimInvariantError carrying the full
 * stuck-request chain (TLB miss -> walk -> outstanding PTE fetch).
 */

#ifndef MASK_SIM_WATCHDOG_HH
#define MASK_SIM_WATCHDOG_HH

#include <cstdint>

#include "common/config.hh"
#include "common/memreq.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "mask/tokens.hh"
#include "tlb/tlb_mshr.hh"
#include "vm/walker.hh"

namespace mask {

/** Everything one sweep inspects; borrowed for the call only. */
struct WatchdogView
{
    const RequestPool *pool = nullptr;
    const TlbMshrTable *tlbMshr = nullptr;
    const PageTableWalker *walker = nullptr;
    const Dram *dram = nullptr;
    const TokenManager *tokens = nullptr;
    std::uint32_t numApps = 0;
    std::uint32_t warpsPerApp = 0;
    bool tokensEnabled = false;
};

class Watchdog
{
  public:
    explicit Watchdog(const WatchdogConfig &cfg) : cfg_(cfg) {}

    /** True when a sweep is due at @p now. */
    bool
    due(Cycle now) const
    {
        return cfg_.enabled && cfg_.sweepInterval > 0 &&
               now >= nextSweep_;
    }

    /** First cycle at which due() becomes true, or kNeverCycle when
     *  sweeping is disabled (next-event bound, DESIGN.md §9). */
    Cycle
    nextDue() const
    {
        if (!cfg_.enabled || cfg_.sweepInterval == 0)
            return kNeverCycle;
        return nextSweep_;
    }

    /**
     * Inspect every structure in @p view; throws SimInvariantError on
     * the first stuck item or violated bound.
     */
    void sweep(Cycle now, const WatchdogView &view);

    std::uint64_t sweeps() const { return sweepsDone_; }

    /** Oldest in-flight age (cycles) observed across all sweeps. */
    Cycle maxAgeSeen() const { return maxAgeSeen_; }

    void
    resetStats()
    {
        sweepsDone_ = 0;
        maxAgeSeen_ = 0;
    }

  private:
    void sweepPool(Cycle now, const WatchdogView &view);
    void sweepTlbMshr(Cycle now, const WatchdogView &view);
    void sweepWalker(Cycle now, const WatchdogView &view);
    void sweepDram(Cycle now, const WatchdogView &view);
    void sweepTokens(Cycle now, const WatchdogView &view);

    void noteAge(Cycle age)
    {
        if (age > maxAgeSeen_)
            maxAgeSeen_ = age;
    }

    WatchdogConfig cfg_;
    Cycle nextSweep_ = 0;
    std::uint64_t sweepsDone_ = 0;
    Cycle maxAgeSeen_ = 0;
};

} // namespace mask

#endif // MASK_SIM_WATCHDOG_HH
