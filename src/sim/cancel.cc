#include "sim/cancel.hh"

namespace mask {

namespace {

thread_local CancelToken *tl_active_token = nullptr;

} // namespace

void
CancelToken::cancel(const std::string &reason)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (reason_.empty())
            reason_ = reason;
    }
    flag_.store(true, std::memory_order_release);
}

std::string
CancelToken::reason() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return reason_;
}

ScopedCancelToken::ScopedCancelToken(CancelToken *token)
    : prev_(tl_active_token)
{
    tl_active_token = token;
}

ScopedCancelToken::~ScopedCancelToken()
{
    tl_active_token = prev_;
}

CancelToken *
activeCancelToken()
{
    return tl_active_token;
}

void
pollCancellation()
{
    CancelToken *token = tl_active_token;
    if (token == nullptr || !token->cancelled()) [[likely]]
        return;
    std::string why = token->reason();
    if (why.empty())
        why = "cancelled";
    throw SimCancelledError(why);
}

} // namespace mask
