#include "sim/sweep_io.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace mask {

namespace {

// ---------------------------------------------------------------------
// Token-stream encoder/decoder (exact round-trip)
// ---------------------------------------------------------------------

// v2: added the checkpoint-overhead fields (ckptWriteSeconds,
// ckptBytes, ckptWrites) to the GpuStats tail.
constexpr const char *kBlobVersion = "v2";

struct Encoder
{
    std::string out;

    void
    u(std::uint64_t v)
    {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        out += ' ';
        out += buf;
    }

    void
    d(double v)
    {
        // %a hex floats re-read bit-exactly through strtod.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%a", v);
        out += ' ';
        out += buf;
    }

    void
    hm(const HitMiss &v)
    {
        u(v.hits);
        u(v.misses);
    }

    void
    rs(const RunningStat &v)
    {
        u(v.count);
        d(v.sum);
        d(v.minVal);
        d(v.maxVal);
    }

    template <typename Vec, typename Fn>
    void
    vec(const Vec &v, Fn &&item)
    {
        u(v.size());
        for (const auto &x : v)
            item(x);
    }
};

struct Decoder
{
    const char *p;
    const char *end;

    explicit Decoder(const std::string &blob)
        : p(blob.c_str()), end(blob.c_str() + blob.size())
    {}

    [[noreturn]] void
    fail(const char *what) const
    {
        throw std::runtime_error(
            std::string("sweep result blob: ") + what);
    }

    std::uint64_t
    u()
    {
        char *next = nullptr;
        errno = 0;
        const unsigned long long v = std::strtoull(p, &next, 10);
        if (next == p || errno != 0)
            fail("bad integer token");
        p = next;
        return v;
    }

    double
    d()
    {
        char *next = nullptr;
        errno = 0;
        const double v = std::strtod(p, &next);
        if (next == p)
            fail("bad float token");
        p = next;
        return v;
    }

    HitMiss
    hm()
    {
        HitMiss v;
        v.hits = u();
        v.misses = u();
        return v;
    }

    RunningStat
    rs()
    {
        RunningStat v;
        v.count = u();
        v.sum = d();
        v.minVal = d();
        v.maxVal = d();
        return v;
    }

    template <typename Vec, typename Fn>
    void
    vec(Vec &v, Fn &&item)
    {
        const std::uint64_t n = u();
        // Every element costs at least two bytes (" 0"); a count the
        // remaining stream cannot possibly hold is corruption, and
        // must fail cleanly here rather than as a giant reserve().
        if (n > static_cast<std::uint64_t>(end - p) / 2)
            fail("implausible vector length");
        v.clear();
        v.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            v.push_back(item());
    }

    void
    finish() const
    {
        const char *q = p;
        while (q != end && (*q == ' ' || *q == '\n'))
            ++q;
        if (q != end)
            fail("trailing tokens");
    }
};

void
encodeStats(Encoder &enc, const GpuStats &s)
{
    enc.u(s.cycles);
    enc.vec(s.instructions, [&](std::uint64_t v) { enc.u(v); });
    enc.vec(s.ipc, [&](double v) { enc.d(v); });
    enc.hm(s.l1Tlb);
    enc.hm(s.l2Tlb);
    enc.vec(s.l2TlbPerApp, [&](const HitMiss &v) { enc.hm(v); });
    enc.hm(s.bypassCache);
    enc.hm(s.pwCache);
    enc.hm(s.l1d);
    for (const HitMiss &v : s.l2Cache)
        enc.hm(v);
    for (const HitMiss &v : s.l2CachePerLevel)
        enc.hm(v);

    for (const std::uint64_t v : s.dram.busBusy)
        enc.u(v);
    for (const std::uint64_t v : s.dram.serviced)
        enc.u(v);
    for (const RunningStat &v : s.dram.latency)
        enc.rs(v);
    enc.u(s.dram.rowHits);
    enc.u(s.dram.rowMisses);
    enc.u(s.dram.rowConflicts);
    enc.u(s.dram.enqueueRejects);
    enc.u(s.dram.capEscalations);

    enc.u(s.walks);
    enc.rs(s.walkLatency);
    enc.rs(s.tlbMissLatency);
    enc.rs(s.concurrentWalks);
    enc.vec(s.concurrentWalksPerApp,
            [&](const RunningStat &v) { enc.rs(v); });
    enc.rs(s.warpsPerMiss);
    enc.vec(s.warpsPerMissPerApp,
            [&](const RunningStat &v) { enc.rs(v); });
    enc.rs(s.readyWarpsPerCore);

    enc.vec(s.tokens, [&](std::uint32_t v) { enc.u(v); });
    enc.u(s.l2Bypasses);
    enc.u(s.warpStallCycles);
    enc.u(s.watchdogSweeps);
    enc.u(s.watchdogMaxAgeSeen);
    enc.u(s.faultsInjected);
    enc.u(s.poolPeakLive);
    enc.u(s.poolCapacity);
    // wallSeconds is host-side accounting, explicitly outside the
    // bit-identical guarantee (gpu.hh) — encoding the measured value
    // would make isolated/journaled blobs differ run to run, so the
    // field travels as zero and keeps the blob a pure function of the
    // simulation.
    enc.d(0.0);
    enc.u(s.requests);
    enc.u(s.skippedCycles);
    enc.u(s.skipWindows);
    enc.vec(s.skipWindowLog2, [&](std::uint64_t v) { enc.u(v); });
    // Checkpoint overhead is host-side like wallSeconds: the measured
    // values vary run to run (and are zero whenever checkpointing is
    // off), so the blob carries zeros to stay a pure function of the
    // simulation.
    enc.d(0.0);
    enc.u(0);
    enc.u(0);
}

void
decodeStats(Decoder &dec, GpuStats &s)
{
    s.cycles = dec.u();
    dec.vec(s.instructions, [&]() { return dec.u(); });
    dec.vec(s.ipc, [&]() { return dec.d(); });
    s.l1Tlb = dec.hm();
    s.l2Tlb = dec.hm();
    dec.vec(s.l2TlbPerApp, [&]() { return dec.hm(); });
    s.bypassCache = dec.hm();
    s.pwCache = dec.hm();
    s.l1d = dec.hm();
    for (HitMiss &v : s.l2Cache)
        v = dec.hm();
    for (HitMiss &v : s.l2CachePerLevel)
        v = dec.hm();

    for (std::uint64_t &v : s.dram.busBusy)
        v = dec.u();
    for (std::uint64_t &v : s.dram.serviced)
        v = dec.u();
    for (RunningStat &v : s.dram.latency)
        v = dec.rs();
    s.dram.rowHits = dec.u();
    s.dram.rowMisses = dec.u();
    s.dram.rowConflicts = dec.u();
    s.dram.enqueueRejects = dec.u();
    s.dram.capEscalations = dec.u();

    s.walks = dec.u();
    s.walkLatency = dec.rs();
    s.tlbMissLatency = dec.rs();
    s.concurrentWalks = dec.rs();
    dec.vec(s.concurrentWalksPerApp, [&]() { return dec.rs(); });
    s.warpsPerMiss = dec.rs();
    dec.vec(s.warpsPerMissPerApp, [&]() { return dec.rs(); });
    s.readyWarpsPerCore = dec.rs();

    dec.vec(s.tokens, [&]() {
        return static_cast<std::uint32_t>(dec.u());
    });
    s.l2Bypasses = dec.u();
    s.warpStallCycles = dec.u();
    s.watchdogSweeps = dec.u();
    s.watchdogMaxAgeSeen = dec.u();
    s.faultsInjected = dec.u();
    s.poolPeakLive = dec.u();
    s.poolCapacity = dec.u();
    s.wallSeconds = dec.d();
    s.requests = dec.u();
    s.skippedCycles = dec.u();
    s.skipWindows = dec.u();
    dec.vec(s.skipWindowLog2, [&]() { return dec.u(); });
    s.ckptWriteSeconds = dec.d();
    s.ckptBytes = dec.u();
    s.ckptWrites = dec.u();
}

} // namespace

std::string
encodePairResult(const PairResult &result)
{
    Encoder enc;
    enc.out = kBlobVersion;
    enc.vec(result.sharedIpc, [&](double v) { enc.d(v); });
    enc.vec(result.aloneIpc, [&](double v) { enc.d(v); });
    enc.d(result.weightedSpeedup);
    enc.d(result.ipcThroughput);
    enc.d(result.unfairness);
    encodeStats(enc, result.stats);
    return enc.out;
}

PairResult
decodePairResult(const std::string &blob)
{
    Decoder dec(blob);
    const std::size_t ver_len = std::strlen(kBlobVersion);
    if (blob.compare(0, ver_len, kBlobVersion) != 0)
        dec.fail("unknown version");
    dec.p += ver_len;

    PairResult result;
    dec.vec(result.sharedIpc, [&]() { return dec.d(); });
    dec.vec(result.aloneIpc, [&]() { return dec.d(); });
    result.weightedSpeedup = dec.d();
    result.ipcThroughput = dec.d();
    result.unfairness = dec.d();
    decodeStats(dec, result.stats);
    dec.finish();
    return result;
}

// ---------------------------------------------------------------------
// JSONL journal
// ---------------------------------------------------------------------

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

bool
jsonField(const std::string &line, const std::string &field,
          std::string &out)
{
    const std::string marker = "\"" + field + "\":\"";
    const std::size_t start = line.find(marker);
    if (start == std::string::npos)
        return false;
    out.clear();
    for (std::size_t i = start + marker.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++i >= line.size())
            return false; // truncated escape
        switch (line[i]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: return false;
        }
    }
    return false; // no closing quote (truncated line)
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        return; // fresh journal
    std::string data;
    char buf[1 << 16];
    for (;;) {
        const ::ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            data.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd);

    // Parse complete ('\n'-terminated) lines only. Whatever trails
    // the final newline is a torn record from a writer killed
    // mid-append: truncate it away so the next append starts on a
    // clean line boundary instead of gluing onto the torn tail.
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break; // torn tail, handled below
        const std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        std::string key, status, result;
        if (!jsonField(line, "key", key) ||
            !jsonField(line, "status", status)) {
            ++malformed_;
            continue;
        }
        if (status != "Ok")
            continue;
        if (!jsonField(line, "result", result)) {
            ++malformed_;
            continue;
        }
        std::string attempts;
        OkEntry entry;
        entry.blob = result;
        if (jsonField(line, "attempts", attempts))
            entry.attempts = static_cast<unsigned>(
                std::strtoul(attempts.c_str(), nullptr, 10));
        ok_[key] = std::move(entry); // latest entry per key wins
    }
    if (pos < data.size()) {
        tornTail_ = 1;
        if (::truncate(path_.c_str(),
                       static_cast<::off_t>(pos)) != 0) {
            // Repair failure is survivable: appends after the torn
            // tail produce one more malformed line on the next load.
            std::fprintf(stderr,
                         "[sweep] journal %s: cannot truncate torn "
                         "tail (%zu bytes): %s\n",
                         path_.c_str(), data.size() - pos,
                         std::strerror(errno));
        } else {
            std::fprintf(stderr,
                         "[sweep] journal %s: truncated torn final "
                         "record (%zu bytes)\n",
                         path_.c_str(), data.size() - pos);
        }
    }
    if (malformed_ > 0) {
        std::fprintf(stderr,
                     "[sweep] journal %s: skipped %zu malformed "
                     "line(s)\n",
                     path_.c_str(), malformed_);
    }
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SweepJournal::setWorkerTag(std::string worker)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    worker_ = std::move(worker);
}

bool
SweepJournal::lookupOk(const std::string &key, PairResult &result,
                       unsigned &attempts) const
{
    std::string blob;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = ok_.find(key);
        if (it == ok_.end())
            return false;
        blob = it->second.blob;
        attempts = it->second.attempts;
    }
    result = decodePairResult(blob);
    return true;
}

void
SweepJournal::record(const std::string &key, const char *status,
                     unsigned attempts, const std::string &error,
                     const PairResult *result,
                     const std::string &repro)
{
    std::string blob;
    if (result != nullptr)
        blob = encodePairResult(*result);

    const std::lock_guard<std::mutex> lock(mutex_);
    std::string line = "{\"key\":\"" + jsonEscape(key) +
                       "\",\"status\":\"" + status +
                       "\",\"attempts\":\"" +
                       std::to_string(attempts) + "\",\"error\":\"" +
                       jsonEscape(error) + "\"";
    if (!repro.empty())
        line += ",\"repro\":\"" + jsonEscape(repro) + "\"";
    if (!worker_.empty())
        line += ",\"worker\":\"" + jsonEscape(worker_) + "\"";
    line += ",\"result\":\"" + jsonEscape(blob) + "\"}\n";

    // One write() on an O_APPEND descriptor: concurrent writers
    // (sibling processes sharing this journal) each land a whole
    // record at the file's end; bytes of two records never
    // interleave. A crash mid-write leaves at most one torn tail,
    // which the next open truncates away.
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
        if (fd_ < 0)
            throw std::runtime_error(
                "cannot append to sweep journal: " + path_);
    }
    ::ssize_t n;
    do {
        n = ::write(fd_, line.data(), line.size());
    } while (n < 0 && errno == EINTR);
    if (n != static_cast<::ssize_t>(line.size()))
        throw std::runtime_error("short write to sweep journal: " +
                                 path_);
    if (std::strcmp(status, "Ok") == 0) {
        OkEntry entry;
        entry.attempts = attempts;
        entry.blob = std::move(blob);
        ok_[key] = std::move(entry);
    }
}

std::size_t
SweepJournal::okEntries() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return ok_.size();
}

} // namespace mask
