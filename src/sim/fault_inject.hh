/**
 * @file
 * Deterministic fault-injection harness (DESIGN.md "Hardening").
 *
 * Injects the failure modes shared-resource mechanisms are most prone
 * to hide: delayed DRAM responses, dropped-then-retried (or silently
 * lost) page-walk completions, spurious full TLB shootdowns mid-run,
 * and transient shared-TLB port stalls. All decisions come from one
 * RNG stream seeded by (FaultInjectConfig::seed, GpuConfig::seed), so
 * a fault schedule replays bit-identically — the watchdog and the
 * crash-replay flow rely on this.
 *
 * The GPU top level owns the injector and calls the hook methods at
 * well-defined pipeline points; with enabled == false every hook is a
 * constant-false branch and costs nothing on the hot path.
 */

#ifndef MASK_SIM_FAULT_INJECT_HH
#define MASK_SIM_FAULT_INJECT_HH

#include <cstdint>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace mask {

class FaultInjector
{
  public:
    FaultInjector(const FaultInjectConfig &cfg, std::uint64_t gpu_seed);

    bool enabled() const { return cfg_.enabled; }

    /** Extra cycles to hold back a completed DRAM response (0 = none). */
    Cycle dramResponseDelay();

    /** True: drop this returning page-walk PTE fetch. */
    bool dropWalkFetch();

    bool retryDroppedFetch() const { return cfg_.walkDropRetry; }
    Cycle walkRetryDelay() const { return cfg_.walkRetryDelay; }

    /** True when a spurious full shootdown is due this cycle. */
    bool shootdownDue(Cycle now);

    /** Pick the victim app for a spurious shootdown. */
    std::uint32_t pickApp(std::uint32_t num_apps);

    /** True while the shared L2 TLB input port is stalled. */
    bool portStalled(Cycle now);

    // --- Injection counters (tests assert the harness actually fired) ---
    std::uint64_t delaysInjected() const { return delays_; }
    std::uint64_t dropsInjected() const { return drops_; }
    std::uint64_t shootdownsInjected() const { return shootdowns_; }
    std::uint64_t portStallsInjected() const { return portStalls_; }

    void
    serialize(StateWriter &w) const
    {
        w.tag("faults");
        rng_.serialize(w);
        w.u(nextShootdown_);
        w.u(stallUntil_);
        w.u(delays_);
        w.u(drops_);
        w.u(shootdowns_);
        w.u(portStalls_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("faults");
        rng_.deserialize(r);
        nextShootdown_ = r.u();
        stallUntil_ = r.u();
        delays_ = r.u();
        drops_ = r.u();
        shootdowns_ = r.u();
        portStalls_ = r.u();
    }

  private:
    FaultInjectConfig cfg_;
    Rng rng_;
    Cycle nextShootdown_ = 0;
    Cycle stallUntil_ = 0;

    std::uint64_t delays_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t shootdowns_ = 0;
    std::uint64_t portStalls_ = 0;
};

} // namespace mask

#endif // MASK_SIM_FAULT_INJECT_HH
