#include "sim/presets.hh"

#include <cstdio>
#include <cstdlib>

namespace mask {

GpuConfig
archByName(std::string_view name)
{
    if (name == "maxwell")
        return maxwellConfig();
    if (name == "fermi")
        return fermiConfig();
    if (name == "integrated")
        return integratedGpuConfig();
    std::fprintf(stderr, "unknown architecture preset: %.*s\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
}

std::vector<std::string_view>
allArchNames()
{
    return {"maxwell", "fermi", "integrated"};
}

} // namespace mask
