#include "sim/snapshot.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/gpu.hh"

namespace mask {

std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

constexpr const char *kMagic = "MASKSNAP";

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

/** Parse one full base-10 token; returns false on any stray byte. */
bool
parseU64(std::string_view tok, std::uint64_t &out)
{
    if (tok.empty() || tok.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (const char c : tok) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

/** Next space-separated token of @p line starting at @p pos. */
std::string_view
nextToken(std::string_view line, std::size_t &pos)
{
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ')
        ++pos;
    return line.substr(start, pos - start);
}

/**
 * Write @p content to @p path via tmp + rename (atomic publish). The
 * tmp file is written with one buffered write() on a raw fd — the
 * image was already rendered into a single contiguous buffer, so
 * there is nothing for stream buffering to batch.
 */
void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw std::runtime_error("cannot write snapshot file: " + tmp +
                                 ": " + std::strerror(errno));
    std::size_t done = 0;
    while (done < content.size()) {
        const ::ssize_t n = ::write(fd, content.data() + done,
                                    content.size() - done);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            ::close(fd);
            std::remove(tmp.c_str());
            throw std::runtime_error(
                "short write to snapshot file: " + tmp);
        }
        done += static_cast<std::size_t>(n);
    }
    if (::close(fd) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot write snapshot file: " + tmp +
                                 ": " + std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot publish snapshot file: " +
                                 path + ": " + std::strerror(errno));
    }
}

/**
 * Payload size of the last snapshot rendered on this thread: the
 * reserve hint for the next render. Periodic checkpoints of one run
 * are near-constant size, so reserving the previous size (plus a
 * small growth margin) makes serialization a single allocation.
 */
thread_local std::size_t tl_lastPayloadSize = 0;

} // namespace

std::string
renderSnapshot(std::uint64_t config_fingerprint, const Gpu &gpu)
{
    StateWriter writer;
    if (tl_lastPayloadSize != 0)
        writer.reserve(tl_lastPayloadSize + tl_lastPayloadSize / 16 +
                       4096);
    gpu.serialize(writer);
    const std::string payload = writer.take();
    tl_lastPayloadSize = payload.size();

    char header[128];
    const int len = std::snprintf(
        header, sizeof(header), "%s %llu %llu %llu %zu %llu\n", kMagic,
        static_cast<unsigned long long>(kSnapshotVersion),
        static_cast<unsigned long long>(config_fingerprint),
        static_cast<unsigned long long>(gpu.now()), payload.size(),
        static_cast<unsigned long long>(fnv1a64(payload)));

    std::string image;
    image.reserve(static_cast<std::size_t>(len) + payload.size());
    image.append(header, static_cast<std::size_t>(len));
    image.append(payload);
    return image;
}

std::uint64_t
saveSnapshotFile(const std::string &path,
                 std::uint64_t config_fingerprint, const Gpu &gpu)
{
    const std::string image = renderSnapshot(config_fingerprint, gpu);
    writeFileAtomic(path, image);
    return image.size();
}

std::string_view
validateSnapshotImage(std::string_view data,
                      std::uint64_t config_fingerprint,
                      std::uint64_t *cycle_out)
{
    constexpr std::uint64_t kNoCycle = SnapshotError::kNoCycle;

    const std::size_t nl = data.find('\n');
    if (nl == std::string_view::npos)
        throw SnapshotError("missing snapshot header line", "header",
                            kNoCycle);
    const std::string_view line = data.substr(0, nl);

    std::size_t pos = 0;
    if (nextToken(line, pos) != kMagic)
        throw SnapshotError("not a snapshot file (bad magic)",
                            "header", kNoCycle);

    std::uint64_t version = 0;
    if (!parseU64(nextToken(line, pos), version))
        throw SnapshotError("malformed version field", "header",
                            kNoCycle);
    if (version != kSnapshotVersion)
        throw SnapshotError("unsupported snapshot format version " +
                                std::to_string(version) +
                                " (this build reads version " +
                                std::to_string(kSnapshotVersion) + ")",
                            "header", kNoCycle);

    std::uint64_t fingerprint = 0;
    if (!parseU64(nextToken(line, pos), fingerprint))
        throw SnapshotError("malformed fingerprint field", "header",
                            kNoCycle);

    std::uint64_t cycle = 0;
    if (!parseU64(nextToken(line, pos), cycle))
        throw SnapshotError("malformed cycle field", "header",
                            kNoCycle);
    if (cycle_out != nullptr)
        *cycle_out = cycle;

    if (fingerprint != config_fingerprint)
        throw SnapshotError(
            "config fingerprint mismatch (snapshot " +
                std::to_string(fingerprint) + ", run " +
                std::to_string(config_fingerprint) + ")",
            "header", cycle);

    std::uint64_t length = 0;
    if (!parseU64(nextToken(line, pos), length))
        throw SnapshotError("malformed payload length", "header",
                            cycle);
    std::uint64_t checksum = 0;
    if (!parseU64(nextToken(line, pos), checksum))
        throw SnapshotError("malformed checksum field", "header",
                            cycle);
    if (pos != line.size() && nextToken(line, pos) != "")
        throw SnapshotError("trailing bytes in header", "header",
                            cycle);

    const std::string_view payload = data.substr(nl + 1);
    if (payload.size() != length)
        throw SnapshotError(
            "truncated payload (" + std::to_string(payload.size()) +
                " of " + std::to_string(length) + " bytes)",
            "payload", cycle);
    if (fnv1a64(payload) != checksum)
        throw SnapshotError("payload checksum mismatch", "payload",
                            cycle);
    return payload;
}

namespace {

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot read snapshot file: " + path,
                            "file", SnapshotError::kNoCycle);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in)
        throw SnapshotError("I/O error reading snapshot file: " + path,
                            "file", SnapshotError::kNoCycle);
    return buf.str();
}

} // namespace

void
loadSnapshotFile(const std::string &path,
                 std::uint64_t config_fingerprint, Gpu &gpu)
{
    const std::string data = readFileOrThrow(path);
    std::uint64_t cycle = SnapshotError::kNoCycle;
    const std::string_view payload =
        validateSnapshotImage(data, config_fingerprint, &cycle);
    StateReader reader(payload, cycle);
    gpu.deserialize(reader);
}

std::uint64_t
snapshotFileCycle(const std::string &path,
                  std::uint64_t config_fingerprint)
{
    const std::string data = readFileOrThrow(path);
    std::uint64_t cycle = SnapshotError::kNoCycle;
    validateSnapshotImage(data, config_fingerprint, &cycle);
    return cycle;
}

// ---------------------------------------------------------------------
// Periodic checkpoint policy
// ---------------------------------------------------------------------

CheckpointPolicy
checkpointPolicyFromEnv()
{
    CheckpointPolicy policy;
    if (const char *env = std::getenv("MASK_CKPT_INTERVAL_CYCLES");
        env != nullptr && env[0] != '\0') {
        char *end = nullptr;
        const unsigned long long n = std::strtoull(env, &end, 10);
        if (end != nullptr && *end == '\0')
            policy.intervalCycles = static_cast<Cycle>(n);
    }
    if (const char *dir = std::getenv("MASK_CKPT_DIR");
        dir != nullptr && dir[0] != '\0') {
        policy.dir = dir;
    }
    if (const char *keep = std::getenv("MASK_CKPT_KEEP");
        keep != nullptr && keep[0] == '1') {
        policy.keep = true;
    }
    return policy;
}

std::string
checkpointPath(const CheckpointPolicy &policy,
               std::uint64_t config_fingerprint,
               const std::vector<std::string> &benches, Cycle warmup,
               Cycle measure)
{
    std::string name = "ckpt_";
    char fp_hex[24];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(config_fingerprint));
    name += fp_hex;
    for (const std::string &bench : benches) {
        name += '_';
        for (const char c : bench) {
            name += std::isalnum(static_cast<unsigned char>(c)) != 0
                        ? c
                        : '-';
        }
    }
    name += '_' + std::to_string(warmup) + '_' +
            std::to_string(measure) + ".snap";
    const std::string &dir = policy.dir.empty() ? "." : policy.dir;
    return dir + "/" + name;
}

GpuStats
runWithCheckpoints(const std::function<std::unique_ptr<Gpu>()> &make_gpu,
                   const CheckpointPolicy &policy,
                   std::uint64_t config_fingerprint,
                   const std::string &path, Cycle warmup, Cycle measure)
{
    std::unique_ptr<Gpu> gpu = make_gpu();
    if (!policy.enabled() || path.empty()) {
        gpu->run(warmup);
        gpu->resetStats();
        gpu->run(measure);
        return gpu->collect();
    }

    const std::string sig_path = path + ".sig";

    // Resume from the newest valid checkpoint: periodic snapshots and
    // the fatal-signal emergency flush are both candidates, newest
    // cycle first. A candidate that fails header validation is skipped
    // outright; one that fails mid-restore poisons the half-written
    // Gpu, so the instance is rebuilt before the next attempt (or the
    // cycle-0 fallback).
    struct Candidate
    {
        std::string file;
        std::uint64_t cycle = 0;
    };
    std::vector<Candidate> candidates;
    for (const std::string &file : {path, sig_path}) {
        if (!fileExists(file))
            continue;
        try {
            candidates.push_back(
                {file, snapshotFileCycle(file, config_fingerprint)});
        } catch (const SnapshotError &err) {
            std::fprintf(stderr,
                         "mask: ignoring invalid checkpoint %s: %s\n",
                         file.c_str(), err.what());
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.cycle > b.cycle;
              });
    for (const Candidate &cand : candidates) {
        try {
            loadSnapshotFile(cand.file, config_fingerprint, *gpu);
            std::fprintf(stderr,
                         "mask: resumed from checkpoint %s at cycle "
                         "%llu\n",
                         cand.file.c_str(),
                         static_cast<unsigned long long>(cand.cycle));
            break;
        } catch (const SnapshotError &err) {
            std::fprintf(stderr,
                         "mask: checkpoint %s rejected (%s); falling "
                         "back\n",
                         cand.file.c_str(), err.what());
            gpu = make_gpu();
        }
    }

    gpu->setCheckpointHook(
        policy.intervalCycles, [path, config_fingerprint](Gpu &g) {
            std::string image = renderSnapshot(config_fingerprint, g);
            writeFileAtomic(path, image);
            g.noteCheckpointBytes(image.size());
            publishEmergencySnapshot(std::move(image));
        });
    const ScopedEmergencySnapshot emergency(sig_path);

    // The snapshot cookie records the runner phase: 0 while warming
    // up (stats not yet reset), 1 inside the measured window.
    if (gpu->snapshotCookie() == 0) {
        if (gpu->now() < warmup)
            gpu->run(warmup - gpu->now());
        gpu->resetStats();
        gpu->setSnapshotCookie(1);
    }
    const Cycle end = warmup + measure;
    if (gpu->now() < end)
        gpu->run(end - gpu->now());

    gpu->setCheckpointHook(0, {});
    GpuStats stats = gpu->collect();
    if (!policy.keep) {
        std::remove(path.c_str());
        std::remove(sig_path.c_str());
    }
    return stats;
}

// ---------------------------------------------------------------------
// Emergency snapshots (fatal-signal flush)
// ---------------------------------------------------------------------

namespace {

/**
 * Per-thread double buffer. publishEmergencySnapshot writes the buffer
 * the handler is NOT pointed at, then flips `ready` atomically; a
 * fatal signal landing mid-publish therefore flushes the previous
 * complete image. The handler itself only reads `armed`, `path`,
 * `ready`, and the ready buffer's bytes — all stable between publish
 * calls on this thread — and calls only open/write/close.
 */
struct EmergencySink
{
    bool armed = false;
    std::string path;
    std::string buf[2];
    std::atomic<int> ready{-1};
};

thread_local EmergencySink tl_emergency;

void
writeAllFd(int fd, const char *data, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ::ssize_t n = ::write(fd, data + done, len - done);
        if (n <= 0)
            return;
        done += static_cast<std::size_t>(n);
    }
}

} // namespace

ScopedEmergencySnapshot::ScopedEmergencySnapshot(const std::string &path)
    : prevPath_(std::move(tl_emergency.path)),
      prevArmed_(tl_emergency.armed)
{
    tl_emergency.path = path;
    tl_emergency.armed = true;
    tl_emergency.ready.store(-1, std::memory_order_release);
}

ScopedEmergencySnapshot::~ScopedEmergencySnapshot()
{
    tl_emergency.ready.store(-1, std::memory_order_release);
    tl_emergency.path = std::move(prevPath_);
    tl_emergency.armed = prevArmed_;
}

void
publishEmergencySnapshot(const std::string &image)
{
    EmergencySink &sink = tl_emergency;
    if (!sink.armed)
        return;
    const int current = sink.ready.load(std::memory_order_relaxed);
    const int next = current == 0 ? 1 : 0;
    sink.buf[next] = image;
    sink.ready.store(next, std::memory_order_release);
}

void
publishEmergencySnapshot(std::string &&image)
{
    EmergencySink &sink = tl_emergency;
    if (!sink.armed)
        return;
    const int current = sink.ready.load(std::memory_order_relaxed);
    const int next = current == 0 ? 1 : 0;
    sink.buf[next] = std::move(image);
    sink.ready.store(next, std::memory_order_release);
}

void
flushEmergencySnapshotFromSignal() noexcept
{
    const EmergencySink &sink = tl_emergency;
    if (!sink.armed || sink.path.empty())
        return;
    const int ready = sink.ready.load(std::memory_order_acquire);
    if (ready < 0)
        return;
    const std::string &image = sink.buf[ready];
    const int fd = ::open(sink.path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return;
    writeAllFd(fd, image.data(), image.size());
    ::close(fd);
}

} // namespace mask
