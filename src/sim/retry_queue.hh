/**
 * @file
 * Indexed parking queue for MSHR-full data retries (DESIGN.md §12).
 *
 * Each shader core parks translated data accesses that found every L1
 * MSHR entry busy. The retry pass must re-probe them in global arrival
 * order (request-pool allocation order is part of the simulated
 * result), but at saturation almost every probe returns Full again, so
 * the pass keys the parked entries by their L1 line: a probe can only
 * succeed when its key was just filled (L1 hit), its key has an
 * outstanding MSHR entry (merge), or an MSHR slot is free (allocate).
 * The queue therefore maintains two incremental views over one slab of
 * nodes:
 *
 *  - a doubly-linked list in ascending sequence (arrival) order, fed
 *    by park() which only ever appends (fresh parks take a fresh,
 *    larger sequence number; probed entries that stay Full are simply
 *    left in place, so no mid-list insertion ever happens); and
 *  - per-key chains, also in ascending sequence order for the same
 *    reason, reached through a FlatTable of chain heads.
 *
 * Indices are derived state: snapshots flatten the queue back to the
 * flat arrival-ordered sequence the single-queue implementation wrote,
 * and restore re-parks each entry, rebuilding both views.
 */

#ifndef MASK_SIM_RETRY_QUEUE_HH
#define MASK_SIM_RETRY_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/flat_table.hh"
#include "common/types.hh"
#include "tlb/tlb_mshr.hh"

namespace mask {

/** Per-core parked data retries indexed by arrival order and L1 key. */
class DataRetryQueue
{
  public:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Entry
    {
        StalledAccess access;
        AppId app = 0;
        Pfn pfn = 0;
        std::uint64_t seq = 0; //!< global arrival order across cores
        std::uint64_t key = 0; //!< L1/L2 line key of the access
    };

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Oldest parked node, kNil when empty. */
    std::uint32_t head() const { return head_; }
    /** Next node in arrival order, kNil at the tail. */
    std::uint32_t next(std::uint32_t n) const { return nodes_[n].next; }
    /** Oldest parked node with @p key, kNil if none. */
    std::uint32_t
    chainHead(std::uint64_t key) const
    {
        const Chain *c = chains_.find(key);
        return c == nullptr ? kNil : c->head;
    }
    /** Next node in the same key chain, kNil at the chain tail. */
    std::uint32_t
    chainNext(std::uint32_t n) const
    {
        return nodes_[n].keyNext;
    }
    bool hasKey(std::uint64_t key) const { return chains_.contains(key); }
    const Entry &at(std::uint32_t n) const { return nodes_[n].entry; }

    /**
     * Park an access. @p seq must exceed every sequence number already
     * in the queue (the caller hands out fresh, monotonically
     * increasing numbers), so both the arrival list and the key chain
     * are pure appends.
     */
    void
    park(const StalledAccess &access, AppId app, Pfn pfn,
         std::uint64_t seq, std::uint64_t key)
    {
        std::uint32_t n;
        if (!free_.empty()) {
            n = free_.back();
            free_.pop_back();
        } else {
            n = static_cast<std::uint32_t>(nodes_.size());
            nodes_.emplace_back();
        }
        Node &node = nodes_[n];
        node.entry = Entry{access, app, pfn, seq, key};
        node.prev = tail_;
        node.next = kNil;
        if (tail_ != kNil)
            nodes_[tail_].next = n;
        else
            head_ = n;
        tail_ = n;
        node.keyNext = kNil;
        if (Chain *c = chains_.find(key)) {
            node.keyPrev = c->tail;
            nodes_[c->tail].keyNext = n;
            c->tail = n;
        } else {
            node.keyPrev = kNil;
            chains_.insert(key, Chain{n, n});
        }
        ++count_;
    }

    /**
     * Unlink node @p n from both views. Returns true when its key
     * chain became empty (the caller drops the key from any
     * merge-eligibility set it maintains).
     */
    bool
    remove(std::uint32_t n)
    {
        Node &node = nodes_[n];
        if (node.prev != kNil)
            nodes_[node.prev].next = node.next;
        else
            head_ = node.next;
        if (node.next != kNil)
            nodes_[node.next].prev = node.prev;
        else
            tail_ = node.prev;

        bool chain_emptied = false;
        if (node.keyPrev != kNil)
            nodes_[node.keyPrev].keyNext = node.keyNext;
        if (node.keyNext != kNil)
            nodes_[node.keyNext].keyPrev = node.keyPrev;
        if (node.keyPrev == kNil && node.keyNext == kNil) {
            chains_.erase(node.entry.key);
            chain_emptied = true;
        } else {
            Chain *c = chains_.find(node.entry.key);
            if (node.keyPrev == kNil)
                c->head = node.keyNext;
            if (node.keyNext == kNil)
                c->tail = node.keyPrev;
        }
        free_.push_back(n);
        --count_;
        return chain_emptied;
    }

    /** Visit entries in arrival order (for snapshot flattening). */
    template <typename Fn>
    void
    forEachSeq(Fn &&fn) const
    {
        for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next)
            fn(nodes_[n].entry);
    }

    void
    clear()
    {
        nodes_.clear();
        free_.clear();
        chains_.clear();
        head_ = kNil;
        tail_ = kNil;
        count_ = 0;
    }

  private:
    struct Chain
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    struct Node
    {
        Entry entry;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
        std::uint32_t keyPrev = kNil;
        std::uint32_t keyNext = kNil;
    };

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> free_; //!< recycled slab slots
    FlatTable<Chain> chains_;         //!< key -> chain head/tail
    std::uint32_t head_ = kNil;
    std::uint32_t tail_ = kNil;
    std::size_t count_ = 0;
};

} // namespace mask

#endif // MASK_SIM_RETRY_QUEUE_HH
