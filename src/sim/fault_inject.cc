#include "sim/fault_inject.hh"

namespace mask {

FaultInjector::FaultInjector(const FaultInjectConfig &cfg,
                             std::uint64_t gpu_seed)
    : cfg_(cfg),
      // Distinct stream per (injector seed, simulation seed) pair so
      // fault schedules never alias the workload generators'.
      rng_(cfg.seed * 0x9e3779b97f4a7c15ull + gpu_seed + 0x5eedfaull)
{
    if (cfg_.enabled && cfg_.shootdownInterval > 0)
        nextShootdown_ = cfg_.shootdownInterval;
}

Cycle
FaultInjector::dramResponseDelay()
{
    if (!cfg_.enabled || cfg_.dramDelayProb <= 0.0)
        return 0;
    if (!rng_.chance(cfg_.dramDelayProb))
        return 0;
    ++delays_;
    return cfg_.dramDelayCycles;
}

bool
FaultInjector::dropWalkFetch()
{
    if (!cfg_.enabled || cfg_.walkDropProb <= 0.0)
        return false;
    if (!rng_.chance(cfg_.walkDropProb))
        return false;
    ++drops_;
    return true;
}

bool
FaultInjector::shootdownDue(Cycle now)
{
    if (!cfg_.enabled || cfg_.shootdownInterval == 0 ||
        now < nextShootdown_) {
        return false;
    }
    nextShootdown_ = now + cfg_.shootdownInterval;
    ++shootdowns_;
    return true;
}

std::uint32_t
FaultInjector::pickApp(std::uint32_t num_apps)
{
    return static_cast<std::uint32_t>(rng_.below(num_apps));
}

bool
FaultInjector::portStalled(Cycle now)
{
    if (!cfg_.enabled || cfg_.portStallProb <= 0.0)
        return false;
    if (now < stallUntil_)
        return true;
    if (rng_.chance(cfg_.portStallProb)) {
        stallUntil_ = now + cfg_.portStallCycles;
        ++portStalls_;
        return true;
    }
    return false;
}

} // namespace mask
