/**
 * @file
 * Multi-programmed workload runner: builds a GPU for a workload and a
 * design point, runs warmup + measurement windows, computes weighted
 * speedup / IPC throughput / unfairness against cached alone runs
 * (Section 6 methodology), and optionally searches core partitionings
 * like the paper's oracle scheduler.
 */

#ifndef MASK_SIM_RUNNER_HH
#define MASK_SIM_RUNNER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hh"
#include "sim/crash_repro.hh"
#include "sim/gpu.hh"
#include "workload/suite.hh"

namespace mask {

/** Simulation window sizes. */
struct RunOptions
{
    Cycle warmup = 50000;
    Cycle measure = 200000;
};

/**
 * Default windows, honoring environment overrides:
 * MASK_BENCH_CYCLES=<n> sets the measurement window, and
 * MASK_BENCH_FAST=1 selects a short CI-friendly window.
 */
RunOptions defaultRunOptions();

/** Result of one multi-application evaluation. */
struct PairResult
{
    std::vector<double> sharedIpc;
    std::vector<double> aloneIpc;
    double weightedSpeedup = 0.0;
    double ipcThroughput = 0.0;
    double unfairness = 0.0;
    GpuStats stats;
};

/**
 * Thread-safe memo of alone-run IPCs. One cache may back any number of
 * Evaluators (one per sweep worker): the first thread to request a key
 * computes it while later requesters of the same key block until the
 * value lands, so no alone run is ever simulated twice.
 */
class AloneIpcCache
{
  public:
    /**
     * Return the cached value for @p key, or run @p compute (outside
     * the lock) to fill it. If the computing thread throws, one
     * blocked waiter retries the computation.
     */
    double getOrCompute(const std::string &key,
                        const std::function<double()> &compute);

    /** Number of distinct memoized alone runs. */
    std::size_t size() const;

  private:
    struct Slot
    {
        double value = 0.0;
        bool ready = false;
    };

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<std::string, Slot> slots_;
};

// --- Warm-start execution split (DESIGN.md §14) ----------------------

/**
 * Run only the warmup window of (cfg, bench_names) on a fresh Gpu and
 * render its snapshot image. The header carries warmupFingerprint(cfg)
 * — not configFingerprint — because any configuration with the same
 * warmup fingerprint may legally restore this image (they diverge only
 * in measure-only knobs).
 */
std::string runWarmup(const GpuConfig &cfg,
                      const std::vector<std::string> &bench_names,
                      Cycle warmup);

/**
 * Restore @p image into a fresh Gpu built from @p cfg and run only the
 * measurement window. Byte-identical to
 * run(warmup); resetStats(); run(measure) on the same configuration
 * (determinism leg 12 enforces this). Throws SnapshotError when the
 * image fails validation against warmupFingerprint(cfg) or its header
 * cycle differs from @p warmup — callers fall back to a fresh run.
 */
GpuStats runMeasureFrom(std::string_view image, const GpuConfig &cfg,
                        const std::vector<std::string> &bench_names,
                        Cycle warmup, Cycle measure);

/**
 * Cache key of the warmed state shared by every job whose config maps
 * to @p warmup_fingerprint with workload @p bench_names and warmup
 * window @p warmup. Also the basename of file-backed warm snapshots.
 */
std::string warmStateKey(std::uint64_t warmup_fingerprint,
                         const std::vector<std::string> &bench_names,
                         Cycle warmup);

class WarmStateCache; // sim/sweep.hh

/** Runner with an alone-IPC cache shared across evaluations. */
class Evaluator
{
  public:
    /** Evaluator with a private alone-IPC cache. */
    explicit Evaluator(RunOptions options)
        : Evaluator(options, std::make_shared<AloneIpcCache>())
    {}

    /** Evaluator sharing @p cache (sweep workers pass one cache). */
    Evaluator(RunOptions options,
              std::shared_ptr<AloneIpcCache> cache)
        : options_(options), aloneCache_(std::move(cache))
    {}

    /**
     * Run @p bench_names concurrently on @p arch at @p point and
     * compute all Section 6 metrics. Alone IPCs use the same design
     * point and the same per-application core count.
     */
    PairResult evaluate(const GpuConfig &arch, DesignPoint point,
                        const std::vector<std::string> &bench_names);

    /** Shared run only (no alone runs, no metrics). */
    GpuStats runShared(const GpuConfig &arch, DesignPoint point,
                       const std::vector<std::string> &bench_names);

    /**
     * IPC of @p bench running alone on @p cores cores of @p arch at
     * @p point; memoized.
     */
    double aloneIpc(const GpuConfig &arch, DesignPoint point,
                    const std::string &bench, std::uint32_t cores);

    const RunOptions &options() const { return options_; }

    /** Distinct alone runs memoized so far (cache observability). */
    std::size_t aloneCacheSize() const { return aloneCache_->size(); }

    /**
     * Share @p warm across evaluations: shared and alone runs then
     * fork warmed snapshots instead of re-running warmup whenever the
     * run is warm-eligible (no MASK_CKPT_* checkpointing, no active
     * observability sinks). Null (the default) disables warm starts —
     * every run then simulates from cycle 0, exactly as before.
     */
    void setWarmCache(std::shared_ptr<WarmStateCache> warm)
    {
        warm_ = std::move(warm);
    }

    /** Warm-state cache in use, or null. */
    const std::shared_ptr<WarmStateCache> &warmCache() const
    {
        return warm_;
    }

  private:
    RunOptions options_;
    std::shared_ptr<AloneIpcCache> aloneCache_;
    std::shared_ptr<WarmStateCache> warm_;
};

/**
 * Oracle-style static core partition search for a two-application
 * workload (Section 6): tries splits in steps of @p step cores and
 * returns the best weighted speedup found.
 */
PairResult searchBestPartition(Evaluator &eval, const GpuConfig &arch,
                               DesignPoint point,
                               const std::vector<std::string> &pair,
                               std::uint32_t step);

/** Outcome of replaying a crash-repro record. */
struct ReplayResult
{
    bool reproduced = false; //!< an invariant tripped during replay
    bool sameCycle = false;  //!< ...at the recorded cycle
    bool sameModule = false; //!< ...in the recorded module
    Cycle failCycle = 0;
    std::string module;
    std::string detail;
};

/**
 * Re-run the configuration recorded in @p repro (preset architecture,
 * design point, benches, seeds, hardening knobs) and report whether
 * the recorded failure reproduces. Deterministic: a faithful record
 * reproduces at exactly the recorded cycle.
 */
ReplayResult replayRepro(const CrashRepro &repro);

} // namespace mask

#endif // MASK_SIM_RUNNER_HH
