/**
 * @file
 * Multi-programmed workload runner: builds a GPU for a workload and a
 * design point, runs warmup + measurement windows, computes weighted
 * speedup / IPC throughput / unfairness against cached alone runs
 * (Section 6 methodology), and optionally searches core partitionings
 * like the paper's oracle scheduler.
 */

#ifndef MASK_SIM_RUNNER_HH
#define MASK_SIM_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/crash_repro.hh"
#include "sim/gpu.hh"
#include "workload/suite.hh"

namespace mask {

/** Simulation window sizes. */
struct RunOptions
{
    Cycle warmup = 50000;
    Cycle measure = 200000;
};

/**
 * Default windows, honoring environment overrides:
 * MASK_BENCH_CYCLES=<n> sets the measurement window, and
 * MASK_BENCH_FAST=1 selects a short CI-friendly window.
 */
RunOptions defaultRunOptions();

/** Result of one multi-application evaluation. */
struct PairResult
{
    std::vector<double> sharedIpc;
    std::vector<double> aloneIpc;
    double weightedSpeedup = 0.0;
    double ipcThroughput = 0.0;
    double unfairness = 0.0;
    GpuStats stats;
};

/** Runner with an alone-IPC cache shared across evaluations. */
class Evaluator
{
  public:
    explicit Evaluator(RunOptions options) : options_(options) {}

    /**
     * Run @p bench_names concurrently on @p arch at @p point and
     * compute all Section 6 metrics. Alone IPCs use the same design
     * point and the same per-application core count.
     */
    PairResult evaluate(const GpuConfig &arch, DesignPoint point,
                        const std::vector<std::string> &bench_names);

    /** Shared run only (no alone runs, no metrics). */
    GpuStats runShared(const GpuConfig &arch, DesignPoint point,
                       const std::vector<std::string> &bench_names);

    /**
     * IPC of @p bench running alone on @p cores cores of @p arch at
     * @p point; memoized.
     */
    double aloneIpc(const GpuConfig &arch, DesignPoint point,
                    const std::string &bench, std::uint32_t cores);

    const RunOptions &options() const { return options_; }

  private:
    RunOptions options_;
    std::map<std::string, double> aloneCache_;
};

/**
 * Oracle-style static core partition search for a two-application
 * workload (Section 6): tries splits in steps of @p step cores and
 * returns the best weighted speedup found.
 */
PairResult searchBestPartition(Evaluator &eval, const GpuConfig &arch,
                               DesignPoint point,
                               const std::vector<std::string> &pair,
                               std::uint32_t step);

/** Outcome of replaying a crash-repro record. */
struct ReplayResult
{
    bool reproduced = false; //!< an invariant tripped during replay
    bool sameCycle = false;  //!< ...at the recorded cycle
    bool sameModule = false; //!< ...in the recorded module
    Cycle failCycle = 0;
    std::string module;
    std::string detail;
};

/**
 * Re-run the configuration recorded in @p repro (preset architecture,
 * design point, benches, seeds, hardening knobs) and report whether
 * the recorded failure reproduces. Deterministic: a faithful record
 * reproduces at exactly the recorded cycle.
 */
ReplayResult replayRepro(const CrashRepro &repro);

} // namespace mask

#endif // MASK_SIM_RUNNER_HH
