#include "sim/time_mux.hh"

#include <algorithm>
#include <vector>

#include "common/stats.hh"
#include "sim/gpu.hh"

namespace mask {

double
TimeMuxResult::overhead() const
{
    return safeDiv(static_cast<double>(muxCycles) -
                       static_cast<double>(serialCycles),
                   static_cast<double>(serialCycles));
}

namespace {

/** Cycles for one process to complete its work alone on all cores. */
Cycle
serialTime(const GpuConfig &cfg, const BenchmarkParams &bench,
           std::uint64_t work)
{
    Gpu gpu(cfg, {AppDesc{&bench}});
    while (gpu.appInstructions(0) < work)
        gpu.run(1000);
    return gpu.now();
}

} // namespace

TimeMuxResult
runTimeMux(const GpuConfig &cfg, const BenchmarkParams &bench,
           std::uint32_t processes, const TimeMuxOptions &options)
{
    TimeMuxResult result;
    result.processes = processes;
    result.serialCycles =
        serialTime(cfg, bench, options.workPerProcess) * processes;

    // Time-sliced execution: N identical processes, round-robin
    // quanta across all cores.
    std::vector<AppDesc> apps(processes, AppDesc{&bench});
    Gpu gpu(cfg, apps);

    const Cycle switch_cost =
        options.switchBaseCost +
        Cycle{options.switchPerProcessCost} * processes;

    std::vector<bool> done(processes, false);
    std::uint32_t remaining = processes;
    AppId current = 0;

    // Move all cores onto process 0 first (construction spreads them).
    gpu.switchAllCores(current, 0);
    while (gpu.switchesPending())
        gpu.run(100);

    while (remaining > 0) {
        // Run the quantum in slices so a process that completes its
        // work mid-quantum yields the GPU immediately.
        Cycle ran = 0;
        while (ran < options.quantum) {
            const Cycle slice =
                std::min<Cycle>(1000, options.quantum - ran);
            gpu.run(slice);
            ran += slice;
            if (gpu.appInstructions(current) >=
                options.workPerProcess) {
                break;
            }
        }

        if (!done[current] &&
            gpu.appInstructions(current) >= options.workPerProcess) {
            done[current] = true;
            --remaining;
            if (remaining == 0)
                break;
        }

        // Next unfinished process, round-robin.
        AppId next = current;
        do {
            next = static_cast<AppId>((next + 1) % processes);
        } while (done[next]);

        if (next != current) {
            current = next;
            gpu.switchAllCores(current, switch_cost);
            while (gpu.switchesPending())
                gpu.run(100);
        }
    }

    result.muxCycles = gpu.now();
    return result;
}

} // namespace mask
