/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A sweep worker installs a CancelToken for the duration of one job
 * (ScopedCancelToken); the deadline monitor cancels the token from
 * another thread when the job's wall-clock budget expires. The
 * simulation main loop polls the calling thread's token once per
 * iteration (pollCancellation) and unwinds with SimCancelledError,
 * which the sweep engine records as a TimedOut outcome.
 *
 * Polling costs one thread-local load plus one relaxed atomic load,
 * so it is safe to call from the per-cycle loop. Cancellation never
 * changes the results of jobs that complete: it only decides whether
 * a job finishes or unwinds.
 */

#ifndef MASK_SIM_CANCEL_HH
#define MASK_SIM_CANCEL_HH

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

namespace mask {

/** A job was cancelled mid-simulation (deadline exceeded). */
class SimCancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One job's cancellation flag; cancel() may race with cancelled(). */
class CancelToken
{
  public:
    /** Request cancellation; the first reason given wins. */
    void cancel(const std::string &reason);

    bool
    cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

    /** Reason passed to cancel(), or "" when not cancelled. */
    std::string reason() const;

  private:
    std::atomic<bool> flag_{false};
    mutable std::mutex mutex_;
    std::string reason_;
};

/**
 * Install @p token as the calling thread's active token for this
 * scope; nests (the previous token is restored on destruction).
 */
class ScopedCancelToken
{
  public:
    explicit ScopedCancelToken(CancelToken *token);
    ~ScopedCancelToken();

    ScopedCancelToken(const ScopedCancelToken &) = delete;
    ScopedCancelToken &operator=(const ScopedCancelToken &) = delete;

  private:
    CancelToken *prev_;
};

/** The calling thread's active token, or nullptr. */
CancelToken *activeCancelToken();

/**
 * Throw SimCancelledError when the calling thread's active token has
 * been cancelled; no-op (and cheap) otherwise.
 */
void pollCancellation();

} // namespace mask

#endif // MASK_SIM_CANCEL_HH
