/**
 * @file
 * Architecture preset lookup shared by benches, tests, and examples.
 */

#ifndef MASK_SIM_PRESETS_HH
#define MASK_SIM_PRESETS_HH

#include <string_view>
#include <vector>

#include "common/config.hh"

namespace mask {

/** "maxwell" (Table 1 default), "fermi", or "integrated". */
GpuConfig archByName(std::string_view name);

/** Names of all available architecture presets. */
std::vector<std::string_view> allArchNames();

} // namespace mask

#endif // MASK_SIM_PRESETS_HH
