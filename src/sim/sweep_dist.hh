/**
 * @file
 * Distributed sweep execution over a shared directory (DESIGN.md §15).
 *
 * Any number of independent `mask` worker processes — on one machine
 * or many sharing a filesystem — point MASK_SWEEP_DIST_DIR at a
 * common directory, enumerate the same deterministic job list (every
 * bench builds it the same way), and divide the work through the
 * directory alone. There are no sockets and no coordinator process;
 * the shared FS is the transport:
 *
 *   <dir>/leases/<fnv1a64(job key)>.lease   exclusive job claims
 *   <dir>/shards/<worker>.jsonl             per-worker result journal
 *   <dir>/warm/                             shared warm-snapshot store
 *
 * Claiming is an atomic O_CREAT|O_EXCL create of the lease file, whose
 * fixed-size content carries {worker id, pid, host, deadline, steal
 * count}. The holder's heartbeat thread rewrites the content (and so
 * the deadline) in place every MASK_SWEEP_DIST_HEARTBEAT_MS; a lease
 * whose deadline has passed is provably stale — its holder stopped
 * heartbeating at least MASK_SWEEP_DIST_STEAL_AFTER_MS ago — and any
 * worker may steal it: rename the lease aside (atomic; exactly one
 * stealer wins), unlink the tombstone, and re-claim with the steal
 * count incremented. Steal attempts per job back off exponentially
 * (capped), and once a job has been stolen MASK_SWEEP_DIST_MAX_STEALS
 * times without producing a durable result it is abandoned: the cell
 * degrades to FAILED(Abandoned) instead of looping forever on a job
 * that kills every worker that touches it.
 *
 * Completion is a durable journal entry: each worker appends outcomes
 * to its own shard (single-write O_APPEND records, sweep_io.hh), and
 * every worker incrementally tails all shards to learn what the
 * others finished. Double claims are legal (a slow-but-alive worker
 * may race its thief); the first durable entry wins and later
 * duplicates are detected and counted, never re-merged. The merge is
 * deterministic — submission order comes from the local job list, Ok
 * entries are preferred, and ties resolve by (shard name, line
 * number) — so every worker (or a later MASK_SWEEP_DIST_MERGE=1
 * invocation) renders byte-identical results, themselves
 * byte-identical to a single-process serial run.
 */

#ifndef MASK_SIM_SWEEP_DIST_HH
#define MASK_SIM_SWEEP_DIST_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mask {

/** Distributed-sweep policy (env-driven by default; settable for
 *  tests via SweepRunner::setDistPolicy). */
struct DistPolicy
{
    std::string dir;    //!< shared directory; "" disables
    std::string worker; //!< unique worker id (shard + lease identity)
    std::uint64_t heartbeatMs = 1000;   //!< lease refresh cadence
    std::uint64_t stealAfterMs = 10000; //!< missed-heartbeat window
    unsigned maxSteals = 3;     //!< steals before FAILED(Abandoned)
    std::uint64_t pollMs = 200; //!< idle wait between shard rescans
    bool mergeOnly = false;     //!< load shards; never claim or wait

    bool enabled() const { return !dir.empty(); }
};

/**
 * Policy from the MASK_SWEEP_DIST_* environment knobs:
 *
 *   MASK_SWEEP_DIST_DIR=<dir>         enable; the shared directory
 *   MASK_SWEEP_DIST_WORKER=<id>       worker id (default host-pid)
 *   MASK_SWEEP_DIST_HEARTBEAT_MS=<ms> lease heartbeat (default 1000)
 *   MASK_SWEEP_DIST_STEAL_AFTER_MS=<ms> staleness window (default
 *                                     10000; floored at 2 heartbeats)
 *   MASK_SWEEP_DIST_MAX_STEALS=<n>    abandonment cap (default 3)
 *   MASK_SWEEP_DIST_POLL_MS=<ms>      idle rescan period (default 200)
 *   MASK_SWEEP_DIST_MERGE=1           merge-only: decode what the
 *                                     shards hold, never execute
 */
DistPolicy distPolicyFromEnv();

/** Wall-clock epoch milliseconds (lease deadlines compare these
 *  across processes; workers sharing a directory need roughly
 *  synchronized clocks — see DESIGN.md §15). */
std::uint64_t distEpochMs();

/** Decoded lease-file content. */
struct DistLease
{
    std::string worker;
    std::uint64_t pid = 0;
    std::string host;
    std::uint64_t deadlineMs = 0; //!< stale once distEpochMs() passes
    unsigned steals = 0;          //!< times this job changed hands
};

/** Fixed-size lease-file image for @p lease (kDistLeaseFileSize
 *  bytes: in-place heartbeat rewrites fully overwrite it). */
std::string encodeLease(const DistLease &lease);

/** Parse @p content; false when torn/corrupt (callers then fall back
 *  to file-mtime staleness). */
bool decodeLease(const std::string &content, DistLease &out);

/** Lease basename for @p job_key: 16 hex chars of FNV-1a 64. */
std::string distLeaseName(const std::string &job_key);

constexpr std::size_t kDistLeaseFileSize = 256;

/** Counters surfaced in the per-worker "[dist]" footer. */
struct DistSweepStats
{
    std::string worker;
    std::uint64_t jobs = 0;          //!< jobs in the local list
    std::uint64_t executed = 0;      //!< simulated by this worker
    std::uint64_t loadedRemote = 0;  //!< merged from shard entries
    std::uint64_t leasesClaimed = 0; //!< fresh O_EXCL claims
    std::uint64_t leasesStolen = 0;  //!< stale leases taken over
    std::uint64_t staleSeen = 0;     //!< stale-lease observations
    std::uint64_t stealRetries = 0;  //!< steals deferred by backoff
    std::uint64_t duplicates = 0;    //!< extra Ok entries per key
    std::uint64_t tornLines = 0;     //!< torn/malformed shard lines
    std::uint64_t abandoned = 0;     //!< jobs degraded by max-steals
    std::uint64_t waitPolls = 0;     //!< idle waits on other workers
};

/**
 * One worker's view of a shared sweep directory: lease claims with
 * heartbeats and steal accounting, plus an incremental reader over
 * every worker's journal shard.
 *
 * Thread model: all claim/refresh/merge calls come from the sweep
 * driver thread; the only internal thread is the heartbeat, which
 * touches nothing but the held-lease table (mutex-protected) and is
 * allocation-free per beat so fork-per-job isolation stays safe.
 */
class DistCoordinator
{
  public:
    explicit DistCoordinator(DistPolicy policy);
    ~DistCoordinator();

    DistCoordinator(const DistCoordinator &) = delete;
    DistCoordinator &operator=(const DistCoordinator &) = delete;

    const DistPolicy &policy() const { return policy_; }

    /** This worker's journal shard: <dir>/shards/<worker>.jsonl. */
    std::string shardPath() const;

    /** Shared warm-snapshot store default: <dir>/warm. */
    std::string warmDirDefault() const;

    enum class Claim : std::uint8_t {
        Acquired,  //!< lease held; execute the job, then release()
        Busy,      //!< someone else holds a fresh lease (or we lost
                   //!< a steal race / are backing off) — skip for now
        Abandoned, //!< stolen maxSteals times already; degrade the job
    };

    /**
     * Try to take the lease for @p job_key: O_EXCL create, or steal
     * if the existing lease is provably stale. @p steals_out (may be
     * null) reports the observed steal count (useful in the
     * Abandoned error text).
     */
    Claim tryClaim(const std::string &job_key, unsigned *steals_out);

    /** Drop @p job_key's lease (call after its journal entry is
     *  durable — completion must be visible before the lease goes). */
    void release(const std::string &job_key);

    /** One deterministically-merged shard entry. */
    struct Entry
    {
        std::string status; //!< "Ok" / "Failed" / ... / "Abandoned"
        std::string blob;   //!< encodePairResult payload (Ok only)
        std::string error;
        std::string repro;  //!< harvested crash-repro path, if any
        std::string worker; //!< shard that recorded it
        unsigned attempts = 1;
    };

    /** Incrementally tail every shard in <dir>/shards (complete
     *  lines only; a growing file's partial tail is left pending). */
    void refreshShards();

    /**
     * Winning terminal entry for @p job_key, or null. Selection is
     * arrival-order independent: Ok beats non-Ok, ties resolve by
     * (shard filename, line number), so every worker picks the same
     * winner from the same shard bytes.
     */
    const Entry *terminal(const std::string &job_key) const;

    /** Count leftover partial shard tails (dead writers' torn final
     *  records) into stats; call once after the last refresh. */
    void finalizeMerge();

    void noteExecuted() { ++stats_.executed; }
    void noteLoaded() { ++stats_.loadedRemote; }
    void noteAbandoned() { ++stats_.abandoned; }
    void noteJobs(std::uint64_t n) { stats_.jobs += n; }

    /** Count one idle wait on @p pending_jobs jobs other workers
     *  hold, with a rate-limited stderr note. */
    void noteWaiting(std::size_t pending_jobs);

    DistSweepStats stats() const;

  private:
    struct Held
    {
        int fd = -1;
        unsigned steals = 0;
        char path[512];
    };
    struct StealBackoff
    {
        unsigned attempts = 0;
        std::uint64_t notBeforeMs = 0;
    };
    struct ShardSource
    {
        std::string path;
        std::size_t offset = 0; //!< consumed up to here
        std::size_t lines = 0;  //!< complete lines parsed
    };
    struct Candidate
    {
        std::string shard;
        std::size_t line = 0;
        Entry entry;
    };

    std::string leasePath(const std::string &lease_name) const;
    void writeLeaseLocked(Held &held, std::uint64_t now_ms);
    void startHeartbeatLocked();
    void heartbeatLoop();
    void consumeShardLine(const std::string &shard,
                          std::size_t line_no, const std::string &line);

    DistPolicy policy_;
    std::string leaseDir_;
    std::string shardDir_;
    char hostBuf_[256] = {0}; //!< heartbeat writes stay alloc-free

    mutable std::mutex mutex_; //!< guards held_ + heartbeat lifecycle
    std::condition_variable wake_;
    std::map<std::string, Held> held_; //!< lease name -> held state
    std::thread heartbeat_;
    bool stop_ = false;

    // Driver-thread-only state (never touched by the heartbeat).
    std::map<std::string, unsigned> stealObserved_;
    std::map<std::string, StealBackoff> stealBackoff_;
    std::map<std::string, ShardSource> sources_;
    std::map<std::string, Candidate> best_; //!< job key -> winner
    std::map<std::string, bool> hasOk_;     //!< job key -> Ok seen
    DistSweepStats stats_;
};

} // namespace mask

#endif // MASK_SIM_SWEEP_DIST_HH
