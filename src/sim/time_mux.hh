/**
 * @file
 * Time-multiplexing model for the Fig. 1 experiment.
 *
 * The paper measures real K40/GTX1080 GPUs running 2..10 processes
 * back-to-back vs. time-sliced. We model time slicing on the simulated
 * GPU: all cores run one process per quantum, and each switch pays
 * (1) a conservative drain of in-flight requests (Section 5.1),
 * (2) a driver/runtime cost that grows with the number of resident
 *     processes (context save/restore and scheduler bookkeeping), and
 * (3) cold-start effects in the private L1 structures plus natural
 *     thrashing of the shared L2/TLB by the other processes' quanta.
 * See DESIGN.md substitution 2.
 */

#ifndef MASK_SIM_TIME_MUX_HH
#define MASK_SIM_TIME_MUX_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"
#include "workload/generator.hh"

namespace mask {

/** Time-multiplexing model parameters. */
struct TimeMuxOptions
{
    /** Scheduling quantum in cycles. */
    Cycle quantum = 20000;
    /** Fixed per-switch driver/runtime cost. */
    Cycle switchBaseCost = 1500;
    /** Additional per-switch cost per resident process. */
    Cycle switchPerProcessCost = 600;
    /** Instructions each process must complete. */
    std::uint64_t workPerProcess = 400000;
};

/** Result of one time-multiplexing experiment. */
struct TimeMuxResult
{
    std::uint32_t processes = 0;
    Cycle serialCycles = 0; //!< back-to-back execution
    Cycle muxCycles = 0;    //!< time-sliced execution
    /** (muxCycles - serialCycles) / serialCycles, the Fig. 1 metric. */
    double overhead() const;
};

/**
 * Run @p processes copies of @p bench, first back-to-back and then
 * time-sliced, and report the execution-time overhead.
 */
TimeMuxResult runTimeMux(const GpuConfig &cfg,
                         const BenchmarkParams &bench,
                         std::uint32_t processes,
                         const TimeMuxOptions &options);

} // namespace mask

#endif // MASK_SIM_TIME_MUX_HH
