#include "sim/runner.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include <sys/stat.h>

#include "common/rate_limit.hh"
#include "metrics/metrics.hh"
#include "obs/registry.hh"
#include "sim/presets.hh"
#include "sim/snapshot.hh"
#include "sim/sweep.hh"

namespace mask {

namespace {

/**
 * Warm-fallback warnings, rate-limited (one warm directory full of
 * corrupt snapshots would otherwise emit one line per job per sweep).
 * Shared by the shared-run and alone-run fallback sites: they report
 * the same degradation class.
 */
WarnRateLimiter &
warmFallbackWarns()
{
    static WarnRateLimiter warns;
    return warns;
}

} // namespace

RunOptions
defaultRunOptions()
{
    RunOptions options;
    if (const char *fast = std::getenv("MASK_BENCH_FAST");
        fast != nullptr && fast[0] == '1') {
        options.warmup = 10000;
        options.measure = 40000;
    }
    if (const char *cycles = std::getenv("MASK_BENCH_CYCLES")) {
        const long long n = std::atoll(cycles);
        if (n > 0) {
            options.measure = static_cast<Cycle>(n);
            options.warmup = std::max<Cycle>(5000, options.measure / 4);
        }
    }
    return options;
}

namespace {

std::vector<AppDesc>
toAppDescs(const std::vector<std::string> &bench_names)
{
    std::vector<AppDesc> apps;
    apps.reserve(bench_names.size());
    for (const auto &name : bench_names)
        apps.push_back(AppDesc{&findBenchmark(name)});
    return apps;
}

/**
 * A hard invariant tripped mid-run: persist a deterministic repro
 * record, print the diagnostic block, and rethrow for the caller.
 */
[[noreturn]] void
captureCrash(const GpuConfig &arch, DesignPoint point,
             const std::vector<std::string> &benches,
             const RunOptions &options, const SimInvariantError &err)
{
    const CrashRepro repro = makeRepro(arch, point, benches,
                                       options.warmup,
                                       options.measure, err);
    const std::string path = reproFilePath();
    std::fputs(err.diagnostic().c_str(), stderr);
    try {
        writeRepro(path, repro);
        std::fprintf(stderr,
                     "repro written to %s (re-run with: crash_replay "
                     "--replay %s)\n",
                     path.c_str(), path.c_str());
    } catch (const std::exception &io) {
        std::fprintf(stderr, "failed to write repro file: %s\n",
                     io.what());
    }
    throw err;
}

/**
 * Per-job observability override (DESIGN.md §13): when
 * MASK_SWEEP_OBS_DIR is set, every shared run writes its timeseries
 * and trace to <dir>/<design>+<benches>.{timeseries.jsonl,trace.json}
 * instead of the global MASK_TIMESERIES/MASK_TRACE paths, so
 * concurrent sweep jobs never clobber each other. Interval, category
 * filter and ring sizes still come from the environment. Returns null
 * (no override) when the knob is unset.
 */
std::unique_ptr<obs::ScopedObsOverride>
makeJobObsOverride(DesignPoint point,
                   const std::vector<std::string> &benches)
{
    const char *dir = std::getenv("MASK_SWEEP_OBS_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return nullptr;
    ::mkdir(dir, 0777); // best-effort; fopen reports real failures

    std::string tag = designPointName(point);
    for (const auto &b : benches) {
        tag += "+";
        tag += b;
    }
    for (char &c : tag) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 ||
              c == '-' || c == '_' || c == '.' || c == '+'))
            c = '_';
    }

    obs::ObsOptions opts = obs::obsOptionsFromEnv();
    const std::string base = std::string(dir) + "/" + tag;
    opts.timeseriesPath = base + ".timeseries.jsonl";
    opts.tracePath = base + ".trace.json";
    return std::make_unique<obs::ScopedObsOverride>(std::move(opts));
}

/**
 * True when the effective observability options would write any file
 * during this run. Warm starts skip the warmup window, which would
 * silently truncate those outputs — warm-eligible runs must be
 * obs-silent (alone runs always are: they install an empty override).
 */
bool
obsSinksActive()
{
    const obs::ObsOptions opts = obs::resolveObsOptions();
    return opts.timeseriesOn() || opts.traceOn();
}

} // namespace

std::string
runWarmup(const GpuConfig &cfg,
          const std::vector<std::string> &bench_names, Cycle warmup)
{
    Gpu gpu(cfg, toAppDescs(bench_names));
    gpu.run(warmup);
    return renderSnapshot(warmupFingerprint(cfg), gpu);
}

GpuStats
runMeasureFrom(std::string_view image, const GpuConfig &cfg,
               const std::vector<std::string> &bench_names,
               Cycle warmup, Cycle measure)
{
    std::uint64_t cycle = SnapshotError::kNoCycle;
    const std::string_view payload = validateSnapshotImage(
        image, warmupFingerprint(cfg), &cycle);
    if (cycle != warmup)
        throw SnapshotError("warm snapshot cycle " +
                                std::to_string(cycle) +
                                " does not match warmup window " +
                                std::to_string(warmup),
                            "header", cycle);
    Gpu gpu(cfg, toAppDescs(bench_names));
    StateReader reader(payload, cycle);
    gpu.deserialize(reader);
    gpu.resetStats();
    gpu.run(measure);
    return gpu.collect();
}

std::string
warmStateKey(std::uint64_t warmup_fingerprint,
             const std::vector<std::string> &bench_names, Cycle warmup)
{
    // Filename-safe by construction: the key doubles as the basename
    // of file-backed warm snapshots under MASK_SWEEP_WARM_DIR.
    char fp_hex[24];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(warmup_fingerprint));
    std::string key = "warm_";
    key += fp_hex;
    for (const std::string &bench : bench_names) {
        key += '_';
        for (const char c : bench) {
            key += std::isalnum(static_cast<unsigned char>(c)) != 0
                       ? c
                       : '-';
        }
    }
    key += '_' + std::to_string(warmup);
    return key;
}

double
AloneIpcCache::getOrCompute(const std::string &key,
                            const std::function<double()> &compute)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        auto it = slots_.find(key);
        if (it == slots_.end())
            break; // this thread computes
        if (it->second.ready)
            return it->second.value;
        // Another thread is computing this key; if it fails the slot
        // is erased and the loop falls through to retry.
        ready_.wait(lock);
    }
    slots_.emplace(key, Slot{});
    lock.unlock();
    try {
        const double value = compute();
        lock.lock();
        Slot &slot = slots_[key];
        slot.value = value;
        slot.ready = true;
        ready_.notify_all();
        return value;
    } catch (...) {
        lock.lock();
        slots_.erase(key);
        ready_.notify_all();
        throw;
    }
}

std::size_t
AloneIpcCache::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

GpuStats
Evaluator::runShared(const GpuConfig &arch, DesignPoint point,
                     const std::vector<std::string> &bench_names)
{
    const GpuConfig cfg = applyDesignPoint(arch, point);
    // Alive for the whole run: the Gpu resolves its obs options at
    // construction, including rebuilds inside runWithCheckpoints.
    const auto obs_override = makeJobObsOverride(point, bench_names);
    // A hard crash (SIGSEGV/SIGABRT/...) during this run flushes the
    // same repro record an invariant failure would, via the
    // fatal-signal handlers — plus the last emergency checkpoint when
    // MASK_CKPT_* checkpointing is on.
    const ScopedSignalRepro armed(
        makeRepro(arch, point, bench_names, options_.warmup,
                  options_.measure),
        reproFilePath());
    try {
        const CheckpointPolicy ckpt = checkpointPolicyFromEnv();
        if (warm_ != nullptr) {
            // Warm-eligible runs fork a shared warmed snapshot and
            // simulate only the measure window. Checkpointed or
            // obs-instrumented runs bypass: checkpoint resume owns the
            // snapshot files, and obs sinks must cover warmup too.
            if (ckpt.enabled() || obsSinksActive()) {
                warm_->noteBypass();
            } else {
                const std::string key =
                    warmStateKey(warmupFingerprint(cfg), bench_names,
                                 options_.warmup);
                const std::string image = warm_->getOrWarm(
                    key, options_.warmup, [&]() {
                        return runWarmup(cfg, bench_names,
                                         options_.warmup);
                    });
                try {
                    return runMeasureFrom(image, cfg, bench_names,
                                          options_.warmup,
                                          options_.measure);
                } catch (const SnapshotError &err) {
                    if (const std::uint64_t n =
                            warmFallbackWarns().tick()) {
                        std::fprintf(
                            stderr,
                            "mask: warm state %s rejected (%s); "
                            "falling back to a fresh run "
                            "(occurrence %llu%s)\n",
                            key.c_str(), err.what(),
                            static_cast<unsigned long long>(n),
                            warmFallbackWarns().suppressNote());
                    }
                    warm_->invalidate(key);
                    warm_->noteFallback();
                }
            }
        }
        const std::uint64_t fp = configFingerprint(cfg);
        const std::string path =
            ckpt.enabled()
                ? checkpointPath(ckpt, fp, bench_names,
                                 options_.warmup, options_.measure)
                : std::string();
        return runWithCheckpoints(
            [&]() {
                return std::make_unique<Gpu>(cfg,
                                             toAppDescs(bench_names));
            },
            ckpt, fp, path, options_.warmup, options_.measure);
    } catch (const SimInvariantError &err) {
        captureCrash(arch, point, bench_names, options_, err);
    }
}

double
Evaluator::aloneIpc(const GpuConfig &arch, DesignPoint point,
                    const std::string &bench, std::uint32_t cores)
{
    GpuConfig cfg = applyDesignPoint(arch, point);
    cfg.numCores = cores;
    // The alone run gives this app the whole (shrunken) GPU; shares
    // sized for the shared-run app count would be stale here.
    cfg.coreShares.clear();

    // Key on the structural fingerprint of the exact config the alone
    // run would use — never on arch.name, which benches reuse across
    // distinct parameter sets (two "maxwell" variants with different
    // TLB sizes must not share alone IPCs). Bench identity and window
    // sizes are the only inputs not captured by the config itself.
    const std::string key = std::to_string(configFingerprint(cfg)) +
                            "/" + bench + "/" +
                            std::to_string(options_.warmup) + "/" +
                            std::to_string(options_.measure);
    return aloneCache_->getOrCompute(key, [&]() {
        // Alone runs are memoized across jobs and threads; their
        // telemetry would race the shared runs' files, so the obs
        // layer is disabled for them (empty paths = everything off).
        const obs::ScopedObsOverride no_obs{obs::ObsOptions{}};
        const ScopedSignalRepro armed(
            makeRepro(cfg, point, {bench}, options_.warmup,
                      options_.measure),
            reproFilePath());
        try {
            const CheckpointPolicy ckpt = checkpointPolicyFromEnv();
            if (warm_ != nullptr) {
                // Alone runs are always obs-silent (no_obs above), so
                // only checkpointing forces a bypass here.
                if (ckpt.enabled()) {
                    warm_->noteBypass();
                } else {
                    const std::string key = warmStateKey(
                        warmupFingerprint(cfg),
                        std::vector<std::string>{bench},
                        options_.warmup);
                    const std::string image = warm_->getOrWarm(
                        key, options_.warmup, [&]() {
                            return runWarmup(cfg, {bench},
                                             options_.warmup);
                        });
                    try {
                        return runMeasureFrom(image, cfg, {bench},
                                              options_.warmup,
                                              options_.measure)
                            .ipc[0];
                    } catch (const SnapshotError &err) {
                        if (const std::uint64_t n =
                                warmFallbackWarns().tick()) {
                            std::fprintf(
                                stderr,
                                "mask: warm state %s rejected (%s); "
                                "falling back to a fresh run "
                                "(occurrence %llu%s)\n",
                                key.c_str(), err.what(),
                                static_cast<unsigned long long>(n),
                                warmFallbackWarns().suppressNote());
                        }
                        warm_->invalidate(key);
                        warm_->noteFallback();
                    }
                }
            }
            const std::uint64_t fp = configFingerprint(cfg);
            const std::string path =
                ckpt.enabled()
                    ? checkpointPath(ckpt, fp, {"alone-" + bench},
                                     options_.warmup,
                                     options_.measure)
                    : std::string();
            return runWithCheckpoints(
                       [&]() {
                           return std::make_unique<Gpu>(
                               cfg, toAppDescs({bench}));
                       },
                       ckpt, fp, path, options_.warmup,
                       options_.measure)
                .ipc[0];
        } catch (const SimInvariantError &err) {
            captureCrash(cfg, point, {bench}, options_, err);
        }
    });
}

PairResult
Evaluator::evaluate(const GpuConfig &arch, DesignPoint point,
                    const std::vector<std::string> &bench_names)
{
    PairResult result;
    result.stats = runShared(arch, point, bench_names);
    result.sharedIpc = result.stats.ipc;

    const auto num_apps =
        static_cast<std::uint32_t>(bench_names.size());
    for (std::uint32_t a = 0; a < num_apps; ++a) {
        result.aloneIpc.push_back(
            aloneIpc(arch, point, bench_names[a],
                     coreShareOf(arch, num_apps, a)));
    }

    result.weightedSpeedup =
        weightedSpeedup(result.sharedIpc, result.aloneIpc);
    result.ipcThroughput = ipcThroughput(result.sharedIpc);
    result.unfairness = maxSlowdown(result.sharedIpc, result.aloneIpc);
    return result;
}

PairResult
searchBestPartition(Evaluator &eval, const GpuConfig &arch,
                    DesignPoint point,
                    const std::vector<std::string> &pair,
                    std::uint32_t step)
{
    PairResult best;
    bool have_best = false;
    if (step == 0)
        step = 1;
    for (std::uint32_t s = step; s < arch.numCores; s += step) {
        GpuConfig cfg = arch;
        cfg.coreShares = {s, arch.numCores - s};
        const PairResult result = eval.evaluate(cfg, point, pair);
        if (!have_best ||
            result.weightedSpeedup > best.weightedSpeedup) {
            best = result;
            have_best = true;
        }
    }
    if (!have_best)
        best = eval.evaluate(arch, point, pair);
    return best;
}

ReplayResult
replayRepro(const CrashRepro &repro)
{
    GpuConfig arch = archByName(repro.arch);
    arch.seed = repro.seed;
    arch.harden = repro.harden;
    const DesignPoint point = designPointByName(repro.design);

    ReplayResult out;
    try {
        const GpuConfig cfg = applyDesignPoint(arch, point);
        Gpu gpu(cfg, toAppDescs(repro.benches));
        gpu.run(repro.warmup);
        gpu.resetStats();
        gpu.run(repro.measure);
    } catch (const SimInvariantError &err) {
        out.reproduced = true;
        out.failCycle = err.cycle();
        out.module = err.module();
        out.detail = err.detail();
        out.sameCycle = err.cycle() == repro.failCycle;
        out.sameModule = err.module() == repro.module;
    }
    return out;
}

} // namespace mask
