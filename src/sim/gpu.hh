/**
 * @file
 * The full GPU model: shader cores, private L1 TLBs/caches, the shared
 * L2 TLB or page walk cache (the two Section 3 baselines), the shared
 * page table walker, the shared L2 data cache, DRAM, and the three
 * MASK mechanisms — wired together and advanced cycle by cycle.
 */

#ifndef MASK_SIM_GPU_HH
#define MASK_SIM_GPU_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cache/bank_model.hh"
#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/config.hh"
#include "common/flat_table.hh"
#include "common/memreq.hh"
#include "common/state_codec.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/shader_core.hh"
#include "dram/dram.hh"
#include "mask/bypass_cache.hh"
#include "mask/dram_sched.hh"
#include "mask/l2_bypass.hh"
#include "mask/tokens.hh"
#include "sim/fault_inject.hh"
#include "sim/retry_queue.hh"
#include "sim/watchdog.hh"
#include "tlb/tlb.hh"
#include "tlb/tlb_mshr.hh"
#include "vm/page_table.hh"
#include "vm/walker.hh"
#include "workload/generator.hh"

namespace mask {

namespace obs {
class TimeseriesWriter;
class TraceWriter;
} // namespace obs

/** One application to run on the GPU. */
struct AppDesc
{
    const BenchmarkParams *bench = nullptr;
};

/** Snapshot of everything the evaluation section reports. */
struct GpuStats
{
    Cycle cycles = 0;

    std::vector<std::uint64_t> instructions; //!< per app
    std::vector<double> ipc;                 //!< per app

    HitMiss l1Tlb;                      //!< aggregated over cores
    HitMiss l2Tlb;
    std::vector<HitMiss> l2TlbPerApp;
    HitMiss bypassCache;
    HitMiss pwCache;
    HitMiss l1d;
    HitMiss l2Cache[2];                 //!< indexed by ReqType
    HitMiss l2CachePerLevel[5];         //!< 0 = data, 1..4 walk levels

    DramChannelStats dram;

    std::uint64_t walks = 0;
    RunningStat walkLatency;            //!< cycles per completed walk
    RunningStat tlbMissLatency;         //!< first miss -> fill
    RunningStat concurrentWalks;        //!< sampled every 10K cycles
    std::vector<RunningStat> concurrentWalksPerApp;
    RunningStat warpsPerMiss;           //!< Fig. 6
    std::vector<RunningStat> warpsPerMissPerApp;
    RunningStat readyWarpsPerCore;      //!< latency-hiding headroom

    std::vector<std::uint32_t> tokens;  //!< final per-app token counts
    std::uint64_t l2Bypasses = 0;

    std::uint64_t warpStallCycles = 0;

    // Hardening telemetry.
    std::uint64_t watchdogSweeps = 0;
    Cycle watchdogMaxAgeSeen = 0;  //!< oldest in-flight age observed
    std::uint64_t faultsInjected = 0;

    // Request pool occupancy (PR: pool growth must be observable).
    std::size_t poolPeakLive = 0;  //!< high-water mark of live requests
    std::size_t poolCapacity = 0;  //!< slots allocated in the pool

    // Host-side simulation throughput (wall-clock observability; NOT
    // part of the simulated machine and never printed by the
    // determinism-checked bench tables).
    double wallSeconds = 0.0;      //!< host time spent inside run()
    std::uint64_t requests = 0;    //!< pool allocations in the window

    // Checkpoint overhead (host-side, like wallSeconds): time spent
    // inside the periodic checkpoint callback, bytes written, and
    // checkpoints taken during the window.
    double ckptWriteSeconds = 0.0;
    std::uint64_t ckptBytes = 0;
    std::uint64_t ckptWrites = 0;

    // Event-driven loop observability (DESIGN.md §9): cycles the main
    // loop fast-forwarded past instead of ticking, how many contiguous
    // windows that took, and a log2 histogram of window lengths
    // (bucket i counts windows of [2^i, 2^(i+1)) cycles). Host-side
    // accounting like wallSeconds: simulated results are bit-identical
    // with skipping on or off.
    std::uint64_t skippedCycles = 0;
    std::uint64_t skipWindows = 0;
    std::vector<std::uint64_t> skipWindowLog2;

    // Scheduler/retry work counters (DESIGN.md §12): deterministic
    // functions of the simulated machine, so they double as
    // host-independent perf-regression gates. Host-side only — never
    // serialized and never printed by determinism-checked tables.
    std::uint64_t dramSchedPicks = 0;        //!< scheduler pick calls
    std::uint64_t dramSchedBanksScanned = 0; //!< units examined by picks
    std::uint64_t dataRetryProbes = 0;  //!< parked L1-MSHR-full probes
    std::uint64_t tlbRetryProbes = 0;   //!< parked TLB-MSHR-full probes

    // Per-stage wall-clock profile (MASK_PROFILE_STAGES=1): seconds
    // and invocation counts indexed by Gpu::StageId; empty when the
    // profiler is off. Observation-only, like wallSeconds.
    std::vector<double> stageSeconds;
    std::vector<std::uint64_t> stageCalls;

    /** Simulated mega-cycles advanced per host second. */
    double megaCyclesPerSec() const;
    /** Memory-hierarchy requests simulated per host second. */
    double requestsPerSec() const;

    /** Weighted fraction of peak DRAM bandwidth used, by type. */
    double dramBusUtil(ReqType type, std::uint32_t channels) const;
};

/** The GPU. */
class Gpu
{
  public:
    /** Pipeline stages, in tickOne() order; indexes the per-stage
     *  profiler arrays surfaced as GpuStats::stageSeconds/stageCalls. */
    enum StageId : std::size_t
    {
        kStageFaults,
        kStageDram,
        kStageL2Cache,
        kStagePwCache,
        kStageL2Tlb,
        kStageWalker,
        kStageCores,
        kStageSamplers,
        kStageEpoch,
        kStageSwitches,
        kStageWatchdog,
        kNumStages,
    };

    /** Label for stage @p id (bench/report output). */
    static const char *stageName(std::size_t id);

    Gpu(const GpuConfig &cfg, const std::vector<AppDesc> &apps);
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Advance the model by @p cycles. */
    void run(Cycle cycles);

    /** Advance one cycle. */
    void tickOne();

    Cycle now() const { return now_; }
    const GpuConfig &config() const { return cfg_; }
    std::uint32_t numApps() const
    {
        return static_cast<std::uint32_t>(apps_.size());
    }

    /** Zero all measurement state (start of the measured window). */
    void resetStats();

    /** Snapshot current statistics. */
    GpuStats collect();

    /** Instructions credited to @p app since resetStats. */
    std::uint64_t appInstructions(AppId app);

    /**
     * TLB shootdown for one address space (Section 5.1/5.2): flushes
     * the matching cores' L1 TLBs, every L2 TLB entry tagged with the
     * ASID, the TLB bypass cache, and (conservatively) the page walk
     * cache. Pending walks are unaffected — they re-read the current
     * page table.
     */
    void tlbShootdown(Asid asid);

    // --- Time multiplexing support (Fig. 1 experiment) ---

    /**
     * Begin switching every core to @p app: each core drains its
     * in-flight requests (Section 5.1), waits @p switch_penalty extra
     * cycles (driver/runtime cost), then restarts with fresh warps.
     */
    void switchAllCores(AppId app, Cycle switch_penalty);

    /** True while any core is still draining/switching. */
    bool switchesPending() const;

    // --- Introspection (tests, benches, examples) ---

    ShaderCore &core(CoreId id) { return *cores_[id]; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    Tlb &sharedTlb() { return l2Tlb_; }
    TlbBypassCache &bypassCache() { return bypassCache_; }
    TlbMshrTable &tlbMshr() { return tlbMshr_; }
    PageTableWalker &walker() { return walker_; }
    Dram &dram() { return dram_; }
    PageTable &pageTable(AppId app) { return *pageTables_[app]; }
    TokenManager &tokenManager() { return tokens_; }
    L2BypassPolicy &l2BypassPolicy() { return l2Policy_; }
    SilverQuotaController &quota() { return quota_; }
    const std::vector<CoreId> &coresOf(AppId app) const
    {
        return apps_[app].cores;
    }
    /** In-flight requests below the L1 structures. */
    std::size_t inFlightRequests() const { return pool_.liveCount(); }
    Watchdog &watchdog() { return watchdog_; }
    FaultInjector &faultInjector() { return faults_; }

    /**
     * Run a forward-progress sweep immediately (the per-interval sweep
     * calls this from tickOne). Throws SimInvariantError on any stuck
     * request, leaked MSHR, queue-bound or token-bound violation.
     */
    void watchdogSweepNow();

    // --- Checkpoint/restore (DESIGN.md §11) ---

    /**
     * Serialize the complete simulated machine: cores (warps,
     * scoreboards, parked retries), caches/TLBs with MSHR contents and
     * waiter lists, DRAM queues and FR-FCFS state, page tables and
     * walker slots, MASK controllers, RNG streams, and every stats
     * accumulator. Host-side accounting (wallSeconds) is excluded — a
     * restored Gpu continues bit-exactly, it does not replay wall time.
     */
    void serialize(StateWriter &w) const;

    /**
     * Restore a payload written by serialize() into a Gpu constructed
     * from an identical config and app list. Throws SnapshotError on
     * any geometry mismatch, truncation, or corrupted field; the Gpu
     * is left unusable on failure (restore into a fresh instance).
     */
    void deserialize(StateReader &r);

    /** Opaque runner cookie carried inside snapshots (resume phase). */
    std::uint64_t snapshotCookie() const { return snapshotCookie_; }
    void setSnapshotCookie(std::uint64_t v) { snapshotCookie_ = v; }

    /**
     * Install a periodic checkpoint callback: @p fn runs at the top of
     * the run() loop whenever now() crossed the next multiple-of-
     * @p interval boundary (opportunistic — event-driven skips are
     * never clamped, so the callback fires at the first loop iteration
     * at or past the boundary). interval == 0 uninstalls; the disabled
     * path costs one predictable branch per iteration.
     */
    void setCheckpointHook(Cycle interval,
                           std::function<void(Gpu &)> fn);

    /** Checkpoint callbacks report their file size here (host-side
     *  accounting surfaced as GpuStats::ckptBytes). */
    void noteCheckpointBytes(std::uint64_t bytes)
    {
        ckptBytes_ += bytes;
    }

    // --- Observability (DESIGN.md §13) ---

    /** Flush the timeseries ring and trace ring to their files (the
     *  destructor also does this; tests use it to read mid-run). */
    void obsFlush();

    /** The timeseries writer, if MASK_TIMESERIES is active. */
    obs::TimeseriesWriter *timeseries() { return obsTs_.get(); }
    /** The event tracer, if MASK_TRACE is active. */
    obs::TraceWriter *tracer() { return obsTrace_.get(); }

  private:
    struct AppContext
    {
        Asid asid = 0;
        const BenchmarkParams *bench = nullptr;
        std::vector<CoreId> cores;
        /** Shared per-stream progress counters (SIMT lockstep). */
        std::unique_ptr<StreamTable> streams;
    };

    /** Parked translation work item flowing to the shared L2 TLB. */
    struct TransSlot
    {
        StalledAccess access;
        Asid asid = 0;
        Vpn vpn = 0;
        AppId app = 0;
        bool inUse = false;
    };

    struct PendingSwitch
    {
        bool pending = false;
        AppId app = 0;
        Cycle notBefore = 0;
    };

    /** Translated data access waiting for a free L1 MSHR (snapshot
     *  exchange format; live entries live in DataRetryQueue). */
    struct DataRetry
    {
        StalledAccess access;
        AppId app = 0;
        Pfn pfn = 0;
    };

    /** Per-woken-core retry-pass bookkeeping: how many entries were
     *  parked when the pass started, how many probes actually ran
     *  (both phases), and whether the core still has a free L1 MSHR
     *  slot (phase 1). The difference nStart - probes is charged to
     *  the miss/rejection counters in closed form. */
    struct RetryPassCore
    {
        CoreId core = 0;
        std::size_t nStart = 0;
        std::size_t probes = 0;
        bool inPhase1 = true;
    };

    // --- Event-driven main loop (DESIGN.md §9) ---

    /**
     * Lower bound on the next cycle >= now_ at which any component
     * does work. Returning now_ is always safe (it just disables the
     * skip); a value beyond now_ is a guarantee that every tickOne()
     * in (now_, bound) would be a no-op except for the per-cycle
     * accumulators that skipTo() advances in closed form.
     */
    Cycle nextEventCycle() const;

    /**
     * Fast-forward now_ to @p target (exclusive of its tick),
     * closed-form-advancing per-cycle state: core stall counters
     * (ShaderCore::skipIdleCycles) and the Silver-queue quota sums
     * (SilverQuotaController::sampleN). Bit-identical to ticking the
     * window cycle by cycle.
     */
    void skipTo(Cycle target);

    // --- Pipeline stages (called from tickOne in order) ---
    void stageFaults();
    void stageDram();
    void stageL2Cache();
    void stagePwCache();
    void stageL2Tlb();
    void stageWalker();
    void stageCores();
    void stageEpoch();
    void stageSwitches();
    void stageSamplers();
    void stageWatchdog();

    // --- Request plumbing ---
    std::uint32_t allocTransSlot(const StalledAccess &access, Asid asid,
                                 Vpn vpn, AppId app);
    void freeTransSlot(std::uint32_t slot);

    void handleCoreAccess(ShaderCore &core, const IssuedAccess &issued);
    void onL1TlbMiss(ShaderCore &core, const StalledAccess &access,
                     Vpn vpn);
    /** Translation for (asid, vpn) arrived at @p core: fill its L1
     *  TLB and restart every access parked in the core's translation
     *  MSHR (per-core miss coalescing). */
    void completeCoreTranslation(CoreId core, Asid asid, Vpn vpn,
                                 AppId app, Pfn pfn);
    void resolveL2TlbLookup(std::uint32_t slot);
    void tlbMissToWalker(std::uint32_t slot);
    void startWalkFor(Asid asid, Vpn vpn, AppId app);
    void issueWalkFetch(WalkId walk);
    void dispatchTranslationRequest(ReqId id);
    void sendToL2(ReqId id);
    void sendToDram(ReqId id);
    void l2LookupDone(ReqId id);
    void onMemResponse(ReqId id);
    void respondUp(ReqId id);
    void walkFetchReturned(ReqId id);
    void finishWalk(WalkId walk);
    void startDataAccess(const StalledAccess &access, AppId app,
                         Pfn pfn);
    bool tryStartDataAccess(const StalledAccess &access, AppId app,
                            Pfn pfn);
    Addr
    dataPaddr(const StalledAccess &access, Pfn pfn) const
    {
        return (static_cast<Addr>(pfn) << cfg_.pageBits) |
               (access.vaddr & (cfg_.pageBytes() - 1));
    }
    void parkTransSlot(std::uint32_t slot);
    void unparkTransSlot(std::uint32_t slot);
    void fillL2TlbOnWalkDone(const TlbMshrTable::Entry &entry, Pfn pfn);
    void creditInstructions();

    std::uint64_t l2CacheKey(Addr paddr) const
    {
        return paddr >> cfg_.lineBits;
    }
    Vpn vpnOf(Addr vaddr) const { return vaddr >> cfg_.pageBits; }

    GpuConfig cfg_;
    Cycle now_ = 0;
    Cycle statsStart_ = 0;

    std::vector<AppContext> apps_;
    std::vector<std::unique_ptr<ShaderCore>> cores_;
    FrameAllocator frames_;
    std::vector<std::unique_ptr<PageTable>> pageTables_;

    RequestPool pool_;

    // Shared translation structures.
    Tlb l2Tlb_;
    LatencyPipe l2TlbPipe_;
    std::deque<std::uint32_t> l2TlbInput_;
    std::vector<TransSlot> transSlots_;
    std::vector<std::uint32_t> freeTransSlots_;
    std::deque<std::uint32_t> tlbMissRetry_;
    TlbMshrTable tlbMshr_;
    std::deque<std::uint64_t> walkStartQueue_; //!< tlbKey(asid, vpn)
    PageTableWalker walker_;

    // Page walk cache (PwCache baseline).
    SetAssocCache pwCache_;
    LatencyPipe pwCachePipe_;
    std::deque<ReqId> pwInput_;
    HitMiss pwStats_;

    // Shared L2 data cache.
    SetAssocCache l2Cache_;
    BankedPipe l2Pipe_;
    std::vector<std::deque<ReqId>> l2Input_;
    MshrTable l2Mshr_;
    HitMiss l2Stats_[2];
    HitMiss l2StatsPerLevel_[5];

    // DRAM.
    Dram dram_;
    std::deque<ReqId> dramRetry_;
    /** Per-cycle memo of (channel, type, app) keys whose target queue
     *  rejected an enqueue this cycle (stageDram retry loop). */
    std::vector<std::uint8_t> dramRetryFull_;
    std::size_t dramRetryKey(const MemRequest &req) const;

    // Hardening: watchdog + deterministic fault injection.
    Watchdog watchdog_;
    FaultInjector faults_;
    std::uint32_t tokenWarpsPerApp_ = 0;
    /** DRAM responses held back by the injector; FIFO, release cycle
     *  is monotonic because the injected delay is constant. */
    std::deque<std::pair<Cycle, ReqId>> delayedResponses_;
    /** Dropped-then-retried walk fetches awaiting reissue. */
    std::deque<std::pair<Cycle, WalkId>> fetchRetry_;

    // MASK mechanisms.
    TokenManager tokens_;
    TlbBypassCache bypassCache_;
    L2BypassPolicy l2Policy_;
    SilverQuotaController quota_;
    Cycle nextEpoch_;

    // Stats plumbing.
    /** Warp-accesses currently parked on translations, per app. */
    std::vector<std::uint32_t> stalledAccesses_;
    /** True warps-stalled-per-miss (Fig. 6), counting core-MSHR
     *  waiters across all cores at walk completion. */
    RunningStat warpsPerMiss_;
    std::vector<RunningStat> warpsPerMissPerApp_;
    std::vector<std::uint64_t> appInstr_;
    std::vector<std::uint64_t> coreInstrCredited_;
    RunningStat tlbMissLatency_;
    IntervalSampler walkSampler_;
    std::vector<IntervalSampler> walkSamplerPerApp_;
    IntervalSampler readySampler_;

    std::vector<PendingSwitch> pendingSwitch_;
    std::uint64_t switchSeed_ = 0;

    /**
     * Parked MSHR-full data accesses, sharded per core and indexed by
     * arrival order and L1 line key (DESIGN.md §12): a retry pass
     * touches only the woken cores' queues, and within a woken core
     * probes only the entries whose probe can succeed — the oldest
     * entries while an MSHR slot is free (phase 1), then the chains
     * whose key was filled this cycle or has an outstanding MSHR
     * entry (phase 2). Everything else is charged to the L1
     * miss/rejection counters in closed form. Global FIFO order is
     * preserved by the per-entry sequence numbers (a k-way merge
     * probes in arrival order); snapshots flatten back to the
     * original single-queue format, so dataRetrySeq_, the key chains
     * and dataMergeKeys_ are all derived state rebuilt on restore.
     */
    std::vector<DataRetryQueue> dataRetryByCore_;
    std::size_t dataRetryCount_ = 0;  //!< total parked, all cores
    std::uint64_t dataRetrySeq_ = 0;  //!< next arrival sequence
    /** L1 line keys filled this cycle, per core: the only keys a
     *  parked entry can newly hit on. Cleared with the wake flags. */
    std::vector<std::vector<std::uint64_t>> coreFilledKeys_;
    /** Keys with both an outstanding L1 MSHR entry and parked
     *  retries: the only keys a parked entry can merge into while the
     *  MSHR table is full. Maintained at allocate/complete/park/
     *  unpark; rebuilt on restore. */
    std::vector<FlatTable<std::uint8_t>> dataMergeKeys_;
    /**
     * Event-driven retry wakeups (DESIGN.md §9): a parked data access
     * can change outcome only when its core receives a memory response
     * (L1 fill + MSHR completion both happen in respondUp), and a
     * parked translation slot only when the shared TLB MSHR completes
     * an entry (finishWalk). On other cycles the legacy per-cycle
     * probes were provable no-ops apart from the L1 miss/rejection
     * counters, which the retry loop advances in closed form instead.
     */
    std::vector<std::uint8_t> coreDataWake_;
    bool anyCoreDataWake_ = false;
    bool tlbRetryWake_ = false;
    /** Scratch for the retry pass (reused across cycles). */
    std::vector<RetryPassCore> dataRetryWoken_;
    std::vector<std::uint64_t> retryCandKeys_;
    std::vector<std::uint32_t> retryChainCursor_;

    /**
     * Index over the parked translation slots (DESIGN.md §12),
     * rebuilt on restore: how many parked slots wait on each
     * tlbKey(asid, vpn), and how many of those keys are currently
     * present in the shared TLB MSHR table (a parked slot whose key
     * is present would Merge on its next probe). Lets the wake pass
     * skip slots whose probe would provably return Full: when the
     * table is full, only merge-eligible slots can make progress.
     */
    FlatTable<std::uint32_t> parkedTransKeys_;
    std::uint32_t parkedMergeEligible_ = 0;
    /** Index of each core within its application's core list. */
    std::vector<std::uint16_t> coreAppIndex_;

    /**
     * Per-core translation MSHRs: accesses from one core waiting on
     * the same in-flight translation coalesce into one shared-TLB
     * probe (keyed by tlbKey(asid, vpn)). Flat tables: probed on
     * every L1 TLB miss and every translation completion.
     */
    std::vector<FlatTable<std::vector<StalledAccess>>>
        coreTransWaiters_;

    // --- Idle-skip bookkeeping (tickOne fast paths) ---
    /** Requests in the L2 input queues or bank pipes. */
    std::size_t l2Work_ = 0;
    /** Cores with an unfinished app switch (skip stageSwitches). */
    std::uint32_t switchesInFlight_ = 0;

    // --- Event-driven loop state (DESIGN.md §9) ---
    static constexpr std::size_t kSkipHistBuckets = 16;
    /** Skipping resolved at construction: cfg_.cycleSkip, no fault
     *  injection, and MASK_NO_CYCLE_SKIP unset. */
    bool cycleSkip_ = false;
    /** After a failed skip probe, don't re-probe until this cycle
     *  (deterministic backoff; affects only host-side skip stats). */
    Cycle nextSkipProbe_ = 0;
    std::uint64_t skippedCycles_ = 0;
    std::uint64_t skipWindows_ = 0;
    std::uint64_t skipWindowLog2_[kSkipHistBuckets] = {};

    // --- Checkpoint hook (DESIGN.md §11; host-side policy) ---
    /** Advance nextCkpt_ past now_ and invoke the callback. */
    void maybeCheckpoint();
    Cycle ckptInterval_ = 0;
    Cycle nextCkpt_ = kNeverCycle;
    std::function<void(Gpu &)> ckptFn_;
    double ckptWriteSeconds_ = 0.0;
    std::uint64_t ckptBytes_ = 0;
    std::uint64_t ckptWrites_ = 0;
    /** Runner phase cookie; serialized verbatim, never interpreted. */
    std::uint64_t snapshotCookie_ = 0;

    // --- Host-side throughput accounting ---
    double wallSeconds_ = 0.0;      //!< accumulated inside run()
    std::uint64_t allocsAtReset_ = 0;

    // --- Per-stage profiler (MASK_PROFILE_STAGES=1; DESIGN.md §12) ---
    /** Run @p fn as stage @p id, timing it when the profiler is on.
     *  Observation-only: the untimed path is a plain call. */
    template <typename Fn>
    void
    stageTimed(StageId id, Fn &&fn)
    {
        if (!profileStages_) {
            fn();
            return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        stageSeconds_[id] +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        ++stageCalls_[id];
    }

    /** Resolved from MASK_PROFILE_STAGES at construction. */
    bool profileStages_ = false;
    double stageSeconds_[kNumStages] = {};
    std::uint64_t stageCalls_[kNumStages] = {};

    // --- Observability (DESIGN.md §13; host-side, never serialized,
    // excluded from configFingerprint) ---

    /** Resolve env/override options, build the series registry, open
     *  the writers; called once at construction. */
    void obsInit();
    /** Gather every gauge and record one timeseries row stamped
     *  @p cycle (state as of the end of that cycle). */
    void obsSampleAt(Cycle cycle);
    /** Re-capture the interval-delta baselines from the live
     *  counters (after resetStats / restore / construction). */
    void obsCaptureBaseline();
    /** Trace/sample bookkeeping for an epoch boundary; runs inside
     *  stageEpoch around the controller updates. */
    void obsEpochPre();
    void obsEpochPost();
    /** Flush writers and export the stage profile (destructor). */
    void obsFinish();
    void obsWriteStageProfile();

    std::unique_ptr<obs::TimeseriesWriter> obsTs_;
    std::unique_ptr<obs::TraceWriter> obsTrace_;
    std::string obsStageProfilePath_;
    std::vector<double> obsVals_;  //!< scratch row (registry order)
    Cycle obsLastSample_ = 0;      //!< previous sample/reset cycle
    /** Interval-delta baselines (cumulative counters at the previous
     *  sample). One slot per app unless noted. */
    struct ObsBaseline
    {
        std::vector<std::uint64_t> l1Hits, l1Misses;
        std::vector<std::uint64_t> l2Hits, l2Misses;
        std::vector<std::uint64_t> instr;
        std::vector<std::uint64_t> rowHits, rowAcc;    //!< per channel
        std::vector<std::uint64_t> issued[3];          //!< per channel
        std::uint64_t bypasses = 0;
        std::uint64_t walkAcc = 0; //!< L2 lookups at walk levels 1..4
    } obsPrev_;
    /** Per-level L2 bypass decision at the last epoch boundary
     *  (levels 1..kMaxLevel; index 0 unused), for flip instants. */
    bool obsBypassOn_[5] = {};
    /** Pre-epoch token counts scratch (obsEpochPre/Post). */
    std::vector<std::uint32_t> obsEpochTokens_;
    // Deterministic work counters feeding GpuStats (host-side; never
    // serialized — a restored run re-counts only its own work).
    std::uint64_t dataRetryProbes_ = 0;
    std::uint64_t tlbRetryProbes_ = 0;
};

} // namespace mask

#endif // MASK_SIM_GPU_HH
