/**
 * @file
 * Deterministic crash-replay records.
 *
 * When a SimInvariantError trips inside an Evaluator run, the runner
 * serializes everything needed to re-execute to the failure — the
 * architecture preset, design point, workload names, RNG seeds, run
 * windows, and the hardening (watchdog + fault injection) knobs — to a
 * small key/value repro file. `replayRepro` (and the `crash_replay`
 * binary's `--replay <file>` flag) re-runs that configuration and
 * reports whether the failure reproduces at the recorded cycle.
 *
 * Hard crashes are covered too: fatal-signal handlers
 * (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) flush a pre-rendered repro for the
 * run the faulting thread had armed (ScopedSignalRepro) before
 * re-raising the signal, so a segfault loses neither the repro nor
 * the original kill signal. The sweep engine's subprocess isolation
 * mode harvests that file from the dead child and attaches its path
 * to the job's failure record.
 */

#ifndef MASK_SIM_CRASH_REPRO_HH
#define MASK_SIM_CRASH_REPRO_HH

#include <string>
#include <vector>

#include "common/check.hh"
#include "common/config.hh"

namespace mask {

/** Everything needed to re-run a crashed evaluation. */
struct CrashRepro
{
    std::string arch = "maxwell";     //!< preset name (archByName)
    std::string design = "SharedTLB"; //!< designPointName
    std::vector<std::string> benches;
    std::uint64_t seed = 1;
    Cycle warmup = 0;
    Cycle measure = 0;
    HardenConfig harden;

    // Failure snapshot.
    Cycle failCycle = 0;
    std::string module;
    std::string detail;
};

/** Env var naming the repro output path (default "mask_crash.repro"). */
constexpr const char *kReproFileEnv = "MASK_REPRO_FILE";

/** Repro path honoring MASK_REPRO_FILE. */
std::string reproFilePath();

/** Render @p repro to its key/value file format. */
std::string formatRepro(const CrashRepro &repro);

/** Serialize @p repro to @p path (throws std::runtime_error on I/O). */
void writeRepro(const std::string &path, const CrashRepro &repro);

/** Parse a repro file (throws std::runtime_error on a malformed file). */
CrashRepro loadRepro(const std::string &path);

/** Build the repro record for a failed run. */
CrashRepro makeRepro(const GpuConfig &arch, DesignPoint point,
                     const std::vector<std::string> &benches,
                     Cycle warmup, Cycle measure,
                     const SimInvariantError &err);

/** Repro record for a run that has not failed (yet): the signal
 *  handler fills module/detail when a fatal signal lands. */
CrashRepro makeRepro(const GpuConfig &arch, DesignPoint point,
                     const std::vector<std::string> &benches,
                     Cycle warmup, Cycle measure);

/**
 * Install process-wide SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that
 * write the faulting thread's armed repro (see ScopedSignalRepro)
 * and then re-raise with the default disposition, preserving the
 * kill signal and core dump. Idempotent; disabled entirely by
 * MASK_NO_SIGNAL_REPRO=1.
 */
void installFatalSignalHandlers();

/**
 * Arm the calling thread's fatal-signal repro for this scope: a hard
 * crash while armed writes @p repro (module/detail overridden with
 * the signal name) to @p path. Scopes nest; the previous armed state
 * is restored on destruction. Also installs the handlers on first
 * use.
 */
class ScopedSignalRepro
{
  public:
    ScopedSignalRepro(const CrashRepro &repro, const std::string &path);
    ~ScopedSignalRepro();

    ScopedSignalRepro(const ScopedSignalRepro &) = delete;
    ScopedSignalRepro &operator=(const ScopedSignalRepro &) = delete;

  private:
    std::string prevPath_;
    std::string prevContent_;
    bool prevArmed_;
};

} // namespace mask

#endif // MASK_SIM_CRASH_REPRO_HH
