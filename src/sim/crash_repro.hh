/**
 * @file
 * Deterministic crash-replay records.
 *
 * When a SimInvariantError trips inside an Evaluator run, the runner
 * serializes everything needed to re-execute to the failure — the
 * architecture preset, design point, workload names, RNG seeds, run
 * windows, and the hardening (watchdog + fault injection) knobs — to a
 * small key/value repro file. `replayRepro` (and the `crash_replay`
 * binary's `--replay <file>` flag) re-runs that configuration and
 * reports whether the failure reproduces at the recorded cycle.
 */

#ifndef MASK_SIM_CRASH_REPRO_HH
#define MASK_SIM_CRASH_REPRO_HH

#include <string>
#include <vector>

#include "common/check.hh"
#include "common/config.hh"

namespace mask {

/** Everything needed to re-run a crashed evaluation. */
struct CrashRepro
{
    std::string arch = "maxwell";     //!< preset name (archByName)
    std::string design = "SharedTLB"; //!< designPointName
    std::vector<std::string> benches;
    std::uint64_t seed = 1;
    Cycle warmup = 0;
    Cycle measure = 0;
    HardenConfig harden;

    // Failure snapshot.
    Cycle failCycle = 0;
    std::string module;
    std::string detail;
};

/** Env var naming the repro output path (default "mask_crash.repro"). */
constexpr const char *kReproFileEnv = "MASK_REPRO_FILE";

/** Repro path honoring MASK_REPRO_FILE. */
std::string reproFilePath();

/** Serialize @p repro to @p path (throws std::runtime_error on I/O). */
void writeRepro(const std::string &path, const CrashRepro &repro);

/** Parse a repro file (throws std::runtime_error on a malformed file). */
CrashRepro loadRepro(const std::string &path);

/** Build the repro record for a failed run. */
CrashRepro makeRepro(const GpuConfig &arch, DesignPoint point,
                     const std::vector<std::string> &benches,
                     Cycle warmup, Cycle measure,
                     const SimInvariantError &err);

} // namespace mask

#endif // MASK_SIM_CRASH_REPRO_HH
