#include "sim/gpu.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/check.hh"
#include "obs/registry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/cancel.hh"

namespace mask {

namespace {

/** MASK_NO_CYCLE_SKIP=1 forces the legacy per-cycle loop. */
bool
cycleSkipDisabledByEnv()
{
    const char *env = std::getenv("MASK_NO_CYCLE_SKIP");
    return env != nullptr && env[0] == '1';
}

/** MASK_PROFILE_STAGES=1 turns on the per-stage wall-clock profiler. */
bool
profileStagesByEnv()
{
    const char *env = std::getenv("MASK_PROFILE_STAGES");
    return env != nullptr && env[0] == '1';
}

/** Validate before any member construction touches derived quantities
 *  (e.g. numSets() divides by lineBytes); cfg_ is the first member. */
const GpuConfig &
validatedRef(const GpuConfig &cfg)
{
    validateConfig(cfg);
    return cfg;
}

/** Warps per application used to size the token pool. */
std::uint32_t
warpsPerApp(const GpuConfig &cfg, std::size_t num_apps)
{
    const std::uint32_t apps =
        static_cast<std::uint32_t>(std::max<std::size_t>(1, num_apps));
    std::uint32_t max_share = 0;
    for (std::uint32_t a = 0; a < apps; ++a)
        max_share = std::max(max_share, coreShareOf(cfg, apps, a));
    return max_share * cfg.warpsPerCore;
}

} // namespace

const char *
Gpu::stageName(std::size_t id)
{
    static const char *const names[kNumStages] = {
        "faults",   "dram",  "l2cache",  "pwcache",
        "l2tlb",    "walker", "cores",   "samplers",
        "epoch",    "switches", "watchdog",
    };
    return id < kNumStages ? names[id] : "?";
}

double
GpuStats::megaCyclesPerSec() const
{
    return safeDiv(static_cast<double>(cycles) / 1e6, wallSeconds);
}

double
GpuStats::requestsPerSec() const
{
    return safeDiv(static_cast<double>(requests), wallSeconds);
}

double
GpuStats::dramBusUtil(ReqType type, std::uint32_t channels) const
{
    const double capacity =
        static_cast<double>(cycles) * channels;
    return safeDiv(
        static_cast<double>(dram.busBusy[static_cast<int>(type)]),
        capacity);
}

Gpu::Gpu(const GpuConfig &cfg, const std::vector<AppDesc> &apps)
    : cfg_(validatedRef(cfg)),
      frames_(cfg.pageBits),
      l2Tlb_(cfg.l2Tlb),
      l2TlbPipe_(cfg.l2Tlb.ports, cfg.l2Tlb.latency),
      tlbMshr_(cfg.l2Tlb.mshrs),
      walker_(cfg.walker),
      pwCache_(cfg.pwCache.numSets(), cfg.pwCache.ways),
      pwCachePipe_(cfg.pwCache.portsPerBank, cfg.pwCache.latency),
      l2Cache_(cfg.l2.numSets(), cfg.l2.ways),
      l2Pipe_(cfg.l2.banks, cfg.l2.portsPerBank, cfg.l2.latency),
      l2Mshr_(cfg.l2.mshrs),
      dram_(cfg.dram, cfg.mask, cfg.lineBits,
            cfg.mask.dramSched ? DramSchedMode::MaskQueues
                               : DramSchedMode::FrFcfs,
            static_cast<std::uint32_t>(apps.size()),
            cfg.partition.partitionDramChannels),
      watchdog_(cfg.harden.watchdog),
      faults_(cfg.harden.fault, cfg.seed),
      tokenWarpsPerApp_(warpsPerApp(cfg, apps.size())),
      tokens_(cfg.mask, static_cast<std::uint32_t>(apps.size()),
              warpsPerApp(cfg, apps.size())),
      bypassCache_(cfg.mask),
      l2Policy_(cfg.mask),
      quota_(cfg.mask, static_cast<std::uint32_t>(apps.size())),
      nextEpoch_(cfg.mask.epochCycles),
      walkSampler_(10000),
      readySampler_(10000)
{
    SIM_CHECK(!apps.empty(), "sim.gpu", kUnknownCycle,
              "Gpu constructed with no applications");

    l2Input_.resize(cfg_.l2.banks);
    coreTransWaiters_.resize(cfg_.numCores);
    coreDataWake_.resize(cfg_.numCores, 0);
    dataRetryByCore_.resize(cfg_.numCores);
    coreFilledKeys_.resize(cfg_.numCores);
    dataMergeKeys_.resize(cfg_.numCores);
    profileStages_ = profileStagesByEnv();
    dramRetryFull_.resize(static_cast<std::size_t>(
        dram_.numChannels() * 2 * apps.size()));

    // Fault injection draws its RNG on a per-cycle schedule, so the
    // event-driven loop would have to replay it anyway; fall back to
    // per-cycle stepping whenever the injector is live (DESIGN.md §9).
    cycleSkip_ = cfg_.cycleSkip && !faults_.enabled() &&
                 !cycleSkipDisabledByEnv();

    // Steady-state in-flight bound: one request per L1 MSHR entry
    // (primary data misses) plus one PTE fetch per walker thread.
    // Reserving up front means the pool never reallocates mid-run;
    // the high-water check makes any violation of the bound loud.
    const std::size_t pool_bound =
        static_cast<std::size_t>(cfg_.numCores) * cfg_.l1d.mshrs +
        cfg_.walker.maxConcurrentWalks;
    pool_.reserve(pool_bound);
    pool_.setHighWater(cfg_.harden.poolHighWater != 0
                           ? cfg_.harden.poolHighWater
                           : pool_bound);
    stalledAccesses_.assign(apps.size(), 0);
    warpsPerMissPerApp_.resize(apps.size());

    apps_.resize(apps.size());
    for (AppId a = 0; a < apps.size(); ++a) {
        apps_[a].asid = static_cast<Asid>(a + 1);
        apps_[a].bench = apps[a].bench;
        apps_[a].streams =
            std::make_unique<StreamTable>(apps[a].bench->streams);
        pageTables_.push_back(std::make_unique<PageTable>(
            apps_[a].asid, cfg_.pageBits, frames_));
        walkSamplerPerApp_.emplace_back(10000);
    }

    // Spatial partitioning: distribute cores as evenly as possible,
    // earlier apps receiving the remainder (the oracle partition
    // search of Section 6 is provided separately by the runner).
    const auto num_apps = static_cast<std::uint32_t>(apps.size());
    cores_.reserve(cfg_.numCores);
    coreAppIndex_.resize(cfg_.numCores, 0);
    pendingSwitch_.resize(cfg_.numCores);
    coreInstrCredited_.resize(cfg_.numCores, 0);
    appInstr_.assign(apps.size(), 0);

    std::uint32_t next_core = 0;
    for (AppId a = 0; a < num_apps; ++a) {
        std::uint32_t share = coreShareOf(cfg_, num_apps, a);
        if (static_cast<std::uint32_t>(a + 1) == num_apps)
            share = cfg_.numCores - next_core; // absorb rounding
        for (std::uint32_t i = 0; i < share; ++i) {
            const auto core_id = static_cast<CoreId>(next_core++);
            auto core = std::make_unique<ShaderCore>(core_id, cfg_);
            core->assign(a, apps_[a].asid, apps_[a].bench,
                         apps_[a].streams.get(),
                         i * cfg_.warpsPerCore,
                         cfg_.seed * 7919 + core_id);
            coreAppIndex_[core_id] = static_cast<std::uint16_t>(i);
            apps_[a].cores.push_back(core_id);
            cores_.push_back(std::move(core));
        }
    }

    if (cfg_.mask.dramSched)
        dram_.setQuotaProvider(&quota_);

    obsInit();
}

Gpu::~Gpu()
{
    obsFinish();
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

void
Gpu::run(Cycle cycles)
{
    // Probing for a skip costs a scan of the DRAM queues; when the
    // machine is saturated the probe fails every cycle, so a failed
    // probe backs off this many cycles before trying again. Purely a
    // host-side heuristic: it decides only whether a provably-empty
    // window is skipped or ticked, never what the window computes.
    constexpr Cycle kSkipProbeBackoff = 8;

    const auto wall_start = std::chrono::steady_clock::now();
    const Cycle end = now_ + cycles;
    // A cancelled token (sweep deadline) unwinds here with
    // SimCancelledError; the poll is one thread-local load when no
    // token is installed, invisible next to a tick.
    if (!cycleSkip_) {
        while (now_ < end) {
            pollCancellation();
            if (now_ >= nextCkpt_)
                maybeCheckpoint();
            tickOne();
        }
    } else {
        while (now_ < end) {
            pollCancellation();
            if (now_ >= nextCkpt_)
                maybeCheckpoint();
            tickOne();
            if (now_ >= end || now_ < nextSkipProbe_)
                continue;
            const Cycle next = nextEventCycle();
            if (next > now_)
                skipTo(std::min(next, end));
            else
                nextSkipProbe_ = now_ + kSkipProbeBackoff;
        }
    }
    wallSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
}

Cycle
Gpu::nextEventCycle() const
{
    const Cycle now = now_;

    // The DRAM retry deque re-probes channel queues every cycle and
    // its rejects feed scheduler counters, so it pins per-cycle
    // stepping. The data/translation retry deques do not: they are
    // event-gated (woken by memory responses, which the memory-side
    // bounds below account for), and the data-retry stats the legacy
    // per-cycle probes accumulated are advanced in closed form by
    // skipTo().
    if (!dramRetry_.empty())
        return now;

    // A core with a ready warp issues this cycle. Idle cores have no
    // self-wakeup: they are woken by memory responses, which the
    // memory-side bounds below account for.
    for (const auto &core : cores_) {
        if (core->canIssueNow())
            return now;
    }

    // Walker work available right now. Capacity frees only through
    // walk completion (a memory event), so a queued walk with no free
    // thread needs no bound of its own.
    if (walker_.hasPendingFetch() ||
        (!walkStartQueue_.empty() && walker_.hasCapacity()))
        return now;

    Cycle next = kNeverCycle;

    // Fixed-latency pipes: queued inputs drain as ports free up each
    // cycle (work now); otherwise the FIFO head completes first.
    if (l2Work_ > 0) {
        for (std::uint32_t b = 0; b < l2Pipe_.numBanks(); ++b) {
            if (!l2Input_[b].empty())
                return now;
            next = std::min(next, l2Pipe_.bank(b).nextReadyAt());
        }
    }
    if (cfg_.design == TranslationDesign::PwCache) {
        if (!pwInput_.empty())
            return now;
        next = std::min(next, pwCachePipe_.nextReadyAt());
    }
    if (cfg_.design == TranslationDesign::SharedTlb) {
        if (!l2TlbInput_.empty())
            return now;
        next = std::min(next, l2TlbPipe_.nextReadyAt());
    }

    // DRAM: consult only when busy, mirroring the tickOne gate (an
    // idle subsystem is never ticked, so it can contribute no event).
    if (dram_.busy()) {
        next = std::min(next, dram_.nextEventCycle(now));
        if (next <= now)
            return now;
    }

    // A drained core waits out its switch penalty.
    if (switchesInFlight_ > 0) {
        for (CoreId c = 0; c < cores_.size(); ++c) {
            const PendingSwitch &sw = pendingSwitch_[c];
            if (!sw.pending || !cores_[c]->drained())
                continue;
            if (sw.notBefore <= now)
                return now;
            next = std::min(next, sw.notBefore);
        }
    }

    // Time-driven components.
    next = std::min(next, walkSampler_.nextDue());
    next = std::min(next, readySampler_.nextDue());
    next = std::min(next, nextEpoch_);
    next = std::min(next, watchdog_.nextDue());
    return next;
}

void
Gpu::skipTo(Cycle target)
{
    const Cycle skipped = target - now_;

    // Closed-form advance of the only per-cycle accumulators that run
    // in an otherwise-empty window: warp stall counters and (under the
    // MASK DRAM scheduler) the Equation 1 quota sums. Their inputs are
    // constant across the window because nothing else does work in it.
    for (auto &core : cores_)
        core->skipIdleCycles(skipped);
    // Parked MSHR-full data accesses: the per-cycle retry pass counts
    // one L1 miss probe and one MSHR rejection per parked entry per
    // cycle (their outcome is pinned until a response arrives, so the
    // counts are exact; per-core sharding turns them into one closed
    // form per occupied core).
    if (dataRetryCount_ > 0) {
        for (CoreId c = 0; c < cores_.size(); ++c) {
            const std::size_t n = dataRetryByCore_[c].size();
            if (n == 0)
                continue;
            ShaderCore &core = *cores_[c];
            core.l1dStats().misses += n * skipped;
            core.l1Mshr().addRejections(n * skipped);
        }
    }
    // Timeseries samples due inside the window (DESIGN.md §13): the
    // window is provably empty, so every sampled gauge except the
    // Equation 1 quota sums is constant across it. Advance the quota
    // accumulators in closed-form segments up to each due point and
    // sample there, then cover the remainder — byte-identical to the
    // per-cycle loop's accumulate-then-sample order. The skip target
    // and the window statistics are untouched, so GpuStats stays
    // byte-identical with the sampler on or off.
    if (obsTs_ != nullptr && obsTs_->nextDue() < target) {
        Cycle pos = now_;
        while (obsTs_->nextDue() < target) {
            const Cycle due = obsTs_->nextDue();
            if (cfg_.mask.dramSched) {
                const Cycle seg = due - pos + 1;
                for (AppId a = 0; a < apps_.size(); ++a) {
                    quota_.sampleN(a, walker_.activeWalksFor(a),
                                   stalledAccesses_[a], seg);
                }
            }
            obsSampleAt(due);
            pos = due + 1;
        }
        if (cfg_.mask.dramSched && pos < target) {
            for (AppId a = 0; a < apps_.size(); ++a) {
                quota_.sampleN(a, walker_.activeWalksFor(a),
                               stalledAccesses_[a], target - pos);
            }
        }
    } else if (cfg_.mask.dramSched) {
        for (AppId a = 0; a < apps_.size(); ++a) {
            quota_.sampleN(a, walker_.activeWalksFor(a),
                           stalledAccesses_[a], skipped);
        }
    }

    skippedCycles_ += skipped;
    ++skipWindows_;
    std::size_t bucket = 0;
    while (bucket + 1 < kSkipHistBuckets &&
           (Cycle{1} << (bucket + 1)) <= skipped)
        ++bucket;
    ++skipWindowLog2_[bucket];

    now_ = target;
}

void
Gpu::tickOne()
{
    // Quiescent components skip their stage entirely: the checks are
    // O(1) against explicit work counters, and the skipped stage would
    // have scanned banks/queues to discover the same emptiness. The
    // fault-injection stages are exempt (their RNG draws are part of
    // the deterministic fault schedule).
    stageTimed(kStageFaults, [this] { stageFaults(); });
    if (dram_.busy() || !dramRetry_.empty())
        stageTimed(kStageDram, [this] { stageDram(); });
    if (l2Work_ > 0)
        stageTimed(kStageL2Cache, [this] { stageL2Cache(); });
    if (cfg_.design == TranslationDesign::PwCache &&
        (!pwInput_.empty() || pwCachePipe_.inFlight() > 0)) {
        stageTimed(kStagePwCache, [this] { stagePwCache(); });
    }
    if (cfg_.design == TranslationDesign::SharedTlb &&
        (faults_.enabled() || !l2TlbInput_.empty() ||
         l2TlbPipe_.inFlight() > 0)) {
        stageTimed(kStageL2Tlb, [this] { stageL2Tlb(); });
    }
    if (!tlbMissRetry_.empty() || !walkStartQueue_.empty() ||
        walker_.hasPendingFetch()) {
        stageTimed(kStageWalker, [this] { stageWalker(); });
    }
    stageTimed(kStageCores, [this] { stageCores(); });
    stageTimed(kStageSamplers, [this] { stageSamplers(); });
    stageTimed(kStageEpoch, [this] { stageEpoch(); });
    if (switchesInFlight_ > 0)
        stageTimed(kStageSwitches, [this] { stageSwitches(); });
    stageTimed(kStageWatchdog, [this] { stageWatchdog(); });
    // End-of-cycle telemetry sample (DESIGN.md §13): one pointer test
    // when the timeseries is off.
    if (obsTs_ != nullptr && obsTs_->due(now_))
        obsSampleAt(now_);
    ++now_;
}

// ---------------------------------------------------------------------
// DRAM stage
// ---------------------------------------------------------------------

void
Gpu::stageDram()
{
    dram_.tick(now_, pool_);

    auto &done = dram_.completed();
    while (!done.empty()) {
        const ReqId id = done.front();
        done.pop_front();
        // Duration event at completion: the begin cycle is part of
        // the request (serialized), so spans crossing a snapshot
        // boundary appear exactly once, in the resumed trace.
        if (obsTrace_ != nullptr &&
            obsTrace_->wants(obs::TraceCat::kDram)) {
            const MemRequest &req = pool_[id];
            const DramCoord co =
                dram_.mapper().map(req.paddr, req.app);
            obsTrace_->complete(
                obs::TraceCat::kDram,
                req.type == ReqType::Translation ? "dram_walk"
                                                 : "dram_data",
                static_cast<std::uint32_t>(req.app) + 1,
                req.dramEnqueueCycle, now_ - req.dramEnqueueCycle,
                {{"channel", co.channel}, {"bank", co.bank}});
        }
        if (faults_.enabled()) {
            const Cycle delay = faults_.dramResponseDelay();
            if (delay > 0) {
                // Hold the response back; released by stageFaults.
                // FIFO stays cycle-sorted because the delay is fixed.
                pool_[id].where = "fault-delay";
                delayedResponses_.emplace_back(now_ + delay, id);
                continue;
            }
        }
        onMemResponse(id);
    }

    if (dramRetry_.empty())
        return;

    // Retry requests that found their channel queue full. Queue space
    // only shrinks while this loop runs (the channels already ticked;
    // retries only add), so a (channel, type, app) key that fails
    // canEnqueue once cannot succeed later in the same cycle: memoize
    // the failure and keep later same-key requests in place instead of
    // re-probing them. Compaction preserves FIFO order exactly.
    std::fill(dramRetryFull_.begin(), dramRetryFull_.end(),
              std::uint8_t{0});
    std::size_t kept = 0;
    for (std::size_t i = 0; i < dramRetry_.size(); ++i) {
        const ReqId id = dramRetry_[i];
        MemRequest &req = pool_[id];
        const std::size_t key = dramRetryKey(req);
        if (dramRetryFull_[key] == 0) {
            if (dram_.canEnqueue(req)) {
                req.where = "dram-queue";
                dram_.enqueue(id, req, now_);
                continue;
            }
            dramRetryFull_[key] = 1;
        }
        dramRetry_[kept++] = id;
    }
    dramRetry_.resize(kept);
}

std::size_t
Gpu::dramRetryKey(const MemRequest &req) const
{
    const std::uint32_t channel =
        dram_.mapper().map(req.paddr, req.app).channel;
    const std::size_t is_translation =
        req.type == ReqType::Translation ? 1 : 0;
    return (channel * 2 + is_translation) * apps_.size() + req.app;
}

// ---------------------------------------------------------------------
// Hardening stages
// ---------------------------------------------------------------------

void
Gpu::stageFaults()
{
    if (!faults_.enabled())
        return;
    while (!delayedResponses_.empty() &&
           delayedResponses_.front().first <= now_) {
        const ReqId id = delayedResponses_.front().second;
        delayedResponses_.pop_front();
        onMemResponse(id);
    }
    while (!fetchRetry_.empty() && fetchRetry_.front().first <= now_) {
        const WalkId walk = fetchRetry_.front().second;
        fetchRetry_.pop_front();
        issueWalkFetch(walk);
    }
    if (faults_.shootdownDue(now_)) {
        const auto victim = faults_.pickApp(
            static_cast<std::uint32_t>(apps_.size()));
        tlbShootdown(apps_[victim].asid);
    }
}

void
Gpu::stageWatchdog()
{
    if (watchdog_.due(now_))
        watchdogSweepNow();
}

void
Gpu::watchdogSweepNow()
{
    WatchdogView view;
    view.pool = &pool_;
    view.tlbMshr = &tlbMshr_;
    view.walker = &walker_;
    view.dram = &dram_;
    view.tokens = &tokens_;
    view.numApps = static_cast<std::uint32_t>(apps_.size());
    view.warpsPerApp = tokenWarpsPerApp_;
    view.tokensEnabled = cfg_.mask.tlbTokens;
    watchdog_.sweep(now_, view);
}

void
Gpu::onMemResponse(ReqId id)
{
    MemRequest &req = pool_[id];
    const std::uint64_t key = l2CacheKey(req.paddr);

    // Completed walk reads feed the page walk cache (Fig. 2a design).
    if (cfg_.design == TranslationDesign::PwCache &&
        req.type == ReqType::Translation) {
        pwCache_.fill(key);
    }

    if (req.bypassL2) {
        // MASK L2 bypass: no L2 fill (Section 5.3), but merged
        // waiters (if this request owns an MSHR entry) complete now.
        if (req.mshrPrimary) {
            std::vector<ReqId> waiters = l2Mshr_.complete(key);
            for (const ReqId waiter : waiters)
                respondUp(waiter);
            l2Mshr_.recycle(std::move(waiters));
        } else {
            respondUp(id);
        }
        return;
    }

    // Fill the shared L2 (way-partitioned under the Static baseline).
    if (cfg_.partition.partitionL2 && apps_.size() > 1) {
        const std::uint32_t ways_per = std::max<std::uint32_t>(
            1, cfg_.l2.ways /
                   static_cast<std::uint32_t>(apps_.size()));
        const std::uint32_t lo = std::min(cfg_.l2.ways - ways_per,
                                          req.app * ways_per);
        l2Cache_.fillRange(key, 0, lo, lo + ways_per);
    } else {
        l2Cache_.fill(key);
    }

    std::vector<ReqId> waiters = l2Mshr_.complete(key);
    for (const ReqId waiter : waiters)
        respondUp(waiter);
    l2Mshr_.recycle(std::move(waiters));
}

void
Gpu::respondUp(ReqId id)
{
    MemRequest &req = pool_[id];
    if (req.origin == ReqOrigin::WarpData) {
        ShaderCore &core = *cores_[req.core];
        const std::uint64_t key = l2CacheKey(req.paddr);
        // This response is the only event that can change the outcome
        // of this core's parked MSHR-full accesses (L1 fill or MSHR
        // entry freed); wake them for this cycle's retry pass. The
        // filled key is the only line a parked entry can newly hit
        // on, and the completed MSHR entry can no longer be merged
        // into (the retry pass probes by key, DESIGN.md §12).
        coreDataWake_[req.core] = 1;
        anyCoreDataWake_ = true;
        coreFilledKeys_[req.core].push_back(key);
        dataMergeKeys_[req.core].erase(key);
        core.l1d().fill(key);
        std::vector<ReqId> warps = core.l1Mshr().complete(key);
        for (const ReqId warp : warps)
            core.accessDone(static_cast<WarpId>(warp), now_);
        core.l1Mshr().recycle(std::move(warps));
        pool_.release(id);
    } else {
        walkFetchReturned(id);
    }
}

// ---------------------------------------------------------------------
// Shared L2 data cache stage
// ---------------------------------------------------------------------

void
Gpu::stageL2Cache()
{
    for (std::uint32_t b = 0; b < l2Pipe_.numBanks(); ++b) {
        LatencyPipe &bank = l2Pipe_.bank(b);
        // Quiescent bank: nothing in flight to drain, nothing queued
        // to accept (l2Work_ > 0 only says *some* bank has work).
        if (bank.inFlight() == 0 && l2Input_[b].empty())
            continue;
        while (bank.hasReady(now_)) {
            --l2Work_;
            l2LookupDone(static_cast<ReqId>(bank.pop()));
        }
        auto &input = l2Input_[b];
        while (!input.empty() && bank.canAccept(now_)) {
            bank.push(input.front(), now_);
            input.pop_front();
        }
    }
}

void
Gpu::l2LookupDone(ReqId id)
{
    MemRequest &req = pool_[id];
    const std::uint64_t key = l2CacheKey(req.paddr);
    const bool hit = l2Cache_.lookup(key);

    // MSHR-full retries re-probe; count each logical access once.
    if (!req.l2StatsCounted) {
        req.l2StatsCounted = true;
        const auto type_idx = static_cast<int>(req.type);
        if (hit)
            ++l2Stats_[type_idx].hits;
        else
            ++l2Stats_[type_idx].misses;
        HitMiss &level_stats = l2StatsPerLevel_[req.pwLevel];
        if (hit)
            ++level_stats.hits;
        else
            ++level_stats.misses;
        l2Policy_.recordAccess(req.pwLevel, hit);
    }

    if (hit) {
        respondUp(id);
        return;
    }

    switch (l2Mshr_.allocate(key, id)) {
      case MshrTable::Outcome::Allocated:
        req.mshrPrimary = true;
        sendToDram(id);
        break;
      case MshrTable::Outcome::Merged:
        req.where = "l2-mshr-merged";
        break;
      case MshrTable::Outcome::Full:
        // Retry the lookup next cycle through the bank input queue;
        // the line may be present (or an MSHR free) by then.
        req.where = "l2-mshr-full-retry";
        ++l2Work_;
        l2Input_[l2Pipe_.bankFor(key)].push_back(id);
        break;
    }
}

void
Gpu::sendToL2(ReqId id)
{
    MemRequest &req = pool_[id];
    if (req.type == ReqType::Translation && cfg_.mask.l2Bypass &&
        l2Policy_.shouldBypass(req.pwLevel)) {
        // Bypass skips the L2 probe/fill, not the miss-merging: walks
        // to the same PTE line still coalesce in the MSHRs.
        req.bypassL2 = true;
        const std::uint64_t key = l2CacheKey(req.paddr);
        switch (l2Mshr_.allocate(key, id)) {
          case MshrTable::Outcome::Allocated:
            req.mshrPrimary = true;
            sendToDram(id);
            break;
          case MshrTable::Outcome::Merged:
            req.where = "l2-mshr-merged";
            break;
          case MshrTable::Outcome::Full:
            // Rare: forward unmerged rather than stall the walker.
            sendToDram(id);
            break;
        }
        return;
    }
    const std::uint64_t key = l2CacheKey(req.paddr);
    req.where = "l2-input";
    ++l2Work_;
    l2Input_[l2Pipe_.bankFor(key)].push_back(id);
}

void
Gpu::sendToDram(ReqId id)
{
    MemRequest &req = pool_[id];
    if (dram_.canEnqueue(req)) {
        req.where = "dram-queue";
        dram_.enqueue(id, req, now_);
    } else {
        dram_.noteReject(req);
        req.where = "dram-retry";
        dramRetry_.push_back(id);
    }
}

// ---------------------------------------------------------------------
// Page walk cache stage (PwCache baseline, Fig. 2a)
// ---------------------------------------------------------------------

void
Gpu::stagePwCache()
{
    while (pwCachePipe_.hasReady(now_)) {
        const auto id = static_cast<ReqId>(pwCachePipe_.pop());
        MemRequest &req = pool_[id];
        const std::uint64_t key = l2CacheKey(req.paddr);
        if (pwCache_.lookup(key)) {
            ++pwStats_.hits;
            walkFetchReturned(id);
        } else {
            ++pwStats_.misses;
            sendToL2(id);
        }
    }
    while (!pwInput_.empty() && pwCachePipe_.canAccept(now_)) {
        pwCachePipe_.push(pwInput_.front(), now_);
        pwInput_.pop_front();
    }
}

// ---------------------------------------------------------------------
// Shared L2 TLB stage (SharedTlb baseline, Fig. 2b)
// ---------------------------------------------------------------------

void
Gpu::stageL2Tlb()
{
    while (l2TlbPipe_.hasReady(now_))
        resolveL2TlbLookup(
            static_cast<std::uint32_t>(l2TlbPipe_.pop()));
    // Injected transient port stall: lookups already in the pipe keep
    // draining, but no new probe enters this cycle.
    if (faults_.enabled() && faults_.portStalled(now_))
        return;
    while (!l2TlbInput_.empty() && l2TlbPipe_.canAccept(now_)) {
        l2TlbPipe_.push(l2TlbInput_.front(), now_);
        l2TlbInput_.pop_front();
    }
}

void
Gpu::resolveL2TlbLookup(std::uint32_t slot)
{
    TransSlot &s = transSlots_[slot];
    Pfn pfn = kInvalidPfn;

    // Probe the shared L2 TLB and (under MASK-TLB) the bypass cache in
    // parallel; a hit in either is a TLB hit (Section 5.2).
    bool hit = l2Tlb_.lookup(s.asid, s.vpn, &pfn);
    if (!hit && cfg_.mask.tlbTokens &&
        bypassCache_.lookup(s.asid, s.vpn, &pfn)) {
        hit = true;
    }

    if (hit) {
        const CoreId core = s.access.core;
        const Asid asid = s.asid;
        const Vpn vpn = s.vpn;
        const AppId app = s.app;
        freeTransSlot(slot);
        completeCoreTranslation(core, asid, vpn, app, pfn);
        return;
    }

    tlbMissToWalker(slot);
}

void
Gpu::tlbMissToWalker(std::uint32_t slot)
{
    TransSlot &s = transSlots_[slot];
    switch (tlbMshr_.allocate(s.asid, s.vpn, s.app, s.access, now_)) {
      case TlbMshrTable::Outcome::Allocated:
        // The key just became present: parked slots waiting on the
        // same translation can now merge.
        if (const std::uint32_t *parked =
                parkedTransKeys_.find(tlbKey(s.asid, s.vpn)))
            parkedMergeEligible_ += *parked;
        if (walker_.hasCapacity())
            startWalkFor(s.asid, s.vpn, s.app);
        else
            walkStartQueue_.push_back(tlbKey(s.asid, s.vpn));
        freeTransSlot(slot);
        break;
      case TlbMshrTable::Outcome::Merged:
        freeTransSlot(slot);
        break;
      case TlbMshrTable::Outcome::Full:
        parkTransSlot(slot);
        break;
    }
}

void
Gpu::parkTransSlot(std::uint32_t slot)
{
    const TransSlot &s = transSlots_[slot];
    const std::uint64_t key = tlbKey(s.asid, s.vpn);
    if (std::uint32_t *parked = parkedTransKeys_.find(key))
        ++*parked;
    else
        parkedTransKeys_.insert(key, 1);
    // A Full outcome implies the key is absent (present keys merge),
    // so a freshly parked slot is never merge-eligible.
    tlbMissRetry_.push_back(slot);
}

void
Gpu::unparkTransSlot(std::uint32_t slot)
{
    const TransSlot &s = transSlots_[slot];
    const std::uint64_t key = tlbKey(s.asid, s.vpn);
    std::uint32_t *parked = parkedTransKeys_.find(key);
    SIM_CHECK(parked != nullptr && *parked > 0, "sim.gpu", now_,
              "unparked a translation slot with no parked-key entry");
    if (--*parked == 0)
        parkedTransKeys_.erase(key);
    if (tlbMshr_.has(s.asid, s.vpn))
        --parkedMergeEligible_;
}

// ---------------------------------------------------------------------
// Page table walker stage
// ---------------------------------------------------------------------

void
Gpu::startWalkFor(Asid asid, Vpn vpn, AppId app)
{
    const auto addrs = pageTables_[app]->walkAddrs(vpn);
    const WalkId walk = walker_.startWalk(asid, vpn, app, addrs, now_);
    TlbMshrTable::Entry &entry = tlbMshr_.get(asid, vpn);
    entry.walkStarted = true;
    entry.walkId = walk;
}

void
Gpu::stageWalker()
{
    // Retry MSHR-full translation misses, but only on cycles where a
    // walk completion freed an entry: between completions the table
    // stays full and gains no keys (allocation needs space), so every
    // probe would return Full without touching any state. Within a
    // wake pass, probe only slots that can make progress: an allocate
    // needs free capacity and a merge needs the slot's key present in
    // the table, both O(1) tests against parkedTransKeys_ /
    // parkedMergeEligible_. Slots whose probe would provably return
    // Full rotate back unprobed, preserving FIFO order exactly.
    if (tlbRetryWake_) {
        tlbRetryWake_ = false;
        for (std::size_t n = tlbMissRetry_.size(); n > 0; --n) {
            if (tlbMshr_.size() >= tlbMshr_.capacity() &&
                parkedMergeEligible_ == 0) {
                // No remaining probe can succeed: rotate the rest so
                // the deque ends up as a full pass would leave it.
                for (; n > 0; --n) {
                    tlbMissRetry_.push_back(tlbMissRetry_.front());
                    tlbMissRetry_.pop_front();
                }
                break;
            }
            const std::uint32_t slot = tlbMissRetry_.front();
            tlbMissRetry_.pop_front();
            const TransSlot &s = transSlots_[slot];
            if (tlbMshr_.size() >= tlbMshr_.capacity() &&
                !tlbMshr_.has(s.asid, s.vpn)) {
                tlbMissRetry_.push_back(slot); // provably Full
                continue;
            }
            ++tlbRetryProbes_;
            unparkTransSlot(slot);
            tlbMissToWalker(slot);
        }
    }

    // Start queued walks as walker threads free up.
    while (!walkStartQueue_.empty() && walker_.hasCapacity()) {
        const std::uint64_t key = walkStartQueue_.front();
        walkStartQueue_.pop_front();
        const Asid asid = tlbKeyAsid(key);
        const Vpn vpn = tlbKeyVpn(key);
        startWalkFor(asid, vpn, tlbMshr_.get(asid, vpn).app);
    }

    // Issue the next PTE fetch of every walk that is ready for one.
    while (walker_.hasPendingFetch()) {
        const WalkId walk = walker_.popPendingFetch();
        issueWalkFetch(walk);
    }
}

void
Gpu::issueWalkFetch(WalkId walk)
{
    const PageTableWalker::WalkInfo &info = walker_.info(walk);
    const ReqId id = pool_.alloc();
    MemRequest &req = pool_[id];
    req.paddr = walker_.fetchAddr(walk) &
                ~((Addr{1} << cfg_.lineBits) - 1);
    req.asid = info.asid;
    req.app = info.app;
    req.type = ReqType::Translation;
    req.origin = ReqOrigin::PageWalk;
    req.pwLevel = walker_.fetchLevel(walk);
    req.walkId = walk;
    req.issueCycle = now_;
    req.where = "walk-dispatch";
    dispatchTranslationRequest(id);
}

void
Gpu::dispatchTranslationRequest(ReqId id)
{
    if (cfg_.design == TranslationDesign::PwCache) {
        pool_[id].where = "pwcache-input";
        pwInput_.push_back(id);
    } else {
        sendToL2(id);
    }
}

void
Gpu::walkFetchReturned(ReqId id)
{
    const WalkId walk = pool_[id].walkId;
    pool_.release(id);
    if (faults_.enabled() && faults_.dropWalkFetch()) {
        // The PTE read is lost before reaching the walker. With retry
        // the fetch is reissued after a delay (the walk recovers);
        // without it the walk hangs until the watchdog trips.
        if (faults_.retryDroppedFetch()) {
            fetchRetry_.emplace_back(now_ + faults_.walkRetryDelay(),
                                     walk);
        }
        return;
    }
    if (walker_.fetchComplete(walk, now_))
        finishWalk(walk);
}

void
Gpu::finishWalk(WalkId walk)
{
    const PageTableWalker::WalkInfo info = walker_.info(walk);
    walker_.release(walk);

    if (obsTrace_ != nullptr &&
        obsTrace_->wants(obs::TraceCat::kWalk)) {
        obsTrace_->complete(
            obs::TraceCat::kWalk, "page_walk",
            static_cast<std::uint32_t>(info.app) + 1,
            info.startCycle, now_ - info.startCycle,
            {{"asid", static_cast<std::int64_t>(info.asid)},
             {"vpn", static_cast<std::int64_t>(info.vpn)}});
    }

    const Pfn pfn = pageTables_[info.app]->lookup(info.vpn);
    SIM_CHECK_CTX(pfn != kInvalidPfn, "sim.gpu", now_,
                  "walk finished for unmapped page",
                  (CheckContext{.asid = info.asid, .vpn = info.vpn,
                                .app = info.app, .walkId = walk}));

    TlbMshrTable::Entry entry = tlbMshr_.complete(info.asid, info.vpn);
    // Freeing a TLB MSHR entry is the only event that can unpark an
    // MSHR-full translation slot (allocate's Full path is mutation-
    // free, and no entry can be added while any slot is parked).
    tlbRetryWake_ = true;
    // The key left the table: parked slots waiting on it can no
    // longer merge (their next probe must allocate).
    if (const std::uint32_t *parked =
            parkedTransKeys_.find(tlbKey(info.asid, info.vpn)))
        parkedMergeEligible_ -= *parked;
    tlbMissLatency_.add(
        static_cast<double>(now_ - entry.firstMissCycle));

    // True Fig. 6 statistic: warp-accesses parked across all waiting
    // cores' translation MSHRs for this miss.
    std::size_t stalled = 0;
    const std::uint64_t key = tlbKey(info.asid, info.vpn);
    for (const StalledAccess &access : entry.waiters) {
        const auto *parked = coreTransWaiters_[access.core].find(key);
        if (parked != nullptr)
            stalled += parked->size();
    }
    warpsPerMiss_.add(static_cast<double>(stalled));
    warpsPerMissPerApp_[info.app].add(static_cast<double>(stalled));

    fillL2TlbOnWalkDone(entry, pfn);

    // One waiter per requesting core (per-core MSHRs coalesce the
    // rest); each drains its core's parked accesses.
    for (const StalledAccess &access : entry.waiters) {
        completeCoreTranslation(access.core, info.asid, info.vpn,
                                info.app, pfn);
    }
}

void
Gpu::fillL2TlbOnWalkDone(const TlbMshrTable::Entry &entry, Pfn pfn)
{
    if (cfg_.design != TranslationDesign::SharedTlb)
        return;

    if (cfg_.mask.tlbTokens) {
        // The warp that triggered the walk decides where the PTE
        // lands: shared L2 TLB if it holds a token, bypass cache
        // otherwise (Section 5.2).
        SIM_CHECK_CTX(!entry.waiters.empty(), "sim.gpu", now_,
                      "walk completed with no recorded waiters",
                      (CheckContext{.asid = entry.asid,
                                    .vpn = entry.vpn,
                                    .app = entry.app}));
        const StalledAccess &primary = entry.waiters.front();
        const std::uint32_t warp_index =
            coreAppIndex_[primary.core] * cfg_.warpsPerCore +
            primary.warp;
        if (tokens_.mayFill(entry.app, warp_index))
            l2Tlb_.fill(entry.asid, entry.vpn, pfn);
        else
            bypassCache_.fill(entry.asid, entry.vpn, pfn);
    } else {
        l2Tlb_.fill(entry.asid, entry.vpn, pfn);
    }
}

// ---------------------------------------------------------------------
// Core stage
// ---------------------------------------------------------------------

void
Gpu::stageCores()
{
    // Retry data accesses that found the L1 MSHRs full. A parked
    // access can only stop parking when its core receives a memory
    // response (L1 fill or MSHR completion, both in respondUp): while
    // none arrives the core's MSHR table stays full, its L1 cannot
    // newly hit, and no key can be added for a merge. Within a woken
    // core, the keyed index elides the probes that would provably
    // return Full again (DESIGN.md §12):
    //
    //   Phase 1 — while the core has a free MSHR slot, the oldest
    //   probe cannot Fail (merge is checked before capacity), so pop
    //   and probe in a k-way merge by sequence number across woken
    //   cores; request-pool allocation order matches the single-queue
    //   pass exactly. MSHR completions never happen mid-pass, so a
    //   core that fills up stays full and leaves the phase for good.
    //
    //   Phase 2 — with the MSHR full, a probe can only succeed as an
    //   L1 hit (its key was filled this cycle) or a merge (its key
    //   has an outstanding MSHR entry). Probe exactly those key
    //   chains in sequence order — full-table probes never allocate,
    //   so cross-core order no longer matters — and charge every
    //   other parked entry its miss + rejection in closed form, the
    //   same counters its Full probe would have bumped.
    //
    // Non-woken cores are charged entirely in closed form.
    if (dataRetryCount_ > 0 && anyCoreDataWake_) {
        dataRetryWoken_.clear();
        for (CoreId c = 0; c < cores_.size(); ++c) {
            if (coreDataWake_[c] != 0 && !dataRetryByCore_[c].empty())
                dataRetryWoken_.push_back(RetryPassCore{
                    c, dataRetryByCore_[c].size(), 0, true});
        }
        while (true) {
            std::size_t best = dataRetryWoken_.size();
            std::uint64_t best_seq = ~std::uint64_t{0};
            for (std::size_t i = 0; i < dataRetryWoken_.size(); ++i) {
                RetryPassCore &wc = dataRetryWoken_[i];
                if (!wc.inPhase1)
                    continue;
                const DataRetryQueue &q = dataRetryByCore_[wc.core];
                const MshrTable &mshr = cores_[wc.core]->l1Mshr();
                if (q.empty() || mshr.size() >= mshr.capacity()) {
                    wc.inPhase1 = false;
                    continue;
                }
                const std::uint64_t seq = q.at(q.head()).seq;
                if (seq < best_seq) {
                    best = i;
                    best_seq = seq;
                }
            }
            if (best == dataRetryWoken_.size())
                break;
            RetryPassCore &wc = dataRetryWoken_[best];
            DataRetryQueue &q = dataRetryByCore_[wc.core];
            const std::uint32_t n = q.head();
            const DataRetryQueue::Entry e = q.at(n);
            if (q.remove(n))
                dataMergeKeys_[wc.core].erase(e.key);
            --dataRetryCount_;
            ++wc.probes;
            ++dataRetryProbes_;
            const bool ok =
                tryStartDataAccess(e.access, e.app, e.pfn);
            SIM_CHECK_CTX(ok, "sim.gpu", now_,
                          "retry probe returned Full with a free L1 "
                          "MSHR slot",
                          (CheckContext{.app = e.app,
                                        .paddr = e.key}));
        }
        for (RetryPassCore &wc : dataRetryWoken_) {
            DataRetryQueue &q = dataRetryByCore_[wc.core];
            if (!q.empty()) {
                retryCandKeys_.clear();
                for (const std::uint64_t k :
                     coreFilledKeys_[wc.core]) {
                    if (q.hasKey(k))
                        retryCandKeys_.push_back(k);
                }
                dataMergeKeys_[wc.core].forEach(
                    [this](std::uint64_t k, std::uint8_t) {
                        retryCandKeys_.push_back(k);
                    });
                std::sort(retryCandKeys_.begin(),
                          retryCandKeys_.end());
                retryCandKeys_.erase(
                    std::unique(retryCandKeys_.begin(),
                                retryCandKeys_.end()),
                    retryCandKeys_.end());
                retryChainCursor_.clear();
                for (const std::uint64_t k : retryCandKeys_)
                    retryChainCursor_.push_back(q.chainHead(k));
                while (true) {
                    std::size_t best = retryChainCursor_.size();
                    std::uint64_t best_seq = ~std::uint64_t{0};
                    for (std::size_t i = 0;
                         i < retryChainCursor_.size(); ++i) {
                        const std::uint32_t cur =
                            retryChainCursor_[i];
                        if (cur == DataRetryQueue::kNil)
                            continue;
                        if (q.at(cur).seq < best_seq) {
                            best = i;
                            best_seq = q.at(cur).seq;
                        }
                    }
                    if (best == retryChainCursor_.size())
                        break;
                    const std::uint32_t cur =
                        retryChainCursor_[best];
                    const DataRetryQueue::Entry e = q.at(cur);
                    retryChainCursor_[best] = q.chainNext(cur);
                    ++wc.probes;
                    ++dataRetryProbes_;
                    if (tryStartDataAccess(e.access, e.app, e.pfn)) {
                        if (q.remove(cur))
                            dataMergeKeys_[wc.core].erase(e.key);
                        --dataRetryCount_;
                    }
                    // On Full the entry stays parked in place; the
                    // probe itself bumped the miss/rejection counters
                    // exactly as the rescanning pass would have.
                }
            }
            const std::size_t elided = wc.nStart - wc.probes;
            if (elided > 0) {
                ShaderCore &core = *cores_[wc.core];
                core.l1dStats().misses += elided;
                core.l1Mshr().addRejections(elided);
            }
        }
    }
    if (dataRetryCount_ > 0) {
        for (CoreId c = 0; c < cores_.size(); ++c) {
            if (coreDataWake_[c] != 0)
                continue; // probed or charged above
            const std::size_t n = dataRetryByCore_[c].size();
            if (n == 0)
                continue;
            ShaderCore &core = *cores_[c];
            core.l1dStats().misses += n;
            core.l1Mshr().addRejections(n);
        }
    }
    if (anyCoreDataWake_) {
        for (CoreId c = 0; c < cores_.size(); ++c) {
            if (coreDataWake_[c] != 0) {
                coreDataWake_[c] = 0;
                coreFilledKeys_[c].clear();
            }
        }
        anyCoreDataWake_ = false;
    }

    for (auto &core : cores_) {
        const std::optional<IssuedAccess> issued = core->issue(now_);
        if (issued.has_value())
            handleCoreAccess(*core, *issued);
    }
}

void
Gpu::handleCoreAccess(ShaderCore &core, const IssuedAccess &issued)
{
    const AppId app = core.app();
    for (std::uint32_t part = 0; part < issued.count; ++part) {
        core.noteAccessInFlight();
        const Addr vaddr = issued.vaddrs[part];
        const Vpn vpn = vpnOf(vaddr);

        // Demand-map on first touch; page faults are future work in
        // the paper (Section 5.5) and cost nothing here.
        const Pfn pfn = pageTables_[app]->mapPage(vpn);

        StalledAccess access;
        access.vaddr = vaddr;
        access.core = core.id();
        access.warp = issued.warp;
        access.issueCycle = now_;

        if (cfg_.ideal()) {
            // Ideal TLB: translation is free and always correct.
            startDataAccess(access, app, pfn);
            continue;
        }

        Pfn cached = kInvalidPfn;
        if (core.l1Tlb().lookup(core.asid(), vpn, &cached)) {
            startDataAccess(access, app, cached);
            continue;
        }
        onL1TlbMiss(core, access, vpn);
    }
}

void
Gpu::onL1TlbMiss(ShaderCore &core, const StalledAccess &access, Vpn vpn)
{
    // Per-core translation MSHR: coalesce concurrent misses from this
    // core to the same page into one shared-structure probe.
    auto &waiters = coreTransWaiters_[core.id()];
    const std::uint64_t key = tlbKey(core.asid(), vpn);
    ++stalledAccesses_[core.app()];
    if (std::vector<StalledAccess> *parked = waiters.find(key)) {
        parked->push_back(access);
        return;
    }
    waiters.insert(key, std::vector<StalledAccess>{access});

    const std::uint32_t slot =
        allocTransSlot(access, core.asid(), vpn, core.app());
    if (cfg_.design == TranslationDesign::SharedTlb)
        l2TlbInput_.push_back(slot);
    else
        tlbMissToWalker(slot); // PwCache: miss goes straight to a walk
}

void
Gpu::completeCoreTranslation(CoreId core, Asid asid, Vpn vpn, AppId app,
                             Pfn pfn)
{
    cores_[core]->l1Tlb().fill(asid, vpn, pfn);

    auto &waiters = coreTransWaiters_[core];
    const std::uint64_t key = tlbKey(asid, vpn);
    SIM_CHECK_CTX(waiters.contains(key), "sim.gpu", now_,
                  "translation completed with no core waiters",
                  (CheckContext{.asid = asid, .vpn = vpn, .app = app}));
    std::vector<StalledAccess> parked = waiters.take(key);
    SIM_CHECK_CTX(stalledAccesses_[app] >= parked.size(), "sim.gpu",
                  now_, "stalled-access counter underflow on wakeup",
                  (CheckContext{.asid = asid, .vpn = vpn, .app = app}));
    stalledAccesses_[app] -= static_cast<std::uint32_t>(parked.size());
    for (const StalledAccess &access : parked)
        startDataAccess(access, app, pfn);
}

/**
 * Issue a translated data access into the L1/L2 hierarchy. Returns
 * false when every L1 MSHR entry is busy (Full) without parking the
 * access: the caller either parks it (startDataAccess) or, on the
 * retry path, leaves the already-parked entry in place.
 */
bool
Gpu::tryStartDataAccess(const StalledAccess &access, AppId app,
                        Pfn pfn)
{
    ShaderCore &core = *cores_[access.core];
    const Addr paddr = dataPaddr(access, pfn);
    const std::uint64_t key = l2CacheKey(paddr);

    if (core.l1d().lookup(key)) {
        ++core.l1dStats().hits;
        core.accessDone(access.warp, now_);
        return true;
    }
    ++core.l1dStats().misses;

    switch (core.l1Mshr().allocate(key, access.warp)) {
      case MshrTable::Outcome::Allocated: {
        // The key just became outstanding: parked retries on the same
        // line would now Merge, so mark it merge-eligible for the
        // retry pass (DESIGN.md §12).
        const DataRetryQueue &parked = dataRetryByCore_[access.core];
        if (!parked.empty() && parked.hasKey(key) &&
            !dataMergeKeys_[access.core].contains(key)) {
            dataMergeKeys_[access.core].insert(key, 1);
        }
        const ReqId id = pool_.alloc();
        MemRequest &req = pool_[id];
        req.paddr = paddr;
        req.asid = core.asid();
        req.app = app;
        req.core = access.core;
        req.warp = access.warp;
        req.type = ReqType::Data;
        req.origin = ReqOrigin::WarpData;
        req.pwLevel = 0;
        req.issueCycle = access.issueCycle;
        sendToL2(id);
        return true;
      }
      case MshrTable::Outcome::Merged:
        return true;
      case MshrTable::Outcome::Full:
        return false;
    }
    return false; // unreachable
}

void
Gpu::startDataAccess(const StalledAccess &access, AppId app, Pfn pfn)
{
    if (tryStartDataAccess(access, app, pfn))
        return;
    // All L1 MSHR entries busy: park keyed by L1 line. Full implies
    // the key has no outstanding MSHR entry (merge is checked before
    // capacity), so the new entry is never merge-eligible at park
    // time.
    dataRetryByCore_[access.core].park(
        access, app, pfn, dataRetrySeq_++,
        l2CacheKey(dataPaddr(access, pfn)));
    ++dataRetryCount_;
}

// ---------------------------------------------------------------------
// Samplers, epochs, switches
// ---------------------------------------------------------------------

void
Gpu::stageSamplers()
{
    // The interval samplers record once per 10K cycles; only gather
    // their (core-scanning) inputs on cycles where a sample lands.
    // The quota controller accumulates every cycle by design (its
    // Equation 1 weights are per-cycle sums), so it is not gated.
    if (walkSampler_.due(now_)) {
        walkSampler_.tick(now_,
                          static_cast<double>(walker_.activeWalks()));
        for (AppId a = 0; a < apps_.size(); ++a) {
            walkSamplerPerApp_[a].tick(
                now_, static_cast<double>(walker_.activeWalksFor(a)));
        }
    }

    if (readySampler_.due(now_)) {
        double ready = 0.0;
        for (const auto &core : cores_)
            ready += core->readyWarps();
        readySampler_.tick(now_, ready / static_cast<double>(
                                             cores_.size()));
    }

    if (cfg_.mask.dramSched) {
        for (AppId a = 0; a < apps_.size(); ++a) {
            quota_.sample(a, walker_.activeWalksFor(a),
                          stalledAccesses_[a]);
        }
    }
}

void
Gpu::stageEpoch()
{
    if (now_ < nextEpoch_)
        return;
    nextEpoch_ += cfg_.mask.epochCycles;

    if (obsTrace_ != nullptr)
        obsEpochPre();

    for (AppId a = 0; a < apps_.size(); ++a) {
        tokens_.onEpoch(
            a, l2Tlb_.epochStatsFor(apps_[a].asid).missRate());
    }
    tokens_.epochComplete();
    l2Tlb_.resetEpochStats();
    l2Policy_.onEpoch();
    quota_.onEpoch();
    dram_.onEpoch();

    if (obsTrace_ != nullptr)
        obsEpochPost();
}

void
Gpu::tlbShootdown(Asid asid)
{
    if (obsTrace_ != nullptr &&
        obsTrace_->wants(obs::TraceCat::kShootdown)) {
        obsTrace_->instant(
            obs::TraceCat::kShootdown, "tlb_shootdown", 0, now_,
            {{"asid", static_cast<std::int64_t>(asid)}});
    }
    for (auto &core : cores_) {
        if (core->asid() == asid)
            core->l1Tlb().flushAsid(asid);
    }
    l2Tlb_.flushAsid(asid);
    // Section 5.2: the bypass cache is flushed whenever PTEs change.
    bypassCache_.flush();
    // The page walk cache holds raw PTE lines without ASID tags;
    // flush it conservatively.
    pwCache_.flush();
}

void
Gpu::switchAllCores(AppId app, Cycle switch_penalty)
{
    creditInstructions();
    ++switchSeed_;
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (!pendingSwitch_[c].pending)
            ++switchesInFlight_;
        pendingSwitch_[c] =
            PendingSwitch{true, app, now_ + switch_penalty};
        cores_[c]->startDrain();
    }
}

bool
Gpu::switchesPending() const
{
    for (const auto &sw : pendingSwitch_) {
        if (sw.pending)
            return true;
    }
    return false;
}

void
Gpu::stageSwitches()
{
    for (CoreId c = 0; c < cores_.size(); ++c) {
        PendingSwitch &sw = pendingSwitch_[c];
        if (!sw.pending || !cores_[c]->drained() ||
            now_ < sw.notBefore) {
            continue;
        }
        ShaderCore &core = *cores_[c];
        // A drained core must have no residual miss state: leaked L1
        // MSHR entries or parked translations would silently corrupt
        // the incoming app (drained() means outstanding == 0).
        SIM_CHECK_CTX(core.l1Mshr().size() == 0, "sim.gpu", now_,
                      "core switched apps with live L1 MSHR entries",
                      (CheckContext{.app = core.app()}));
        SIM_CHECK_CTX(coreTransWaiters_[c].empty(), "sim.gpu", now_,
                      "core switched apps with parked translation "
                      "waiters",
                      (CheckContext{.app = core.app()}));
        // Credit what the outgoing app executed on this core.
        appInstr_[core.app()] +=
            core.instructions() - coreInstrCredited_[c];
        coreInstrCredited_[c] = core.instructions();

        // Address-space change: flush this core's L1 TLB (Section
        // 5.1); assign() also cold-starts the L1 data cache.
        core.assign(sw.app, apps_[sw.app].asid, apps_[sw.app].bench,
                    apps_[sw.app].streams.get(),
                    c * cfg_.warpsPerCore,
                    cfg_.seed * 31 + c + switchSeed_ * 131071);
        coreAppIndex_[c] = static_cast<std::uint16_t>(c);
        sw.pending = false;
        --switchesInFlight_;
    }
}

// ---------------------------------------------------------------------
// Slots, stats
// ---------------------------------------------------------------------

std::uint32_t
Gpu::allocTransSlot(const StalledAccess &access, Asid asid, Vpn vpn,
                    AppId app)
{
    std::uint32_t slot;
    if (!freeTransSlots_.empty()) {
        slot = freeTransSlots_.back();
        freeTransSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(transSlots_.size());
        transSlots_.emplace_back();
    }
    transSlots_[slot] = TransSlot{access, asid, vpn, app, true};
    return slot;
}

void
Gpu::freeTransSlot(std::uint32_t slot)
{
    SIM_CHECK(transSlots_[slot].inUse, "sim.gpu", now_,
              "freed a translation slot not in use");
    transSlots_[slot].inUse = false;
    freeTransSlots_.push_back(slot);
}

void
Gpu::creditInstructions()
{
    for (CoreId c = 0; c < cores_.size(); ++c) {
        appInstr_[cores_[c]->app()] +=
            cores_[c]->instructions() - coreInstrCredited_[c];
        coreInstrCredited_[c] = cores_[c]->instructions();
    }
}

std::uint64_t
Gpu::appInstructions(AppId app)
{
    creditInstructions();
    return appInstr_[app];
}

void
Gpu::resetStats()
{
    statsStart_ = now_;
    std::fill(appInstr_.begin(), appInstr_.end(), 0);
    for (CoreId c = 0; c < cores_.size(); ++c) {
        cores_[c]->resetStats();
        coreInstrCredited_[c] = 0;
    }
    l2Tlb_.resetStats();
    bypassCache_.resetStats();
    pwStats_.reset();
    for (auto &hm : l2Stats_)
        hm.reset();
    for (auto &hm : l2StatsPerLevel_)
        hm.reset();
    dram_.resetStats();
    walker_.resetStats();
    tlbMshr_.resetStats();
    tlbMissLatency_.reset();
    warpsPerMiss_.reset();
    for (auto &stat : warpsPerMissPerApp_)
        stat.reset();
    walkSampler_.reset();
    for (auto &sampler : walkSamplerPerApp_)
        sampler.reset();
    readySampler_.reset();
    watchdog_.resetStats();
    wallSeconds_ = 0.0;
    ckptWriteSeconds_ = 0.0;
    ckptBytes_ = 0;
    ckptWrites_ = 0;
    allocsAtReset_ = pool_.totalAllocated();
    skippedCycles_ = 0;
    skipWindows_ = 0;
    std::fill(std::begin(skipWindowLog2_), std::end(skipWindowLog2_),
              std::uint64_t{0});
    dataRetryProbes_ = 0;
    tlbRetryProbes_ = 0;
    std::fill(std::begin(stageSeconds_), std::end(stageSeconds_), 0.0);
    std::fill(std::begin(stageCalls_), std::end(stageCalls_),
              std::uint64_t{0});
    // The reset zeroed most cumulative counters the gauges take
    // deltas of; re-capture the baselines from the post-reset values.
    if (obsTs_ != nullptr) {
        obsLastSample_ = now_;
        obsCaptureBaseline();
    }
}

GpuStats
Gpu::collect()
{
    creditInstructions();

    GpuStats out;
    out.cycles = now_ - statsStart_;
    out.instructions = appInstr_;
    out.ipc.resize(apps_.size());
    for (AppId a = 0; a < apps_.size(); ++a) {
        out.ipc[a] = safeDiv(static_cast<double>(appInstr_[a]),
                             static_cast<double>(out.cycles));
    }

    for (auto &core : cores_) {
        out.l1Tlb += core->l1Tlb().stats();
        out.l1d += core->l1dStats();
        out.warpStallCycles += core->stallCycles();
    }
    out.l2Tlb = l2Tlb_.stats();
    for (AppId a = 0; a < apps_.size(); ++a)
        out.l2TlbPerApp.push_back(l2Tlb_.statsFor(apps_[a].asid));
    out.bypassCache = bypassCache_.stats();
    out.pwCache = pwStats_;
    out.l2Cache[0] = l2Stats_[0];
    out.l2Cache[1] = l2Stats_[1];
    for (int lvl = 0; lvl < 5; ++lvl)
        out.l2CachePerLevel[lvl] = l2StatsPerLevel_[lvl];

    out.dram = dram_.aggregateStats();
    out.walks = walker_.walksStarted();
    out.walkLatency = walker_.walkLatency();
    out.tlbMissLatency = tlbMissLatency_;
    out.concurrentWalks = walkSampler_.stat();
    for (auto &sampler : walkSamplerPerApp_)
        out.concurrentWalksPerApp.push_back(sampler.stat());
    out.warpsPerMiss = warpsPerMiss_;
    out.warpsPerMissPerApp = warpsPerMissPerApp_;
    out.readyWarpsPerCore = readySampler_.stat();

    for (AppId a = 0; a < apps_.size(); ++a)
        out.tokens.push_back(tokens_.tokens(a));
    out.l2Bypasses = l2Policy_.bypasses();
    out.poolPeakLive = pool_.peakLive();
    out.poolCapacity = pool_.capacity();
    out.wallSeconds = wallSeconds_;
    out.ckptWriteSeconds = ckptWriteSeconds_;
    out.ckptBytes = ckptBytes_;
    out.ckptWrites = ckptWrites_;
    out.requests = pool_.totalAllocated() - allocsAtReset_;
    out.skippedCycles = skippedCycles_;
    out.skipWindows = skipWindows_;
    out.skipWindowLog2.assign(std::begin(skipWindowLog2_),
                              std::end(skipWindowLog2_));
    out.dramSchedPicks = dram_.schedPicks();
    out.dramSchedBanksScanned = dram_.schedUnitsScanned();
    out.dataRetryProbes = dataRetryProbes_;
    out.tlbRetryProbes = tlbRetryProbes_;
    if (profileStages_) {
        out.stageSeconds.assign(std::begin(stageSeconds_),
                                std::end(stageSeconds_));
        out.stageCalls.assign(std::begin(stageCalls_),
                              std::end(stageCalls_));
    }
    out.watchdogSweeps = watchdog_.sweeps();
    out.watchdogMaxAgeSeen = watchdog_.maxAgeSeen();
    out.faultsInjected =
        faults_.delaysInjected() + faults_.dropsInjected() +
        faults_.shootdownsInjected() + faults_.portStallsInjected();
    return out;
}

// ---------------------------------------------------------------------
// Observability (DESIGN.md §13)
// ---------------------------------------------------------------------
//
// Everything below is observation-only: it reads the simulated
// machine, never feeds back into it, is never serialized, and its
// knobs (resolved from the environment, or from the sweep runner's
// per-job thread-local override, at construction) take no part in
// configFingerprint. The sampler is deliberately NOT an event source
// for nextEventCycle(): bounding skip windows at sample due points
// would change the skip statistics inside GpuStats and break the
// obs-on/off byte-identity guarantee — skipTo() instead advances the
// quota accumulators in segments through each due point.

void
Gpu::obsInit()
{
    const obs::ObsOptions opts = obs::resolveObsOptions();
    obsStageProfilePath_ = opts.stageProfilePath;

    if (opts.traceOn()) {
        obsTrace_ = std::make_unique<obs::TraceWriter>(
            opts.tracePath, opts.traceCats, opts.traceRingEvents);
    }

    if (!opts.timeseriesOn())
        return;

    // Column registry. obsSampleAt() fills obsVals_ in EXACTLY this
    // order — keep the two in sync.
    obs::SeriesRegistry reg;
    for (AppId a = 0; a < apps_.size(); ++a) {
        const int app = static_cast<int>(a);
        const std::string sfx = ".app" + std::to_string(app);
        reg.add({"l1_tlb_hit_rate" + sfx, "ratio", app, "gauge",
                 "per-interval L1 TLB hit rate over the app's cores"});
        reg.add({"l2_tlb_hit_rate" + sfx, "ratio", app, "gauge",
                 "per-interval shared L2 TLB hit rate"});
        reg.add({"tokens" + sfx, "count", app, "gauge",
                 "TLB-Fill Tokens held (Section 5.2)"});
        reg.add({"active_walks" + sfx, "count", app, "gauge",
                 "page walks in flight in the shared walker"});
        reg.add({"silver_quota" + sfx, "count", app, "gauge",
                 "Equation 1 thresh_i Silver-queue quota"});
        reg.add({"quota_pressure" + sfx, "ratio", app, "gauge",
                 "app share of the Equation 1 weight sum"});
        reg.add({"ipc" + sfx, "ipc", app, "gauge",
                 "instructions per cycle over the interval"});
    }
    reg.add({"walk_start_queue", "count", -1, "gauge",
             "walks waiting for a free walker thread"});
    reg.add({"l2_bypass_rate", "ratio", -1, "gauge",
             "bypassed fraction of walk-level L2 lookups (interval)"});
    for (std::uint32_t lvl = 1; lvl <= L2BypassPolicy::kMaxLevel;
         ++lvl) {
        reg.add({"l2_bypass_on_l" + std::to_string(lvl), "bool", -1,
                 "gauge",
                 "walk level currently bypasses the shared L2"});
    }
    for (std::uint32_t c = 0; c < dram_.numChannels(); ++c) {
        const std::string sfx = ".ch" + std::to_string(c);
        reg.add({"dram_queue_depth" + sfx, "count", -1, "gauge",
                 "requests queued in the channel's buffers"});
        reg.add({"dram_row_hit_rate" + sfx, "ratio", -1, "gauge",
                 "row-buffer hit fraction over the interval"});
        reg.add({"dram_issue_golden" + sfx, "count", -1, "delta",
                 "requests issued from the Golden queue (interval)"});
        reg.add({"dram_issue_silver" + sfx, "count", -1, "delta",
                 "requests issued from the Silver queue (interval)"});
        reg.add({"dram_issue_normal" + sfx, "count", -1, "delta",
                 "requests issued from the Normal queue (interval)"});
    }

    obsVals_.assign(reg.size(), 0.0);
    obsTs_ = std::make_unique<obs::TimeseriesWriter>(
        opts.timeseriesPath, std::move(reg), opts.timeseriesInterval,
        opts.timeseriesRingRows);
    obsLastSample_ = now_;
    obsCaptureBaseline();
}

namespace {

/** Counter delta clamped at zero: epoch decay (L2 bypass stats) can
 *  shrink a cumulative counter between samples. */
double
obsDelta(std::uint64_t cur, std::uint64_t prev)
{
    return cur >= prev ? static_cast<double>(cur - prev) : 0.0;
}

} // namespace

void
Gpu::obsCaptureBaseline()
{
    if (obsTs_ == nullptr)
        return;
    creditInstructions();
    ObsBaseline &p = obsPrev_;
    const std::size_t num_apps = apps_.size();
    p.l1Hits.assign(num_apps, 0);
    p.l1Misses.assign(num_apps, 0);
    p.l2Hits.assign(num_apps, 0);
    p.l2Misses.assign(num_apps, 0);
    p.instr.assign(num_apps, 0);
    for (AppId a = 0; a < num_apps; ++a) {
        for (const CoreId c : apps_[a].cores) {
            const HitMiss &hm = cores_[c]->l1Tlb().stats();
            p.l1Hits[a] += hm.hits;
            p.l1Misses[a] += hm.misses;
        }
        const HitMiss &l2 = l2Tlb_.statsFor(apps_[a].asid);
        p.l2Hits[a] = l2.hits;
        p.l2Misses[a] = l2.misses;
        p.instr[a] = appInstr_[a];
    }
    const std::uint32_t channels = dram_.numChannels();
    p.rowHits.assign(channels, 0);
    p.rowAcc.assign(channels, 0);
    for (auto &q : p.issued)
        q.assign(channels, 0);
    for (std::uint32_t c = 0; c < channels; ++c) {
        const DramChannelStats &s = dram_.channel(c).stats();
        p.rowHits[c] = s.rowHits;
        p.rowAcc[c] = s.rowHits + s.rowMisses + s.rowConflicts;
        for (std::size_t q = 0; q < 3; ++q)
            p.issued[q][c] = dram_.channel(c).servicedFromQueue(q);
    }
    p.bypasses = l2Policy_.bypasses();
    p.walkAcc = 0;
    for (std::uint32_t lvl = 1; lvl <= L2BypassPolicy::kMaxLevel;
         ++lvl) {
        p.walkAcc += l2Policy_
                         .stats(static_cast<std::uint8_t>(lvl))
                         .accesses();
    }
}

void
Gpu::obsSampleAt(Cycle cycle)
{
    creditInstructions();
    ObsBaseline &p = obsPrev_;
    const Cycle dt = cycle - obsLastSample_;
    std::size_t i = 0;

    for (AppId a = 0; a < apps_.size(); ++a) {
        std::uint64_t h = 0;
        std::uint64_t m = 0;
        for (const CoreId c : apps_[a].cores) {
            const HitMiss &hm = cores_[c]->l1Tlb().stats();
            h += hm.hits;
            m += hm.misses;
        }
        const double dl1h = obsDelta(h, p.l1Hits[a]);
        const double dl1m = obsDelta(m, p.l1Misses[a]);
        obsVals_[i++] = safeDiv(dl1h, dl1h + dl1m);
        p.l1Hits[a] = h;
        p.l1Misses[a] = m;

        const HitMiss &l2 = l2Tlb_.statsFor(apps_[a].asid);
        const double dl2h = obsDelta(l2.hits, p.l2Hits[a]);
        const double dl2m = obsDelta(l2.misses, p.l2Misses[a]);
        obsVals_[i++] = safeDiv(dl2h, dl2h + dl2m);
        p.l2Hits[a] = l2.hits;
        p.l2Misses[a] = l2.misses;

        obsVals_[i++] = static_cast<double>(tokens_.tokens(a));
        obsVals_[i++] =
            static_cast<double>(walker_.activeWalksFor(a));
        obsVals_[i++] = static_cast<double>(quota_.silverQuota(a));
        obsVals_[i++] = quota_.pressure(a);

        obsVals_[i++] = safeDiv(obsDelta(appInstr_[a], p.instr[a]),
                                static_cast<double>(dt));
        p.instr[a] = appInstr_[a];
    }

    obsVals_[i++] = static_cast<double>(walkStartQueue_.size());

    std::uint64_t walk_acc = 0;
    for (std::uint32_t lvl = 1; lvl <= L2BypassPolicy::kMaxLevel;
         ++lvl) {
        walk_acc += l2Policy_
                        .stats(static_cast<std::uint8_t>(lvl))
                        .accesses();
    }
    const std::uint64_t byp = l2Policy_.bypasses();
    // Bypassed lookups never probe the L2, so the stats denominators
    // exclude them; the fraction is bypasses / (lookups + bypasses).
    const double dbyp = obsDelta(byp, p.bypasses);
    const double dwalk = obsDelta(walk_acc, p.walkAcc);
    obsVals_[i++] = safeDiv(dbyp, dwalk + dbyp);
    p.bypasses = byp;
    p.walkAcc = walk_acc;

    // The live bypass decision is hitRate(level) < hitRate(0),
    // computed WITHOUT shouldBypass(): that call advances the
    // sampling-probe countdown, which is serialized machine state.
    const double data_rate = l2Policy_.hitRate(0);
    for (std::uint32_t lvl = 1; lvl <= L2BypassPolicy::kMaxLevel;
         ++lvl) {
        obsVals_[i++] =
            l2Policy_.hitRate(static_cast<std::uint8_t>(lvl)) <
                    data_rate
                ? 1.0
                : 0.0;
    }

    for (std::uint32_t c = 0; c < dram_.numChannels(); ++c) {
        const DramChannel &ch = dram_.channel(c);
        obsVals_[i++] = static_cast<double>(ch.queuedRequests());
        const DramChannelStats &s = ch.stats();
        const std::uint64_t acc =
            s.rowHits + s.rowMisses + s.rowConflicts;
        obsVals_[i++] = safeDiv(obsDelta(s.rowHits, p.rowHits[c]),
                                obsDelta(acc, p.rowAcc[c]));
        p.rowHits[c] = s.rowHits;
        p.rowAcc[c] = acc;
        for (std::size_t q = 0; q < 3; ++q) {
            const std::uint64_t n = ch.servicedFromQueue(q);
            obsVals_[i++] = obsDelta(n, p.issued[q][c]);
            p.issued[q][c] = n;
        }
    }

    obsLastSample_ = cycle;
    obsTs_->record(cycle, obsVals_);
}

void
Gpu::obsEpochPre()
{
    obsEpochTokens_.resize(apps_.size());
    for (AppId a = 0; a < apps_.size(); ++a)
        obsEpochTokens_[a] = tokens_.tokens(a);
}

void
Gpu::obsEpochPost()
{
    if (obsTrace_->wants(obs::TraceCat::kQuota)) {
        obsTrace_->instant(
            obs::TraceCat::kQuota, "epoch", 0, now_,
            {{"epoch",
              static_cast<std::int64_t>(tokens_.epochsDone())}});
    }
    if (obsTrace_->wants(obs::TraceCat::kTlb)) {
        for (AppId a = 0; a < apps_.size(); ++a) {
            const std::uint32_t cur = tokens_.tokens(a);
            if (cur == obsEpochTokens_[a])
                continue;
            obsTrace_->instant(
                obs::TraceCat::kTlb, "tokens",
                static_cast<std::uint32_t>(a) + 1, now_,
                {{"tokens", static_cast<std::int64_t>(cur)},
                 {"dir", tokens_.lastDirection(a)}});
        }
    }
    if (obsTrace_->wants(obs::TraceCat::kWalk)) {
        // Same countdown-free decision readout as obsSampleAt().
        const double data_rate = l2Policy_.hitRate(0);
        for (std::uint32_t lvl = 1; lvl <= L2BypassPolicy::kMaxLevel;
             ++lvl) {
            const bool on =
                l2Policy_.hitRate(static_cast<std::uint8_t>(lvl)) <
                data_rate;
            if (on == obsBypassOn_[lvl])
                continue;
            obsBypassOn_[lvl] = on;
            obsTrace_->instant(
                obs::TraceCat::kWalk, "bypass_flip", 0, now_,
                {{"level", static_cast<std::int64_t>(lvl)},
                 {"on", on ? 1 : 0}});
        }
    }
}

void
Gpu::obsFlush()
{
    if (obsTs_ != nullptr)
        obsTs_->flush();
    if (obsTrace_ != nullptr)
        obsTrace_->flush();
}

void
Gpu::obsFinish()
{
    if (obsTs_ != nullptr)
        obsTs_->flush();
    if (obsTrace_ != nullptr)
        obsTrace_->close();
    if (profileStages_ && !obsStageProfilePath_.empty())
        obsWriteStageProfile();
}

void
Gpu::obsWriteStageProfile()
{
    // Stage times are host wall-clock: they share the registry
    // schema (DESIGN.md §13) but never a file with the deterministic
    // timeseries. Interval 0 = aperiodic; one row at shutdown.
    obs::SeriesRegistry reg;
    for (std::size_t s = 0; s < kNumStages; ++s) {
        reg.add({std::string("stage_seconds.") + stageName(s),
                 "seconds", -1, "counter",
                 "wall-clock spent in the tickOne stage"});
    }
    for (std::size_t s = 0; s < kNumStages; ++s) {
        reg.add({std::string("stage_calls.") + stageName(s), "count",
                 -1, "counter", "invocations of the tickOne stage"});
    }
    obs::TimeseriesWriter w(obsStageProfilePath_, std::move(reg), 0,
                            4, "mask-stage-profile");
    std::vector<double> vals;
    vals.reserve(2 * kNumStages);
    for (std::size_t s = 0; s < kNumStages; ++s)
        vals.push_back(stageSeconds_[s]);
    for (std::size_t s = 0; s < kNumStages; ++s)
        vals.push_back(static_cast<double>(stageCalls_[s]));
    w.record(now_, vals);
}

// ---------------------------------------------------------------------
// Checkpoint/restore (DESIGN.md §11)
// ---------------------------------------------------------------------

namespace {

void
putAccess(StateWriter &w, const StalledAccess &a)
{
    w.u(a.vaddr);
    w.u(a.core);
    w.u(a.warp);
    w.u(a.issueCycle);
}

void
getAccess(StateReader &r, StalledAccess &a)
{
    a.vaddr = r.u();
    a.core = static_cast<CoreId>(r.u());
    a.warp = static_cast<WarpId>(r.u());
    a.issueCycle = r.u();
}

} // namespace

void
Gpu::setCheckpointHook(Cycle interval, std::function<void(Gpu &)> fn)
{
    ckptInterval_ = interval;
    ckptFn_ = std::move(fn);
    nextCkpt_ = (interval == 0 || !ckptFn_) ? kNeverCycle
                                            : now_ + interval;
}

void
Gpu::maybeCheckpoint()
{
    // A skip window can cross several interval boundaries at once;
    // fire one checkpoint per crossing batch, never retroactively.
    while (nextCkpt_ <= now_)
        nextCkpt_ += ckptInterval_;
    if (!ckptFn_)
        return;
    const auto t0 = std::chrono::steady_clock::now();
    ckptFn_(*this);
    ckptWriteSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    ++ckptWrites_;
}

void
Gpu::serialize(StateWriter &w) const
{
    w.tag("gpu");
    w.u(now_);
    w.u(statsStart_);
    w.u(snapshotCookie_);
    w.u(nextEpoch_);
    w.u(switchSeed_);
    w.u(allocsAtReset_);

    // Per-app stream progress; benchmark params and core lists are
    // reconstructed from the (fingerprint-checked) config.
    w.tag("apps");
    w.u(apps_.size());
    for (const AppContext &app : apps_) {
        w.u(app.asid);
        app.streams->serialize(w);
    }

    frames_.serialize(w);
    w.tag("pts");
    for (const auto &pt : pageTables_)
        pt->serialize(w);

    pool_.serialize(w);

    w.tag("cores");
    w.u(cores_.size());
    for (const auto &core : cores_)
        core->serialize(w);
    putUintSeq(w, coreAppIndex_);
    putUintSeq(w, coreInstrCredited_);
    putUintSeq(w, appInstr_);

    // Shared translation structures.
    l2Tlb_.serialize(w);
    l2TlbPipe_.serialize(w);
    putUintSeq(w, l2TlbInput_);
    w.tag("slots");
    putSeq(w, transSlots_, [](StateWriter &sw, const TransSlot &s) {
        putAccess(sw, s.access);
        sw.u(s.asid);
        sw.u(s.vpn);
        sw.u(s.app);
        sw.b(s.inUse);
    });
    putUintSeq(w, freeTransSlots_);
    putUintSeq(w, tlbMissRetry_);
    tlbMshr_.serialize(w);
    putUintSeq(w, walkStartQueue_);
    walker_.serialize(w);

    // Page walk cache path (PwCache baseline).
    pwCache_.serialize(w);
    pwCachePipe_.serialize(w);
    putUintSeq(w, pwInput_);
    pwStats_.serialize(w);

    // Shared L2 data cache.
    l2Cache_.serialize(w);
    l2Pipe_.serialize(w);
    w.tag("l2in");
    w.u(l2Input_.size());
    for (const auto &q : l2Input_)
        putUintSeq(w, q);
    w.u(l2Work_);
    l2Mshr_.serialize(w);
    for (const HitMiss &hm : l2Stats_)
        hm.serialize(w);
    for (const HitMiss &hm : l2StatsPerLevel_)
        hm.serialize(w);

    // DRAM.
    dram_.serialize(w);
    putUintSeq(w, dramRetry_);

    // Hardening state.
    watchdog_.serialize(w);
    faults_.serialize(w);
    w.tag("delayed");
    putSeq(w, delayedResponses_,
           [](StateWriter &sw, const std::pair<Cycle, ReqId> &e) {
               sw.u(e.first);
               sw.u(e.second);
           });
    putSeq(w, fetchRetry_,
           [](StateWriter &sw, const std::pair<Cycle, WalkId> &e) {
               sw.u(e.first);
               sw.u(e.second);
           });

    // MASK mechanisms.
    tokens_.serialize(w);
    bypassCache_.serialize(w);
    l2Policy_.serialize(w);
    quota_.serialize(w);

    // Stats plumbing.
    putUintSeq(w, stalledAccesses_);
    warpsPerMiss_.serialize(w);
    w.tag("wpmapp");
    w.u(warpsPerMissPerApp_.size());
    for (const RunningStat &st : warpsPerMissPerApp_)
        st.serialize(w);
    tlbMissLatency_.serialize(w);
    walkSampler_.serialize(w);
    w.tag("wsapp");
    w.u(walkSamplerPerApp_.size());
    for (const IntervalSampler &sm : walkSamplerPerApp_)
        sm.serialize(w);
    readySampler_.serialize(w);

    // Time-multiplex switch machinery.
    w.tag("switch");
    putSeq(w, pendingSwitch_,
           [](StateWriter &sw, const PendingSwitch &s) {
               sw.b(s.pending);
               sw.u(s.app);
               sw.u(s.notBefore);
           });

    // Retry parking and event-driven wake flags. The per-core indexed
    // queues flatten back to global arrival order, byte-identical to
    // the single-queue format they replaced; sequence numbers, key
    // chains and the merge-eligibility sets are derived state and are
    // not written (DESIGN.md §12).
    w.tag("retry");
    std::vector<const DataRetryQueue::Entry *> flat_retries;
    flat_retries.reserve(dataRetryCount_);
    for (const DataRetryQueue &q : dataRetryByCore_)
        q.forEachSeq([&flat_retries](const DataRetryQueue::Entry &e) {
            flat_retries.push_back(&e);
        });
    std::sort(flat_retries.begin(), flat_retries.end(),
              [](const DataRetryQueue::Entry *a,
                 const DataRetryQueue::Entry *b) {
                  return a->seq < b->seq;
              });
    w.u(flat_retries.size());
    for (const DataRetryQueue::Entry *e : flat_retries) {
        putAccess(w, e->access);
        w.u(e->app);
        w.u(e->pfn);
    }
    putUintSeq(w, coreDataWake_);
    w.b(anyCoreDataWake_);
    w.b(tlbRetryWake_);

    // Per-core translation MSHRs (probe layout is history-dependent,
    // so the flat tables snapshot their raw slot arrays).
    w.tag("waiters");
    w.u(coreTransWaiters_.size());
    for (const auto &table : coreTransWaiters_) {
        table.serializeSlots(
            w,
            [](StateWriter &sw, const std::vector<StalledAccess> &v) {
                putSeq(sw, v, putAccess);
            });
    }

    // Event-driven loop bookkeeping: the skip stats are reported by
    // collect(), so they must survive a restore bit-exactly too.
    w.tag("skip");
    w.u(nextSkipProbe_);
    w.u(skippedCycles_);
    w.u(skipWindows_);
    for (const std::uint64_t v : skipWindowLog2_)
        w.u(v);
}

void
Gpu::deserialize(StateReader &r)
{
    r.tag("gpu");
    now_ = r.u();
    statsStart_ = r.u();
    snapshotCookie_ = r.u();
    nextEpoch_ = r.u();
    switchSeed_ = r.u();
    allocsAtReset_ = r.u();

    r.tag("apps");
    if (r.u() != apps_.size())
        r.fail("snapshot app count differs from config");
    for (AppContext &app : apps_) {
        if (r.u() != app.asid)
            r.fail("snapshot ASID order differs from config");
        app.streams->deserialize(r);
    }

    frames_.deserialize(r);
    r.tag("pts");
    for (const auto &pt : pageTables_)
        pt->deserialize(r);

    pool_.deserialize(r);
    // Every queue below holds ReqIds into the pool; a corrupted id
    // must fail validation here, never dereference garbage later.
    const auto check_req = [&](ReqId id) {
        if (id >= pool_.capacity() || !pool_[id].live)
            r.fail("queued request id " + std::to_string(id) +
                   " out of range or dead");
    };

    r.tag("cores");
    if (r.u() != cores_.size())
        r.fail("snapshot core count differs from config");
    for (auto &core : cores_)
        core->deserialize(r);
    getUintSeq(r, coreAppIndex_);
    getUintSeq(r, coreInstrCredited_);
    getUintSeq(r, appInstr_);
    if (coreAppIndex_.size() != cores_.size() ||
        coreInstrCredited_.size() != cores_.size() ||
        appInstr_.size() != apps_.size())
        r.fail("per-core/per-app accounting vector size mismatch");

    // Re-attach the benchmark/stream pointers the codec cannot carry.
    for (auto &core : cores_) {
        if (!core->needsRebind())
            continue;
        const AppId app = core->app();
        if (app >= apps_.size())
            r.fail("restored core references an unknown app");
        core->rebindAfterRestore(apps_[app].bench,
                                 apps_[app].streams.get());
    }

    l2Tlb_.deserialize(r);
    l2TlbPipe_.deserialize(r);
    getUintSeq(r, l2TlbInput_);
    r.tag("slots");
    getSeq(r, transSlots_, [](StateReader &sr, TransSlot &s) {
        getAccess(sr, s.access);
        s.asid = static_cast<Asid>(sr.u());
        s.vpn = sr.u();
        s.app = static_cast<AppId>(sr.u());
        s.inUse = sr.b();
    });
    getUintSeq(r, freeTransSlots_);
    std::size_t slots_in_use = 0;
    for (const TransSlot &s : transSlots_)
        slots_in_use += s.inUse ? 1 : 0;
    if (slots_in_use + freeTransSlots_.size() != transSlots_.size())
        r.fail("translation-slot free list disagrees with live flags");
    for (const std::uint32_t slot : freeTransSlots_) {
        if (slot >= transSlots_.size() || transSlots_[slot].inUse)
            r.fail("free translation slot out of range or in use");
    }
    getUintSeq(r, tlbMissRetry_);
    for (const std::uint32_t slot : tlbMissRetry_) {
        if (slot >= transSlots_.size() || !transSlots_[slot].inUse)
            r.fail("parked translation slot out of range or free");
    }
    for (const std::uint32_t slot : l2TlbInput_) {
        if (slot >= transSlots_.size() || !transSlots_[slot].inUse)
            r.fail("L2 TLB input slot out of range or free");
    }
    tlbMshr_.deserialize(r);
    getUintSeq(r, walkStartQueue_);
    walker_.deserialize(r);

    // Rebuild the parked-translation index (derived state, never
    // serialized) from the restored retry deque and MSHR table.
    parkedTransKeys_.clear();
    parkedMergeEligible_ = 0;
    for (const std::uint32_t slot : tlbMissRetry_) {
        const TransSlot &s = transSlots_[slot];
        const std::uint64_t key = tlbKey(s.asid, s.vpn);
        if (std::uint32_t *parked = parkedTransKeys_.find(key))
            ++*parked;
        else
            parkedTransKeys_.insert(key, 1);
        if (tlbMshr_.has(s.asid, s.vpn))
            ++parkedMergeEligible_;
    }

    pwCache_.deserialize(r);
    pwCachePipe_.deserialize(r);
    getUintSeq(r, pwInput_);
    pwStats_.deserialize(r);
    for (const ReqId id : pwInput_)
        check_req(id);

    l2Cache_.deserialize(r);
    l2Pipe_.deserialize(r);
    r.tag("l2in");
    if (r.u() != l2Input_.size())
        r.fail("snapshot L2 bank count differs from config");
    for (auto &q : l2Input_) {
        getUintSeq(r, q);
        for (const ReqId id : q)
            check_req(id);
    }
    l2Work_ = r.u();
    l2Mshr_.deserialize(r);
    for (HitMiss &hm : l2Stats_)
        hm.deserialize(r);
    for (HitMiss &hm : l2StatsPerLevel_)
        hm.deserialize(r);

    dram_.deserialize(r);
    getUintSeq(r, dramRetry_);
    for (const ReqId id : dramRetry_)
        check_req(id);

    watchdog_.deserialize(r);
    faults_.deserialize(r);
    r.tag("delayed");
    getSeq(r, delayedResponses_,
           [&](StateReader &sr, std::pair<Cycle, ReqId> &e) {
               e.first = sr.u();
               e.second = static_cast<ReqId>(sr.u());
               check_req(e.second);
           });
    getSeq(r, fetchRetry_,
           [](StateReader &sr, std::pair<Cycle, WalkId> &e) {
               e.first = sr.u();
               e.second = static_cast<WalkId>(sr.u());
           });

    tokens_.deserialize(r);
    bypassCache_.deserialize(r);
    l2Policy_.deserialize(r);
    quota_.deserialize(r);

    getUintSeq(r, stalledAccesses_);
    if (stalledAccesses_.size() != apps_.size())
        r.fail("stalled-access vector size differs from app count");
    warpsPerMiss_.deserialize(r);
    r.tag("wpmapp");
    if (r.u() != warpsPerMissPerApp_.size())
        r.fail("per-app stat count differs from config");
    for (RunningStat &st : warpsPerMissPerApp_)
        st.deserialize(r);
    tlbMissLatency_.deserialize(r);
    walkSampler_.deserialize(r);
    r.tag("wsapp");
    if (r.u() != walkSamplerPerApp_.size())
        r.fail("per-app sampler count differs from config");
    for (IntervalSampler &sm : walkSamplerPerApp_)
        sm.deserialize(r);
    readySampler_.deserialize(r);

    r.tag("switch");
    getSeq(r, pendingSwitch_, [](StateReader &sr, PendingSwitch &s) {
        s.pending = sr.b();
        s.app = static_cast<AppId>(sr.u());
        s.notBefore = sr.u();
    });
    if (pendingSwitch_.size() != cores_.size())
        r.fail("pending-switch vector size differs from core count");
    switchesInFlight_ = 0;
    for (const PendingSwitch &s : pendingSwitch_) {
        if (!s.pending)
            continue;
        if (s.app >= apps_.size())
            r.fail("pending switch targets an unknown app");
        ++switchesInFlight_;
    }

    r.tag("retry");
    std::deque<DataRetry> flat_retries;
    getSeq(r, flat_retries, [&](StateReader &sr, DataRetry &d) {
        getAccess(sr, d.access);
        d.app = static_cast<AppId>(sr.u());
        d.pfn = static_cast<Pfn>(sr.u());
        if (d.access.core >= cores_.size() || d.app >= apps_.size())
            r.fail("parked data retry references unknown core/app");
    });
    // Re-shard per core; fresh 0..n-1 sequence numbers reproduce the
    // flattened arrival order exactly (only relative order matters),
    // and re-parking rebuilds the key chains. The merge-eligibility
    // sets are derived from the restored L1 MSHR tables below.
    for (auto &q : dataRetryByCore_)
        q.clear();
    for (auto &t : dataMergeKeys_)
        t.clear();
    for (auto &v : coreFilledKeys_)
        v.clear();
    dataRetrySeq_ = 0;
    dataRetryCount_ = flat_retries.size();
    for (const DataRetry &d : flat_retries)
        dataRetryByCore_[d.access.core].park(
            d.access, d.app, d.pfn, dataRetrySeq_++,
            l2CacheKey(dataPaddr(d.access, d.pfn)));
    for (CoreId c = 0; c < cores_.size(); ++c) {
        const MshrTable &mshr = cores_[c]->l1Mshr();
        dataRetryByCore_[c].forEachSeq(
            [&](const DataRetryQueue::Entry &e) {
                if (mshr.has(e.key) &&
                    !dataMergeKeys_[c].contains(e.key))
                    dataMergeKeys_[c].insert(e.key, 1);
            });
    }
    getUintSeq(r, coreDataWake_);
    if (coreDataWake_.size() != cores_.size())
        r.fail("core wake vector size differs from core count");
    anyCoreDataWake_ = r.b();
    tlbRetryWake_ = r.b();

    r.tag("waiters");
    if (r.u() != coreTransWaiters_.size())
        r.fail("waiter table count differs from core count");
    for (auto &table : coreTransWaiters_) {
        table.deserializeSlots(
            r, [](StateReader &sr, std::vector<StalledAccess> &v) {
                getSeq(sr, v, getAccess);
            });
    }

    r.tag("skip");
    nextSkipProbe_ = r.u();
    skippedCycles_ = r.u();
    skipWindows_ = r.u();
    for (std::uint64_t &v : skipWindowLog2_)
        v = r.u();

    r.finish();

    // Host-side checkpoint cadence restarts relative to the restored
    // cycle (policy state is deliberately not part of the snapshot).
    if (ckptInterval_ != 0 && ckptFn_)
        nextCkpt_ = now_ + ckptInterval_;

    // Observability state is host-side and never serialized: re-arm
    // the sampler at the smallest interval multiple >= the restored
    // cycle (the saving run stops before ticking it, so a save/resume
    // pair emits each boundary row exactly once) and re-capture the
    // delta baselines from the restored counters.
    if (obsTs_ != nullptr) {
        obsTs_->rearm(now_);
        obsLastSample_ = now_;
        obsCaptureBaseline();
    }
}

} // namespace mask
