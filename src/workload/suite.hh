/**
 * @file
 * The benchmark suite: synthetic models of the 27 Table 2 benchmarks
 * (plus JPEG/LIB/SPMV from Figs. 5-6), and the 35 two-application
 * workloads of the paper's evaluation (Fig. 8 lists them), grouped by
 * the n-HMR category of Section 6.
 */

#ifndef MASK_WORKLOAD_SUITE_HH
#define MASK_WORKLOAD_SUITE_HH

#include <string>
#include <string_view>
#include <vector>

#include "workload/generator.hh"

namespace mask {

/** All modeled benchmarks (30 entries). */
const std::vector<BenchmarkParams> &benchmarkSuite();

/** Look up a benchmark by name; aborts on unknown names. */
const BenchmarkParams &findBenchmark(std::string_view name);

/** One two-application workload. */
struct WorkloadPair
{
    const char *first;
    const char *second;
    /** Applications with both L1 and L2 TLB miss rates high (0-2). */
    int hmr;

    std::string
    name() const
    {
        return std::string(first) + "_" + second;
    }
};

/** The 35 evaluated pairs, in the paper's Fig. 8 order. */
const std::vector<WorkloadPair> &workloadPairs();

/** Pairs in one n-HMR category (n = 0, 1, or 2). */
std::vector<WorkloadPair> pairsWithHmr(int hmr);

/** The four representative pairs of Fig. 7. */
const std::vector<WorkloadPair> &fig7Pairs();

} // namespace mask

#endif // MASK_WORKLOAD_SUITE_HH
