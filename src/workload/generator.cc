#include "workload/generator.hh"

#include <algorithm>

namespace mask {

namespace {

/** SplitMix64 finalizer, used to derive shared gather pages. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Pick the next page for a warp per the benchmark's mixture. */
Vpn
nextPage(const BenchmarkParams &params, Rng &rng, std::uint32_t group,
         std::uint64_t pos)
{
    if (params.hotPages > 0 && rng.chance(params.hotFraction))
        return rng.below(params.hotPages);

    const std::uint64_t cold =
        std::max<std::uint32_t>(1, params.coldPages);
    const std::uint64_t stride =
        std::max<std::uint32_t>(1, params.pageStride);
    const std::uint64_t base =
        (std::uint64_t{group} * 0x9E3779B1ull) % cold;

    std::uint64_t offset;
    if (params.randWindow == 0 || rng.chance(params.streamFraction)) {
        offset = (base + pos * stride) % cold;
    } else {
        // Gather: one of the K random pages this stream's warps all
        // target at this head position. Uniform over the cold set, so
        // the translation is fresh (TLB and walk-cache cold) yet
        // shared by the whole stream.
        const std::uint64_t j = rng.below(params.randWindow);
        offset = mix64((std::uint64_t{group} << 40) ^ (pos << 8) ^ j) %
                 cold;
    }
    return params.hotPages + offset;
}

} // namespace

Addr
nextVaddr(const BenchmarkParams &params, WarpMemState &state, Rng &rng,
          std::uint32_t warp_index, StreamTable &streams,
          std::uint32_t page_bits, std::uint32_t line_bits,
          bool *reused)
{
    if (reused != nullptr)
        *reused = false;

    const std::uint64_t lines_per_page = 1ull
                                         << (page_bits - line_bits);

    const std::uint32_t group =
        warp_index / std::max<std::uint32_t>(1, params.blockWarps);
    const std::uint64_t step =
        std::max<std::uint32_t>(1, params.stepAccesses);
    const std::uint64_t pos = streams.advance(group) / step;

    // Warp-local reuse: the access repeats the previous line and is
    // serviced from the warp's own registers/L1 — no address
    // translation and no memory traffic. Checked before the page
    // logic so it scales traffic independently of page-run length.
    if (state.started && rng.chance(params.lineReuse)) {
        if (reused != nullptr)
            *reused = true;
        const std::uint64_t line = state.lineCursor % lines_per_page;
        return (static_cast<Addr>(state.page) << page_bits) |
               (line << line_bits);
    }

    // Re-pick the page when the run expires or when the stream head
    // advanced (SIMT lockstep: every warp of the stream moves on).
    if (!state.started || state.runLeft == 0 ||
        pos != state.lastPos) {
        if (!state.started) {
            // Random starting line: real warps work on different
            // offsets of their data, so their line streams (and the
            // DRAM channels those map to) are decorrelated. Without
            // this, all warps march across channels in lockstep and
            // serialize the memory system.
            state.lineCursor = rng.next();
        }
        state.page = nextPage(params, rng, group, pos);
        state.lastPos = pos;
        // Small run jitter: keeps lines decorrelated without pulling
        // stream members' page timing apart.
        state.runLeft = static_cast<std::uint32_t>(
            params.pageRun == 1 ? rng.below(2)
                                : params.pageRun + rng.below(3));
        state.started = true;
    } else {
        --state.runLeft;
        ++state.lineCursor;
    }

    const std::uint64_t line = state.lineCursor % lines_per_page;
    return (static_cast<Addr>(state.page) << page_bits) |
           (line << line_bits);
}

std::uint32_t
nextComputeInterval(const BenchmarkParams &params, Rng &rng)
{
    const std::uint64_t interval =
        rng.geometric(std::max<std::uint32_t>(1, params.computeMean));
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(interval, 16ull * params.computeMean));
}

} // namespace mask
