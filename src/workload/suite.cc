#include "workload/suite.hh"

#include <cstdio>
#include <cstdlib>

namespace mask {

namespace {

constexpr MissClass L = MissClass::Low;
constexpr MissClass H = MissClass::High;

/**
 * Build the benchmark table. Parameters are chosen so each benchmark
 * lands in its Table 2 quadrant (validated by bench/tab02) while
 * giving the suite a spread of memory intensities and row-buffer
 * localities:
 *   - pageRun drives the L1 TLB miss rate (runs of accesses to one
 *     page hit the per-core L1 TLB);
 *   - coldPages drives the shared L2 TLB miss rate (4KB pages; 512
 *     shared entries);
 *   - hotPages/hotFraction create warp-shared translations (the
 *     multi-warp-stall behaviour of Fig. 4);
 *   - computeMean sets the compute-to-memory ratio;
 *   - streamFraction sets DRAM row-buffer friendliness.
 */
std::vector<BenchmarkParams>
buildSuite()
{
    std::vector<BenchmarkParams> suite;
    auto add = [&suite](const char *name, std::uint32_t hot,
                        std::uint32_t cold, double hot_frac,
                        std::uint32_t run, double stream,
                        std::uint32_t streams, std::uint32_t window,
                        std::uint32_t stride, std::uint32_t step,
                        std::uint32_t compute, std::uint32_t diverge,
                        double line_reuse,
                        MissClass l1, MissClass l2) {
        BenchmarkParams p;
        p.name = name;
        p.hotPages = hot;
        p.coldPages = cold;
        p.hotFraction = hot_frac;
        p.pageRun = run;
        p.streamFraction = stream;
        p.blockWarps = streams;
        p.randWindow = window;
        p.pageStride = stride;
        p.stepAccesses = step;
        p.computeMean = compute;
        p.memDivergence = diverge;
        p.lineReuse = line_reuse;
        p.l1Class = l1;
        p.l2Class = l2;
        suite.push_back(p);
    };

    // --- Low L1 / Low L2 (dense kernels with tiny footprints) ---
    add("LUD", 8, 112, 0.35, 48, 0.9, 64, 2, 1, 2600, 10, 1, 0.50, L, L);
    add("NN", 12, 100, 0.30, 40, 0.8, 64, 2, 1, 3000, 12, 1, 0.50, L, L);

    // --- Low L1 / High L2 (streaming over large footprints) ---
    add("BFS2", 4, 786432, 0.05, 28, 0.80, 128, 5, 17, 900, 5, 1, 0.55, L, H);
    add("FFT", 4, 524288, 0.05, 36, 0.85, 128, 4, 17, 1100, 6, 1, 0.55, L, H);
    add("HISTO", 8, 393216, 0.10, 30, 0.82, 128, 5, 17, 950, 5, 1, 0.55, L, H);
    add("NW", 4, 458752, 0.05, 44, 0.88, 128, 4, 17, 1250, 6, 1, 0.55, L, H);
    add("QTC", 4, 589824, 0.05, 26, 0.80, 128, 5, 17, 850, 5, 1, 0.55, L, H);
    add("RAY", 8, 655360, 0.08, 32, 0.82, 128, 5, 17, 1000, 6, 1, 0.55, L, H);
    add("SAD", 4, 327680, 0.05, 38, 0.85, 128, 4, 17, 1150, 5, 1, 0.55, L, H);
    add("SCP", 4, 425984, 0.05, 42, 0.85, 128, 4, 17, 1300, 6, 1, 0.55, L, H);
    add("JPEG", 8, 360448, 0.08, 34, 0.83, 128, 4, 17, 1050, 5, 1, 0.55, L, H);

    // --- High L1 / Low L2 (page-hopping over small footprints) ---
    add("BP", 48, 160, 0.40, 1, 0.40, 64, 12, 1, 64, 3, 1, 0.50, H, L);
    add("GUP", 32, 224, 0.45, 1, 0.10, 64, 256, 1, 60, 3, 2, 0.40, H, L);
    add("HS", 40, 192, 0.35, 2, 0.40, 64, 12, 1, 72, 4, 1, 0.50, H, L);
    add("LPS", 48, 176, 0.40, 2, 0.45, 64, 12, 1, 68, 3, 1, 0.50, H, L);

    // --- High L1 / High L2 (irregular, large footprints) ---
    add("3DS", 16, 393216, 0.08, 2, 0.50, 128, 24, 17, 300, 4, 4, 0.55, H, H);
    add("BLK", 8, 262144, 0.06, 1, 0.45, 128, 26, 17, 280, 4, 4, 0.55, H, H);
    add("CFD", 16, 524288, 0.08, 2, 0.50, 128, 24, 17, 320, 4, 4, 0.55, H, H);
    add("CONS", 8, 327680, 0.06, 1, 0.52, 128, 24, 17, 290, 4, 4, 0.55, H, H);
    add("FWT", 8, 294912, 0.06, 2, 0.55, 128, 20, 17, 310, 5, 4, 0.55, H, H);
    add("LUH", 16, 458752, 0.08, 2, 0.50, 128, 24, 17, 330, 4, 4, 0.55, H, H);
    add("MM", 24, 425984, 0.10, 2, 0.55, 128, 20, 17, 360, 5, 4, 0.55, H, H);
    add("MUM", 8, 786432, 0.05, 1, 0.40, 128, 28, 17, 260, 4, 6, 0.55, H, H);
    add("RED", 8, 262144, 0.06, 2, 0.58, 128, 20, 17, 350, 4, 4, 0.55, H, H);
    add("SC", 16, 360448, 0.08, 1, 0.45, 128, 26, 17, 290, 4, 4, 0.55, H, H);
    add("SCAN", 8, 294912, 0.06, 2, 0.58, 128, 20, 17, 355, 4, 4, 0.55, H, H);
    add("SRAD", 16, 393216, 0.08, 2, 0.52, 128, 24, 17, 315, 5, 4, 0.55, H, H);
    add("TRD", 8, 524288, 0.05, 1, 0.42, 128, 26, 17, 270, 4, 6, 0.55, H, H);
    add("LIB", 8, 327680, 0.06, 2, 0.50, 128, 26, 17, 325, 5, 4, 0.55, H, H);
    add("SPMV", 8, 589824, 0.05, 1, 0.40, 128, 28, 17, 275, 4, 6, 0.55, H, H);

    return suite;
}

std::vector<WorkloadPair>
buildPairs()
{
    // The 35 pairs of Fig. 8; hmr = number of High/High applications.
    return {
        {"3DS", "BP", 1},     {"3DS", "HISTO", 1},
        {"BLK", "LPS", 1},    {"CFD", "MM", 2},
        {"CONS", "LPS", 1},   {"CONS", "LUH", 2},
        {"FWT", "BP", 1},     {"HISTO", "GUP", 0},
        {"HISTO", "LPS", 0},  {"LUH", "BFS2", 1},
        {"LUH", "GUP", 1},    {"MM", "CONS", 2},
        {"MUM", "HISTO", 1},  {"NW", "HS", 0},
        {"NW", "LPS", 0},     {"RAY", "GUP", 0},
        {"RAY", "HS", 0},     {"RED", "BP", 1},
        {"RED", "GUP", 1},    {"RED", "MM", 2},
        {"RED", "RAY", 1},    {"RED", "SC", 2},
        {"SCAN", "CONS", 2},  {"SCAN", "HISTO", 1},
        {"SCAN", "SAD", 1},   {"SCAN", "SRAD", 2},
        {"SCP", "GUP", 0},    {"SCP", "HS", 0},
        {"SC", "FWT", 2},     {"SRAD", "3DS", 2},
        {"TRD", "HS", 1},     {"TRD", "LPS", 1},
        {"TRD", "MUM", 2},    {"TRD", "RAY", 1},
        {"TRD", "RED", 2},
    };
}

} // namespace

const std::vector<BenchmarkParams> &
benchmarkSuite()
{
    static const std::vector<BenchmarkParams> suite = buildSuite();
    return suite;
}

const BenchmarkParams &
findBenchmark(std::string_view name)
{
    for (const auto &params : benchmarkSuite()) {
        if (name == params.name)
            return params;
    }
    std::fprintf(stderr, "unknown benchmark: %.*s\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
}

const std::vector<WorkloadPair> &
workloadPairs()
{
    static const std::vector<WorkloadPair> pairs = buildPairs();
    return pairs;
}

std::vector<WorkloadPair>
pairsWithHmr(int hmr)
{
    std::vector<WorkloadPair> out;
    for (const auto &pair : workloadPairs()) {
        if (pair.hmr == hmr)
            out.push_back(pair);
    }
    return out;
}

const std::vector<WorkloadPair> &
fig7Pairs()
{
    static const std::vector<WorkloadPair> pairs = {
        {"3DS", "HISTO", 1},
        {"CONS", "LPS", 1},
        {"MUM", "HISTO", 1},
        {"RED", "RAY", 1},
    };
    return pairs;
}

} // namespace mask
