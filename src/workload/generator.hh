/**
 * @file
 * Synthetic GPGPU workload model.
 *
 * The paper runs 27 CUDA/Rodinia/Parboil/LULESH/SHOC benchmarks on
 * GPGPU-Sim; we cannot execute SASS/PTX, so each benchmark is modeled
 * as a parameterized per-warp memory access process (see DESIGN.md,
 * substitution 1). The parameters control exactly the properties the
 * paper's analysis depends on: per-warp page locality (L1 TLB miss
 * rate), aggregate working-set churn (shared L2 TLB miss rate),
 * cross-warp page sharing in lockstep (the multi-warp TLB-miss stalls
 * of Fig. 4/6), compute-to-memory ratio (latency-hiding slack), and
 * streaming vs. scattered page order (DRAM row-buffer locality and
 * page-table-walk cache behaviour).
 */

#ifndef MASK_WORKLOAD_GENERATOR_HH
#define MASK_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace mask {

/** Expected TLB behaviour class from the paper's Table 2. */
enum class MissClass : std::uint8_t { Low, High };

/**
 * Parameter set describing one synthetic benchmark.
 *
 * Warps are grouped into `streams` (round-robin by application-wide
 * warp index, so one stream's warps are spread across cores, like the
 * warps of a kernel's thread blocks working through the same arrays).
 * Each stream walks a page sequence whose head advances with the
 * stream's own *progress*: after every `stepAccesses` memory accesses
 * collectively performed by the stream's warps, the head moves to the
 * next position. This models SIMT lockstep — all warps of a stream
 * demand a new page's translation within a short window, which is
 * what makes one TLB miss stall many warps (Fig. 4) — while keeping
 * translation traffic proportional to useful progress.
 */
struct BenchmarkParams
{
    const char *name = "?";

    /** Hot pages shared by all warps (high inter-warp reuse). */
    std::uint32_t hotPages = 16;

    /** Cold working-set pages (drives shared L2 TLB pressure). */
    std::uint32_t coldPages = 1024;

    /** Probability a page pick lands in the hot set. */
    double hotFraction = 0.2;

    /**
     * Mean consecutive accesses a warp makes within one page before
     * re-picking (line-run length; drives L1D/row locality).
     */
    std::uint32_t pageRun = 4;

    /** Probability a cold pick follows the stream head exactly;
     *  otherwise it gathers from the step's random target pages. */
    double streamFraction = 0.5;

    /**
     * Contiguous warps per stream (stream id = app-wide warp index /
     * blockWarps). With 64 warps per core, a value of 128 puts each
     * core's warps in one stream spanning two adjacent cores: a TLB
     * miss on the stream's new page stalls entire cores (Fig. 4)
     * while the translation is still shared across cores.
     */
    std::uint32_t blockWarps = 64;

    /** Number of concurrent page streams (lockstep warp groups). */
    std::uint32_t streams = 64;

    /**
     * Number of distinct random "gather" pages a stream shares per
     * head position (0 = pure streaming). Gather pages are uniform
     * over the cold set, so they are usually absent from every TLB
     * and their walks usually miss the L2 cache — the irregular
     * component (think BFS frontiers, hash probes, index chasing).
     * Because the whole stream gathers from the same K pages, these
     * translations are warp-shared too.
     */
    std::uint32_t randWindow = 8;

    /** Stream accesses per head step (working-set churn per work). */
    std::uint32_t stepAccesses = 30;

    /**
     * Page-number stride between consecutive sequence positions (odd
     * values cover the whole cold set). A stride >= 16 scatters
     * consecutive pages across distinct leaf PTE cache lines (16 PTEs
     * per 128B line), reproducing the paper's near-zero L2 hit rate
     * for deep page table levels (Section 4.3).
     */
    std::uint32_t pageStride = 17;

    /** Mean compute instructions between memory instructions. */
    std::uint32_t computeMean = 10;

    /**
     * Memory divergence: independent line accesses generated per
     * memory instruction (after intra-warp coalescing). 1 = fully
     * coalesced; higher values model scattered per-lane addresses
     * (GUPS-style), each of which needs its own translation.
     */
    std::uint32_t memDivergence = 1;

    /** Probability a memory access reuses the previous line (serviced
     *  warp-locally; generates no memory traffic). */
    double lineReuse = 0.2;

    /** Expected Table 2 classification (for validation benches). */
    MissClass l1Class = MissClass::High;
    MissClass l2Class = MissClass::High;
};

/**
 * Shared per-application stream progress: one access counter per
 * stream, advanced by every warp of the stream.
 */
class StreamTable
{
  public:
    explicit StreamTable(std::uint32_t streams = 0)
    {
        counts_.resize(streams == 0 ? 1 : streams, 0);
    }

    /** Post-increment the stream's access counter. */
    std::uint64_t
    advance(std::uint32_t stream)
    {
        ensure(stream);
        return counts_[stream]++;
    }

    std::uint64_t
    count(std::uint32_t stream) const
    {
        return stream < counts_.size() ? counts_[stream] : 0;
    }

    void reset() { std::fill(counts_.begin(), counts_.end(), 0); }

    void
    serialize(StateWriter &w) const
    {
        w.tag("streams");
        putUintSeq(w, counts_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("streams");
        getUintSeq(r, counts_);
    }

  private:
    void
    ensure(std::uint32_t stream)
    {
        if (stream >= counts_.size())
            counts_.resize(stream + 1, 0);
    }

    std::vector<std::uint64_t> counts_;
};

/** Mutable per-warp cursor state for the access process. */
struct WarpMemState
{
    Vpn page = 0;
    std::uint32_t runLeft = 0;
    std::uint64_t lineCursor = 0;
    std::uint64_t lastPos = 0; //!< stream head position at last pick
    bool started = false;

    void
    serialize(StateWriter &w) const
    {
        w.tag("wm");
        w.u(page);
        w.u(runLeft);
        w.u(lineCursor);
        w.u(lastPos);
        w.b(started);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("wm");
        page = r.u();
        runLeft = static_cast<std::uint32_t>(r.u());
        lineCursor = r.u();
        lastPos = r.u();
        started = r.b();
    }
};

/**
 * Produce the next virtual byte address for a warp's memory
 * instruction. @p warp_index is the warp's application-wide index,
 * which selects its stream in @p streams.
 *
 * When @p reused is non-null, *reused is set when the access repeats
 * the previous line; such accesses are serviced from the warp's
 * just-fetched data (register/L1 locality) and generate no memory
 * traffic.
 */
Addr nextVaddr(const BenchmarkParams &params, WarpMemState &state,
               Rng &rng, std::uint32_t warp_index,
               StreamTable &streams, std::uint32_t page_bits,
               std::uint32_t line_bits, bool *reused = nullptr);

/** Compute instructions to execute before the next memory access. */
std::uint32_t nextComputeInterval(const BenchmarkParams &params,
                                  Rng &rng);

/** Total distinct pages the benchmark can touch. */
inline std::uint64_t
workingSetPages(const BenchmarkParams &params)
{
    return std::uint64_t{params.hotPages} + params.coldPages;
}

} // namespace mask

#endif // MASK_WORKLOAD_GENERATOR_HH
