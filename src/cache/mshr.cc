#include "cache/mshr.hh"

#include "common/check.hh"

namespace mask {

MshrTable::MshrTable(std::uint32_t entries)
    : entries_(entries), table_(entries)
{}

MshrTable::Outcome
MshrTable::allocate(std::uint64_t key, ReqId waiter)
{
    if (std::vector<ReqId> *waiters = table_.find(key)) {
        waiters->push_back(waiter);
        ++merges_;
        return Outcome::Merged;
    }
    if (table_.size() >= entries_) {
        ++rejections_;
        return Outcome::Full;
    }
    std::vector<ReqId> waiters;
    if (!pool_.empty()) {
        waiters = std::move(pool_.back());
        pool_.pop_back();
    }
    waiters.push_back(waiter);
    table_.insert(key, std::move(waiters));
    return Outcome::Allocated;
}

std::vector<ReqId>
MshrTable::complete(std::uint64_t key)
{
    SIM_CHECK_CTX(table_.contains(key), "cache.mshr", kUnknownCycle,
                  "fill completed for a key with no MSHR entry",
                  CheckContext{.paddr = key});
    return table_.take(key);
}

void
MshrTable::recycle(std::vector<ReqId> &&waiters)
{
    waiters.clear();
    if (pool_.size() < entries_)
        pool_.push_back(std::move(waiters));
}

void
MshrTable::serialize(StateWriter &w) const
{
    w.tag("mshr");
    w.u(entries_);
    table_.serializeSlots(
        w, [](StateWriter &sw, const std::vector<ReqId> &waiters) {
            putUintSeq(sw, waiters);
        });
    w.u(merges_);
    w.u(rejections_);
}

void
MshrTable::deserialize(StateReader &r)
{
    r.tag("mshr");
    const std::uint64_t entries = r.u();
    if (entries != entries_)
        r.fail("MSHR entry count mismatch (" + std::to_string(entries) +
               " vs configured " + std::to_string(entries_) + ")");
    table_.deserializeSlots(
        r, [](StateReader &sr, std::vector<ReqId> &waiters) {
            getUintSeq(sr, waiters);
        });
    merges_ = r.u();
    rejections_ = r.u();
}

} // namespace mask
