#include "cache/mshr.hh"

#include "common/check.hh"

namespace mask {

MshrTable::MshrTable(std::uint32_t entries) : entries_(entries) {}

MshrTable::Outcome
MshrTable::allocate(std::uint64_t key, ReqId waiter)
{
    auto it = table_.find(key);
    if (it != table_.end()) {
        it->second.push_back(waiter);
        ++merges_;
        return Outcome::Merged;
    }
    if (table_.size() >= entries_) {
        ++rejections_;
        return Outcome::Full;
    }
    table_.emplace(key, std::vector<ReqId>{waiter});
    return Outcome::Allocated;
}

std::vector<ReqId>
MshrTable::complete(std::uint64_t key)
{
    auto it = table_.find(key);
    SIM_CHECK_CTX(it != table_.end(), "cache.mshr", kUnknownCycle,
                  "fill completed for a key with no MSHR entry",
                  CheckContext{.paddr = key});
    std::vector<ReqId> waiters = std::move(it->second);
    table_.erase(it);
    return waiters;
}

} // namespace mask
