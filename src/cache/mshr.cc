#include "cache/mshr.hh"

#include "common/check.hh"

namespace mask {

MshrTable::MshrTable(std::uint32_t entries)
    : entries_(entries), table_(entries)
{}

MshrTable::Outcome
MshrTable::allocate(std::uint64_t key, ReqId waiter)
{
    if (std::vector<ReqId> *waiters = table_.find(key)) {
        waiters->push_back(waiter);
        ++merges_;
        return Outcome::Merged;
    }
    if (table_.size() >= entries_) {
        ++rejections_;
        return Outcome::Full;
    }
    std::vector<ReqId> waiters;
    if (!pool_.empty()) {
        waiters = std::move(pool_.back());
        pool_.pop_back();
    }
    waiters.push_back(waiter);
    table_.insert(key, std::move(waiters));
    return Outcome::Allocated;
}

std::vector<ReqId>
MshrTable::complete(std::uint64_t key)
{
    SIM_CHECK_CTX(table_.contains(key), "cache.mshr", kUnknownCycle,
                  "fill completed for a key with no MSHR entry",
                  CheckContext{.paddr = key});
    return table_.take(key);
}

void
MshrTable::recycle(std::vector<ReqId> &&waiters)
{
    waiters.clear();
    if (pool_.size() < entries_)
        pool_.push_back(std::move(waiters));
}

} // namespace mask
