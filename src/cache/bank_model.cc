#include "cache/bank_model.hh"

#include <cassert>

namespace mask {

LatencyPipe::LatencyPipe(std::uint32_t ports, std::uint32_t latency)
    : ports_(ports), latency_(latency)
{
    assert(ports_ > 0);
}

bool
LatencyPipe::canAccept(Cycle now) const
{
    if (portCycle_ != now) {
        portCycle_ = now;
        usedThisCycle_ = 0;
    }
    return usedThisCycle_ < ports_;
}

void
LatencyPipe::push(std::uint64_t payload, Cycle now)
{
    assert(canAccept(now));
    // Maintain the per-cycle port count here as well: push must not
    // depend on the caller having invoked canAccept first.
    if (portCycle_ != now) {
        portCycle_ = now;
        usedThisCycle_ = 0;
    }
    ++usedThisCycle_;
    pipe_.push_back(Entry{payload, now + latency_});
}

bool
LatencyPipe::hasReady(Cycle now) const
{
    return !pipe_.empty() && pipe_.front().readyAt <= now;
}

std::uint64_t
LatencyPipe::pop()
{
    assert(!pipe_.empty());
    const std::uint64_t payload = pipe_.front().payload;
    pipe_.pop_front();
    return payload;
}

BankedPipe::BankedPipe(std::uint32_t banks, std::uint32_t ports,
                       std::uint32_t latency)
{
    assert(banks > 0 && (banks & (banks - 1)) == 0);
    banks_.reserve(banks);
    for (std::uint32_t i = 0; i < banks; ++i)
        banks_.emplace_back(ports, latency);
    bankMask_ = banks - 1;
}

void
LatencyPipe::serialize(StateWriter &w) const
{
    w.tag("pipe");
    // The mutable per-cycle port counter is included so that a restore
    // taken mid-cycle (emergency snapshots) replays identically; for
    // boundary checkpoints it round-trips harmlessly.
    w.u(portCycle_);
    w.u(usedThisCycle_);
    putSeq(w, pipe_, [](StateWriter &sw, const Entry &e) {
        sw.u(e.payload);
        sw.u(e.readyAt);
    });
}

void
LatencyPipe::deserialize(StateReader &r)
{
    r.tag("pipe");
    portCycle_ = r.u();
    usedThisCycle_ = static_cast<std::uint32_t>(r.u());
    getSeq(r, pipe_, [](StateReader &sr, Entry &e) {
        e.payload = sr.u();
        e.readyAt = sr.u();
    });
}

void
BankedPipe::serialize(StateWriter &w) const
{
    w.tag("banks");
    w.u(banks_.size());
    for (const LatencyPipe &bank : banks_)
        bank.serialize(w);
}

void
BankedPipe::deserialize(StateReader &r)
{
    r.tag("banks");
    const std::uint64_t n = r.u();
    if (n != banks_.size())
        r.fail("bank count mismatch (" + std::to_string(n) +
               " vs configured " + std::to_string(banks_.size()) + ")");
    for (LatencyPipe &bank : banks_)
        bank.deserialize(r);
}

} // namespace mask
