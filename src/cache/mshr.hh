/**
 * @file
 * Miss-status holding register (MSHR) table for cache-like structures.
 *
 * Outstanding misses are keyed by line/page key; secondary misses to
 * the same key merge into the existing entry and are woken together
 * when the fill arrives. The table is a flat open-addressed map with a
 * pool of recycled waiter vectors, so the allocate/complete cycle on
 * the miss path performs no heap allocation in steady state.
 */

#ifndef MASK_CACHE_MSHR_HH
#define MASK_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/flat_table.hh"
#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

/** MSHR table whose waiters are ReqId handles. */
class MshrTable
{
  public:
    explicit MshrTable(std::uint32_t entries);

    enum class Outcome : std::uint8_t {
        Allocated, //!< primary miss; caller must send the fill request
        Merged,    //!< secondary miss; waiter attached to existing entry
        Full,      //!< no entry free; caller must retry later
    };

    /**
     * Record a miss on @p key with @p waiter to wake on fill.
     */
    Outcome allocate(std::uint64_t key, ReqId waiter);

    /** True if a miss on @p key is already outstanding. */
    bool has(std::uint64_t key) const { return table_.contains(key); }

    /**
     * Fill arrived for @p key: returns all waiters (primary first) and
     * frees the entry. Key must be present. The returned vector's
     * storage is recycled into the next allocate once the caller
     * drains it via completeDone().
     */
    std::vector<ReqId> complete(std::uint64_t key);

    /** Return a drained waiter vector's capacity to the pool. */
    void recycle(std::vector<ReqId> &&waiters);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(table_.size());
    }
    std::uint32_t capacity() const { return entries_; }
    std::uint64_t merges() const { return merges_; }
    std::uint64_t rejections() const { return rejections_; }

    /**
     * Account @p n allocate() attempts that were elided because the
     * caller proved they would return Full (event-driven retry paths
     * advance the rejection counter in closed form so the stats match
     * a per-cycle re-probe bit for bit).
     */
    void addRejections(std::uint64_t n) { rejections_ += n; }

    /** Snapshot outstanding entries and their waiter lists (the
     *  recycled-capacity pool is a pure optimization and is skipped). */
    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    std::uint32_t entries_;
    FlatTable<std::vector<ReqId>> table_;
    /** Recycled waiter vectors (retain capacity across misses). */
    std::vector<std::vector<ReqId>> pool_;
    std::uint64_t merges_ = 0;
    std::uint64_t rejections_ = 0;
};

} // namespace mask

#endif // MASK_CACHE_MSHR_HH
