/**
 * @file
 * Miss-status holding register (MSHR) table for cache-like structures.
 *
 * Outstanding misses are keyed by line/page key; secondary misses to
 * the same key merge into the existing entry and are woken together
 * when the fill arrives.
 */

#ifndef MASK_CACHE_MSHR_HH
#define MASK_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mask {

/** MSHR table whose waiters are ReqId handles. */
class MshrTable
{
  public:
    explicit MshrTable(std::uint32_t entries);

    enum class Outcome : std::uint8_t {
        Allocated, //!< primary miss; caller must send the fill request
        Merged,    //!< secondary miss; waiter attached to existing entry
        Full,      //!< no entry free; caller must retry later
    };

    /**
     * Record a miss on @p key with @p waiter to wake on fill.
     */
    Outcome allocate(std::uint64_t key, ReqId waiter);

    /** True if a miss on @p key is already outstanding. */
    bool has(std::uint64_t key) const { return table_.contains(key); }

    /**
     * Fill arrived for @p key: returns all waiters (primary first) and
     * frees the entry. Key must be present.
     */
    std::vector<ReqId> complete(std::uint64_t key);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(table_.size());
    }
    std::uint32_t capacity() const { return entries_; }
    std::uint64_t merges() const { return merges_; }
    std::uint64_t rejections() const { return rejections_; }

  private:
    std::uint32_t entries_;
    std::unordered_map<std::uint64_t, std::vector<ReqId>> table_;
    std::uint64_t merges_ = 0;
    std::uint64_t rejections_ = 0;
};

} // namespace mask

#endif // MASK_CACHE_MSHR_HH
