#include "cache/cache.hh"

#include <cassert>
#include <cstdlib>

namespace mask {

SetAssocCache::SetAssocCache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways)
{
    // Misconfiguration, not a transient condition: fail loudly even in
    // release builds (sets must be a power of two for index masking).
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0 || ways_ == 0)
        std::abort();
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

std::uint32_t
SetAssocCache::setIndex(std::uint64_t key) const
{
    return static_cast<std::uint32_t>(key) & (sets_ - 1);
}

SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t key)
{
    Line *set = &lines_[static_cast<std::size_t>(setIndex(key)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t key) const
{
    return const_cast<SetAssocCache *>(this)->findLine(key);
}

bool
SetAssocCache::contains(std::uint64_t key) const
{
    return findLine(key) != nullptr;
}

bool
SetAssocCache::lookup(std::uint64_t key, std::uint64_t *payload)
{
    Line *line = findLine(key);
    if (line == nullptr)
        return false;
    line->lastUse = ++useClock_;
    if (payload != nullptr)
        *payload = line->payload;
    return true;
}

bool
SetAssocCache::fill(std::uint64_t key, std::uint64_t payload,
                    std::uint64_t *evicted)
{
    return fillRange(key, payload, 0, ways_, evicted);
}

bool
SetAssocCache::fillRange(std::uint64_t key, std::uint64_t payload,
                         std::uint32_t way_lo, std::uint32_t way_hi,
                         std::uint64_t *evicted)
{
    assert(way_lo < way_hi && way_hi <= ways_);

    Line *line = findLine(key);
    if (line != nullptr) {
        // Refresh in place, even if outside the fill range: the entry
        // already lives in the cache.
        line->payload = payload;
        line->lastUse = ++useClock_;
        return false;
    }

    Line *set = &lines_[static_cast<std::size_t>(setIndex(key)) * ways_];
    Line *victim = nullptr;
    for (std::uint32_t w = way_lo; w < way_hi; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim == nullptr || set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    assert(victim != nullptr);

    const bool displaced = victim->valid;
    if (displaced && evicted != nullptr)
        *evicted = victim->key;
    if (!displaced)
        ++occupancy_;

    victim->key = key;
    victim->payload = payload;
    victim->lastUse = ++useClock_;
    victim->valid = true;
    return displaced;
}

bool
SetAssocCache::erase(std::uint64_t key)
{
    Line *line = findLine(key);
    if (line == nullptr)
        return false;
    line->valid = false;
    --occupancy_;
    return true;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
    occupancy_ = 0;
}

void
SetAssocCache::flushIf(const std::function<bool(std::uint64_t)> &pred)
{
    for (auto &line : lines_) {
        if (line.valid && pred(line.key)) {
            line.valid = false;
            --occupancy_;
        }
    }
}

void
SetAssocCache::serialize(StateWriter &w) const
{
    w.tag("cache");
    w.u(sets_);
    w.u(ways_);
    w.u(useClock_);
    w.u(occupancy_);
    for (const Line &line : lines_) {
        w.b(line.valid);
        if (!line.valid)
            continue;
        w.u(line.key);
        w.u(line.payload);
        w.u(line.lastUse);
    }
}

void
SetAssocCache::deserialize(StateReader &r)
{
    r.tag("cache");
    const std::uint64_t sets = r.u();
    const std::uint64_t ways = r.u();
    if (sets != sets_ || ways != ways_)
        r.fail("cache geometry mismatch (" + std::to_string(sets) +
               "x" + std::to_string(ways) + " vs configured " +
               std::to_string(sets_) + "x" + std::to_string(ways_) +
               ")");
    useClock_ = r.u();
    occupancy_ = r.u();
    std::uint64_t valid = 0;
    for (Line &line : lines_) {
        line = Line{};
        if (!r.b())
            continue;
        line.key = r.u();
        line.payload = r.u();
        line.lastUse = r.u();
        line.valid = true;
        ++valid;
    }
    if (valid != occupancy_)
        r.fail("cache occupancy " + std::to_string(occupancy_) +
               " disagrees with " + std::to_string(valid) +
               " valid lines");
}

int
SetAssocCache::lruDepth(std::uint64_t key) const
{
    const Line *target = findLine(key);
    if (target == nullptr)
        return -1;
    const Line *set =
        &lines_[static_cast<std::size_t>(setIndex(key)) * ways_];
    int depth = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lastUse > target->lastUse)
            ++depth;
    }
    return depth;
}

} // namespace mask
