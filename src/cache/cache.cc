#include "cache/cache.hh"

#include <cassert>
#include <cstdlib>

namespace mask {

SetAssocCache::SetAssocCache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways)
{
    // Misconfiguration, not a transient condition: fail loudly even in
    // release builds (sets must be a power of two for index masking).
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0 || ways_ == 0)
        std::abort();
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

std::uint32_t
SetAssocCache::setIndex(std::uint64_t key) const
{
    return static_cast<std::uint32_t>(key) & (sets_ - 1);
}

SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t key)
{
    Line *set = &lines_[static_cast<std::size_t>(setIndex(key)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t key) const
{
    return const_cast<SetAssocCache *>(this)->findLine(key);
}

bool
SetAssocCache::contains(std::uint64_t key) const
{
    return findLine(key) != nullptr;
}

bool
SetAssocCache::lookup(std::uint64_t key, std::uint64_t *payload)
{
    Line *line = findLine(key);
    if (line == nullptr)
        return false;
    line->lastUse = ++useClock_;
    if (payload != nullptr)
        *payload = line->payload;
    return true;
}

bool
SetAssocCache::fill(std::uint64_t key, std::uint64_t payload,
                    std::uint64_t *evicted)
{
    return fillRange(key, payload, 0, ways_, evicted);
}

bool
SetAssocCache::fillRange(std::uint64_t key, std::uint64_t payload,
                         std::uint32_t way_lo, std::uint32_t way_hi,
                         std::uint64_t *evicted)
{
    assert(way_lo < way_hi && way_hi <= ways_);

    Line *line = findLine(key);
    if (line != nullptr) {
        // Refresh in place, even if outside the fill range: the entry
        // already lives in the cache.
        line->payload = payload;
        line->lastUse = ++useClock_;
        return false;
    }

    Line *set = &lines_[static_cast<std::size_t>(setIndex(key)) * ways_];
    Line *victim = nullptr;
    for (std::uint32_t w = way_lo; w < way_hi; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim == nullptr || set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    assert(victim != nullptr);

    const bool displaced = victim->valid;
    if (displaced && evicted != nullptr)
        *evicted = victim->key;
    if (!displaced)
        ++occupancy_;

    victim->key = key;
    victim->payload = payload;
    victim->lastUse = ++useClock_;
    victim->valid = true;
    return displaced;
}

bool
SetAssocCache::erase(std::uint64_t key)
{
    Line *line = findLine(key);
    if (line == nullptr)
        return false;
    line->valid = false;
    --occupancy_;
    return true;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
    occupancy_ = 0;
}

void
SetAssocCache::flushIf(const std::function<bool(std::uint64_t)> &pred)
{
    for (auto &line : lines_) {
        if (line.valid && pred(line.key)) {
            line.valid = false;
            --occupancy_;
        }
    }
}

int
SetAssocCache::lruDepth(std::uint64_t key) const
{
    const Line *target = findLine(key);
    if (target == nullptr)
        return -1;
    const Line *set =
        &lines_[static_cast<std::size_t>(setIndex(key)) * ways_];
    int depth = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lastUse > target->lastUse)
            ++depth;
    }
    return depth;
}

} // namespace mask
