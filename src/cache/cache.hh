/**
 * @file
 * Generic set-associative cache directory with true-LRU replacement.
 *
 * This models presence/replacement only (no data payload beyond one
 * 64-bit value); timing is layered separately via BankedPipe. The same
 * class backs the L1 data caches, the shared L2 data cache, the page
 * walk cache, and both TLB levels.
 */

#ifndef MASK_CACHE_CACHE_HH
#define MASK_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/state_codec.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mask {

/**
 * Set-associative directory of 64-bit keys with a 64-bit payload and
 * true-LRU replacement. The number of sets must be a power of two;
 * ways may be anything (1 set x N ways gives a fully-associative
 * structure).
 *
 * To support the Static baseline's fixed partitioning, fills can be
 * restricted to a contiguous way range per application while probes
 * always search the whole set.
 */
class SetAssocCache
{
  public:
    SetAssocCache(std::uint32_t sets, std::uint32_t ways);

    /** Look up without touching LRU state. */
    bool contains(std::uint64_t key) const;

    /**
     * Look up and update LRU on hit. Returns true on hit; on hit and
     * @p payload non-null, writes the stored payload.
     */
    bool lookup(std::uint64_t key, std::uint64_t *payload = nullptr);

    /**
     * Insert (or refresh) a mapping, evicting the LRU way of the set
     * if needed. Returns the evicted key via @p evicted (and true)
     * when a valid entry was displaced.
     */
    bool fill(std::uint64_t key, std::uint64_t payload = 0,
              std::uint64_t *evicted = nullptr);

    /** Fill restricted to ways [way_lo, way_hi) of the set. */
    bool fillRange(std::uint64_t key, std::uint64_t payload,
                   std::uint32_t way_lo, std::uint32_t way_hi,
                   std::uint64_t *evicted = nullptr);

    /** Remove one key; returns true if it was present. */
    bool erase(std::uint64_t key);

    /** Invalidate everything. */
    void flush();

    /** Invalidate all entries whose key satisfies @p pred. */
    void flushIf(const std::function<bool(std::uint64_t)> &pred);

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t occupancy() const { return occupancy_; }

    /**
     * LRU position of @p key within its set: 0 = MRU. Returns -1 when
     * absent. For replacement-order property tests.
     */
    int lruDepth(std::uint64_t key) const;

    /** Snapshot the full directory, including LRU timestamps. */
    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    struct Line
    {
        std::uint64_t key = 0;
        std::uint64_t payload = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setIndex(std::uint64_t key) const;
    Line *findLine(std::uint64_t key);
    const Line *findLine(std::uint64_t key) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t occupancy_ = 0;
    std::vector<Line> lines_; //!< sets_ x ways_, row-major
};

} // namespace mask

#endif // MASK_CACHE_CACHE_HH
