/**
 * @file
 * Timing model for banked, multi-ported structures with a fixed access
 * latency (shared L2 cache banks, shared L2 TLB ports, page walk
 * cache). Requests accepted in cycle t complete at t + latency;
 * at most `ports` requests are accepted per bank per cycle, and
 * rejected requests stay in the caller's queue (modeling queuing
 * latency, a first-order effect in Section 4.3).
 */

#ifndef MASK_CACHE_BANK_MODEL_HH
#define MASK_CACHE_BANK_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

/** Single bank: fixed-latency pipe with a per-cycle port limit. */
class LatencyPipe
{
  public:
    LatencyPipe(std::uint32_t ports, std::uint32_t latency);

    /** True if a port is free in cycle @p now. */
    bool canAccept(Cycle now) const;

    /** Accept a payload in cycle @p now (asserts a port is free). */
    void push(std::uint64_t payload, Cycle now);

    /** True if the oldest accepted payload has completed by @p now. */
    bool hasReady(Cycle now) const;

    /** Pop the oldest completed payload. */
    std::uint64_t pop();

    std::size_t inFlight() const { return pipe_.size(); }

    /**
     * Cycle the oldest in-flight payload completes, or kNeverCycle
     * when empty. Entries complete in FIFO order, so nothing in the
     * pipe becomes ready earlier (next-event lower bound, DESIGN.md
     * §9). The per-cycle port counter does not matter here: it only
     * limits accepts, and accepts need a caller with queued input.
     */
    Cycle
    nextReadyAt() const
    {
        return pipe_.empty() ? kNeverCycle : pipe_.front().readyAt;
    }

    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    struct Entry
    {
        std::uint64_t payload;
        Cycle readyAt;
    };

    std::uint32_t ports_;
    std::uint32_t latency_;
    mutable Cycle portCycle_ = kNeverCycle;
    mutable std::uint32_t usedThisCycle_ = 0;
    std::deque<Entry> pipe_;
};

/** A vector of LatencyPipes addressed by bank index. */
class BankedPipe
{
  public:
    BankedPipe(std::uint32_t banks, std::uint32_t ports,
               std::uint32_t latency);

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    LatencyPipe &bank(std::uint32_t idx) { return banks_[idx]; }
    const LatencyPipe &bank(std::uint32_t idx) const
    {
        return banks_[idx];
    }

    /** Bank selection by key (power-of-two bank count). */
    std::uint32_t bankFor(std::uint64_t key) const
    {
        return static_cast<std::uint32_t>(key) & bankMask_;
    }

    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    std::vector<LatencyPipe> banks_;
    std::uint32_t bankMask_;
};

} // namespace mask

#endif // MASK_CACHE_BANK_MODEL_HH
