#include "metrics/metrics.hh"

#include <algorithm>
#include <cassert>

#include "common/stats.hh"

namespace mask {

double
weightedSpeedup(const std::vector<double> &shared_ipc,
                const std::vector<double> &alone_ipc)
{
    assert(shared_ipc.size() == alone_ipc.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i)
        sum += safeDiv(shared_ipc[i], alone_ipc[i]);
    return sum;
}

double
ipcThroughput(const std::vector<double> &shared_ipc)
{
    double sum = 0.0;
    for (double ipc : shared_ipc)
        sum += ipc;
    return sum;
}

double
maxSlowdown(const std::vector<double> &shared_ipc,
            const std::vector<double> &alone_ipc)
{
    assert(shared_ipc.size() == alone_ipc.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i)
        worst = std::max(worst, safeDiv(alone_ipc[i], shared_ipc[i]));
    return worst;
}

double
harmonicSpeedup(const std::vector<double> &shared_ipc,
                const std::vector<double> &alone_ipc)
{
    assert(shared_ipc.size() == alone_ipc.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i)
        denom += safeDiv(alone_ipc[i], shared_ipc[i]);
    return safeDiv(static_cast<double>(shared_ipc.size()), denom);
}

double
checkpointOverhead(double ckpt_write_seconds, double wall_seconds)
{
    return safeDiv(ckpt_write_seconds, wall_seconds);
}

} // namespace mask
