/**
 * @file
 * Multi-programmed workload metrics (paper Section 6): weighted
 * speedup (Eyerman & Eeckhout), aggregate IPC throughput, and
 * unfairness as maximum slowdown.
 */

#ifndef MASK_METRICS_METRICS_HH
#define MASK_METRICS_METRICS_HH

#include <vector>

namespace mask {

/** Weighted speedup: sum_i IPC_shared_i / IPC_alone_i. */
double weightedSpeedup(const std::vector<double> &shared_ipc,
                       const std::vector<double> &alone_ipc);

/** Aggregate IPC throughput: sum_i IPC_shared_i. */
double ipcThroughput(const std::vector<double> &shared_ipc);

/** Unfairness: max_i IPC_alone_i / IPC_shared_i. */
double maxSlowdown(const std::vector<double> &shared_ipc,
                   const std::vector<double> &alone_ipc);

/** Harmonic weighted speedup: N / sum_i (IPC_alone_i/IPC_shared_i). */
double harmonicSpeedup(const std::vector<double> &shared_ipc,
                       const std::vector<double> &alone_ipc);

/**
 * Checkpoint overhead: fraction of host run time spent inside the
 * periodic snapshot writer (0 when checkpointing is off or no wall
 * time was measured). Host-side observability for the perf harness.
 */
double checkpointOverhead(double ckpt_write_seconds,
                          double wall_seconds);

} // namespace mask

#endif // MASK_METRICS_METRICS_HH
