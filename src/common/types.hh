/**
 * @file
 * Fundamental scalar types and enums shared by every simulator module.
 */

#ifndef MASK_COMMON_TYPES_HH
#define MASK_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mask {

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A byte address, virtual or physical depending on context. */
using Addr = std::uint64_t;

/** Virtual page number (virtual address >> page bits). */
using Vpn = std::uint64_t;

/** Physical frame number (physical address >> page bits). */
using Pfn = std::uint64_t;

/** Address space identifier; one per concurrently-running application. */
using Asid = std::uint16_t;

/** Index of an application within a multi-programmed workload. */
using AppId = std::uint16_t;

/** Identifier of a shader core (streaming multiprocessor). */
using CoreId = std::uint16_t;

/** Identifier of a warp within one shader core. */
using WarpId = std::uint16_t;

/** Handle into the global in-flight memory request pool. */
using ReqId = std::uint32_t;

constexpr ReqId kInvalidReq = std::numeric_limits<ReqId>::max();
constexpr Pfn kInvalidPfn = std::numeric_limits<Pfn>::max();
constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/**
 * Class of a memory request as seen by the shared memory hierarchy.
 * The distinction drives every MASK mechanism: translation requests
 * (page table walk reads) are treated differently from data demand
 * requests at the L2 cache and at the DRAM scheduler.
 */
enum class ReqType : std::uint8_t {
    Data,        //!< data demand request from a warp
    Translation, //!< page table walk read
};

/**
 * Where a completed memory response must be routed: back to the warp
 * that issued a data access, or to the page table walker that issued a
 * walk read.
 */
enum class ReqOrigin : std::uint8_t {
    WarpData,
    PageWalk,
};

/**
 * Address translation organization of the baseline (Section 3 of the
 * paper). MASK mechanisms are layered on top of SharedTlb.
 */
enum class TranslationDesign : std::uint8_t {
    PwCache,   //!< private L1 TLBs + shared page walk cache (Fig. 2a)
    SharedTlb, //!< private L1 TLBs + shared L2 TLB (Fig. 2b)
    Ideal,     //!< every L1 TLB access hits; translation is free
};

} // namespace mask

#endif // MASK_COMMON_TYPES_HH
