#include "common/check.hh"

#include <cstdio>

namespace mask {

namespace {

void
appendField(std::string &out, const char *name, std::uint64_t value,
            bool hex = false)
{
    if (value == CheckContext::kUnset)
        return;
    char buf[48];
    if (hex) {
        std::snprintf(buf, sizeof(buf), " %s=0x%llx", name,
                      static_cast<unsigned long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), " %s=%llu", name,
                      static_cast<unsigned long long>(value));
    }
    out += buf;
}

std::string
cycleString(Cycle cycle)
{
    if (cycle == kUnknownCycle)
        return "?";
    return std::to_string(cycle);
}

} // namespace

std::string
CheckContext::describe() const
{
    std::string out;
    appendField(out, "req", reqId);
    appendField(out, "asid", asid);
    appendField(out, "vpn", vpn, true);
    appendField(out, "app", app);
    appendField(out, "walk", walkId);
    appendField(out, "paddr", paddr, true);
    appendField(out, "age", age);
    return out;
}

SimInvariantError::SimInvariantError(std::string module, Cycle cycle,
                                     std::string detail, CheckContext ctx)
    : std::runtime_error("[" + module + "] cycle " + cycleString(cycle) +
                         ": " + detail + ctx.describe()),
      module_(std::move(module)),
      cycle_(cycle),
      detail_(std::move(detail)),
      ctx_(ctx)
{
}

std::string
SimInvariantError::diagnostic() const
{
    std::string out;
    out += "=== SIMULATION INVARIANT VIOLATION "
           "=================================\n";
    out += "module : " + module_ + "\n";
    out += "cycle  : " + cycleString(cycle_) + "\n";
    out += "detail : " + detail_ + "\n";
    const std::string ctx = ctx_.describe();
    if (!ctx.empty())
        out += "context:" + ctx + "\n";
    out += "==========================================================="
           "========\n";
    return out;
}

namespace detail {

void
throwCheckFailure(const char *cond, const char *module, Cycle cycle,
                  const std::string &detail, const CheckContext &ctx)
{
    throw SimInvariantError(
        module, cycle, detail + " (check `" + cond + "` failed)", ctx);
}

} // namespace detail

} // namespace mask
