#include "common/state_codec.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

namespace mask {

namespace {

std::string
describe(const std::string &reason, const std::string &field,
         std::uint64_t cycle)
{
    std::string msg = "snapshot error: " + reason;
    if (!field.empty())
        msg += " (at field '" + field + "')";
    if (cycle != SnapshotError::kNoCycle)
        msg += " (snapshot cycle " + std::to_string(cycle) + ")";
    return msg;
}

} // namespace

SnapshotError::SnapshotError(const std::string &reason,
                             const std::string &field,
                             std::uint64_t cycle)
    : std::runtime_error(describe(reason, field, cycle)),
      reason_(reason),
      field_(field),
      cycle_(cycle)
{
}

// ---------------------------------------------------------------------
// StateWriter
// ---------------------------------------------------------------------

void
StateWriter::sep()
{
    if (!out_.empty())
        out_.push_back(' ');
}

void
StateWriter::tag(const char *name)
{
    sep();
    out_.push_back('/');
    out_.append(name);
}

void
StateWriter::u(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    sep();
    out_.append(buf);
}

void
StateWriter::i(std::int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    sep();
    out_.append(buf);
}

void
StateWriter::d(double v)
{
    // C99 hex float: exact round trip through strtod (the sweep_io
    // codec discipline; see DESIGN.md §10/§11).
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    sep();
    out_.append(buf);
}

void
StateWriter::s(std::string_view v)
{
    sep();
    out_.push_back('s');
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%zu", v.size());
    out_.append(buf);
    out_.push_back(':');
    out_.append(v);
}

// ---------------------------------------------------------------------
// StateReader
// ---------------------------------------------------------------------

StateReader::StateReader(std::string_view payload, std::uint64_t cycle)
    : data_(payload), cycle_(cycle)
{
}

void
StateReader::fail(const std::string &why) const
{
    throw SnapshotError(why, lastTag_, cycle_);
}

std::string_view
StateReader::token()
{
    if (pos_ >= data_.size())
        fail("payload truncated");
    const std::size_t start = pos_;
    while (pos_ < data_.size() && data_[pos_] != ' ')
        ++pos_;
    const std::string_view tok = data_.substr(start, pos_ - start);
    if (pos_ < data_.size())
        ++pos_; // consume the separator
    if (tok.empty())
        fail("empty token (corrupted separator)");
    return tok;
}

void
StateReader::tag(const char *name)
{
    const std::string_view tok = token();
    if (tok.size() < 2 || tok[0] != '/' || tok.substr(1) != name) {
        fail("expected field marker '/" + std::string(name) +
             "', found '" + std::string(tok) + "'");
    }
    lastTag_ = name;
}

std::uint64_t
StateReader::u()
{
    const std::string_view tok = token();
    // strtoull needs NUL termination; tokens are short.
    char buf[32];
    if (tok.size() >= sizeof(buf))
        fail("oversized integer token");
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(buf, &end, 10);
    if (end != buf + tok.size() || errno == ERANGE || buf[0] == '-')
        fail("malformed unsigned integer '" + std::string(tok) + "'");
    return v;
}

std::int64_t
StateReader::i()
{
    const std::string_view tok = token();
    char buf[32];
    if (tok.size() >= sizeof(buf))
        fail("oversized integer token");
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(buf, &end, 10);
    if (end != buf + tok.size() || errno == ERANGE)
        fail("malformed integer '" + std::string(tok) + "'");
    return v;
}

bool
StateReader::b()
{
    const std::uint64_t v = u();
    if (v > 1)
        fail("malformed boolean (" + std::to_string(v) + ")");
    return v == 1;
}

double
StateReader::d()
{
    const std::string_view tok = token();
    char buf[64];
    if (tok.size() >= sizeof(buf))
        fail("oversized float token");
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    char *end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + tok.size())
        fail("malformed hex float '" + std::string(tok) + "'");
    return v;
}

std::string
StateReader::s()
{
    if (pos_ >= data_.size())
        fail("payload truncated");
    if (data_[pos_] != 's')
        fail("expected string token");
    ++pos_;
    // Parse "<len>:" then take len raw bytes.
    std::uint64_t len = 0;
    bool any = false;
    while (pos_ < data_.size() && data_[pos_] >= '0' &&
           data_[pos_] <= '9') {
        const std::uint64_t digit =
            static_cast<std::uint64_t>(data_[pos_] - '0');
        if (len > (remaining() / 10) + 1)
            fail("string length overflows payload");
        len = len * 10 + digit;
        ++pos_;
        any = true;
    }
    if (!any || pos_ >= data_.size() || data_[pos_] != ':')
        fail("malformed string length prefix");
    ++pos_;
    if (len > remaining())
        fail("string length " + std::to_string(len) +
             " exceeds remaining payload");
    std::string out(data_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    if (pos_ < data_.size()) {
        if (data_[pos_] != ' ')
            fail("missing separator after string");
        ++pos_;
    }
    return out;
}

std::uint64_t
StateReader::count(std::uint64_t max_items)
{
    const std::uint64_t n = u();
    if (n > max_items)
        fail("element count " + std::to_string(n) +
             " exceeds bound " + std::to_string(max_items));
    // Each element encodes to at least two bytes (token + separator);
    // reject corrupted counts before any allocation happens.
    if (n > 0 && (n - 1) > remaining() / 2)
        fail("element count " + std::to_string(n) +
             " exceeds remaining payload");
    return n;
}

void
StateReader::finish()
{
    if (pos_ < data_.size())
        fail("trailing bytes after payload (" +
             std::to_string(data_.size() - pos_) + ")");
}

// ---------------------------------------------------------------------
// Label interning
// ---------------------------------------------------------------------

const char *
internLabel(const std::string &label)
{
    static std::mutex mutex;
    static std::unordered_set<std::string> table;
    const std::lock_guard<std::mutex> lock(mutex);
    return table.insert(label).first->c_str();
}

} // namespace mask
