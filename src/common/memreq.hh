/**
 * @file
 * The in-flight memory request record and its pool.
 *
 * Every access that travels below the L1 structures (L1D misses and
 * page table walk reads) is represented by one MemRequest owned by a
 * RequestPool. Components pass ReqId handles; the pool guarantees
 * stable storage and O(1) allocate/free.
 */

#ifndef MASK_COMMON_MEMREQ_HH
#define MASK_COMMON_MEMREQ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

/** One in-flight memory request below the private L1 structures. */
struct MemRequest
{
    Addr paddr = 0;             //!< physical byte address
    Asid asid = 0;
    AppId app = 0;
    CoreId core = 0;
    WarpId warp = 0;
    ReqType type = ReqType::Data;
    ReqOrigin origin = ReqOrigin::WarpData;
    /**
     * Page walk depth tag (Section 5.3): 0 for data demand requests,
     * 1..4 for the page table level a walk read targets (1 = root).
     */
    std::uint8_t pwLevel = 0;
    /** Index of the owning walk when origin == PageWalk. */
    std::uint32_t walkId = 0;
    /** MASK L2 bypass decision, latched when dispatched toward L2. */
    bool bypassL2 = false;
    /** True when this request owns an L2 MSHR entry (primary miss). */
    bool mshrPrimary = false;
    /** True once the L2 probe counted toward hit/miss statistics, so
     *  MSHR-full retries do not double-count. */
    bool l2StatsCounted = false;
    /** True while the request occupies a slot in some queue. */
    bool live = false;
    /** Last pipeline location, for watchdog/crash diagnostics. */
    const char *where = "alloc";

    Cycle issueCycle = 0;       //!< creation time
    Cycle dramEnqueueCycle = 0; //!< entry into a DRAM request buffer

    void
    serialize(StateWriter &w) const
    {
        w.tag("req");
        w.u(paddr);
        w.u(asid);
        w.u(app);
        w.u(core);
        w.u(warp);
        w.u(static_cast<std::uint64_t>(type));
        w.u(static_cast<std::uint64_t>(origin));
        w.u(pwLevel);
        w.u(walkId);
        w.b(bypassL2);
        w.b(mshrPrimary);
        w.b(l2StatsCounted);
        w.b(live);
        w.s(where);
        w.u(issueCycle);
        w.u(dramEnqueueCycle);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("req");
        paddr = r.u();
        asid = static_cast<Asid>(r.u());
        app = static_cast<AppId>(r.u());
        core = static_cast<CoreId>(r.u());
        warp = static_cast<WarpId>(r.u());
        type = static_cast<ReqType>(r.u());
        origin = static_cast<ReqOrigin>(r.u());
        pwLevel = static_cast<std::uint8_t>(r.u());
        walkId = static_cast<std::uint32_t>(r.u());
        bypassL2 = r.b();
        mshrPrimary = r.b();
        l2StatsCounted = r.b();
        live = r.b();
        // `where` normally points at string literals; interning gives
        // the restored label the same process lifetime.
        where = internLabel(r.s());
        issueCycle = r.u();
        dramEnqueueCycle = r.u();
    }
};

/** Free-list pool of MemRequest records addressed by ReqId. */
class RequestPool
{
  public:
    /**
     * Pre-size the pool so steady-state allocation never reallocates
     * the backing vector (the GPU derives the bound from its config:
     * one request per L1 MSHR entry plus one per walker thread).
     */
    void
    reserve(std::size_t slots)
    {
        reqs_.reserve(slots);
        free_.reserve(slots);
    }

    /**
     * Cap on concurrently-live requests. Exceeding it trips a
     * SimInvariantError: unplanned pool growth means some component
     * holds more in-flight state than the configuration admits, and
     * must be visible instead of silently absorbed. 0 disables.
     */
    void setHighWater(std::size_t limit) { highWater_ = limit; }

    ReqId
    alloc()
    {
        ReqId id;
        if (!free_.empty()) {
            id = free_.back();
            free_.pop_back();
            reqs_[id] = MemRequest{};
        } else {
            id = static_cast<ReqId>(reqs_.size());
            reqs_.emplace_back();
        }
        reqs_[id].live = true;
        ++liveCount_;
        ++totalAllocated_;
        if (liveCount_ > peakLive_) {
            peakLive_ = liveCount_;
            SIM_CHECK_CTX(highWater_ == 0 || liveCount_ <= highWater_,
                          "common.memreq", kUnknownCycle,
                          "live requests exceeded the configured "
                          "high-water mark (" +
                              std::to_string(highWater_) + ")",
                          CheckContext{.reqId = id});
        }
        return id;
    }

    void
    release(ReqId id)
    {
        SIM_CHECK_CTX(id < reqs_.size() && reqs_[id].live,
                      "common.memreq", kUnknownCycle,
                      "released request not live (double free?)",
                      CheckContext{.reqId = id});
        reqs_[id].live = false;
        free_.push_back(id);
        --liveCount_;
    }

    MemRequest &operator[](ReqId id) { return reqs_[id]; }
    const MemRequest &operator[](ReqId id) const { return reqs_[id]; }

    std::size_t liveCount() const { return liveCount_; }
    std::size_t capacity() const { return reqs_.size(); }
    /** Most requests ever live at once. */
    std::size_t peakLive() const { return peakLive_; }
    /** Cumulative alloc() calls (requests/sec observability). */
    std::uint64_t totalAllocated() const { return totalAllocated_; }

    /**
     * Snapshot the pool. ReqIds allocate LIFO off the free list, so
     * the exact free-list order is semantic state: a restored run must
     * hand out the same ids in the same order. Dead slots are elided
     * (alloc() resets them before reuse).
     */
    void
    serialize(StateWriter &w) const
    {
        w.tag("pool");
        w.u(reqs_.size());
        for (const MemRequest &req : reqs_) {
            w.b(req.live);
            if (req.live)
                req.serialize(w);
        }
        putUintSeq(w, free_);
        w.u(peakLive_);
        w.u(highWater_);
        w.u(totalAllocated_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("pool");
        const std::uint64_t cap = r.count(kMaxSeqItems);
        reqs_.assign(static_cast<std::size_t>(cap), MemRequest{});
        liveCount_ = 0;
        for (MemRequest &req : reqs_) {
            if (r.b()) {
                req.deserialize(r);
                ++liveCount_;
            }
        }
        getUintSeq(r, free_, cap);
        peakLive_ = r.u();
        highWater_ = r.u();
        totalAllocated_ = r.u();
        if (liveCount_ + free_.size() != reqs_.size())
            r.fail("request pool free list inconsistent with live "
                   "slots");
        for (const ReqId id : free_) {
            if (id >= reqs_.size() || reqs_[id].live)
                r.fail("free-list entry " + std::to_string(id) +
                       " refers to a live slot");
        }
    }

  private:
    std::vector<MemRequest> reqs_;
    std::vector<ReqId> free_;
    std::size_t liveCount_ = 0;
    std::size_t peakLive_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t totalAllocated_ = 0;
};

} // namespace mask

#endif // MASK_COMMON_MEMREQ_HH
