#include "common/config.hh"

#include <cstring>
#include <string>

namespace mask {

namespace {

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

void
require(bool ok, const std::string &message)
{
    if (!ok)
        throw ConfigError(message);
}

void
validateCache(const char *name, const CacheConfig &cfg)
{
    const std::string who = name;
    require(cfg.sizeBytes > 0, who + ": sizeBytes must be > 0");
    require(cfg.lineBytes > 0, who + ": lineBytes must be > 0");
    require(isPow2(cfg.lineBytes),
            who + ": lineBytes must be a power of two");
    require(cfg.ways > 0, who + ": ways must be > 0");
    require(cfg.sizeBytes % cfg.lineBytes == 0,
            who + ": sizeBytes must be a multiple of lineBytes");
    require(cfg.numLines() % cfg.ways == 0,
            who + ": line count must be a multiple of ways");
    require(cfg.numSets() > 0, who + ": set count must be > 0");
    require(isPow2(cfg.numSets()),
            who + ": set count must be a power of two (got " +
                std::to_string(cfg.numSets()) + ")");
    require(cfg.banks > 0, who + ": banks must be > 0");
    require(cfg.portsPerBank > 0, who + ": portsPerBank must be > 0");
    require(cfg.mshrs > 0, who + ": mshrs must be > 0");
}

void
validateTlb(const char *name, const TlbConfig &cfg)
{
    const std::string who = name;
    require(cfg.entries > 0, who + ": entries must be > 0");
    if (cfg.ways != 0) {
        require(cfg.entries % cfg.ways == 0,
                who + ": entries must be a multiple of ways");
        require(isPow2(cfg.entries / cfg.ways),
                who + ": set count must be a power of two (got " +
                    std::to_string(cfg.entries / cfg.ways) + ")");
    }
    require(cfg.ports > 0, who + ": ports must be > 0");
    require(cfg.mshrs > 0, who + ": mshrs must be > 0");
}

void
validateProb(const char *name, double p)
{
    require(p >= 0.0 && p <= 1.0,
            std::string(name) + " must be within [0, 1]");
}

} // namespace

void
validateConfig(const GpuConfig &cfg)
{
    require(cfg.numCores > 0, "numCores must be > 0");
    require(cfg.warpsPerCore > 0, "warpsPerCore must be > 0");
    require(cfg.threadsPerWarp > 0, "threadsPerWarp must be > 0");
    require(cfg.lsuWidth > 0, "lsuWidth must be > 0");
    require(cfg.lineBits > 0 && cfg.lineBits < cfg.pageBits,
            "lineBits must be in (0, pageBits)");
    require(cfg.pageBits <= 30, "pageBits must be <= 30");

    validateTlb("l1Tlb", cfg.l1Tlb);
    validateTlb("l2Tlb", cfg.l2Tlb);
    validateCache("pwCache", cfg.pwCache);
    validateCache("l1d", cfg.l1d);
    validateCache("l2", cfg.l2);

    require(cfg.dram.channels > 0, "dram.channels must be > 0");
    require(cfg.dram.banksPerChannel > 0,
            "dram.banksPerChannel must be > 0");
    require(cfg.dram.rowBytes > 0 && isPow2(cfg.dram.rowBytes),
            "dram.rowBytes must be a power of two > 0");
    require(cfg.dram.rowBytes >= cfg.lineBytes(),
            "dram.rowBytes must be >= the cache line size");
    require(cfg.dram.queueEntries > 0, "dram.queueEntries must be > 0");

    require(cfg.walker.maxConcurrentWalks > 0,
            "walker.maxConcurrentWalks must be > 0");
    require(cfg.walker.levels > 0 && cfg.walker.levels <= 4,
            "walker.levels must be in [1, 4]");

    require(cfg.mask.epochCycles > 0, "mask.epochCycles must be > 0");
    require(cfg.mask.initialTokenFraction > 0.0 &&
                cfg.mask.initialTokenFraction <= 1.0,
            "mask.initialTokenFraction must be within (0, 1]");
    require(cfg.mask.tokenStepFraction > 0.0,
            "mask.tokenStepFraction must be > 0");
    require(cfg.mask.bypassCacheEntries > 0,
            "mask.bypassCacheEntries must be > 0");
    require(cfg.mask.sampleProbeInterval > 0,
            "mask.sampleProbeInterval must be > 0");
    require(cfg.mask.goldenQueueEntries > 0,
            "mask.goldenQueueEntries must be > 0");
    require(cfg.mask.silverQueueEntries > 0,
            "mask.silverQueueEntries must be > 0");
    require(cfg.mask.normalQueueEntries > 0,
            "mask.normalQueueEntries must be > 0");
    require(cfg.mask.threshMax > 0, "mask.threshMax must be > 0");

    if (!cfg.coreShares.empty()) {
        std::uint64_t total = 0;
        for (const std::uint32_t share : cfg.coreShares) {
            require(share > 0, "coreShares entries must be > 0");
            total += share;
        }
        require(total == cfg.numCores,
                "coreShares must sum to numCores");
    }

    require(!cfg.harden.watchdog.enabled ||
                cfg.harden.watchdog.maxAge > 0,
            "harden.watchdog.maxAge must be > 0 when enabled");
    const FaultInjectConfig &fault = cfg.harden.fault;
    validateProb("harden.fault.dramDelayProb", fault.dramDelayProb);
    validateProb("harden.fault.walkDropProb", fault.walkDropProb);
    validateProb("harden.fault.portStallProb", fault.portStallProb);
    if (fault.enabled) {
        require(fault.dramDelayProb == 0.0 ||
                    fault.dramDelayCycles > 0,
                "harden.fault.dramDelayCycles must be > 0");
        require(!fault.walkDropRetry || fault.walkDropProb == 0.0 ||
                    fault.walkRetryDelay > 0,
                "harden.fault.walkRetryDelay must be > 0");
        require(fault.portStallProb == 0.0 ||
                    fault.portStallCycles > 0,
                "harden.fault.portStallCycles must be > 0");
    }
}

DesignPoint
designPointByName(const std::string &name)
{
    for (const DesignPoint point : kAllDesignPoints) {
        if (name == designPointName(point))
            return point;
    }
    throw ConfigError("unknown design point name: " + name);
}

const char *
designPointName(DesignPoint point)
{
    switch (point) {
      case DesignPoint::Static:
        return "Static";
      case DesignPoint::PwCache:
        return "PWCache";
      case DesignPoint::SharedTlb:
        return "SharedTLB";
      case DesignPoint::MaskTlb:
        return "MASK-TLB";
      case DesignPoint::MaskCache:
        return "MASK-Cache";
      case DesignPoint::MaskDram:
        return "MASK-DRAM";
      case DesignPoint::Mask:
        return "MASK";
      case DesignPoint::Ideal:
        return "Ideal";
    }
    return "?";
}

GpuConfig
applyDesignPoint(GpuConfig base, DesignPoint point)
{
    base.design = TranslationDesign::SharedTlb;
    // Reset the mechanism selection but preserve any tuning fields
    // (epoch length, queue sizes, guards) the caller customized.
    base.mask.tlbTokens = false;
    base.mask.l2Bypass = false;
    base.mask.dramSched = false;
    base.partition = PartitionConfig{};

    switch (point) {
      case DesignPoint::Static:
        base.partition.partitionL2 = true;
        base.partition.partitionDramChannels = true;
        break;
      case DesignPoint::PwCache:
        base.design = TranslationDesign::PwCache;
        break;
      case DesignPoint::SharedTlb:
        break;
      case DesignPoint::MaskTlb:
        base.mask.tlbTokens = true;
        break;
      case DesignPoint::MaskCache:
        base.mask.l2Bypass = true;
        break;
      case DesignPoint::MaskDram:
        base.mask.dramSched = true;
        break;
      case DesignPoint::Mask:
        base.mask.tlbTokens = true;
        base.mask.l2Bypass = true;
        base.mask.dramSched = true;
        break;
      case DesignPoint::Ideal:
        base.design = TranslationDesign::Ideal;
        break;
    }
    return base;
}

GpuConfig
maxwellConfig()
{
    // Defaults in GpuConfig are the Maxwell-like Table 1 parameters.
    GpuConfig cfg;
    cfg.name = "maxwell";
    return cfg;
}

GpuConfig
fermiConfig()
{
    GpuConfig cfg;
    cfg.name = "fermi";
    // GTX 480: 15 SMs, smaller caches, narrower memory system.
    // 12 ways keeps the 768KB L2 at a power-of-two set count, and the
    // six physical memory controllers are modeled as four channels
    // (the address mapper interleaves with power-of-two masks).
    cfg.numCores = 15;
    cfg.warpsPerCore = 48;
    cfg.l1d = CacheConfig{16384, 128, 4, 1, 1, 1, 32};
    cfg.l2 = CacheConfig{768 * 1024, 128, 12, 10, 8, 2, 128};
    cfg.l2Tlb = TlbConfig{512, 16, 10, 2, 128};
    cfg.dram.channels = 4;
    return cfg;
}

GpuConfig
integratedGpuConfig()
{
    GpuConfig cfg;
    cfg.name = "integrated";
    // Power et al. style integrated GPU: few cores, a single shared
    // memory channel pair, small shared L2.
    cfg.numCores = 16;
    cfg.warpsPerCore = 48;
    cfg.l2 = CacheConfig{1024 * 1024, 128, 16, 10, 8, 2, 128};
    cfg.l2Tlb = TlbConfig{512, 16, 10, 2, 128};
    cfg.dram.channels = 2;
    cfg.dram.banksPerChannel = 8;
    // DDR3-like latencies are longer in core cycles.
    cfg.dram.tRcd = 28;
    cfg.dram.tRp = 28;
    cfg.dram.tCl = 28;
    cfg.dram.tBurst = 8;
    return cfg;
}

namespace {

/** FNV-1a style accumulation with a 64-bit avalanche finish per mix. */
void
mix(std::uint64_t &h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

void
mixDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(h, bits);
}

void
mixCache(std::uint64_t &h, const CacheConfig &c)
{
    mix(h, c.sizeBytes);
    mix(h, c.lineBytes);
    mix(h, c.ways);
    mix(h, c.latency);
    mix(h, c.banks);
    mix(h, c.portsPerBank);
    mix(h, c.mshrs);
}

void
mixTlb(std::uint64_t &h, const TlbConfig &t)
{
    mix(h, t.entries);
    mix(h, t.ways);
    mix(h, t.latency);
    mix(h, t.ports);
    mix(h, t.mshrs);
}

} // namespace

std::uint64_t
configFingerprint(const GpuConfig &cfg)
{
    // Deliberately excludes cfg.name: benches reuse one name across
    // distinct parameter sets, and the alone-IPC memo must never treat
    // those as interchangeable. Also excludes cfg.cycleSkip: the
    // event-driven loop is bit-identical to per-cycle stepping, so two
    // configs differing only in it run identically by contract (the
    // CycleSkip tier-1 suite enforces this).
    std::uint64_t h = 0x6d61736b2d666e76ull; // "mask-fnv"

    mix(h, cfg.numCores);
    mix(h, cfg.warpsPerCore);
    mix(h, cfg.threadsPerWarp);
    mix(h, cfg.lsuWidth);
    mix(h, cfg.pageBits);
    mix(h, cfg.lineBits);
    mix(h, static_cast<std::uint64_t>(cfg.design));

    mixTlb(h, cfg.l1Tlb);
    mixTlb(h, cfg.l2Tlb);
    mixCache(h, cfg.pwCache);
    mixCache(h, cfg.l1d);
    mixCache(h, cfg.l2);

    mix(h, cfg.dram.channels);
    mix(h, cfg.dram.banksPerChannel);
    mix(h, cfg.dram.rowBytes);
    mix(h, cfg.dram.tRcd);
    mix(h, cfg.dram.tRp);
    mix(h, cfg.dram.tCl);
    mix(h, cfg.dram.tBurst);
    mix(h, cfg.dram.queueEntries);
    mix(h, cfg.dram.starvationCap);

    mix(h, cfg.walker.maxConcurrentWalks);
    mix(h, cfg.walker.levels);

    mix(h, cfg.mask.tlbTokens);
    mix(h, cfg.mask.l2Bypass);
    mix(h, cfg.mask.dramSched);
    mix(h, cfg.mask.epochCycles);
    mixDouble(h, cfg.mask.initialTokenFraction);
    mixDouble(h, cfg.mask.missRateDelta);
    mixDouble(h, cfg.mask.tokenStepFraction);
    mix(h, cfg.mask.bypassCacheEntries);
    mix(h, cfg.mask.minBypassSamples);
    mix(h, cfg.mask.sampleProbeInterval);
    mix(h, cfg.mask.goldenQueueEntries);
    mix(h, cfg.mask.silverQueueEntries);
    mix(h, cfg.mask.normalQueueEntries);
    mix(h, cfg.mask.threshMax);
    mix(h, cfg.mask.goldenMaxDelay);
    mix(h, cfg.mask.silverMaxDelay);

    mix(h, cfg.partition.partitionL2);
    mix(h, cfg.partition.partitionDramChannels);

    mix(h, cfg.harden.watchdog.enabled);
    mix(h, cfg.harden.watchdog.sweepInterval);
    mix(h, cfg.harden.watchdog.maxAge);
    mix(h, cfg.harden.fault.enabled);
    mix(h, cfg.harden.fault.seed);
    mixDouble(h, cfg.harden.fault.dramDelayProb);
    mix(h, cfg.harden.fault.dramDelayCycles);
    mixDouble(h, cfg.harden.fault.walkDropProb);
    mix(h, cfg.harden.fault.walkDropRetry);
    mix(h, cfg.harden.fault.walkRetryDelay);
    mix(h, cfg.harden.fault.shootdownInterval);
    mixDouble(h, cfg.harden.fault.portStallProb);
    mix(h, cfg.harden.fault.portStallCycles);
    mix(h, cfg.harden.poolHighWater);

    mix(h, cfg.coreShares.size());
    for (const std::uint32_t share : cfg.coreShares)
        mix(h, share);

    mix(h, cfg.seed);
    return h;
}

std::uint64_t
warmupFingerprint(const GpuConfig &cfg)
{
    // Hash over only the fields that affect cycles < warmup. Every
    // behavioural GpuConfig field qualifies today (see the
    // classification rules on the declaration): the measurement
    // length and the ckpt/obs/sweep knobs live outside GpuConfig, and
    // the excluded fields — name, cycleSkip — are behaviour-neutral
    // by contract. The seed constant differs from configFingerprint's
    // so the two hash families can never be confused for one another
    // (a warm snapshot header records THIS fingerprint).
    std::uint64_t h = 0x6d61736b2d77726dull; // "mask-wrm"

    // Core organization & virtual memory geometry.
    mix(h, cfg.numCores);
    mix(h, cfg.warpsPerCore);
    mix(h, cfg.threadsPerWarp);
    mix(h, cfg.lsuWidth);
    mix(h, cfg.pageBits);
    mix(h, cfg.lineBits);
    mix(h, static_cast<std::uint64_t>(cfg.design));

    // Structure sizes and timing.
    mixTlb(h, cfg.l1Tlb);
    mixTlb(h, cfg.l2Tlb);
    mixCache(h, cfg.pwCache);
    mixCache(h, cfg.l1d);
    mixCache(h, cfg.l2);

    mix(h, cfg.dram.channels);
    mix(h, cfg.dram.banksPerChannel);
    mix(h, cfg.dram.rowBytes);
    mix(h, cfg.dram.tRcd);
    mix(h, cfg.dram.tRp);
    mix(h, cfg.dram.tCl);
    mix(h, cfg.dram.tBurst);
    mix(h, cfg.dram.queueEntries);
    mix(h, cfg.dram.starvationCap);

    mix(h, cfg.walker.maxConcurrentWalks);
    mix(h, cfg.walker.levels);

    // MASK mechanisms adapt from cycle 0 — all warmup-affecting.
    mix(h, cfg.mask.tlbTokens);
    mix(h, cfg.mask.l2Bypass);
    mix(h, cfg.mask.dramSched);
    mix(h, cfg.mask.epochCycles);
    mixDouble(h, cfg.mask.initialTokenFraction);
    mixDouble(h, cfg.mask.missRateDelta);
    mixDouble(h, cfg.mask.tokenStepFraction);
    mix(h, cfg.mask.bypassCacheEntries);
    mix(h, cfg.mask.minBypassSamples);
    mix(h, cfg.mask.sampleProbeInterval);
    mix(h, cfg.mask.goldenQueueEntries);
    mix(h, cfg.mask.silverQueueEntries);
    mix(h, cfg.mask.normalQueueEntries);
    mix(h, cfg.mask.threshMax);
    mix(h, cfg.mask.goldenMaxDelay);
    mix(h, cfg.mask.silverMaxDelay);

    mix(h, cfg.partition.partitionL2);
    mix(h, cfg.partition.partitionDramChannels);

    // Hardening: the watchdog can trip mid-warmup and fault injection
    // perturbs warmup timing, so both are warmup-affecting.
    mix(h, cfg.harden.watchdog.enabled);
    mix(h, cfg.harden.watchdog.sweepInterval);
    mix(h, cfg.harden.watchdog.maxAge);
    mix(h, cfg.harden.fault.enabled);
    mix(h, cfg.harden.fault.seed);
    mixDouble(h, cfg.harden.fault.dramDelayProb);
    mix(h, cfg.harden.fault.dramDelayCycles);
    mixDouble(h, cfg.harden.fault.walkDropProb);
    mix(h, cfg.harden.fault.walkDropRetry);
    mix(h, cfg.harden.fault.walkRetryDelay);
    mix(h, cfg.harden.fault.shootdownInterval);
    mixDouble(h, cfg.harden.fault.portStallProb);
    mix(h, cfg.harden.fault.portStallCycles);
    mix(h, cfg.harden.poolHighWater);

    mix(h, cfg.coreShares.size());
    for (const std::uint32_t share : cfg.coreShares)
        mix(h, share);

    mix(h, cfg.seed);
    return h;
}

} // namespace mask
