#include "common/config.hh"

namespace mask {

const char *
designPointName(DesignPoint point)
{
    switch (point) {
      case DesignPoint::Static:
        return "Static";
      case DesignPoint::PwCache:
        return "PWCache";
      case DesignPoint::SharedTlb:
        return "SharedTLB";
      case DesignPoint::MaskTlb:
        return "MASK-TLB";
      case DesignPoint::MaskCache:
        return "MASK-Cache";
      case DesignPoint::MaskDram:
        return "MASK-DRAM";
      case DesignPoint::Mask:
        return "MASK";
      case DesignPoint::Ideal:
        return "Ideal";
    }
    return "?";
}

GpuConfig
applyDesignPoint(GpuConfig base, DesignPoint point)
{
    base.design = TranslationDesign::SharedTlb;
    // Reset the mechanism selection but preserve any tuning fields
    // (epoch length, queue sizes, guards) the caller customized.
    base.mask.tlbTokens = false;
    base.mask.l2Bypass = false;
    base.mask.dramSched = false;
    base.partition = PartitionConfig{};

    switch (point) {
      case DesignPoint::Static:
        base.partition.partitionL2 = true;
        base.partition.partitionDramChannels = true;
        break;
      case DesignPoint::PwCache:
        base.design = TranslationDesign::PwCache;
        break;
      case DesignPoint::SharedTlb:
        break;
      case DesignPoint::MaskTlb:
        base.mask.tlbTokens = true;
        break;
      case DesignPoint::MaskCache:
        base.mask.l2Bypass = true;
        break;
      case DesignPoint::MaskDram:
        base.mask.dramSched = true;
        break;
      case DesignPoint::Mask:
        base.mask.tlbTokens = true;
        base.mask.l2Bypass = true;
        base.mask.dramSched = true;
        break;
      case DesignPoint::Ideal:
        base.design = TranslationDesign::Ideal;
        break;
    }
    return base;
}

GpuConfig
maxwellConfig()
{
    // Defaults in GpuConfig are the Maxwell-like Table 1 parameters.
    GpuConfig cfg;
    cfg.name = "maxwell";
    return cfg;
}

GpuConfig
fermiConfig()
{
    GpuConfig cfg;
    cfg.name = "fermi";
    // GTX 480: 15 SMs, smaller caches, narrower memory system.
    // 12 ways keeps the 768KB L2 at a power-of-two set count, and the
    // six physical memory controllers are modeled as four channels
    // (the address mapper interleaves with power-of-two masks).
    cfg.numCores = 15;
    cfg.warpsPerCore = 48;
    cfg.l1d = CacheConfig{16384, 128, 4, 1, 1, 1, 32};
    cfg.l2 = CacheConfig{768 * 1024, 128, 12, 10, 8, 2, 128};
    cfg.l2Tlb = TlbConfig{512, 16, 10, 2, 128};
    cfg.dram.channels = 4;
    return cfg;
}

GpuConfig
integratedGpuConfig()
{
    GpuConfig cfg;
    cfg.name = "integrated";
    // Power et al. style integrated GPU: few cores, a single shared
    // memory channel pair, small shared L2.
    cfg.numCores = 16;
    cfg.warpsPerCore = 48;
    cfg.l2 = CacheConfig{1024 * 1024, 128, 16, 10, 8, 2, 128};
    cfg.l2Tlb = TlbConfig{512, 16, 10, 2, 128};
    cfg.dram.channels = 2;
    cfg.dram.banksPerChannel = 8;
    // DDR3-like latencies are longer in core cycles.
    cfg.dram.tRcd = 28;
    cfg.dram.tRp = 28;
    cfg.dram.tCl = 28;
    cfg.dram.tBurst = 8;
    return cfg;
}

} // namespace mask
