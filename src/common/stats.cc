#include "common/stats.hh"

#include <algorithm>
#include <cstdio>

namespace mask {

double
safeDiv(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

std::string
pct(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(std::max<std::size_t>(num_buckets, 1), 0)
{
}

void
Histogram::add(std::uint64_t value)
{
    std::size_t idx = static_cast<std::size_t>(value / width_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    ++total_;
    sum_ += static_cast<double>(value);
}

double
Histogram::mean() const
{
    return safeDiv(sum_, static_cast<double>(total_));
}

std::uint64_t
Histogram::percentileUpperBound(double fraction) const
{
    if (total_ == 0)
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const std::uint64_t target =
        static_cast<std::uint64_t>(fraction * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (i + 1) * width_;
    }
    return buckets_.size() * width_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

} // namespace mask
