/**
 * @file
 * Structured runtime invariant checks (DESIGN.md §6 hard invariants).
 *
 * SIM_CHECK replaces bare assert() on hot invariants: a failure throws
 * a SimInvariantError carrying the module, simulation cycle, and any
 * request identifiers the caller attached, so the runner and bench
 * binaries can emit one diagnostic block (and a deterministic
 * crash-replay file) instead of abort()ing mid-stats.
 */

#ifndef MASK_COMMON_CHECK_HH
#define MASK_COMMON_CHECK_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace mask {

/** Sentinel for "cycle unknown at the throw site". */
constexpr Cycle kUnknownCycle = kNeverCycle;

/**
 * Optional identifiers attached to a failed check. Unset fields keep
 * the sentinel and are omitted from the formatted diagnostic.
 */
struct CheckContext
{
    static constexpr std::uint64_t kUnset = ~std::uint64_t{0};

    std::uint64_t reqId = kUnset;
    std::uint64_t asid = kUnset;
    std::uint64_t vpn = kUnset;
    std::uint64_t app = kUnset;
    std::uint64_t walkId = kUnset;
    std::uint64_t paddr = kUnset;
    std::uint64_t age = kUnset; //!< cycles since the request was issued

    /** " req=3 asid=1 vpn=0x42 ..." (leading space), or "". */
    std::string describe() const;
};

/**
 * A violated hard invariant. what() is a single formatted line;
 * diagnostic() is the multi-line block callers print on catch.
 */
class SimInvariantError : public std::runtime_error
{
  public:
    SimInvariantError(std::string module, Cycle cycle,
                      std::string detail, CheckContext ctx = {});

    const std::string &module() const { return module_; }
    Cycle cycle() const { return cycle_; }
    const std::string &detail() const { return detail_; }
    const CheckContext &context() const { return ctx_; }

    /** One fenced multi-line report suitable for stderr. */
    std::string diagnostic() const;

  private:
    std::string module_;
    Cycle cycle_;
    std::string detail_;
    CheckContext ctx_;
};

namespace detail {

[[noreturn]] void throwCheckFailure(const char *cond, const char *module,
                                    Cycle cycle,
                                    const std::string &detail,
                                    const CheckContext &ctx);

} // namespace detail

/**
 * Invariant check with no request context. @p cycle may be
 * kUnknownCycle in modules that do not track simulation time.
 */
#define SIM_CHECK(cond_, module_, cycle_, detail_)                       \
    do {                                                                 \
        if (!(cond_)) [[unlikely]] {                                     \
            ::mask::detail::throwCheckFailure(                           \
                #cond_, (module_), (cycle_), (detail_),                  \
                ::mask::CheckContext{});                                 \
        }                                                                \
    } while (0)

/** Invariant check carrying request identifiers (a CheckContext). */
#define SIM_CHECK_CTX(cond_, module_, cycle_, detail_, ctx_)             \
    do {                                                                 \
        if (!(cond_)) [[unlikely]] {                                     \
            ::mask::detail::throwCheckFailure(                           \
                #cond_, (module_), (cycle_), (detail_), (ctx_));         \
        }                                                                \
    } while (0)

} // namespace mask

#endif // MASK_COMMON_CHECK_HH
