/**
 * @file
 * Full simulator configuration: the paper's Table 1 parameters, the
 * MASK mechanism parameters (Sections 5 and 6), and the evaluated
 * design points of Section 7.
 */

#ifndef MASK_COMMON_CONFIG_HH
#define MASK_COMMON_CONFIG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mask {

/** A rejected configuration (validateConfig). */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error("config error: " + what)
    {}
};

/** Parameters of one cache-like structure. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t lineBytes = 128;
    std::uint32_t ways = 4;
    std::uint32_t latency = 1;  //!< access latency in cycles
    std::uint32_t banks = 1;
    std::uint32_t portsPerBank = 1;
    std::uint32_t mshrs = 64;

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    std::uint32_t numSets() const { return numLines() / ways; }
};

/** Parameters of one TLB structure. */
struct TlbConfig
{
    std::uint32_t entries = 64;
    std::uint32_t ways = 0;   //!< 0 means fully associative
    std::uint32_t latency = 1;
    std::uint32_t ports = 1;
    std::uint32_t mshrs = 64;
};

/** GDDR5-like DRAM timing, expressed in core clock cycles. */
struct DramConfig
{
    std::uint32_t channels = 8;
    std::uint32_t banksPerChannel = 8;
    std::uint32_t rowBytes = 2048;
    std::uint32_t tRcd = 15;      //!< activate -> column command
    std::uint32_t tRp = 15;       //!< precharge
    std::uint32_t tCl = 15;       //!< column command -> first data
    std::uint32_t tBurst = 2;     //!< data bus occupancy per request
    std::uint32_t queueEntries = 192; //!< per-channel request buffer
    /**
     * FR-FCFS starvation cap: a request older than this many scheduling
     * decisions is serviced regardless of row-hit status, matching the
     * cap conventional controllers use to bound unfairness.
     */
    std::uint32_t starvationCap = 16;
};

/** Page table walker parameters. */
struct WalkerConfig
{
    std::uint32_t maxConcurrentWalks = 64;
    std::uint32_t levels = 4;
};

/** Parameters of the three MASK mechanisms (Section 5). */
struct MaskConfig
{
    bool tlbTokens = false;   //!< TLB-Fill Tokens (Section 5.2)
    bool l2Bypass = false;    //!< Addr-Translation-Aware L2 Bypass (5.3)
    bool dramSched = false;   //!< Addr-Space-Aware DRAM Scheduler (5.4)

    /**
     * Adaptation epoch. The paper uses 100K cycles over runs of
     * hundreds of millions of cycles; our measured windows are
     * ~100-500K cycles, so the default epoch is scaled down
     * proportionally to keep several adaptation rounds per run.
     */
    Cycle epochCycles = 10000;
    double initialTokenFraction = 0.8; //!< InitialTokens (Section 6)
    double missRateDelta = 0.02;       //!< +/-2% token adjust trigger
    /** Tokens added/removed on an epoch adjustment, as a fraction of
     *  the application's total warp count. */
    double tokenStepFraction = 0.05;
    std::uint32_t bypassCacheEntries = 32;
    /** Minimum L2 accesses observed for a walk level before its hit
     *  rate is trusted for the bypass decision (Section 5.3). */
    std::uint32_t minBypassSamples = 32;
    /** A bypassed level still probes the L2 with probability
     *  1/sampleProbeInterval so its hit-rate estimate can recover when
     *  behaviour changes over time (Section 5.3). */
    std::uint32_t sampleProbeInterval = 64;
    std::uint32_t goldenQueueEntries = 16;
    std::uint32_t silverQueueEntries = 64;
    std::uint32_t normalQueueEntries = 192;
    std::uint32_t threshMax = 500;     //!< thresh_max of Equation 1
    /**
     * Bandwidth guard for the Golden Queue (Section 4.4: prioritize
     * translation "without sacrificing DRAM bandwidth utilization"):
     * a golden request that would close a row with data row-hits
     * still pending yields to them, for at most this many cycles.
     */
    Cycle goldenMaxDelay = 100;
    /** Same bandwidth guard for silver-over-normal priority. */
    Cycle silverMaxDelay = 200;
};

/**
 * Forward-progress watchdog (DESIGN.md §6 invariants, enforced at
 * runtime). The GPU top level sweeps every in-flight structure on a
 * fixed interval; any request, page walk, or TLB miss older than
 * maxAge — and any queue occupancy above its configured bound — trips
 * a SimInvariantError naming the stuck request chain.
 */
struct WatchdogConfig
{
    bool enabled = true;
    /** Cycles between sweeps; 0 disables sweeping entirely. */
    Cycle sweepInterval = 5000;
    /** Oldest age (cycles) any in-flight work item may reach. */
    Cycle maxAge = 200000;
};

/**
 * Deterministic fault injection. All injectors draw from one
 * RNG stream seeded by (seed, GpuConfig::seed), so a given
 * configuration produces a bit-identical fault schedule on every run —
 * the property the crash-replay flow depends on.
 */
struct FaultInjectConfig
{
    bool enabled = false;
    std::uint64_t seed = 1;

    /** Probability a DRAM response is held back dramDelayCycles. */
    double dramDelayProb = 0.0;
    Cycle dramDelayCycles = 500;

    /** Probability a returning page-walk PTE fetch is dropped. */
    double walkDropProb = 0.0;
    /** Dropped fetches are reissued after walkRetryDelay when true;
     *  when false the walk hangs and the watchdog must catch it. */
    bool walkDropRetry = true;
    Cycle walkRetryDelay = 200;

    /** Spurious full TLB shootdown every this many cycles (0 = off). */
    Cycle shootdownInterval = 0;

    /** Probability per cycle the shared L2 TLB input port stalls. */
    double portStallProb = 0.0;
    Cycle portStallCycles = 8;
};

/** Hardening knobs: runtime invariant watchdog + fault injection. */
struct HardenConfig
{
    WatchdogConfig watchdog;
    FaultInjectConfig fault;
    /**
     * Cap on concurrently-live entries in the request pool; exceeding
     * it trips a SimInvariantError so pool growth is observable
     * rather than a silent reallocation. 0 derives the bound from the
     * configuration (L1 MSHR entries + walker threads).
     */
    std::size_t poolHighWater = 0;
};

/**
 * Resource partitioning knobs for the Static baseline (Section 7):
 * NVIDIA GRID / AMD FirePro style fixed partitioning of the shared L2
 * cache and the memory channels across applications.
 */
struct PartitionConfig
{
    bool partitionL2 = false;
    bool partitionDramChannels = false;
};

/** Whole-GPU configuration. */
struct GpuConfig
{
    std::string name = "maxwell";

    // --- Core organization (Table 1) ---
    std::uint32_t numCores = 30;
    std::uint32_t warpsPerCore = 64;
    std::uint32_t threadsPerWarp = 64;
    /** Memory instructions a core may begin translating per cycle. */
    std::uint32_t lsuWidth = 1;

    // --- Virtual memory ---
    std::uint32_t pageBits = 12;  //!< 4KB pages; 21 for 2MB large pages
    std::uint32_t lineBits = 7;   //!< 128B lines

    TranslationDesign design = TranslationDesign::SharedTlb;

    TlbConfig l1Tlb{64, 0, 1, 1, 64};
    TlbConfig l2Tlb{512, 16, 10, 2, 128};
    CacheConfig pwCache{8192, 8, 16, 10, 1, 2, 16};

    CacheConfig l1d{16384, 128, 4, 1, 1, 1, 32};
    CacheConfig l2{2 * 1024 * 1024, 128, 16, 10, 16, 2, 256};

    DramConfig dram;
    WalkerConfig walker;
    MaskConfig mask;
    PartitionConfig partition;
    HardenConfig harden;

    /**
     * Explicit per-application core counts (must sum to numCores when
     * set). Empty means an even split. Used by the oracle partition
     * search (Section 6).
     */
    std::vector<std::uint32_t> coreShares;

    /**
     * Host-side switch for the event-driven main loop (DESIGN.md §9):
     * when no component has work, Gpu::run fast-forwards now_ to the
     * earliest nextEventCycle() instead of ticking every cycle.
     * Results are bit-identical either way, so — like name — this is
     * NOT part of configFingerprint. Forced off by MASK_NO_CYCLE_SKIP=1
     * and whenever fault injection is enabled (the injector's RNG
     * draws are scheduled per cycle).
     */
    bool cycleSkip = true;

    std::uint64_t seed = 1;

    std::uint64_t pageBytes() const { return 1ull << pageBits; }
    std::uint64_t lineBytes() const { return 1ull << lineBits; }
    bool ideal() const { return design == TranslationDesign::Ideal; }
};

/**
 * The design points evaluated in Section 7. Mask* presets layer the
 * named mechanism(s) on the SharedTlb baseline.
 */
enum class DesignPoint : std::uint8_t {
    Static,    //!< SharedTlb + statically partitioned L2/DRAM channels
    PwCache,   //!< Figure 2a baseline
    SharedTlb, //!< Figure 2b baseline
    MaskTlb,   //!< SharedTlb + TLB-Fill Tokens
    MaskCache, //!< SharedTlb + L2 bypass
    MaskDram,  //!< SharedTlb + DRAM scheduler
    Mask,      //!< all three mechanisms
    Ideal,     //!< all TLB accesses hit
};

/** Human-readable name of a design point ("MASK-TLB", ...). */
const char *designPointName(DesignPoint point);

/**
 * Cores assigned to application @p app when @p num_apps applications
 * share the GPU: an explicit coreShares entry if present, otherwise an
 * even split (earlier applications receive the remainder).
 */
inline std::uint32_t
coreShareOf(const GpuConfig &cfg, std::uint32_t num_apps,
            std::uint32_t app)
{
    if (!cfg.coreShares.empty() && app < cfg.coreShares.size())
        return cfg.coreShares[app];
    std::uint32_t share = cfg.numCores / num_apps;
    if (app < cfg.numCores % num_apps)
        ++share;
    return share;
}

/** All eight design points, in the paper's reporting order. */
inline constexpr DesignPoint kAllDesignPoints[] = {
    DesignPoint::Static,   DesignPoint::PwCache, DesignPoint::SharedTlb,
    DesignPoint::MaskTlb,  DesignPoint::MaskCache,
    DesignPoint::MaskDram, DesignPoint::Mask,    DesignPoint::Ideal,
};

/** Apply a design point to a base architecture configuration. */
GpuConfig applyDesignPoint(GpuConfig base, DesignPoint point);

/**
 * Reject malformed configurations before they become downstream UB:
 * zero-sized structures, non-power-of-two set counts, epoch = 0,
 * out-of-range probabilities. Throws ConfigError with a message naming
 * the offending field; the Gpu constructor calls this on every build.
 */
void validateConfig(const GpuConfig &cfg);

/** Design point from its reporting name ("MASK-TLB", ...). */
DesignPoint designPointByName(const std::string &name);

/**
 * Structural fingerprint of a configuration: a hash over every field
 * that affects simulation behaviour (and NOT over the free-form name,
 * which benches reuse across distinct parameter sets). Two configs
 * with equal fingerprints run identically; the alone-IPC memo keys on
 * this. Update alongside any new GpuConfig field.
 */
std::uint64_t configFingerprint(const GpuConfig &cfg);

/**
 * Warmup fingerprint: a hash over ONLY the fields that affect
 * behaviour during cycles < warmup (workload geometry, seed, design
 * selection, structure sizes, timing, hardening). Two configs with
 * equal warmup fingerprints simulate identical warmup prefixes, so a
 * snapshot taken at the warmup boundary of one forks into measure
 * phases of the others (DESIGN.md §14) — the warm-state cache keys on
 * this together with the bench list and the warmup length.
 *
 * Field classification rules (enforced by the exhaustiveness test in
 * tests/test_sweep_warm.cc, which fails whenever a GpuConfig field is
 * added without being classified here):
 *
 *  - warmup-affecting: any field the simulated machine reads before
 *    the measurement window starts. Today that is every behavioural
 *    field — the measurement length, checkpoint, observability and
 *    sweep knobs all live OUTSIDE GpuConfig (RunOptions / MASK_CKPT_*
 *    / MASK_TIMESERIES* / MASK_SWEEP_*).
 *  - measure-only / behaviour-neutral: excluded. Currently `name`
 *    (free-form label) and `cycleSkip` (the event-driven loop is
 *    bit-identical to per-cycle stepping by contract).
 */
std::uint64_t warmupFingerprint(const GpuConfig &cfg);

/** Maxwell-like baseline architecture (paper Table 1). */
GpuConfig maxwellConfig();

/** Fermi-like (GTX 480) architecture used in Section 7.3. */
GpuConfig fermiConfig();

/** Integrated-GPU architecture (Power et al. style) of Section 7.3. */
GpuConfig integratedGpuConfig();

} // namespace mask

#endif // MASK_COMMON_CONFIG_HH
