/**
 * @file
 * Lightweight statistics primitives used by every simulator component.
 *
 * Components expose plain structs of these primitives; there is no
 * global registry. Everything is a POD-ish value type so stats can be
 * copied out of a simulation cheaply for reporting.
 */

#ifndef MASK_COMMON_STATS_HH
#define MASK_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

/** Safe ratio: returns 0 when the denominator is 0. */
double safeDiv(double num, double den);

/** Ratio formatted as a percentage string, e.g. "57.8%". */
std::string pct(double fraction, int decimals = 1);

/**
 * Hit/miss pair with rate helpers; the unit of account for every
 * cache- and TLB-like structure in the simulator.
 */
struct HitMiss
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double hitRate() const { return safeDiv(hits, accesses()); }
    double missRate() const { return safeDiv(misses, accesses()); }
    void reset() { hits = 0; misses = 0; }

    HitMiss &
    operator+=(const HitMiss &other)
    {
        hits += other.hits;
        misses += other.misses;
        return *this;
    }

    void
    serialize(StateWriter &w) const
    {
        w.tag("hm");
        w.u(hits);
        w.u(misses);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("hm");
        hits = r.u();
        misses = r.u();
    }
};

/** Streaming mean/min/max accumulator (no sample storage). */
struct RunningStat
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double minVal = 0.0;
    double maxVal = 0.0;

    void
    add(double x)
    {
        if (count == 0) {
            minVal = x;
            maxVal = x;
        } else {
            if (x < minVal)
                minVal = x;
            if (x > maxVal)
                maxVal = x;
        }
        ++count;
        sum += x;
    }

    double mean() const { return safeDiv(sum, count); }
    void reset() { *this = RunningStat{}; }

    void
    serialize(StateWriter &w) const
    {
        w.tag("rs");
        w.u(count);
        w.d(sum);
        w.d(minVal);
        w.d(maxVal);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("rs");
        count = r.u();
        sum = r.d();
        minVal = r.d();
        maxVal = r.d();
    }
};

/**
 * Fixed-bucket histogram for latency distributions.
 * Bucket i covers [i * width, (i + 1) * width); the last bucket is
 * open-ended.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void add(std::uint64_t value);
    std::uint64_t count() const { return total_; }
    double mean() const;
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t bucketWidth() const { return width_; }
    /** Smallest value v such that >= fraction of samples are <= v. */
    std::uint64_t percentileUpperBound(double fraction) const;
    void reset();

    void
    serialize(StateWriter &w) const
    {
        w.tag("hist");
        w.u(width_);
        putUintSeq(w, buckets_);
        w.u(total_);
        w.d(sum_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("hist");
        width_ = r.u();
        getUintSeq(r, buckets_);
        total_ = r.u();
        sum_ = r.d();
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * Periodic sampler: records a value every interval cycles and keeps a
 * running mean/min/max, mirroring the paper's "sampled every 10K
 * cycles" measurements (Figs. 5 and 6).
 */
class IntervalSampler
{
  public:
    explicit IntervalSampler(Cycle interval) : interval_(interval) {}

    /** Call once per cycle with the instantaneous value. */
    void
    tick(Cycle now, double value)
    {
        if (now >= next_) {
            stat_.add(value);
            next_ = now + interval_;
        }
    }

    /** True if the next tick() will record a sample; callers use this
     *  to skip computing the sampled value on off cycles. */
    bool due(Cycle now) const { return now >= next_; }

    /** First cycle at which due() becomes true (next-event bound). */
    Cycle nextDue() const { return next_; }

    const RunningStat &stat() const { return stat_; }
    void reset() { stat_.reset(); next_ = 0; }

    void
    serialize(StateWriter &w) const
    {
        w.tag("sampler");
        w.u(interval_);
        w.u(next_);
        stat_.serialize(w);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("sampler");
        interval_ = r.u();
        next_ = r.u();
        stat_.deserialize(r);
    }

  private:
    Cycle interval_;
    Cycle next_ = 0;
    RunningStat stat_;
};

} // namespace mask

#endif // MASK_COMMON_STATS_HH
