/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulation runs must be exactly reproducible across hosts, so we
 * implement our own small generators (SplitMix64 for seeding,
 * xoshiro256** for the stream) instead of relying on the standard
 * library's unspecified distributions.
 */

#ifndef MASK_COMMON_RNG_HH
#define MASK_COMMON_RNG_HH

#include <cstdint>

#include "common/state_codec.hh"

namespace mask {

/**
 * xoshiro256** generator seeded via SplitMix64.
 *
 * All distribution helpers are implemented with integer arithmetic
 * (no std::uniform_* machinery) so results are identical on every
 * platform and compiler.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator deterministically. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound == 0 returns 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric-ish positive integer with the given mean (>= 1).
     * Used for compute-interval jitter in workload generation.
     */
    std::uint64_t geometric(double mean);

    /** Checkpoint the generator state (StateCodec interface). */
    void
    serialize(StateWriter &w) const
    {
        w.tag("rng");
        for (const std::uint64_t s : s_)
            w.u(s);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("rng");
        for (std::uint64_t &s : s_)
            s = r.u();
    }

  private:
    std::uint64_t s_[4];
};

} // namespace mask

#endif // MASK_COMMON_RNG_HH
