/**
 * @file
 * Open-addressed hash table with 64-bit keys, used in the simulator's
 * per-cycle hot paths (MSHR tables, page table leaf maps, per-core
 * translation waiters) in place of std::unordered_map.
 *
 * Why not unordered_map: every allocate/complete pair on the miss path
 * costs a node allocation, a pointer chase per probe, and an erase
 * that frees the node. This table keeps all slots in one contiguous
 * array (linear probing, power-of-two capacity), so the common probe
 * touches one or two cache lines and insert/erase never allocate once
 * the table has grown to its working-set size.
 *
 * Deletion uses backward shifting instead of tombstones: erase moves
 * displaced entries back toward their home slots, so an unsuccessful
 * find stops at the first empty slot and probe chains never degrade
 * under churn. This matters because the MSHR-full retry path performs
 * hundreds of unsuccessful finds per cycle under memory pressure.
 * Erase/take therefore invalidate pointers returned by find() (they
 * may relocate other entries), just as insert() does when it grows.
 *
 * Iteration order is a deterministic function of the insertion/erase
 * sequence (no pointer-value dependence), which the determinism gate
 * relies on.
 */

#ifndef MASK_COMMON_FLAT_TABLE_HH
#define MASK_COMMON_FLAT_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/state_codec.hh"

namespace mask {

/** splitmix64 finalizer: cheap, well-mixed 64-bit hash. */
constexpr std::uint64_t
mixHash64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Open-addressed map from uint64 keys to V. */
template <typename V>
class FlatTable
{
  public:
    explicit FlatTable(std::size_t expected = 8)
    {
        std::size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        slots_.resize(cap);
        states_.assign(cap, State::Empty);
    }

    /** Pointer to the value for @p key, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        const std::size_t idx = findIndex(key);
        return idx == kNotFound ? nullptr : &slots_[idx].value;
    }

    const V *
    find(std::uint64_t key) const
    {
        const std::size_t idx = findIndex(key);
        return idx == kNotFound ? nullptr : &slots_[idx].value;
    }

    bool contains(std::uint64_t key) const
    {
        return findIndex(key) != kNotFound;
    }

    /**
     * Insert @p value under @p key; the key must not be present
     * (callers on the miss path always check first). Returns the
     * stored value.
     */
    V &
    insert(std::uint64_t key, V value)
    {
        if ((size_ + 1) * 4 >= capacity() * 3)
            grow();
        std::size_t idx = mixHash64(key) & mask();
        while (states_[idx] == State::Used)
            idx = (idx + 1) & mask();
        states_[idx] = State::Used;
        slots_[idx].key = key;
        slots_[idx].value = std::move(value);
        ++size_;
        return slots_[idx].value;
    }

    /** Remove @p key; returns true if it was present. */
    bool
    erase(std::uint64_t key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == kNotFound)
            return false;
        removeAt(idx);
        return true;
    }

    /** Remove @p key and return its value (key must be present). */
    V
    take(std::uint64_t key)
    {
        const std::size_t idx = findIndex(key);
        V out = std::move(slots_[idx].value);
        removeAt(idx);
        return out;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    void
    clear()
    {
        states_.assign(states_.size(), State::Empty);
        for (Slot &slot : slots_)
            slot.value = V{};
        size_ = 0;
    }

    /** Visit every (key, value) pair; fn(uint64_t, const V&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (states_[i] == State::Used)
                fn(slots_[i].key, slots_[i].value);
        }
    }

    /** Mutable visit; fn(uint64_t, V&). */
    template <typename Fn>
    void
    forEachMutable(Fn &&fn)
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (states_[i] == State::Used)
                fn(slots_[i].key, slots_[i].value);
        }
    }

    /**
     * Snapshot the raw slot layout: capacity plus (index, key, value)
     * for every used slot. Re-inserting the entries would not
     * reproduce the probe layout — backward-shift deletion makes the
     * layout a function of the full insert/erase history — and
     * forEach() order must survive a restore bit-exactly, so the
     * physical layout itself is the canonical state.
     * @p item(w, value) writes one value.
     */
    template <typename Fn>
    void
    serializeSlots(StateWriter &w, Fn &&item) const
    {
        w.tag("ft");
        w.u(slots_.size());
        w.u(size_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (states_[i] != State::Used)
                continue;
            w.u(i);
            w.u(slots_[i].key);
            item(w, slots_[i].value);
        }
    }

    /** Restore a serializeSlots layout; @p item(r, value) reads one
     *  value. Rejects malformed capacities and slot indices. */
    template <typename Fn>
    void
    deserializeSlots(StateReader &r, Fn &&item)
    {
        r.tag("ft");
        const std::uint64_t cap = r.u();
        constexpr std::uint64_t kMaxCapacity = std::uint64_t{1} << 22;
        if (cap < 16 || cap > kMaxCapacity || (cap & (cap - 1)) != 0)
            r.fail("invalid table capacity " + std::to_string(cap));
        const std::uint64_t n = r.count(cap);
        slots_.assign(static_cast<std::size_t>(cap), Slot{});
        states_.assign(static_cast<std::size_t>(cap), State::Empty);
        for (std::uint64_t k = 0; k < n; ++k) {
            const std::uint64_t idx = r.u();
            if (idx >= cap)
                r.fail("slot index " + std::to_string(idx) +
                       " out of range");
            if (states_[idx] == State::Used)
                r.fail("duplicate slot index " + std::to_string(idx));
            states_[idx] = State::Used;
            slots_[idx].key = r.u();
            item(r, slots_[idx].value);
        }
        size_ = static_cast<std::size_t>(n);
    }

  private:
    enum class State : std::uint8_t { Empty, Used };

    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
    };

    static constexpr std::size_t kNotFound =
        static_cast<std::size_t>(-1);

    std::size_t mask() const { return slots_.size() - 1; }

    std::size_t
    findIndex(std::uint64_t key) const
    {
        std::size_t idx = mixHash64(key) & mask();
        while (states_[idx] == State::Used) {
            if (slots_[idx].key == key)
                return idx;
            idx = (idx + 1) & mask();
        }
        return kNotFound;
    }

    /**
     * Backward-shift deletion: pull every displaced entry after @p idx
     * back toward its home slot so no tombstone is left behind.
     */
    void
    removeAt(std::size_t idx)
    {
        std::size_t hole = idx;
        std::size_t next = (idx + 1) & mask();
        while (states_[next] == State::Used) {
            const std::size_t home =
                mixHash64(slots_[next].key) & mask();
            // The entry at `next` may fill the hole only if the hole
            // lies on its probe path (home cyclically precedes hole).
            if (((next - home) & mask()) >= ((next - hole) & mask())) {
                slots_[hole] = std::move(slots_[next]);
                hole = next;
            }
            next = (next + 1) & mask();
        }
        states_[hole] = State::Empty;
        slots_[hole] = Slot{};
        --size_;
    }

    void
    grow()
    {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<State> old_states = std::move(states_);
        slots_.assign(old_slots.size() * 2, Slot{});
        states_.assign(old_states.size() * 2, State::Empty);
        size_ = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_states[i] == State::Used)
                insert(old_slots[i].key,
                       std::move(old_slots[i].value));
        }
    }

    std::vector<Slot> slots_;
    std::vector<State> states_;
    std::size_t size_ = 0; //!< live entries
};

} // namespace mask

#endif // MASK_COMMON_FLAT_TABLE_HH
