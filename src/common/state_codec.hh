/**
 * @file
 * Token-stream codec for full simulator-state snapshots.
 *
 * Every component exposes a `serialize(StateWriter&)` /
 * `deserialize(StateReader&)` pair built on these two classes — the
 * common StateCodec interface of the checkpoint/restore subsystem.
 * The encoding follows the sweep-journal codec discipline
 * (sim/sweep_io.{hh,cc}): integers in decimal, doubles as C99 hex
 * floats ("%a", re-read exactly by strtod), tokens separated by single
 * spaces — so a restored run is bit-exact, not merely close.
 *
 * On top of that, snapshots add structure markers: every component
 * writes `tag("name")` before its fields and the reader verifies each
 * marker in order. A truncated or bit-flipped payload therefore fails
 * fast with a SnapshotError naming the field where decoding desynced,
 * instead of silently misassigning state — and never with UB: all
 * reads are bounds-checked and all counts validated before allocation
 * (the corruption tests run under ASan/UBSan).
 */

#ifndef MASK_COMMON_STATE_CODEC_HH
#define MASK_COMMON_STATE_CODEC_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mask {

/**
 * A snapshot could not be decoded: truncated file, corrupted payload,
 * stale format version, or mismatched configuration fingerprint.
 * Carries the snapshot cycle and the last structural field reached so
 * diagnostics can say *where* decoding failed, not just that it did.
 */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(const std::string &reason, const std::string &field,
                  std::uint64_t cycle);

    /** Why decoding failed. */
    const std::string &reason() const { return reason_; }
    /** Last tag() marker successfully read ("" if none). */
    const std::string &field() const { return field_; }
    /** Snapshot cycle from the header; kNoCycle if unknown. */
    std::uint64_t cycle() const { return cycle_; }

    static constexpr std::uint64_t kNoCycle =
        static_cast<std::uint64_t>(-1);

  private:
    std::string reason_;
    std::string field_;
    std::uint64_t cycle_;
};

/** Serializes state into a flat token stream. */
class StateWriter
{
  public:
    /**
     * Pre-reserve the output buffer. Periodic checkpointing passes
     * the previous snapshot's payload size so a multi-megabyte
     * serialization appends into one allocation instead of growing
     * through the realloc ladder.
     */
    void reserve(std::size_t bytes) { out_.reserve(bytes); }

    /** Structural marker verified by StateReader::tag. */
    void tag(const char *name);

    void u(std::uint64_t v);
    void i(std::int64_t v);
    void b(bool v) { u(v ? 1 : 0); }
    /** Exact double via C99 hex-float formatting. */
    void d(double v);
    /** Length-prefixed raw bytes (may contain spaces/newlines). */
    void s(std::string_view v);

    const std::string &str() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    void sep();
    std::string out_;
};

/** Bounds-checked reader for a StateWriter token stream. */
class StateReader
{
  public:
    /** @p cycle is the snapshot cycle for error context (kNoCycle ok). */
    explicit StateReader(std::string_view payload,
                         std::uint64_t cycle = SnapshotError::kNoCycle);

    /** Verify the next token is the marker written by tag(). */
    void tag(const char *name);

    std::uint64_t u();
    std::int64_t i();
    bool b();
    double d();
    std::string s();

    /**
     * Read an element count and validate it against @p max_items and
     * the bytes remaining (each element costs >= 2 bytes), so a
     * corrupted count is rejected before any allocation.
     */
    std::uint64_t count(std::uint64_t max_items);

    /** Require the whole payload to have been consumed. */
    void finish();

    std::size_t remaining() const { return data_.size() - pos_; }

    /** Throw SnapshotError carrying the current field context. */
    [[noreturn]] void fail(const std::string &why) const;

  private:
    std::string_view token();

    std::string_view data_;
    std::size_t pos_ = 0;
    std::string lastTag_;
    std::uint64_t cycle_;
};

/**
 * Intern a diagnostic label restored from a snapshot so it can be
 * stored in `const char *` fields (MemRequest::where points at string
 * literals during normal operation). Thread-safe; storage lives for
 * the process lifetime.
 */
const char *internLabel(const std::string &label);

// --- Sequence helpers -------------------------------------------------

/** Default element bound for variable-length sequences. */
constexpr std::uint64_t kMaxSeqItems = std::uint64_t{1} << 26;

/** Write container @p c; @p item(w, elem) writes one element. */
template <typename C, typename Fn>
void
putSeq(StateWriter &w, const C &c, Fn &&item)
{
    w.u(static_cast<std::uint64_t>(c.size()));
    for (const auto &e : c)
        item(w, e);
}

/**
 * Read a sequence written by putSeq into @p c (vector or deque of
 * default-constructible elements); @p item(r, elem) reads one element.
 */
template <typename C, typename Fn>
void
getSeq(StateReader &r, C &c, Fn &&item,
       std::uint64_t max_items = kMaxSeqItems)
{
    const std::uint64_t n = r.count(max_items);
    c.clear();
    c.resize(static_cast<std::size_t>(n));
    for (auto &e : c)
        item(r, e);
}

/** putSeq specialization for containers of unsigned integers. */
template <typename C>
void
putUintSeq(StateWriter &w, const C &c)
{
    putSeq(w, c, [](StateWriter &sw, const auto &v) {
        sw.u(static_cast<std::uint64_t>(v));
    });
}

/** getSeq specialization for containers of unsigned integers. */
template <typename C>
void
getUintSeq(StateReader &r, C &c,
           std::uint64_t max_items = kMaxSeqItems)
{
    using V = typename C::value_type;
    getSeq(
        r, c, [](StateReader &sr, V &v) { v = static_cast<V>(sr.u()); },
        max_items);
}

} // namespace mask

#endif // MASK_COMMON_STATE_CODEC_HH
