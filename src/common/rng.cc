#include "common/rng.hh"

#include <cmath>

namespace mask {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Multiplicative range reduction; the tiny modulo bias is
    // irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    if (hi <= lo)
        return lo;
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    const double u = uniform();
    // +0.5 compensates the floor() bias so the integer mean matches.
    const double val = 1.5 - std::log(1.0 - u) * (mean - 1.0);
    if (val >= 1e18)
        return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(val);
}

} // namespace mask
