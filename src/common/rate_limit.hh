/**
 * @file
 * Rate limiting for repeated stderr warnings.
 *
 * Degraded-but-recoverable conditions (a rejected warm snapshot, a
 * stolen sweep lease) warn once per occurrence today; a sick worker
 * that hits the same condition thousands of times floods the log and
 * buries the one warning that matters. A WarnRateLimiter collapses a
 * warning class to its first occurrence plus one summary line per N
 * further occurrences; the caller includes the occurrence count so
 * the reader knows how much was suppressed.
 *
 * Usage:
 *
 *     static WarnRateLimiter warns;         // one per warning class
 *     if (const std::uint64_t n = warns.tick()) {
 *         std::fprintf(stderr, "...: %s (occurrence %llu%s)\n",
 *                      detail, n, warns.suppressNote());
 *     }
 */

#ifndef MASK_COMMON_RATE_LIMIT_HH
#define MASK_COMMON_RATE_LIMIT_HH

#include <atomic>
#include <cstdint>

namespace mask {

/** Thread-safe first-then-every-Nth warning gate. */
class WarnRateLimiter
{
  public:
    /** Report the 1st occurrence, then every @p every-th. */
    explicit WarnRateLimiter(std::uint64_t every = 16)
        : every_(every != 0 ? every : 1)
    {}

    /**
     * Count one occurrence. Returns the 1-based occurrence number
     * when this one should be reported, 0 when it should stay
     * silent.
     */
    std::uint64_t
    tick()
    {
        const std::uint64_t n =
            count_.fetch_add(1, std::memory_order_relaxed) + 1;
        return (n == 1 || n % every_ == 0) ? n : 0;
    }

    /** Occurrences counted so far (reported or suppressed). */
    std::uint64_t
    occurrences() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Suffix for a reported line: how the suppression behaves. */
    const char *
    suppressNote() const
    {
        return occurrences() <= 1
                   ? "; further warnings rate-limited"
                   : "; rate-limited summary";
    }

    std::uint64_t every() const { return every_; }

  private:
    std::uint64_t every_;
    std::atomic<std::uint64_t> count_{0};
};

} // namespace mask

#endif // MASK_COMMON_RATE_LIMIT_HH
