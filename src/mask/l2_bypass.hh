/**
 * @file
 * Address-Translation-Aware L2 Bypass (paper Section 5.3).
 *
 * The shared L2 cache keeps hit-rate counters per page-table level for
 * translation requests and one for data demand requests. A walk read
 * from level L bypasses the L2 (goes straight to DRAM, and does not
 * fill) whenever level L's measured hit rate falls below the data
 * demand hit rate. Bypassed levels still probe occasionally (1 in
 * sampleProbeInterval) so the estimate can track dynamic behaviour.
 */

#ifndef MASK_MASK_L2_BYPASS_HH
#define MASK_MASK_L2_BYPASS_HH

#include <array>
#include <cstdint>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mask {

/** Per-page-table-level L2 bypass decision logic. */
class L2BypassPolicy
{
  public:
    /** Walk levels tracked (1..kMaxLevel); index 0 is data demand. */
    static constexpr std::uint32_t kMaxLevel = 4;

    explicit L2BypassPolicy(const MaskConfig &cfg) : cfg_(cfg) {}

    /**
     * Should a translation request tagged with @p pw_level skip the
     * shared L2 cache? Data requests (level 0) never bypass. Returns
     * false every sampleProbeInterval-th query for an otherwise
     * bypassed level, so that the level keeps producing samples.
     */
    bool shouldBypass(std::uint8_t pw_level);

    /** Record the L2 probe outcome of a request (level 0 = data). */
    void
    recordAccess(std::uint8_t pw_level, bool hit)
    {
        HitMiss &hm = stats_[pw_level];
        if (hit)
            ++hm.hits;
        else
            ++hm.misses;
    }

    /** Measured L2 hit rate for @p pw_level (0 = data demand). */
    double hitRate(std::uint8_t pw_level) const
    {
        return stats_[pw_level].hitRate();
    }

    const HitMiss &stats(std::uint8_t pw_level) const
    {
        return stats_[pw_level];
    }

    /** Epoch boundary: decay history so stale behaviour ages out. */
    void onEpoch();

    std::uint64_t bypasses() const { return bypasses_; }

    void
    serialize(StateWriter &w) const
    {
        w.tag("l2byp");
        for (const HitMiss &hm : stats_)
            hm.serialize(w);
        for (const std::uint32_t v : probeCountdown_)
            w.u(v);
        w.u(bypasses_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("l2byp");
        for (HitMiss &hm : stats_)
            hm.deserialize(r);
        for (std::uint32_t &v : probeCountdown_)
            v = static_cast<std::uint32_t>(r.u());
        bypasses_ = r.u();
    }

  private:
    MaskConfig cfg_;
    std::array<HitMiss, kMaxLevel + 1> stats_{};
    std::array<std::uint32_t, kMaxLevel + 1> probeCountdown_{};
    std::uint64_t bypasses_ = 0;
};

} // namespace mask

#endif // MASK_MASK_L2_BYPASS_HH
