/**
 * @file
 * TLB-Fill Tokens (paper Section 5.2).
 *
 * Every warp may probe the shared L2 TLB, but only warps holding a
 * token may fill it; fills from token-less warps are redirected to the
 * small TLB bypass cache. The per-application token count adapts every
 * epoch based on the change in that application's shared L2 TLB miss
 * rate.
 */

#ifndef MASK_MASK_TOKENS_HH
#define MASK_MASK_TOKENS_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/state_codec.hh"
#include "common/types.hh"

namespace mask {

/** Per-application TLB-fill token allocation controller. */
class TokenManager
{
  public:
    TokenManager(const MaskConfig &cfg, std::uint32_t num_apps,
                 std::uint32_t warps_per_app);

    /**
     * True if the warp with application-wide index @p warp_index (the
     * paper's warp-ID ordering: index = core-within-app x warps/core +
     * warp id) may fill the shared L2 TLB. During the first epoch all
     * warps may fill (Section 6, footnote 6).
     */
    bool mayFill(AppId app, std::uint32_t warp_index) const;

    /**
     * Epoch boundary for one application: adjust its token count from
     * the change in shared L2 TLB miss rate (+/- missRateDelta).
     */
    void onEpoch(AppId app, double l2_tlb_miss_rate);

    std::uint32_t tokens(AppId app) const { return tokens_[app]; }

    /** Epochs completed so far (0 = still in warm-up epoch). */
    std::uint64_t epochsDone() const { return epochsDone_; }

    /** Signal that one full epoch elapsed (after all apps updated). */
    void epochComplete() { ++epochsDone_; }

    /**
     * Direction of the last token adjustment for @p app: -1, 0, +1
     * (the 1-bit direction register of Section 7.4, widened for
     * reporting).
     */
    int lastDirection(AppId app) const { return lastDir_[app]; }

    void
    serialize(StateWriter &w) const
    {
        w.tag("tokens");
        putUintSeq(w, tokens_);
        putSeq(w, prevMissRate_,
               [](StateWriter &sw, double v) { sw.d(v); });
        w.u(havePrev_.size());
        for (const bool v : havePrev_)
            w.b(v);
        putSeq(w, lastDir_,
               [](StateWriter &sw, int v) { sw.i(v); });
        w.u(epochsDone_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("tokens");
        getUintSeq(r, tokens_);
        getSeq(r, prevMissRate_,
               [](StateReader &sr, double &v) { v = sr.d(); });
        const std::uint64_t n = r.count(kMaxSeqItems);
        havePrev_.assign(static_cast<std::size_t>(n), false);
        for (std::size_t i = 0; i < havePrev_.size(); ++i)
            havePrev_[i] = r.b();
        getSeq(r, lastDir_, [](StateReader &sr, int &v) {
            v = static_cast<int>(sr.i());
        });
        epochsDone_ = r.u();
    }

  private:
    MaskConfig cfg_;
    std::uint32_t warpsPerApp_;
    std::uint32_t step_;
    std::vector<std::uint32_t> tokens_;
    std::vector<double> prevMissRate_;
    std::vector<bool> havePrev_;
    std::vector<int> lastDir_;
    std::uint64_t epochsDone_ = 0;
};

} // namespace mask

#endif // MASK_MASK_TOKENS_HH
