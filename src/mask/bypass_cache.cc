// TlbBypassCache is header-only; this file anchors the translation
// unit for the build system.
#include "mask/bypass_cache.hh"
