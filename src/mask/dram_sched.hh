/**
 * @file
 * Equation 1 of the paper: the Silver Queue quota controller of the
 * Address-Space-Aware DRAM Scheduler (Section 5.4).
 *
 *   thresh_i = thresh_max * ConPTW_i * WarpsStalled_i
 *              / sum_j ConPTW_j * WarpsStalled_j
 *
 * ConPTW and WarpsStalled are sampled live from the page table walker
 * and the TLB MSHRs; accumulators reset every epoch.
 */

#ifndef MASK_MASK_DRAM_SCHED_HH
#define MASK_MASK_DRAM_SCHED_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "dram/dram.hh"

namespace mask {

/** Silver-queue quota provider implementing Equation 1. */
class SilverQuotaController : public SilverQuotaProvider
{
  public:
    SilverQuotaController(const MaskConfig &cfg, std::uint32_t num_apps);

    /**
     * Add one sample of the live per-application metrics: concurrent
     * page walks and warps stalled on active TLB misses.
     */
    void sample(AppId app, std::uint32_t concurrent_walks,
                std::uint32_t warps_stalled);

    /**
     * Closed form of @p cycles identical sample() calls, used when the
     * main loop skips a window in which both inputs are provably
     * constant (DESIGN.md §9). Bit-identical to the per-cycle loop:
     * the product and every partial sum are integers below 2^53, so
     * repeated addition and one multiply-add round the same way.
     */
    void sampleN(AppId app, std::uint32_t concurrent_walks,
                 std::uint32_t warps_stalled, Cycle cycles);

    /** thresh_i for @p app from the current accumulators. */
    std::uint32_t silverQuota(AppId app) const override;

    /** Epoch boundary: reset the 6-bit-counter analogs. */
    void onEpoch();

    double pressure(AppId app) const;

    void
    serialize(StateWriter &w) const
    {
        w.tag("quota");
        putSeq(w, weight_,
               [](StateWriter &sw, double v) { sw.d(v); });
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("quota");
        getSeq(r, weight_,
               [](StateReader &sr, double &v) { v = sr.d(); });
    }

  private:
    MaskConfig cfg_;
    std::uint32_t numApps_;
    /** Sum over samples of ConPTW_i * WarpsStalled_i. */
    std::vector<double> weight_;
};

} // namespace mask

#endif // MASK_MASK_DRAM_SCHED_HH
