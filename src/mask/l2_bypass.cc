#include "mask/l2_bypass.hh"

namespace mask {

bool
L2BypassPolicy::shouldBypass(std::uint8_t pw_level)
{
    if (pw_level == 0 || pw_level > kMaxLevel)
        return false;

    const HitMiss &level = stats_[pw_level];
    if (level.accesses() < cfg_.minBypassSamples)
        return false;

    if (level.hitRate() >= stats_[0].hitRate())
        return false;

    // The level would bypass; let every Nth request through as a
    // sampler so the hit-rate estimate stays live.
    std::uint32_t &countdown = probeCountdown_[pw_level];
    if (countdown == 0) {
        countdown = cfg_.sampleProbeInterval;
        return false;
    }
    --countdown;
    ++bypasses_;
    return true;
}

void
L2BypassPolicy::onEpoch()
{
    // Halve all counters: exponential decay with a one-epoch half
    // life, so the comparison tracks recent behaviour.
    for (auto &hm : stats_) {
        hm.hits /= 2;
        hm.misses /= 2;
    }
}

} // namespace mask
