/**
 * @file
 * Analytic storage-cost accounting for MASK's hardware additions
 * (paper Section 7.4). Pure arithmetic over a GpuConfig; the
 * sec74_storage_cost bench prints the resulting table.
 */

#ifndef MASK_MASK_STORAGE_COST_HH
#define MASK_MASK_STORAGE_COST_HH

#include <cstdint>
#include <string>

#include "common/config.hh"

namespace mask {

/** Itemized storage added by each MASK mechanism, in bits. */
struct StorageCost
{
    // Memory protection (Section 5.1 / 7.4).
    std::uint64_t asidBitsPerL2TlbEntry = 0;
    std::uint64_t asidTotalBits = 0;

    // TLB-Fill Tokens (Section 5.2 / 7.4).
    std::uint64_t tokenPerCoreBits = 0;  //!< counters + warp bit-vector
    std::uint64_t tokenSharedBits = 0;   //!< token/direction registers
    std::uint64_t bypassCacheBits = 0;   //!< 32-entry CAM

    // Address-Translation-Aware L2 Bypass (Section 5.3 / 7.4).
    std::uint64_t l2BypassCounterBits = 0;
    std::uint64_t pwLevelTagBitsPerRequest = 3;

    // Address-Space-Aware DRAM Scheduler (Section 5.4 / 7.4).
    std::uint64_t dramQueueBitsPerChannel = 0;
    std::uint64_t dramBaselineQueueBitsPerChannel = 0;

    std::uint64_t totalBits() const;
    double l1TlbOverheadFraction(const GpuConfig &cfg) const;
    double l2TlbOverheadFraction(const GpuConfig &cfg) const;
    double l2CacheOverheadFraction(const GpuConfig &cfg) const;
    double dramQueueOverheadFraction() const;

    /** Multi-line human-readable table (the Section 7.4 numbers). */
    std::string report(const GpuConfig &cfg) const;
};

/** Compute the itemized cost for one configuration. */
StorageCost computeStorageCost(const GpuConfig &cfg);

} // namespace mask

#endif // MASK_MASK_STORAGE_COST_HH
