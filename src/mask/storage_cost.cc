#include "mask/storage_cost.hh"

#include <cstdio>

#include "common/stats.hh"

namespace mask {

namespace {

/** Bits of one TLB entry: VPN tag + PFN + valid (no ASID). */
constexpr std::uint64_t kTlbEntryBits = 36 + 24 + 1;

/** Bits of one DRAM request-buffer entry (address + metadata). */
constexpr std::uint64_t kDramQueueEntryBits = 64 + 16;

} // namespace

StorageCost
computeStorageCost(const GpuConfig &cfg)
{
    StorageCost cost;

    // Section 5.1: 9-bit ASID per shared L2 TLB entry.
    cost.asidBitsPerL2TlbEntry = 9;
    cost.asidTotalBits =
        cost.asidBitsPerL2TlbEntry * cfg.l2Tlb.entries;

    // Section 7.4, TLB-Fill Tokens, per core: two 16-bit hit/miss
    // counters, a 256-bit active-warp vector, one 8-bit unique-warp
    // incrementer.
    cost.tokenPerCoreBits = 2 * 16 + 256 + 8;

    // Shared: 30 15-bit token counters + 30 1-bit direction registers
    // (for up to 30 concurrent applications) next to the L2 TLB.
    cost.tokenSharedBits = 30 * 15 + 30 * 1;

    // 32-entry fully-associative CAM: tag (ASID + VPN) + PTE payload.
    cost.bypassCacheBits =
        cfg.mask.bypassCacheEntries * (9 + 36 + 24 + 1);

    // Section 7.4, L2 bypass: ten 8-byte counters per core (hits and
    // accesses for data + 4 walk levels).
    cost.l2BypassCounterBits = cfg.numCores * 10ull * 64;

    // Section 7.4, DRAM scheduler: Golden 16 + Silver 64 + Normal 192
    // entries vs. a conventional 256-entry request buffer.
    const std::uint64_t mask_entries = cfg.mask.goldenQueueEntries +
                                       cfg.mask.silverQueueEntries +
                                       cfg.mask.normalQueueEntries;
    cost.dramQueueBitsPerChannel = mask_entries * kDramQueueEntryBits;
    cost.dramBaselineQueueBitsPerChannel =
        256ull * kDramQueueEntryBits;

    return cost;
}

std::uint64_t
StorageCost::totalBits() const
{
    return asidTotalBits + tokenPerCoreBits + tokenSharedBits +
           bypassCacheBits + l2BypassCounterBits;
}

double
StorageCost::l1TlbOverheadFraction(const GpuConfig &cfg) const
{
    const double l1_bits =
        static_cast<double>(cfg.l1Tlb.entries) * kTlbEntryBits;
    return safeDiv(static_cast<double>(tokenPerCoreBits), l1_bits);
}

double
StorageCost::l2TlbOverheadFraction(const GpuConfig &cfg) const
{
    const double l2_bits =
        static_cast<double>(cfg.l2Tlb.entries) * kTlbEntryBits;
    return safeDiv(
        static_cast<double>(tokenSharedBits + bypassCacheBits), l2_bits);
}

double
StorageCost::l2CacheOverheadFraction(const GpuConfig &cfg) const
{
    return safeDiv(static_cast<double>(l2BypassCounterBits),
                   static_cast<double>(cfg.l2.sizeBytes) * 8.0);
}

double
StorageCost::dramQueueOverheadFraction() const
{
    return safeDiv(static_cast<double>(dramQueueBitsPerChannel) -
                       static_cast<double>(
                           dramBaselineQueueBitsPerChannel),
                   static_cast<double>(dramBaselineQueueBitsPerChannel));
}

std::string
StorageCost::report(const GpuConfig &cfg) const
{
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "MASK storage cost (config: %s, %u cores)\n"
        "  ASID tags:            %u bits/L2-TLB entry, %llu bytes "
        "total (%s of L2 TLB)\n"
        "  Tokens, per core:     %llu bits (%s of L1 TLB)\n"
        "  Tokens+bypass shared: %llu bytes (%s of L2 TLB)\n"
        "  L2 bypass counters:   %llu bytes (%s of L2 cache)\n"
        "  PW-level request tag: %llu bits per in-flight request\n"
        "  DRAM queues/channel:  %llu vs %llu baseline bytes (%s)\n"
        "  Total added SRAM:     %llu bytes\n",
        cfg.name.c_str(), cfg.numCores,
        static_cast<unsigned>(asidBitsPerL2TlbEntry),
        static_cast<unsigned long long>(asidTotalBits / 8),
        pct(safeDiv(static_cast<double>(asidTotalBits),
                    static_cast<double>(cfg.l2Tlb.entries) * 61.0))
            .c_str(),
        static_cast<unsigned long long>(tokenPerCoreBits),
        pct(l1TlbOverheadFraction(cfg)).c_str(),
        static_cast<unsigned long long>(
            (tokenSharedBits + bypassCacheBits) / 8),
        pct(l2TlbOverheadFraction(cfg)).c_str(),
        static_cast<unsigned long long>(l2BypassCounterBits / 8),
        pct(l2CacheOverheadFraction(cfg)).c_str(),
        static_cast<unsigned long long>(pwLevelTagBitsPerRequest),
        static_cast<unsigned long long>(dramQueueBitsPerChannel / 8),
        static_cast<unsigned long long>(
            dramBaselineQueueBitsPerChannel / 8),
        pct(dramQueueOverheadFraction()).c_str(),
        static_cast<unsigned long long>(totalBits() / 8));
    return buf;
}

} // namespace mask
