#include "mask/tokens.hh"

#include <algorithm>
#include <cmath>

namespace mask {

TokenManager::TokenManager(const MaskConfig &cfg, std::uint32_t num_apps,
                           std::uint32_t warps_per_app)
    : cfg_(cfg), warpsPerApp_(warps_per_app)
{
    step_ = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::ceil(cfg.tokenStepFraction * warps_per_app)));
    const auto initial = static_cast<std::uint32_t>(
        cfg.initialTokenFraction * warps_per_app);
    tokens_.assign(num_apps, std::max<std::uint32_t>(1, initial));
    prevMissRate_.assign(num_apps, 0.0);
    havePrev_.assign(num_apps, false);
    lastDir_.assign(num_apps, 0);
}

bool
TokenManager::mayFill(AppId app, std::uint32_t warp_index) const
{
    // No bypassing during the first epoch: every warp fills.
    if (epochsDone_ == 0)
        return true;
    return warp_index < tokens_[app];
}

void
TokenManager::onEpoch(AppId app, double l2_tlb_miss_rate)
{
    if (!havePrev_[app]) {
        prevMissRate_[app] = l2_tlb_miss_rate;
        havePrev_[app] = true;
        lastDir_[app] = 0;
        return;
    }

    const double delta = l2_tlb_miss_rate - prevMissRate_[app];
    if (delta > cfg_.missRateDelta) {
        // Contention rose: shrink this application's fill privileges.
        tokens_[app] =
            tokens_[app] > step_ ? tokens_[app] - step_ : 1;
        lastDir_[app] = -1;
    } else if (delta < -cfg_.missRateDelta) {
        tokens_[app] = std::min(warpsPerApp_, tokens_[app] + step_);
        lastDir_[app] = +1;
    } else {
        lastDir_[app] = 0;
    }
    prevMissRate_[app] = l2_tlb_miss_rate;
}

} // namespace mask
