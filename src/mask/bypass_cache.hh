/**
 * @file
 * The TLB bypass cache (paper Section 5.2): a small fully-associative
 * LRU cache that holds translations requested by warps without
 * TLB-fill tokens. Probed in parallel with the shared L2 TLB; a hit in
 * either counts as an L2 TLB hit.
 */

#ifndef MASK_MASK_BYPASS_CACHE_HH
#define MASK_MASK_BYPASS_CACHE_HH

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/tlb.hh"

namespace mask {

/** 32-entry fully-associative PTE cache for token-less fills. */
class TlbBypassCache
{
  public:
    explicit TlbBypassCache(const MaskConfig &cfg)
        : cache_(1, cfg.bypassCacheEntries)
    {}

    /** Translate; counts hit/miss and updates LRU. */
    bool
    lookup(Asid asid, Vpn vpn, Pfn *pfn = nullptr)
    {
        std::uint64_t payload = 0;
        if (cache_.lookup(tlbKey(asid, vpn), &payload)) {
            ++stats_.hits;
            if (pfn != nullptr)
                *pfn = payload;
            return true;
        }
        ++stats_.misses;
        return false;
    }

    bool probe(Asid asid, Vpn vpn) const
    {
        return cache_.contains(tlbKey(asid, vpn));
    }

    void fill(Asid asid, Vpn vpn, Pfn pfn)
    {
        cache_.fill(tlbKey(asid, vpn), pfn);
    }

    /** Flushed whenever a PTE is modified (consistency, Section 5.2). */
    void flush() { cache_.flush(); }

    void flushAsid(Asid asid)
    {
        cache_.flushIf([asid](std::uint64_t key) {
            return tlbKeyAsid(key) == asid;
        });
    }

    const HitMiss &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    std::uint64_t occupancy() const { return cache_.occupancy(); }
    std::uint32_t entries() const { return cache_.numWays(); }

    void
    serialize(StateWriter &w) const
    {
        w.tag("bypcache");
        cache_.serialize(w);
        stats_.serialize(w);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("bypcache");
        cache_.deserialize(r);
        stats_.deserialize(r);
    }

  private:
    SetAssocCache cache_;
    HitMiss stats_;
};

} // namespace mask

#endif // MASK_MASK_BYPASS_CACHE_HH
