#include "mask/dram_sched.hh"

#include <cassert>

namespace mask {

SilverQuotaController::SilverQuotaController(const MaskConfig &cfg,
                                             std::uint32_t num_apps)
    : cfg_(cfg), numApps_(num_apps == 0 ? 1 : num_apps)
{
    weight_.assign(numApps_, 0.0);
}

void
SilverQuotaController::sample(AppId app, std::uint32_t concurrent_walks,
                              std::uint32_t warps_stalled)
{
    assert(app < numApps_);
    weight_[app] += static_cast<double>(concurrent_walks) *
                    static_cast<double>(warps_stalled);
}

void
SilverQuotaController::sampleN(AppId app,
                               std::uint32_t concurrent_walks,
                               std::uint32_t warps_stalled,
                               Cycle cycles)
{
    assert(app < numApps_);
    weight_[app] += static_cast<double>(concurrent_walks) *
                    static_cast<double>(warps_stalled) *
                    static_cast<double>(cycles);
}

double
SilverQuotaController::pressure(AppId app) const
{
    return app < numApps_ ? weight_[app] : 0.0;
}

std::uint32_t
SilverQuotaController::silverQuota(AppId app) const
{
    assert(app < numApps_);
    double total = 0.0;
    for (double w : weight_)
        total += w;
    if (total <= 0.0)
        return std::max<std::uint32_t>(1, cfg_.threshMax / numApps_);

    const double share =
        cfg_.threshMax * (weight_[app] / total);
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(share));
}

void
SilverQuotaController::onEpoch()
{
    for (double &w : weight_)
        w = 0.0;
}

} // namespace mask
