#include "tlb/tlb_mshr.hh"

#include "common/check.hh"

namespace mask {

TlbMshrTable::TlbMshrTable(std::uint32_t entries)
    : entries_(entries), table_(entries)
{}

TlbMshrTable::Outcome
TlbMshrTable::allocate(Asid asid, Vpn vpn, AppId app,
                       const StalledAccess &access, Cycle now)
{
    const std::uint64_t key = tlbKey(asid, vpn);
    if (app >= stalledPerApp_.size())
        stalledPerApp_.resize(app + 1, 0);

    if (Entry *entry = table_.find(key)) {
        entry->waiters.push_back(access);
        entry->maxWarpsStalled = std::max(
            entry->maxWarpsStalled,
            static_cast<std::uint32_t>(entry->waiters.size()));
        ++stalledWarps_;
        ++stalledPerApp_[app];
        return Outcome::Merged;
    }

    if (table_.size() >= entries_)
        return Outcome::Full;

    Entry entry;
    entry.asid = asid;
    entry.vpn = vpn;
    entry.app = app;
    entry.waiters.push_back(access);
    entry.maxWarpsStalled = 1;
    entry.firstMissCycle = now;
    table_.insert(key, std::move(entry));
    ++stalledWarps_;
    ++stalledPerApp_[app];
    return Outcome::Allocated;
}

bool
TlbMshrTable::has(Asid asid, Vpn vpn) const
{
    return table_.contains(tlbKey(asid, vpn));
}

TlbMshrTable::Entry &
TlbMshrTable::get(Asid asid, Vpn vpn)
{
    Entry *entry = table_.find(tlbKey(asid, vpn));
    SIM_CHECK_CTX(entry != nullptr, "tlb.mshr", kUnknownCycle,
                  "get() on a translation with no MSHR entry",
                  (CheckContext{.asid = asid, .vpn = vpn}));
    return *entry;
}

TlbMshrTable::Entry
TlbMshrTable::complete(Asid asid, Vpn vpn)
{
    const std::uint64_t key = tlbKey(asid, vpn);
    SIM_CHECK_CTX(table_.contains(key), "tlb.mshr", kUnknownCycle,
                  "completing a TLB miss with no MSHR entry",
                  (CheckContext{.asid = asid, .vpn = vpn}));
    Entry entry = table_.take(key);

    const auto waiters = static_cast<std::uint32_t>(entry.waiters.size());
    SIM_CHECK_CTX(stalledWarps_ >= waiters, "tlb.mshr", kUnknownCycle,
                  "stalled-warp count underflow on completion",
                  (CheckContext{.asid = asid, .vpn = vpn,
                                .app = entry.app}));
    stalledWarps_ -= waiters;
    SIM_CHECK_CTX(entry.app < stalledPerApp_.size() &&
                      stalledPerApp_[entry.app] >= waiters,
                  "tlb.mshr", kUnknownCycle,
                  "per-app stalled-warp count underflow",
                  (CheckContext{.asid = asid, .vpn = vpn,
                                .app = entry.app}));
    stalledPerApp_[entry.app] -= waiters;

    warpsPerMiss_.add(static_cast<double>(entry.maxWarpsStalled));
    if (entry.app >= warpsPerMissPerApp_.size())
        warpsPerMissPerApp_.resize(entry.app + 1);
    warpsPerMissPerApp_[entry.app].add(
        static_cast<double>(entry.maxWarpsStalled));
    return entry;
}

const RunningStat &
TlbMshrTable::warpsPerMissFor(AppId app)
{
    if (app >= warpsPerMissPerApp_.size())
        warpsPerMissPerApp_.resize(app + 1);
    return warpsPerMissPerApp_[app];
}

void
TlbMshrTable::resetStats()
{
    warpsPerMiss_.reset();
    for (auto &stat : warpsPerMissPerApp_)
        stat.reset();
}

std::uint32_t
TlbMshrTable::stalledWarpsFor(AppId app) const
{
    return app < stalledPerApp_.size() ? stalledPerApp_[app] : 0;
}

namespace {

void
putStalledAccess(StateWriter &w, const StalledAccess &a)
{
    w.u(a.vaddr);
    w.u(a.core);
    w.u(a.warp);
    w.u(a.issueCycle);
}

void
getStalledAccess(StateReader &r, StalledAccess &a)
{
    a.vaddr = r.u();
    a.core = static_cast<CoreId>(r.u());
    a.warp = static_cast<WarpId>(r.u());
    a.issueCycle = r.u();
}

} // namespace

void
TlbMshrTable::serialize(StateWriter &w) const
{
    w.tag("tlbmshr");
    w.u(entries_);
    table_.serializeSlots(w, [](StateWriter &sw, const Entry &e) {
        sw.u(e.asid);
        sw.u(e.vpn);
        sw.u(e.app);
        putSeq(sw, e.waiters, putStalledAccess);
        sw.u(e.maxWarpsStalled);
        sw.u(e.firstMissCycle);
        sw.b(e.walkStarted);
        sw.u(e.walkId);
    });
    putUintSeq(w, stalledPerApp_);
    w.u(stalledWarps_);
    warpsPerMiss_.serialize(w);
    putSeq(w, warpsPerMissPerApp_,
           [](StateWriter &sw, const RunningStat &s) {
               s.serialize(sw);
           });
}

void
TlbMshrTable::deserialize(StateReader &r)
{
    r.tag("tlbmshr");
    const std::uint64_t entries = r.u();
    if (entries != entries_)
        r.fail("TLB MSHR entry count mismatch (" +
               std::to_string(entries) + " vs configured " +
               std::to_string(entries_) + ")");
    table_.deserializeSlots(r, [](StateReader &sr, Entry &e) {
        e.asid = static_cast<Asid>(sr.u());
        e.vpn = sr.u();
        e.app = static_cast<AppId>(sr.u());
        getSeq(sr, e.waiters, getStalledAccess);
        e.maxWarpsStalled = static_cast<std::uint32_t>(sr.u());
        e.firstMissCycle = sr.u();
        e.walkStarted = sr.b();
        e.walkId = static_cast<std::uint32_t>(sr.u());
    });
    getUintSeq(r, stalledPerApp_);
    stalledWarps_ = static_cast<std::uint32_t>(r.u());
    warpsPerMiss_.deserialize(r);
    getSeq(r, warpsPerMissPerApp_,
           [](StateReader &sr, RunningStat &s) { s.deserialize(sr); });
}

} // namespace mask
