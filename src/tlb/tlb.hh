/**
 * @file
 * Translation lookaside buffers (L1 per-core and shared L2), tagged
 * with address space identifiers (ASIDs) for multi-application
 * isolation (paper Section 5.1).
 */

#ifndef MASK_TLB_TLB_HH
#define MASK_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mask {

/** Combine (asid, vpn) into one lookup key. */
constexpr std::uint64_t
tlbKey(Asid asid, Vpn vpn)
{
    return (static_cast<std::uint64_t>(asid) << 48) | vpn;
}

/** Extract the ASID from a TLB key. */
constexpr Asid
tlbKeyAsid(std::uint64_t key)
{
    return static_cast<Asid>(key >> 48);
}

/** Extract the VPN from a TLB key. */
constexpr Vpn
tlbKeyVpn(std::uint64_t key)
{
    return key & ((std::uint64_t{1} << 48) - 1);
}

/**
 * A set-associative, LRU, ASID-tagged TLB. Keeps cumulative and
 * epoch-windowed per-ASID hit/miss statistics; the epoch window feeds
 * MASK's TLB-Fill Token controller (Section 5.2).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    /** Translate; counts a hit or miss and updates LRU. */
    bool lookup(Asid asid, Vpn vpn, Pfn *pfn = nullptr);

    /** Presence check without stats or LRU update. */
    bool probe(Asid asid, Vpn vpn) const;

    /** Install a translation. */
    void fill(Asid asid, Vpn vpn, Pfn pfn);

    /** Remove one translation; true if present. */
    bool invalidate(Asid asid, Vpn vpn);

    /** Shootdown of every entry belonging to @p asid (Section 5.1). */
    void flushAsid(Asid asid);

    /** Full flush. */
    void flushAll();

    const HitMiss &stats() const { return stats_; }
    const HitMiss &statsFor(Asid asid);
    const HitMiss &epochStats() const { return epochStats_; }
    const HitMiss &epochStatsFor(Asid asid);
    void resetEpochStats();
    void resetStats();

    std::uint64_t occupancy() const { return cache_.occupancy(); }
    std::uint32_t entries() const
    {
        return cache_.numSets() * cache_.numWays();
    }

    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    /** Grow the per-ASID stat vectors to cover @p asid. */
    void ensureAsid(Asid asid);

    SetAssocCache cache_;
    HitMiss stats_;
    HitMiss epochStats_;
    // Indexed by ASID (small dense integers) — this is the hottest
    // path in the simulator, so no hashing here.
    std::vector<HitMiss> perAsid_;
    std::vector<HitMiss> epochPerAsid_;
};

} // namespace mask

#endif // MASK_TLB_TLB_HH
