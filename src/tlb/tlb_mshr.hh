/**
 * @file
 * TLB miss-status holding registers.
 *
 * One entry tracks one outstanding translation (asid, vpn). Warp
 * memory accesses that need the translation park here until the page
 * table walk completes; the entry counts how many warps are stalled,
 * which feeds both the Fig. 6 measurement and the WarpsStalled term of
 * the MASK DRAM scheduler's Equation 1. Entries live in a flat
 * open-addressed table (common/flat_table.hh) keyed by tlbKey — this
 * sits on the per-miss hot path.
 */

#ifndef MASK_TLB_TLB_MSHR_HH
#define MASK_TLB_TLB_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/flat_table.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/tlb.hh"

namespace mask {

/** A warp memory access parked while its translation is outstanding. */
struct StalledAccess
{
    Addr vaddr = 0;
    CoreId core = 0;
    WarpId warp = 0;
    Cycle issueCycle = 0;
};

/** Table of outstanding TLB misses keyed by (asid, vpn). */
class TlbMshrTable
{
  public:
    explicit TlbMshrTable(std::uint32_t entries);

    struct Entry
    {
        Asid asid = 0;
        Vpn vpn = 0;
        AppId app = 0;
        std::vector<StalledAccess> waiters;
        /** Peak number of stalled warps (the paper's 6-bit counter). */
        std::uint32_t maxWarpsStalled = 0;
        Cycle firstMissCycle = 0;
        bool walkStarted = false;
        std::uint32_t walkId = 0;
    };

    enum class Outcome : std::uint8_t { Allocated, Merged, Full };

    /**
     * Record a miss for (asid, vpn); the stalled access is parked on
     * the entry. Allocated means the caller must start a page walk.
     */
    Outcome allocate(Asid asid, Vpn vpn, AppId app,
                     const StalledAccess &access, Cycle now);

    bool has(Asid asid, Vpn vpn) const;

    Entry &get(Asid asid, Vpn vpn);

    /**
     * Translation arrived: returns the entry (with all waiters) and
     * frees the slot.
     */
    Entry complete(Asid asid, Vpn vpn);

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(table_.size());
    }
    std::uint32_t capacity() const { return entries_; }

    /** Total warps currently stalled across all entries. */
    std::uint32_t stalledWarps() const { return stalledWarps_; }

    /** Visit all outstanding entries (watchdog sweeps). */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        table_.forEach(
            [&fn](std::uint64_t, const Entry &entry) { fn(entry); });
    }

    /** Warps currently stalled for one application. */
    std::uint32_t stalledWarpsFor(AppId app) const;

    /** Mean waiters per completed entry (Fig. 6 series). */
    const RunningStat &warpsPerMiss() const { return warpsPerMiss_; }

    /** Per-application version of warpsPerMiss. */
    const RunningStat &warpsPerMissFor(AppId app);

    void resetStats();

    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    std::uint32_t entries_;
    FlatTable<Entry> table_;
    std::vector<std::uint32_t> stalledPerApp_;
    std::uint32_t stalledWarps_ = 0;
    RunningStat warpsPerMiss_;
    std::vector<RunningStat> warpsPerMissPerApp_;
};

} // namespace mask

#endif // MASK_TLB_TLB_MSHR_HH
