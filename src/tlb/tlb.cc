#include "tlb/tlb.hh"

namespace mask {

namespace {

/** Sets/ways for a TLB config (ways == 0 means fully associative). */
std::uint32_t
tlbSets(const TlbConfig &cfg)
{
    if (cfg.ways == 0)
        return 1;
    return cfg.entries / cfg.ways;
}

std::uint32_t
tlbWays(const TlbConfig &cfg)
{
    return cfg.ways == 0 ? cfg.entries : cfg.ways;
}

} // namespace

Tlb::Tlb(const TlbConfig &cfg) : cache_(tlbSets(cfg), tlbWays(cfg)) {}

void
Tlb::ensureAsid(Asid asid)
{
    if (asid >= perAsid_.size()) {
        perAsid_.resize(asid + 1);
        epochPerAsid_.resize(asid + 1);
    }
}

bool
Tlb::lookup(Asid asid, Vpn vpn, Pfn *pfn)
{
    ensureAsid(asid);
    std::uint64_t payload = 0;
    const bool hit = cache_.lookup(tlbKey(asid, vpn), &payload);
    if (hit) {
        ++stats_.hits;
        ++epochStats_.hits;
        ++perAsid_[asid].hits;
        ++epochPerAsid_[asid].hits;
        if (pfn != nullptr)
            *pfn = payload;
    } else {
        ++stats_.misses;
        ++epochStats_.misses;
        ++perAsid_[asid].misses;
        ++epochPerAsid_[asid].misses;
    }
    return hit;
}

bool
Tlb::probe(Asid asid, Vpn vpn) const
{
    return cache_.contains(tlbKey(asid, vpn));
}

void
Tlb::fill(Asid asid, Vpn vpn, Pfn pfn)
{
    cache_.fill(tlbKey(asid, vpn), pfn);
}

bool
Tlb::invalidate(Asid asid, Vpn vpn)
{
    return cache_.erase(tlbKey(asid, vpn));
}

void
Tlb::flushAsid(Asid asid)
{
    cache_.flushIf(
        [asid](std::uint64_t key) { return tlbKeyAsid(key) == asid; });
}

void
Tlb::flushAll()
{
    cache_.flush();
}

const HitMiss &
Tlb::statsFor(Asid asid)
{
    ensureAsid(asid);
    return perAsid_[asid];
}

const HitMiss &
Tlb::epochStatsFor(Asid asid)
{
    ensureAsid(asid);
    return epochPerAsid_[asid];
}

void
Tlb::resetEpochStats()
{
    epochStats_.reset();
    for (HitMiss &hm : epochPerAsid_)
        hm.reset();
}

void
Tlb::resetStats()
{
    stats_.reset();
    for (HitMiss &hm : perAsid_)
        hm.reset();
    resetEpochStats();
}

void
Tlb::serialize(StateWriter &w) const
{
    w.tag("tlb");
    cache_.serialize(w);
    stats_.serialize(w);
    epochStats_.serialize(w);
    putSeq(w, perAsid_,
           [](StateWriter &sw, const HitMiss &hm) { hm.serialize(sw); });
    putSeq(w, epochPerAsid_,
           [](StateWriter &sw, const HitMiss &hm) { hm.serialize(sw); });
}

void
Tlb::deserialize(StateReader &r)
{
    r.tag("tlb");
    cache_.deserialize(r);
    stats_.deserialize(r);
    epochStats_.deserialize(r);
    getSeq(r, perAsid_,
           [](StateReader &sr, HitMiss &hm) { hm.deserialize(sr); });
    getSeq(r, epochPerAsid_,
           [](StateReader &sr, HitMiss &hm) { hm.deserialize(sr); });
}

} // namespace mask
