#include "obs/timeseries.hh"

#include <limits>

namespace mask {
namespace obs {

namespace {
constexpr std::uint64_t kNever =
    std::numeric_limits<std::uint64_t>::max();
}

TimeseriesWriter::TimeseriesWriter(std::string path,
                                   SeriesRegistry registry,
                                   std::uint64_t interval,
                                   std::size_t ring_rows,
                                   const std::string &stream)
    : registry_(std::move(registry)),
      path_(std::move(path)),
      interval_(interval),
      nextDue_(interval == 0 ? kNever : interval),
      ringRows_(ring_rows == 0 ? 1 : ring_rows)
{
    file_ = std::fopen(path_.c_str(), "w");
    if (file_ == nullptr) {
        std::fprintf(stderr,
                     "warning: MASK_TIMESERIES: cannot open %s; "
                     "timeseries disabled\n",
                     path_.c_str());
        return;
    }
    const std::string header =
        registry_.schemaJson(stream, interval_);
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fputc('\n', file_);
    ring_.reserve(ringRows_);
}

TimeseriesWriter::~TimeseriesWriter()
{
    if (file_ != nullptr) {
        flush();
        std::fclose(file_);
    }
}

void
TimeseriesWriter::rearm(std::uint64_t now)
{
    if (interval_ == 0) {
        nextDue_ = kNever;
        return;
    }
    const std::uint64_t k = (now + interval_ - 1) / interval_;
    nextDue_ = (k == 0 ? 1 : k) * interval_;
}

void
TimeseriesWriter::record(std::uint64_t cycle,
                         const std::vector<double> &values)
{
    if (interval_ != 0)
        nextDue_ = cycle + interval_;
    ++rowsRecorded_;
    if (file_ == nullptr)
        return;
    std::string row = "{\"cycle\":" + std::to_string(cycle) +
                      ",\"v\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0)
            row += ",";
        appendJsonNumber(row, values[i]);
    }
    row += "]}";
    ring_.push_back(std::move(row));
    if (ring_.size() >= ringRows_)
        flush();
}

void
TimeseriesWriter::flush()
{
    if (file_ == nullptr) {
        ring_.clear();
        return;
    }
    for (const std::string &row : ring_) {
        std::fwrite(row.data(), 1, row.size(), file_);
        std::fputc('\n', file_);
    }
    ring_.clear();
    std::fflush(file_);
}

} // namespace obs
} // namespace mask
