#include "obs/registry.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mask {
namespace obs {

std::size_t
SeriesRegistry::add(SeriesDesc d)
{
    series_.push_back(std::move(d));
    return series_.size() - 1;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendJsonNumber(std::string &out, double v)
{
    char buf[40];
    // NaN/inf are not valid JSON; they cannot arise from the gauges
    // (safeDiv clamps 0/0 to 0) but a guard keeps the file loadable.
    if (!std::isfinite(v)) {
        out += "0";
        return;
    }
    constexpr double kExact = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && v >= -kExact && v <= kExact) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    out += buf;
}

std::string
SeriesRegistry::schemaJson(const std::string &stream,
                           std::uint64_t interval) const
{
    std::string out = "{\"schema\":\"" + jsonEscape(stream) + "\"";
    out += ",\"version\":" + std::to_string(kSchemaVersion);
    out += ",\"interval\":" + std::to_string(interval);
    out += ",\"series\":[";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        const SeriesDesc &d = series_[i];
        if (i != 0)
            out += ",";
        out += "{\"name\":\"" + jsonEscape(d.name) + "\"";
        out += ",\"unit\":\"" + jsonEscape(d.unit) + "\"";
        out += ",\"app\":" + std::to_string(d.app);
        out += ",\"kind\":\"" + jsonEscape(d.kind) + "\"";
        out += ",\"desc\":\"" + jsonEscape(d.desc) + "\"}";
    }
    out += "]}";
    return out;
}

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || v[0] == '\0')
        return fallback;
    const long long n = std::atoll(v);
    return n > 0 ? static_cast<std::uint64_t>(n) : fallback;
}

/** Category spec ("tlb,walk,...") -> bitmask; see trace.hh for the
 *  bit assignments. Unset or empty selects everything; unknown names
 *  are ignored so a typo degrades to fewer categories, not a crash. */
std::uint32_t
parseCatsSpec(const char *spec)
{
    if (spec == nullptr || spec[0] == '\0')
        return 0xffffffffu;
    static const struct
    {
        const char *name;
        std::uint32_t bit;
    } kCats[] = {
        {"tlb", 1u << 0},  {"walk", 1u << 1},      {"dram", 1u << 2},
        {"quota", 1u << 3}, {"shootdown", 1u << 4},
    };
    std::uint32_t mask = 0;
    const char *p = spec;
    while (*p != '\0') {
        const char *comma = std::strchr(p, ',');
        const std::size_t len =
            comma != nullptr ? static_cast<std::size_t>(comma - p)
                             : std::strlen(p);
        for (const auto &c : kCats) {
            if (std::strlen(c.name) == len &&
                std::strncmp(c.name, p, len) == 0)
                mask |= c.bit;
        }
        if (comma == nullptr)
            break;
        p = comma + 1;
    }
    return mask;
}

thread_local const ObsOptions *g_override = nullptr;

} // namespace

ObsOptions
obsOptionsFromEnv()
{
    ObsOptions o;
    if (const char *p = std::getenv("MASK_TIMESERIES"))
        o.timeseriesPath = p;
    o.timeseriesInterval =
        envU64("MASK_TIMESERIES_INTERVAL", o.timeseriesInterval);
    o.timeseriesRingRows = static_cast<std::size_t>(
        envU64("MASK_TIMESERIES_RING", o.timeseriesRingRows));
    if (const char *p = std::getenv("MASK_TRACE"))
        o.tracePath = p;
    o.traceCats = parseCatsSpec(std::getenv("MASK_TRACE_CATS"));
    o.traceRingEvents = static_cast<std::size_t>(
        envU64("MASK_TRACE_RING", o.traceRingEvents));
    if (const char *p = std::getenv("MASK_PROFILE_STAGES_OUT"))
        o.stageProfilePath = p;
    return o;
}

ObsOptions
resolveObsOptions()
{
    if (g_override != nullptr)
        return *g_override;
    return obsOptionsFromEnv();
}

ScopedObsOverride::ScopedObsOverride(ObsOptions opts)
    : opts_(std::move(opts)), prev_(g_override)
{
    g_override = &opts_;
}

ScopedObsOverride::~ScopedObsOverride()
{
    g_override = prev_;
}

} // namespace obs
} // namespace mask
