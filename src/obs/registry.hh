/**
 * @file
 * Self-describing counter registry for the observability layer
 * (DESIGN.md §13).
 *
 * Every exported time series carries name/unit/app/kind metadata, and
 * the whole column set is emitted as a schema header line at the top
 * of each JSONL stream, so downstream tools (scripts/obs_report.py)
 * never hard-code column positions. The registry also owns the
 * env-knob resolution (MASK_TIMESERIES*, MASK_TRACE*) and the
 * thread-local override the sweep runner installs to give every job
 * its own output paths (MASK_SWEEP_OBS_DIR).
 *
 * The entire obs layer is observation-only: nothing in it feeds back
 * into the simulated machine, nothing is serialized into snapshots,
 * and none of its knobs participate in configFingerprint.
 */

#ifndef MASK_OBS_REGISTRY_HH
#define MASK_OBS_REGISTRY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mask {
namespace obs {

/** Bumped whenever the JSONL header/row layout changes shape. */
constexpr int kSchemaVersion = 1;

/** Metadata for one exported column. */
struct SeriesDesc
{
    std::string name;   //!< e.g. "l1_tlb_hit_rate"
    std::string unit;   //!< "ratio", "count", "cycles", "ipc", ...
    int app = -1;       //!< owning application, -1 = global
    std::string kind;   //!< "gauge" (point sample) or "delta"
    std::string desc;   //!< one-line human description
};

/** Ordered set of series; the column order of every emitted row. */
class SeriesRegistry
{
  public:
    /** Register a column; returns its index in row value vectors. */
    std::size_t add(SeriesDesc d);

    std::size_t size() const { return series_.size(); }
    const SeriesDesc &at(std::size_t i) const { return series_[i]; }

    /**
     * The self-describing header object (single line, no trailing
     * newline): schema name, version, sample interval, and the full
     * column list in order.
     */
    std::string schemaJson(const std::string &stream,
                           std::uint64_t interval) const;

  private:
    std::vector<SeriesDesc> series_;
};

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string jsonEscape(std::string_view s);

/** Deterministic number formatting shared by all obs writers:
 *  integral values in [-2^53, 2^53] print as integers, everything
 *  else as %.9g. */
void appendJsonNumber(std::string &out, double v);

// ---------------------------------------------------------------------
// Options resolution (env knobs + per-job override)
// ---------------------------------------------------------------------

/** Resolved obs configuration; captured once per Gpu construction. */
struct ObsOptions
{
    std::string timeseriesPath;           //!< MASK_TIMESERIES ("" = off)
    std::uint64_t timeseriesInterval = 10000; //!< MASK_TIMESERIES_INTERVAL
    std::size_t timeseriesRingRows = 256;     //!< MASK_TIMESERIES_RING

    std::string tracePath;                //!< MASK_TRACE ("" = off)
    std::uint32_t traceCats = 0xffffffffu; //!< MASK_TRACE_CATS bitmask
    std::size_t traceRingEvents = 4096;    //!< MASK_TRACE_RING

    /** MASK_PROFILE_STAGES_OUT: registry-schema JSONL for the stage
     *  profiler (wall-clock — deliberately a separate file from the
     *  deterministic timeseries). */
    std::string stageProfilePath;

    bool timeseriesOn() const { return !timeseriesPath.empty(); }
    bool traceOn() const { return !tracePath.empty(); }
};

/** Read the MASK_TIMESERIES and MASK_TRACE knob families from the
 *  environment. */
ObsOptions obsOptionsFromEnv();

/**
 * Options a Gpu constructed on this thread should use: the innermost
 * ScopedObsOverride if one is installed, else the environment.
 */
ObsOptions resolveObsOptions();

/**
 * Thread-local options override. The sweep runner wraps each job's
 * Gpu construction in one of these so concurrent jobs write to
 * per-job paths (or, for memoized alone-IPC runs, nowhere at all)
 * instead of fighting over the global env paths.
 */
class ScopedObsOverride
{
  public:
    explicit ScopedObsOverride(ObsOptions opts);
    ~ScopedObsOverride();

    ScopedObsOverride(const ScopedObsOverride &) = delete;
    ScopedObsOverride &operator=(const ScopedObsOverride &) = delete;

  private:
    ObsOptions opts_;
    const ObsOptions *prev_;
};

} // namespace obs
} // namespace mask

#endif // MASK_OBS_REGISTRY_HH
