/**
 * @file
 * Deterministic cycle-aligned time-series sampler (DESIGN.md §13).
 *
 * Rows are sampled at fixed multiples of the interval (cycle k·I for
 * k >= 1) and buffered in a bounded in-memory ring that flushes to a
 * JSONL file when full — the file starts with the SeriesRegistry
 * schema header, then one {"cycle":N,"v":[...]} row per sample.
 * Nothing in a row depends on the host (no wall-clock, no pointers),
 * so same-seed runs produce byte-identical files.
 *
 * Cycle-skip compatibility: due points are exposed via nextDue() so
 * the main loop's skipTo() can closed-form-advance accumulators to
 * each due point inside a skipped window and sample there; rearm()
 * re-arms after a snapshot restore (smallest multiple >= now, so the
 * save/resume pair emits every boundary row exactly once).
 */

#ifndef MASK_OBS_TIMESERIES_HH
#define MASK_OBS_TIMESERIES_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/registry.hh"

namespace mask {
namespace obs {

/** JSONL gauge-row writer with a bounded flush-on-full row ring. */
class TimeseriesWriter
{
  public:
    /**
     * Open @p path and write the schema header for @p registry.
     * @p interval 0 means aperiodic (nextDue() never fires; rows are
     * recorded only by explicit record() calls — the stage-profile
     * export uses this). On open failure the writer disables itself
     * with a warning on stderr; the simulation is never aborted by
     * telemetry.
     */
    TimeseriesWriter(std::string path, SeriesRegistry registry,
                     std::uint64_t interval, std::size_t ring_rows,
                     const std::string &stream = "mask-timeseries");
    ~TimeseriesWriter();

    TimeseriesWriter(const TimeseriesWriter &) = delete;
    TimeseriesWriter &operator=(const TimeseriesWriter &) = delete;

    /** Next cycle a sample is due (kNever-like max when aperiodic). */
    std::uint64_t nextDue() const { return nextDue_; }
    bool due(std::uint64_t now) const { return now == nextDue_; }

    /** Re-arm after restore: next due = smallest multiple of the
     *  interval >= @p now (the saving run stops before ticking its
     *  save cycle, so a restore at an exact boundary samples it). */
    void rearm(std::uint64_t now);

    /**
     * Record one row at @p cycle; @p values must match the registry
     * column count. Advances nextDue() to the next multiple.
     */
    void record(std::uint64_t cycle,
                const std::vector<double> &values);

    /** Write buffered rows to the file. */
    void flush();

    std::uint64_t interval() const { return interval_; }
    const SeriesRegistry &registry() const { return registry_; }
    std::uint64_t rowsRecorded() const { return rowsRecorded_; }
    bool ok() const { return file_ != nullptr; }

  private:
    SeriesRegistry registry_;
    std::string path_;
    std::uint64_t interval_;
    std::uint64_t nextDue_;
    std::size_t ringRows_;
    std::FILE *file_ = nullptr;
    std::vector<std::string> ring_; //!< formatted rows pending flush
    std::uint64_t rowsRecorded_ = 0;
};

} // namespace obs
} // namespace mask

#endif // MASK_OBS_TIMESERIES_HH
