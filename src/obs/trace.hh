/**
 * @file
 * Bounded ring-buffer event tracer emitting Chrome trace-event /
 * Perfetto-compatible JSON (DESIGN.md §13).
 *
 * Output is the JSON-object trace format: {"otherData":{...},
 * "traceEvents":[...]} with one event per line, loadable by
 * chrome://tracing, Perfetto and `python3 -m json.tool`. Timestamps
 * are GPU cycles (1 ts unit = 1 cycle), never wall-clock, so traces
 * are deterministic. Duration events use the "X" complete phase
 * emitted at completion time — the begin cycle (walk start, DRAM
 * enqueue) is part of the simulated machine state, so an event whose
 * span crosses a snapshot boundary appears exactly once, in the
 * resumed process, with its full duration.
 *
 * Events buffer in a bounded ring and flush to the file when the ring
 * fills; close() (or destruction) writes the closing bracket so the
 * file is always valid JSON.
 */

#ifndef MASK_OBS_TRACE_HH
#define MASK_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace mask {
namespace obs {

/** Event categories selectable via MASK_TRACE_CATS. Bit values must
 *  match parseCatsSpec() in registry.cc. */
enum class TraceCat : std::uint32_t
{
    kTlb = 1u << 0,       //!< token adjustments
    kWalk = 1u << 1,      //!< page-walk durations, bypass flips
    kDram = 1u << 2,      //!< DRAM request durations
    kQuota = 1u << 3,     //!< epoch boundaries, Eq. 1 quota state
    kShootdown = 1u << 4, //!< TLB shootdowns
};

const char *traceCatName(TraceCat c);

/** One numeric event argument; keys must be string literals (stored
 *  by pointer in the ring). */
struct TraceArg
{
    const char *key;
    std::int64_t value;
};

/** Chrome trace-event writer with a flush-on-full event ring. */
class TraceWriter
{
  public:
    /**
     * Open @p path, write the preamble, and accept events whose
     * category bit is set in @p cat_mask. On open failure the writer
     * disables itself with a warning on stderr.
     */
    TraceWriter(std::string path, std::uint32_t cat_mask,
                std::size_t ring_events);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Cheap pre-filter so call sites can skip argument gathering. */
    bool wants(TraceCat c) const
    {
        return file_ != nullptr &&
               (catMask_ & static_cast<std::uint32_t>(c)) != 0;
    }

    /**
     * Duration ("X") event covering [ts, ts + dur) cycles. @p name
     * must be a string literal; @p tid groups events into tracks
     * (app id + 1 for per-app events, 0 for global).
     */
    void complete(TraceCat c, const char *name, std::uint32_t tid,
                  std::uint64_t ts, std::uint64_t dur,
                  std::initializer_list<TraceArg> args);

    /** Instant ("i") event at cycle @p ts. */
    void instant(TraceCat c, const char *name, std::uint32_t tid,
                 std::uint64_t ts,
                 std::initializer_list<TraceArg> args);

    /** Write buffered events to the file. */
    void flush();

    /** Flush and write the closing bracket; further events are
     *  dropped. Idempotent; also run by the destructor. */
    void close();

    std::uint64_t eventsRecorded() const { return eventsRecorded_; }
    bool ok() const { return file_ != nullptr; }

  private:
    static constexpr std::size_t kMaxArgs = 4;

    struct Event
    {
        const char *name;
        TraceCat cat;
        char phase;
        std::uint32_t tid;
        std::uint64_t ts;
        std::uint64_t dur;
        std::uint32_t nargs;
        TraceArg args[kMaxArgs];
    };

    void push(TraceCat c, const char *name, char phase,
              std::uint32_t tid, std::uint64_t ts, std::uint64_t dur,
              std::initializer_list<TraceArg> args);

    std::string path_;
    std::uint32_t catMask_;
    std::size_t ringEvents_;
    std::FILE *file_ = nullptr;
    std::vector<Event> ring_;
    bool anyWritten_ = false;
    bool closed_ = false;
    std::uint64_t eventsRecorded_ = 0;
};

} // namespace obs
} // namespace mask

#endif // MASK_OBS_TRACE_HH
