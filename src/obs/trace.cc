#include "obs/trace.hh"

#include <cinttypes>

namespace mask {
namespace obs {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
    case TraceCat::kTlb:
        return "tlb";
    case TraceCat::kWalk:
        return "walk";
    case TraceCat::kDram:
        return "dram";
    case TraceCat::kQuota:
        return "quota";
    case TraceCat::kShootdown:
        return "shootdown";
    }
    return "?";
}

TraceWriter::TraceWriter(std::string path, std::uint32_t cat_mask,
                         std::size_t ring_events)
    : path_(std::move(path)),
      catMask_(cat_mask),
      ringEvents_(ring_events == 0 ? 1 : ring_events)
{
    file_ = std::fopen(path_.c_str(), "w");
    if (file_ == nullptr) {
        std::fprintf(stderr,
                     "warning: MASK_TRACE: cannot open %s; "
                     "tracing disabled\n",
                     path_.c_str());
        return;
    }
    // 1 ts unit = 1 GPU cycle; displayTimeUnit keeps chrome://tracing
    // from assuming microseconds mean anything wall-clock here.
    std::fputs("{\"otherData\":{\"schema\":\"mask-trace\","
               "\"version\":1,\"clock\":\"gpu-cycle\"},"
               "\"displayTimeUnit\":\"ns\",\n"
               "\"traceEvents\":[\n",
               file_);
    ring_.reserve(ringEvents_);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::complete(TraceCat c, const char *name, std::uint32_t tid,
                      std::uint64_t ts, std::uint64_t dur,
                      std::initializer_list<TraceArg> args)
{
    push(c, name, 'X', tid, ts, dur, args);
}

void
TraceWriter::instant(TraceCat c, const char *name, std::uint32_t tid,
                     std::uint64_t ts,
                     std::initializer_list<TraceArg> args)
{
    push(c, name, 'i', tid, ts, 0, args);
}

void
TraceWriter::push(TraceCat c, const char *name, char phase,
                  std::uint32_t tid, std::uint64_t ts,
                  std::uint64_t dur,
                  std::initializer_list<TraceArg> args)
{
    if (!wants(c) || closed_)
        return;
    Event e;
    e.name = name;
    e.cat = c;
    e.phase = phase;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.nargs = 0;
    for (const TraceArg &a : args) {
        if (e.nargs == kMaxArgs)
            break;
        e.args[e.nargs++] = a;
    }
    ring_.push_back(e);
    ++eventsRecorded_;
    if (ring_.size() >= ringEvents_)
        flush();
}

void
TraceWriter::flush()
{
    if (file_ == nullptr || closed_) {
        ring_.clear();
        return;
    }
    std::string out;
    for (const Event &e : ring_) {
        if (anyWritten_)
            out += ",\n";
        anyWritten_ = true;
        out += "{\"name\":\"";
        out += e.name;
        out += "\",\"cat\":\"";
        out += traceCatName(e.cat);
        out += "\",\"ph\":\"";
        out += e.phase;
        out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
        out += ",\"ts\":" + std::to_string(e.ts);
        if (e.phase == 'X')
            out += ",\"dur\":" + std::to_string(e.dur);
        else if (e.phase == 'i')
            out += ",\"s\":\"t\"";
        if (e.nargs > 0) {
            out += ",\"args\":{";
            for (std::uint32_t i = 0; i < e.nargs; ++i) {
                if (i != 0)
                    out += ",";
                out += "\"";
                out += e.args[i].key;
                out += "\":" + std::to_string(e.args[i].value);
            }
            out += "}";
        }
        out += "}";
    }
    std::fwrite(out.data(), 1, out.size(), file_);
    std::fflush(file_);
    ring_.clear();
}

void
TraceWriter::close()
{
    if (file_ == nullptr || closed_)
        return;
    flush();
    std::fputs("\n]}\n", file_);
    closed_ = true;
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace obs
} // namespace mask
