#include "vm/page_table.hh"

#include <cassert>

namespace mask {

PageTable::PageTable(Asid asid, std::uint32_t page_bits,
                     FrameAllocator &frames)
    : asid_(asid), pageBits_(page_bits), frames_(frames)
{
    root_ = std::make_unique<Node>();
    root_->frame = frames_.allocate();
    ++nodeCount_;
}

std::uint32_t
PageTable::levelIndex(Vpn vpn, std::uint32_t level) const
{
    assert(level >= 1 && level <= kPtLevels);
    const std::uint32_t shift = (kPtLevels - level) * kPtBitsPerLevel;
    return static_cast<std::uint32_t>(vpn >> shift) &
           ((1u << kPtBitsPerLevel) - 1);
}

PageTable::Node *
PageTable::walkToLeafNode(Vpn vpn, bool allocate)
{
    Node *node = root_.get();
    // Levels 1..3 are interior; the level-4 node holds leaf PTEs.
    for (std::uint32_t level = 1; level < kPtLevels; ++level) {
        const std::uint32_t idx = levelIndex(vpn, level);
        Node *child = node->child(idx);
        if (child == nullptr) {
            if (!allocate)
                return nullptr;
            if (node->children.empty())
                node->children.resize(1u << kPtBitsPerLevel);
            auto fresh = std::make_unique<Node>();
            fresh->frame = frames_.allocate();
            ++nodeCount_;
            child = fresh.get();
            node->children[idx] = std::move(fresh);
        }
        node = child;
    }
    return node;
}

Pfn
PageTable::mapPage(Vpn vpn)
{
    if (const Pfn *pfn = mapped_.find(vpn))
        return *pfn;

    walkToLeafNode(vpn, true);
    const Pfn pfn = frames_.allocate();
    mapped_.insert(vpn, pfn);
    return pfn;
}

Pfn
PageTable::lookup(Vpn vpn) const
{
    const Pfn *pfn = mapped_.find(vpn);
    return pfn == nullptr ? kInvalidPfn : *pfn;
}

std::array<Addr, kPtLevels>
PageTable::walkAddrs(Vpn vpn) const
{
    std::array<Addr, kPtLevels> addrs{};
    const Node *node = root_.get();
    for (std::uint32_t level = 1; level <= kPtLevels; ++level) {
        assert(node != nullptr && "walkAddrs on unmapped vpn");
        const std::uint32_t idx = levelIndex(vpn, level);
        addrs[level - 1] =
            frames_.frameAddr(node->frame) + Addr{idx} * kPteBytes;
        if (level < kPtLevels)
            node = node->child(idx);
    }
    return addrs;
}

Addr
PageTable::rootAddr() const
{
    return frames_.frameAddr(root_->frame);
}

bool
PageTable::unmapPage(Vpn vpn)
{
    return mapped_.erase(vpn);
}

} // namespace mask
