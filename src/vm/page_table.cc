#include "vm/page_table.hh"

#include <cassert>

namespace mask {

PageTable::PageTable(Asid asid, std::uint32_t page_bits,
                     FrameAllocator &frames)
    : asid_(asid), pageBits_(page_bits), frames_(frames)
{
    root_ = std::make_unique<Node>();
    root_->frame = frames_.allocate();
    ++nodeCount_;
}

std::uint32_t
PageTable::levelIndex(Vpn vpn, std::uint32_t level) const
{
    assert(level >= 1 && level <= kPtLevels);
    const std::uint32_t shift = (kPtLevels - level) * kPtBitsPerLevel;
    return static_cast<std::uint32_t>(vpn >> shift) &
           ((1u << kPtBitsPerLevel) - 1);
}

PageTable::Node *
PageTable::walkToLeafNode(Vpn vpn, bool allocate)
{
    Node *node = root_.get();
    // Levels 1..3 are interior; the level-4 node holds leaf PTEs.
    for (std::uint32_t level = 1; level < kPtLevels; ++level) {
        const std::uint32_t idx = levelIndex(vpn, level);
        Node *child = node->child(idx);
        if (child == nullptr) {
            if (!allocate)
                return nullptr;
            if (node->children.empty())
                node->children.resize(1u << kPtBitsPerLevel);
            auto fresh = std::make_unique<Node>();
            fresh->frame = frames_.allocate();
            ++nodeCount_;
            child = fresh.get();
            node->children[idx] = std::move(fresh);
        }
        node = child;
    }
    return node;
}

Pfn
PageTable::mapPage(Vpn vpn)
{
    if (const Pfn *pfn = mapped_.find(vpn))
        return *pfn;

    walkToLeafNode(vpn, true);
    const Pfn pfn = frames_.allocate();
    mapped_.insert(vpn, pfn);
    return pfn;
}

Pfn
PageTable::lookup(Vpn vpn) const
{
    const Pfn *pfn = mapped_.find(vpn);
    return pfn == nullptr ? kInvalidPfn : *pfn;
}

std::array<Addr, kPtLevels>
PageTable::walkAddrs(Vpn vpn) const
{
    std::array<Addr, kPtLevels> addrs{};
    const Node *node = root_.get();
    for (std::uint32_t level = 1; level <= kPtLevels; ++level) {
        assert(node != nullptr && "walkAddrs on unmapped vpn");
        const std::uint32_t idx = levelIndex(vpn, level);
        addrs[level - 1] =
            frames_.frameAddr(node->frame) + Addr{idx} * kPteBytes;
        if (level < kPtLevels)
            node = node->child(idx);
    }
    return addrs;
}

Addr
PageTable::rootAddr() const
{
    return frames_.frameAddr(root_->frame);
}

bool
PageTable::unmapPage(Vpn vpn)
{
    return mapped_.erase(vpn);
}

void
PageTable::serialize(StateWriter &w) const
{
    w.tag("pt");
    w.u(asid_);
    w.u(nodeCount_);
    // Recursive pre-order encoding: frame, child count, then
    // (index, subtree) per present child.
    struct Enc
    {
        StateWriter &w;
        void
        node(const Node &n)
        {
            w.u(n.frame);
            std::uint64_t present = 0;
            for (const auto &child : n.children) {
                if (child)
                    ++present;
            }
            w.u(present);
            for (std::size_t i = 0; i < n.children.size(); ++i) {
                if (n.children[i]) {
                    w.u(i);
                    node(*n.children[i]);
                }
            }
        }
    };
    Enc{w}.node(*root_);
    mapped_.serializeSlots(
        w, [](StateWriter &sw, const Pfn &pfn) { sw.u(pfn); });
}

void
PageTable::deserialize(StateReader &r)
{
    r.tag("pt");
    const std::uint64_t asid = r.u();
    if (asid != asid_)
        r.fail("page table ASID mismatch (" + std::to_string(asid) +
               " vs " + std::to_string(asid_) + ")");
    nodeCount_ = r.u();
    constexpr std::uint32_t kRadix = 1u << kPtBitsPerLevel;
    struct Dec
    {
        StateReader &r;
        std::uint64_t seen = 0;
        void
        node(Node &n, std::uint32_t depth)
        {
            if (depth > kPtLevels)
                r.fail("page table deeper than " +
                       std::to_string(kPtLevels) + " levels");
            ++seen;
            n.frame = r.u();
            n.children.clear();
            const std::uint64_t present = r.count(kRadix);
            if (present > 0)
                n.children.resize(kRadix);
            std::uint64_t prev_idx = 0;
            for (std::uint64_t k = 0; k < present; ++k) {
                const std::uint64_t idx = r.u();
                if (idx >= kRadix || (k > 0 && idx <= prev_idx))
                    r.fail("page table child index out of order");
                prev_idx = idx;
                auto child = std::make_unique<Node>();
                node(*child, depth + 1);
                n.children[idx] = std::move(child);
            }
        }
    };
    Dec dec{r};
    root_ = std::make_unique<Node>();
    dec.node(*root_, 1);
    if (dec.seen != nodeCount_)
        r.fail("page table node count " + std::to_string(nodeCount_) +
               " disagrees with " + std::to_string(dec.seen) +
               " decoded nodes");
    mapped_.deserializeSlots(
        r, [](StateReader &sr, Pfn &pfn) { pfn = sr.u(); });
}

} // namespace mask
