#include "vm/walker.hh"

#include "common/check.hh"

namespace mask {

PageTableWalker::PageTableWalker(const WalkerConfig &cfg) : cfg_(cfg)
{
    slots_.resize(cfg_.maxConcurrentWalks);
    freeSlots_.reserve(cfg_.maxConcurrentWalks);
    for (std::uint32_t i = 0; i < cfg_.maxConcurrentWalks; ++i)
        freeSlots_.push_back(cfg_.maxConcurrentWalks - 1 - i);
}

WalkId
PageTableWalker::startWalk(Asid asid, Vpn vpn, AppId app,
                           const std::array<Addr, kPtLevels> &pte_addrs,
                           Cycle now)
{
    SIM_CHECK_CTX(hasCapacity(), "vm.walker", now,
                  "startWalk with no free walker thread",
                  (CheckContext{.asid = asid, .vpn = vpn, .app = app}));
    const WalkId id = freeSlots_.back();
    freeSlots_.pop_back();

    Slot &slot = slots_[id];
    slot.info = WalkInfo{asid, vpn, app, now};
    slot.pteAddrs = pte_addrs;
    slot.level = 1;
    slot.inUse = true;

    if (app >= activePerApp_.size())
        activePerApp_.resize(app + 1, 0);
    ++activePerApp_[app];
    ++active_;
    ++started_;

    fetchQueue_.push_back(id);
    return id;
}

WalkId
PageTableWalker::popPendingFetch()
{
    SIM_CHECK(!fetchQueue_.empty(), "vm.walker", kUnknownCycle,
              "popPendingFetch with no pending fetch");
    const WalkId id = fetchQueue_.front();
    fetchQueue_.pop_front();
    return id;
}

Addr
PageTableWalker::fetchAddr(WalkId walk) const
{
    const Slot &slot = slots_[walk];
    SIM_CHECK_CTX(slot.inUse, "vm.walker", kUnknownCycle,
                  "fetchAddr on a released walk",
                  CheckContext{.walkId = walk});
    return slot.pteAddrs[slot.level - 1];
}

std::uint8_t
PageTableWalker::fetchLevel(WalkId walk) const
{
    SIM_CHECK_CTX(slots_[walk].inUse, "vm.walker", kUnknownCycle,
                  "fetchLevel on a released walk",
                  CheckContext{.walkId = walk});
    return slots_[walk].level;
}

bool
PageTableWalker::fetchComplete(WalkId walk, Cycle now)
{
    Slot &slot = slots_[walk];
    SIM_CHECK_CTX(slot.inUse, "vm.walker", now,
                  "fetch completion for a released walk",
                  CheckContext{.walkId = walk});
    if (slot.level == cfg_.levels) {
        walkLatency_.add(
            static_cast<double>(now - slot.info.startCycle));
        return true;
    }
    ++slot.level;
    fetchQueue_.push_back(walk);
    return false;
}

const PageTableWalker::WalkInfo &
PageTableWalker::info(WalkId walk) const
{
    SIM_CHECK_CTX(slots_[walk].inUse, "vm.walker", kUnknownCycle,
                  "info on a released walk",
                  CheckContext{.walkId = walk});
    return slots_[walk].info;
}

void
PageTableWalker::release(WalkId walk)
{
    Slot &slot = slots_[walk];
    SIM_CHECK_CTX(slot.inUse, "vm.walker", kUnknownCycle,
                  "double release of a walker slot",
                  CheckContext{.walkId = walk});
    slot.inUse = false;
    SIM_CHECK_CTX(activePerApp_[slot.info.app] > 0 && active_ > 0,
                  "vm.walker", kUnknownCycle,
                  "active-walk count underflow on release",
                  (CheckContext{.app = slot.info.app,
                                .walkId = walk}));
    --activePerApp_[slot.info.app];
    --active_;
    freeSlots_.push_back(walk);
}

std::vector<WalkId>
PageTableWalker::activeWalkIds() const
{
    std::vector<WalkId> ids;
    ids.reserve(active_);
    for (WalkId id = 0; id < slots_.size(); ++id) {
        if (slots_[id].inUse)
            ids.push_back(id);
    }
    return ids;
}

std::uint32_t
PageTableWalker::activeWalksFor(AppId app) const
{
    return app < activePerApp_.size() ? activePerApp_[app] : 0;
}

void
PageTableWalker::serialize(StateWriter &w) const
{
    w.tag("walker");
    w.u(slots_.size());
    for (const Slot &slot : slots_) {
        w.b(slot.inUse);
        if (!slot.inUse)
            continue;
        w.u(slot.info.asid);
        w.u(slot.info.vpn);
        w.u(slot.info.app);
        w.u(slot.info.startCycle);
        for (const Addr addr : slot.pteAddrs)
            w.u(addr);
        w.u(slot.level);
    }
    putUintSeq(w, freeSlots_);
    putUintSeq(w, fetchQueue_);
    putUintSeq(w, activePerApp_);
    w.u(active_);
    w.u(started_);
    walkLatency_.serialize(w);
}

void
PageTableWalker::deserialize(StateReader &r)
{
    r.tag("walker");
    const std::uint64_t n = r.u();
    if (n != slots_.size())
        r.fail("walker slot count mismatch (" + std::to_string(n) +
               " vs configured " + std::to_string(slots_.size()) + ")");
    for (Slot &slot : slots_) {
        slot = Slot{};
        if (!r.b())
            continue;
        slot.info.asid = static_cast<Asid>(r.u());
        slot.info.vpn = r.u();
        slot.info.app = static_cast<AppId>(r.u());
        slot.info.startCycle = r.u();
        for (Addr &addr : slot.pteAddrs)
            addr = r.u();
        const std::uint64_t level = r.u();
        if (level < 1 || level > kPtLevels)
            r.fail("walk level " + std::to_string(level) +
                   " out of range");
        slot.level = static_cast<std::uint8_t>(level);
        slot.inUse = true;
    }
    getUintSeq(r, freeSlots_, slots_.size());
    getUintSeq(r, fetchQueue_, slots_.size());
    for (const WalkId id : freeSlots_) {
        if (id >= slots_.size() || slots_[id].inUse)
            r.fail("walker free list names an in-use slot");
    }
    for (const WalkId id : fetchQueue_) {
        if (id >= slots_.size() || !slots_[id].inUse)
            r.fail("walker fetch queue names a free slot");
    }
    getUintSeq(r, activePerApp_);
    active_ = static_cast<std::uint32_t>(r.u());
    started_ = r.u();
    walkLatency_.deserialize(r);
}

} // namespace mask
