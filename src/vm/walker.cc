#include "vm/walker.hh"

#include <cassert>

namespace mask {

PageTableWalker::PageTableWalker(const WalkerConfig &cfg) : cfg_(cfg)
{
    slots_.resize(cfg_.maxConcurrentWalks);
    freeSlots_.reserve(cfg_.maxConcurrentWalks);
    for (std::uint32_t i = 0; i < cfg_.maxConcurrentWalks; ++i)
        freeSlots_.push_back(cfg_.maxConcurrentWalks - 1 - i);
}

WalkId
PageTableWalker::startWalk(Asid asid, Vpn vpn, AppId app,
                           const std::array<Addr, kPtLevels> &pte_addrs,
                           Cycle now)
{
    assert(hasCapacity());
    const WalkId id = freeSlots_.back();
    freeSlots_.pop_back();

    Slot &slot = slots_[id];
    slot.info = WalkInfo{asid, vpn, app, now};
    slot.pteAddrs = pte_addrs;
    slot.level = 1;
    slot.inUse = true;

    if (app >= activePerApp_.size())
        activePerApp_.resize(app + 1, 0);
    ++activePerApp_[app];
    ++active_;
    ++started_;

    fetchQueue_.push_back(id);
    return id;
}

WalkId
PageTableWalker::popPendingFetch()
{
    assert(!fetchQueue_.empty());
    const WalkId id = fetchQueue_.front();
    fetchQueue_.pop_front();
    return id;
}

Addr
PageTableWalker::fetchAddr(WalkId walk) const
{
    const Slot &slot = slots_[walk];
    assert(slot.inUse);
    return slot.pteAddrs[slot.level - 1];
}

std::uint8_t
PageTableWalker::fetchLevel(WalkId walk) const
{
    assert(slots_[walk].inUse);
    return slots_[walk].level;
}

bool
PageTableWalker::fetchComplete(WalkId walk, Cycle now)
{
    Slot &slot = slots_[walk];
    assert(slot.inUse);
    if (slot.level == cfg_.levels) {
        walkLatency_.add(
            static_cast<double>(now - slot.info.startCycle));
        return true;
    }
    ++slot.level;
    fetchQueue_.push_back(walk);
    return false;
}

const PageTableWalker::WalkInfo &
PageTableWalker::info(WalkId walk) const
{
    assert(slots_[walk].inUse);
    return slots_[walk].info;
}

void
PageTableWalker::release(WalkId walk)
{
    Slot &slot = slots_[walk];
    assert(slot.inUse);
    slot.inUse = false;
    assert(activePerApp_[slot.info.app] > 0 && active_ > 0);
    --activePerApp_[slot.info.app];
    --active_;
    freeSlots_.push_back(walk);
}

std::uint32_t
PageTableWalker::activeWalksFor(AppId app) const
{
    return app < activePerApp_.size() ? activePerApp_[app] : 0;
}

} // namespace mask
