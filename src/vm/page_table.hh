/**
 * @file
 * Per-address-space four-level radix page tables backed by a simulated
 * physical frame allocator.
 *
 * Page table nodes occupy real (simulated) physical frames, so a page
 * table walk turns into a sequence of physical memory reads whose
 * addresses land in specific DRAM rows and L2 cache sets — exactly the
 * traffic the paper's mechanisms act on.
 */

#ifndef MASK_VM_PAGE_TABLE_HH
#define MASK_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_table.hh"
#include "common/types.hh"

namespace mask {

/** Number of radix levels in the page table (paper Section 3). */
constexpr std::uint32_t kPtLevels = 4;

/** Radix bits per level (512-entry nodes, 8-byte PTEs). */
constexpr std::uint32_t kPtBitsPerLevel = 9;

constexpr std::uint32_t kPteBytes = 8;

/**
 * Monotonic allocator of simulated physical frames.
 *
 * Frames are handed out sequentially so that consecutively-allocated
 * virtual pages of an application map to adjacent physical rows,
 * giving data demand requests the high row-buffer locality the paper
 * observes (Section 4.3).
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(std::uint32_t page_bits)
        : pageBits_(page_bits)
    {}

    Pfn allocate() { return next_++; }
    std::uint64_t allocated() const { return next_; }
    std::uint64_t pageBytes() const { return 1ull << pageBits_; }
    Addr frameAddr(Pfn pfn) const { return pfn << pageBits_; }

    void
    serialize(StateWriter &w) const
    {
        w.tag("frames");
        w.u(next_);
    }

    void
    deserialize(StateReader &r)
    {
        r.tag("frames");
        next_ = r.u();
    }

  private:
    std::uint32_t pageBits_;
    Pfn next_ = 0;
};

/**
 * A four-level page table for one address space.
 *
 * Mappings are demand-allocated: the multi-application runner maps a
 * page the first time a warp touches it (the paper treats page faults
 * as future work, Section 5.5).
 */
class PageTable
{
  public:
    PageTable(Asid asid, std::uint32_t page_bits, FrameAllocator &frames);

    Asid asid() const { return asid_; }

    /** Map vpn (allocating a frame on first use); returns its PFN. */
    Pfn mapPage(Vpn vpn);

    /** Look up vpn without mapping; kInvalidPfn if unmapped. */
    Pfn lookup(Vpn vpn) const;

    /**
     * Physical addresses of the PTE read at each level of a walk of
     * vpn, root first. The vpn must already be mapped.
     */
    std::array<Addr, kPtLevels> walkAddrs(Vpn vpn) const;

    /** Physical address of the root node (CR3 analog). */
    Addr rootAddr() const;

    /** Number of page table nodes allocated (all levels). */
    std::uint64_t nodeCount() const { return nodeCount_; }

    /** Number of leaf mappings installed. */
    std::uint64_t mappedPages() const { return mapped_.size(); }

    /**
     * Remove a single mapping (used by TLB shootdown tests). Interior
     * nodes are kept. Returns true if the mapping existed.
     */
    bool unmapPage(Vpn vpn);

    /**
     * Snapshot the radix tree (interior frames interleave with leaf
     * allocations in the shared FrameAllocator, so the exact tree
     * shape and frame numbers are semantic) plus the leaf map.
     */
    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    struct Node
    {
        Pfn frame = 0;
        /**
         * Direct-indexed child array, sized to the 512-entry radix on
         * first child insertion (leaf-level nodes never pay for it).
         * A walk then costs three array indexings, not three hash
         * probes — walkAddrs runs once per page table walk.
         */
        std::vector<std::unique_ptr<Node>> children;

        Node *
        child(std::uint32_t idx) const
        {
            return children.empty() ? nullptr : children[idx].get();
        }
    };

    std::uint32_t levelIndex(Vpn vpn, std::uint32_t level) const;
    Node *walkToLeafNode(Vpn vpn, bool allocate);

    Asid asid_;
    std::uint32_t pageBits_;
    FrameAllocator &frames_;
    std::unique_ptr<Node> root_;
    /** Leaf VPN -> PFN map; probed on every warp memory access. */
    FlatTable<Pfn> mapped_;
    std::uint64_t nodeCount_ = 0;
};

} // namespace mask

#endif // MASK_VM_PAGE_TABLE_HH
