/**
 * @file
 * Shared, highly-threaded page table walker (paper Section 3).
 *
 * The walker tracks walk state machines only; the GPU top level issues
 * the actual PTE fetches into the memory hierarchy (via the page walk
 * cache, the shared L2, or — under MASK's L2 bypass — directly to
 * DRAM) and notifies the walker when each level's read completes.
 */

#ifndef MASK_VM_WALKER_HH
#define MASK_VM_WALKER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "vm/page_table.hh"

namespace mask {

/** Handle for an in-progress page table walk. */
using WalkId = std::uint32_t;

/** Shared multi-threaded page table walker. */
class PageTableWalker
{
  public:
    explicit PageTableWalker(const WalkerConfig &cfg);

    /** Per-walk bookkeeping exposed on completion. */
    struct WalkInfo
    {
        Asid asid = 0;
        Vpn vpn = 0;
        AppId app = 0;
        Cycle startCycle = 0;
    };

    /** True if another walk thread is available. */
    bool hasCapacity() const { return active_ < cfg_.maxConcurrentWalks; }

    /**
     * Begin a walk. @p pte_addrs are the physical addresses of the PTE
     * read at each level, root first (PageTable::walkAddrs).
     * The walk is immediately queued for its level-1 fetch.
     */
    WalkId startWalk(Asid asid, Vpn vpn, AppId app,
                     const std::array<Addr, kPtLevels> &pte_addrs,
                     Cycle now);

    /** True if some walk has a PTE fetch ready to issue. */
    bool hasPendingFetch() const { return !fetchQueue_.empty(); }

    /** Pop the next walk whose current-level fetch should be issued. */
    WalkId popPendingFetch();

    /** Physical address of @p walk's current-level PTE read. */
    Addr fetchAddr(WalkId walk) const;

    /** Page table level (1..4) of @p walk's current fetch. */
    std::uint8_t fetchLevel(WalkId walk) const;

    /**
     * Notify that the current level's PTE data arrived. Advances the
     * walk; returns true if the walk has finished all levels.
     * An unfinished walk is re-queued for its next fetch.
     */
    bool fetchComplete(WalkId walk, Cycle now);

    const WalkInfo &info(WalkId walk) const;

    /** Release a finished walk's slot. */
    void release(WalkId walk);

    /** Walks currently in flight (Fig. 5 metric, ConPTW of Eq. 1). */
    std::uint32_t activeWalks() const { return active_; }

    /** Ids of all in-flight walks in slot order (watchdog sweeps). */
    std::vector<WalkId> activeWalkIds() const;

    /** Walks in flight for one application (ConPTW_i of Eq. 1). */
    std::uint32_t activeWalksFor(AppId app) const;

    /** Total walks started. */
    std::uint64_t walksStarted() const { return started_; }

    /** Completed-walk latency statistics. */
    const RunningStat &walkLatency() const { return walkLatency_; }

    void resetStats() { walkLatency_.reset(); started_ = 0; }

    void serialize(StateWriter &w) const;
    void deserialize(StateReader &r);

  private:
    struct Slot
    {
        WalkInfo info;
        std::array<Addr, kPtLevels> pteAddrs{};
        std::uint8_t level = 1; //!< level of the outstanding/next fetch
        bool inUse = false;
    };

    WalkerConfig cfg_;
    std::vector<Slot> slots_;
    std::vector<WalkId> freeSlots_;
    std::deque<WalkId> fetchQueue_;
    std::vector<std::uint32_t> activePerApp_;
    std::uint32_t active_ = 0;
    std::uint64_t started_ = 0;
    RunningStat walkLatency_;
};

} // namespace mask

#endif // MASK_VM_WALKER_HH
