#!/bin/sh
# Regenerates every paper table/figure. Output: bench_output.txt.
# MASK_BENCH_CYCLES / MASK_BENCH_FAST / MASK_BENCH_PAIRS shrink runs;
# MASK_BENCH_JOBS parallelizes the sweeps (default: all hardware
# threads; output is byte-identical regardless of the job count).
set -e
MASK_BENCH_JOBS="${MASK_BENCH_JOBS:-0}"
export MASK_BENCH_JOBS
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo ""
    echo "########## $(basename "$b") ##########"
    "$b" || echo "(non-zero exit: $?)"
done
