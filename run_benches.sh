#!/bin/sh
# Regenerates every paper table/figure. Output: bench_output.txt.
# MASK_BENCH_CYCLES / MASK_BENCH_FAST / MASK_BENCH_PAIRS shrink runs;
# MASK_BENCH_JOBS parallelizes the sweeps (default: all hardware
# threads; output is byte-identical regardless of the job count).
# MASK_SWEEP_* (timeouts, retries, isolation, journal) harden long
# sweeps; see README.md. MASK_SWEEP_OBS_DIR=<dir> collects per-job
# telemetry (timeseries JSONL + Chrome trace, DESIGN.md S13) from
# every sweep into <dir>; the summary footer says where it landed.
# MASK_SWEEP_WARM=1 (or MASK_SWEEP_WARM_DIR=<dir>) forks warmed
# snapshots across sweep jobs that share a warmup prefix instead of
# re-simulating it (DESIGN.md S14); each sweep prints a "[warm]"
# hit/miss footer on stderr and stdout stays byte-identical.
#
# Every bench runs even if an earlier one fails; the script prints a
# per-bench PASS/FAIL summary and exits non-zero if any bench failed.
MASK_BENCH_JOBS="${MASK_BENCH_JOBS:-0}"
export MASK_BENCH_JOBS
if [ -n "${MASK_SWEEP_OBS_DIR:-}" ]; then
    export MASK_SWEEP_OBS_DIR
fi
if [ -n "${MASK_SWEEP_WARM:-}" ]; then
    export MASK_SWEEP_WARM
fi
if [ -n "${MASK_SWEEP_WARM_DIR:-}" ]; then
    export MASK_SWEEP_WARM_DIR
fi

failed=""
passed=0
total=0
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    # crash_replay is a repro-replay tool, not a figure/table bench;
    # it exits non-zero without a --replay argument.
    [ "$name" = "crash_replay" ] && continue
    total=$((total + 1))
    echo ""
    echo "########## $name ##########"
    if "$b"; then
        passed=$((passed + 1))
    else
        status=$?
        echo "(non-zero exit: $status)"
        failed="$failed $name($status)"
    fi
done

echo ""
echo "########## summary ##########"
echo "$passed/$total benches passed"
if [ -n "${MASK_SWEEP_OBS_DIR:-}" ]; then
    obs_files=$(ls "$MASK_SWEEP_OBS_DIR" 2>/dev/null | wc -l)
    echo "telemetry: $obs_files files in $MASK_SWEEP_OBS_DIR (summarize with scripts/obs_report.py)"
fi
if [ -n "${MASK_SWEEP_WARM:-}" ] || [ -n "${MASK_SWEEP_WARM_DIR:-}" ]; then
    echo "warm-start cache was enabled; per-sweep [warm] hit/miss footers are on stderr"
    if [ -n "${MASK_SWEEP_WARM_DIR:-}" ]; then
        warm_files=$(ls "$MASK_SWEEP_WARM_DIR" 2>/dev/null | wc -l)
        echo "warm snapshots: $warm_files files in $MASK_SWEEP_WARM_DIR"
    fi
fi
if [ -n "$failed" ]; then
    echo "FAILED:$failed"
    exit 1
fi
echo "all benches PASS"
