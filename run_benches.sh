#!/bin/sh
# Regenerates every paper table/figure. Output: bench_output.txt.
# MASK_BENCH_CYCLES / MASK_BENCH_FAST / MASK_BENCH_PAIRS shrink runs.
set -e
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo ""
    echo "########## $(basename "$b") ##########"
    "$b" || echo "(non-zero exit: $?)"
done
