/**
 * @file
 * Figure 6: average number of warps stalled per L2 TLB miss, per
 * benchmark (SharedTLB baseline).
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 6",
                  "average warps stalled per shared-TLB miss");

    const RunOptions options = bench::benchOptions();
    const GpuConfig cfg =
        applyDesignPoint(archByName("maxwell"), DesignPoint::SharedTlb);

    std::printf("%-8s %10s %8s %8s %10s\n", "bench", "warps/miss",
                "min", "max", "misses");
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        bench::progress(std::string("fig6 ") + benchp.name);
        Gpu gpu(cfg, {AppDesc{&benchp}});
        gpu.run(options.warmup);
        gpu.resetStats();
        gpu.run(options.measure);
        const GpuStats stats = gpu.collect();
        std::printf("%-8s %10.1f %8.0f %8.0f %10llu\n", benchp.name,
                    stats.warpsPerMiss.mean(),
                    stats.warpsPerMiss.minVal,
                    stats.warpsPerMiss.maxVal,
                    static_cast<unsigned long long>(
                        stats.warpsPerMiss.count));
    }
    std::printf("\nPaper: 20-40 warps stalled per miss for most "
                "benchmarks (of 64 per core); our lockstep model "
                "reproduces multi-warp stalls at lower absolute "
                "counts (see EXPERIMENTS.md).\n");
    return 0;
}
