/**
 * @file
 * Figure 6: average number of warps stalled per L2 TLB miss, per
 * benchmark (SharedTLB baseline).
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 6",
                  "average warps stalled per shared-TLB miss");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    std::vector<std::size_t> ids;
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        bench::progress(std::string("fig6 ") + benchp.name);
        ids.push_back(sweep.submit({arch, DesignPoint::SharedTlb,
                                    {benchp.name},
                                    SweepMode::SharedOnly}));
    }
    sweep.run();

    std::printf("%-8s %10s %8s %8s %10s\n", "bench", "warps/miss",
                "min", "max", "misses");
    std::size_t next = 0;
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        const std::size_t id = ids[next++];
        const PairResult *r = bench::okResult(sweep, id);
        if (r == nullptr) {
            std::printf("%-8s %10s\n", benchp.name,
                        bench::failedCell(sweep, id).c_str());
            continue;
        }
        const GpuStats &stats = r->stats;
        std::printf("%-8s %10.1f %8.0f %8.0f %10llu\n", benchp.name,
                    stats.warpsPerMiss.mean(),
                    stats.warpsPerMiss.minVal,
                    stats.warpsPerMiss.maxVal,
                    static_cast<unsigned long long>(
                        stats.warpsPerMiss.count));
    }
    std::printf("\nPaper: 20-40 warps stalled per miss for most "
                "benchmarks (of 64 per core); our lockstep model "
                "reproduces multi-warp stalls at lower absolute "
                "counts (see EXPERIMENTS.md).\n");
    bench::reportFailures(sweep);
    return 0;
}
