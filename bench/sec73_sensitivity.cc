/**
 * @file
 * Section 7.3 sensitivity studies: shared L2 TLB size (64-8192
 * entries), 2MB large pages, and ablations of the design choices
 * DESIGN.md calls out (the golden-queue bandwidth guard and the
 * walker thread count).
 */

#include "bench_util.hh"

using namespace mask;

namespace {

double
wsFor(Evaluator &eval, const GpuConfig &arch, DesignPoint point,
      const WorkloadPair &pair)
{
    return eval.evaluate(arch, point, {pair.first, pair.second})
        .weightedSpeedup;
}

} // namespace

int
main()
{
    bench::banner("Section 7.3", "sensitivity and ablation studies");

    Evaluator eval(bench::benchOptions());
    std::vector<WorkloadPair> pairs = bench::benchPairs();
    if (pairs.size() > 6)
        pairs.resize(6);

    std::printf("--- Shared L2 TLB size sweep ---\n");
    std::printf("%-8s %12s %12s\n", "entries", "SharedTLB",
                "MASK");
    for (const std::uint32_t entries :
         {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
        GpuConfig arch = archByName("maxwell");
        arch.name = "maxwell-tlb" + std::to_string(entries);
        arch.l2Tlb.entries = entries;
        double shared = 0.0, mask_ws = 0.0;
        for (const WorkloadPair &pair : pairs) {
            bench::progress("tlb size " + std::to_string(entries) +
                            " " + pair.name());
            shared +=
                wsFor(eval, arch, DesignPoint::SharedTlb, pair);
            mask_ws += wsFor(eval, arch, DesignPoint::Mask, pair);
        }
        std::printf("%-8u %12.3f %12.3f\n", entries,
                    shared / pairs.size(), mask_ws / pairs.size());
    }
    std::printf("Paper: MASK outperforms SharedTLB at every size "
                "until the working set fits (8192 entries).\n\n");

    std::printf("--- 2MB large pages ---\n");
    {
        GpuConfig arch = archByName("maxwell");
        arch.name = "maxwell-2mb";
        arch.pageBits = 21;
        double shared = 0.0, mask_ws = 0.0, ideal = 0.0;
        for (const WorkloadPair &pair : pairs) {
            bench::progress("2MB pages " + pair.name());
            shared +=
                wsFor(eval, arch, DesignPoint::SharedTlb, pair);
            mask_ws += wsFor(eval, arch, DesignPoint::Mask, pair);
            ideal += wsFor(eval, arch, DesignPoint::Ideal, pair);
        }
        std::printf("SharedTLB %.3f   MASK %.3f   Ideal %.3f\n",
                    shared / pairs.size(), mask_ws / pairs.size(),
                    ideal / pairs.size());
        std::printf("Paper: with 2MB pages SharedTLB still falls "
                    "44.5%% short of Ideal while MASK is within "
                    "1.8%%.\n\n");
    }

    std::printf("--- Ablation: golden-queue bandwidth guard ---\n");
    {
        std::printf("%-12s %12s\n", "guard(cyc)", "MASK WS");
        for (const Cycle guard : {0u, 50u, 100u, 400u, 100000u}) {
            GpuConfig arch = archByName("maxwell");
            arch.name = "maxwell-gg" + std::to_string(guard);
            arch.mask.goldenMaxDelay = guard;
            double mask_ws = 0.0;
            for (const WorkloadPair &pair : pairs) {
                bench::progress("golden guard " +
                                std::to_string(guard) + " " +
                                pair.name());
                mask_ws += wsFor(eval, arch, DesignPoint::Mask, pair);
            }
            std::printf("%-12llu %12.3f\n",
                        static_cast<unsigned long long>(guard),
                        mask_ws / pairs.size());
        }
        std::printf("(0 = strict golden priority; large = always "
                    "defer to data row hits)\n\n");
    }

    std::printf("--- Ablation: page table walker threads ---\n");
    {
        std::printf("%-10s %12s %12s\n", "threads", "SharedTLB",
                    "MASK");
        for (const std::uint32_t threads : {16u, 32u, 64u, 128u}) {
            GpuConfig arch = archByName("maxwell");
            arch.name = "maxwell-w" + std::to_string(threads);
            arch.walker.maxConcurrentWalks = threads;
            double shared = 0.0, mask_ws = 0.0;
            for (const WorkloadPair &pair : pairs) {
                bench::progress("walker " + std::to_string(threads) +
                                " " + pair.name());
                shared +=
                    wsFor(eval, arch, DesignPoint::SharedTlb, pair);
                mask_ws += wsFor(eval, arch, DesignPoint::Mask, pair);
            }
            std::printf("%-10u %12.3f %12.3f\n", threads,
                        shared / pairs.size(),
                        mask_ws / pairs.size());
        }
    }
    return 0;
}
