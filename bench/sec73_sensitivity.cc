/**
 * @file
 * Section 7.3 sensitivity studies: shared L2 TLB size (64-8192
 * entries), 2MB large pages, and ablations of the design choices
 * DESIGN.md calls out (the golden-queue bandwidth guard and the
 * walker thread count).
 */

#include "bench_util.hh"

using namespace mask;

namespace {

std::size_t
submitWs(SweepRunner &sweep, const GpuConfig &arch, DesignPoint point,
         const WorkloadPair &pair)
{
    return sweep.submit({arch, point, {pair.first, pair.second}});
}

/**
 * Mean weighted speedup over the jobs that completed; failed jobs
 * drop out of the average, and a column with no survivors renders as
 * a FAILED marker instead of a number.
 */
struct WsMean
{
    double sum = 0.0;
    int n = 0;

    void
    add(const SweepRunner &sweep, std::size_t id)
    {
        if (const PairResult *r = bench::okResult(sweep, id)) {
            sum += r->weightedSpeedup;
            ++n;
        }
    }

    std::string
    cell(int width = 12) const
    {
        char buf[32];
        if (n > 0)
            std::snprintf(buf, sizeof(buf), "%*.3f", width, sum / n);
        else
            std::snprintf(buf, sizeof(buf), "%*s", width, "FAILED");
        return buf;
    }
};

} // namespace

int
main()
{
    bench::banner("Section 7.3", "sensitivity and ablation studies");

    SweepRunner sweep = bench::benchSweep();
    std::vector<WorkloadPair> pairs = bench::benchPairs();
    if (pairs.size() > 6)
        pairs.resize(6);

    std::printf("--- Shared L2 TLB size sweep ---\n");
    std::printf("%-8s %12s %12s\n", "entries", "SharedTLB",
                "MASK");
    const std::vector<std::uint32_t> sizes = {
        64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u};
    std::vector<std::size_t> size_ids;
    for (const std::uint32_t entries : sizes) {
        GpuConfig arch = archByName("maxwell");
        arch.name = "maxwell-tlb" + std::to_string(entries);
        arch.l2Tlb.entries = entries;
        for (const WorkloadPair &pair : pairs) {
            bench::progress("tlb size " + std::to_string(entries) +
                            " " + pair.name());
            size_ids.push_back(submitWs(sweep, arch,
                                        DesignPoint::SharedTlb, pair));
            size_ids.push_back(
                submitWs(sweep, arch, DesignPoint::Mask, pair));
        }
    }
    sweep.run();
    std::size_t next = 0;
    for (const std::uint32_t entries : sizes) {
        WsMean shared, mask_ws;
        for (std::size_t w = 0; w < pairs.size(); ++w) {
            shared.add(sweep, size_ids[next++]);
            mask_ws.add(sweep, size_ids[next++]);
        }
        std::printf("%-8u %s %s\n", entries, shared.cell().c_str(),
                    mask_ws.cell().c_str());
    }
    std::printf("Paper: MASK outperforms SharedTLB at every size "
                "until the working set fits (8192 entries).\n\n");

    std::printf("--- 2MB large pages ---\n");
    {
        GpuConfig arch = archByName("maxwell");
        arch.name = "maxwell-2mb";
        arch.pageBits = 21;
        std::vector<std::size_t> page_ids;
        for (const WorkloadPair &pair : pairs) {
            bench::progress("2MB pages " + pair.name());
            page_ids.push_back(submitWs(sweep, arch,
                                        DesignPoint::SharedTlb, pair));
            page_ids.push_back(
                submitWs(sweep, arch, DesignPoint::Mask, pair));
            page_ids.push_back(
                submitWs(sweep, arch, DesignPoint::Ideal, pair));
        }
        sweep.run();
        WsMean shared, mask_ws, ideal;
        std::size_t pn = 0;
        for (std::size_t w = 0; w < pairs.size(); ++w) {
            shared.add(sweep, page_ids[pn++]);
            mask_ws.add(sweep, page_ids[pn++]);
            ideal.add(sweep, page_ids[pn++]);
        }
        std::printf("SharedTLB %s   MASK %s   Ideal %s\n",
                    shared.cell(0).c_str(), mask_ws.cell(0).c_str(),
                    ideal.cell(0).c_str());
        std::printf("Paper: with 2MB pages SharedTLB still falls "
                    "44.5%% short of Ideal while MASK is within "
                    "1.8%%.\n\n");
    }

    std::printf("--- Ablation: golden-queue bandwidth guard ---\n");
    {
        std::printf("%-12s %12s\n", "guard(cyc)", "MASK WS");
        const std::vector<Cycle> guards = {0u, 50u, 100u, 400u,
                                           100000u};
        std::vector<std::size_t> guard_ids;
        for (const Cycle guard : guards) {
            GpuConfig arch = archByName("maxwell");
            arch.name = "maxwell-gg" + std::to_string(guard);
            arch.mask.goldenMaxDelay = guard;
            for (const WorkloadPair &pair : pairs) {
                bench::progress("golden guard " +
                                std::to_string(guard) + " " +
                                pair.name());
                guard_ids.push_back(
                    submitWs(sweep, arch, DesignPoint::Mask, pair));
            }
        }
        sweep.run();
        std::size_t gn = 0;
        for (const Cycle guard : guards) {
            WsMean mask_ws;
            for (std::size_t w = 0; w < pairs.size(); ++w)
                mask_ws.add(sweep, guard_ids[gn++]);
            std::printf("%-12llu %s\n",
                        static_cast<unsigned long long>(guard),
                        mask_ws.cell().c_str());
        }
        std::printf("(0 = strict golden priority; large = always "
                    "defer to data row hits)\n\n");
    }

    std::printf("--- Ablation: page table walker threads ---\n");
    {
        std::printf("%-10s %12s %12s\n", "threads", "SharedTLB",
                    "MASK");
        const std::vector<std::uint32_t> counts = {16u, 32u, 64u,
                                                   128u};
        std::vector<std::size_t> walker_ids;
        for (const std::uint32_t threads : counts) {
            GpuConfig arch = archByName("maxwell");
            arch.name = "maxwell-w" + std::to_string(threads);
            arch.walker.maxConcurrentWalks = threads;
            for (const WorkloadPair &pair : pairs) {
                bench::progress("walker " + std::to_string(threads) +
                                " " + pair.name());
                walker_ids.push_back(submitWs(
                    sweep, arch, DesignPoint::SharedTlb, pair));
                walker_ids.push_back(
                    submitWs(sweep, arch, DesignPoint::Mask, pair));
            }
        }
        sweep.run();
        std::size_t wn = 0;
        for (const std::uint32_t threads : counts) {
            WsMean shared, mask_ws;
            for (std::size_t w = 0; w < pairs.size(); ++w) {
                shared.add(sweep, walker_ids[wn++]);
                mask_ws.add(sweep, walker_ids[wn++]);
            }
            std::printf("%-10u %s %s\n", threads,
                        shared.cell().c_str(),
                        mask_ws.cell().c_str());
        }
    }
    bench::reportFailures(sweep);
    return 0;
}
