/**
 * @file
 * Figure 8: DRAM bandwidth consumed by address translation requests
 * vs. data demand requests (fraction of maximum bandwidth), per
 * two-application workload, under the SharedTLB baseline.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 8",
                  "DRAM bandwidth utilization: translation vs. data");

    const RunOptions options = bench::benchOptions();
    const GpuConfig cfg =
        applyDesignPoint(archByName("maxwell"), DesignPoint::SharedTlb);

    std::printf("%-14s %12s %12s %14s\n", "workload", "translation",
                "data", "trans/utilized");
    double trans_sum = 0.0, data_sum = 0.0;
    int n = 0;
    for (const WorkloadPair &pair : bench::benchPairs()) {
        bench::progress("fig8 " + pair.name());
        const BenchmarkParams &a = findBenchmark(pair.first);
        const BenchmarkParams &b = findBenchmark(pair.second);
        Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
        gpu.run(options.warmup);
        gpu.resetStats();
        gpu.run(options.measure);
        GpuStats stats = gpu.collect();
        const std::uint32_t channels = gpu.dram().numChannels();
        const double trans =
            stats.dramBusUtil(ReqType::Translation, channels);
        const double data = stats.dramBusUtil(ReqType::Data, channels);
        std::printf("%-14s %11.1f%% %11.1f%% %13.1f%%\n",
                    pair.name().c_str(), 100.0 * trans, 100.0 * data,
                    100.0 * safeDiv(trans, trans + data));
        trans_sum += trans;
        data_sum += data;
        ++n;
    }
    std::printf("%-14s %11.1f%% %11.1f%% %13.1f%%\n", "AVG",
                100.0 * trans_sum / n, 100.0 * data_sum / n,
                100.0 * safeDiv(trans_sum, trans_sum + data_sum));
    std::printf("\nPaper: translation requests consume 13.8%% of the "
                "utilized bandwidth (2.4%% of maximum).\n");
    return 0;
}
