/**
 * @file
 * Figure 8: DRAM bandwidth consumed by address translation requests
 * vs. data demand requests (fraction of maximum bandwidth), per
 * two-application workload, under the SharedTLB baseline.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 8",
                  "DRAM bandwidth utilization: translation vs. data");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");
    const std::uint32_t channels = arch.dram.channels;

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        bench::progress("fig8 " + pair.name());
        ids.push_back(sweep.submit({arch, DesignPoint::SharedTlb,
                                    {pair.first, pair.second},
                                    SweepMode::SharedOnly}));
    }
    sweep.run();

    std::printf("%-14s %12s %12s %14s\n", "workload", "translation",
                "data", "trans/utilized");
    double trans_sum = 0.0, data_sum = 0.0;
    int n = 0;
    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        const std::size_t id = ids[next++];
        const PairResult *r = bench::okResult(sweep, id);
        if (r == nullptr) {
            std::printf("%-14s %12s\n", pair.name().c_str(),
                        bench::failedCell(sweep, id).c_str());
            continue;
        }
        const GpuStats &stats = r->stats;
        const double trans =
            stats.dramBusUtil(ReqType::Translation, channels);
        const double data = stats.dramBusUtil(ReqType::Data, channels);
        std::printf("%-14s %11.1f%% %11.1f%% %13.1f%%\n",
                    pair.name().c_str(), 100.0 * trans, 100.0 * data,
                    100.0 * safeDiv(trans, trans + data));
        trans_sum += trans;
        data_sum += data;
        ++n;
    }
    if (n > 0) {
        std::printf("%-14s %11.1f%% %11.1f%% %13.1f%%\n", "AVG",
                    100.0 * trans_sum / n, 100.0 * data_sum / n,
                    100.0 * safeDiv(trans_sum, trans_sum + data_sum));
    }
    std::printf("\nPaper: translation requests consume 13.8%% of the "
                "utilized bandwidth (2.4%% of maximum).\n");
    bench::reportFailures(sweep);
    return 0;
}
