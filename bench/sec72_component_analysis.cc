/**
 * @file
 * Section 7.2: component-by-component analysis of MASK's mechanisms.
 * For a subset of workloads, reports (a) shared L2 TLB hit rate and
 * bypass-cache hit rate for SharedTLB vs. MASK-TLB, (b) L2 cache hit
 * rate of translation fills under Address-Translation-Aware L2
 * Bypass, and (c) DRAM latency of translation and data requests under
 * the Address-Space-Aware DRAM Scheduler.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Section 7.2", "component-by-component analysis");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    std::vector<WorkloadPair> pairs = bench::benchPairs();
    if (pairs.size() > 10)
        pairs.resize(10);

    // One shared run per (pair, design); the SharedTlb baseline is
    // reused across all three mechanism sections.
    struct PairIds
    {
        std::size_t base;
        std::size_t tokens;
        std::size_t bypass;
        std::size_t sched;
    };
    std::vector<PairIds> ids;
    for (const WorkloadPair &pair : pairs) {
        bench::progress("sec7.2 " + pair.name());
        const std::vector<std::string> names = {pair.first,
                                                pair.second};
        PairIds pid{};
        pid.base = sweep.submit({arch, DesignPoint::SharedTlb, names,
                                 SweepMode::SharedOnly});
        pid.tokens = sweep.submit({arch, DesignPoint::MaskTlb, names,
                                   SweepMode::SharedOnly});
        pid.bypass = sweep.submit({arch, DesignPoint::MaskCache,
                                   names, SweepMode::SharedOnly});
        pid.sched = sweep.submit({arch, DesignPoint::MaskDram, names,
                                  SweepMode::SharedOnly});
        ids.push_back(pid);
    }
    sweep.run();

    std::printf("--- TLB-Fill Tokens (Section 5.2) ---\n");
    std::printf("%-14s %12s %12s %12s %10s\n", "workload",
                "L2TLB(base)", "L2TLB(tok)", "bypC hit", "tokens");
    double base_hit = 0.0, tok_hit = 0.0, byp_hit = 0.0;
    int tok_n = 0;
    for (std::size_t w = 0; w < pairs.size(); ++w) {
        const WorkloadPair &pair = pairs[w];
        const PairResult *r_base = bench::okResult(sweep, ids[w].base);
        const PairResult *r_tok =
            bench::okResult(sweep, ids[w].tokens);
        if (r_base == nullptr || r_tok == nullptr) {
            const std::size_t bad =
                r_base == nullptr ? ids[w].base : ids[w].tokens;
            std::printf("%-14s %12s\n", pair.name().c_str(),
                        bench::failedCell(sweep, bad).c_str());
            continue;
        }
        const GpuStats &base = r_base->stats;
        const GpuStats &tok = r_tok->stats;
        std::printf("%-14s %11.1f%% %11.1f%% %11.1f%% %5u/%-4u\n",
                    pair.name().c_str(),
                    100.0 * base.l2Tlb.hitRate(),
                    100.0 * tok.l2Tlb.hitRate(),
                    100.0 * tok.bypassCache.hitRate(), tok.tokens[0],
                    tok.tokens[1]);
        base_hit += base.l2Tlb.hitRate();
        tok_hit += tok.l2Tlb.hitRate();
        byp_hit += tok.bypassCache.hitRate();
        ++tok_n;
    }
    if (tok_n > 0) {
        const double n = static_cast<double>(tok_n);
        std::printf("%-14s %11.1f%% %11.1f%% %11.1f%%\n", "AVG",
                    100.0 * base_hit / n, 100.0 * tok_hit / n,
                    100.0 * byp_hit / n);
    }
    std::printf("Paper: MASK-TLB raises shared L2 TLB hit rate by "
                "49.9%%; bypass cache hit rate 66.5%%.\n\n");

    std::printf("--- L2 Bypass (Section 5.3) ---\n");
    std::printf("%-14s %12s %12s %12s\n", "workload", "transHit(base)",
                "transHit(byp)", "bypassed");
    for (std::size_t w = 0; w < pairs.size(); ++w) {
        const WorkloadPair &pair = pairs[w];
        const PairResult *r_base = bench::okResult(sweep, ids[w].base);
        const PairResult *r_byp =
            bench::okResult(sweep, ids[w].bypass);
        if (r_base == nullptr || r_byp == nullptr) {
            const std::size_t bad =
                r_base == nullptr ? ids[w].base : ids[w].bypass;
            std::printf("%-14s %12s\n", pair.name().c_str(),
                        bench::failedCell(sweep, bad).c_str());
            continue;
        }
        const GpuStats &base = r_base->stats;
        const GpuStats &byp = r_byp->stats;
        std::printf("%-14s %11.1f%% %11.1f%% %12llu\n",
                    pair.name().c_str(),
                    100.0 * base.l2Cache[1].hitRate(),
                    100.0 * byp.l2Cache[1].hitRate(),
                    static_cast<unsigned long long>(byp.l2Bypasses));
    }
    std::printf("Paper: translation requests that still fill the L2 "
                "hit >99%% under the bypass policy.\n\n");

    std::printf("--- DRAM scheduler (Section 5.4) ---\n");
    std::printf("%-14s %12s %12s %12s %12s\n", "workload",
                "transLat", "transLat*", "dataLat", "dataLat*");
    for (std::size_t w = 0; w < pairs.size(); ++w) {
        const WorkloadPair &pair = pairs[w];
        const PairResult *r_base = bench::okResult(sweep, ids[w].base);
        const PairResult *r_sched =
            bench::okResult(sweep, ids[w].sched);
        if (r_base == nullptr || r_sched == nullptr) {
            const std::size_t bad =
                r_base == nullptr ? ids[w].base : ids[w].sched;
            std::printf("%-14s %12s\n", pair.name().c_str(),
                        bench::failedCell(sweep, bad).c_str());
            continue;
        }
        const GpuStats &base = r_base->stats;
        const GpuStats &sched = r_sched->stats;
        std::printf("%-14s %12.0f %12.0f %12.0f %12.0f\n",
                    pair.name().c_str(), base.dram.latency[1].mean(),
                    sched.dram.latency[1].mean(),
                    base.dram.latency[0].mean(),
                    sched.dram.latency[0].mean());
    }
    std::printf("(* = with the Address-Space-Aware DRAM Scheduler)\n");
    std::printf("Paper: the Golden Queue sharply reduces translation "
                "DRAM latency at little data-latency cost.\n");
    bench::reportFailures(sweep);
    return 0;
}
