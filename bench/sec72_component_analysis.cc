/**
 * @file
 * Section 7.2: component-by-component analysis of MASK's mechanisms.
 * For a subset of workloads, reports (a) shared L2 TLB hit rate and
 * bypass-cache hit rate for SharedTLB vs. MASK-TLB, (b) L2 cache hit
 * rate of translation fills under Address-Translation-Aware L2
 * Bypass, and (c) DRAM latency of translation and data requests under
 * the Address-Space-Aware DRAM Scheduler.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

namespace {

GpuStats
runPair(const GpuConfig &arch, DesignPoint point,
        const WorkloadPair &pair, const RunOptions &options)
{
    const GpuConfig cfg = applyDesignPoint(arch, point);
    const BenchmarkParams &a = findBenchmark(pair.first);
    const BenchmarkParams &b = findBenchmark(pair.second);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
    gpu.run(options.warmup);
    gpu.resetStats();
    gpu.run(options.measure);
    return gpu.collect();
}

} // namespace

int
main()
{
    bench::banner("Section 7.2", "component-by-component analysis");

    const RunOptions options = bench::benchOptions();
    const GpuConfig arch = archByName("maxwell");

    std::vector<WorkloadPair> pairs = bench::benchPairs();
    if (pairs.size() > 10)
        pairs.resize(10);

    std::printf("--- TLB-Fill Tokens (Section 5.2) ---\n");
    std::printf("%-14s %12s %12s %12s %10s\n", "workload",
                "L2TLB(base)", "L2TLB(tok)", "bypC hit", "tokens");
    double base_hit = 0.0, tok_hit = 0.0, byp_hit = 0.0;
    for (const WorkloadPair &pair : pairs) {
        bench::progress("sec7.2 tokens " + pair.name());
        const GpuStats base =
            runPair(arch, DesignPoint::SharedTlb, pair, options);
        const GpuStats tok =
            runPair(arch, DesignPoint::MaskTlb, pair, options);
        std::printf("%-14s %11.1f%% %11.1f%% %11.1f%% %5u/%-4u\n",
                    pair.name().c_str(),
                    100.0 * base.l2Tlb.hitRate(),
                    100.0 * tok.l2Tlb.hitRate(),
                    100.0 * tok.bypassCache.hitRate(), tok.tokens[0],
                    tok.tokens[1]);
        base_hit += base.l2Tlb.hitRate();
        tok_hit += tok.l2Tlb.hitRate();
        byp_hit += tok.bypassCache.hitRate();
    }
    const double n = static_cast<double>(pairs.size());
    std::printf("%-14s %11.1f%% %11.1f%% %11.1f%%\n", "AVG",
                100.0 * base_hit / n, 100.0 * tok_hit / n,
                100.0 * byp_hit / n);
    std::printf("Paper: MASK-TLB raises shared L2 TLB hit rate by "
                "49.9%%; bypass cache hit rate 66.5%%.\n\n");

    std::printf("--- L2 Bypass (Section 5.3) ---\n");
    std::printf("%-14s %12s %12s %12s\n", "workload", "transHit(base)",
                "transHit(byp)", "bypassed");
    for (const WorkloadPair &pair : pairs) {
        bench::progress("sec7.2 bypass " + pair.name());
        const GpuStats base =
            runPair(arch, DesignPoint::SharedTlb, pair, options);
        const GpuStats byp =
            runPair(arch, DesignPoint::MaskCache, pair, options);
        std::printf("%-14s %11.1f%% %11.1f%% %12llu\n",
                    pair.name().c_str(),
                    100.0 * base.l2Cache[1].hitRate(),
                    100.0 * byp.l2Cache[1].hitRate(),
                    static_cast<unsigned long long>(byp.l2Bypasses));
    }
    std::printf("Paper: translation requests that still fill the L2 "
                "hit >99%% under the bypass policy.\n\n");

    std::printf("--- DRAM scheduler (Section 5.4) ---\n");
    std::printf("%-14s %12s %12s %12s %12s\n", "workload",
                "transLat", "transLat*", "dataLat", "dataLat*");
    for (const WorkloadPair &pair : pairs) {
        bench::progress("sec7.2 dram " + pair.name());
        const GpuStats base =
            runPair(arch, DesignPoint::SharedTlb, pair, options);
        const GpuStats sched =
            runPair(arch, DesignPoint::MaskDram, pair, options);
        std::printf("%-14s %12.0f %12.0f %12.0f %12.0f\n",
                    pair.name().c_str(), base.dram.latency[1].mean(),
                    sched.dram.latency[1].mean(),
                    base.dram.latency[0].mean(),
                    sched.dram.latency[0].mean());
    }
    std::printf("(* = with the Address-Space-Aware DRAM Scheduler)\n");
    std::printf("Paper: the Golden Queue sharply reduces translation "
                "DRAM latency at little data-latency cost.\n");
    return 0;
}
