/**
 * @file
 * Deterministic crash replay and cross-process snapshot checks.
 *
 * Replay mode re-runs the configuration captured in a repro file
 * (written by the runner when a hard invariant trips) and reports
 * whether the failure reproduces at the recorded cycle.
 *
 * The snapshot modes drive scripts/check_determinism.sh's
 * checkpoint-restore leg: --snapshot-save serializes a run halfway
 * through its measured window into a snapshot file, --snapshot-resume
 * restores that file in a FRESH process and finishes the window, and
 * --snapshot-run does the same run uninterrupted. Resume and run print
 * the exact result blob (hex-float encoded), so bit-exact recovery is
 * checked with a plain string compare.
 *
 * Usage:
 *   crash_replay --replay <repro-file>
 *   crash_replay --snapshot-run <design> <faults:0|1>
 *   crash_replay --snapshot-save <design> <faults:0|1> <file>
 *   crash_replay --snapshot-resume <design> <faults:0|1> <file>
 *
 * <design> is a reporting name: SharedTLB, MASK, Ideal, ...
 *
 * Exit codes: 0 success (for --replay: the recorded failure reproduced
 * exactly), 1 no failure reproduced, 3 a failure reproduced but
 * differs from the record, 2 usage / file / snapshot errors.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/crash_repro.hh"
#include "sim/gpu.hh"
#include "sim/snapshot.hh"
#include "sim/sweep_io.hh"
#include "workload/suite.hh"

using namespace mask;

namespace {

int
replay(const char *path)
{
    const CrashRepro repro = loadRepro(path);
    std::printf("replaying %s\n", path);
    std::printf("  arch=%s design=%s seed=%llu warmup=%llu "
                "measure=%llu\n",
                repro.arch.c_str(), repro.design.c_str(),
                static_cast<unsigned long long>(repro.seed),
                static_cast<unsigned long long>(repro.warmup),
                static_cast<unsigned long long>(repro.measure));
    std::printf("  benches:");
    for (const std::string &bench : repro.benches)
        std::printf(" %s", bench.c_str());
    std::printf("\n");
    std::printf("  recorded failure: [%s] cycle %llu: %s\n",
                repro.module.c_str(),
                static_cast<unsigned long long>(repro.failCycle),
                repro.detail.c_str());

    const ReplayResult result = replayRepro(repro);
    if (!result.reproduced) {
        std::printf("result: NOT REPRODUCED (run completed "
                    "cleanly)\n");
        return 1;
    }
    std::printf("result: failed at [%s] cycle %llu: %s\n",
                result.module.c_str(),
                static_cast<unsigned long long>(result.failCycle),
                result.detail.c_str());
    if (result.sameCycle && result.sameModule) {
        std::printf("result: REPRODUCED exactly (same cycle, same "
                    "module)\n");
        return 0;
    }
    std::printf("result: DIVERGED from the record (cycle match: %s, "
                "module match: %s)\n",
                result.sameCycle ? "yes" : "no",
                result.sameModule ? "yes" : "no");
    return 3;
}

// ---------------------------------------------------------------------
// Snapshot modes (check_determinism.sh checkpoint-restore leg)
// ---------------------------------------------------------------------

constexpr Cycle kSnapWarmup = 4000;
constexpr Cycle kSnapMeasure = 16000;

/** Small GPU so each leg runs in milliseconds. */
GpuConfig
snapConfig(DesignPoint point, bool faults)
{
    GpuConfig cfg;
    cfg.numCores = 6;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    cfg = applyDesignPoint(cfg, point);
    if (faults) {
        cfg.harden.fault.enabled = true;
        cfg.harden.fault.seed = 11;
        cfg.harden.fault.dramDelayProb = 0.05;
        cfg.harden.fault.walkDropProb = 0.02;
    }
    return cfg;
}

std::unique_ptr<Gpu>
snapGpu(const GpuConfig &cfg)
{
    const WorkloadPair &pair = workloadPairs().front();
    return std::make_unique<Gpu>(
        cfg,
        std::vector<AppDesc>{AppDesc{&findBenchmark(pair.first)},
                             AppDesc{&findBenchmark(pair.second)}});
}

/** Single-line exact image of the simulated stats. */
void
printStatsBlob(const GpuStats &stats)
{
    PairResult result;
    result.stats = stats;
    result.sharedIpc = stats.ipc;
    std::printf("%s\n", encodePairResult(result).c_str());
}

int
snapshotRun(DesignPoint point, bool faults)
{
    const GpuConfig cfg = snapConfig(point, faults);
    auto gpu = snapGpu(cfg);
    gpu->run(kSnapWarmup);
    gpu->resetStats();
    gpu->run(kSnapMeasure);
    printStatsBlob(gpu->collect());
    return 0;
}

int
snapshotSave(DesignPoint point, bool faults, const char *file)
{
    const GpuConfig cfg = snapConfig(point, faults);
    auto gpu = snapGpu(cfg);
    gpu->run(kSnapWarmup);
    gpu->resetStats();
    gpu->setSnapshotCookie(1);
    gpu->run(kSnapMeasure / 2);
    const std::uint64_t bytes =
        saveSnapshotFile(file, configFingerprint(cfg), *gpu);
    std::fprintf(stderr,
                 "saved %s at cycle %llu (%llu bytes)\n", file,
                 static_cast<unsigned long long>(gpu->now()),
                 static_cast<unsigned long long>(bytes));
    return 0;
}

int
snapshotResume(DesignPoint point, bool faults, const char *file)
{
    const GpuConfig cfg = snapConfig(point, faults);
    auto gpu = snapGpu(cfg);
    loadSnapshotFile(file, configFingerprint(cfg), *gpu);
    std::fprintf(stderr, "resumed %s at cycle %llu\n", file,
                 static_cast<unsigned long long>(gpu->now()));
    const Cycle end = kSnapWarmup + kSnapMeasure;
    if (gpu->now() > end) {
        std::fprintf(stderr, "snapshot is past the run window\n");
        return 2;
    }
    gpu->run(end - gpu->now());
    printStatsBlob(gpu->collect());
    return 0;
}

bool
parseFaults(const char *arg, bool &faults)
{
    if (std::strcmp(arg, "0") == 0) {
        faults = false;
        return true;
    }
    if (std::strcmp(arg, "1") == 0) {
        faults = true;
        return true;
    }
    return false;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --replay <repro-file>\n"
                 "       %s --snapshot-run <design> <faults:0|1>\n"
                 "       %s --snapshot-save <design> <faults:0|1> "
                 "<file>\n"
                 "       %s --snapshot-resume <design> <faults:0|1> "
                 "<file>\n",
                 argv0, argv0, argv0, argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc == 3 && std::strcmp(argv[1], "--replay") == 0)
            return replay(argv[2]);

        bool faults = false;
        if (argc == 4 &&
            std::strcmp(argv[1], "--snapshot-run") == 0 &&
            parseFaults(argv[3], faults))
            return snapshotRun(designPointByName(argv[2]), faults);
        if (argc == 5 &&
            std::strcmp(argv[1], "--snapshot-save") == 0 &&
            parseFaults(argv[3], faults))
            return snapshotSave(designPointByName(argv[2]), faults,
                                argv[4]);
        if (argc == 5 &&
            std::strcmp(argv[1], "--snapshot-resume") == 0 &&
            parseFaults(argv[3], faults))
            return snapshotResume(designPointByName(argv[2]), faults,
                                  argv[4]);
        usage(argv[0]);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }
}
