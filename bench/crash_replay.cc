/**
 * @file
 * Deterministic crash replay: re-run the configuration captured in a
 * repro file (written by the runner when a hard invariant trips) and
 * report whether the failure reproduces at the recorded cycle.
 *
 * Usage:
 *   crash_replay --replay <repro-file>
 *
 * Exit codes: 0 the recorded failure reproduced exactly (same cycle
 * and module), 1 no failure reproduced, 3 a failure reproduced but
 * differs from the record, 2 usage / file errors.
 */

#include <cstdio>
#include <cstring>
#include <exception>

#include "bench_util.hh"
#include "sim/crash_repro.hh"

using namespace mask;

namespace {

int
replay(const char *path)
{
    const CrashRepro repro = loadRepro(path);
    std::printf("replaying %s\n", path);
    std::printf("  arch=%s design=%s seed=%llu warmup=%llu "
                "measure=%llu\n",
                repro.arch.c_str(), repro.design.c_str(),
                static_cast<unsigned long long>(repro.seed),
                static_cast<unsigned long long>(repro.warmup),
                static_cast<unsigned long long>(repro.measure));
    std::printf("  benches:");
    for (const std::string &bench : repro.benches)
        std::printf(" %s", bench.c_str());
    std::printf("\n");
    std::printf("  recorded failure: [%s] cycle %llu: %s\n",
                repro.module.c_str(),
                static_cast<unsigned long long>(repro.failCycle),
                repro.detail.c_str());

    const ReplayResult result = replayRepro(repro);
    if (!result.reproduced) {
        std::printf("result: NOT REPRODUCED (run completed "
                    "cleanly)\n");
        return 1;
    }
    std::printf("result: failed at [%s] cycle %llu: %s\n",
                result.module.c_str(),
                static_cast<unsigned long long>(result.failCycle),
                result.detail.c_str());
    if (result.sameCycle && result.sameModule) {
        std::printf("result: REPRODUCED exactly (same cycle, same "
                    "module)\n");
        return 0;
    }
    std::printf("result: DIVERGED from the record (cycle match: %s, "
                "module match: %s)\n",
                result.sameCycle ? "yes" : "no",
                result.sameModule ? "yes" : "no");
    return 3;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3 || std::strcmp(argv[1], "--replay") != 0) {
        std::fprintf(stderr, "usage: %s --replay <repro-file>\n",
                     argv[0]);
        return 2;
    }
    try {
        return replay(argv[2]);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }
}
