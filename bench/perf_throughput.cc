/**
 * @file
 * Host-side simulation throughput: mega-cycles/sec and requests/sec
 * for representative configurations, printed as one JSON object per
 * line (consumed by scripts/bench_perf.sh -> BENCH_throughput.json).
 *
 * This bench measures the SIMULATOR, not the simulated machine: its
 * output depends on host speed and is deliberately excluded from the
 * determinism checks.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

namespace {

void
emit(const char *label, DesignPoint point,
     const std::vector<std::string> &benches, const GpuStats &stats)
{
    std::printf("{\"case\": \"%s\", \"design\": \"%s\", \"apps\": %zu,"
                " \"cycles\": %llu, \"wall_seconds\": %.4f,"
                " \"mega_cycles_per_sec\": %.3f, \"requests\": %llu,"
                " \"requests_per_sec\": %.0f,"
                " \"pool_peak_live\": %zu,"
                " \"skipped_cycles\": %llu, \"skip_windows\": %llu,"
                " \"skip_fraction\": %.3f}\n",
                label, designPointName(point), benches.size(),
                static_cast<unsigned long long>(stats.cycles),
                stats.wallSeconds, stats.megaCyclesPerSec(),
                static_cast<unsigned long long>(stats.requests),
                stats.requestsPerSec(), stats.poolPeakLive,
                static_cast<unsigned long long>(stats.skippedCycles),
                static_cast<unsigned long long>(stats.skipWindows),
                safeDiv(static_cast<double>(stats.skippedCycles),
                        static_cast<double>(stats.cycles)));
}

int
run()
{
    Evaluator eval(bench::benchOptions());
    const GpuConfig arch = archByName("maxwell");
    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    const WorkloadPair &pair = pairs.front();
    const std::vector<std::string> names = {pair.first, pair.second};

    struct Case
    {
        const char *label;
        DesignPoint point;
        std::vector<std::string> benches;
    };
    const std::vector<Case> cases = {
        {"alone", DesignPoint::SharedTlb, {pair.first}},
        {"pair-sharedtlb", DesignPoint::SharedTlb, names},
        {"pair-mask", DesignPoint::Mask, names},
        {"pair-ideal", DesignPoint::Ideal, names},
    };
    for (const Case &c : cases) {
        bench::progress(std::string("perf ") + c.label);
        emit(c.label, c.point,
             c.benches, eval.runShared(arch, c.point, c.benches));
    }
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain(run);
}
