/**
 * @file
 * Host-side simulation throughput: mega-cycles/sec and requests/sec
 * for representative configurations, printed as one JSON object per
 * line (consumed by scripts/bench_perf.sh -> BENCH_throughput.json).
 *
 * This bench measures the SIMULATOR, not the simulated machine: its
 * output depends on host speed and is deliberately excluded from the
 * determinism checks.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench_util.hh"
#include "metrics/metrics.hh"
#include "sim/gpu.hh"
#include "sim/sweep_io.hh"

using namespace mask;

namespace {

void
emit(const char *label, DesignPoint point,
     const std::vector<std::string> &benches, const GpuStats &stats)
{
    std::printf("{\"case\": \"%s\", \"design\": \"%s\", \"apps\": %zu,"
                " \"cycles\": %llu, \"wall_seconds\": %.4f,"
                " \"mega_cycles_per_sec\": %.3f, \"requests\": %llu,"
                " \"requests_per_sec\": %.0f,"
                " \"pool_peak_live\": %zu,"
                " \"skipped_cycles\": %llu, \"skip_windows\": %llu,"
                " \"skip_fraction\": %.3f,"
                " \"ckpt_writes\": %llu, \"ckpt_bytes\": %llu,"
                " \"ckpt_write_seconds\": %.4f,"
                " \"ckpt_overhead\": %.4f,"
                " \"sched_picks\": %llu,"
                " \"sched_banks_scanned\": %llu,"
                " \"scanned_per_pick\": %.3f,"
                " \"picks_per_cycle\": %.4f,"
                " \"data_retry_probes\": %llu,"
                " \"tlb_retry_probes\": %llu",
                label, designPointName(point), benches.size(),
                static_cast<unsigned long long>(stats.cycles),
                stats.wallSeconds, stats.megaCyclesPerSec(),
                static_cast<unsigned long long>(stats.requests),
                stats.requestsPerSec(), stats.poolPeakLive,
                static_cast<unsigned long long>(stats.skippedCycles),
                static_cast<unsigned long long>(stats.skipWindows),
                safeDiv(static_cast<double>(stats.skippedCycles),
                        static_cast<double>(stats.cycles)),
                static_cast<unsigned long long>(stats.ckptWrites),
                static_cast<unsigned long long>(stats.ckptBytes),
                stats.ckptWriteSeconds,
                checkpointOverhead(stats.ckptWriteSeconds,
                                   stats.wallSeconds),
                static_cast<unsigned long long>(stats.dramSchedPicks),
                static_cast<unsigned long long>(
                    stats.dramSchedBanksScanned),
                safeDiv(static_cast<double>(stats.dramSchedBanksScanned),
                        static_cast<double>(stats.dramSchedPicks)),
                safeDiv(static_cast<double>(stats.dramSchedPicks),
                        static_cast<double>(stats.cycles)),
                static_cast<unsigned long long>(stats.dataRetryProbes),
                static_cast<unsigned long long>(stats.tlbRetryProbes));
    // MASK_PROFILE_STAGES=1: per-stage wall-clock seconds (host-side,
    // observation-only).
    if (!stats.stageSeconds.empty()) {
        std::printf(", \"stage_seconds\": {");
        for (std::size_t i = 0; i < stats.stageSeconds.size(); ++i) {
            std::printf("%s\"%s\": %.4f", i == 0 ? "" : ", ",
                        Gpu::stageName(i), stats.stageSeconds[i]);
        }
        std::printf("}");
    }
    std::printf("}\n");
}

/**
 * Run one case with periodic checkpointing forced on (interval =
 * measure/8, snapshots in TMPDIR) so BENCH_throughput.json records the
 * serialization cost: ckpt_write_seconds, bytes per snapshot, and the
 * overhead fraction of wall time.
 */
GpuStats
runCheckpointed(Evaluator &eval, const GpuConfig &arch,
                DesignPoint point,
                const std::vector<std::string> &benches)
{
    const RunOptions options = bench::benchOptions();
    const std::string interval =
        std::to_string(std::max<Cycle>(1, options.measure / 8));
    const char *tmp = std::getenv("TMPDIR");
    ::setenv("MASK_CKPT_INTERVAL_CYCLES", interval.c_str(), 1);
    ::setenv("MASK_CKPT_DIR", tmp != nullptr ? tmp : "/tmp", 1);
    ::unsetenv("MASK_CKPT_KEEP");
    const GpuStats stats = eval.runShared(arch, point, benches);
    ::unsetenv("MASK_CKPT_INTERVAL_CYCLES");
    ::unsetenv("MASK_CKPT_DIR");
    return stats;
}

/**
 * Warm-start sweep A/B: a measure-length grid whose four jobs share
 * one warmup fingerprint, run with the warm cache off then on. The
 * off leg simulates the (deliberately warmup-heavy) prefix four
 * times, the on leg once — wall-clock ratio and the warm counters go
 * to BENCH_throughput.json; the legs' results are byte-compared so a
 * speedup can never come at the cost of determinism.
 */
void
runWarmSweep(const GpuConfig &arch,
             const std::vector<std::string> &names)
{
    using Clock = std::chrono::steady_clock;
    const RunOptions base = bench::benchOptions();
    RunOptions grid;
    grid.warmup = base.measure; // shared prefix dominates the grid
    grid.measure = base.measure;
    const std::vector<Cycle> measures = {
        std::max<Cycle>(1, base.measure / 4),
        std::max<Cycle>(1, base.measure / 2),
        std::max<Cycle>(1, 3 * base.measure / 4),
        base.measure,
    };

    WarmStateCache::Stats warm_stats;
    auto leg = [&](bool warm_on, std::vector<std::string> &blobs) {
        SweepRunner sweep(grid, bench::benchJobs());
        WarmPolicy policy;
        policy.enabled = warm_on;
        sweep.setWarmPolicy(policy);
        std::vector<std::size_t> ids;
        for (const Cycle m : measures) {
            RunOptions options = grid;
            options.measure = m;
            SweepJob job;
            job.arch = arch;
            job.point = DesignPoint::Mask;
            job.benches = names;
            job.mode = SweepMode::SharedOnly;
            job.options = options;
            ids.push_back(sweep.submit(std::move(job)));
        }
        const auto t0 = Clock::now();
        sweep.run();
        const double seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        for (const std::size_t id : ids)
            blobs.push_back(encodePairResult(sweep.result(id)));
        if (warm_on)
            warm_stats = sweep.warmStats();
        return seconds;
    };

    std::vector<std::string> off_blobs;
    std::vector<std::string> on_blobs;
    bench::progress("perf warm-sweep (cache off)");
    const double off_seconds = leg(false, off_blobs);
    bench::progress("perf warm-sweep (cache on)");
    const double on_seconds = leg(true, on_blobs);
    const bool identical = off_blobs == on_blobs;
    if (!identical)
        bench::progress("warm-sweep: WARM RESULTS DIVERGED");

    std::printf(
        "{\"case\": \"warm-sweep\", \"design\": \"mask\","
        " \"apps\": %zu, \"grid_points\": %zu,"
        " \"warmup_cycles\": %llu, \"warm_off_seconds\": %.4f,"
        " \"warm_on_seconds\": %.4f, \"warm_speedup\": %.3f,"
        " \"warm_hits\": %llu, \"warm_misses\": %llu,"
        " \"warmup_cycles_saved\": %llu, \"warm_identical\": %s}\n",
        names.size(), measures.size(),
        static_cast<unsigned long long>(grid.warmup), off_seconds,
        on_seconds, safeDiv(off_seconds, on_seconds),
        static_cast<unsigned long long>(warm_stats.hits),
        static_cast<unsigned long long>(warm_stats.misses),
        static_cast<unsigned long long>(warm_stats.warmupCyclesSaved),
        identical ? "true" : "false");
}

int
run()
{
    Evaluator eval(bench::benchOptions());
    const GpuConfig arch = archByName("maxwell");
    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    const WorkloadPair &pair = pairs.front();
    const std::vector<std::string> names = {pair.first, pair.second};

    struct Case
    {
        const char *label;
        DesignPoint point;
        std::vector<std::string> benches;
    };
    const std::vector<Case> cases = {
        {"alone", DesignPoint::SharedTlb, {pair.first}},
        {"pair-sharedtlb", DesignPoint::SharedTlb, names},
        {"pair-mask", DesignPoint::Mask, names},
        {"pair-ideal", DesignPoint::Ideal, names},
    };
    for (const Case &c : cases) {
        bench::progress(std::string("perf ") + c.label);
        emit(c.label, c.point,
             c.benches, eval.runShared(arch, c.point, c.benches));
    }

    // Same workload with periodic snapshots on: the delta against
    // "pair-mask" is the checkpointing cost.
    bench::progress("perf pair-mask-ckpt");
    emit("pair-mask-ckpt", DesignPoint::Mask, names,
         runCheckpointed(eval, arch, DesignPoint::Mask, names));

    // Warm-start sweep A/B (DESIGN.md §14).
    runWarmSweep(arch, names);
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain(run);
}
