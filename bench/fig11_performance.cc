/**
 * @file
 * Figure 11: multiprogrammed weighted speedup, averaged per n-HMR
 * workload category, for all eight design points (Static, PWCache,
 * SharedTLB, MASK-TLB, MASK-Cache, MASK-DRAM, MASK, Ideal).
 */

#include <map>

#include "bench_util.hh"

using namespace mask;

namespace {

int
run()
{
    bench::banner("Figure 11",
                  "weighted speedup by workload category, all designs");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    std::vector<DesignPoint> designs = bench::reportedDesigns();
    designs.push_back(DesignPoint::Ideal);

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        for (const DesignPoint point : designs) {
            bench::progress("fig11 " + pair.name() + " " +
                            designPointName(point));
            ids.push_back(sweep.submit(
                {arch, point, {pair.first, pair.second}}));
        }
    }
    sweep.run();

    // category (0,1,2, 3=all) x design -> sum/count. Counts are kept
    // per (category, design) so a failed job drops out of its own
    // average without skewing the designs that did complete.
    std::map<int, std::map<DesignPoint, double>> sums;
    std::map<int, std::map<DesignPoint, int>> counts;

    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        for (const DesignPoint point : designs) {
            const PairResult *r = bench::okResult(sweep, ids[next++]);
            if (r == nullptr)
                continue;
            sums[pair.hmr][point] += r->weightedSpeedup;
            sums[3][point] += r->weightedSpeedup;
            ++counts[pair.hmr][point];
            ++counts[3][point];
        }
    }

    std::printf("%-10s", "category");
    for (const DesignPoint point : designs)
        std::printf(" %10s", designPointName(point));
    std::printf("\n");
    const char *labels[4] = {"0-HMR", "1-HMR", "2-HMR", "Average"};
    for (int cat = 0; cat < 4; ++cat) {
        bool any = false;
        for (const DesignPoint point : designs)
            any = any || counts[cat][point] > 0;
        if (!any)
            continue;
        std::printf("%-10s", labels[cat]);
        for (const DesignPoint point : designs) {
            if (counts[cat][point] > 0) {
                std::printf(" %10.3f",
                            sums[cat][point] / counts[cat][point]);
            } else {
                std::printf(" %10s", "FAILED");
            }
        }
        std::printf("\n");
    }

    const auto mean = [&](DesignPoint point) {
        const int n = counts[3][point];
        return n > 0 ? sums[3][point] / n : 0.0;
    };
    const double shared = mean(DesignPoint::SharedTlb);
    const double mask_ws = mean(DesignPoint::Mask);
    const double ideal = mean(DesignPoint::Ideal);
    if (shared > 0.0 && ideal > 0.0) {
        std::printf("\nMASK vs SharedTLB: %+.1f%%   MASK vs Ideal: "
                    "%.1f%% below\n",
                    100.0 * (mask_ws / shared - 1.0),
                    100.0 * (1.0 - mask_ws / ideal));
    }
    std::printf("Paper: MASK +57.8%% over SharedTLB, 23.2%% below "
                "Ideal (58.7%%/61.2%%/52.0%% gains for "
                "0/1/2-HMR).\n");
    bench::reportFailures(sweep);
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain(run);
}
