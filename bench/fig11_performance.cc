/**
 * @file
 * Figure 11: multiprogrammed weighted speedup, averaged per n-HMR
 * workload category, for all eight design points (Static, PWCache,
 * SharedTLB, MASK-TLB, MASK-Cache, MASK-DRAM, MASK, Ideal).
 */

#include <map>

#include "bench_util.hh"

using namespace mask;

namespace {

int
run()
{
    bench::banner("Figure 11",
                  "weighted speedup by workload category, all designs");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    std::vector<DesignPoint> designs = bench::reportedDesigns();
    designs.push_back(DesignPoint::Ideal);

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        for (const DesignPoint point : designs) {
            bench::progress("fig11 " + pair.name() + " " +
                            designPointName(point));
            ids.push_back(sweep.submit(
                {arch, point, {pair.first, pair.second}}));
        }
    }
    sweep.run();

    // category (0,1,2, 3=all) x design -> sum/count
    std::map<int, std::map<DesignPoint, double>> sums;
    std::map<int, int> counts;

    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        for (const DesignPoint point : designs) {
            const PairResult &r = sweep.result(ids[next++]);
            sums[pair.hmr][point] += r.weightedSpeedup;
            sums[3][point] += r.weightedSpeedup;
        }
        ++counts[pair.hmr];
        ++counts[3];
    }

    std::printf("%-10s", "category");
    for (const DesignPoint point : designs)
        std::printf(" %10s", designPointName(point));
    std::printf("\n");
    const char *labels[4] = {"0-HMR", "1-HMR", "2-HMR", "Average"};
    for (int cat = 0; cat < 4; ++cat) {
        if (counts[cat] == 0)
            continue;
        std::printf("%-10s", labels[cat]);
        for (const DesignPoint point : designs)
            std::printf(" %10.3f", sums[cat][point] / counts[cat]);
        std::printf("\n");
    }

    const double shared = sums[3][DesignPoint::SharedTlb];
    const double mask_ws = sums[3][DesignPoint::Mask];
    const double ideal = sums[3][DesignPoint::Ideal];
    std::printf("\nMASK vs SharedTLB: %+.1f%%   MASK vs Ideal: "
                "%.1f%% below\n",
                100.0 * (mask_ws / shared - 1.0),
                100.0 * (1.0 - mask_ws / ideal));
    std::printf("Paper: MASK +57.8%% over SharedTLB, 23.2%% below "
                "Ideal (58.7%%/61.2%%/52.0%% gains for "
                "0/1/2-HMR).\n");
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain(run);
}
