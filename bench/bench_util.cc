#include "bench_util.hh"

#include <cstdlib>

namespace mask {
namespace bench {

RunOptions
benchOptions()
{
    RunOptions options;
    options.warmup = 24000;
    options.measure = 80000;
    if (const char *fast = std::getenv("MASK_BENCH_FAST");
        fast != nullptr && fast[0] == '1') {
        options.warmup = 6000;
        options.measure = 20000;
    }
    if (const char *cycles = std::getenv("MASK_BENCH_CYCLES")) {
        const long long n = std::atoll(cycles);
        if (n > 0) {
            options.measure = static_cast<Cycle>(n);
            options.warmup = std::max<Cycle>(4000, options.measure / 4);
        }
    }
    return options;
}

std::vector<WorkloadPair>
benchPairs()
{
    std::vector<WorkloadPair> pairs = workloadPairs();
    if (const char *cap = std::getenv("MASK_BENCH_PAIRS")) {
        const long long n = std::atoll(cap);
        if (n > 0 && static_cast<std::size_t>(n) < pairs.size())
            pairs.resize(static_cast<std::size_t>(n));
    }
    return pairs;
}

unsigned
benchJobs()
{
    return sweepJobs();
}

SweepRunner
benchSweep()
{
    return SweepRunner(benchOptions(), benchJobs());
}

const std::vector<DesignPoint> &
reportedDesigns()
{
    static const std::vector<DesignPoint> designs = {
        DesignPoint::Static,    DesignPoint::PwCache,
        DesignPoint::SharedTlb, DesignPoint::MaskTlb,
        DesignPoint::MaskCache, DesignPoint::MaskDram,
        DesignPoint::Mask,
    };
    return designs;
}

void
banner(const char *figure, const char *description)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s — %s\n", figure, description);
    const RunOptions options = benchOptions();
    std::printf("(windows: %llu warmup + %llu measured cycles)\n",
                static_cast<unsigned long long>(options.warmup),
                static_cast<unsigned long long>(options.measure));
    std::printf("==================================================="
                "=========================\n");
}

void
progress(const std::string &what)
{
    std::fprintf(stderr, "[bench] %s\n", what.c_str());
}

std::string
fmt(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

int
guardedMain(int (*body)())
{
    try {
        return body();
    } catch (const SimInvariantError &err) {
        std::fputs(err.diagnostic().c_str(), stderr);
        std::fprintf(stderr,
                     "invariant failure: replay deterministically "
                     "with: crash_replay --replay <repro file>\n");
        return 2;
    } catch (const ConfigError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }
}

const PairResult *
okResult(const SweepRunner &sweep, std::size_t index)
{
    return sweep.outcome(index).status == SweepStatus::Ok
               ? &sweep.result(index)
               : nullptr;
}

std::string
failedCell(const SweepRunner &sweep, std::size_t index)
{
    return std::string("FAILED(") +
           sweepStatusName(sweep.outcome(index).status) + ")";
}

void
reportWarmCache(const SweepRunner &sweep)
{
    if (sweep.warmCache() == nullptr)
        return;
    const WarmStateCache::Stats warm = sweep.warmStats();
    std::fprintf(stderr,
                 "[warm] %llu hit%s, %llu miss%s, %llu warmup cycles "
                 "saved (%llu bypassed, %llu fallback%s, %llu "
                 "evicted)\n",
                 static_cast<unsigned long long>(warm.hits),
                 warm.hits == 1 ? "" : "s",
                 static_cast<unsigned long long>(warm.misses),
                 warm.misses == 1 ? "" : "es",
                 static_cast<unsigned long long>(
                     warm.warmupCyclesSaved),
                 static_cast<unsigned long long>(warm.bypasses),
                 static_cast<unsigned long long>(warm.fallbacks),
                 warm.fallbacks == 1 ? "" : "s",
                 static_cast<unsigned long long>(warm.evictions));
}

void
reportDistSweep(const SweepRunner &sweep)
{
    if (!sweep.distActive())
        return;
    const DistSweepStats &dist = sweep.distStats();
    std::fprintf(
        stderr,
        "[dist] worker %s: %llu job%s (%llu executed, %llu loaded "
        "from peers), %llu lease%s claimed, %llu stolen, %llu stale "
        "seen, %llu steal retr%s, %llu duplicate%s, %llu torn "
        "line%s, %llu abandoned, %llu wait poll%s\n",
        dist.worker.c_str(),
        static_cast<unsigned long long>(dist.jobs),
        dist.jobs == 1 ? "" : "s",
        static_cast<unsigned long long>(dist.executed),
        static_cast<unsigned long long>(dist.loadedRemote),
        static_cast<unsigned long long>(dist.leasesClaimed),
        dist.leasesClaimed == 1 ? "" : "s",
        static_cast<unsigned long long>(dist.leasesStolen),
        static_cast<unsigned long long>(dist.staleSeen),
        static_cast<unsigned long long>(dist.stealRetries),
        dist.stealRetries == 1 ? "y" : "ies",
        static_cast<unsigned long long>(dist.duplicates),
        dist.duplicates == 1 ? "" : "s",
        static_cast<unsigned long long>(dist.tornLines),
        dist.tornLines == 1 ? "" : "s",
        static_cast<unsigned long long>(dist.abandoned),
        static_cast<unsigned long long>(dist.waitPolls),
        dist.waitPolls == 1 ? "" : "s");
}

std::size_t
reportFailures(const SweepRunner &sweep)
{
    reportWarmCache(sweep);
    reportDistSweep(sweep);
    const std::size_t failed = sweep.failedJobs();
    if (failed == 0)
        return 0;
    std::printf("\n%zu of %zu sweep jobs did not complete:\n", failed,
                sweep.completedJobs());
    for (std::size_t i = 0; i < sweep.completedJobs(); ++i) {
        const SweepOutcome &outcome = sweep.outcome(i);
        if (outcome.status == SweepStatus::Ok)
            continue;
        std::printf("  job %zu: FAILED(%s) after %u attempt%s — %s\n",
                    i, sweepStatusName(outcome.status),
                    outcome.attempts,
                    outcome.attempts == 1 ? "" : "s",
                    outcome.error.c_str());
        if (!outcome.reproPath.empty()) {
            std::printf("    repro: %s (crash_replay --replay %s)\n",
                        outcome.reproPath.c_str(),
                        outcome.reproPath.c_str());
        }
    }
    return failed;
}

} // namespace bench
} // namespace mask
