/**
 * @file
 * Table 2: benchmark categorization by L1 and L2 TLB miss rate
 * (measured alone on half the GPU, SharedTLB design), validating that
 * each synthetic benchmark lands in its paper quadrant.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Table 2",
                  "benchmark L1/L2 TLB miss-rate categorization");

    SweepRunner sweep = bench::benchSweep();
    GpuConfig arch = archByName("maxwell");
    arch.numCores /= 2; // the paper's per-app share in 2-app workloads

    std::vector<std::size_t> ids;
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        bench::progress(std::string("tab2 ") + benchp.name);
        ids.push_back(sweep.submit({arch, DesignPoint::SharedTlb,
                                    {benchp.name},
                                    SweepMode::SharedOnly}));
    }
    sweep.run();

    std::printf("%-8s %8s %8s %10s %10s %6s\n", "bench", "l1miss",
                "l2miss", "expected", "measured", "match");
    int mismatches = 0;
    std::size_t next = 0;
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        const std::size_t id = ids[next++];
        const PairResult *r = bench::okResult(sweep, id);
        if (r == nullptr) {
            // An unfinished run can't be classified; count it as out
            // of quadrant so the exit code still flags the table.
            std::printf("%-8s %8s\n", benchp.name,
                        bench::failedCell(sweep, id).c_str());
            ++mismatches;
            continue;
        }
        const GpuStats &stats = r->stats;

        const double l1 = stats.l1Tlb.missRate();
        const double l2 = stats.l2Tlb.missRate();
        const char expect_l1 =
            benchp.l1Class == MissClass::High ? 'H' : 'L';
        const char expect_l2 =
            benchp.l2Class == MissClass::High ? 'H' : 'L';
        // The paper's threshold: 20% miss rate. L2 TLB traffic below
        // 0.1% of L1 accesses is classified Low regardless of its
        // (cold-start-dominated) rate — such apps are insensitive to
        // shared-TLB behaviour, which is what the class encodes.
        const bool l2_negligible =
            stats.l2Tlb.accesses() * 1000 < stats.l1Tlb.accesses();
        const char got_l1 = l1 >= 0.20 ? 'H' : 'L';
        const char got_l2 = l2 >= 0.20 && !l2_negligible ? 'H' : 'L';
        const bool match = expect_l1 == got_l1 && expect_l2 == got_l2;
        mismatches += !match;
        std::printf("%-8s %7.1f%% %7.1f%% %9c%c %9c%c %6s\n",
                    benchp.name, 100.0 * l1, 100.0 * l2, expect_l1,
                    expect_l2, got_l1, got_l2, match ? "ok" : "MISS");
    }
    std::printf("\n%d of %zu benchmarks out of their Table 2 "
                "quadrant.\n",
                mismatches, benchmarkSuite().size());
    bench::reportFailures(sweep);
    return mismatches == 0 ? 0 : 1;
}
