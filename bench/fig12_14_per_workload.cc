/**
 * @file
 * Figures 12-14: per-workload weighted speedup for the seven
 * non-ideal designs, grouped by 0/1/2-HMR category (one paper figure
 * per category).
 */

#include "bench_util.hh"

using namespace mask;

int
main()
{
    bench::banner("Figures 12-14",
                  "per-workload weighted speedup by category");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");
    const auto &designs = bench::reportedDesigns();

    const std::vector<WorkloadPair> all = bench::benchPairs();
    // pair index x design index -> job id
    std::vector<std::vector<std::size_t>> ids(all.size());
    for (std::size_t w = 0; w < all.size(); ++w) {
        const WorkloadPair &pair = all[w];
        for (const DesignPoint point : designs) {
            bench::progress("fig12-14 " + pair.name() + " " +
                            designPointName(point));
            ids[w].push_back(sweep.submit(
                {arch, point, {pair.first, pair.second}}));
        }
    }
    sweep.run();

    for (int cat = 0; cat <= 2; ++cat) {
        std::printf("\n--- Figure %d (%d-HMR workloads) ---\n",
                    12 + cat, cat);
        std::printf("%-14s", "workload");
        for (const DesignPoint point : designs)
            std::printf(" %10s", designPointName(point));
        std::printf("\n");
        for (std::size_t w = 0; w < all.size(); ++w) {
            const WorkloadPair &pair = all[w];
            if (pair.hmr != cat)
                continue;
            std::printf("%-14s", pair.name().c_str());
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const PairResult *r =
                    bench::okResult(sweep, ids[w][d]);
                if (r != nullptr) {
                    std::printf(" %10.3f", r->weightedSpeedup);
                } else {
                    std::printf(
                        " %10s",
                        bench::failedCell(sweep, ids[w][d]).c_str());
                }
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper: MASK outperforms Static, PWCache and "
                "SharedTLB on every workload; gains are largest for "
                "pairs with TLB-sensitive applications.\n");
    bench::reportFailures(sweep);
    return 0;
}
