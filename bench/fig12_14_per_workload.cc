/**
 * @file
 * Figures 12-14: per-workload weighted speedup for the seven
 * non-ideal designs, grouped by 0/1/2-HMR category (one paper figure
 * per category).
 */

#include "bench_util.hh"

using namespace mask;

int
main()
{
    bench::banner("Figures 12-14",
                  "per-workload weighted speedup by category");

    Evaluator eval(bench::benchOptions());
    const GpuConfig arch = archByName("maxwell");
    const auto &designs = bench::reportedDesigns();

    const std::vector<WorkloadPair> all = bench::benchPairs();
    for (int cat = 0; cat <= 2; ++cat) {
        std::printf("\n--- Figure %d (%d-HMR workloads) ---\n",
                    12 + cat, cat);
        std::printf("%-14s", "workload");
        for (const DesignPoint point : designs)
            std::printf(" %10s", designPointName(point));
        std::printf("\n");
        for (const WorkloadPair &pair : all) {
            if (pair.hmr != cat)
                continue;
            std::printf("%-14s", pair.name().c_str());
            for (const DesignPoint point : designs) {
                bench::progress("fig12-14 " + pair.name() + " " +
                                designPointName(point));
                const PairResult r = eval.evaluate(
                    arch, point, {pair.first, pair.second});
                std::printf(" %10.3f", r.weightedSpeedup);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper: MASK outperforms Static, PWCache and "
                "SharedTLB on every workload; gains are largest for "
                "pairs with TLB-sensitive applications.\n");
    return 0;
}
