/**
 * @file
 * Table 4: generality across GPU architectures — PWCache, SharedTLB
 * and MASK normalized to Ideal on the Fermi-like and integrated-GPU
 * configurations.
 */

#include "bench_util.hh"

using namespace mask;

int
main()
{
    bench::banner("Table 4",
                  "average performance normalized to Ideal on other "
                  "architectures");

    SweepRunner sweep = bench::benchSweep();
    const std::vector<DesignPoint> designs = {DesignPoint::PwCache,
                                              DesignPoint::SharedTlb,
                                              DesignPoint::Mask};

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const char *arch_name : {"fermi", "integrated"}) {
        const GpuConfig arch = archByName(arch_name);
        for (const WorkloadPair &pair : pairs) {
            bench::progress(std::string("tab4 ") + arch_name + " " +
                            pair.name());
            const std::vector<std::string> names = {pair.first,
                                                    pair.second};
            ids.push_back(sweep.submit(
                {arch, DesignPoint::Ideal, names}));
            for (const DesignPoint point : designs)
                ids.push_back(sweep.submit({arch, point, names}));
        }
    }
    sweep.run();

    std::printf("%-12s %10s %10s %10s\n", "arch", "PWCache",
                "SharedTLB", "MASK");
    std::size_t next = 0;
    for (const char *arch_name : {"fermi", "integrated"}) {
        // A row averages Ideal-normalized speedups, so a pair counts
        // only when its Ideal run and all three design runs finished.
        double sums[3] = {};
        int n = 0;
        for (std::size_t w = 0; w < pairs.size(); ++w) {
            const PairResult *r_ideal =
                bench::okResult(sweep, ids[next]);
            bool complete = r_ideal != nullptr;
            double norms[3] = {};
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const PairResult *r =
                    bench::okResult(sweep, ids[next + 1 + d]);
                if (r == nullptr || r_ideal == nullptr)
                    complete = false;
                else
                    norms[d] = safeDiv(r->weightedSpeedup,
                                       r_ideal->weightedSpeedup);
            }
            next += 1 + designs.size();
            if (!complete)
                continue;
            for (std::size_t d = 0; d < designs.size(); ++d)
                sums[d] += norms[d];
            ++n;
        }
        if (n > 0) {
            std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", arch_name,
                        100.0 * sums[0] / n, 100.0 * sums[1] / n,
                        100.0 * sums[2] / n);
        } else {
            std::printf("%-12s %10s %10s %10s\n", arch_name, "FAILED",
                        "FAILED", "FAILED");
        }
    }
    std::printf("\nPaper: Fermi 53.1/60.4/78.0%%; integrated GPU "
                "52.1/38.2/64.5%% of Ideal.\n");
    bench::reportFailures(sweep);
    return 0;
}
