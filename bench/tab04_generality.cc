/**
 * @file
 * Table 4: generality across GPU architectures — PWCache, SharedTLB
 * and MASK normalized to Ideal on the Fermi-like and integrated-GPU
 * configurations.
 */

#include "bench_util.hh"

using namespace mask;

int
main()
{
    bench::banner("Table 4",
                  "average performance normalized to Ideal on other "
                  "architectures");

    Evaluator eval(bench::benchOptions());
    const std::vector<DesignPoint> designs = {DesignPoint::PwCache,
                                              DesignPoint::SharedTlb,
                                              DesignPoint::Mask};

    std::printf("%-12s %10s %10s %10s\n", "arch", "PWCache",
                "SharedTLB", "MASK");
    for (const char *arch_name : {"fermi", "integrated"}) {
        const GpuConfig arch = archByName(arch_name);
        double sums[3] = {};
        double ideal_sum = 0.0;
        int n = 0;
        for (const WorkloadPair &pair : bench::benchPairs()) {
            bench::progress(std::string("tab4 ") + arch_name + " " +
                            pair.name());
            const std::vector<std::string> names = {pair.first,
                                                    pair.second};
            const double ideal =
                eval.evaluate(arch, DesignPoint::Ideal, names)
                    .weightedSpeedup;
            ideal_sum += ideal;
            for (std::size_t d = 0; d < designs.size(); ++d) {
                sums[d] += safeDiv(
                    eval.evaluate(arch, designs[d], names)
                        .weightedSpeedup,
                    ideal);
            }
            ++n;
        }
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", arch_name,
                    100.0 * sums[0] / n, 100.0 * sums[1] / n,
                    100.0 * sums[2] / n);
    }
    std::printf("\nPaper: Fermi 53.1/60.4/78.0%%; integrated GPU "
                "52.1/38.2/64.5%% of Ideal.\n");
    return 0;
}
