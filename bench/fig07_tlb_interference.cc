/**
 * @file
 * Figure 7: shared L2 TLB miss rate of each application when it runs
 * alone vs. when it shares the GPU with its partner, for the four
 * representative pairs.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 7",
                  "inter-application interference at the shared L2 "
                  "TLB (alone vs. shared miss rate)");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");
    // Alone runs give each application half the cores, matching its
    // share of the two-application workload.
    GpuConfig half = arch;
    half.numCores = arch.numCores / 2;

    struct PairIds
    {
        std::size_t shared;
        std::size_t alone[2];
    };
    std::vector<PairIds> ids;
    for (const WorkloadPair &pair : fig7Pairs()) {
        bench::progress("fig7 " + pair.name());
        PairIds pid{};
        pid.shared = sweep.submit({arch, DesignPoint::SharedTlb,
                                   {pair.first, pair.second},
                                   SweepMode::SharedOnly});
        const char *apps[2] = {pair.first, pair.second};
        for (int i = 0; i < 2; ++i) {
            pid.alone[i] = sweep.submit({half, DesignPoint::SharedTlb,
                                         {apps[i]},
                                         SweepMode::SharedOnly});
        }
        ids.push_back(pid);
    }
    sweep.run();

    std::printf("%-12s %-8s %10s %10s\n", "workload", "app", "alone",
                "shared");
    std::size_t next = 0;
    for (const WorkloadPair &pair : fig7Pairs()) {
        const PairIds &pid = ids[next++];
        const PairResult *shared = bench::okResult(sweep, pid.shared);
        const char *apps[2] = {pair.first, pair.second};
        for (int i = 0; i < 2; ++i) {
            const PairResult *alone =
                bench::okResult(sweep, pid.alone[i]);
            if (shared == nullptr || alone == nullptr) {
                const std::size_t bad =
                    shared == nullptr ? pid.shared : pid.alone[i];
                std::printf("%-12s %-8s %10s\n", pair.name().c_str(),
                            apps[i],
                            bench::failedCell(sweep, bad).c_str());
                continue;
            }
            std::printf("%-12s %-8s %9.1f%% %9.1f%%\n",
                        pair.name().c_str(), apps[i],
                        100.0 * alone->stats.l2Tlb.missRate(),
                        100.0 *
                            shared->stats.l2TlbPerApp[i].missRate());
        }
    }
    std::printf("\nPaper: sharing raises the L2 TLB miss rate "
                "substantially for most applications in these four "
                "pairs.\n");
    bench::reportFailures(sweep);
    return 0;
}
