/**
 * @file
 * Figure 7: shared L2 TLB miss rate of each application when it runs
 * alone vs. when it shares the GPU with its partner, for the four
 * representative pairs.
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

namespace {

/** L2 TLB miss rate of @p bench running alone on half the cores. */
double
aloneMissRate(const GpuConfig &arch, const char *bench,
              const RunOptions &options)
{
    GpuConfig cfg = applyDesignPoint(arch, DesignPoint::SharedTlb);
    cfg.numCores = arch.numCores / 2;
    const BenchmarkParams &params = findBenchmark(bench);
    Gpu gpu(cfg, {AppDesc{&params}});
    gpu.run(options.warmup);
    gpu.resetStats();
    gpu.run(options.measure);
    return gpu.collect().l2Tlb.missRate();
}

} // namespace

int
main()
{
    bench::banner("Figure 7",
                  "inter-application interference at the shared L2 "
                  "TLB (alone vs. shared miss rate)");

    const RunOptions options = bench::benchOptions();
    const GpuConfig arch = archByName("maxwell");

    std::printf("%-12s %-8s %10s %10s\n", "workload", "app", "alone",
                "shared");
    for (const WorkloadPair &pair : fig7Pairs()) {
        bench::progress("fig7 " + pair.name());
        const GpuConfig cfg =
            applyDesignPoint(arch, DesignPoint::SharedTlb);
        const BenchmarkParams &a = findBenchmark(pair.first);
        const BenchmarkParams &b = findBenchmark(pair.second);
        Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
        gpu.run(options.warmup);
        gpu.resetStats();
        gpu.run(options.measure);
        const GpuStats stats = gpu.collect();

        const char *apps[2] = {pair.first, pair.second};
        for (int i = 0; i < 2; ++i) {
            const double alone =
                aloneMissRate(arch, apps[i], options);
            std::printf("%-12s %-8s %9.1f%% %9.1f%%\n",
                        pair.name().c_str(), apps[i], 100.0 * alone,
                        100.0 * stats.l2TlbPerApp[i].missRate());
        }
    }
    std::printf("\nPaper: sharing raises the L2 TLB miss rate "
                "substantially for most applications in these four "
                "pairs.\n");
    return 0;
}
