/**
 * @file
 * Section 7.4: storage cost of MASK's hardware additions (analytic).
 */

#include <cstdio>

#include "mask/storage_cost.hh"
#include "sim/presets.hh"

using namespace mask;

int
main()
{
    std::printf("Section 7.4 — storage cost of the MASK additions\n\n");
    for (const auto arch_name : allArchNames()) {
        const GpuConfig cfg = archByName(arch_name);
        const StorageCost cost = computeStorageCost(cfg);
        std::printf("%s\n", cost.report(cfg).c_str());
    }
    std::printf("Paper (Maxwell config): 706 bytes of token state "
                "(13 B/core + 316 B shared), 9-bit ASIDs = 7%% of the "
                "L2 TLB, 80 B of bypass counters (<0.1%% of L2), and "
                "~6%% extra DRAM request-buffer storage.\n");
    return 0;
}
