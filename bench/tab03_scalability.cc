/**
 * @file
 * Table 3: scalability with the number of concurrently-executing
 * applications (1-5): SharedTLB and MASK aggregate IPC normalized to
 * the Ideal TLB (weighted speedup degenerates at one application, so
 * the paper's "performance normalized to Ideal" is computed on
 * aggregate throughput).
 */

#include <numeric>

#include "bench_util.hh"

using namespace mask;

namespace {

double
throughput(const PairResult &result)
{
    return std::accumulate(result.stats.ipc.begin(),
                           result.stats.ipc.end(), 0.0);
}

} // namespace

int
main()
{
    bench::banner("Table 3",
                  "performance normalized to Ideal vs. app count");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    // A representative mix: TLB-heavy and TLB-light applications,
    // added one at a time.
    const std::vector<std::string> mix = {"3DS", "HISTO", "CONS",
                                          "LPS", "RED"};

    std::vector<std::size_t> ids;
    for (std::size_t n = 1; n <= mix.size(); ++n) {
        const std::vector<std::string> apps(mix.begin(),
                                            mix.begin() + n);
        bench::progress("tab3 " + std::to_string(n) + " apps");
        for (const DesignPoint point :
             {DesignPoint::Ideal, DesignPoint::SharedTlb,
              DesignPoint::Mask}) {
            ids.push_back(sweep.submit(
                {arch, point, apps, SweepMode::SharedOnly}));
        }
    }
    sweep.run();

    std::printf("%-22s %8s %8s %8s %8s %8s\n", "apps", "1", "2", "3",
                "4", "5");
    // A column normalizes two designs against Ideal, so any of its
    // three jobs failing marks the whole column.
    std::vector<std::string> shared_norm, mask_norm;
    std::size_t next = 0;
    for (std::size_t n = 1; n <= mix.size(); ++n) {
        const std::size_t id_ideal = ids[next++];
        const std::size_t id_shared = ids[next++];
        const std::size_t id_mask = ids[next++];
        const PairResult *r_ideal = bench::okResult(sweep, id_ideal);
        const PairResult *r_shared = bench::okResult(sweep, id_shared);
        const PairResult *r_mask = bench::okResult(sweep, id_mask);
        const auto cell = [&](const PairResult *r,
                              std::size_t bad_self) {
            if (r_ideal == nullptr)
                return " " + bench::failedCell(sweep, id_ideal);
            if (r == nullptr)
                return " " + bench::failedCell(sweep, bad_self);
            char buf[16];
            std::snprintf(buf, sizeof(buf), " %7.1f%%",
                          100.0 * safeDiv(throughput(*r),
                                          throughput(*r_ideal)));
            return std::string(buf);
        };
        shared_norm.push_back(cell(r_shared, id_shared));
        mask_norm.push_back(cell(r_mask, id_mask));
    }
    std::printf("%-22s", "SharedTLB/Ideal");
    for (const std::string &v : shared_norm)
        std::printf("%s", v.c_str());
    std::printf("\n%-22s", "MASK/Ideal");
    for (const std::string &v : mask_norm)
        std::printf("%s", v.c_str());
    std::printf("\n\nPaper: SharedTLB 47.1/48.7/38.8/34.2/33.1%% and "
                "MASK 68.5/76.8/62.3/55.0/52.9%% of Ideal for 1-5 "
                "apps; MASK's margin grows with concurrency.\n");
    bench::reportFailures(sweep);
    return 0;
}
