/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses: run
 * windows (env-tunable), table formatting, and common sweeps.
 *
 * Environment knobs:
 *   MASK_BENCH_CYCLES=<n>  measurement window (default 80000)
 *   MASK_BENCH_FAST=1      short CI windows
 *   MASK_BENCH_PAIRS=<n>   cap the number of workload pairs swept
 *   MASK_BENCH_JOBS=<n>    parallel sweep workers (default 1 serial,
 *                          0 = one per hardware thread)
 */

#ifndef MASK_BENCH_BENCH_UTIL_HH
#define MASK_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

namespace mask {
namespace bench {

/** Run windows honoring the environment. */
RunOptions benchOptions();

/** Pairs to sweep, honoring MASK_BENCH_PAIRS. */
std::vector<WorkloadPair> benchPairs();

/** Sweep worker count, honoring MASK_BENCH_JOBS. */
unsigned benchJobs();

/** A sweep runner over benchOptions() with benchJobs() workers. */
SweepRunner benchSweep();

/** The seven non-ideal design points in reporting order. */
const std::vector<DesignPoint> &reportedDesigns();

/** Print a header like the paper's figure captions. */
void banner(const char *figure, const char *description);

/** Progress note to stderr (stdout stays machine-parsable). */
void progress(const std::string &what);

/** geometric-ish readable float. */
std::string fmt(double v, int decimals = 3);

/**
 * Run a bench body under the hardening net: a SimInvariantError is
 * printed as one diagnostic block (the runner has already written the
 * crash-repro file) and a ConfigError as one line, both exiting 2
 * instead of aborting mid-table.
 */
int guardedMain(int (*body)());

/**
 * Result of job @p index if it completed, nullptr otherwise. The
 * graceful-degradation idiom for sweeps under a resilience policy:
 * render the row when non-null, render failedCell() when null, and
 * leave aggregates to the jobs that finished.
 */
const PairResult *okResult(const SweepRunner &sweep, std::size_t index);

/** "FAILED(<status>)" marker cell for a job that did not complete. */
std::string failedCell(const SweepRunner &sweep, std::size_t index);

/**
 * Print one stdout line per failed job (index, status, error, repro
 * path if harvested) plus a summary; silent when every job completed.
 * Also emits the warm-cache footer (reportWarmCache). Returns the
 * number of failed jobs so benches can flag the run.
 */
std::size_t reportFailures(const SweepRunner &sweep);

/**
 * Warm-cache summary footer to stderr (hits/misses/warmup cycles
 * saved); silent when the warm cache is disabled. Stderr, not stdout:
 * bench stdout is byte-compared warm-on vs warm-off by determinism
 * leg 12, and cache hit counts legitimately differ between the legs.
 */
void reportWarmCache(const SweepRunner &sweep);

/**
 * Distributed-sweep summary footer to stderr ("[dist] worker ...":
 * executed/loaded splits, lease claim/steal/duplicate counts); silent
 * when MASK_SWEEP_DIST_DIR is unset. Stderr for the same reason as
 * reportWarmCache: bench stdout is byte-compared against a serial
 * run, and which worker executed which job legitimately differs.
 */
void reportDistSweep(const SweepRunner &sweep);

} // namespace bench
} // namespace mask

#endif // MASK_BENCH_BENCH_UTIL_HH
