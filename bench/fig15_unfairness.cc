/**
 * @file
 * Figure 15: application-level unfairness (maximum slowdown), by
 * workload category, for Static, PWCache, SharedTLB and MASK.
 */

#include <map>

#include "bench_util.hh"

using namespace mask;

namespace {

int
run()
{
    bench::banner("Figure 15", "multiprogrammed workload unfairness");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");
    const std::vector<DesignPoint> designs = {
        DesignPoint::Static, DesignPoint::PwCache,
        DesignPoint::SharedTlb, DesignPoint::Mask};

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        for (const DesignPoint point : designs) {
            bench::progress("fig15 " + pair.name() + " " +
                            designPointName(point));
            ids.push_back(sweep.submit(
                {arch, point, {pair.first, pair.second}}));
        }
    }
    sweep.run();

    // Per-(category, design) counts so a failed job only drops out of
    // its own average (see fig11).
    std::map<int, std::map<DesignPoint, double>> sums;
    std::map<int, std::map<DesignPoint, int>> counts;
    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        for (const DesignPoint point : designs) {
            const PairResult *r = bench::okResult(sweep, ids[next++]);
            if (r == nullptr)
                continue;
            sums[pair.hmr][point] += r->unfairness;
            sums[3][point] += r->unfairness;
            ++counts[pair.hmr][point];
            ++counts[3][point];
        }
    }

    std::printf("%-10s", "category");
    for (const DesignPoint point : designs)
        std::printf(" %10s", designPointName(point));
    std::printf("\n");
    const char *labels[4] = {"0-HMR", "1-HMR", "2-HMR", "Average"};
    for (int cat = 0; cat < 4; ++cat) {
        bool any = false;
        for (const DesignPoint point : designs)
            any = any || counts[cat][point] > 0;
        if (!any)
            continue;
        std::printf("%-10s", labels[cat]);
        for (const DesignPoint point : designs) {
            if (counts[cat][point] > 0) {
                std::printf(" %10.3f",
                            sums[cat][point] / counts[cat][point]);
            } else {
                std::printf(" %10s", "FAILED");
            }
        }
        std::printf("\n");
    }
    const auto mean = [&](DesignPoint point) {
        const int n = counts[3][point];
        return n > 0 ? sums[3][point] / n : 0.0;
    };
    const double base = mean(DesignPoint::SharedTlb);
    const double mask_u = mean(DesignPoint::Mask);
    if (base > 0.0) {
        std::printf("\nMASK unfairness vs SharedTLB: %+.1f%%\n",
                    100.0 * (mask_u / base - 1.0));
    }
    std::printf("Paper: MASK reduces unfairness by 22.4%% on average "
                "(20.1%%/25.0%%/21.8%% for 0/1/2-HMR).\n");
    bench::reportFailures(sweep);
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain(run);
}
