/**
 * @file
 * Figure 1: execution-time overhead of time multiplexing as the
 * number of concurrent processes grows (paper: measured on real K40 /
 * GTX 1080 GPUs; here: the time-multiplex model of DESIGN.md
 * substitution 2).
 */

#include "bench_util.hh"
#include "sim/time_mux.hh"

using namespace mask;

namespace {

int
run()
{
    bench::banner("Figure 1",
                  "time-multiplexing overhead vs. process count");

    GpuConfig cfg = archByName("maxwell");
    cfg = applyDesignPoint(cfg, DesignPoint::SharedTlb);

    // Quantum and per-switch costs sized so that at 2 processes the
    // scheduling overhead is ~10% of useful work, growing with the
    // resident-process count (driver bookkeeping + state migration).
    TimeMuxOptions options;
    options.quantum = 20000;
    options.workPerProcess = 2500000;
    options.switchBaseCost = 500;
    options.switchPerProcessCost = 1500;
    if (const char *fast = std::getenv("MASK_BENCH_FAST");
        fast != nullptr && fast[0] == '1') {
        options.workPerProcess = 400000;
        options.quantum = 8000;
    }

    // The paper's microbenchmark interleaves arithmetic with
    // loads/stores; NN is our closest equivalent.
    const BenchmarkParams &bench_kernel = findBenchmark("NN");

    std::printf("%-10s %14s %14s %10s\n", "processes", "serial(cyc)",
                "timemux(cyc)", "overhead");
    for (std::uint32_t procs = 2; procs <= 10; ++procs) {
        bench::progress("time multiplexing with " +
                        std::to_string(procs) + " processes");
        const TimeMuxResult r =
            runTimeMux(cfg, bench_kernel, procs, options);
        std::printf("%-10u %14llu %14llu %9.1f%%\n", procs,
                    static_cast<unsigned long long>(r.serialCycles),
                    static_cast<unsigned long long>(r.muxCycles),
                    100.0 * r.overhead());
    }
    std::printf("\nPaper (GTX 1080): 12%% at 2 processes rising to "
                "91%% at 10; expect the same rising shape.\n");
    return 0;
}

} // namespace

int
main()
{
    return bench::guardedMain(run);
}
