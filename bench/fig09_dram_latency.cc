/**
 * @file
 * Figure 9: average DRAM latency of address translation requests vs.
 * data demand requests per two-application workload (SharedTLB
 * baseline, FR-FCFS scheduling).
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 9",
                  "DRAM latency: translation vs. data requests");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        bench::progress("fig9 " + pair.name());
        ids.push_back(sweep.submit({arch, DesignPoint::SharedTlb,
                                    {pair.first, pair.second},
                                    SweepMode::SharedOnly}));
    }
    sweep.run();

    std::printf("%-14s %14s %12s %8s\n", "workload",
                "translation(cyc)", "data(cyc)", "ratio");
    double trans_sum = 0.0, data_sum = 0.0;
    int n = 0;
    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        const std::size_t id = ids[next++];
        const PairResult *r = bench::okResult(sweep, id);
        if (r == nullptr) {
            std::printf("%-14s %14s\n", pair.name().c_str(),
                        bench::failedCell(sweep, id).c_str());
            continue;
        }
        const GpuStats &stats = r->stats;
        const double trans = stats.dram.latency[1].mean();
        const double data = stats.dram.latency[0].mean();
        std::printf("%-14s %14.0f %12.0f %8.2f\n",
                    pair.name().c_str(), trans, data,
                    safeDiv(trans, data));
        trans_sum += trans;
        data_sum += data;
        ++n;
    }
    if (n > 0) {
        std::printf("%-14s %14.0f %12.0f %8.2f\n", "AVG",
                    trans_sum / n, data_sum / n,
                    safeDiv(trans_sum, data_sum));
    }
    std::printf("\nPaper: translation requests see HIGHER average "
                "DRAM latency than data requests under FR-FCFS "
                "(low row-buffer locality de-prioritizes them).\n");
    bench::reportFailures(sweep);
    return 0;
}
