/**
 * @file
 * Figure 9: average DRAM latency of address translation requests vs.
 * data demand requests per two-application workload (SharedTLB
 * baseline, FR-FCFS scheduling).
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 9",
                  "DRAM latency: translation vs. data requests");

    const RunOptions options = bench::benchOptions();
    const GpuConfig cfg =
        applyDesignPoint(archByName("maxwell"), DesignPoint::SharedTlb);

    std::printf("%-14s %14s %12s %8s\n", "workload",
                "translation(cyc)", "data(cyc)", "ratio");
    double trans_sum = 0.0, data_sum = 0.0;
    int n = 0;
    for (const WorkloadPair &pair : bench::benchPairs()) {
        bench::progress("fig9 " + pair.name());
        const BenchmarkParams &a = findBenchmark(pair.first);
        const BenchmarkParams &b = findBenchmark(pair.second);
        Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
        gpu.run(options.warmup);
        gpu.resetStats();
        gpu.run(options.measure);
        const GpuStats stats = gpu.collect();
        const double trans = stats.dram.latency[1].mean();
        const double data = stats.dram.latency[0].mean();
        std::printf("%-14s %14.0f %12.0f %8.2f\n",
                    pair.name().c_str(), trans, data,
                    safeDiv(trans, data));
        trans_sum += trans;
        data_sum += data;
        ++n;
    }
    std::printf("%-14s %14.0f %12.0f %8.2f\n", "AVG", trans_sum / n,
                data_sum / n, safeDiv(trans_sum, data_sum));
    std::printf("\nPaper: translation requests see HIGHER average "
                "DRAM latency than data requests under FR-FCFS "
                "(low row-buffer locality de-prioritizes them).\n");
    return 0;
}
