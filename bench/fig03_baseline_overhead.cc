/**
 * @file
 * Figure 3: performance of the two baseline designs (PWCache,
 * SharedTLB) normalized to the Ideal TLB, for two-application
 * workloads.
 */

#include "bench_util.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 3", "baseline designs vs. ideal performance");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        bench::progress("fig3 " + pair.name());
        const std::vector<std::string> names = {pair.first,
                                                pair.second};
        for (const DesignPoint point :
             {DesignPoint::Ideal, DesignPoint::PwCache,
              DesignPoint::SharedTlb}) {
            ids.push_back(sweep.submit({arch, point, names}));
        }
    }
    sweep.run();

    std::printf("%-14s %10s %10s\n", "workload", "PWCache",
                "SharedTLB");
    double pw_sum = 0.0, shared_sum = 0.0;
    int n = 0;
    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        const std::size_t id_ideal = ids[next++];
        const std::size_t id_pw = ids[next++];
        const std::size_t id_shared = ids[next++];
        const PairResult *r_ideal = bench::okResult(sweep, id_ideal);
        const PairResult *r_pw = bench::okResult(sweep, id_pw);
        const PairResult *r_shared = bench::okResult(sweep, id_shared);
        if (r_ideal == nullptr || r_pw == nullptr ||
            r_shared == nullptr) {
            // The row normalizes against Ideal, so any of the three
            // failing spoils the whole row (and the averages).
            const std::size_t bad = r_ideal == nullptr ? id_ideal
                                    : r_pw == nullptr ? id_pw
                                                      : id_shared;
            std::printf("%-14s %10s %10s\n", pair.name().c_str(),
                        bench::failedCell(sweep, bad).c_str(),
                        bench::failedCell(sweep, bad).c_str());
            continue;
        }
        const double pw_norm =
            safeDiv(r_pw->weightedSpeedup, r_ideal->weightedSpeedup);
        const double shared_norm = safeDiv(r_shared->weightedSpeedup,
                                           r_ideal->weightedSpeedup);
        std::printf("%-14s %10.3f %10.3f\n", pair.name().c_str(),
                    pw_norm, shared_norm);
        pw_sum += pw_norm;
        shared_sum += shared_norm;
        ++n;
    }
    if (n > 0) {
        std::printf("%-14s %10.3f %10.3f\n", "AVG", pw_sum / n,
                    shared_sum / n);
    }
    std::printf("\nPaper: PWCache 55.0%% / SharedTLB 59.4%% of Ideal "
                "on average (45.0%% and 40.6%% overhead).\n");
    bench::reportFailures(sweep);
    return 0;
}
