/**
 * @file
 * Figure 3: performance of the two baseline designs (PWCache,
 * SharedTLB) normalized to the Ideal TLB, for two-application
 * workloads.
 */

#include "bench_util.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 3", "baseline designs vs. ideal performance");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    const std::vector<WorkloadPair> pairs = bench::benchPairs();
    std::vector<std::size_t> ids;
    for (const WorkloadPair &pair : pairs) {
        bench::progress("fig3 " + pair.name());
        const std::vector<std::string> names = {pair.first,
                                                pair.second};
        for (const DesignPoint point :
             {DesignPoint::Ideal, DesignPoint::PwCache,
              DesignPoint::SharedTlb}) {
            ids.push_back(sweep.submit({arch, point, names}));
        }
    }
    sweep.run();

    std::printf("%-14s %10s %10s\n", "workload", "PWCache",
                "SharedTLB");
    double pw_sum = 0.0, shared_sum = 0.0;
    int n = 0;
    std::size_t next = 0;
    for (const WorkloadPair &pair : pairs) {
        const double ideal =
            sweep.result(ids[next++]).weightedSpeedup;
        const double pw = sweep.result(ids[next++]).weightedSpeedup;
        const double shared =
            sweep.result(ids[next++]).weightedSpeedup;
        const double pw_norm = safeDiv(pw, ideal);
        const double shared_norm = safeDiv(shared, ideal);
        std::printf("%-14s %10.3f %10.3f\n", pair.name().c_str(),
                    pw_norm, shared_norm);
        pw_sum += pw_norm;
        shared_sum += shared_norm;
        ++n;
    }
    std::printf("%-14s %10.3f %10.3f\n", "AVG", pw_sum / n,
                shared_sum / n);
    std::printf("\nPaper: PWCache 55.0%% / SharedTLB 59.4%% of Ideal "
                "on average (45.0%% and 40.6%% overhead).\n");
    return 0;
}
