/**
 * @file
 * Figure 5: average number of concurrent page table walks, sampled
 * every 10K cycles, per benchmark (SharedTLB baseline).
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 5",
                  "average concurrent page table walks per benchmark");

    SweepRunner sweep = bench::benchSweep();
    const GpuConfig arch = archByName("maxwell");

    std::vector<std::size_t> ids;
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        bench::progress(std::string("fig5 ") + benchp.name);
        ids.push_back(sweep.submit({arch, DesignPoint::SharedTlb,
                                    {benchp.name},
                                    SweepMode::SharedOnly}));
    }
    sweep.run();

    std::printf("%-8s %8s %8s %8s\n", "bench", "avg", "min", "max");
    std::size_t next = 0;
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        const std::size_t id = ids[next++];
        const PairResult *r = bench::okResult(sweep, id);
        if (r == nullptr) {
            std::printf("%-8s %8s\n", benchp.name,
                        bench::failedCell(sweep, id).c_str());
            continue;
        }
        const GpuStats &stats = r->stats;
        std::printf("%-8s %8.1f %8.0f %8.0f\n", benchp.name,
                    stats.concurrentWalks.mean(),
                    stats.concurrentWalks.minVal,
                    stats.concurrentWalks.maxVal);
    }
    std::printf("\nPaper: up to 20-60 concurrent walks for "
                "TLB-intensive benchmarks, near zero for LUD/NN.\n");
    bench::reportFailures(sweep);
    return 0;
}
