/**
 * @file
 * Figure 5: average number of concurrent page table walks, sampled
 * every 10K cycles, per benchmark (SharedTLB baseline).
 */

#include "bench_util.hh"
#include "sim/gpu.hh"

using namespace mask;

int
main()
{
    bench::banner("Figure 5",
                  "average concurrent page table walks per benchmark");

    const RunOptions options = bench::benchOptions();
    const GpuConfig cfg =
        applyDesignPoint(archByName("maxwell"), DesignPoint::SharedTlb);

    std::printf("%-8s %8s %8s %8s\n", "bench", "avg", "min", "max");
    for (const BenchmarkParams &benchp : benchmarkSuite()) {
        bench::progress(std::string("fig5 ") + benchp.name);
        Gpu gpu(cfg, {AppDesc{&benchp}});
        gpu.run(options.warmup);
        gpu.resetStats();
        gpu.run(options.measure);
        const GpuStats stats = gpu.collect();
        std::printf("%-8s %8.1f %8.0f %8.0f\n", benchp.name,
                    stats.concurrentWalks.mean(),
                    stats.concurrentWalks.minVal,
                    stats.concurrentWalks.maxVal);
    }
    std::printf("\nPaper: up to 20-60 concurrent walks for "
                "TLB-intensive benchmarks, near zero for LUD/NN.\n");
    return 0;
}
