/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * TLB lookups, cache fills/lookups, DRAM channel scheduling, page
 * walk bookkeeping, and whole-GPU cycles.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/banked_queue.hh"
#include "dram/dram.hh"
#include "sim/gpu.hh"
#include "tlb/tlb.hh"
#include "vm/page_table.hh"
#include "workload/suite.hh"

namespace {

using namespace mask;

void
BM_TlbLookupHit(benchmark::State &state)
{
    TlbConfig cfg;
    cfg.entries = 512;
    cfg.ways = 16;
    Tlb tlb(cfg);
    for (Vpn v = 0; v < 512; ++v)
        tlb.fill(1, v, v);
    Rng rng(1);
    for (auto _ : state) {
        Pfn pfn;
        benchmark::DoNotOptimize(tlb.lookup(1, rng.below(512), &pfn));
    }
}
BENCHMARK(BM_TlbLookupHit);

void
BM_TlbFillEvict(benchmark::State &state)
{
    TlbConfig cfg;
    cfg.entries = 512;
    cfg.ways = 16;
    Tlb tlb(cfg);
    Vpn v = 0;
    for (auto _ : state)
        tlb.fill(1, ++v, v);
}
BENCHMARK(BM_TlbFillEvict);

void
BM_CacheLookup(benchmark::State &state)
{
    SetAssocCache cache(1024, 16);
    Rng rng(2);
    for (std::uint64_t k = 0; k < 16384; ++k)
        cache.fill(k);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(rng.below(32768)));
}
BENCHMARK(BM_CacheLookup);

void
BM_PageTableWalkAddrs(benchmark::State &state)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    Rng rng(3);
    for (int i = 0; i < 4096; ++i)
        pt.mapPage(rng.below(1 << 24));
    Rng lookup_rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pt.walkAddrs(lookup_rng.below(1 << 24)));
        if (state.iterations() % 4096 == 0)
            lookup_rng.seed(3);
    }
}
BENCHMARK(BM_PageTableWalkAddrs);

void
BM_DramChannelTick(benchmark::State &state)
{
    DramConfig cfg;
    RequestPool pool;
    Dram dram(cfg, MaskConfig{}, 7, DramSchedMode::FrFcfs, 1, false);
    Rng rng(4);
    Cycle t = 0;
    for (auto _ : state) {
        const ReqId id = pool.alloc();
        pool[id].paddr = rng.below(1 << 26) << 7;
        pool[id].type = ReqType::Data;
        if (dram.canEnqueue(pool[id]))
            dram.enqueue(id, pool[id], t);
        else
            pool.release(id);
        dram.tick(t++, pool);
        auto &done = dram.completed();
        while (!done.empty()) {
            pool.release(done.front());
            done.pop_front();
        }
    }
}
BENCHMARK(BM_DramChannelTick);

/**
 * Steady-state FR-FCFS pick on a deep request buffer: pick, service
 * (row activate on a miss), refill. range(0) selects the indexed pick
 * vs the reference age-list rescan; range(1) the stream's row
 * locality (long open-row hit chains vs a new row nearly every
 * entry). The indexed pick should stay O(banks) regardless of depth
 * while the reference scan degrades with queue depth x miss rate.
 */
void
BM_SchedPick(benchmark::State &state)
{
    const bool reference = state.range(0) != 0;
    const bool row_local = state.range(1) != 0;
    constexpr std::uint32_t kBanks = 16;
    constexpr std::uint32_t kDepth = 256;
    constexpr std::uint32_t kStarvationCap = 16;

    std::vector<DramBank> banks(kBanks);
    for (auto &b : banks)
        b.rowValid = true;
    BankedRequestQueue queue(kBanks);
    Rng rng(11);
    ReqId next_id = 0;
    const auto makeEntry = [&] {
        DramQueueEntry e;
        e.id = next_id++;
        e.bank = static_cast<std::uint32_t>(rng.below(kBanks));
        e.row = row_local ? rng.below(2) : rng.below(1u << 20);
        return e;
    };
    for (std::uint32_t i = 0; i < kDepth; ++i)
        queue.push(makeEntry(), banks);

    Cycle now = 0;
    std::uint64_t escalations = 0, scanned = 0;
    for (auto _ : state) {
        const std::uint32_t node =
            reference ? queue.pickReference(banks, now, kStarvationCap,
                                            &escalations, &scanned)
                      : queue.pick(banks, now, kStarvationCap,
                                   &escalations, &scanned);
        if (node != BankedRequestQueue::kNil) {
            const DramQueueEntry e = queue.take(node);
            if (banks[e.bank].openRow != e.row) {
                banks[e.bank].openRow = e.row;
                queue.onRowChange(e.bank, banks);
            }
            queue.push(makeEntry(), banks);
        }
        ++now;
    }
    state.counters["scanned_per_pick"] = benchmark::Counter(
        static_cast<double>(scanned) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SchedPick)
    ->ArgNames({"reference", "rowlocal"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void
BM_GpuCycle(benchmark::State &state)
{
    GpuConfig cfg;
    cfg.numCores = static_cast<std::uint32_t>(state.range(0));
    cfg.warpsPerCore = 32;
    const BenchmarkParams &bench_app = findBenchmark("3DS");
    Gpu gpu(cfg, {AppDesc{&bench_app}});
    gpu.run(2000); // warm structures
    for (auto _ : state)
        gpu.tickOne();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GpuCycle)->Arg(4)->Arg(15)->Arg(30);

} // namespace

BENCHMARK_MAIN();
