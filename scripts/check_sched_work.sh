#!/usr/bin/env bash
# Host-independent perf regression gate on the memory-scheduler work
# counters (DESIGN.md §12).
#
# Wall-clock throughput depends on the CI machine, so this gate checks
# the *deterministic* work counters instead: scheduler picks, bank
# slots scanned per pick, and the retry probes the indexed wake paths
# actually executed. All of them are exact functions of the simulated
# workload, so on an unchanged simulator they reproduce bit-for-bit on
# any host. The gate fails when
#
#   - cycles or requests differ from the baseline at all (that is a
#     simulation-result change, not a perf change and must be reviewed
#     via the determinism gate and baselines regenerated on purpose);
#   - a work counter grew more than ALLOWED_GROWTH (default 5%) over
#     the committed baseline: the hot path got algorithmically more
#     expensive even if the CI host is too noisy to show it in seconds.
#
# Shrinking counters only print a note; commit a regenerated baseline
# (scripts/check_sched_work.sh --update) to lock in the improvement.
#
#   scripts/check_sched_work.sh [--update]
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/sched_work_baseline.json
PERF_BIN=build/bench/perf_throughput
ALLOWED_GROWTH="${ALLOWED_GROWTH:-1.05}"

if [ ! -x "$PERF_BIN" ]; then
    echo "error: $PERF_BIN not built (cmake --build build)" >&2
    exit 2
fi

# Fixed fast configuration: small enough for CI, saturated enough that
# the retry/scheduler paths do real work.
run_counters() {
    MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
        "$PERF_BIN" 2>/dev/null
}

if [ "${1:-}" = "--update" ]; then
    run_counters | python3 -c '
import json, sys
cases = {}
for line in sys.stdin:
    d = json.loads(line)
    cases[d["case"]] = {
        k: d[k]
        for k in ("cycles", "requests", "sched_picks",
                  "sched_banks_scanned", "data_retry_probes",
                  "tlb_retry_probes")
    }
print(json.dumps(cases, indent=2, sort_keys=True))
' >"$BASELINE"
    echo "wrote $BASELINE"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "error: $BASELINE missing (run with --update and commit it)" >&2
    exit 2
fi

CUR="$(mktemp)"
trap 'rm -f "$CUR"' EXIT
run_counters >"$CUR"

python3 - "$BASELINE" "$ALLOWED_GROWTH" "$CUR" <<'EOF'
import json, sys

baseline = json.load(open(sys.argv[1]))
allowed = float(sys.argv[2])
sys.stdin = open(sys.argv[3])
exact_keys = ("cycles", "requests")
work_keys = ("sched_picks", "sched_banks_scanned",
             "data_retry_probes", "tlb_retry_probes")

failed = False
seen = set()
for line in sys.stdin:
    d = json.loads(line)
    case = d["case"]
    seen.add(case)
    base = baseline.get(case)
    if base is None:
        print("NEW case %r (no baseline; run --update)" % case)
        failed = True
        continue
    for k in exact_keys:
        if d[k] != base[k]:
            print("FAIL %s.%s: %d != baseline %d "
                  "(simulation result changed)" % (case, k, d[k], base[k]))
            failed = True
    for k in work_keys:
        cur, ref = d[k], base[k]
        if cur > ref * allowed and cur > ref + 16:
            print("FAIL %s.%s: %d > %.0f (baseline %d x %.2f)"
                  % (case, k, cur, ref * allowed, ref, allowed))
            failed = True
        elif cur != ref:
            print("note %s.%s: %d (baseline %d)" % (case, k, cur, ref))
        else:
            print("ok   %s.%s: %d" % (case, k, cur))
missing = set(baseline) - seen
if missing:
    print("FAIL missing cases: %s" % ", ".join(sorted(missing)))
    failed = True
sys.exit(1 if failed else 0)
EOF
echo "scheduler work counters within baseline"
