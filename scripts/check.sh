#!/usr/bin/env bash
# Full verification: build and test the normal configuration, then the
# ASan+UBSan configuration (-DMASK_SANITIZE=ON). Run from the repo root.
#
#   scripts/check.sh              # both configs
#   MASK_CHECK_FAST=1 scripts/check.sh   # skip the sanitizer config
set -euo pipefail
cd "$(dirname "$0")/.."

GEN_ARGS=()
if command -v ninja >/dev/null 2>&1; then
    GEN_ARGS=(-G Ninja)
fi

echo "== normal build =="
cmake -B build -S . "${GEN_ARGS[@]}" >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${MASK_CHECK_FAST:-0}" = "1" ]; then
    echo "MASK_CHECK_FAST=1: skipping sanitizer config"
    exit 0
fi

echo "== ASan+UBSan build =="
cmake -B build-sanitize -S . "${GEN_ARGS[@]}" -DMASK_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j
(cd build-sanitize && ctest --output-on-failure -j)

echo "all checks passed"
