#!/usr/bin/env bash
# Host-side simulator throughput report -> BENCH_throughput.json.
#
# The output file is a HISTORY: each invocation appends one run entry
# ({date, git_rev, host, throughput, sweep}) to the top-level "runs"
# array instead of overwriting, so throughput can be compared across
# commits and hosts. A pre-history single-run file is wrapped as the
# first entry on the next append.
#
# Three sections per run entry:
#   "host": nproc and CPU model of the machine that produced the
#     numbers (throughput is host-dependent; the CI regression gate
#     uses only the deterministic work counters, see
#     scripts/check_sched_work.sh).
#   "throughput": per-configuration mega-cycles/sec and requests/sec
#     from bench/perf_throughput (single-threaded hot-path speed).
#     The "pair-mask-ckpt" case runs with periodic checkpointing
#     forced on and records the snapshot cost: ckpt_writes,
#     ckpt_bytes (total snapshot bytes written), ckpt_write_seconds,
#     and ckpt_overhead (fraction of wall time spent serializing).
#     The "warm-sweep" case A/B-times a 4-point measure-length grid
#     with the warm-start cache off vs on (warm_off_seconds,
#     warm_on_seconds, warm_speedup, warm_hits/misses,
#     warmup_cycles_saved) and byte-compares the two legs' results
#     (warm_identical) -- see DESIGN.md section 14.
#   "sweep": fig11 wall-clock serial (MASK_BENCH_JOBS=1) vs parallel
#     (MASK_BENCH_JOBS=<nproc>) and the resulting speedup. The speedup
#     scales with hardware threads; on a single-CPU host the parallel
#     leg is skipped and the comparison labeled inconclusive (the
#     sweep runner executes jobs=1 inline, so timing it twice would
#     just measure noise).
#   "dist": fig11 run by two concurrent worker processes sharing a
#     lease directory (MASK_SWEEP_DIST_DIR, DESIGN.md section 15).
#     Records dist_workers, wall_seconds, the summed lease counters
#     from the workers' [dist] stderr footers (leases_claimed,
#     leases_stolen, duplicates), and identical -- whether every
#     worker's merged stdout byte-matched the serial reference (the
#     script fails if not).
#
#   scripts/bench_perf.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_throughput.json}"
PERF_BIN=build/bench/perf_throughput
FIG11_BIN=build/bench/fig11_performance
for bin in "$PERF_BIN" "$FIG11_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (cmake --build build)" >&2
        exit 2
    fi
done

JOBS="$(nproc 2>/dev/null || echo 1)"

# Host identity: throughput numbers are host-dependent, so the report
# records what produced them (the CI gate compares only deterministic
# work counters, never these wall-clock figures).
CPU_MODEL="$(awk -F': *' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)"
if [ -z "$CPU_MODEL" ]; then
    CPU_MODEL="$(uname -m)"
fi
# Escape for JSON embedding (quotes and backslashes).
CPU_MODEL="$(printf '%s' "$CPU_MODEL" | sed 's/\\/\\\\/g; s/"/\\"/g')"

now_secs() { date +%s.%N; }

echo "== perf_throughput (hot-path cycles/sec) =="
PERF_LINES="$("$PERF_BIN" 2>/dev/null)"
echo "$PERF_LINES"

# Surface the warm-sweep A/B verdict in the console output (the full
# JSON line flows into the history file with the rest of PERF_LINES).
WARM_LINE="$(echo "$PERF_LINES" | grep '"case": "warm-sweep"' || true)"
if [ -n "$WARM_LINE" ]; then
    WARM_SPEEDUP="$(echo "$WARM_LINE" | sed -n 's/.*"warm_speedup": \([0-9.]*\).*/\1/p')"
    WARM_IDENTICAL="$(echo "$WARM_LINE" | sed -n 's/.*"warm_identical": \(true\|false\).*/\1/p')"
    echo "== warm-start sweep: speedup ${WARM_SPEEDUP}x, identical=${WARM_IDENTICAL} =="
    if [ "$WARM_IDENTICAL" != "true" ]; then
        echo "error: warm-forked sweep results diverged from fresh run" >&2
        exit 1
    fi
fi

if [ "$JOBS" -gt 1 ]; then
    echo "== fig11 sweep: serial vs MASK_BENCH_JOBS=$JOBS =="
    t0="$(now_secs)"
    MASK_BENCH_FAST=1 MASK_BENCH_JOBS=1 "$FIG11_BIN" >/dev/null 2>&1
    t1="$(now_secs)"
    MASK_BENCH_FAST=1 MASK_BENCH_JOBS="$JOBS" "$FIG11_BIN" >/dev/null 2>&1
    t2="$(now_secs)"

    SERIAL="$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"
    PARALLEL="$(echo "$t2 $t1" | awk '{printf "%.3f", $1 - $2}')"
    SPEEDUP="$(echo "$SERIAL $PARALLEL" | awk '{printf "%.2f", ($2 > 0) ? $1 / $2 : 0}')"
    SWEEP_NOTE="ok"
    echo "serial ${SERIAL}s  parallel(jobs=$JOBS) ${PARALLEL}s  speedup ${SPEEDUP}x"
else
    # One hardware thread: SweepRunner runs jobs=1 inline, so the
    # "parallel" leg would re-time the serial path and report a
    # meaningless ~1.0x. Time the serial leg once and say so.
    echo "== fig11 sweep: nproc=1, parallel comparison inconclusive =="
    t0="$(now_secs)"
    MASK_BENCH_FAST=1 MASK_BENCH_JOBS=1 "$FIG11_BIN" >/dev/null 2>&1
    t1="$(now_secs)"
    SERIAL="$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"
    PARALLEL=null
    SPEEDUP=null
    SWEEP_NOTE="inconclusive: single-CPU host, parallel leg skipped"
    echo "serial ${SERIAL}s  (parallel leg skipped)"
fi

# Distributed leg: two worker processes share a lease directory on
# the local filesystem and race over the same fig11 job list
# (DESIGN.md section 15). Both workers merge at exit, so both stdout
# streams must be byte-identical to the serial reference; the [dist]
# stderr footer supplies the lease counters recorded in the report.
DIST_TMP="$(mktemp -d)"
trap 'rm -rf "$DIST_TMP"' EXIT
echo "== fig11 sweep: 2 distributed workers (shared lease dir) =="
MASK_BENCH_FAST=1 MASK_BENCH_JOBS=1 "$FIG11_BIN" \
    >"$DIST_TMP/ref.out" 2>/dev/null
t0="$(now_secs)"
MASK_BENCH_FAST=1 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_DIST_DIR="$DIST_TMP/dist" MASK_SWEEP_DIST_WORKER=w1 \
    "$FIG11_BIN" >"$DIST_TMP/w1.out" 2>"$DIST_TMP/w1.err" &
DIST_PID1=$!
MASK_BENCH_FAST=1 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_DIST_DIR="$DIST_TMP/dist" MASK_SWEEP_DIST_WORKER=w2 \
    "$FIG11_BIN" >"$DIST_TMP/w2.out" 2>"$DIST_TMP/w2.err" &
DIST_PID2=$!
wait "$DIST_PID1"
wait "$DIST_PID2"
t1="$(now_secs)"
DIST_WALL="$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"

DIST_IDENTICAL=true
for out in "$DIST_TMP/w1.out" "$DIST_TMP/w2.out"; do
    if ! cmp -s "$DIST_TMP/ref.out" "$out"; then
        DIST_IDENTICAL=false
    fi
done
if [ "$DIST_IDENTICAL" != "true" ]; then
    echo "error: distributed sweep output diverged from serial run" >&2
    exit 1
fi

DIST_CLAIMED=0; DIST_STOLEN=0; DIST_DUP=0
for err in "$DIST_TMP/w1.err" "$DIST_TMP/w2.err"; do
    line="$(grep '^\[dist\]' "$err" | tail -n 1 || true)"
    [ -n "$line" ] || continue
    c="$(echo "$line" | sed -n 's/.* \([0-9]*\) leases claimed.*/\1/p')"
    s="$(echo "$line" | sed -n 's/.* \([0-9]*\) stolen,.*/\1/p')"
    d="$(echo "$line" | sed -n 's/.* \([0-9]*\) duplicates,.*/\1/p')"
    DIST_CLAIMED=$((DIST_CLAIMED + ${c:-0}))
    DIST_STOLEN=$((DIST_STOLEN + ${s:-0}))
    DIST_DUP=$((DIST_DUP + ${d:-0}))
done
echo "2 workers ${DIST_WALL}s  leases claimed $DIST_CLAIMED  stolen $DIST_STOLEN  duplicates $DIST_DUP  identical=$DIST_IDENTICAL"

# One run entry, built as before...
RUN_JSON="$(mktemp)"
trap 'rm -f "$RUN_JSON"; rm -rf "$DIST_TMP"' EXIT
{
    echo "{"
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"git_rev\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"host\": {"
    echo "    \"nproc\": $JOBS,"
    echo "    \"cpu_model\": \"$CPU_MODEL\""
    echo "  },"
    echo "  \"throughput\": ["
    echo "$PERF_LINES" | sed 's/^/    /; $!s/$/,/'
    echo "  ],"
    echo "  \"sweep\": {"
    echo "    \"bench\": \"fig11_performance\","
    echo "    \"jobs\": $JOBS,"
    echo "    \"serial_seconds\": $SERIAL,"
    echo "    \"parallel_seconds\": $PARALLEL,"
    echo "    \"speedup\": $SPEEDUP,"
    echo "    \"note\": \"$SWEEP_NOTE\""
    echo "  },"
    echo "  \"dist\": {"
    echo "    \"dist_workers\": 2,"
    echo "    \"wall_seconds\": $DIST_WALL,"
    echo "    \"leases_claimed\": $DIST_CLAIMED,"
    echo "    \"leases_stolen\": $DIST_STOLEN,"
    echo "    \"duplicates\": $DIST_DUP,"
    echo "    \"identical\": $DIST_IDENTICAL"
    echo "  }"
    echo "}"
} >"$RUN_JSON"

# ...then appended to the history array in $OUT. A corrupt or
# pre-history file is wrapped/replaced rather than aborting the run.
python3 - "$OUT" "$RUN_JSON" <<'PYEOF'
import json
import sys

out_path, run_path = sys.argv[1], sys.argv[2]
with open(run_path, encoding="utf-8") as fh:
    run = json.load(fh)

runs = []
try:
    with open(out_path, encoding="utf-8") as fh:
        prev = json.load(fh)
    if isinstance(prev, dict) and isinstance(prev.get("runs"), list):
        runs = prev["runs"]
    elif isinstance(prev, dict) and "throughput" in prev:
        # Pre-history single-run format: keep it as the first entry.
        runs = [prev]
except (OSError, ValueError):
    pass

runs.append(run)
with open(out_path, "w", encoding="utf-8") as fh:
    json.dump({"schema": "mask-bench-history", "version": 1,
               "runs": runs}, fh, indent=2)
    fh.write("\n")
print(f"appended run {len(runs)} to {out_path}")
PYEOF
