#!/usr/bin/env bash
# Host-side simulator throughput report -> BENCH_throughput.json.
#
# Two sections:
#   "throughput": per-configuration mega-cycles/sec and requests/sec
#     from bench/perf_throughput (single-threaded hot-path speed).
#   "sweep": fig11 wall-clock serial (MASK_BENCH_JOBS=1) vs parallel
#     (MASK_BENCH_JOBS=<nproc>) and the resulting speedup. The speedup
#     scales with hardware threads; on a single-core host it is ~1.0
#     by construction.
#
#   scripts/bench_perf.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_throughput.json}"
PERF_BIN=build/bench/perf_throughput
FIG11_BIN=build/bench/fig11_performance
for bin in "$PERF_BIN" "$FIG11_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (cmake --build build)" >&2
        exit 2
    fi
done

JOBS="$(nproc 2>/dev/null || echo 1)"

now_secs() { date +%s.%N; }

echo "== perf_throughput (hot-path cycles/sec) =="
PERF_LINES="$("$PERF_BIN" 2>/dev/null)"
echo "$PERF_LINES"

echo "== fig11 sweep: serial vs MASK_BENCH_JOBS=$JOBS =="
t0="$(now_secs)"
MASK_BENCH_FAST=1 MASK_BENCH_JOBS=1 "$FIG11_BIN" >/dev/null 2>&1
t1="$(now_secs)"
MASK_BENCH_FAST=1 MASK_BENCH_JOBS="$JOBS" "$FIG11_BIN" >/dev/null 2>&1
t2="$(now_secs)"

SERIAL="$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')"
PARALLEL="$(echo "$t2 $t1" | awk '{printf "%.3f", $1 - $2}')"
SPEEDUP="$(echo "$SERIAL $PARALLEL" | awk '{printf "%.2f", ($2 > 0) ? $1 / $2 : 0}')"
echo "serial ${SERIAL}s  parallel(jobs=$JOBS) ${PARALLEL}s  speedup ${SPEEDUP}x"

{
    echo "{"
    echo "  \"throughput\": ["
    echo "$PERF_LINES" | sed 's/^/    /; $!s/$/,/'
    echo "  ],"
    echo "  \"sweep\": {"
    echo "    \"bench\": \"fig11_performance\","
    echo "    \"jobs\": $JOBS,"
    echo "    \"serial_seconds\": $SERIAL,"
    echo "    \"parallel_seconds\": $PARALLEL,"
    echo "    \"speedup\": $SPEEDUP"
    echo "  }"
    echo "}"
} >"$OUT"
echo "wrote $OUT"
