#!/usr/bin/env python3
"""Summarize a MASK timeseries JSONL file as a per-app table.

Usage:
    scripts/obs_report.py out.timeseries.jsonl [more.jsonl ...]

Input is the self-describing format written by the simulator's
observability layer (DESIGN.md S13): the first line is a schema
header naming every column (name, unit, app, kind), each following
line is one sample row {"cycle": N, "v": [...]}. This script never
hard-codes column positions -- everything comes from the header.

Aggregation by series kind:
    gauge  -> mean over rows (plus last value)
    delta  -> sum over rows (per-interval increments)
Columns tagged with an app index are grouped under that app; app -1
columns are listed in a separate "global" section.
"""

import json
import sys


def load(path):
    """Returns (header_dict, list_of_row_dicts)."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln for ln in (l.strip() for l in fh) if ln]
    if not lines:
        raise SystemExit(f"{path}: empty file")
    header = json.loads(lines[0])
    if header.get("schema") not in ("mask-timeseries", "mask-stage-profile"):
        raise SystemExit(f"{path}: not a MASK timeseries file "
                         f"(schema={header.get('schema')!r})")
    rows = [json.loads(ln) for ln in lines[1:]]
    ncols = len(header.get("series", []))
    for i, row in enumerate(rows):
        if len(row.get("v", [])) != ncols:
            raise SystemExit(f"{path}: row {i} has {len(row.get('v', []))} "
                             f"values, schema declares {ncols}")
    return header, rows


def fmt(value, unit):
    if unit in ("ratio", "ipc"):
        return f"{value:.4f}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


def summarize(path):
    header, rows = load(path)
    series = header["series"]
    print(f"== {path} ==")
    print(f"schema {header['schema']} v{header.get('version')}  "
          f"interval {header.get('interval')} cycles  "
          f"{len(rows)} rows  {len(series)} columns")
    if not rows:
        return

    cycles = [r["cycle"] for r in rows]
    print(f"cycle range [{cycles[0]}, {cycles[-1]}]")

    # app -> [(name, unit, kind, aggregate, last)]
    groups = {}
    for col, s in enumerate(series):
        values = [r["v"][col] for r in rows]
        if s.get("kind") == "delta":
            agg_label, agg = "sum", sum(values)
        else:
            agg_label, agg = "mean", sum(values) / len(values)
        groups.setdefault(s.get("app", -1), []).append(
            (s["name"], s.get("unit", ""), agg_label, agg, values[-1]))

    name_w = max(len(s["name"]) for s in series)
    for app in sorted(groups, key=lambda a: (a < 0, a)):
        print(f"\n-- {'global' if app < 0 else f'app {app}'} --")
        print(f"{'series':<{name_w}}  {'unit':<7} {'agg':<5} "
              f"{'value':>12} {'last':>12}")
        for name, unit, agg_label, agg, last in groups[app]:
            print(f"{name:<{name_w}}  {unit:<7} {agg_label:<5} "
                  f"{fmt(agg, unit):>12} {fmt(last, unit):>12}")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for i, path in enumerate(argv[1:]):
        if i:
            print()
        summarize(path)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
