#!/usr/bin/env bash
# Determinism gate: run the Figure 11 harness twice under the fast CI
# windows and require byte-for-byte identical stdout. Any divergence
# means hidden nondeterminism (unordered-container iteration, uninit
# reads, wall-clock leakage) crept into the simulator.
#
#   scripts/check_determinism.sh [path-to-fig11_performance]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-build/bench/fig11_performance}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build build)" >&2
    exit 2
fi

out_a="$(mktemp)"
out_b="$(mktemp)"
trap 'rm -f "$out_a" "$out_b"' EXIT

echo "== run 1 =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    "$BIN" >"$out_a" 2>/dev/null
echo "== run 2 =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: identical configs produced different stats" >&2
    exit 1
fi
echo "deterministic: both runs byte-identical"

# Parallel sweeps must not change ANY byte of output relative to the
# serial run: results are consumed in submission order, and nothing
# host-dependent (wall-clock, job count) reaches stdout.
echo "== run 3 (parallel, 4 jobs) =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=4 \
    "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: parallel sweep diverged from serial" >&2
    exit 1
fi
echo "deterministic: parallel (jobs=4) byte-identical to serial"

# The event-driven loop (DESIGN.md §9) must be an observably pure
# optimization: forcing per-cycle stepping with MASK_NO_CYCLE_SKIP=1
# may not change a single byte of the simulated results.
echo "== run 4 (cycle skipping disabled) =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_NO_CYCLE_SKIP=1 "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: per-cycle loop diverged from event-driven loop" >&2
    exit 1
fi
echo "deterministic: MASK_NO_CYCLE_SKIP=1 byte-identical to skipping loop"

# Journal resume (DESIGN.md §10) must also be invisible: kill the
# bench mid-sweep (an injected hard crash), resume it from the JSONL
# journal, and require the resumed stdout byte-identical to an
# uninterrupted run. Loaded-from-journal results are decoded from the
# exact hex-float encoding, so even one flipped bit would show here.
echo "== run 5 (killed mid-sweep, resumed from journal) =="
journal="$(mktemp)"
repro="$(mktemp)"
trap 'rm -f "$out_a" "$out_b" "$journal" "$repro"' EXIT
rm -f "$journal"

if MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_JOURNAL="$journal" MASK_SWEEP_FAULT_CRASH=20 \
    MASK_REPRO_FILE="$repro" "$BIN" >/dev/null 2>&1; then
    echo "DETERMINISM FAILURE: injected crash did not kill the sweep" >&2
    exit 1
fi
if [ ! -s "$journal" ]; then
    echo "DETERMINISM FAILURE: no journal written before the crash" >&2
    exit 1
fi

MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_JOURNAL="$journal" "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: journal-resumed run diverged from uninterrupted run" >&2
    exit 1
fi
echo "deterministic: journal resume byte-identical to uninterrupted run"

# Periodic checkpointing (DESIGN.md §11) only observes state: with
# MASK_CKPT_* on, every simulated byte of output must match the
# checkpoint-free run.
echo "== run 6 (periodic checkpointing enabled) =="
ckpt_dir="$(mktemp -d)"
trap 'rm -f "$out_a" "$out_b" "$journal" "$repro"; rm -rf "$ckpt_dir"' EXIT

MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_CKPT_INTERVAL_CYCLES=7000 MASK_CKPT_DIR="$ckpt_dir" \
    "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: checkpoint-enabled run diverged from plain run" >&2
    exit 1
fi
echo "deterministic: checkpointing enabled byte-identical to disabled"

# Checkpoint restore across processes: serialize a run halfway
# through its measured window, restore the snapshot file in a FRESH
# process, and require the finished stats blob byte-identical to an
# uninterrupted run of the same configuration — for the SharedTLB and
# MASK designs, with fault injection on and off.
REPLAY="${CRASH_REPLAY:-build/bench/crash_replay}"
if [ -x "$REPLAY" ]; then
    echo "== run 7 (cross-process snapshot save/resume) =="
    for combo in "SharedTLB 0" "MASK 0" "MASK 1" "Ideal 1"; do
        design="${combo% *}"
        faults="${combo#* }"
        snap="$ckpt_dir/leg_${design}_${faults}.snap"
        "$REPLAY" --snapshot-run "$design" "$faults" >"$out_a" 2>/dev/null
        "$REPLAY" --snapshot-save "$design" "$faults" "$snap" 2>/dev/null
        "$REPLAY" --snapshot-resume "$design" "$faults" "$snap" >"$out_b" 2>/dev/null
        if ! diff -u "$out_a" "$out_b"; then
            echo "DETERMINISM FAILURE: snapshot resume ($design faults=$faults) diverged" >&2
            exit 1
        fi
        echo "deterministic: snapshot resume ($design faults=$faults) bit-exact"
    done
else
    echo "note: $REPLAY not built, skipping snapshot save/resume leg" >&2
fi

# Crash mid-sweep WITH checkpointing: the re-run resumes completed
# jobs from the journal and the interrupted job from its newest
# checkpoint (cycle-0 fallback otherwise) — still byte-identical to a
# fault-free serial run.
echo "== run 8 (killed mid-sweep, checkpoints + journal resume) =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    "$BIN" >"$out_a" 2>/dev/null
rm -f "$journal"
if MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_JOURNAL="$journal" MASK_SWEEP_FAULT_CRASH=20 \
    MASK_CKPT_INTERVAL_CYCLES=7000 MASK_CKPT_DIR="$ckpt_dir" \
    MASK_REPRO_FILE="$repro" "$BIN" >/dev/null 2>&1; then
    echo "DETERMINISM FAILURE: injected crash did not kill the sweep" >&2
    exit 1
fi
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_JOURNAL="$journal" \
    MASK_CKPT_INTERVAL_CYCLES=7000 MASK_CKPT_DIR="$ckpt_dir" \
    "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: checkpoint+journal resume diverged from uninterrupted run" >&2
    exit 1
fi
echo "deterministic: checkpoint+journal resume byte-identical to uninterrupted run"

# The per-stage profiler (DESIGN.md §12) is observation-only: timing
# the stages must not change a single simulated byte. Stage seconds go
# to stderr/JSON wall fields only, never into the stats stream diffed
# here.
echo "== run 9 (per-stage profiler enabled) =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_PROFILE_STAGES=1 "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: stage profiler perturbed simulated output" >&2
    exit 1
fi
echo "deterministic: MASK_PROFILE_STAGES=1 byte-identical to profiler-off"

# The incrementally-indexed scheduler (DESIGN.md §12) must pick the
# same requests as the reference rescanning implementation: forcing
# the O(banks) reference path may not change a single byte.
echo "== run 10 (reference rescanning scheduler) =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SCHED_REFERENCE=1 "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: indexed scheduler diverged from reference rescan" >&2
    exit 1
fi
echo "deterministic: MASK_SCHED_REFERENCE=1 byte-identical to indexed scheduler"

# The observability layer (DESIGN.md §13) is observation-only: with
# per-job telemetry on (MASK_SWEEP_OBS_DIR), stdout must stay
# byte-identical to the plain run, and the telemetry files themselves
# — timeseries JSONL and Chrome traces — must be byte-identical
# across two obs-enabled runs (same seed → same samples and events).
echo "== run 11 (per-job telemetry enabled) =="
obs_a="$ckpt_dir/obs_a"
obs_b="$ckpt_dir/obs_b"
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_OBS_DIR="$obs_a" "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: telemetry-enabled run diverged from plain run" >&2
    exit 1
fi
if ! ls "$obs_a"/*.timeseries.jsonl >/dev/null 2>&1 ||
    ! ls "$obs_a"/*.trace.json >/dev/null 2>&1; then
    echo "DETERMINISM FAILURE: MASK_SWEEP_OBS_DIR produced no telemetry files" >&2
    exit 1
fi

MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_OBS_DIR="$obs_b" "$BIN" >/dev/null 2>/dev/null

if ! diff -ru "$obs_a" "$obs_b"; then
    echo "DETERMINISM FAILURE: telemetry files differ between identical runs" >&2
    exit 1
fi
echo "deterministic: telemetry on leaves stdout unchanged; obs files byte-identical across runs"

# Warm-start sweep execution (DESIGN.md §14) must be a pure
# optimization: forking warmed snapshots instead of re-running warmup
# may not change a single simulated byte. Three variants against the
# same baseline: in-memory warm cache, file-backed warm cache under
# fork isolation with parallel children, and a crash-resume where both
# the journal AND the warm files persist across the two processes.
echo "== run 12a (warm cache, in-memory) =="
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_WARM=1 "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: warm-start run diverged from cold run" >&2
    exit 1
fi
echo "deterministic: MASK_SWEEP_WARM=1 byte-identical to cold sweep"

echo "== run 12b (warm cache, file-backed + fork isolation) =="
warm_dir="$ckpt_dir/warm"
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=2 \
    MASK_SWEEP_ISOLATE=1 MASK_SWEEP_WARM_DIR="$warm_dir" \
    "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: fork-isolated warm run diverged from cold run" >&2
    exit 1
fi
echo "deterministic: warm files + isolation byte-identical to cold sweep"

echo "== run 12c (killed mid-sweep, journal + warm files resume) =="
rm -f "$journal"
rm -rf "$warm_dir"
if MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_JOURNAL="$journal" MASK_SWEEP_FAULT_CRASH=20 \
    MASK_SWEEP_WARM_DIR="$warm_dir" \
    MASK_REPRO_FILE="$repro" "$BIN" >/dev/null 2>&1; then
    echo "DETERMINISM FAILURE: injected crash did not kill the sweep" >&2
    exit 1
fi
if ! ls "$warm_dir"/*.snap >/dev/null 2>&1; then
    echo "DETERMINISM FAILURE: no warm snapshots written before the crash" >&2
    exit 1
fi
MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_JOURNAL="$journal" MASK_SWEEP_WARM_DIR="$warm_dir" \
    "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: warm+journal resume diverged from uninterrupted run" >&2
    exit 1
fi
echo "deterministic: journal + warm-file resume byte-identical to uninterrupted run"

# Distributed sweep execution (DESIGN.md §15): two workers share a
# sweep directory; worker 1 is SIGKILLed while it holds a lease
# mid-job, worker 2 steals the stale lease, finishes the sweep, and
# its merged stdout must be byte-identical to the serial baseline. A
# third merge-only invocation must render the same bytes again from
# the shards alone.
echo "== run 13 (distributed: 2 workers, worker 1 SIGKILLed mid-sweep) =="
dist_dir="$ckpt_dir/dist"
dist_err="$ckpt_dir/dist_w2.err"
rm -rf "$dist_dir"

MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_DIST_DIR="$dist_dir" MASK_SWEEP_DIST_WORKER=w1 \
    MASK_SWEEP_DIST_HEARTBEAT_MS=100 MASK_SWEEP_DIST_STEAL_AFTER_MS=1000 \
    "$BIN" >/dev/null 2>&1 &
w1_pid=$!
# Kill worker 1 as soon as it holds a lease: the SIGKILL lands mid-job
# (fast-window jobs take far longer than the poll), leaving a stale
# lease and (usually) a torn shard tail for worker 2 to tolerate.
for _ in $(seq 1 200); do
    if ls "$dist_dir/leases/"*.lease >/dev/null 2>&1; then break; fi
    sleep 0.05
done
kill -9 "$w1_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
if ! ls "$dist_dir/leases/"*.lease >/dev/null 2>&1; then
    echo "DETERMINISM FAILURE: worker 1 died without leaving a lease to steal" >&2
    exit 1
fi

MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_DIST_DIR="$dist_dir" MASK_SWEEP_DIST_WORKER=w2 \
    MASK_SWEEP_DIST_HEARTBEAT_MS=100 MASK_SWEEP_DIST_STEAL_AFTER_MS=1000 \
    "$BIN" >"$out_b" 2>"$dist_err"

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: distributed crash-recovery run diverged from serial run" >&2
    exit 1
fi
if ! grep -q "stole stale lease" "$dist_err"; then
    echo "DETERMINISM FAILURE: worker 2 recovered without stealing worker 1's lease" >&2
    cat "$dist_err" >&2
    exit 1
fi
echo "deterministic: distributed recovery (1 worker killed, lease stolen) byte-identical to serial"

MASK_BENCH_FAST=1 MASK_BENCH_PAIRS=4 MASK_BENCH_JOBS=1 \
    MASK_SWEEP_DIST_DIR="$dist_dir" MASK_SWEEP_DIST_WORKER=w3 \
    MASK_SWEEP_DIST_MERGE=1 "$BIN" >"$out_b" 2>/dev/null

if ! diff -u "$out_a" "$out_b"; then
    echo "DETERMINISM FAILURE: merge-only pass diverged from serial run" >&2
    exit 1
fi
echo "deterministic: merge-only shard pass byte-identical to serial"
