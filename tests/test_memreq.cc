/**
 * @file
 * Unit tests for the in-flight memory request pool.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/memreq.hh"

namespace mask {
namespace {

TEST(RequestPool, AllocGivesFreshRequest)
{
    RequestPool pool;
    const ReqId id = pool.alloc();
    EXPECT_TRUE(pool[id].live);
    EXPECT_EQ(pool[id].paddr, 0u);
    EXPECT_EQ(pool[id].type, ReqType::Data);
    EXPECT_EQ(pool.liveCount(), 1u);
}

TEST(RequestPool, ReleaseRecyclesSlots)
{
    RequestPool pool;
    const ReqId a = pool.alloc();
    pool[a].paddr = 0xdead;
    pool.release(a);
    EXPECT_EQ(pool.liveCount(), 0u);
    const ReqId b = pool.alloc();
    EXPECT_EQ(b, a) << "freed slot should be reused";
    EXPECT_EQ(pool[b].paddr, 0u) << "recycled request must be reset";
}

TEST(RequestPool, DistinctLiveIds)
{
    RequestPool pool;
    std::set<ReqId> ids;
    for (int i = 0; i < 100; ++i)
        ids.insert(pool.alloc());
    EXPECT_EQ(ids.size(), 100u);
    EXPECT_EQ(pool.liveCount(), 100u);
    EXPECT_GE(pool.capacity(), 100u);
}

TEST(RequestPool, InterleavedAllocRelease)
{
    RequestPool pool;
    std::vector<ReqId> live;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 4; ++i)
            live.push_back(pool.alloc());
        pool.release(live.back());
        live.pop_back();
        pool.release(live.front());
        live.erase(live.begin());
    }
    EXPECT_EQ(pool.liveCount(), live.size());
    // Capacity stays bounded by the peak live count.
    EXPECT_LE(pool.capacity(), 2 * live.size() + 8);
    for (const ReqId id : live)
        EXPECT_TRUE(pool[id].live);
}

TEST(RequestPool, FieldsRoundTrip)
{
    RequestPool pool;
    const ReqId id = pool.alloc();
    MemRequest &req = pool[id];
    req.paddr = 0x1234560;
    req.asid = 3;
    req.app = 1;
    req.core = 7;
    req.warp = 42;
    req.type = ReqType::Translation;
    req.origin = ReqOrigin::PageWalk;
    req.pwLevel = 4;
    req.walkId = 17;
    req.bypassL2 = true;

    const MemRequest &read = pool[id];
    EXPECT_EQ(read.paddr, 0x1234560u);
    EXPECT_EQ(read.asid, 3);
    EXPECT_EQ(read.app, 1);
    EXPECT_EQ(read.core, 7);
    EXPECT_EQ(read.warp, 42);
    EXPECT_EQ(read.type, ReqType::Translation);
    EXPECT_EQ(read.origin, ReqOrigin::PageWalk);
    EXPECT_EQ(read.pwLevel, 4);
    EXPECT_EQ(read.walkId, 17u);
    EXPECT_TRUE(read.bypassL2);
}

TEST(RequestPool, ReservePresizesWithoutAllocating)
{
    RequestPool pool;
    pool.reserve(64);
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.capacity(), 0u); // no slots created, only reserved

    std::vector<ReqId> ids;
    for (int i = 0; i < 64; ++i)
        ids.push_back(pool.alloc());
    // The backing store was reserved up front, so addresses of
    // requests stay stable across all 64 allocations.
    MemRequest *first = &pool[ids[0]];
    EXPECT_EQ(pool.capacity(), 64u);
    EXPECT_EQ(&pool[ids[0]], first);
    for (const ReqId id : ids)
        pool.release(id);
}

TEST(RequestPool, TracksPeakLiveAndTotalAllocated)
{
    RequestPool pool;
    const ReqId a = pool.alloc();
    const ReqId b = pool.alloc();
    const ReqId c = pool.alloc();
    EXPECT_EQ(pool.peakLive(), 3u);
    pool.release(b);
    pool.release(c);
    const ReqId d = pool.alloc();
    EXPECT_EQ(pool.peakLive(), 3u); // high-water, not current
    EXPECT_EQ(pool.liveCount(), 2u);
    EXPECT_EQ(pool.totalAllocated(), 4u);
    pool.release(a);
    pool.release(d);
}

TEST(RequestPool, HighWaterMarkTripsInvariant)
{
    RequestPool pool;
    pool.setHighWater(2);
    const ReqId a = pool.alloc();
    const ReqId b = pool.alloc();
    EXPECT_THROW(pool.alloc(), SimInvariantError);
    pool.release(a);
    pool.release(b);
}

TEST(RequestPool, ZeroHighWaterDisablesTheCheck)
{
    RequestPool pool;
    std::vector<ReqId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(pool.alloc());
    EXPECT_EQ(pool.peakLive(), 100u);
    for (const ReqId id : ids)
        pool.release(id);
}

} // namespace
} // namespace mask
