/**
 * @file
 * Unit tests for the in-flight memory request pool.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/memreq.hh"

namespace mask {
namespace {

TEST(RequestPool, AllocGivesFreshRequest)
{
    RequestPool pool;
    const ReqId id = pool.alloc();
    EXPECT_TRUE(pool[id].live);
    EXPECT_EQ(pool[id].paddr, 0u);
    EXPECT_EQ(pool[id].type, ReqType::Data);
    EXPECT_EQ(pool.liveCount(), 1u);
}

TEST(RequestPool, ReleaseRecyclesSlots)
{
    RequestPool pool;
    const ReqId a = pool.alloc();
    pool[a].paddr = 0xdead;
    pool.release(a);
    EXPECT_EQ(pool.liveCount(), 0u);
    const ReqId b = pool.alloc();
    EXPECT_EQ(b, a) << "freed slot should be reused";
    EXPECT_EQ(pool[b].paddr, 0u) << "recycled request must be reset";
}

TEST(RequestPool, DistinctLiveIds)
{
    RequestPool pool;
    std::set<ReqId> ids;
    for (int i = 0; i < 100; ++i)
        ids.insert(pool.alloc());
    EXPECT_EQ(ids.size(), 100u);
    EXPECT_EQ(pool.liveCount(), 100u);
    EXPECT_GE(pool.capacity(), 100u);
}

TEST(RequestPool, InterleavedAllocRelease)
{
    RequestPool pool;
    std::vector<ReqId> live;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 4; ++i)
            live.push_back(pool.alloc());
        pool.release(live.back());
        live.pop_back();
        pool.release(live.front());
        live.erase(live.begin());
    }
    EXPECT_EQ(pool.liveCount(), live.size());
    // Capacity stays bounded by the peak live count.
    EXPECT_LE(pool.capacity(), 2 * live.size() + 8);
    for (const ReqId id : live)
        EXPECT_TRUE(pool[id].live);
}

TEST(RequestPool, FieldsRoundTrip)
{
    RequestPool pool;
    const ReqId id = pool.alloc();
    MemRequest &req = pool[id];
    req.paddr = 0x1234560;
    req.asid = 3;
    req.app = 1;
    req.core = 7;
    req.warp = 42;
    req.type = ReqType::Translation;
    req.origin = ReqOrigin::PageWalk;
    req.pwLevel = 4;
    req.walkId = 17;
    req.bypassL2 = true;

    const MemRequest &read = pool[id];
    EXPECT_EQ(read.paddr, 0x1234560u);
    EXPECT_EQ(read.asid, 3);
    EXPECT_EQ(read.app, 1);
    EXPECT_EQ(read.core, 7);
    EXPECT_EQ(read.warp, 42);
    EXPECT_EQ(read.type, ReqType::Translation);
    EXPECT_EQ(read.origin, ReqOrigin::PageWalk);
    EXPECT_EQ(read.pwLevel, 4);
    EXPECT_EQ(read.walkId, 17u);
    EXPECT_TRUE(read.bypassL2);
}

} // namespace
} // namespace mask
