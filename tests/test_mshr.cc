/**
 * @file
 * Unit tests for the MSHR table and the banked latency pipes.
 */

#include <gtest/gtest.h>

#include "cache/bank_model.hh"
#include "cache/mshr.hh"

namespace mask {
namespace {

TEST(MshrTable, AllocateThenMerge)
{
    MshrTable mshr(4);
    EXPECT_EQ(mshr.allocate(10, 1), MshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.allocate(10, 2), MshrTable::Outcome::Merged);
    EXPECT_EQ(mshr.allocate(10, 3), MshrTable::Outcome::Merged);
    EXPECT_EQ(mshr.size(), 1u);
    EXPECT_EQ(mshr.merges(), 2u);
}

TEST(MshrTable, CompleteReturnsWaitersInOrder)
{
    MshrTable mshr(4);
    mshr.allocate(10, 1);
    mshr.allocate(10, 2);
    mshr.allocate(10, 3);
    const std::vector<ReqId> waiters = mshr.complete(10);
    ASSERT_EQ(waiters.size(), 3u);
    EXPECT_EQ(waiters[0], 1u);
    EXPECT_EQ(waiters[1], 2u);
    EXPECT_EQ(waiters[2], 3u);
    EXPECT_EQ(mshr.size(), 0u);
}

TEST(MshrTable, FullRejectsNewKeysButMergesExisting)
{
    MshrTable mshr(2);
    EXPECT_EQ(mshr.allocate(1, 10), MshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.allocate(2, 11), MshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.allocate(3, 12), MshrTable::Outcome::Full);
    EXPECT_EQ(mshr.rejections(), 1u);
    // Merging into an existing entry still works when full.
    EXPECT_EQ(mshr.allocate(1, 13), MshrTable::Outcome::Merged);
}

TEST(MshrTable, FreeingMakesRoom)
{
    MshrTable mshr(1);
    mshr.allocate(1, 10);
    EXPECT_EQ(mshr.allocate(2, 11), MshrTable::Outcome::Full);
    mshr.complete(1);
    EXPECT_EQ(mshr.allocate(2, 11), MshrTable::Outcome::Allocated);
}

TEST(MshrTable, Has)
{
    MshrTable mshr(2);
    EXPECT_FALSE(mshr.has(5));
    mshr.allocate(5, 0);
    EXPECT_TRUE(mshr.has(5));
}

TEST(LatencyPipe, FixedLatency)
{
    LatencyPipe pipe(1, 10);
    ASSERT_TRUE(pipe.canAccept(0));
    pipe.push(42, 0);
    for (Cycle t = 0; t < 10; ++t)
        EXPECT_FALSE(pipe.hasReady(t));
    ASSERT_TRUE(pipe.hasReady(10));
    EXPECT_EQ(pipe.pop(), 42u);
    EXPECT_FALSE(pipe.hasReady(10));
}

TEST(LatencyPipe, PortLimitPerCycle)
{
    LatencyPipe pipe(2, 5);
    EXPECT_TRUE(pipe.canAccept(0));
    pipe.push(1, 0);
    EXPECT_TRUE(pipe.canAccept(0));
    pipe.push(2, 0);
    EXPECT_FALSE(pipe.canAccept(0));
    // Next cycle, ports are free again.
    EXPECT_TRUE(pipe.canAccept(1));
}

TEST(LatencyPipe, FifoOrder)
{
    LatencyPipe pipe(1, 3);
    pipe.push(1, 0);
    pipe.push(2, 1);
    pipe.push(3, 2);
    EXPECT_TRUE(pipe.hasReady(3));
    EXPECT_EQ(pipe.pop(), 1u);
    EXPECT_FALSE(pipe.hasReady(3));
    EXPECT_EQ(pipe.inFlight(), 2u);
    EXPECT_TRUE(pipe.hasReady(4));
    EXPECT_EQ(pipe.pop(), 2u);
    EXPECT_TRUE(pipe.hasReady(5));
    EXPECT_EQ(pipe.pop(), 3u);
}

TEST(BankedPipe, BankSelection)
{
    BankedPipe banks(8, 1, 10);
    EXPECT_EQ(banks.numBanks(), 8u);
    EXPECT_EQ(banks.bankFor(0), 0u);
    EXPECT_EQ(banks.bankFor(7), 7u);
    EXPECT_EQ(banks.bankFor(8), 0u);
    EXPECT_EQ(banks.bankFor(13), 5u);
}

TEST(BankedPipe, BanksAreIndependent)
{
    BankedPipe banks(2, 1, 4);
    banks.bank(0).push(100, 0);
    EXPECT_FALSE(banks.bank(0).canAccept(0));
    EXPECT_TRUE(banks.bank(1).canAccept(0));
}

} // namespace
} // namespace mask
