/** Unit tests for the open-addressed FlatTable. */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_table.hh"
#include "common/rng.hh"

using namespace mask;

TEST(FlatTable, InsertFindErase)
{
    FlatTable<int> table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.find(42), nullptr);

    table.insert(42, 7);
    ASSERT_NE(table.find(42), nullptr);
    EXPECT_EQ(*table.find(42), 7);
    EXPECT_TRUE(table.contains(42));
    EXPECT_EQ(table.size(), 1u);

    EXPECT_TRUE(table.erase(42));
    EXPECT_FALSE(table.contains(42));
    EXPECT_FALSE(table.erase(42));
    EXPECT_TRUE(table.empty());
}

TEST(FlatTable, KeyZeroIsAValidKey)
{
    FlatTable<int> table;
    table.insert(0, 99);
    ASSERT_NE(table.find(0), nullptr);
    EXPECT_EQ(*table.find(0), 99);
    EXPECT_TRUE(table.erase(0));
    EXPECT_FALSE(table.contains(0));
}

TEST(FlatTable, TakeMovesValueOut)
{
    FlatTable<std::vector<int>> table;
    table.insert(5, std::vector<int>{1, 2, 3});
    std::vector<int> v = table.take(5);
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(table.contains(5));
    EXPECT_EQ(table.size(), 0u);
}

TEST(FlatTable, GrowsPastInitialCapacityWithoutLosingEntries)
{
    FlatTable<std::uint64_t> table(4);
    for (std::uint64_t k = 1; k <= 1000; ++k)
        table.insert(k, k * k);
    EXPECT_EQ(table.size(), 1000u);
    for (std::uint64_t k = 1; k <= 1000; ++k) {
        ASSERT_NE(table.find(k), nullptr) << "key " << k;
        EXPECT_EQ(*table.find(k), k * k);
    }
}

TEST(FlatTable, EraseChurnDoesNotBreakProbeChains)
{
    FlatTable<int> table(8);
    // Insert / erase / reinsert churn at fixed size, the MSHR usage
    // pattern: backward-shift deletion must keep every surviving
    // entry reachable, never corrupt lookups.
    for (int round = 0; round < 200; ++round) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(round) * 13;
        for (std::uint64_t k = 0; k < 8; ++k)
            table.insert(base + k, static_cast<int>(k));
        for (std::uint64_t k = 0; k < 8; ++k) {
            ASSERT_NE(table.find(base + k), nullptr);
            EXPECT_TRUE(table.erase(base + k));
        }
    }
    EXPECT_TRUE(table.empty());
}

TEST(FlatTable, MatchesUnorderedMapUnderRandomChurn)
{
    FlatTable<std::uint64_t> table;
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    Rng rng(12345);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.below(512);
        const auto it = reference.find(key);
        if (it == reference.end()) {
            table.insert(key, key + 1);
            reference.emplace(key, key + 1);
        } else {
            ASSERT_NE(table.find(key), nullptr);
            EXPECT_EQ(*table.find(key), it->second);
            EXPECT_TRUE(table.erase(key));
            reference.erase(it);
        }
        ASSERT_EQ(table.size(), reference.size());
    }
    for (const auto &[key, value] : reference) {
        ASSERT_NE(table.find(key), nullptr);
        EXPECT_EQ(*table.find(key), value);
    }
}

TEST(FlatTable, DifferentialChurnAcrossWrapAroundWithTake)
{
    // Differential test against std::unordered_map with the key space
    // constrained so every home slot lands in the top three indices of
    // a fixed-capacity table: probe chains and backward-shift
    // deletions are forced to wrap from the top of the slot array back
    // to index 0, the trickiest path in removeAt(). Insertions are
    // capped below the growth threshold so the capacity (and with it
    // the engineered clustering) never changes mid-test.
    FlatTable<std::string> table(4);
    const std::size_t cap = table.capacity();
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; keys.size() < 24; ++k) {
        if ((mixHash64(k) & (cap - 1)) >= cap - 3)
            keys.push_back(k);
    }

    std::unordered_map<std::uint64_t, std::string> reference;
    Rng rng(0xC0FFEE);
    std::uint64_t generation = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t key = keys[rng.below(keys.size())];
        const bool present = reference.count(key) != 0;
        switch (rng.below(3)) {
          case 0: // insert (only when absent and below growth load)
            if (!present && reference.size() + 2 < (cap * 3) / 4) {
                const std::string value =
                    std::to_string(key) + "#" +
                    std::to_string(++generation);
                table.insert(key, value);
                reference.emplace(key, value);
            }
            break;
          case 1: // erase, present or not
            EXPECT_EQ(table.erase(key), present);
            reference.erase(key);
            break;
          case 2: // take (requires presence)
            if (present) {
                EXPECT_EQ(table.take(key), reference.at(key));
                reference.erase(key);
            }
            break;
        }
        const std::string *found = table.find(key);
        if (reference.count(key) != 0) {
            ASSERT_NE(found, nullptr);
            EXPECT_EQ(*found, reference.at(key));
        } else {
            EXPECT_EQ(found, nullptr);
        }
        ASSERT_EQ(table.size(), reference.size());
        ASSERT_EQ(table.capacity(), cap) << "table grew unexpectedly";

        if (i % 1000 == 999) {
            // Full-content sweep: forEach must visit exactly the
            // reference's entries, each once, with current values.
            std::unordered_map<std::uint64_t, std::string> seen;
            table.forEach(
                [&](std::uint64_t k, const std::string &value) {
                    EXPECT_TRUE(seen.emplace(k, value).second)
                        << "key visited twice: " << k;
                });
            ASSERT_EQ(seen, reference);
        }
    }
}

TEST(FlatTable, ForEachVisitsEveryLiveEntryOnce)
{
    FlatTable<int> table;
    for (std::uint64_t k = 10; k < 20; ++k)
        table.insert(k, 1);
    table.erase(13);
    table.erase(17);

    std::uint64_t visited = 0;
    std::uint64_t key_sum = 0;
    table.forEach([&](std::uint64_t key, const int &value) {
        ++visited;
        key_sum += key;
        EXPECT_EQ(value, 1);
    });
    EXPECT_EQ(visited, 8u);
    // 10+..+19 minus 13 and 17.
    EXPECT_EQ(key_sum, 145u - 13u - 17u);
}

TEST(FlatTable, ClearResetsToEmpty)
{
    FlatTable<int> table;
    for (std::uint64_t k = 0; k < 100; ++k)
        table.insert(k, 1);
    table.clear();
    EXPECT_TRUE(table.empty());
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(table.contains(k));
    table.insert(3, 4);
    EXPECT_EQ(*table.find(3), 4);
}
