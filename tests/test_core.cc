/**
 * @file
 * Unit tests for the shader core: GTO scheduling, memory-instruction
 * issue, divergence, stall accounting, and drain for address-space
 * switches.
 */

#include <set>

#include <gtest/gtest.h>

#include "core/shader_core.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

GpuConfig
tinyConfig()
{
    GpuConfig cfg;
    cfg.numCores = 1;
    cfg.warpsPerCore = 4;
    return cfg;
}

BenchmarkParams
computeHeavy()
{
    BenchmarkParams p;
    p.name = "test";
    p.hotPages = 2;
    p.coldPages = 64;
    p.computeMean = 3;
    p.memDivergence = 1;
    p.lineReuse = 0.0;
    p.pageRun = 2;
    p.stepAccesses = 8;
    p.blockWarps = 2;
    return p;
}

struct CoreHarness
{
    GpuConfig cfg = tinyConfig();
    BenchmarkParams bench = computeHeavy();
    StreamTable streams;
    ShaderCore core{0, cfg};

    CoreHarness() { core.assign(0, 1, &bench, &streams, 0, 42); }
};

TEST(ShaderCore, FreshCoreHasAllWarpsReady)
{
    CoreHarness h;
    EXPECT_EQ(h.core.readyWarps(), 4u);
    EXPECT_EQ(h.core.outstanding(), 0u);
    EXPECT_EQ(h.core.instructions(), 0u);
}

TEST(ShaderCore, IssuesOneInstructionPerCycle)
{
    CoreHarness h;
    for (Cycle t = 0; t < 50; ++t) {
        // Complete memory accesses instantly so a warp is always
        // ready; the core must then issue every cycle.
        if (auto access = h.core.issue(t); access.has_value()) {
            for (std::uint32_t i = 0; i < access->count; ++i) {
                h.core.noteAccessInFlight();
                h.core.accessDone(access->warp, t);
            }
        }
    }
    EXPECT_EQ(h.core.instructions(), 50u);
}

TEST(ShaderCore, EventuallyIssuesMemoryAccess)
{
    CoreHarness h;
    for (Cycle t = 0; t < 200; ++t) {
        if (auto access = h.core.issue(t); access.has_value()) {
            EXPECT_GE(access->count, 1u);
            EXPECT_LT(access->warp, 4u);
            return;
        }
    }
    FAIL() << "no memory instruction in 200 cycles";
}

TEST(ShaderCore, WarpBlocksUntilAccessDone)
{
    CoreHarness h;
    std::optional<IssuedAccess> access;
    Cycle t = 0;
    while (!access.has_value())
        access = h.core.issue(t++);
    EXPECT_EQ(h.core.readyWarps(), 3u);

    // Simulate the memory system completing the access.
    for (std::uint32_t i = 0; i < access->count; ++i) {
        h.core.noteAccessInFlight();
        h.core.accessDone(access->warp, t + 100);
    }
    EXPECT_EQ(h.core.readyWarps(), 4u);
    EXPECT_GE(h.core.stallCycles(), 100u);
}

TEST(ShaderCore, DivergentInstructionNeedsAllParts)
{
    CoreHarness h;
    h.bench.memDivergence = 4;
    h.bench.lineReuse = 0.0;
    h.core.assign(0, 1, &h.bench, &h.streams, 0, 42);

    std::optional<IssuedAccess> access;
    Cycle t = 0;
    while (!access.has_value())
        access = h.core.issue(t++);
    ASSERT_EQ(access->count, 4u);

    for (std::uint32_t i = 0; i < 4; ++i)
        h.core.noteAccessInFlight();
    for (std::uint32_t i = 0; i < 3; ++i) {
        h.core.accessDone(access->warp, t);
        EXPECT_EQ(h.core.readyWarps(), 3u)
            << "warp must stay blocked until all parts return";
    }
    h.core.accessDone(access->warp, t);
    EXPECT_EQ(h.core.readyWarps(), 4u);
}

TEST(ShaderCore, FullLineReuseNeverIssuesMemory)
{
    CoreHarness h;
    h.bench.lineReuse = 1.0;
    h.core.assign(0, 1, &h.bench, &h.streams, 0, 42);
    // After the very first (non-reusable) accesses complete, all
    // later memory instructions are warp-local.
    int issued = 0;
    for (Cycle t = 0; t < 2000; ++t) {
        if (auto access = h.core.issue(t); access.has_value()) {
            ++issued;
            for (std::uint32_t i = 0; i < access->count; ++i) {
                h.core.noteAccessInFlight();
                h.core.accessDone(access->warp, t);
            }
        }
    }
    EXPECT_LE(issued, 4) << "only one cold access per warp expected";
    EXPECT_EQ(h.core.instructions(), 2000u);
}

TEST(ShaderCore, DrainStopsIssueAndCompletes)
{
    CoreHarness h;
    std::optional<IssuedAccess> access;
    Cycle t = 0;
    while (!access.has_value())
        access = h.core.issue(t++);
    for (std::uint32_t i = 0; i < access->count; ++i)
        h.core.noteAccessInFlight();

    h.core.startDrain();
    EXPECT_TRUE(h.core.draining());
    EXPECT_FALSE(h.core.drained());
    EXPECT_FALSE(h.core.issue(t).has_value());

    for (std::uint32_t i = 0; i < access->count; ++i)
        h.core.accessDone(access->warp, t);
    EXPECT_TRUE(h.core.drained());

    // Reassignment restarts with fresh warps.
    h.core.assign(1, 2, &h.bench, &h.streams, 0, 7);
    EXPECT_FALSE(h.core.draining());
    EXPECT_EQ(h.core.readyWarps(), 4u);
    EXPECT_EQ(h.core.asid(), 2);
    EXPECT_EQ(h.core.app(), 1);
}

TEST(ShaderCore, ResetStatsClearsCounters)
{
    CoreHarness h;
    for (Cycle t = 0; t < 10; ++t)
        h.core.issue(t);
    h.core.resetStats();
    EXPECT_EQ(h.core.instructions(), 0u);
    EXPECT_EQ(h.core.stallCycles(), 0u);
}

TEST(ShaderCore, GtoStaysWithGreedyWarpThroughCompute)
{
    // With one warp, every instruction comes from it; with several,
    // the issued memory accesses should come from different warps
    // over time (oldest-first rotation after stalls).
    CoreHarness h;
    std::set<WarpId> warps;
    Cycle t = 0;
    int accesses = 0;
    while (accesses < 4 && t < 5000) {
        if (auto access = h.core.issue(t); access.has_value()) {
            warps.insert(access->warp);
            ++accesses;
            // Leave the warp blocked; GTO must move on.
        }
        ++t;
    }
    EXPECT_EQ(warps.size(), 4u)
        << "scheduler failed to rotate to other warps";
}

TEST(ShaderCore, NoIssueWhenAllWarpsBlocked)
{
    CoreHarness h;
    int blocked = 0;
    Cycle t = 0;
    while (blocked < 4 && t < 5000) {
        if (auto access = h.core.issue(t); access.has_value()) {
            for (std::uint32_t i = 0; i < access->count; ++i)
                h.core.noteAccessInFlight();
            ++blocked;
        }
        ++t;
    }
    ASSERT_EQ(blocked, 4);
    const std::uint64_t before = h.core.instructions();
    EXPECT_FALSE(h.core.issue(t).has_value());
    EXPECT_EQ(h.core.instructions(), before);
    EXPECT_EQ(h.core.readyWarps(), 0u);
}

} // namespace
} // namespace mask
