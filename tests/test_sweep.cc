/**
 * Tests for the parallel workload-sweep engine: parallel results must
 * be identical to serial ones, the shared alone-IPC memo must dedup
 * across workers, and the memo key must distinguish configurations
 * that share a name (the fingerprint regression).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"

using namespace mask;

namespace {

RunOptions
shortOptions()
{
    RunOptions options;
    options.warmup = 2000;
    options.measure = 6000;
    return options;
}

std::vector<SweepJob>
sampleJobs()
{
    const GpuConfig arch = archByName("maxwell");
    std::vector<SweepJob> jobs;
    for (const DesignPoint point :
         {DesignPoint::SharedTlb, DesignPoint::Mask,
          DesignPoint::Ideal}) {
        jobs.push_back({arch, point, {"HISTO", "LPS"}});
        jobs.push_back({arch, point, {"3DS", "RED"}});
    }
    return jobs;
}

} // namespace

TEST(Sweep, ParallelResultsIdenticalToSerial)
{
    const std::vector<SweepJob> jobs = sampleJobs();

    SweepRunner serial(shortOptions(), 1);
    SweepRunner parallel(shortOptions(), 4);
    for (const SweepJob &job : jobs) {
        serial.submit(job);
        parallel.submit(job);
    }
    serial.run();
    parallel.run();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const PairResult &a = serial.result(i);
        const PairResult &b = parallel.result(i);
        ASSERT_EQ(a.sharedIpc.size(), b.sharedIpc.size());
        for (std::size_t app = 0; app < a.sharedIpc.size(); ++app) {
            EXPECT_EQ(a.sharedIpc[app], b.sharedIpc[app])
                << "job " << i << " app " << app;
            EXPECT_EQ(a.aloneIpc[app], b.aloneIpc[app])
                << "job " << i << " app " << app;
        }
        EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup) << "job " << i;
        EXPECT_EQ(a.unfairness, b.unfairness) << "job " << i;
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << "job " << i;
        EXPECT_EQ(a.stats.l2Tlb.hits, b.stats.l2Tlb.hits)
            << "job " << i;
        EXPECT_EQ(a.stats.dram.busBusy[0], b.stats.dram.busBusy[0])
            << "job " << i;
    }
}

TEST(Sweep, AloneCacheSharedAcrossWorkers)
{
    // Two jobs over the same pair at the same design point need the
    // same two alone runs: the shared memo must end up with exactly
    // one entry per (config, bench), not one per worker.
    SweepRunner sweep(shortOptions(), 4);
    const GpuConfig arch = archByName("maxwell");
    for (int i = 0; i < 4; ++i)
        sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"}});
    sweep.run();
    EXPECT_EQ(sweep.aloneCacheSize(), 2u);

    // A second batch over the same workload reuses the memo.
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"}});
    sweep.run();
    EXPECT_EQ(sweep.aloneCacheSize(), 2u);
}

TEST(Sweep, SharedOnlyModeSkipsAloneRuns)
{
    SweepRunner sweep(shortOptions(), 2);
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"},
                  SweepMode::SharedOnly});
    sweep.run();
    EXPECT_EQ(sweep.aloneCacheSize(), 0u);
    EXPECT_EQ(sweep.result(0).sharedIpc.size(), 2u);
    EXPECT_TRUE(sweep.result(0).aloneIpc.empty());
    EXPECT_EQ(sweep.result(0).weightedSpeedup, 0.0);
}

TEST(Sweep, ResultIndicesFollowSubmissionOrder)
{
    SweepRunner sweep(shortOptions(), 4);
    const GpuConfig arch = archByName("maxwell");
    const std::size_t a = sweep.submit({arch, DesignPoint::SharedTlb,
                                        {"HISTO"},
                                        SweepMode::SharedOnly});
    const std::size_t b = sweep.submit(
        {arch, DesignPoint::SharedTlb, {"LPS"}, SweepMode::SharedOnly});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    sweep.run();

    // Distinguishable results: the two benches run different
    // instruction mixes, so their IPCs differ.
    Evaluator eval(shortOptions());
    const GpuStats histo =
        eval.runShared(arch, DesignPoint::SharedTlb, {"HISTO"});
    EXPECT_EQ(sweep.result(a).stats.ipc[0], histo.ipc[0]);
}

TEST(Sweep, WorkerExceptionPropagates)
{
    SweepRunner sweep(shortOptions(), 2);
    const GpuConfig arch = archByName("maxwell");
    GpuConfig broken = arch;
    broken.l2Tlb.entries = 0; // rejected by validateConfig
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    sweep.submit({broken, DesignPoint::SharedTlb, {"LPS"},
                  SweepMode::SharedOnly});
    EXPECT_THROW(sweep.run(), ConfigError);
}

TEST(Sweep, JobsEnvVariableParsing)
{
    // sweepJobs() itself reads the environment; exercise the parse
    // rules via setenv round-trips.
    setenv("MASK_BENCH_JOBS", "3", 1);
    EXPECT_EQ(sweepJobs(), 3u);
    setenv("MASK_BENCH_JOBS", "1", 1);
    EXPECT_EQ(sweepJobs(), 1u);
    setenv("MASK_BENCH_JOBS", "0", 1);
    EXPECT_GE(sweepJobs(), 1u); // hardware concurrency, at least 1
    unsetenv("MASK_BENCH_JOBS");
    EXPECT_EQ(sweepJobs(), 1u);
}

TEST(AloneIpcCache, SameNameDifferentConfigGetsDistinctEntries)
{
    // Regression for the old name-keyed memo: two architectures that
    // share cfg.name but differ in a behavioural parameter (the
    // sec73 sweep pattern) must not share alone IPCs.
    GpuConfig small = archByName("maxwell");
    GpuConfig large = archByName("maxwell");
    small.l2Tlb.entries = 64;
    large.l2Tlb.entries = 8192;
    ASSERT_EQ(small.name, large.name);

    // 3DS is TLB-sensitive, so the two TLB sizes must also produce
    // measurably different alone IPCs (windows long enough to miss).
    RunOptions options;
    options.warmup = 10000;
    options.measure = 40000;
    Evaluator eval(options);
    const double ipc_small =
        eval.aloneIpc(small, DesignPoint::SharedTlb, "3DS", 15);
    EXPECT_EQ(eval.aloneCacheSize(), 1u);
    const double ipc_large =
        eval.aloneIpc(large, DesignPoint::SharedTlb, "3DS", 15);
    EXPECT_EQ(eval.aloneCacheSize(), 2u);

    // And a repeated query hits the memo instead of adding entries.
    EXPECT_EQ(
        eval.aloneIpc(small, DesignPoint::SharedTlb, "3DS", 15),
        ipc_small);
    EXPECT_EQ(eval.aloneCacheSize(), 2u);

    // The tiny TLB must actually simulate differently.
    EXPECT_NE(ipc_small, ipc_large);
}

TEST(ConfigFingerprint, IgnoresNameCoversEveryBehaviouralField)
{
    const GpuConfig base = archByName("maxwell");

    GpuConfig renamed = base;
    renamed.name = "something-else";
    EXPECT_EQ(configFingerprint(base), configFingerprint(renamed));

    GpuConfig changed = base;
    changed.l2Tlb.entries *= 2;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.seed += 1;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.mask.tlbTokens = !changed.mask.tlbTokens;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.coreShares = {10, 20};
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.mask.initialTokenFraction += 0.01;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.harden.watchdog.sweepInterval += 1;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.dram.tRcd += 1;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));
}

TEST(ConfigFingerprint, DesignPointsAreDistinguished)
{
    const GpuConfig base = archByName("maxwell");
    std::vector<std::uint64_t> prints;
    for (const DesignPoint point : kAllDesignPoints)
        prints.push_back(
            configFingerprint(applyDesignPoint(base, point)));
    for (std::size_t i = 0; i < prints.size(); ++i)
        for (std::size_t j = i + 1; j < prints.size(); ++j)
            EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
}
