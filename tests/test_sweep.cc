/**
 * Tests for the parallel workload-sweep engine: parallel results must
 * be identical to serial ones, the shared alone-IPC memo must dedup
 * across workers, the memo key must distinguish configurations that
 * share a name (the fingerprint regression), and the fault-tolerance
 * layer must contain failures (outcomes, retries, deadlines,
 * subprocess isolation, journal resume) without perturbing the
 * surviving jobs' results by a single bit.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/config.hh"
#include "sim/cancel.hh"
#include "sim/crash_repro.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/sweep_io.hh"

using namespace mask;

namespace {

RunOptions
shortOptions()
{
    RunOptions options;
    options.warmup = 2000;
    options.measure = 6000;
    return options;
}

std::vector<SweepJob>
sampleJobs()
{
    const GpuConfig arch = archByName("maxwell");
    std::vector<SweepJob> jobs;
    for (const DesignPoint point :
         {DesignPoint::SharedTlb, DesignPoint::Mask,
          DesignPoint::Ideal}) {
        jobs.push_back({arch, point, {"HISTO", "LPS"}});
        jobs.push_back({arch, point, {"3DS", "RED"}});
    }
    return jobs;
}

/** Unique-ish temp path under the build dir (no clock/random: gtest
 *  runs each test in its own ctest process, so the PID suffices). */
std::string
tempPath(const std::string &tag)
{
    return "sweep_test_" + tag + "_" + std::to_string(::getpid()) +
           ".tmp";
}

/** Synthetic distinguishable result for executor-driven tests. */
PairResult
syntheticResult(double ipc)
{
    PairResult result;
    result.sharedIpc = {ipc, ipc / 2};
    result.aloneIpc = {ipc * 2, ipc};
    result.weightedSpeedup = 1.5;
    result.unfairness = 2.0;
    result.ipcThroughput = ipc * 1.5;
    result.stats.cycles = 1234;
    result.stats.ipc = result.sharedIpc;
    return result;
}

} // namespace

TEST(Sweep, ParallelResultsIdenticalToSerial)
{
    const std::vector<SweepJob> jobs = sampleJobs();

    SweepRunner serial(shortOptions(), 1);
    SweepRunner parallel(shortOptions(), 4);
    for (const SweepJob &job : jobs) {
        serial.submit(job);
        parallel.submit(job);
    }
    serial.run();
    parallel.run();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const PairResult &a = serial.result(i);
        const PairResult &b = parallel.result(i);
        ASSERT_EQ(a.sharedIpc.size(), b.sharedIpc.size());
        for (std::size_t app = 0; app < a.sharedIpc.size(); ++app) {
            EXPECT_EQ(a.sharedIpc[app], b.sharedIpc[app])
                << "job " << i << " app " << app;
            EXPECT_EQ(a.aloneIpc[app], b.aloneIpc[app])
                << "job " << i << " app " << app;
        }
        EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup) << "job " << i;
        EXPECT_EQ(a.unfairness, b.unfairness) << "job " << i;
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << "job " << i;
        EXPECT_EQ(a.stats.l2Tlb.hits, b.stats.l2Tlb.hits)
            << "job " << i;
        EXPECT_EQ(a.stats.dram.busBusy[0], b.stats.dram.busBusy[0])
            << "job " << i;
    }
}

TEST(Sweep, AloneCacheSharedAcrossWorkers)
{
    // Two jobs over the same pair at the same design point need the
    // same two alone runs: the shared memo must end up with exactly
    // one entry per (config, bench), not one per worker.
    SweepRunner sweep(shortOptions(), 4);
    const GpuConfig arch = archByName("maxwell");
    for (int i = 0; i < 4; ++i)
        sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"}});
    sweep.run();
    EXPECT_EQ(sweep.aloneCacheSize(), 2u);

    // A second batch over the same workload reuses the memo.
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"}});
    sweep.run();
    EXPECT_EQ(sweep.aloneCacheSize(), 2u);
}

TEST(Sweep, SharedOnlyModeSkipsAloneRuns)
{
    SweepRunner sweep(shortOptions(), 2);
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"},
                  SweepMode::SharedOnly});
    sweep.run();
    EXPECT_EQ(sweep.aloneCacheSize(), 0u);
    EXPECT_EQ(sweep.result(0).sharedIpc.size(), 2u);
    EXPECT_TRUE(sweep.result(0).aloneIpc.empty());
    EXPECT_EQ(sweep.result(0).weightedSpeedup, 0.0);
}

TEST(Sweep, ResultIndicesFollowSubmissionOrder)
{
    SweepRunner sweep(shortOptions(), 4);
    const GpuConfig arch = archByName("maxwell");
    const std::size_t a = sweep.submit({arch, DesignPoint::SharedTlb,
                                        {"HISTO"},
                                        SweepMode::SharedOnly});
    const std::size_t b = sweep.submit(
        {arch, DesignPoint::SharedTlb, {"LPS"}, SweepMode::SharedOnly});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    sweep.run();

    // Distinguishable results: the two benches run different
    // instruction mixes, so their IPCs differ.
    Evaluator eval(shortOptions());
    const GpuStats histo =
        eval.runShared(arch, DesignPoint::SharedTlb, {"HISTO"});
    EXPECT_EQ(sweep.result(a).stats.ipc[0], histo.ipc[0]);
}

TEST(Sweep, WorkerFailureIsIsolatedToItsJob)
{
    // One broken job must not sink the batch: run() records a Failed
    // outcome for it, result() rethrows the original exception, and
    // every other job's result is bit-identical to a clean run.
    SweepRunner sweep(shortOptions(), 2);
    const GpuConfig arch = archByName("maxwell");
    GpuConfig broken = arch;
    broken.l2Tlb.entries = 0; // rejected by validateConfig
    const std::size_t good = sweep.submit(
        {arch, DesignPoint::SharedTlb, {"HISTO"},
         SweepMode::SharedOnly});
    const std::size_t bad = sweep.submit(
        {broken, DesignPoint::SharedTlb, {"LPS"},
         SweepMode::SharedOnly});
    EXPECT_NO_THROW(sweep.run());

    EXPECT_EQ(sweep.outcome(good).status, SweepStatus::Ok);
    EXPECT_EQ(sweep.outcome(bad).status, SweepStatus::Failed);
    EXPECT_EQ(sweep.outcome(bad).attempts, 1u);
    EXPECT_FALSE(sweep.outcome(bad).error.empty());
    EXPECT_EQ(sweep.failedJobs(), 1u);
    EXPECT_THROW(sweep.result(bad), ConfigError);

    SweepRunner clean(shortOptions(), 1);
    clean.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    clean.run();
    EXPECT_EQ(encodePairResult(sweep.result(good)),
              encodePairResult(clean.result(0)));
}

TEST(Sweep, AloneMemoSurvivesFailedBatch)
{
    // A failure in one job of a batch must leave the shared alone-IPC
    // memo usable: the good job's alone runs land in the memo and a
    // follow-up batch reuses them.
    SweepRunner sweep(shortOptions(), 2);
    const GpuConfig arch = archByName("maxwell");
    GpuConfig broken = arch;
    broken.l2Tlb.entries = 0;
    const std::size_t good =
        sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"}});
    sweep.submit({broken, DesignPoint::SharedTlb, {"3DS", "RED"}});
    sweep.run();
    EXPECT_EQ(sweep.outcome(good).status, SweepStatus::Ok);
    EXPECT_EQ(sweep.aloneCacheSize(), 2u);

    const std::size_t again =
        sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO", "LPS"}});
    sweep.run();
    EXPECT_EQ(sweep.outcome(again).status, SweepStatus::Ok);
    EXPECT_EQ(sweep.aloneCacheSize(), 2u); // memo hit, no new runs
    EXPECT_EQ(encodePairResult(sweep.result(good)),
              encodePairResult(sweep.result(again)));
}

TEST(Sweep, RetryRecoversFromTransientFailure)
{
    SweepRunner sweep(shortOptions(), 1);
    SweepPolicy policy;
    policy.retries = 3;
    policy.backoffMs = 1;
    sweep.setPolicy(policy);

    int calls = 0;
    sweep.setExecutorForTest([&](Evaluator &, const SweepJob &) {
        if (++calls < 3)
            throw std::runtime_error("transient fault");
        return syntheticResult(1.0);
    });
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    sweep.run();
    EXPECT_EQ(sweep.outcome(0).status, SweepStatus::Ok);
    EXPECT_EQ(sweep.outcome(0).attempts, 3u);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(sweep.result(0).sharedIpc[0], 1.0);
}

TEST(Sweep, RetriesExhaustedReportsFailure)
{
    SweepRunner sweep(shortOptions(), 1);
    SweepPolicy policy;
    policy.retries = 2;
    policy.backoffMs = 1;
    sweep.setPolicy(policy);

    int calls = 0;
    sweep.setExecutorForTest(
        [&](Evaluator &, const SweepJob &) -> PairResult {
            ++calls;
            throw std::runtime_error("permanent fault");
        });
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    sweep.run();
    EXPECT_EQ(sweep.outcome(0).status, SweepStatus::Failed);
    EXPECT_EQ(sweep.outcome(0).attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(sweep.outcome(0).error, "permanent fault");
    EXPECT_THROW(sweep.result(0), std::runtime_error);
}

TEST(Sweep, DeadlineCancelsStuckJob)
{
    SweepRunner sweep(shortOptions(), 1);
    SweepPolicy policy;
    policy.timeoutMs = 100;
    sweep.setPolicy(policy);

    sweep.setExecutorForTest(
        [](Evaluator &, const SweepJob &) -> PairResult {
            for (;;) { // a stuck simulation, cooperatively cancellable
                pollCancellation();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    sweep.run();
    EXPECT_EQ(sweep.outcome(0).status, SweepStatus::TimedOut);
    EXPECT_NE(sweep.outcome(0).error.find("MASK_SWEEP_TIMEOUT_MS"),
              std::string::npos);
    EXPECT_THROW(sweep.result(0), std::runtime_error);
}

TEST(Sweep, JournalResumeSkipsCompletedJobs)
{
    const std::string journal = tempPath("journal");
    std::remove(journal.c_str());
    const GpuConfig arch = archByName("maxwell");

    SweepPolicy policy;
    policy.journalPath = journal;

    SweepRunner first(shortOptions(), 1);
    first.setPolicy(policy);
    first.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    first.submit({arch, DesignPoint::SharedTlb, {"LPS"},
                  SweepMode::SharedOnly});
    first.run();
    EXPECT_EQ(first.journalHits(), 0u);
    ASSERT_EQ(first.failedJobs(), 0u);

    // A resumed runner loads both results instead of simulating; if it
    // did simulate, the poisoned executor would throw.
    SweepRunner resumed(shortOptions(), 1);
    resumed.setPolicy(policy);
    resumed.setExecutorForTest(
        [](Evaluator &, const SweepJob &) -> PairResult {
            throw std::runtime_error("resume should not re-simulate");
        });
    resumed.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                    SweepMode::SharedOnly});
    resumed.submit({arch, DesignPoint::SharedTlb, {"LPS"},
                    SweepMode::SharedOnly});
    resumed.run();
    EXPECT_EQ(resumed.journalHits(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(resumed.outcome(i).status, SweepStatus::Ok);
        EXPECT_TRUE(resumed.outcome(i).fromJournal);
        EXPECT_EQ(encodePairResult(resumed.result(i)),
                  encodePairResult(first.result(i)));
    }
    std::remove(journal.c_str());
}

TEST(Sweep, JournalResumeResimulatesOnlyFailedJobs)
{
    const std::string journal = tempPath("journal_fail");
    std::remove(journal.c_str());
    const GpuConfig arch = archByName("maxwell");

    SweepPolicy policy;
    policy.journalPath = journal;

    SweepRunner first(shortOptions(), 1);
    first.setPolicy(policy);
    first.setExecutorForTest(
        [](Evaluator &, const SweepJob &job) -> PairResult {
            if (job.benches[0] == "LPS")
                throw std::runtime_error("injected failure");
            return syntheticResult(2.0);
        });
    first.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    first.submit({arch, DesignPoint::SharedTlb, {"LPS"},
                  SweepMode::SharedOnly});
    first.run();
    EXPECT_EQ(first.outcome(1).status, SweepStatus::Failed);

    // The resume loads the Ok job and re-simulates only the failure.
    int simulated = 0;
    SweepRunner resumed(shortOptions(), 1);
    resumed.setPolicy(policy);
    resumed.setExecutorForTest(
        [&](Evaluator &, const SweepJob &) {
            ++simulated;
            return syntheticResult(3.0);
        });
    resumed.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                    SweepMode::SharedOnly});
    resumed.submit({arch, DesignPoint::SharedTlb, {"LPS"},
                    SweepMode::SharedOnly});
    resumed.run();
    EXPECT_EQ(simulated, 1);
    EXPECT_TRUE(resumed.outcome(0).fromJournal);
    EXPECT_FALSE(resumed.outcome(1).fromJournal);
    EXPECT_EQ(resumed.outcome(1).status, SweepStatus::Ok);
    EXPECT_EQ(resumed.result(0).sharedIpc[0], 2.0);
    EXPECT_EQ(resumed.result(1).sharedIpc[0], 3.0);
    std::remove(journal.c_str());
}

TEST(Sweep, IsolatedModeMatchesInProcessBitExactly)
{
    const GpuConfig arch = archByName("maxwell");

    SweepRunner inproc(shortOptions(), 1);
    inproc.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                   SweepMode::SharedOnly});
    inproc.submit({arch, DesignPoint::Mask, {"HISTO", "LPS"}});
    inproc.run();

    SweepRunner isolated(shortOptions(), 1);
    SweepPolicy policy;
    policy.isolate = true;
    isolated.setPolicy(policy);
    isolated.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                     SweepMode::SharedOnly});
    isolated.submit({arch, DesignPoint::Mask, {"HISTO", "LPS"}});
    isolated.run();

    for (std::size_t i = 0; i < 2; ++i) {
        ASSERT_EQ(isolated.outcome(i).status, SweepStatus::Ok)
            << isolated.outcome(i).error;
        EXPECT_EQ(encodePairResult(isolated.result(i)),
                  encodePairResult(inproc.result(i)));
    }
}

TEST(Sweep, IsolatedCrashIsContainedAndLeavesRepro)
{
    // MASK_SWEEP_FAULT_CRASH segfaults job 1 inside the forked child;
    // the parent must classify it, harvest the child's signal-repro
    // file, and finish job 0 untouched.
    setenv("MASK_SWEEP_FAULT_CRASH", "1", 1);
    SweepRunner sweep(shortOptions(), 1);
    SweepPolicy policy;
    policy.isolate = true;
    sweep.setPolicy(policy);
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::SharedTlb, {"HISTO"},
                  SweepMode::SharedOnly});
    sweep.submit({arch, DesignPoint::SharedTlb, {"LPS"},
                  SweepMode::SharedOnly});
    sweep.run();
    unsetenv("MASK_SWEEP_FAULT_CRASH");

    EXPECT_EQ(sweep.outcome(0).status, SweepStatus::Ok);
    ASSERT_EQ(sweep.outcome(1).status, SweepStatus::Crashed);
    EXPECT_NE(sweep.outcome(1).error.find("SIGSEGV"),
              std::string::npos)
        << sweep.outcome(1).error;

    // The harvested repro replays the job's exact configuration.
    ASSERT_FALSE(sweep.outcome(1).reproPath.empty());
    const CrashRepro repro = loadRepro(sweep.outcome(1).reproPath);
    EXPECT_EQ(repro.module, "fatal-signal");
    EXPECT_NE(repro.detail.find("SIGSEGV"), std::string::npos);
    ASSERT_EQ(repro.benches.size(), 1u);
    EXPECT_EQ(repro.benches[0], "LPS");
    std::remove(sweep.outcome(1).reproPath.c_str());
}

TEST(Sweep, BackoffDoublesAndCaps)
{
    SweepPolicy policy;
    policy.backoffMs = 100;
    EXPECT_EQ(sweepBackoffMs(policy, 0), 100u);
    EXPECT_EQ(sweepBackoffMs(policy, 1), 200u);
    EXPECT_EQ(sweepBackoffMs(policy, 2), 400u);
    EXPECT_EQ(sweepBackoffMs(policy, 10), 5000u); // capped
    EXPECT_EQ(sweepBackoffMs(policy, 63), 5000u); // no shift overflow
    policy.backoffMs = 0;
    EXPECT_EQ(sweepBackoffMs(policy, 5), 0u);
}

TEST(Sweep, PolicyFromEnvironment)
{
    setenv("MASK_SWEEP_TIMEOUT_MS", "2500", 1);
    setenv("MASK_SWEEP_RETRIES", "2", 1);
    setenv("MASK_SWEEP_BACKOFF_MS", "50", 1);
    setenv("MASK_SWEEP_ISOLATE", "1", 1);
    setenv("MASK_SWEEP_JOURNAL", "/tmp/j.jsonl", 1);
    const SweepPolicy policy = sweepPolicyFromEnv();
    EXPECT_EQ(policy.timeoutMs, 2500u);
    EXPECT_EQ(policy.retries, 2u);
    EXPECT_EQ(policy.backoffMs, 50u);
    EXPECT_TRUE(policy.isolate);
    EXPECT_EQ(policy.journalPath, "/tmp/j.jsonl");

    unsetenv("MASK_SWEEP_TIMEOUT_MS");
    unsetenv("MASK_SWEEP_RETRIES");
    unsetenv("MASK_SWEEP_BACKOFF_MS");
    unsetenv("MASK_SWEEP_ISOLATE");
    unsetenv("MASK_SWEEP_JOURNAL");
    const SweepPolicy defaults = sweepPolicyFromEnv();
    EXPECT_EQ(defaults.timeoutMs, 0u);
    EXPECT_EQ(defaults.retries, 0u);
    EXPECT_EQ(defaults.backoffMs, 100u);
    EXPECT_FALSE(defaults.isolate);
    EXPECT_TRUE(defaults.journalPath.empty());
}

TEST(SweepIo, EncodeDecodeRoundTripsExactly)
{
    // Round-trip a real simulation result: every field, bit-exact.
    SweepRunner sweep(shortOptions(), 1);
    const GpuConfig arch = archByName("maxwell");
    sweep.submit({arch, DesignPoint::Mask, {"HISTO", "LPS"}});
    sweep.run();
    const PairResult &original = sweep.result(0);

    const std::string blob = encodePairResult(original);
    const PairResult decoded = decodePairResult(blob);
    EXPECT_EQ(encodePairResult(decoded), blob);
    EXPECT_EQ(decoded.weightedSpeedup, original.weightedSpeedup);
    EXPECT_EQ(decoded.stats.cycles, original.stats.cycles);
    EXPECT_EQ(decoded.stats.ipc, original.stats.ipc);
    EXPECT_EQ(decoded.stats.dram.rowHits, original.stats.dram.rowHits);

    EXPECT_THROW(decodePairResult("v0 bogus"), std::runtime_error);
    EXPECT_THROW(decodePairResult(""), std::runtime_error);
}

TEST(CrashRepro, FatalSignalHandlerFlushesArmedRepro)
{
    // Raise a real SIGSEGV in a forked child with an armed repro; the
    // handler must flush the record before the default disposition
    // kills the child.
    const std::string path = tempPath("sigrepro");
    std::remove(path.c_str());
    const GpuConfig arch = archByName("maxwell");

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        const ScopedSignalRepro armed(
            makeRepro(arch, DesignPoint::Mask, {"HISTO"}, 123, 456),
            path);
        ::raise(SIGSEGV);
        std::_Exit(0); // unreachable
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    const CrashRepro repro = loadRepro(path);
    EXPECT_EQ(repro.arch, arch.name);
    EXPECT_EQ(repro.design, designPointName(DesignPoint::Mask));
    EXPECT_EQ(repro.warmup, 123u);
    EXPECT_EQ(repro.measure, 456u);
    EXPECT_EQ(repro.module, "fatal-signal");
    EXPECT_NE(repro.detail.find("SIGSEGV"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Sweep, JobsEnvVariableParsing)
{
    // sweepJobs() itself reads the environment; exercise the parse
    // rules via setenv round-trips.
    setenv("MASK_BENCH_JOBS", "3", 1);
    EXPECT_EQ(sweepJobs(), 3u);
    setenv("MASK_BENCH_JOBS", "1", 1);
    EXPECT_EQ(sweepJobs(), 1u);
    setenv("MASK_BENCH_JOBS", "0", 1);
    EXPECT_GE(sweepJobs(), 1u); // hardware concurrency, at least 1
    unsetenv("MASK_BENCH_JOBS");
    EXPECT_EQ(sweepJobs(), 1u);
}

TEST(AloneIpcCache, SameNameDifferentConfigGetsDistinctEntries)
{
    // Regression for the old name-keyed memo: two architectures that
    // share cfg.name but differ in a behavioural parameter (the
    // sec73 sweep pattern) must not share alone IPCs.
    GpuConfig small = archByName("maxwell");
    GpuConfig large = archByName("maxwell");
    small.l2Tlb.entries = 64;
    large.l2Tlb.entries = 8192;
    ASSERT_EQ(small.name, large.name);

    // 3DS is TLB-sensitive, so the two TLB sizes must also produce
    // measurably different alone IPCs (windows long enough to miss).
    RunOptions options;
    options.warmup = 10000;
    options.measure = 40000;
    Evaluator eval(options);
    const double ipc_small =
        eval.aloneIpc(small, DesignPoint::SharedTlb, "3DS", 15);
    EXPECT_EQ(eval.aloneCacheSize(), 1u);
    const double ipc_large =
        eval.aloneIpc(large, DesignPoint::SharedTlb, "3DS", 15);
    EXPECT_EQ(eval.aloneCacheSize(), 2u);

    // And a repeated query hits the memo instead of adding entries.
    EXPECT_EQ(
        eval.aloneIpc(small, DesignPoint::SharedTlb, "3DS", 15),
        ipc_small);
    EXPECT_EQ(eval.aloneCacheSize(), 2u);

    // The tiny TLB must actually simulate differently.
    EXPECT_NE(ipc_small, ipc_large);
}

TEST(ConfigFingerprint, IgnoresNameCoversEveryBehaviouralField)
{
    const GpuConfig base = archByName("maxwell");

    GpuConfig renamed = base;
    renamed.name = "something-else";
    EXPECT_EQ(configFingerprint(base), configFingerprint(renamed));

    GpuConfig changed = base;
    changed.l2Tlb.entries *= 2;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.seed += 1;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.mask.tlbTokens = !changed.mask.tlbTokens;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.coreShares = {10, 20};
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.mask.initialTokenFraction += 0.01;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.harden.watchdog.sweepInterval += 1;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));

    changed = base;
    changed.dram.tRcd += 1;
    EXPECT_NE(configFingerprint(base), configFingerprint(changed));
}

TEST(ConfigFingerprint, DesignPointsAreDistinguished)
{
    const GpuConfig base = archByName("maxwell");
    std::vector<std::uint64_t> prints;
    for (const DesignPoint point : kAllDesignPoints)
        prints.push_back(
            configFingerprint(applyDesignPoint(base, point)));
    for (std::size_t i = 0; i < prints.size(); ++i)
        for (std::size_t j = i + 1; j < prints.size(); ++j)
            EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
}
