/**
 * @file
 * Tests for the evaluation runner (shared runs, alone-IPC caching,
 * metric assembly, time multiplexing).
 */

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/time_mux.hh"

namespace mask {
namespace {

GpuConfig
smallArch()
{
    GpuConfig cfg;
    cfg.name = "small";
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

RunOptions
fastOptions()
{
    RunOptions options;
    options.warmup = 2000;
    options.measure = 8000;
    return options;
}

TEST(Runner, EvaluateProducesConsistentMetrics)
{
    Evaluator eval(fastOptions());
    const PairResult r = eval.evaluate(smallArch(),
                                       DesignPoint::SharedTlb,
                                       {"LUD", "GUP"});
    ASSERT_EQ(r.sharedIpc.size(), 2u);
    ASSERT_EQ(r.aloneIpc.size(), 2u);
    EXPECT_GT(r.weightedSpeedup, 0.0);
    EXPECT_LE(r.weightedSpeedup, 2.5);
    EXPECT_GE(r.unfairness, 0.9);
    EXPECT_NEAR(r.ipcThroughput, r.sharedIpc[0] + r.sharedIpc[1],
                1e-12);
}

TEST(Runner, AloneIpcIsCached)
{
    Evaluator eval(fastOptions());
    const double first =
        eval.aloneIpc(smallArch(), DesignPoint::SharedTlb, "LUD", 2);
    const double second =
        eval.aloneIpc(smallArch(), DesignPoint::SharedTlb, "LUD", 2);
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(Runner, AloneIpcDependsOnCoreCount)
{
    Evaluator eval(fastOptions());
    const double two =
        eval.aloneIpc(smallArch(), DesignPoint::Ideal, "LUD", 2);
    const double four =
        eval.aloneIpc(smallArch(), DesignPoint::Ideal, "LUD", 4);
    EXPECT_GT(four, two * 1.2);
}

TEST(Runner, RunSharedReportsBothApps)
{
    Evaluator eval(fastOptions());
    const GpuStats stats = eval.runShared(
        smallArch(), DesignPoint::SharedTlb, {"LUD", "NN"});
    ASSERT_EQ(stats.ipc.size(), 2u);
    EXPECT_GT(stats.ipc[0], 0.0);
    EXPECT_GT(stats.ipc[1], 0.0);
}

TEST(Runner, PartitionSearchNotWorseThanEvenSplit)
{
    Evaluator eval(fastOptions());
    const GpuConfig arch = smallArch();
    const PairResult even =
        eval.evaluate(arch, DesignPoint::Ideal, {"LUD", "GUP"});
    const PairResult best = searchBestPartition(
        eval, arch, DesignPoint::Ideal, {"LUD", "GUP"}, 1);
    EXPECT_GE(best.weightedSpeedup, even.weightedSpeedup - 1e-9);
}

TEST(Runner, DefaultOptionsHonorEnvironment)
{
    ::setenv("MASK_BENCH_CYCLES", "12345", 1);
    const RunOptions options = defaultRunOptions();
    EXPECT_EQ(options.measure, 12345u);
    ::unsetenv("MASK_BENCH_CYCLES");

    ::setenv("MASK_BENCH_FAST", "1", 1);
    const RunOptions fast = defaultRunOptions();
    EXPECT_LT(fast.measure, 100000u);
    ::unsetenv("MASK_BENCH_FAST");
}

TEST(TimeMux, OverheadIsPositiveAndGrowsWithProcesses)
{
    GpuConfig cfg = smallArch();
    TimeMuxOptions options;
    options.quantum = 2000;
    options.workPerProcess = 30000;
    options.switchBaseCost = 300;
    options.switchPerProcessCost = 150;

    const BenchmarkParams &bench = findBenchmark("LUD");
    const TimeMuxResult two = runTimeMux(cfg, bench, 2, options);
    const TimeMuxResult five = runTimeMux(cfg, bench, 5, options);

    EXPECT_GT(two.muxCycles, 0u);
    EXPECT_GT(two.serialCycles, 0u);
    EXPECT_GT(two.overhead(), 0.0);
    EXPECT_GT(five.overhead(), two.overhead());
}

TEST(TimeMux, SerialTimeScalesWithProcessCount)
{
    GpuConfig cfg = smallArch();
    TimeMuxOptions options;
    options.quantum = 2000;
    options.workPerProcess = 20000;
    const BenchmarkParams &bench = findBenchmark("LUD");
    const TimeMuxResult two = runTimeMux(cfg, bench, 2, options);
    const TimeMuxResult four = runTimeMux(cfg, bench, 4, options);
    EXPECT_NEAR(static_cast<double>(four.serialCycles),
                2.0 * static_cast<double>(two.serialCycles),
                0.01 * static_cast<double>(four.serialCycles));
}

TEST(Presets, AllArchesConstruct)
{
    for (const auto name : allArchNames()) {
        const GpuConfig cfg = archByName(name);
        EXPECT_GT(cfg.numCores, 0u);
        EXPECT_GT(cfg.dram.channels, 0u);
        EXPECT_EQ(cfg.name, std::string(name));
    }
}

TEST(Presets, DesignPointsConfigureMechanisms)
{
    const GpuConfig base = maxwellConfig();
    EXPECT_EQ(applyDesignPoint(base, DesignPoint::Ideal).design,
              TranslationDesign::Ideal);
    EXPECT_EQ(applyDesignPoint(base, DesignPoint::PwCache).design,
              TranslationDesign::PwCache);
    const GpuConfig mask_cfg =
        applyDesignPoint(base, DesignPoint::Mask);
    EXPECT_TRUE(mask_cfg.mask.tlbTokens);
    EXPECT_TRUE(mask_cfg.mask.l2Bypass);
    EXPECT_TRUE(mask_cfg.mask.dramSched);
    const GpuConfig tlb_only =
        applyDesignPoint(base, DesignPoint::MaskTlb);
    EXPECT_TRUE(tlb_only.mask.tlbTokens);
    EXPECT_FALSE(tlb_only.mask.l2Bypass);
    EXPECT_FALSE(tlb_only.mask.dramSched);
    const GpuConfig stat =
        applyDesignPoint(base, DesignPoint::Static);
    EXPECT_TRUE(stat.partition.partitionL2);
    EXPECT_TRUE(stat.partition.partitionDramChannels);
}

TEST(Presets, DesignPointNamesAreUnique)
{
    std::set<std::string> names;
    for (const DesignPoint point : kAllDesignPoints)
        names.insert(designPointName(point));
    EXPECT_EQ(names.size(), 8u);
}

TEST(Presets, CoreShareEvenSplit)
{
    GpuConfig cfg;
    cfg.numCores = 30;
    EXPECT_EQ(coreShareOf(cfg, 2, 0), 15u);
    EXPECT_EQ(coreShareOf(cfg, 2, 1), 15u);
    EXPECT_EQ(coreShareOf(cfg, 4, 0), 8u);
    EXPECT_EQ(coreShareOf(cfg, 4, 3), 7u);
    cfg.coreShares = {20, 10};
    EXPECT_EQ(coreShareOf(cfg, 2, 0), 20u);
    EXPECT_EQ(coreShareOf(cfg, 2, 1), 10u);
}

} // namespace
} // namespace mask
