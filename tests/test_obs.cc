/**
 * @file
 * Observability-layer tests (DESIGN.md §13): the telemetry exporters
 * are observation-only and deterministic. Same-seed runs must produce
 * byte-identical timeseries/trace files; turning tracing on must not
 * change a single bit of GpuStats across design points and fault
 * injection; the per-cycle and cycle-skipping loops must sample
 * identical rows; and a snapshot save/resume pair must emit exactly
 * the reference trace-event stream, split across two files with no
 * duplicate or missing duration events. Plus unit coverage for the
 * registry schema, JSON formatting, env-knob parsing, due/rearm
 * arithmetic, and the pinned tickOne() stage-name order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/config.hh"
#include "obs/registry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/gpu.hh"
#include "sim/runner.hh"
#include "sim/snapshot.hh"
#include "sim/sweep_io.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

constexpr Cycle kWarmup = 3000;
constexpr Cycle kMeasure = 6000;

GpuConfig
smallConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

const BenchmarkParams &
benchA()
{
    static const BenchmarkParams p = [] {
        BenchmarkParams q;
        q.name = "obs-a";
        q.hotPages = 4;
        q.coldPages = 5000;
        q.hotFraction = 0.1;
        q.pageRun = 2;
        q.streamFraction = 0.6;
        q.blockWarps = 16;
        q.randWindow = 4;
        q.stepAccesses = 24;
        q.computeMean = 4;
        q.memDivergence = 2;
        q.lineReuse = 0.3;
        return q;
    }();
    return p;
}

const BenchmarkParams &
benchB()
{
    static const BenchmarkParams p = [] {
        BenchmarkParams q = benchA();
        q.name = "obs-b";
        q.coldPages = 100;
        q.pageRun = 8;
        return q;
    }();
    return p;
}

std::unique_ptr<Gpu>
makeGpu(const GpuConfig &cfg)
{
    return std::make_unique<Gpu>(
        cfg, std::vector<AppDesc>{AppDesc{&benchA()}, AppDesc{&benchB()}});
}

GpuConfig
configFor(DesignPoint point, bool faults)
{
    GpuConfig cfg = applyDesignPoint(smallConfig(), point);
    if (faults) {
        cfg.harden.fault.enabled = true;
        cfg.harden.fault.seed = 7;
        cfg.harden.fault.dramDelayProb = 0.05;
        cfg.harden.fault.walkDropProb = 0.02;
        cfg.harden.fault.portStallProb = 0.01;
    }
    return cfg;
}

std::string
statsBlob(const GpuStats &stats)
{
    PairResult r;
    r.stats = stats;
    r.sharedIpc = stats.ipc;
    return encodePairResult(r);
}

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return data;
}

/** Obs options pointing both exporters at per-test temp files. */
obs::ObsOptions
optsFor(const std::string &tag, std::uint64_t interval = 1000)
{
    obs::ObsOptions opts;
    opts.timeseriesPath = tmpPath("obs_" + tag + ".timeseries.jsonl");
    opts.timeseriesInterval = interval;
    opts.tracePath = tmpPath("obs_" + tag + ".trace.json");
    return opts;
}

/**
 * The individual event lines of a Chrome trace file, in emission
 * order (the writer emits one event per line inside "traceEvents",
 * comma-prefixed after the first).
 */
std::vector<std::string>
traceEventLines(const std::string &path)
{
    std::vector<std::string> events;
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::string line;
    while (std::getline(in, line)) {
        std::string_view v{line};
        // The writer separates events with commas; strip them so the
        // comparison sees only the event objects themselves.
        if (!v.empty() && v.front() == ',')
            v.remove_prefix(1);
        if (!v.empty() && v.back() == ',')
            v.remove_suffix(1);
        if (v.rfind("{\"name\"", 0) == 0)
            events.emplace_back(v);
    }
    return events;
}

/** Run warmup+measure with the given obs options; returns the blob. */
std::string
runWithObs(const GpuConfig &cfg, const obs::ObsOptions &opts,
           Cycle measure = kMeasure)
{
    const obs::ScopedObsOverride ov{opts};
    auto gpu = makeGpu(cfg);
    gpu->run(kWarmup);
    gpu->resetStats();
    gpu->run(measure);
    return statsBlob(gpu->collect());
    // ~Gpu flushes the timeseries and closes the trace file.
}

// ---------------------------------------------------------------------
// Registry / formatting / env-knob unit tests
// ---------------------------------------------------------------------

TEST(ObsRegistry, SchemaHeaderListsColumnsInOrder)
{
    obs::SeriesRegistry reg;
    EXPECT_EQ(reg.add({"a", "ratio", 0, "gauge", "first"}), 0u);
    EXPECT_EQ(reg.add({"b", "count", -1, "delta", "second"}), 1u);
    const std::string hdr = reg.schemaJson("mask-timeseries", 500);
    EXPECT_NE(hdr.find("\"schema\":\"mask-timeseries\""),
              std::string::npos);
    EXPECT_NE(hdr.find("\"version\":1"), std::string::npos);
    EXPECT_NE(hdr.find("\"interval\":500"), std::string::npos);
    // Column order in the header is the row value order.
    EXPECT_LT(hdr.find("\"name\":\"a\""), hdr.find("\"name\":\"b\""));
    EXPECT_EQ(hdr.find('\n'), std::string::npos) << "single line";
}

TEST(ObsRegistry, JsonEscapeAndNumberFormatting)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::jsonEscape(std::string("x\ny")), "x\\ny");
    EXPECT_EQ(obs::jsonEscape(std::string("x\001y")), "x\\u0001y");

    std::string out;
    obs::appendJsonNumber(out, 42.0);
    EXPECT_EQ(out, "42") << "integral doubles print as integers";
    out.clear();
    obs::appendJsonNumber(out, 0.25);
    EXPECT_EQ(out, "0.25");
    out.clear();
    obs::appendJsonNumber(out, 0.0 / 0.0);
    EXPECT_EQ(out, "0") << "non-finite must stay valid JSON";
}

TEST(ObsRegistry, EnvKnobsParse)
{
    ::setenv("MASK_TIMESERIES", "/tmp/x.jsonl", 1);
    ::setenv("MASK_TIMESERIES_INTERVAL", "1234", 1);
    ::setenv("MASK_TRACE", "/tmp/x.json", 1);
    ::setenv("MASK_TRACE_CATS", "tlb,dram,nonsense", 1);
    const obs::ObsOptions opts = obs::obsOptionsFromEnv();
    ::unsetenv("MASK_TIMESERIES");
    ::unsetenv("MASK_TIMESERIES_INTERVAL");
    ::unsetenv("MASK_TRACE");
    ::unsetenv("MASK_TRACE_CATS");

    EXPECT_TRUE(opts.timeseriesOn());
    EXPECT_EQ(opts.timeseriesInterval, 1234u);
    EXPECT_TRUE(opts.traceOn());
    // "tlb" and "dram" recognized, "nonsense" ignored.
    EXPECT_EQ(opts.traceCats,
              static_cast<std::uint32_t>(obs::TraceCat::kTlb) |
                  static_cast<std::uint32_t>(obs::TraceCat::kDram));

    // Unset knobs -> everything off, all-categories default.
    const obs::ObsOptions off = obs::obsOptionsFromEnv();
    EXPECT_FALSE(off.timeseriesOn());
    EXPECT_FALSE(off.traceOn());
    EXPECT_EQ(off.traceCats, 0xffffffffu);
}

TEST(ObsRegistry, ScopedOverrideWinsOverEnv)
{
    ::setenv("MASK_TIMESERIES", "/tmp/env.jsonl", 1);
    {
        obs::ObsOptions inner; // everything off
        const obs::ScopedObsOverride ov{inner};
        EXPECT_FALSE(obs::resolveObsOptions().timeseriesOn());
    }
    EXPECT_TRUE(obs::resolveObsOptions().timeseriesOn());
    ::unsetenv("MASK_TIMESERIES");
}

TEST(ObsRegistry, ConfigFingerprintIgnoresObsKnobs)
{
    const GpuConfig cfg = configFor(DesignPoint::Mask, false);
    const std::uint64_t before = configFingerprint(cfg);
    ::setenv("MASK_TIMESERIES", "/tmp/fp.jsonl", 1);
    ::setenv("MASK_TRACE", "/tmp/fp.json", 1);
    const std::uint64_t after = configFingerprint(cfg);
    ::unsetenv("MASK_TIMESERIES");
    ::unsetenv("MASK_TRACE");
    EXPECT_EQ(before, after)
        << "obs knobs must never invalidate checkpoints or journals";
}

// ---------------------------------------------------------------------
// Due/rearm arithmetic
// ---------------------------------------------------------------------

TEST(ObsTimeseries, DueAdvancesByInterval)
{
    obs::SeriesRegistry reg;
    reg.add({"x", "count", -1, "gauge", ""});
    obs::TimeseriesWriter ts(tmpPath("obs_due.jsonl"), reg, 100, 8);
    ASSERT_TRUE(ts.ok());
    EXPECT_EQ(ts.nextDue(), 100u) << "first sample at k=1, never 0";
    EXPECT_FALSE(ts.due(99));
    EXPECT_TRUE(ts.due(100));
    ts.record(100, {1.0});
    EXPECT_EQ(ts.nextDue(), 200u);
}

TEST(ObsTimeseries, RearmPicksSmallestMultipleNotBelowNow)
{
    obs::SeriesRegistry reg;
    reg.add({"x", "count", -1, "gauge", ""});
    obs::TimeseriesWriter ts(tmpPath("obs_rearm.jsonl"), reg, 100, 8);
    ts.rearm(250);
    EXPECT_EQ(ts.nextDue(), 300u);
    // Restoring exactly on a boundary samples that boundary: the
    // saving run stopped BEFORE ticking its save cycle, so the row is
    // still pending and must be emitted exactly once, by the resumer.
    ts.rearm(300);
    EXPECT_EQ(ts.nextDue(), 300u);
    ts.rearm(0);
    EXPECT_EQ(ts.nextDue(), 100u) << "cycle 0 is never a sample point";
}

TEST(ObsTimeseries, AperiodicNeverComesDue)
{
    obs::SeriesRegistry reg;
    reg.add({"x", "count", -1, "gauge", ""});
    obs::TimeseriesWriter ts(tmpPath("obs_aper.jsonl"), reg, 0, 8);
    EXPECT_FALSE(ts.due(0));
    EXPECT_GT(ts.nextDue(), std::uint64_t{1} << 62);
}

TEST(ObsTimeseries, OpenFailureDisablesWithoutAborting)
{
    obs::SeriesRegistry reg;
    reg.add({"x", "count", -1, "gauge", ""});
    obs::TimeseriesWriter ts("/nonexistent-dir/obs.jsonl", reg, 100, 8);
    EXPECT_FALSE(ts.ok());
    ts.record(100, {1.0}); // must not crash
    ts.flush();
}

// ---------------------------------------------------------------------
// Stage-name pinning (DESIGN.md §12)
// ---------------------------------------------------------------------

TEST(ObsStageNames, MatchTickOneOrderDocumentedInDesign)
{
    const char *const want[] = {"faults",  "dram",     "l2cache",
                                "pwcache", "l2tlb",    "walker",
                                "cores",   "samplers", "epoch",
                                "switches", "watchdog"};
    ASSERT_EQ(static_cast<std::size_t>(Gpu::kNumStages),
              sizeof(want) / sizeof(want[0]));
    for (std::size_t s = 0; s < Gpu::kNumStages; ++s)
        EXPECT_STREQ(Gpu::stageName(s), want[s]) << "stage " << s;
}

// ---------------------------------------------------------------------
// Observation-only + determinism, across designs and fault injection
// ---------------------------------------------------------------------

class ObsIdentity
    : public ::testing::TestWithParam<std::tuple<DesignPoint, bool>>
{
};

TEST_P(ObsIdentity, TracingOnDoesNotChangeStats)
{
    const auto [point, faults] = GetParam();
    const GpuConfig cfg = configFor(point, faults);
    const std::string tag = std::string("id_") +
                            designPointName(point) +
                            (faults ? "_f1" : "_f0");

    // Reference: obs fully off (explicit empty override, so a stray
    // MASK_TIMESERIES in the test environment cannot interfere).
    const std::string want = runWithObs(cfg, obs::ObsOptions{});

    const obs::ObsOptions opts = optsFor(tag);
    EXPECT_EQ(runWithObs(cfg, opts), want)
        << "telemetry perturbed simulated state";

    // And the files actually materialized with content.
    const std::string ts = readFile(opts.timeseriesPath);
    EXPECT_NE(ts.find("\"schema\":\"mask-timeseries\""),
              std::string::npos);
    EXPECT_NE(ts.find("\"cycle\":"), std::string::npos)
        << "no sample rows in " << opts.timeseriesPath;
    EXPECT_FALSE(traceEventLines(opts.tracePath).empty());

    std::remove(opts.timeseriesPath.c_str());
    std::remove(opts.tracePath.c_str());
}

TEST_P(ObsIdentity, SameSeedRunsProduceByteIdenticalFiles)
{
    const auto [point, faults] = GetParam();
    const GpuConfig cfg = configFor(point, faults);
    const std::string tag = std::string("rep_") +
                            designPointName(point) +
                            (faults ? "_f1" : "_f0");

    const obs::ObsOptions o1 = optsFor(tag + "_1");
    const obs::ObsOptions o2 = optsFor(tag + "_2");
    const std::string b1 = runWithObs(cfg, o1);
    const std::string b2 = runWithObs(cfg, o2);
    EXPECT_EQ(b1, b2);
    EXPECT_EQ(readFile(o1.timeseriesPath), readFile(o2.timeseriesPath));
    EXPECT_EQ(readFile(o1.tracePath), readFile(o2.tracePath));

    for (const auto &p : {o1.timeseriesPath, o1.tracePath,
                          o2.timeseriesPath, o2.tracePath})
        std::remove(p.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndFaults, ObsIdentity,
    ::testing::Values(
        std::make_tuple(DesignPoint::SharedTlb, false),
        std::make_tuple(DesignPoint::SharedTlb, true),
        std::make_tuple(DesignPoint::Mask, false),
        std::make_tuple(DesignPoint::Mask, true),
        std::make_tuple(DesignPoint::Ideal, false),
        std::make_tuple(DesignPoint::Ideal, true)));

// ---------------------------------------------------------------------
// Cycle-skip equivalence: the segmented skipTo() sampler must emit
// the identical rows the per-cycle loop samples at the same cycles.
// ---------------------------------------------------------------------

TEST(ObsCycleSkip, SkippingAndPerCycleLoopsSampleIdenticalRows)
{
    GpuConfig skip = configFor(DesignPoint::Mask, false);
    GpuConfig noskip = skip;
    noskip.cycleSkip = false;

    const obs::ObsOptions oSkip = optsFor("skip");
    const obs::ObsOptions oNoskip = optsFor("noskip");
    const std::string bSkip = runWithObs(skip, oSkip);
    const std::string bNoskip = runWithObs(noskip, oNoskip);

    EXPECT_EQ(bSkip, bNoskip);
    EXPECT_EQ(readFile(oSkip.timeseriesPath),
              readFile(oNoskip.timeseriesPath))
        << "skipTo() sampling diverged from per-cycle sampling";
    EXPECT_EQ(readFile(oSkip.tracePath), readFile(oNoskip.tracePath));

    for (const auto &p : {oSkip.timeseriesPath, oSkip.tracePath,
                          oNoskip.timeseriesPath, oNoskip.tracePath})
        std::remove(p.c_str());
}

// ---------------------------------------------------------------------
// Snapshot save/resume: the two trace files concatenate to exactly
// the uninterrupted run's event stream (no duplicates, no holes) and
// the timeseries rows likewise split cleanly at the save boundary.
// ---------------------------------------------------------------------

TEST(ObsSnapshot, SaveResumeTraceConcatenatesToReference)
{
    const GpuConfig cfg = configFor(DesignPoint::Mask, false);
    const std::uint64_t fp = configFingerprint(cfg);

    const obs::ObsOptions oRef = optsFor("snap_ref");
    const std::string want = runWithObs(cfg, oRef);

    // Save instance: stops (and is destroyed) halfway through the
    // measured window; its trace holds every event that COMPLETED by
    // then. In-flight walks/DRAM requests carry their start cycles in
    // the snapshot and surface in the resumer's trace.
    std::string image;
    const obs::ObsOptions oSave = optsFor("snap_save");
    {
        const obs::ScopedObsOverride ov{oSave};
        auto g1 = makeGpu(cfg);
        g1->run(kWarmup);
        g1->resetStats();
        g1->run(kMeasure / 2);
        image = renderSnapshot(fp, *g1);
    }

    const obs::ObsOptions oResume = optsFor("snap_resume");
    std::string got;
    {
        const obs::ScopedObsOverride ov{oResume};
        auto g2 = makeGpu(cfg);
        std::uint64_t cycle = 0;
        const std::string_view payload =
            validateSnapshotImage(image, fp, &cycle);
        StateReader reader(payload, cycle);
        g2->deserialize(reader);
        g2->run(kMeasure - kMeasure / 2);
        got = statsBlob(g2->collect());
    }
    EXPECT_EQ(got, want);

    auto ref_events = traceEventLines(oRef.tracePath);
    auto save_events = traceEventLines(oSave.tracePath);
    auto resume_events = traceEventLines(oResume.tracePath);
    ASSERT_FALSE(ref_events.empty());
    EXPECT_FALSE(save_events.empty());
    EXPECT_FALSE(resume_events.empty());

    std::vector<std::string> joined = save_events;
    joined.insert(joined.end(), resume_events.begin(),
                  resume_events.end());
    EXPECT_EQ(joined, ref_events)
        << "save+resume trace streams must concatenate to the "
           "uninterrupted run's stream";

    // Timeseries: the save and resume halves repeat the identical
    // schema header, their row cycles partition the reference run's
    // row cycles exactly (no duplicate or missing boundary row), and
    // every row is byte-identical to the reference — except the first
    // resumed row, whose per-interval rates and deltas deliberately
    // cover only the cycles since the restore (the window baseline is
    // host-side observer state and is never serialized; DESIGN.md
    // §13).
    auto tsLines = [](const std::string &path) {
        std::vector<std::string> lines;
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        return lines;
    };
    const auto ref_ts = tsLines(oRef.timeseriesPath);
    const auto save_ts = tsLines(oSave.timeseriesPath);
    const auto resume_ts = tsLines(oResume.timeseriesPath);
    ASSERT_GT(save_ts.size(), 1u);
    ASSERT_GT(resume_ts.size(), 1u);
    EXPECT_EQ(save_ts[0], ref_ts[0]) << "schema header";
    EXPECT_EQ(resume_ts[0], ref_ts[0]) << "schema header";
    ASSERT_EQ(save_ts.size() + resume_ts.size() - 1, ref_ts.size())
        << "save+resume row count must match the reference";
    for (std::size_t i = 1; i < save_ts.size(); ++i)
        EXPECT_EQ(save_ts[i], ref_ts[i]) << "pre-save row " << i;
    // First resumed row: the same sample cycle as the reference's
    // boundary row (emitted exactly once, by the resumer)...
    const std::string want_cycle =
        ref_ts[save_ts.size()].substr(
            0, ref_ts[save_ts.size()].find(','));
    EXPECT_EQ(resume_ts[1].substr(0, resume_ts[1].find(',')),
              want_cycle);
    // ...and every later row byte-identical again.
    for (std::size_t i = 2; i < resume_ts.size(); ++i)
        EXPECT_EQ(resume_ts[i], ref_ts[save_ts.size() + i - 1])
            << "post-restore row " << i;

    if (::testing::Test::HasFailure())
        return; // keep the files for inspection
    for (const auto &p :
         {oRef.timeseriesPath, oRef.tracePath, oSave.timeseriesPath,
          oSave.tracePath, oResume.timeseriesPath, oResume.tracePath})
        std::remove(p.c_str());
}

// ---------------------------------------------------------------------
// Category filtering
// ---------------------------------------------------------------------

TEST(ObsTrace, CategoryMaskFiltersEvents)
{
    const GpuConfig cfg = configFor(DesignPoint::Mask, false);
    obs::ObsOptions opts;
    opts.tracePath = tmpPath("obs_cats.trace.json");
    opts.traceCats = static_cast<std::uint32_t>(obs::TraceCat::kDram);
    runWithObs(cfg, opts);

    const auto events = traceEventLines(opts.tracePath);
    ASSERT_FALSE(events.empty());
    for (const auto &e : events)
        EXPECT_NE(e.find("\"cat\":\"dram\""), std::string::npos) << e;
    std::remove(opts.tracePath.c_str());
}

} // namespace
} // namespace mask
