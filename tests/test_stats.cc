/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace mask {
namespace {

TEST(SafeDiv, ZeroDenominator)
{
    EXPECT_EQ(safeDiv(5.0, 0.0), 0.0);
    EXPECT_EQ(safeDiv(0.0, 0.0), 0.0);
}

TEST(SafeDiv, Normal)
{
    EXPECT_DOUBLE_EQ(safeDiv(6.0, 3.0), 2.0);
}

TEST(Pct, Formatting)
{
    EXPECT_EQ(pct(0.578), "57.8%");
    EXPECT_EQ(pct(0.5), "50.0%");
    EXPECT_EQ(pct(1.0, 0), "100%");
    EXPECT_EQ(pct(0.12345, 2), "12.35%");
}

TEST(HitMiss, RatesAndReset)
{
    HitMiss hm;
    EXPECT_EQ(hm.hitRate(), 0.0);
    hm.hits = 3;
    hm.misses = 1;
    EXPECT_DOUBLE_EQ(hm.hitRate(), 0.75);
    EXPECT_DOUBLE_EQ(hm.missRate(), 0.25);
    EXPECT_EQ(hm.accesses(), 4u);
    hm.reset();
    EXPECT_EQ(hm.accesses(), 0u);
}

TEST(HitMiss, Accumulate)
{
    HitMiss a, b;
    a.hits = 1;
    a.misses = 2;
    b.hits = 10;
    b.misses = 20;
    a += b;
    EXPECT_EQ(a.hits, 11u);
    EXPECT_EQ(a.misses, 22u);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.minVal, 2.0);
    EXPECT_DOUBLE_EQ(s.maxVal, 9.0);
    EXPECT_EQ(s.count, 3u);
    s.reset();
    EXPECT_EQ(s.count, 0u);
}

TEST(RunningStat, SingleSampleMinMax)
{
    RunningStat s;
    s.add(-3.5);
    EXPECT_DOUBLE_EQ(s.minVal, -3.5);
    EXPECT_DOUBLE_EQ(s.maxVal, -3.5);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h(10, 5);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(25);
    h.add(1000); // clamps into last bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
    EXPECT_NEAR(h.mean(), (0 + 9 + 10 + 25 + 1000) / 5.0, 1e-9);
}

TEST(Histogram, Percentile)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.add(v);
    EXPECT_LE(h.percentileUpperBound(0.5), 51u);
    EXPECT_GE(h.percentileUpperBound(0.5), 49u);
    EXPECT_GE(h.percentileUpperBound(1.0), 99u);
}

TEST(Histogram, ZeroWidthIsClamped)
{
    Histogram h(0, 4);
    h.add(3);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, Reset)
{
    Histogram h(10, 4);
    h.add(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(IntervalSampler, SamplesAtInterval)
{
    IntervalSampler s(10);
    for (Cycle t = 0; t < 100; ++t)
        s.tick(t, static_cast<double>(t));
    // Samples at t = 0, 10, 20, ..., 90.
    EXPECT_EQ(s.stat().count, 10u);
    EXPECT_DOUBLE_EQ(s.stat().mean(), 45.0);
}

TEST(IntervalSampler, ResetRestartsSampling)
{
    IntervalSampler s(10);
    s.tick(0, 1.0);
    s.reset();
    EXPECT_EQ(s.stat().count, 0u);
    s.tick(100, 2.0);
    EXPECT_EQ(s.stat().count, 1u);
}

} // namespace
} // namespace mask
