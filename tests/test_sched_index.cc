/**
 * @file
 * Differential tests for the incrementally indexed memory-scheduler
 * structures (DESIGN.md §12).
 *
 * The indexed implementations must be observationally identical to
 * the retained reference rescans:
 *  - BankedRequestQueue::pick vs pickReference under randomized
 *    traffic, including tiny starvation caps (escalation bookkeeping
 *    is part of the contract) and nextWake/hasRowHit cross-checks;
 *  - DataRetryQueue vs a flat reference model under randomized
 *    park/remove churn;
 *  - a whole-GPU run with MASK_SCHED_REFERENCE=1 (reference picks)
 *    vs the default indexed picks, across design points and with
 *    fault injection on or off.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dram/banked_queue.hh"
#include "sim/gpu.hh"
#include "sim/retry_queue.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

// ---------------------------------------------------------------------
// BankedRequestQueue: indexed pick vs reference rescan
// ---------------------------------------------------------------------

/**
 * Drive twin queues (one picked through the per-bank indices, one
 * through the reference age-list rescan) with an identical randomized
 * push/service stream and require identical decisions, starvation-cap
 * escalations, and bypass bookkeeping at every step.
 */
void
driveTwinQueues(std::uint32_t num_banks, std::uint32_t cap,
                std::uint64_t seed, int steps)
{
    std::mt19937_64 rng(seed);
    std::vector<DramBank> banks(num_banks);
    BankedRequestQueue indexed(num_banks);
    BankedRequestQueue reference(num_banks);
    Cycle now = 0;
    ReqId next_id = 1;
    std::uint64_t cap_indexed = 0;
    std::uint64_t cap_reference = 0;

    for (int step = 0; step < steps; ++step) {
        now += rng() % 4;

        // Random arrivals: few distinct rows per bank so row hits,
        // bypasses and cap escalations all actually happen.
        const int arrivals = static_cast<int>(rng() % 4);
        for (int i = 0; i < arrivals && indexed.size() < 64; ++i) {
            DramQueueEntry e;
            e.id = next_id++;
            e.bank = static_cast<std::uint32_t>(rng() % num_banks);
            e.row = rng() % 4;
            e.app = static_cast<AppId>(rng() % 2);
            e.type = (rng() % 2) != 0 ? ReqType::Data
                                      : ReqType::Translation;
            e.enqueueCycle = now;
            indexed.push(e, banks);
            reference.push(e, banks);
        }

        // Index cross-checks against the rescans.
        for (std::uint32_t b = 0; b < num_banks; ++b) {
            ASSERT_EQ(indexed.hasRowHit(b),
                      indexed.hasRowHitReference(b, banks))
                << "bank " << b << " at step " << step;
        }
        Cycle manual = kNeverCycle;
        reference.forEachAge([&](const DramQueueEntry &e) {
            const Cycle ready = banks[e.bank].readyAt;
            manual = std::min(manual, ready <= now ? now : ready);
        });
        ASSERT_EQ(indexed.nextWake(banks, now), manual)
            << "at step " << step;

        const std::uint32_t ni =
            indexed.pick(banks, now, cap, &cap_indexed, nullptr);
        const std::uint32_t nr = reference.pickReference(
            banks, now, cap, &cap_reference, nullptr);
        ASSERT_EQ(ni == BankedRequestQueue::kNil,
                  nr == BankedRequestQueue::kNil)
            << "at step " << step;
        ASSERT_EQ(cap_indexed, cap_reference) << "at step " << step;
        if (ni == BankedRequestQueue::kNil)
            continue;

        const DramQueueEntry ei = indexed.take(ni);
        const DramQueueEntry er = reference.take(nr);
        ASSERT_EQ(ei.id, er.id) << "at step " << step;
        ASSERT_EQ(ei.bank, er.bank);
        ASSERT_EQ(ei.row, er.row);
        ASSERT_EQ(ei.bypassed, er.bypassed);
        ASSERT_EQ(indexed.size(), reference.size());

        // Service: activate the row on a miss, occupy the bank.
        DramBank &bank = banks[ei.bank];
        const bool row_change =
            !bank.rowValid || bank.openRow != ei.row;
        bank.openRow = ei.row;
        bank.rowValid = true;
        bank.readyAt = now + (row_change ? 30 : 15);
        if (row_change) {
            indexed.onRowChange(ei.bank, banks);
            reference.onRowChange(ei.bank, banks);
        }
    }
}

TEST(BankedQueueDifferential, RandomTrafficMatchesReference)
{
    driveTwinQueues(8, 16, 0x5eed0001, 4000);
}

TEST(BankedQueueDifferential, TinyStarvationCapEscalates)
{
    // cap=1 and cap=2 force the escalation path constantly; the
    // indexed pick must count escalations exactly like the rescan.
    driveTwinQueues(4, 1, 0x5eed0002, 4000);
    driveTwinQueues(4, 2, 0x5eed0003, 4000);
}

TEST(BankedQueueDifferential, SingleBankDegenerate)
{
    driveTwinQueues(1, 4, 0x5eed0004, 2000);
}

// ---------------------------------------------------------------------
// DataRetryQueue vs a flat reference model
// ---------------------------------------------------------------------

struct ModelEntry
{
    std::uint64_t seq;
    std::uint64_t key;
    Addr vaddr;
};

TEST(DataRetryQueueDifferential, RandomChurnMatchesFlatModel)
{
    std::mt19937_64 rng(0xfeed1234);
    DataRetryQueue q;
    std::vector<ModelEntry> model; // kept in seq (arrival) order
    std::uint64_t next_seq = 0;

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t op = rng() % 3;
        if (op != 0 || model.empty()) {
            const std::uint64_t key = rng() % 16; // dense key space
            StalledAccess access;
            access.vaddr = rng();
            access.core = 0;
            access.warp = static_cast<WarpId>(rng() % 32);
            q.park(access, /*app=*/0, /*pfn=*/0, next_seq, key);
            model.push_back(ModelEntry{next_seq, key, access.vaddr});
            ++next_seq;
        } else {
            // Remove a random parked entry, located through its key
            // chain (the only lookup path the retry pass uses).
            const std::size_t victim = rng() % model.size();
            const ModelEntry m = model[victim];
            std::uint32_t node = q.chainHead(m.key);
            while (node != DataRetryQueue::kNil &&
                   q.at(node).seq != m.seq)
                node = q.chainNext(node);
            ASSERT_NE(node, DataRetryQueue::kNil);
            ASSERT_EQ(q.at(node).access.vaddr, m.vaddr);
            const bool emptied = q.remove(node);
            model.erase(model.begin() +
                        static_cast<std::ptrdiff_t>(victim));
            bool model_has_key = false;
            for (const ModelEntry &e : model)
                model_has_key |= e.key == m.key;
            ASSERT_EQ(emptied, !model_has_key);
            ASSERT_EQ(q.hasKey(m.key), model_has_key);
        }

        ASSERT_EQ(q.size(), model.size());
        if (step % 256 == 0) {
            // Arrival order and chain contents match the model.
            std::size_t i = 0;
            bool order_ok = true;
            q.forEachSeq([&](const DataRetryQueue::Entry &e) {
                order_ok &= i < model.size() &&
                            e.seq == model[i].seq &&
                            e.key == model[i].key;
                ++i;
            });
            ASSERT_TRUE(order_ok && i == model.size());
            for (std::uint64_t key = 0; key < 16; ++key) {
                std::uint64_t last_seq = 0;
                std::size_t chain_len = 0;
                for (std::uint32_t n = q.chainHead(key);
                     n != DataRetryQueue::kNil; n = q.chainNext(n)) {
                    ASSERT_EQ(q.at(n).key, key);
                    ASSERT_TRUE(chain_len == 0 ||
                                q.at(n).seq > last_seq)
                        << "chain not in arrival order";
                    last_seq = q.at(n).seq;
                    ++chain_len;
                }
                std::size_t model_len = 0;
                for (const ModelEntry &e : model)
                    model_len += e.key == key ? 1 : 0;
                ASSERT_EQ(chain_len, model_len) << "key " << key;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Whole-GPU: MASK_SCHED_REFERENCE=1 vs indexed picks
// ---------------------------------------------------------------------

GpuConfig
smallConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

BenchmarkParams
smallBench(const char *name, std::uint32_t cold,
           std::uint32_t run = 2)
{
    BenchmarkParams p;
    p.name = name;
    p.hotPages = 4;
    p.coldPages = cold;
    p.hotFraction = 0.1;
    p.pageRun = run;
    p.streamFraction = 0.6;
    p.blockWarps = 16;
    p.randWindow = 4;
    p.stepAccesses = 24;
    p.computeMean = 4;
    p.memDivergence = 2;
    p.lineReuse = 0.3;
    return p;
}

/** Deterministic simulated-machine fields; host-side observability
 *  (wall seconds, skip/profiler counters) excluded. */
std::string
statsDump(const GpuStats &s)
{
    std::ostringstream os;
    os << "cycles:" << s.cycles << " requests:" << s.requests
       << " pool:" << s.poolPeakLive << '\n';
    for (std::size_t a = 0; a < s.instructions.size(); ++a) {
        os << "instr" << a << ':' << s.instructions[a] << ','
           << std::hexfloat << s.ipc[a] << std::defaultfloat << '\n';
    }
    os << "l1d:" << s.l1d.hits << '/' << s.l1d.misses << '\n';
    os << "l1Tlb:" << s.l1Tlb.hits << '/' << s.l1Tlb.misses << '\n';
    os << "l2Tlb:" << s.l2Tlb.hits << '/' << s.l2Tlb.misses << '\n';
    os << "l2Data:" << s.l2Cache[0].hits << '/' << s.l2Cache[0].misses
       << " l2Trans:" << s.l2Cache[1].hits << '/'
       << s.l2Cache[1].misses << '\n';
    for (int t = 0; t < 2; ++t) {
        os << "dram" << t << ':' << s.dram.busBusy[t] << ','
           << s.dram.serviced[t] << ',' << s.dram.latency[t].count
           << ',' << std::hexfloat << s.dram.latency[t].sum
           << std::defaultfloat << '\n';
    }
    os << "dramRow:" << s.dram.rowHits << ',' << s.dram.rowMisses
       << ',' << s.dram.rowConflicts << ','
       << s.dram.enqueueRejects << ',' << s.dram.capEscalations
       << '\n';
    os << "walks:" << s.walks << " l2Bypasses:" << s.l2Bypasses
       << " stalls:" << s.warpStallCycles
       << " faults:" << s.faultsInjected << '\n';
    for (std::uint32_t t : s.tokens)
        os << "tokens:" << t << '\n';
    return os.str();
}

GpuStats
runOnce(GpuConfig cfg, bool reference_picks, bool faults)
{
    if (faults) {
        cfg.harden.fault.enabled = true;
        cfg.harden.fault.dramDelayProb = 0.01;
        cfg.harden.fault.walkDropProb = 0.005;
        cfg.harden.fault.shootdownInterval = 4000;
    }
    if (reference_picks)
        ::setenv("MASK_SCHED_REFERENCE", "1", 1);
    else
        ::unsetenv("MASK_SCHED_REFERENCE");
    const BenchmarkParams a = smallBench("a", 5000);
    const BenchmarkParams b = smallBench("b", 100, 8);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
    ::unsetenv("MASK_SCHED_REFERENCE");
    gpu.run(3000);
    gpu.resetStats();
    gpu.run(9000);
    return gpu.collect();
}

class SchedReferenceEquivalence
    : public ::testing::TestWithParam<std::tuple<DesignPoint, bool>>
{
};

TEST_P(SchedReferenceEquivalence, IndexedPicksMatchReferencePicks)
{
    const DesignPoint point = std::get<0>(GetParam());
    const bool faults = std::get<1>(GetParam());
    const GpuConfig cfg = applyDesignPoint(smallConfig(), point);
    const GpuStats indexed = runOnce(cfg, false, faults);
    const GpuStats reference = runOnce(cfg, true, faults);
    EXPECT_EQ(statsDump(indexed), statsDump(reference));
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, SchedReferenceEquivalence,
    ::testing::Combine(::testing::Values(DesignPoint::SharedTlb,
                                         DesignPoint::Mask,
                                         DesignPoint::Ideal),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(designPointName(std::get<0>(info.param))) +
               (std::get<1>(info.param) ? "_faults" : "_clean");
    });

TEST(SchedReferenceEquivalence, TinyStarvationCapWholeGpu)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::Mask);
    cfg.dram.starvationCap = 1;
    const GpuStats indexed = runOnce(cfg, false, false);
    const GpuStats reference = runOnce(cfg, true, false);
    EXPECT_EQ(statsDump(indexed), statsDump(reference));
    // The cap must actually have escalated, or this proved nothing.
    EXPECT_GT(indexed.dram.capEscalations, 0u);
}

} // namespace
} // namespace mask
