/**
 * @file
 * Unit and property tests for the DRAM model: address mapping,
 * FR-FCFS, bank timing, the MASK three-queue scheduler, and
 * exactly-once service.
 */

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dram.hh"
#include "mask/dram_sched.hh"

namespace mask {
namespace {

DramConfig
testDram()
{
    DramConfig cfg;
    cfg.channels = 4;
    cfg.banksPerChannel = 4;
    return cfg;
}

MemRequest
dataReq(Addr paddr, AppId app = 0)
{
    MemRequest req;
    req.paddr = paddr;
    req.app = app;
    req.type = ReqType::Data;
    return req;
}

MemRequest
transReq(Addr paddr, AppId app = 0)
{
    MemRequest req = dataReq(paddr, app);
    req.type = ReqType::Translation;
    req.pwLevel = 4;
    return req;
}

// ---------------------------------------------------------------------
// AddressMapper
// ---------------------------------------------------------------------

TEST(AddressMapper, RowsAreContiguous)
{
    const DramConfig cfg = testDram();
    AddressMapper mapper(cfg, 7);
    // All lines of one 2KB row map to the same (channel, bank, row).
    const DramCoord first = mapper.map(0, 0);
    for (Addr a = 0; a < cfg.rowBytes; a += 128) {
        const DramCoord coord = mapper.map(a, 0);
        EXPECT_EQ(coord.channel, first.channel);
        EXPECT_EQ(coord.bank, first.bank);
        EXPECT_EQ(coord.row, first.row);
    }
    // The next row rotates to another channel.
    EXPECT_NE(mapper.map(cfg.rowBytes, 0).channel, first.channel);
}

TEST(AddressMapper, CoversAllChannelsAndBanks)
{
    const DramConfig cfg = testDram();
    AddressMapper mapper(cfg, 7);
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (Addr row = 0; row < 64; ++row) {
        const DramCoord coord = mapper.map(row * cfg.rowBytes, 0);
        seen.insert({coord.channel, coord.bank});
    }
    EXPECT_EQ(seen.size(),
              std::size_t{cfg.channels} * cfg.banksPerChannel);
}

TEST(AddressMapper, PartitionConfinesAppsToChannelSlices)
{
    const DramConfig cfg = testDram();
    AddressMapper mapper(cfg, 7, true, 2);
    for (Addr row = 0; row < 256; ++row) {
        const Addr addr = row * cfg.rowBytes;
        EXPECT_LT(mapper.map(addr, 0).channel, 2u);
        EXPECT_GE(mapper.map(addr, 1).channel, 2u);
    }
}

// ---------------------------------------------------------------------
// FR-FCFS pick
// ---------------------------------------------------------------------

DramQueueEntry
entry(ReqId id, std::uint32_t bank, std::uint64_t row, Cycle enq = 0)
{
    DramQueueEntry e;
    e.id = id;
    e.bank = bank;
    e.row = row;
    e.enqueueCycle = enq;
    return e;
}

TEST(FrFcfs, PrefersOldestRowHit)
{
    std::vector<DramBank> banks(2);
    banks[0].rowValid = true;
    banks[0].openRow = 7;
    std::vector<DramQueueEntry> queue = {
        entry(0, 0, 3), // older, conflict
        entry(1, 0, 7), // row hit
    };
    EXPECT_EQ(frFcfsPick(queue, banks, 0, 16), 1);
}

TEST(FrFcfs, FallsBackToOldest)
{
    std::vector<DramBank> banks(2);
    std::vector<DramQueueEntry> queue = {entry(0, 0, 3),
                                         entry(1, 1, 9)};
    EXPECT_EQ(frFcfsPick(queue, banks, 0, 16), 0);
}

TEST(FrFcfs, SkipsBusyBanks)
{
    std::vector<DramBank> banks(2);
    banks[0].readyAt = 100;
    std::vector<DramQueueEntry> queue = {entry(0, 0, 3),
                                         entry(1, 1, 9)};
    EXPECT_EQ(frFcfsPick(queue, banks, 50, 16), 1);
    EXPECT_EQ(frFcfsPick(queue, banks, 100, 16), 0);
}

TEST(FrFcfs, NothingServiceable)
{
    std::vector<DramBank> banks(1);
    banks[0].readyAt = 10;
    std::vector<DramQueueEntry> queue = {entry(0, 0, 3)};
    EXPECT_EQ(frFcfsPick(queue, banks, 5, 16), -1);
}

TEST(FrFcfs, StarvationCapForcesOldest)
{
    std::vector<DramBank> banks(1);
    banks[0].rowValid = true;
    banks[0].openRow = 7;
    std::vector<DramQueueEntry> queue = {
        entry(0, 0, 3), // conflict, keeps getting bypassed
        entry(1, 0, 7), // row hits
    };
    int forced = -1;
    for (int i = 0; i < 20; ++i) {
        const int pick = frFcfsPick(queue, banks, 0, 4);
        if (pick == 0) {
            forced = i;
            break;
        }
    }
    EXPECT_GE(forced, 4);
    EXPECT_NE(forced, -1) << "old conflict starved forever";
}

TEST(FrFcfs, StarvationCapEscalationsAreCounted)
{
    // Adversarial stream: one old row-conflict request parked behind
    // a steady supply of younger row hits. The cap must eventually
    // force the old request and each forced pick must be counted.
    DramConfig cfg = testDram();
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    cfg.queueEntries = 64;
    cfg.starvationCap = 4;
    RequestPool pool;
    Dram dram(cfg, MaskConfig{}, 7, DramSchedMode::FrFcfs, 1, false);

    const Addr row_hit_base = 0;              // row 0
    const Addr victim_addr = Addr{cfg.rowBytes}; // row 1, same bank

    Cycle t = 0;
    int in_flight = 0;
    auto issue = [&](Addr addr) {
        const ReqId id = pool.alloc();
        pool[id] = dataReq(addr);
        ASSERT_TRUE(dram.canEnqueue(pool[id]));
        dram.enqueue(id, pool[id], t);
        ++in_flight;
    };

    issue(row_hit_base); // opens row 0
    issue(victim_addr);  // conflict: parked behind the hit stream
    const ReqId victim = 1;

    bool victim_done = false;
    Addr next_line = 128;
    for (; t < 4000 && !victim_done; ++t) {
        // Keep a steady supply of row-0 hits queued (deep enough
        // that service-to-completion latency never drains the queue).
        while (in_flight < 10) {
            issue(row_hit_base + next_line);
            next_line = (next_line + 128) % cfg.rowBytes;
            if (next_line == 0)
                next_line = 128;
        }
        dram.tick(t, pool);
        auto &done = dram.completed();
        while (!done.empty()) {
            const ReqId id = done.front();
            done.pop_front();
            victim_done |= (id == victim);
            --in_flight;
        }
    }

    EXPECT_TRUE(victim_done)
        << "starvation cap never forced the old conflict";
    EXPECT_GT(dram.aggregateStats().capEscalations, 0u);
}

// ---------------------------------------------------------------------
// DramChannel / Dram timing and service
// ---------------------------------------------------------------------

TEST(DramChannel, RowHitFasterThanConflict)
{
    const DramConfig cfg = testDram();
    RequestPool pool;
    Dram dram(cfg, MaskConfig{}, 7, DramSchedMode::FrFcfs, 1, false);

    // First access opens a row (closed bank: tRcd + tCl + tBurst).
    const ReqId a = pool.alloc();
    pool[a] = dataReq(0);
    dram.enqueue(a, pool[a], 0);
    Cycle t = 0;
    while (dram.completed().empty())
        dram.tick(t++, pool);
    const Cycle first = t;
    dram.completed().clear();

    // Same row again: tCl + tBurst only.
    const ReqId b = pool.alloc();
    pool[b] = dataReq(128);
    dram.enqueue(b, pool[b], t);
    const Cycle start = t;
    while (dram.completed().empty())
        dram.tick(t++, pool);
    const Cycle hit_latency = t - start;
    dram.completed().clear();

    // A far row in the same bank: precharge + activate, slower.
    const ReqId c = pool.alloc();
    const Addr conflict_addr =
        Addr{cfg.rowBytes} * cfg.channels * cfg.banksPerChannel * 8;
    ASSERT_EQ(dram.mapper().map(conflict_addr, 0).channel,
              dram.mapper().map(0, 0).channel);
    ASSERT_EQ(dram.mapper().map(conflict_addr, 0).bank,
              dram.mapper().map(0, 0).bank);
    pool[c] = dataReq(conflict_addr);
    dram.enqueue(c, pool[c], t);
    const Cycle start2 = t;
    while (dram.completed().empty())
        dram.tick(t++, pool);
    const Cycle conflict_latency = t - start2;

    EXPECT_LT(hit_latency, first - 0);
    EXPECT_GT(conflict_latency, hit_latency);
}

TEST(Dram, EveryRequestServicedExactlyOnce)
{
    const DramConfig cfg = testDram();
    RequestPool pool;
    Dram dram(cfg, MaskConfig{}, 7, DramSchedMode::FrFcfs, 1, false);
    Rng rng(77);

    std::set<ReqId> outstanding;
    std::set<ReqId> done;
    Cycle t = 0;
    int issued = 0;
    while (issued < 500 || !outstanding.empty()) {
        if (issued < 500) {
            const ReqId id = pool.alloc();
            pool[id] = dataReq(rng.below(1 << 22) << 7);
            if (dram.canEnqueue(pool[id])) {
                dram.enqueue(id, pool[id], t);
                outstanding.insert(id);
                ++issued;
            } else {
                pool.release(id);
            }
        }
        dram.tick(t++, pool);
        auto &completed = dram.completed();
        while (!completed.empty()) {
            const ReqId id = completed.front();
            completed.pop_front();
            EXPECT_TRUE(outstanding.count(id));
            EXPECT_FALSE(done.count(id)) << "double service";
            outstanding.erase(id);
            done.insert(id);
        }
        ASSERT_LT(t, 2000000u) << "DRAM stopped making progress";
    }
    EXPECT_EQ(done.size(), 500u);

    const DramChannelStats stats = dram.aggregateStats();
    EXPECT_EQ(stats.serviced[0], 500u);
    EXPECT_EQ(stats.serviced[1], 0u);
    EXPECT_EQ(stats.rowHits + stats.rowMisses + stats.rowConflicts,
              500u);
}

TEST(DramChannel, GoldenQueuePrioritizesTranslations)
{
    DramConfig cfg = testDram();
    MaskConfig mask_cfg;
    mask_cfg.goldenMaxDelay = 0; // strict priority for this test
    RequestPool pool;
    Dram dram(cfg, mask_cfg, 7, DramSchedMode::MaskQueues, 2, false);

    // Fill the normal queue with many data requests, then add one
    // translation request; the translation must finish before most
    // of the backlog despite arriving last.
    std::vector<ReqId> data;
    for (int i = 0; i < 50; ++i) {
        const ReqId id = pool.alloc();
        pool[id] = dataReq(Addr{0} + 128 * i, 1);
        dram.enqueue(id, pool[id], 0);
        data.push_back(id);
    }
    const ReqId trans = pool.alloc();
    pool[trans] = transReq(1 << 22, 0);
    ASSERT_TRUE(dram.canEnqueue(pool[trans]));
    dram.enqueue(trans, pool[trans], 0);

    Cycle t = 0;
    int data_before_translation = 0;
    bool translation_done = false;
    while (!translation_done && t < 100000) {
        dram.tick(t++, pool);
        auto &completed = dram.completed();
        while (!completed.empty()) {
            const ReqId id = completed.front();
            completed.pop_front();
            if (id == trans)
                translation_done = true;
            else if (!translation_done)
                ++data_before_translation;
        }
    }
    ASSERT_TRUE(translation_done);
    EXPECT_LT(data_before_translation, 10)
        << "golden queue failed to prioritize the walk read";
}

TEST(DramChannel, SilverQuotaRoutesOnlyCurrentApp)
{
    DramConfig cfg = testDram();
    cfg.channels = 1;
    MaskConfig mask_cfg;
    RequestPool pool;
    DramChannel channel(cfg, mask_cfg, DramSchedMode::MaskQueues, 2);

    EXPECT_EQ(channel.silverApp(), 0);
    // App 0 data goes to silver until the quota; app 1 data to normal.
    for (int i = 0; i < 5; ++i) {
        const ReqId id = pool.alloc();
        pool[id] = dataReq(128 * i, 0);
        channel.enqueue(id, pool[id],
                        DramCoord{0, 0, static_cast<std::uint64_t>(i)},
                        0);
    }
    EXPECT_EQ(channel.silverSize(), 5u);
    const ReqId other = pool.alloc();
    pool[other] = dataReq(0, 1);
    channel.enqueue(other, pool[other], DramCoord{0, 1, 0}, 0);
    EXPECT_EQ(channel.normalSize(), 1u);
}

TEST(DramChannel, EpochRotatesSilverTurn)
{
    DramConfig cfg = testDram();
    MaskConfig mask_cfg;
    RequestPool pool;
    DramChannel channel(cfg, mask_cfg, DramSchedMode::MaskQueues, 3);
    EXPECT_EQ(channel.silverApp(), 0);
    channel.onEpoch();
    EXPECT_EQ(channel.silverApp(), 1);
    channel.onEpoch();
    EXPECT_EQ(channel.silverApp(), 2);
    channel.onEpoch();
    EXPECT_EQ(channel.silverApp(), 0);
}

TEST(DramChannel, TranslationQueueCapacity)
{
    DramConfig cfg = testDram();
    cfg.channels = 1;
    MaskConfig mask_cfg;
    mask_cfg.goldenQueueEntries = 2;
    RequestPool pool;
    DramChannel channel(cfg, mask_cfg, DramSchedMode::MaskQueues, 1);

    for (int i = 0; i < 2; ++i) {
        const ReqId id = pool.alloc();
        pool[id] = transReq(128 * i);
        ASSERT_TRUE(channel.canEnqueue(pool[id]));
        channel.enqueue(id, pool[id], DramCoord{0, 0, 0}, 0);
    }
    const ReqId id = pool.alloc();
    pool[id] = transReq(0);
    EXPECT_FALSE(channel.canEnqueue(pool[id]));
    // Data still accepted.
    pool[id].type = ReqType::Data;
    EXPECT_TRUE(channel.canEnqueue(pool[id]));
}

TEST(Dram, LatencyStatsSplitByType)
{
    const DramConfig cfg = testDram();
    RequestPool pool;
    Dram dram(cfg, MaskConfig{}, 7, DramSchedMode::FrFcfs, 1, false);
    const ReqId d = pool.alloc();
    pool[d] = dataReq(0);
    dram.enqueue(d, pool[d], 0);
    const ReqId x = pool.alloc();
    pool[x] = transReq(1 << 20);
    dram.enqueue(x, pool[x], 0);
    for (Cycle t = 0; t < 200; ++t)
        dram.tick(t, pool);
    const DramChannelStats stats = dram.aggregateStats();
    EXPECT_EQ(stats.latency[0].count, 1u);
    EXPECT_EQ(stats.latency[1].count, 1u);
    EXPECT_GT(stats.busBusy[0], 0u);
    EXPECT_GT(stats.busBusy[1], 0u);
}

} // namespace
} // namespace mask
