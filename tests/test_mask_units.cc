/**
 * @file
 * Unit tests for the three MASK mechanisms' building blocks: TLB-Fill
 * Tokens, the TLB bypass cache, the L2 bypass policy, the Equation 1
 * silver quota, and the storage-cost accounting.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mask/bypass_cache.hh"
#include "mask/dram_sched.hh"
#include "mask/l2_bypass.hh"
#include "mask/storage_cost.hh"
#include "mask/tokens.hh"

namespace mask {
namespace {

MaskConfig
maskCfg()
{
    MaskConfig cfg;
    cfg.tlbTokens = true;
    cfg.l2Bypass = true;
    cfg.dramSched = true;
    return cfg;
}

// ---------------------------------------------------------------------
// TokenManager (Section 5.2)
// ---------------------------------------------------------------------

TEST(Tokens, InitialAllocationIsFractionOfWarps)
{
    TokenManager tokens(maskCfg(), 2, 1000);
    EXPECT_EQ(tokens.tokens(0), 800u);
    EXPECT_EQ(tokens.tokens(1), 800u);
}

TEST(Tokens, EveryWarpFillsDuringFirstEpoch)
{
    TokenManager tokens(maskCfg(), 1, 100);
    EXPECT_TRUE(tokens.mayFill(0, 99));
    tokens.epochComplete();
    EXPECT_FALSE(tokens.mayFill(0, 99));
    EXPECT_TRUE(tokens.mayFill(0, 79));
}

TEST(Tokens, LowestWarpIndicesHoldTokens)
{
    TokenManager tokens(maskCfg(), 1, 100);
    tokens.epochComplete();
    const std::uint32_t n = tokens.tokens(0);
    EXPECT_TRUE(tokens.mayFill(0, 0));
    EXPECT_TRUE(tokens.mayFill(0, n - 1));
    EXPECT_FALSE(tokens.mayFill(0, n));
}

TEST(Tokens, RisingMissRateShrinksTokens)
{
    TokenManager tokens(maskCfg(), 1, 100);
    tokens.onEpoch(0, 0.50); // baseline sample
    const std::uint32_t before = tokens.tokens(0);
    tokens.onEpoch(0, 0.60); // +10% > 2% threshold
    EXPECT_LT(tokens.tokens(0), before);
    EXPECT_EQ(tokens.lastDirection(0), -1);
}

TEST(Tokens, FallingMissRateGrowsTokens)
{
    TokenManager tokens(maskCfg(), 1, 100);
    tokens.onEpoch(0, 0.50);
    tokens.onEpoch(0, 0.60); // shrink
    const std::uint32_t shrunk = tokens.tokens(0);
    tokens.onEpoch(0, 0.40); // big drop -> grow
    EXPECT_GT(tokens.tokens(0), shrunk);
    EXPECT_EQ(tokens.lastDirection(0), +1);
}

TEST(Tokens, SmallChangeHolds)
{
    TokenManager tokens(maskCfg(), 1, 100);
    tokens.onEpoch(0, 0.50);
    const std::uint32_t before = tokens.tokens(0);
    tokens.onEpoch(0, 0.51); // within the 2% dead zone
    EXPECT_EQ(tokens.tokens(0), before);
    EXPECT_EQ(tokens.lastDirection(0), 0);
}

TEST(Tokens, BoundedBelowAndAbove)
{
    TokenManager tokens(maskCfg(), 1, 100);
    double rate = 0.1;
    tokens.onEpoch(0, rate);
    for (int i = 0; i < 100; ++i)
        tokens.onEpoch(0, rate += 0.05); // keeps rising
    EXPECT_GE(tokens.tokens(0), 1u);
    TokenManager grow(maskCfg(), 1, 100);
    rate = 0.9;
    grow.onEpoch(0, rate);
    for (int i = 0; i < 100; ++i)
        grow.onEpoch(0, rate = std::max(0.0, rate - 0.05));
    EXPECT_LE(grow.tokens(0), 100u);
}

TEST(Tokens, AppsAdjustIndependently)
{
    TokenManager tokens(maskCfg(), 2, 100);
    tokens.onEpoch(0, 0.5);
    tokens.onEpoch(1, 0.5);
    tokens.onEpoch(0, 0.8);
    tokens.onEpoch(1, 0.2);
    EXPECT_LT(tokens.tokens(0), tokens.tokens(1));
}

// ---------------------------------------------------------------------
// TlbBypassCache (Section 5.2)
// ---------------------------------------------------------------------

TEST(BypassCache, FillLookupFlush)
{
    TlbBypassCache cache(maskCfg());
    EXPECT_EQ(cache.entries(), 32u);
    Pfn pfn = 0;
    EXPECT_FALSE(cache.lookup(1, 10, &pfn));
    cache.fill(1, 10, 99);
    EXPECT_TRUE(cache.lookup(1, 10, &pfn));
    EXPECT_EQ(pfn, 99u);
    cache.flush();
    EXPECT_FALSE(cache.probe(1, 10));
}

TEST(BypassCache, LruAtCapacity)
{
    TlbBypassCache cache(maskCfg());
    for (Vpn v = 0; v < 32; ++v)
        cache.fill(1, v, v);
    cache.lookup(1, 0); // refresh
    cache.fill(1, 100, 100);
    EXPECT_TRUE(cache.probe(1, 0));
    EXPECT_FALSE(cache.probe(1, 1));
}

TEST(BypassCache, AsidFlush)
{
    TlbBypassCache cache(maskCfg());
    cache.fill(1, 5, 1);
    cache.fill(2, 5, 2);
    cache.flushAsid(1);
    EXPECT_FALSE(cache.probe(1, 5));
    EXPECT_TRUE(cache.probe(2, 5));
}

// ---------------------------------------------------------------------
// L2BypassPolicy (Section 5.3)
// ---------------------------------------------------------------------

TEST(L2Bypass, DataNeverBypasses)
{
    L2BypassPolicy policy(maskCfg());
    for (int i = 0; i < 1000; ++i)
        policy.recordAccess(0, false);
    EXPECT_FALSE(policy.shouldBypass(0));
}

TEST(L2Bypass, RequiresMinimumSamples)
{
    L2BypassPolicy policy(maskCfg());
    policy.recordAccess(0, true); // data hit rate 100%
    for (std::uint32_t i = 0; i < 10; ++i)
        policy.recordAccess(4, false);
    EXPECT_FALSE(policy.shouldBypass(4))
        << "must not bypass before minBypassSamples";
}

TEST(L2Bypass, BypassesLowHitLevels)
{
    L2BypassPolicy policy(maskCfg());
    for (int i = 0; i < 100; ++i) {
        policy.recordAccess(0, i % 2 == 0); // data: 50%
        policy.recordAccess(4, false);      // level 4: 0%
        policy.recordAccess(1, true);       // level 1: 100%
    }
    EXPECT_FALSE(policy.shouldBypass(1));
    int bypassed = 0;
    for (int i = 0; i < 100; ++i)
        bypassed += policy.shouldBypass(4);
    EXPECT_GT(bypassed, 90);
    EXPECT_LT(bypassed, 100) << "sampler probes must slip through";
}

TEST(L2Bypass, SamplerKeepsEstimateAlive)
{
    MaskConfig cfg = maskCfg();
    cfg.sampleProbeInterval = 4;
    L2BypassPolicy policy(cfg);
    for (int i = 0; i < 100; ++i) {
        policy.recordAccess(0, true);
        policy.recordAccess(4, false);
    }
    // Cycle length is interval + 1: one probe, then `interval`
    // bypasses.
    int probes = 0;
    for (int i = 0; i < 100; ++i)
        probes += !policy.shouldBypass(4);
    EXPECT_NEAR(probes, 20, 2);
}

TEST(L2Bypass, EpochDecayPreservesRates)
{
    L2BypassPolicy policy(maskCfg());
    for (int i = 0; i < 100; ++i)
        policy.recordAccess(3, i % 4 == 0); // 25%
    const double before = policy.hitRate(3);
    policy.onEpoch();
    EXPECT_NEAR(policy.hitRate(3), before, 0.02);
    // 25 hits and 75 misses halve (integer division) to 12 + 37.
    EXPECT_EQ(policy.stats(3).accesses(), 49u);
}

TEST(L2Bypass, AdaptsWhenBehaviourImproves)
{
    MaskConfig cfg = maskCfg();
    cfg.sampleProbeInterval = 2;
    L2BypassPolicy policy(cfg);
    for (int i = 0; i < 200; ++i) {
        policy.recordAccess(0, i % 2 == 0); // data 50%
        policy.recordAccess(4, false);
    }
    EXPECT_GT(policy.hitRate(0), policy.hitRate(4));
    // Behaviour changes: level 4 starts hitting; decay + samplers
    // must eventually lift the bypass.
    for (int epoch = 0; epoch < 12; ++epoch) {
        policy.onEpoch();
        for (int i = 0; i < 200; ++i) {
            if (!policy.shouldBypass(4))
                policy.recordAccess(4, true);
        }
    }
    EXPECT_FALSE(policy.shouldBypass(4));
}

// ---------------------------------------------------------------------
// SilverQuotaController (Equation 1)
// ---------------------------------------------------------------------

TEST(SilverQuota, EvenSplitWithoutSamples)
{
    SilverQuotaController quota(maskCfg(), 4);
    EXPECT_EQ(quota.silverQuota(0), 125u); // threshMax 500 / 4
}

TEST(SilverQuota, ProportionalToPressureProduct)
{
    SilverQuotaController quota(maskCfg(), 2);
    quota.sample(0, 30, 20); // weight 600
    quota.sample(1, 10, 20); // weight 200
    EXPECT_EQ(quota.silverQuota(0), 375u); // 500 * 600/800
    EXPECT_EQ(quota.silverQuota(1), 125u);
}

TEST(SilverQuota, AccumulatesAcrossSamples)
{
    SilverQuotaController quota(maskCfg(), 2);
    quota.sample(0, 10, 10);
    quota.sample(0, 10, 10);
    quota.sample(1, 20, 10);
    EXPECT_DOUBLE_EQ(quota.pressure(0), 200.0);
    EXPECT_DOUBLE_EQ(quota.pressure(1), 200.0);
    EXPECT_EQ(quota.silverQuota(0), quota.silverQuota(1));
}

TEST(SilverQuota, EpochResets)
{
    SilverQuotaController quota(maskCfg(), 2);
    quota.sample(0, 50, 50);
    quota.onEpoch();
    EXPECT_DOUBLE_EQ(quota.pressure(0), 0.0);
    EXPECT_EQ(quota.silverQuota(0), 250u);
}

TEST(SilverQuota, NeverZero)
{
    SilverQuotaController quota(maskCfg(), 2);
    quota.sample(1, 100, 100);
    EXPECT_GE(quota.silverQuota(0), 1u);
}

// ---------------------------------------------------------------------
// StorageCost (Section 7.4)
// ---------------------------------------------------------------------

TEST(StorageCost, AsidBitsMatchPaper)
{
    const GpuConfig cfg = GpuConfig{};
    const StorageCost cost = computeStorageCost(cfg);
    EXPECT_EQ(cost.asidBitsPerL2TlbEntry, 9u);
    EXPECT_EQ(cost.asidTotalBits, 9u * 512);
}

TEST(StorageCost, DramQueueOverheadIsSmall)
{
    const StorageCost cost = computeStorageCost(GpuConfig{});
    // Golden 16 + Silver 64 + Normal 192 = 272 vs 256 baseline ~ 6%.
    EXPECT_NEAR(cost.dramQueueOverheadFraction(), 0.0625, 0.001);
}

TEST(StorageCost, OverheadFractionsAreSmall)
{
    const GpuConfig cfg = GpuConfig{};
    const StorageCost cost = computeStorageCost(cfg);
    EXPECT_LT(cost.l2CacheOverheadFraction(cfg), 0.002);
    EXPECT_LT(cost.l1TlbOverheadFraction(cfg), 0.10);
    EXPECT_GT(cost.totalBits(), 0u);
}

TEST(StorageCost, ReportMentionsEveryMechanism)
{
    const GpuConfig cfg = GpuConfig{};
    const std::string report = computeStorageCost(cfg).report(cfg);
    EXPECT_NE(report.find("ASID"), std::string::npos);
    EXPECT_NE(report.find("Tokens"), std::string::npos);
    EXPECT_NE(report.find("bypass"), std::string::npos);
    EXPECT_NE(report.find("DRAM"), std::string::npos);
}

} // namespace
} // namespace mask
