/**
 * @file
 * Unit and property tests for page tables and the page table walker.
 */

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "vm/page_table.hh"
#include "vm/walker.hh"

namespace mask {
namespace {

TEST(PageTable, MapIsIdempotent)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    const Pfn a = pt.mapPage(100);
    const Pfn b = pt.mapPage(100);
    EXPECT_EQ(a, b);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST(PageTable, LookupUnmapped)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    EXPECT_EQ(pt.lookup(42), kInvalidPfn);
    pt.mapPage(42);
    EXPECT_NE(pt.lookup(42), kInvalidPfn);
}

TEST(PageTable, DistinctPagesDistinctFrames)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    std::set<Pfn> pfns;
    for (Vpn vpn = 0; vpn < 1000; ++vpn)
        pfns.insert(pt.mapPage(vpn * 977));
    EXPECT_EQ(pfns.size(), 1000u);
}

TEST(PageTable, TwoAddressSpacesAreIsolated)
{
    FrameAllocator frames(12);
    PageTable pt1(1, 12, frames);
    PageTable pt2(2, 12, frames);
    const Pfn a = pt1.mapPage(7);
    const Pfn b = pt2.mapPage(7);
    EXPECT_NE(a, b) << "same VPN in different ASIDs must not share a "
                       "physical frame";
}

TEST(PageTable, WalkAddrsAreLevelDistinct)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    pt.mapPage(0x12345);
    const auto addrs = pt.walkAddrs(0x12345);
    std::set<Addr> unique(addrs.begin(), addrs.end());
    EXPECT_EQ(unique.size(), kPtLevels);
    EXPECT_EQ(addrs[0] & ~Addr{4095}, pt.rootAddr());
}

TEST(PageTable, NearbyPagesShareInteriorNodes)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    pt.mapPage(1000);
    pt.mapPage(1001);
    const auto a = pt.walkAddrs(1000);
    const auto b = pt.walkAddrs(1001);
    // Levels 1-3 are identical nodes; leaf PTEs are 8 bytes apart.
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[1]);
    EXPECT_EQ(a[2], b[2]);
    EXPECT_EQ(b[3], a[3] + kPteBytes);
}

TEST(PageTable, FarPagesUseDifferentLeafNodes)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    pt.mapPage(0);
    pt.mapPage(1ull << 20); // beyond one leaf node's 512-page reach
    const auto a = pt.walkAddrs(0);
    const auto b = pt.walkAddrs(1ull << 20);
    EXPECT_NE(a[3] >> 12, b[3] >> 12);
}

TEST(PageTable, NodeCountGrowth)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    const std::uint64_t start = pt.nodeCount();
    EXPECT_EQ(start, 1u); // root only
    pt.mapPage(0);
    EXPECT_EQ(pt.nodeCount(), 4u); // root + L2 + L3 + leaf node
    pt.mapPage(1); // same leaf node
    EXPECT_EQ(pt.nodeCount(), 4u);
    pt.mapPage(512); // new leaf node, same L3
    EXPECT_EQ(pt.nodeCount(), 5u);
}

TEST(PageTable, UnmapPage)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    pt.mapPage(9);
    EXPECT_TRUE(pt.unmapPage(9));
    EXPECT_FALSE(pt.unmapPage(9));
    EXPECT_EQ(pt.lookup(9), kInvalidPfn);
}

TEST(PageTable, LargePagesSupported)
{
    FrameAllocator frames(21);
    PageTable pt(1, 21, frames);
    const Pfn pfn = pt.mapPage(5);
    EXPECT_EQ(frames.frameAddr(pfn), pfn << 21);
    const auto addrs = pt.walkAddrs(5);
    EXPECT_EQ(addrs.size(), kPtLevels);
}

TEST(PageTable, WalkAddrsWithinAllocatedFrames)
{
    FrameAllocator frames(12);
    PageTable pt(1, 12, frames);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const Vpn vpn = rng.below(1ull << 30);
        pt.mapPage(vpn);
        for (const Addr addr : pt.walkAddrs(vpn)) {
            EXPECT_LT(addr >> 12, frames.allocated())
                << "PTE address outside allocated physical frames";
        }
    }
}

// ---------------------------------------------------------------------
// Walker
// ---------------------------------------------------------------------

std::array<Addr, kPtLevels>
fakeAddrs(Addr base)
{
    return {base, base + 4096, base + 8192, base + 12288};
}

TEST(Walker, FourLevelSequence)
{
    PageTableWalker walker(WalkerConfig{4, 4});
    const WalkId walk = walker.startWalk(1, 100, 0, fakeAddrs(0), 0);
    for (std::uint8_t level = 1; level <= 4; ++level) {
        ASSERT_TRUE(walker.hasPendingFetch());
        const WalkId w = walker.popPendingFetch();
        EXPECT_EQ(w, walk);
        EXPECT_EQ(walker.fetchLevel(w), level);
        EXPECT_EQ(walker.fetchAddr(w),
                  Addr{4096} * (level - 1));
        const bool done = walker.fetchComplete(w, level * 100);
        EXPECT_EQ(done, level == 4);
    }
    EXPECT_FALSE(walker.hasPendingFetch());
    EXPECT_DOUBLE_EQ(walker.walkLatency().mean(), 400.0);
    walker.release(walk);
    EXPECT_EQ(walker.activeWalks(), 0u);
}

TEST(Walker, CapacityLimit)
{
    PageTableWalker walker(WalkerConfig{2, 4});
    EXPECT_TRUE(walker.hasCapacity());
    const WalkId a = walker.startWalk(1, 1, 0, fakeAddrs(0), 0);
    walker.startWalk(1, 2, 0, fakeAddrs(0), 0);
    EXPECT_FALSE(walker.hasCapacity());
    EXPECT_EQ(walker.activeWalks(), 2u);

    // Completing all levels and releasing frees a thread.
    WalkId w = walker.popPendingFetch();
    (void)walker.popPendingFetch();
    while (!walker.fetchComplete(a, 10))
        ;
    (void)w;
    walker.release(a);
    EXPECT_TRUE(walker.hasCapacity());
}

TEST(Walker, PerAppActiveCounts)
{
    PageTableWalker walker(WalkerConfig{8, 4});
    walker.startWalk(1, 1, 0, fakeAddrs(0), 0);
    walker.startWalk(1, 2, 0, fakeAddrs(0), 0);
    const WalkId b = walker.startWalk(2, 3, 1, fakeAddrs(0), 0);
    EXPECT_EQ(walker.activeWalksFor(0), 2u);
    EXPECT_EQ(walker.activeWalksFor(1), 1u);
    EXPECT_EQ(walker.activeWalksFor(7), 0u);

    while (!walker.fetchComplete(b, 5))
        ;
    walker.release(b);
    EXPECT_EQ(walker.activeWalksFor(1), 0u);
}

TEST(Walker, InfoRoundTrip)
{
    PageTableWalker walker(WalkerConfig{4, 4});
    const WalkId w = walker.startWalk(3, 777, 2, fakeAddrs(64), 123);
    EXPECT_EQ(walker.info(w).asid, 3);
    EXPECT_EQ(walker.info(w).vpn, 777u);
    EXPECT_EQ(walker.info(w).app, 2);
    EXPECT_EQ(walker.info(w).startCycle, 123u);
}

TEST(Walker, SlotsAreReusedAfterRelease)
{
    PageTableWalker walker(WalkerConfig{1, 2});
    const WalkId a = walker.startWalk(1, 1, 0, fakeAddrs(0), 0);
    while (!walker.fetchComplete(a, 1))
        ;
    walker.release(a);
    const WalkId b = walker.startWalk(1, 2, 0, fakeAddrs(0), 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(walker.walksStarted(), 2u);
}

TEST(Walker, ShorterWalksForFewerLevels)
{
    PageTableWalker walker(WalkerConfig{4, 2});
    const WalkId w = walker.startWalk(1, 1, 0, fakeAddrs(0), 0);
    walker.popPendingFetch();
    EXPECT_FALSE(walker.fetchComplete(w, 10));
    walker.popPendingFetch();
    EXPECT_TRUE(walker.fetchComplete(w, 20));
}

} // namespace
} // namespace mask
