/**
 * @file
 * Edge-configuration and failure-injection tests: degenerate GPU
 * shapes, tiny structural resources that force every retry/backpressure
 * path, and full-drain conservation of in-flight requests.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

BenchmarkParams
stressBench()
{
    BenchmarkParams p;
    p.name = "stress";
    p.hotPages = 2;
    p.coldPages = 20000;
    p.hotFraction = 0.05;
    p.pageRun = 1;
    p.streamFraction = 0.4;
    p.blockWarps = 8;
    p.randWindow = 8;
    p.stepAccesses = 16;
    p.computeMean = 2;
    p.memDivergence = 4;
    p.lineReuse = 0.1;
    return p;
}

GpuConfig
tinyGpu()
{
    GpuConfig cfg;
    cfg.numCores = 2;
    cfg.warpsPerCore = 8;
    cfg.l2 = CacheConfig{64 * 1024, 128, 4, 10, 2, 1, 16};
    cfg.l2Tlb = TlbConfig{64, 4, 10, 1, 16};
    cfg.dram.channels = 1;
    cfg.mask.epochCycles = 1000;
    return cfg;
}

TEST(EdgeCases, OneCoreOneWarp)
{
    GpuConfig cfg = tinyGpu();
    cfg.numCores = 1;
    cfg.warpsPerCore = 1;
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}});
    gpu.run(20000);
    EXPECT_GT(gpu.appInstructions(0), 100u);
}

TEST(EdgeCases, SingleWalkerThreadSerializesWalks)
{
    GpuConfig cfg = tinyGpu();
    cfg.walker.maxConcurrentWalks = 1;
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}});
    gpu.run(30000);
    const GpuStats stats = gpu.collect();
    EXPECT_GT(stats.walks, 0u);
    EXPECT_LE(stats.concurrentWalks.maxVal, 1.0);
    EXPECT_GT(gpu.appInstructions(0), 0u);
}

TEST(EdgeCases, TinyTlbMshrForcesRetriesButProgresses)
{
    GpuConfig cfg = tinyGpu();
    cfg.l2Tlb.mshrs = 2;
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}, AppDesc{&bench}});
    gpu.run(30000);
    EXPECT_GT(gpu.appInstructions(0), 0u);
    EXPECT_GT(gpu.appInstructions(1), 0u);
    EXPECT_GT(gpu.collect().walks, 0u);
}

TEST(EdgeCases, TinyL2MshrForcesRetriesButProgresses)
{
    GpuConfig cfg = tinyGpu();
    cfg.l2.mshrs = 2;
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}});
    gpu.run(30000);
    EXPECT_GT(gpu.appInstructions(0), 0u);
}

TEST(EdgeCases, TinyDramQueuesForceRetriesButProgress)
{
    GpuConfig cfg = tinyGpu();
    cfg.dram.queueEntries = 2;
    cfg.mask.goldenQueueEntries = 1;
    cfg.mask.silverQueueEntries = 1;
    cfg.mask.normalQueueEntries = 2;
    const BenchmarkParams bench = stressBench();
    for (const DesignPoint point :
         {DesignPoint::SharedTlb, DesignPoint::Mask}) {
        Gpu gpu(applyDesignPoint(cfg, point),
                {AppDesc{&bench}, AppDesc{&bench}});
        gpu.run(30000);
        EXPECT_GT(gpu.appInstructions(0), 0u)
            << designPointName(point);
    }
}

TEST(EdgeCases, MinimalWorkingSet)
{
    GpuConfig cfg = tinyGpu();
    BenchmarkParams bench = stressBench();
    bench.hotPages = 0;
    bench.hotFraction = 0.0;
    bench.coldPages = 1;
    Gpu gpu(cfg, {AppDesc{&bench}});
    gpu.run(10000);
    EXPECT_GT(gpu.appInstructions(0), 0u);
    EXPECT_EQ(gpu.pageTable(0).mappedPages(), 1u);
}

TEST(EdgeCases, DivergenceIsCappedAtMaxParts)
{
    GpuConfig cfg = tinyGpu();
    BenchmarkParams bench = stressBench();
    bench.memDivergence = 100; // > IssuedAccess::kMaxParts
    Gpu gpu(cfg, {AppDesc{&bench}});
    gpu.run(5000);
    EXPECT_GT(gpu.appInstructions(0), 0u);
}

TEST(EdgeCases, ThreeAppsUnevenShares)
{
    GpuConfig cfg = tinyGpu();
    cfg.numCores = 5;
    cfg.coreShares = {3, 1, 1};
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}, AppDesc{&bench}, AppDesc{&bench}});
    EXPECT_EQ(gpu.coresOf(0).size(), 3u);
    gpu.run(20000);
    EXPECT_GT(gpu.appInstructions(0), gpu.appInstructions(1));
    EXPECT_GT(gpu.appInstructions(2), 0u);
}

TEST(EdgeCases, DrainConservation)
{
    // After draining every core (no new issues), all in-flight
    // requests must eventually complete: nothing leaks, nothing is
    // lost in any queue.
    GpuConfig cfg = tinyGpu();
    const BenchmarkParams bench = stressBench();
    for (const DesignPoint point :
         {DesignPoint::PwCache, DesignPoint::SharedTlb,
          DesignPoint::Mask}) {
        Gpu gpu(applyDesignPoint(cfg, point),
                {AppDesc{&bench}, AppDesc{&bench}});
        gpu.run(10000);
        for (CoreId c = 0; c < gpu.numCores(); ++c)
            gpu.core(c).startDrain();
        int guard = 0;
        bool drained = false;
        while (guard++ < 2000) {
            gpu.run(100);
            drained = true;
            for (CoreId c = 0; c < gpu.numCores(); ++c)
                drained &= gpu.core(c).drained();
            if (drained && gpu.inFlightRequests() == 0)
                break;
        }
        EXPECT_TRUE(drained) << designPointName(point);
        EXPECT_EQ(gpu.inFlightRequests(), 0u)
            << designPointName(point)
            << ": requests leaked in the memory hierarchy";
        EXPECT_EQ(gpu.walker().activeWalks(), 0u)
            << designPointName(point);
        EXPECT_EQ(gpu.tlbMshr().size(), 0u) << designPointName(point);
    }
}

TEST(EdgeCases, RepeatedSwitchingSurvives)
{
    GpuConfig cfg = tinyGpu();
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}, AppDesc{&bench}});
    for (int round = 0; round < 6; ++round) {
        gpu.switchAllCores(static_cast<AppId>(round % 2), 50);
        int guard = 0;
        while (gpu.switchesPending() && guard++ < 1000)
            gpu.run(50);
        EXPECT_FALSE(gpu.switchesPending());
        gpu.run(2000);
    }
    EXPECT_GT(gpu.appInstructions(0) + gpu.appInstructions(1),
              1000u);
}

TEST(EdgeCases, SingleL2TlbPortStillProgresses)
{
    GpuConfig cfg = tinyGpu();
    cfg.l2Tlb.ports = 1;
    cfg.l2Tlb.latency = 40;
    const BenchmarkParams bench = stressBench();
    Gpu gpu(cfg, {AppDesc{&bench}});
    gpu.run(20000);
    EXPECT_GT(gpu.collect().l2Tlb.accesses(), 0u);
}

TEST(EdgeCases, ManyAppsOnFewCores)
{
    GpuConfig cfg = tinyGpu();
    cfg.numCores = 4;
    const BenchmarkParams bench = stressBench();
    std::vector<AppDesc> apps(4, AppDesc{&bench});
    Gpu gpu(cfg, apps);
    gpu.run(20000);
    for (AppId a = 0; a < 4; ++a)
        EXPECT_GT(gpu.appInstructions(a), 0u) << "app " << a;
}

} // namespace
} // namespace mask
