/**
 * @file
 * Hardening subsystem tests: config validation, structured invariant
 * checks, the forward-progress watchdog, deterministic fault
 * injection (with recovery), and crash-repro write/load/replay.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "cache/mshr.hh"
#include "common/check.hh"
#include "common/memreq.hh"
#include "sim/crash_repro.hh"
#include "sim/gpu.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "tlb/tlb_mshr.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

BenchmarkParams
smallBench(const char *name, std::uint32_t cold,
           std::uint32_t run = 2)
{
    BenchmarkParams p;
    p.name = name;
    p.hotPages = 4;
    p.coldPages = cold;
    p.hotFraction = 0.1;
    p.pageRun = run;
    p.streamFraction = 0.6;
    p.blockWarps = 16;
    p.randWindow = 4;
    p.stepAccesses = 24;
    p.computeMean = 4;
    p.memDivergence = 2;
    p.lineReuse = 0.3;
    return p;
}

// ---------------------------------------------------------------------
// Config validation (satellite: reject malformed configs loudly)
// ---------------------------------------------------------------------

TEST(ConfigValidation, AcceptsAllPresets)
{
    for (const auto name : allArchNames())
        EXPECT_NO_THROW(validateConfig(archByName(name))) << name;
    EXPECT_NO_THROW(validateConfig(smallConfig()));
}

TEST(ConfigValidation, RejectsZeroCacheSize)
{
    GpuConfig cfg = smallConfig();
    cfg.l2.sizeBytes = 0;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
}

TEST(ConfigValidation, RejectsNonPowerOfTwoSetCount)
{
    GpuConfig cfg = smallConfig();
    // 192KB / (128B * 8 ways) = 192 sets: not a power of two.
    cfg.l2.sizeBytes = 192 * 1024;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
}

TEST(ConfigValidation, RejectsZeroEpoch)
{
    GpuConfig cfg = smallConfig();
    cfg.mask.epochCycles = 0;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
}

TEST(ConfigValidation, RejectsZeroTlbEntries)
{
    GpuConfig cfg = smallConfig();
    cfg.l2Tlb.entries = 0;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
}

TEST(ConfigValidation, RejectsBadWalkerDepth)
{
    GpuConfig cfg = smallConfig();
    cfg.walker.levels = 0;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
    cfg.walker.levels = 5;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
}

TEST(ConfigValidation, RejectsBadCoreShares)
{
    GpuConfig cfg = smallConfig();
    cfg.coreShares = {3, 3}; // sums to 6, numCores is 4
    EXPECT_THROW(validateConfig(cfg), ConfigError);
    cfg.coreShares = {4, 0}; // zero share
    EXPECT_THROW(validateConfig(cfg), ConfigError);
    cfg.coreShares = {1, 3};
    EXPECT_NO_THROW(validateConfig(cfg));
}

TEST(ConfigValidation, RejectsBadFaultProbability)
{
    GpuConfig cfg = smallConfig();
    cfg.harden.fault.dramDelayProb = 1.5;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
    cfg.harden.fault.dramDelayProb = -0.1;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
}

TEST(ConfigValidation, RejectsZeroWatchdogAge)
{
    GpuConfig cfg = smallConfig();
    cfg.harden.watchdog.maxAge = 0;
    EXPECT_THROW(validateConfig(cfg), ConfigError);
    cfg.harden.watchdog.enabled = false;
    EXPECT_NO_THROW(validateConfig(cfg));
}

TEST(ConfigValidation, GpuConstructorValidates)
{
    GpuConfig cfg = smallConfig();
    cfg.mask.epochCycles = 0;
    const BenchmarkParams a = smallBench("a", 500);
    EXPECT_THROW(Gpu(cfg, {AppDesc{&a}}), ConfigError);
}

// ---------------------------------------------------------------------
// SIM_CHECK / SimInvariantError units
// ---------------------------------------------------------------------

TEST(SimCheck, ErrorCarriesModuleCycleAndContext)
{
    try {
        SIM_CHECK_CTX(1 == 2, "test.module", Cycle{42},
                      "forced failure",
                      (CheckContext{.reqId = 7, .asid = 1,
                                    .vpn = 0x30}));
        FAIL() << "SIM_CHECK_CTX did not throw";
    } catch (const SimInvariantError &err) {
        EXPECT_EQ(err.module(), "test.module");
        EXPECT_EQ(err.cycle(), 42u);
        EXPECT_NE(err.detail().find("forced failure"),
                  std::string::npos);
        EXPECT_EQ(err.context().reqId, 7u);
        const std::string what = err.what();
        EXPECT_NE(what.find("test.module"), std::string::npos);
        EXPECT_NE(what.find("42"), std::string::npos);
        const std::string diag = err.diagnostic();
        EXPECT_NE(diag.find("forced failure"), std::string::npos);
    }
}

TEST(SimCheck, MshrCompleteWithoutEntryThrows)
{
    MshrTable mshr(4);
    try {
        mshr.complete(0xdead);
        FAIL() << "expected SimInvariantError";
    } catch (const SimInvariantError &err) {
        EXPECT_EQ(err.module(), "cache.mshr");
    }
}

TEST(SimCheck, RequestPoolDoubleReleaseThrows)
{
    RequestPool pool;
    const ReqId id = pool.alloc();
    pool.release(id);
    EXPECT_THROW(pool.release(id), SimInvariantError);
}

TEST(SimCheck, TlbMshrCompleteWithoutEntryThrows)
{
    TlbMshrTable mshr(4);
    EXPECT_THROW(mshr.complete(1, 0x10), SimInvariantError);
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, CleanRunSweepsWithoutTripping)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::Mask);
    cfg.harden.watchdog.sweepInterval = 1000;
    const BenchmarkParams a = smallBench("a", 3000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    EXPECT_NO_THROW(gpu.run(20000));
    const GpuStats stats = gpu.collect();
    EXPECT_GT(stats.watchdogSweeps, 0u);
    EXPECT_GT(stats.watchdogMaxAgeSeen, 0u);
    EXPECT_LE(stats.watchdogMaxAgeSeen, cfg.harden.watchdog.maxAge);
}

TEST(Watchdog, CatchesLostWalkCompletionWithinOneEpoch)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    cfg.harden.watchdog.maxAge = 2000;
    cfg.harden.watchdog.sweepInterval = 500;
    cfg.harden.fault.enabled = true;
    cfg.harden.fault.walkDropProb = 1.0;
    cfg.harden.fault.walkDropRetry = false; // lost forever
    const BenchmarkParams a = smallBench("a", 5000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    try {
        gpu.run(30000);
        FAIL() << "watchdog did not trip on a lost walk";
    } catch (const SimInvariantError &err) {
        EXPECT_EQ(err.module(), "watchdog");
        // Loud failure within one sweep epoch of the age bound.
        EXPECT_LE(err.cycle(), cfg.harden.watchdog.maxAge +
                                   cfg.harden.watchdog.sweepInterval +
                                   10000);
        EXPECT_NE(err.detail().find("stuck"), std::string::npos);
        EXPECT_GT(err.context().age, cfg.harden.watchdog.maxAge);
    }
}

TEST(Watchdog, DisabledWatchdogDoesNotSweep)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    cfg.harden.watchdog.enabled = false;
    const BenchmarkParams a = smallBench("a", 1000);
    Gpu gpu(cfg, {AppDesc{&a}});
    gpu.run(10000);
    EXPECT_EQ(gpu.collect().watchdogSweeps, 0u);
}

// ---------------------------------------------------------------------
// Fault injection: the machine recovers (or fails loudly)
// ---------------------------------------------------------------------

struct FaultRun
{
    std::unique_ptr<Gpu> gpu;
    GpuStats stats;
};

/** Run with faults; expect completion, progress, and clean sweeps. */
FaultRun
runWithFaults(const FaultInjectConfig &fault, DesignPoint point)
{
    GpuConfig cfg = applyDesignPoint(smallConfig(), point);
    cfg.harden.fault = fault;
    cfg.harden.fault.enabled = true;
    cfg.harden.watchdog.sweepInterval = 1000;
    static const BenchmarkParams a = smallBench("a", 3000);
    static const BenchmarkParams b = smallBench("b", 500, 8);
    FaultRun run;
    run.gpu = std::make_unique<Gpu>(
        cfg, std::vector<AppDesc>{AppDesc{&a}, AppDesc{&b}});
    run.gpu->run(8000);
    run.gpu->resetStats();
    run.gpu->run(20000);
    run.stats = run.gpu->collect();
    return run;
}

TEST(FaultInjection, RecoversFromDelayedDramResponses)
{
    FaultInjectConfig fault;
    fault.dramDelayProb = 0.05;
    fault.dramDelayCycles = 400;
    const FaultRun run =
        runWithFaults(fault, DesignPoint::SharedTlb);
    EXPECT_GT(run.gpu->faultInjector().delaysInjected(), 0u);
    EXPECT_GT(run.stats.ipc[0], 0.0);
    EXPECT_GT(run.stats.ipc[1], 0.0);
}

TEST(FaultInjection, RecoversFromDroppedThenRetriedWalks)
{
    FaultInjectConfig fault;
    fault.walkDropProb = 0.25;
    fault.walkDropRetry = true;
    fault.walkRetryDelay = 150;
    const FaultRun run =
        runWithFaults(fault, DesignPoint::SharedTlb);
    EXPECT_GT(run.gpu->faultInjector().dropsInjected(), 0u);
    EXPECT_GT(run.stats.ipc[0], 0.0);
    EXPECT_GT(run.stats.ipc[1], 0.0);
    // Sweeps ran and stayed clean.
    EXPECT_GT(run.stats.watchdogSweeps, 0u);
}

TEST(FaultInjection, RecoversFromPortStalls)
{
    FaultInjectConfig fault;
    fault.portStallProb = 0.02;
    fault.portStallCycles = 12;
    const FaultRun run =
        runWithFaults(fault, DesignPoint::SharedTlb);
    EXPECT_GT(run.gpu->faultInjector().portStallsInjected(), 0u);
    EXPECT_GT(run.stats.ipc[0], 0.0);
}

TEST(FaultInjection, RecoversFromSpuriousShootdowns)
{
    FaultInjectConfig fault;
    fault.shootdownInterval = 1500;
    const FaultRun run = runWithFaults(fault, DesignPoint::Mask);
    EXPECT_GT(run.gpu->faultInjector().shootdownsInjected(), 0u);
    EXPECT_GT(run.stats.ipc[0], 0.0);
    EXPECT_GT(run.stats.ipc[1], 0.0);
}

TEST(FaultInjection, FaultScheduleIsDeterministic)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    cfg.harden.fault.enabled = true;
    cfg.harden.fault.dramDelayProb = 0.05;
    cfg.harden.fault.dramDelayCycles = 300;
    cfg.harden.fault.walkDropProb = 0.1;
    const BenchmarkParams a = smallBench("a", 3000);

    std::uint64_t sig[2];
    for (int rep = 0; rep < 2; ++rep) {
        Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
        gpu.run(15000);
        sig[rep] = gpu.appInstructions(0) * 1000003u +
                   gpu.faultInjector().delaysInjected() * 101u +
                   gpu.faultInjector().dropsInjected();
    }
    EXPECT_EQ(sig[0], sig[1]);
}

TEST(FaultInjection, TranslationsStayCorrectUnderFaults)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    cfg.harden.fault.enabled = true;
    cfg.harden.fault.dramDelayProb = 0.05;
    cfg.harden.fault.dramDelayCycles = 300;
    cfg.harden.fault.walkDropProb = 0.1;
    cfg.harden.fault.walkDropRetry = true;
    cfg.harden.fault.walkRetryDelay = 120;
    cfg.harden.fault.shootdownInterval = 2500;
    const BenchmarkParams a = smallBench("a", 2000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(25000);

    // Every entry the shared TLB serves must agree with the live page
    // table of its address space (ASIDs are 1-based app indices).
    int checked = 0;
    for (AppId app = 0; app < 2; ++app) {
        const Asid asid = static_cast<Asid>(app + 1);
        for (Vpn vpn = 0; vpn < 3000; ++vpn) {
            Pfn cached = kInvalidPfn;
            if (!gpu.sharedTlb().lookup(asid, vpn, &cached))
                continue;
            EXPECT_EQ(cached, gpu.pageTable(app).lookup(vpn))
                << "asid " << asid << " vpn " << vpn;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

// ---------------------------------------------------------------------
// Crash repro: write / load / replay determinism
// ---------------------------------------------------------------------

TEST(CrashRepro, WriteLoadRoundTrip)
{
    CrashRepro repro;
    repro.arch = "integrated";
    repro.design = "MASK";
    repro.benches = {"3DS", "HISTO"};
    repro.seed = 99;
    repro.warmup = 1234;
    repro.measure = 5678;
    repro.harden.watchdog.sweepInterval = 777;
    repro.harden.watchdog.maxAge = 4242;
    repro.harden.fault.enabled = true;
    repro.harden.fault.seed = 3;
    repro.harden.fault.walkDropProb = 0.125;
    repro.harden.fault.walkDropRetry = false;
    repro.failCycle = 31337;
    repro.module = "watchdog";
    repro.detail = "stuck TLB miss with 3 waiting core(s)";

    const std::string path = "round_trip.repro";
    writeRepro(path, repro);
    const CrashRepro loaded = loadRepro(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.arch, repro.arch);
    EXPECT_EQ(loaded.design, repro.design);
    EXPECT_EQ(loaded.benches, repro.benches);
    EXPECT_EQ(loaded.seed, repro.seed);
    EXPECT_EQ(loaded.warmup, repro.warmup);
    EXPECT_EQ(loaded.measure, repro.measure);
    EXPECT_EQ(loaded.harden.watchdog.sweepInterval, 777u);
    EXPECT_EQ(loaded.harden.watchdog.maxAge, 4242u);
    EXPECT_TRUE(loaded.harden.fault.enabled);
    EXPECT_EQ(loaded.harden.fault.seed, 3u);
    EXPECT_DOUBLE_EQ(loaded.harden.fault.walkDropProb, 0.125);
    EXPECT_FALSE(loaded.harden.fault.walkDropRetry);
    EXPECT_EQ(loaded.failCycle, repro.failCycle);
    EXPECT_EQ(loaded.module, repro.module);
    EXPECT_EQ(loaded.detail, repro.detail);
}

TEST(CrashRepro, LoadRejectsUnknownKeys)
{
    const std::string path = "bad_key.repro";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("bench 3DS\nbogus 1\n", f);
    std::fclose(f);
    EXPECT_THROW(loadRepro(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(CrashRepro, TrippedRunWritesReproAndReplaysToSameCycle)
{
    const std::string path = "watchdog_trip.repro";
    ::setenv(kReproFileEnv, path.c_str(), 1);

    // A preset arch (required for name-based replay) with an injected
    // unrecoverable fault: every walk completion is dropped, so the
    // watchdog must trip during the warmup window.
    GpuConfig arch = archByName("integrated");
    arch.harden.watchdog.maxAge = 2000;
    arch.harden.watchdog.sweepInterval = 500;
    arch.harden.fault.enabled = true;
    arch.harden.fault.walkDropProb = 1.0;
    arch.harden.fault.walkDropRetry = false;

    Evaluator eval(RunOptions{6000, 6000});
    Cycle fail_cycle = 0;
    try {
        eval.runShared(arch, DesignPoint::SharedTlb,
                       {"3DS", "HISTO"});
        FAIL() << "expected the watchdog to trip";
    } catch (const SimInvariantError &err) {
        fail_cycle = err.cycle();
        EXPECT_EQ(err.module(), "watchdog");
    }

    const CrashRepro repro = loadRepro(path);
    EXPECT_EQ(repro.arch, "integrated");
    EXPECT_EQ(repro.failCycle, fail_cycle);
    EXPECT_EQ(repro.module, "watchdog");

    const ReplayResult replay = replayRepro(repro);
    EXPECT_TRUE(replay.reproduced);
    EXPECT_TRUE(replay.sameModule);
    EXPECT_TRUE(replay.sameCycle)
        << "recorded cycle " << repro.failCycle << ", replay hit "
        << replay.failCycle;

    std::remove(path.c_str());
    ::unsetenv(kReproFileEnv);
}

} // namespace
} // namespace mask
