/**
 * @file
 * Unit tests for the ASID-tagged TLBs and the TLB MSHRs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tlb/tlb.hh"
#include "tlb/tlb_mshr.hh"

namespace mask {
namespace {

TlbConfig
smallTlb(std::uint32_t entries, std::uint32_t ways)
{
    TlbConfig cfg;
    cfg.entries = entries;
    cfg.ways = ways;
    return cfg;
}

TEST(Tlb, KeyComposition)
{
    EXPECT_EQ(tlbKeyAsid(tlbKey(7, 0x123)), 7);
    EXPECT_EQ(tlbKeyVpn(tlbKey(7, 0x123)), 0x123u);
    EXPECT_NE(tlbKey(1, 100), tlbKey(2, 100));
    EXPECT_NE(tlbKey(1, 100), tlbKey(1, 101));
}

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb(smallTlb(8, 0));
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup(1, 100, &pfn));
    tlb.fill(1, 100, 555);
    EXPECT_TRUE(tlb.lookup(1, 100, &pfn));
    EXPECT_EQ(pfn, 555u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, AsidIsolation)
{
    Tlb tlb(smallTlb(8, 0));
    tlb.fill(1, 100, 10);
    EXPECT_FALSE(tlb.lookup(2, 100))
        << "a translation must never hit across address spaces";
    tlb.fill(2, 100, 20);
    Pfn pfn = 0;
    EXPECT_TRUE(tlb.lookup(1, 100, &pfn));
    EXPECT_EQ(pfn, 10u);
    EXPECT_TRUE(tlb.lookup(2, 100, &pfn));
    EXPECT_EQ(pfn, 20u);
}

TEST(Tlb, FlushAsidOnlyRemovesThatAsid)
{
    Tlb tlb(smallTlb(16, 0));
    for (Vpn v = 0; v < 4; ++v) {
        tlb.fill(1, v, v);
        tlb.fill(2, v, v);
    }
    tlb.flushAsid(1);
    for (Vpn v = 0; v < 4; ++v) {
        EXPECT_FALSE(tlb.probe(1, v));
        EXPECT_TRUE(tlb.probe(2, v));
    }
}

TEST(Tlb, FlushAll)
{
    Tlb tlb(smallTlb(8, 0));
    tlb.fill(1, 1, 1);
    tlb.fill(2, 2, 2);
    tlb.flushAll();
    EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST(Tlb, InvalidateSingleEntry)
{
    Tlb tlb(smallTlb(8, 0));
    tlb.fill(1, 5, 50);
    EXPECT_TRUE(tlb.invalidate(1, 5));
    EXPECT_FALSE(tlb.invalidate(1, 5));
    EXPECT_FALSE(tlb.probe(1, 5));
}

TEST(Tlb, FullyAssociativeCapacityLru)
{
    Tlb tlb(smallTlb(4, 0)); // fully associative, 4 entries
    for (Vpn v = 0; v < 4; ++v)
        tlb.fill(1, v, v);
    tlb.lookup(1, 0); // refresh vpn 0
    tlb.fill(1, 99, 99);
    EXPECT_TRUE(tlb.probe(1, 0));
    EXPECT_FALSE(tlb.probe(1, 1)) << "LRU entry should be evicted";
}

TEST(Tlb, PerAsidStats)
{
    Tlb tlb(smallTlb(8, 0));
    tlb.lookup(1, 1);
    tlb.lookup(2, 1);
    tlb.lookup(2, 2);
    EXPECT_EQ(tlb.statsFor(1).misses, 1u);
    EXPECT_EQ(tlb.statsFor(2).misses, 2u);
}

TEST(Tlb, EpochStatsResetIndependently)
{
    Tlb tlb(smallTlb(8, 0));
    tlb.lookup(1, 1);
    tlb.fill(1, 1, 1);
    tlb.lookup(1, 1);
    EXPECT_EQ(tlb.epochStats().accesses(), 2u);
    tlb.resetEpochStats();
    EXPECT_EQ(tlb.epochStats().accesses(), 0u);
    EXPECT_EQ(tlb.stats().accesses(), 2u) << "cumulative stats survive";
    EXPECT_EQ(tlb.epochStatsFor(1).accesses(), 0u);
}

TEST(Tlb, SetAssociativeUsesVpnIndexBits)
{
    // 16 entries, 4 ways -> 4 sets indexed by low VPN bits.
    Tlb tlb(smallTlb(16, 4));
    // 5 entries mapping to the same set (vpn % 4 == 0) overflow it.
    for (Vpn v = 0; v < 5; ++v)
        tlb.fill(1, v * 4, v);
    int present = 0;
    for (Vpn v = 0; v < 5; ++v)
        present += tlb.probe(1, v * 4);
    EXPECT_EQ(present, 4);
}

// ---------------------------------------------------------------------
// TLB MSHRs
// ---------------------------------------------------------------------

StalledAccess
access(CoreId core, WarpId warp)
{
    StalledAccess a;
    a.core = core;
    a.warp = warp;
    return a;
}

TEST(TlbMshr, AllocateMergeComplete)
{
    TlbMshrTable mshr(8);
    EXPECT_EQ(mshr.allocate(1, 100, 0, access(0, 0), 10),
              TlbMshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.allocate(1, 100, 0, access(1, 5), 20),
              TlbMshrTable::Outcome::Merged);
    EXPECT_TRUE(mshr.has(1, 100));
    EXPECT_EQ(mshr.stalledWarps(), 2u);

    const auto entry = mshr.complete(1, 100);
    EXPECT_EQ(entry.waiters.size(), 2u);
    EXPECT_EQ(entry.firstMissCycle, 10u);
    EXPECT_EQ(entry.maxWarpsStalled, 2u);
    EXPECT_EQ(mshr.stalledWarps(), 0u);
    EXPECT_FALSE(mshr.has(1, 100));
}

TEST(TlbMshr, DistinctAsidsDistinctEntries)
{
    TlbMshrTable mshr(8);
    mshr.allocate(1, 100, 0, access(0, 0), 0);
    EXPECT_EQ(mshr.allocate(2, 100, 1, access(0, 1), 0),
              TlbMshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.size(), 2u);
}

TEST(TlbMshr, FullRejects)
{
    TlbMshrTable mshr(1);
    mshr.allocate(1, 1, 0, access(0, 0), 0);
    EXPECT_EQ(mshr.allocate(1, 2, 0, access(0, 1), 0),
              TlbMshrTable::Outcome::Full);
    // The rejected access must not leak into stall accounting.
    EXPECT_EQ(mshr.stalledWarps(), 1u);
}

TEST(TlbMshr, PerAppStallCounts)
{
    TlbMshrTable mshr(8);
    mshr.allocate(1, 1, 0, access(0, 0), 0);
    mshr.allocate(1, 1, 0, access(0, 1), 0);
    mshr.allocate(2, 2, 1, access(1, 0), 0);
    EXPECT_EQ(mshr.stalledWarpsFor(0), 2u);
    EXPECT_EQ(mshr.stalledWarpsFor(1), 1u);
    mshr.complete(1, 1);
    EXPECT_EQ(mshr.stalledWarpsFor(0), 0u);
    EXPECT_EQ(mshr.stalledWarpsFor(1), 1u);
}

TEST(TlbMshr, WarpsPerMissStatistic)
{
    TlbMshrTable mshr(8);
    mshr.allocate(1, 1, 0, access(0, 0), 0);
    mshr.allocate(1, 1, 0, access(0, 1), 0);
    mshr.allocate(1, 1, 0, access(0, 2), 0);
    mshr.complete(1, 1);
    mshr.allocate(1, 2, 0, access(0, 0), 0);
    mshr.complete(1, 2);
    EXPECT_DOUBLE_EQ(mshr.warpsPerMiss().mean(), 2.0); // (3 + 1) / 2
    EXPECT_DOUBLE_EQ(mshr.warpsPerMissFor(0).mean(), 2.0);
}

} // namespace
} // namespace mask
