/**
 * @file
 * Unit tests for the multi-programmed workload metrics.
 */

#include <gtest/gtest.h>

#include "metrics/metrics.hh"

namespace mask {
namespace {

TEST(Metrics, WeightedSpeedupIdenticalIpc)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({2.0, 3.0}, {2.0, 3.0}), 2.0);
}

TEST(Metrics, WeightedSpeedupHalved)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 1.5}, {2.0, 3.0}), 1.0);
}

TEST(Metrics, WeightedSpeedupZeroAloneIsSafe)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0}, {0.0}), 0.0);
}

TEST(Metrics, IpcThroughputIsSum)
{
    EXPECT_DOUBLE_EQ(ipcThroughput({1.0, 2.5, 0.5}), 4.0);
    EXPECT_DOUBLE_EQ(ipcThroughput({}), 0.0);
}

TEST(Metrics, MaxSlowdownPicksWorstApp)
{
    // App 0 slows 2x, app 1 slows 4x -> unfairness 4.
    EXPECT_DOUBLE_EQ(maxSlowdown({1.0, 0.5}, {2.0, 2.0}), 4.0);
}

TEST(Metrics, MaxSlowdownOneWhenUnchanged)
{
    EXPECT_DOUBLE_EQ(maxSlowdown({2.0, 3.0}, {2.0, 3.0}), 1.0);
}

TEST(Metrics, HarmonicSpeedup)
{
    // Slowdowns 2 and 2 -> harmonic speedup 2 / (2 + 2) = 0.5.
    EXPECT_DOUBLE_EQ(harmonicSpeedup({1.0, 1.0}, {2.0, 2.0}), 0.5);
    EXPECT_DOUBLE_EQ(harmonicSpeedup({2.0}, {2.0}), 1.0);
}

TEST(Metrics, ThreeAppWeightedSpeedup)
{
    EXPECT_NEAR(weightedSpeedup({1.0, 2.0, 3.0}, {2.0, 2.0, 3.0}),
                0.5 + 1.0 + 1.0, 1e-12);
}

} // namespace
} // namespace mask
