/**
 * @file
 * Event-driven main loop equivalence (DESIGN.md §9): the cycle-skipping
 * loop must produce bit-identical simulated results to per-cycle
 * stepping, across design points and with fault injection on or off.
 * Every deterministic GpuStats field is serialized and compared as a
 * string so a mismatch names the diverging field.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "sim/gpu.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

BenchmarkParams
smallBench(const char *name, std::uint32_t cold,
           std::uint32_t run = 2)
{
    BenchmarkParams p;
    p.name = name;
    p.hotPages = 4;
    p.coldPages = cold;
    p.hotFraction = 0.1;
    p.pageRun = run;
    p.streamFraction = 0.6;
    p.blockWarps = 16;
    p.randWindow = 4;
    p.stepAccesses = 24;
    p.computeMean = 4;
    p.memDivergence = 2;
    p.lineReuse = 0.3;
    return p;
}

void
put(std::ostringstream &os, const char *tag, const HitMiss &hm)
{
    os << tag << ':' << hm.hits << '/' << hm.misses << '\n';
}

void
put(std::ostringstream &os, const char *tag, const RunningStat &rs)
{
    os << tag << ':' << rs.count << ',' << std::hexfloat << rs.sum
       << ',' << rs.minVal << ',' << rs.maxVal << std::defaultfloat
       << '\n';
}

/**
 * Serialize every simulated-machine field of GpuStats. Host-side
 * observability (wallSeconds and the skip counters, which measure the
 * loop itself) is deliberately excluded: it is the one place the two
 * loops are allowed to differ.
 */
std::string
statsDump(const GpuStats &s)
{
    std::ostringstream os;
    os << "cycles:" << s.cycles << '\n';
    for (std::size_t a = 0; a < s.instructions.size(); ++a) {
        os << "instr" << a << ':' << s.instructions[a] << ','
           << std::hexfloat << s.ipc[a] << std::defaultfloat << '\n';
    }
    put(os, "l1Tlb", s.l1Tlb);
    put(os, "l2Tlb", s.l2Tlb);
    for (std::size_t a = 0; a < s.l2TlbPerApp.size(); ++a)
        put(os, "l2TlbApp", s.l2TlbPerApp[a]);
    put(os, "bypassCache", s.bypassCache);
    put(os, "pwCache", s.pwCache);
    put(os, "l1d", s.l1d);
    put(os, "l2Data", s.l2Cache[0]);
    put(os, "l2Trans", s.l2Cache[1]);
    for (const HitMiss &hm : s.l2CachePerLevel)
        put(os, "l2Level", hm);
    for (int t = 0; t < 2; ++t) {
        os << "dram" << t << ':' << s.dram.busBusy[t] << ','
           << s.dram.serviced[t] << '\n';
        put(os, "dramLat", s.dram.latency[t]);
    }
    os << "dramRow:" << s.dram.rowHits << ',' << s.dram.rowMisses
       << ',' << s.dram.rowConflicts << ',' << s.dram.enqueueRejects
       << ',' << s.dram.capEscalations << '\n';
    os << "walks:" << s.walks << '\n';
    put(os, "walkLatency", s.walkLatency);
    put(os, "tlbMissLatency", s.tlbMissLatency);
    put(os, "concurrentWalks", s.concurrentWalks);
    for (const RunningStat &rs : s.concurrentWalksPerApp)
        put(os, "concurrentWalksApp", rs);
    put(os, "warpsPerMiss", s.warpsPerMiss);
    for (const RunningStat &rs : s.warpsPerMissPerApp)
        put(os, "warpsPerMissApp", rs);
    put(os, "readyWarps", s.readyWarpsPerCore);
    for (std::uint32_t t : s.tokens)
        os << "tokens:" << t << '\n';
    os << "l2Bypasses:" << s.l2Bypasses << '\n';
    os << "warpStallCycles:" << s.warpStallCycles << '\n';
    os << "watchdog:" << s.watchdogSweeps << ','
       << s.watchdogMaxAgeSeen << '\n';
    os << "faultsInjected:" << s.faultsInjected << '\n';
    os << "pool:" << s.poolPeakLive << ',' << s.poolCapacity << '\n';
    os << "requests:" << s.requests << '\n';
    return os.str();
}

GpuStats
runOnce(GpuConfig cfg, bool skip, bool faults)
{
    cfg.cycleSkip = skip;
    if (faults) {
        cfg.harden.fault.enabled = true;
        cfg.harden.fault.dramDelayProb = 0.01;
        cfg.harden.fault.walkDropProb = 0.005;
        cfg.harden.fault.shootdownInterval = 4000;
    }
    const BenchmarkParams a = smallBench("a", 5000);
    const BenchmarkParams b = smallBench("b", 100, 8);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
    gpu.run(3000);
    gpu.resetStats();
    gpu.run(9000);
    return gpu.collect();
}

class CycleSkipEquivalence
    : public ::testing::TestWithParam<std::tuple<DesignPoint, bool>>
{
};

TEST_P(CycleSkipEquivalence, SkippingLoopMatchesPerCycleLoop)
{
    const DesignPoint point = std::get<0>(GetParam());
    const bool faults = std::get<1>(GetParam());
    const GpuConfig cfg = applyDesignPoint(smallConfig(), point);
    const GpuStats with = runOnce(cfg, true, faults);
    const GpuStats without = runOnce(cfg, false, faults);
    EXPECT_EQ(statsDump(with), statsDump(without));
    // The per-cycle loop must never report a skipped cycle.
    EXPECT_EQ(without.skippedCycles, 0u);
    EXPECT_EQ(without.skipWindows, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, CycleSkipEquivalence,
    ::testing::Combine(::testing::Values(DesignPoint::SharedTlb,
                                         DesignPoint::Mask,
                                         DesignPoint::Ideal),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(designPointName(std::get<0>(info.param))) +
               (std::get<1>(info.param) ? "_faults" : "_clean");
    });

/**
 * A stall-heavy configuration (one warp on one core, long memory
 * round trips) must actually open skip windows — otherwise the
 * equivalence suite above would be comparing two per-cycle loops.
 */
GpuConfig
stallHeavyConfig()
{
    GpuConfig cfg = smallConfig();
    cfg.numCores = 1;
    cfg.warpsPerCore = 1;
    return cfg;
}

BenchmarkParams
stallHeavyBench()
{
    BenchmarkParams p = smallBench("stall", 5000);
    p.blockWarps = 1;
    p.computeMean = 64;
    return p;
}

TEST(CycleSkip, StallHeavyRunActuallySkips)
{
    const BenchmarkParams a = stallHeavyBench();
    Gpu gpu(stallHeavyConfig(), {AppDesc{&a}});
    gpu.run(20000);
    const GpuStats stats = gpu.collect();
    EXPECT_GT(stats.skippedCycles, 0u);
    EXPECT_GT(stats.skipWindows, 0u);
    std::uint64_t histTotal = 0;
    for (const std::uint64_t bucket : stats.skipWindowLog2)
        histTotal += bucket;
    EXPECT_EQ(histTotal, stats.skipWindows);
}

TEST(CycleSkip, EnvKillSwitchForcesPerCycleLoop)
{
    ASSERT_EQ(setenv("MASK_NO_CYCLE_SKIP", "1", 1), 0);
    const BenchmarkParams a = stallHeavyBench();
    Gpu gpu(stallHeavyConfig(), {AppDesc{&a}});
    gpu.run(20000);
    unsetenv("MASK_NO_CYCLE_SKIP");
    const GpuStats stats = gpu.collect();
    EXPECT_EQ(stats.skippedCycles, 0u);
    EXPECT_EQ(stats.skipWindows, 0u);
}

TEST(CycleSkip, FingerprintIgnoresCycleSkip)
{
    GpuConfig on = smallConfig();
    GpuConfig off = smallConfig();
    on.cycleSkip = true;
    off.cycleSkip = false;
    EXPECT_EQ(configFingerprint(on), configFingerprint(off));
}

} // namespace
} // namespace mask
