/**
 * @file
 * Checkpoint/restore tests (DESIGN.md §11): bit-exact round-trips
 * across design points with and without fault injection, the
 * corruption matrix (truncated, bit-flipped, stale-version,
 * wrong-config snapshots must raise SnapshotError — never UB, so this
 * file also runs under the ASan/UBSan build), the periodic checkpoint
 * hook, the MASK_CKPT_* policy plumbing, and the emergency
 * double-buffer the fatal-signal handlers flush.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/config.hh"
#include "sim/gpu.hh"
#include "sim/runner.hh"
#include "sim/snapshot.hh"
#include "sim/sweep_io.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

constexpr Cycle kWarmup = 3000;
constexpr Cycle kMeasure = 6000;

/** Small but complete GPU: 4 cores, 16 warps each (as test_gpu). */
GpuConfig
smallConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

const BenchmarkParams &
benchA()
{
    static const BenchmarkParams p = [] {
        BenchmarkParams q;
        q.name = "snap-a";
        q.hotPages = 4;
        q.coldPages = 5000;
        q.hotFraction = 0.1;
        q.pageRun = 2;
        q.streamFraction = 0.6;
        q.blockWarps = 16;
        q.randWindow = 4;
        q.stepAccesses = 24;
        q.computeMean = 4;
        q.memDivergence = 2;
        q.lineReuse = 0.3;
        return q;
    }();
    return p;
}

const BenchmarkParams &
benchB()
{
    static const BenchmarkParams p = [] {
        BenchmarkParams q = benchA();
        q.name = "snap-b";
        q.coldPages = 100;
        q.pageRun = 8;
        return q;
    }();
    return p;
}

/**
 * Exact textual image of every simulated (non-host-side) GpuStats
 * field, via the journal codec: two stats with equal blobs are
 * bit-identical in everything the determinism guarantee covers.
 */
std::string
statsBlob(const GpuStats &stats)
{
    PairResult r;
    r.stats = stats;
    r.sharedIpc = stats.ipc;
    return encodePairResult(r);
}

std::unique_ptr<Gpu>
makeGpu(const GpuConfig &cfg)
{
    return std::make_unique<Gpu>(
        cfg, std::vector<AppDesc>{AppDesc{&benchA()}, AppDesc{&benchB()}});
}

GpuConfig
configFor(DesignPoint point, bool faults)
{
    GpuConfig cfg = applyDesignPoint(smallConfig(), point);
    if (faults) {
        cfg.harden.fault.enabled = true;
        cfg.harden.fault.seed = 7;
        cfg.harden.fault.dramDelayProb = 0.05;
        cfg.harden.fault.walkDropProb = 0.02;
        cfg.harden.fault.portStallProb = 0.01;
    }
    return cfg;
}

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return data;
}

// ---------------------------------------------------------------------
// Bit-exact round-trips across design points and fault injection
// ---------------------------------------------------------------------

class SnapshotRoundTrip
    : public ::testing::TestWithParam<std::tuple<DesignPoint, bool>>
{
};

TEST_P(SnapshotRoundTrip, MidMeasureRestoreIsBitExact)
{
    const auto [point, faults] = GetParam();
    const GpuConfig cfg = configFor(point, faults);
    const std::uint64_t fp = configFingerprint(cfg);

    // Reference: uninterrupted warmup + measure.
    auto ref = makeGpu(cfg);
    ref->run(kWarmup);
    ref->resetStats();
    ref->run(kMeasure);
    const std::string want = statsBlob(ref->collect());

    // Snapshot halfway through the measured window...
    auto g1 = makeGpu(cfg);
    g1->run(kWarmup);
    g1->resetStats();
    g1->setSnapshotCookie(1);
    g1->run(kMeasure / 2);
    // Unique per parameterization: instances run concurrently under
    // ctest -j and must not clobber each other's snapshot file.
    const std::string path =
        tmpPath(std::string("mask_roundtrip_") + designPointName(point) +
                (faults ? "_f1" : "_f0") + ".snap");
    saveSnapshotFile(path, fp, *g1);

    // ...restore into a FRESH Gpu and finish the window there.
    auto g2 = makeGpu(cfg);
    loadSnapshotFile(path, fp, *g2);
    EXPECT_EQ(g2->now(), kWarmup + kMeasure / 2);
    EXPECT_EQ(g2->snapshotCookie(), 1u);
    g2->run(kMeasure - kMeasure / 2);
    EXPECT_EQ(statsBlob(g2->collect()), want);

    // Serializing g1 must not have perturbed it: continuing the
    // ORIGINAL instance reaches the identical end state.
    g1->run(kMeasure - kMeasure / 2);
    EXPECT_EQ(statsBlob(g1->collect()), want);

    std::remove(path.c_str());
}

TEST_P(SnapshotRoundTrip, MidWarmupRestoreIsBitExact)
{
    const auto [point, faults] = GetParam();
    const GpuConfig cfg = configFor(point, faults);
    const std::uint64_t fp = configFingerprint(cfg);

    auto ref = makeGpu(cfg);
    ref->run(kWarmup);
    ref->resetStats();
    ref->run(kMeasure);
    const std::string want = statsBlob(ref->collect());

    auto g1 = makeGpu(cfg);
    g1->run(kWarmup / 2);
    const std::string image = renderSnapshot(fp, *g1);

    auto g2 = makeGpu(cfg);
    std::uint64_t cycle = 0;
    const std::string_view payload =
        validateSnapshotImage(image, fp, &cycle);
    StateReader reader(payload, cycle);
    g2->deserialize(reader);
    EXPECT_EQ(g2->now(), kWarmup / 2);
    EXPECT_EQ(g2->snapshotCookie(), 0u) << "cookie 0 = warmup phase";
    g2->run(kWarmup - kWarmup / 2);
    g2->resetStats();
    g2->run(kMeasure);
    EXPECT_EQ(statsBlob(g2->collect()), want);
}

/**
 * Derived-index rebuild (DESIGN.md §12): snapshot a run whose
 * scheduler indices are demonstrably populated (tiny L1 MSHR tables
 * keep retries parked; the DRAM request queues stay deep), restore
 * into a fresh instance, and require (a) the restored instance
 * re-serializes to the byte-identical image — the rebuilt key chains
 * and merge-eligibility sets flatten back to exactly the flat
 * arrival-ordered form — and (b) the continued run is bit-exact.
 */
TEST(SnapshotIndexRebuild, PopulatedIndicesRoundTripBitExact)
{
    GpuConfig cfg = configFor(DesignPoint::Mask, false);
    cfg.l1d.mshrs = 2; // saturate: park MSHR-full data retries
    const std::uint64_t fp = configFingerprint(cfg);

    auto ref = makeGpu(cfg);
    ref->run(kWarmup);
    ref->resetStats();
    ref->run(kMeasure);
    const GpuStats ref_stats = ref->collect();
    const std::string want = statsBlob(ref_stats);
    // The retry machinery must have engaged, or this test proves
    // nothing about the indices it claims to cover.
    ASSERT_GT(ref_stats.dataRetryProbes, 0u);
    ASSERT_GT(ref_stats.dramSchedPicks, 0u);

    auto g1 = makeGpu(cfg);
    g1->run(kWarmup);
    g1->resetStats();
    g1->run(kMeasure / 2);
    const std::string image = renderSnapshot(fp, *g1);

    auto g2 = makeGpu(cfg);
    std::uint64_t cycle = 0;
    const std::string_view payload =
        validateSnapshotImage(image, fp, &cycle);
    StateReader reader(payload, cycle);
    g2->deserialize(reader);
    EXPECT_EQ(renderSnapshot(fp, *g2), image)
        << "restored indices do not flatten back to the same bytes";
    g2->run(kMeasure - kMeasure / 2);
    g1->run(kMeasure - kMeasure / 2);
    EXPECT_EQ(statsBlob(g1->collect()), statsBlob(g2->collect()))
        << "restored instance diverges from the instance it was "
           "snapshotted from";
    // Against the continuous run, mask the host-side skip accounting:
    // splitting run() clamps any cycle-skip window that straddles the
    // call boundary, which re-probes and can re-window differently.
    // That changes only how the skipped cycles were *counted*, never
    // the simulated state, and it happens with or without a restore
    // (it reproduces on a plain split run on the pre-index tree too).
    auto maskHostSide = [](GpuStats s) {
        s.skippedCycles = 0;
        s.skipWindows = 0;
        std::fill(s.skipWindowLog2.begin(), s.skipWindowLog2.end(), 0);
        return s;
    };
    EXPECT_EQ(statsBlob(maskHostSide(g1->collect())),
              statsBlob(maskHostSide(ref_stats)))
        << "split-run simulated state diverges from continuous run";
}

INSTANTIATE_TEST_SUITE_P(
    Designs, SnapshotRoundTrip,
    ::testing::Combine(::testing::Values(DesignPoint::SharedTlb,
                                         DesignPoint::Mask,
                                         DesignPoint::Ideal),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(designPointName(std::get<0>(info.param)))
                   .append(std::get<1>(info.param) ? "_faults"
                                                   : "_clean");
    });

// ---------------------------------------------------------------------
// Corruption matrix: every tampered snapshot raises SnapshotError
// ---------------------------------------------------------------------

class SnapshotCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg_ = configFor(DesignPoint::Mask, false);
        fp_ = configFingerprint(cfg_);
        auto gpu = makeGpu(cfg_);
        gpu->run(2500);
        image_ = renderSnapshot(fp_, *gpu);
    }

    /** Expect load of @p image to throw, and return the error. */
    SnapshotError
    expectRejected(const std::string &image,
                   std::uint64_t fp = 0)
    {
        if (fp == 0)
            fp = fp_;
        auto gpu = makeGpu(cfg_);
        try {
            std::uint64_t cycle = SnapshotError::kNoCycle;
            const std::string_view payload =
                validateSnapshotImage(image, fp, &cycle);
            StateReader reader(payload, cycle);
            gpu->deserialize(reader);
        } catch (const SnapshotError &err) {
            return err;
        }
        ADD_FAILURE() << "corrupted snapshot was accepted";
        return SnapshotError("", "", SnapshotError::kNoCycle);
    }

    GpuConfig cfg_;
    std::uint64_t fp_ = 0;
    std::string image_;
};

TEST_F(SnapshotCorruption, IntactImageRestores)
{
    auto gpu = makeGpu(cfg_);
    std::uint64_t cycle = 0;
    const std::string_view payload =
        validateSnapshotImage(image_, fp_, &cycle);
    StateReader reader(payload, cycle);
    gpu->deserialize(reader);
    EXPECT_EQ(gpu->now(), 2500u);
}

TEST_F(SnapshotCorruption, TruncatedPayload)
{
    const SnapshotError err =
        expectRejected(image_.substr(0, image_.size() - 7));
    EXPECT_NE(err.reason().find("truncated"), std::string::npos)
        << err.reason();
    EXPECT_EQ(err.cycle(), 2500u) << "error carries snapshot cycle";
}

TEST_F(SnapshotCorruption, TruncatedBeforeHeaderEnds)
{
    const SnapshotError err = expectRejected(image_.substr(0, 10));
    EXPECT_NE(err.reason().find("header"), std::string::npos)
        << err.reason();
}

TEST_F(SnapshotCorruption, SingleBitFlipInPayload)
{
    std::string bad = image_;
    bad[bad.size() / 2] =
        static_cast<char>(bad[bad.size() / 2] ^ 0x08);
    const SnapshotError err = expectRejected(bad);
    EXPECT_NE(err.reason().find("checksum"), std::string::npos)
        << err.reason();
    EXPECT_EQ(err.cycle(), 2500u);
}

TEST_F(SnapshotCorruption, StaleFormatVersion)
{
    ASSERT_EQ(image_.compare(0, 10, "MASKSNAP 1"), 0);
    std::string bad = image_;
    bad[9] = '9';
    const SnapshotError err = expectRejected(bad);
    EXPECT_NE(err.reason().find("version"), std::string::npos)
        << err.reason();
}

TEST_F(SnapshotCorruption, BadMagic)
{
    std::string bad = image_;
    bad[0] = 'X';
    const SnapshotError err = expectRejected(bad);
    EXPECT_NE(err.reason().find("magic"), std::string::npos)
        << err.reason();
}

TEST_F(SnapshotCorruption, MismatchedConfigFingerprint)
{
    const SnapshotError err = expectRejected(image_, fp_ + 1);
    EXPECT_NE(err.reason().find("fingerprint"), std::string::npos)
        << err.reason();
    EXPECT_EQ(err.cycle(), 2500u)
        << "fingerprint check runs after the cycle is parsed";
}

TEST_F(SnapshotCorruption, ValidChecksumOverTruncatedPayload)
{
    // Corruption that defeats the checksum (here: a rewritten header
    // over a cut payload) must still be caught by the bounds-checked
    // payload decoder, with the failing structural field named.
    const std::size_t nl = image_.find('\n');
    ASSERT_NE(nl, std::string::npos);
    const std::string payload =
        image_.substr(nl + 1, (image_.size() - nl - 1) / 2);
    std::string bad = "MASKSNAP 1 " + std::to_string(fp_) + " 2500 " +
                      std::to_string(payload.size()) + " " +
                      std::to_string(fnv1a64(payload)) + "\n" + payload;
    const SnapshotError err = expectRejected(bad);
    EXPECT_EQ(err.cycle(), 2500u);
    EXPECT_FALSE(err.field().empty())
        << "decoder errors name the last structural field reached";
}

TEST_F(SnapshotCorruption, MissingFile)
{
    auto gpu = makeGpu(cfg_);
    EXPECT_THROW(loadSnapshotFile(tmpPath("does_not_exist.snap"), fp_,
                                  *gpu),
                 SnapshotError);
}

// ---------------------------------------------------------------------
// Periodic checkpoint hook and runWithCheckpoints
// ---------------------------------------------------------------------

TEST(CheckpointHook, FiresOnIntervalAndIsTransparent)
{
    const GpuConfig cfg = configFor(DesignPoint::Mask, false);

    auto plain = makeGpu(cfg);
    plain->run(kWarmup);
    plain->resetStats();
    plain->run(kMeasure);
    const std::string want = statsBlob(plain->collect());

    auto hooked = makeGpu(cfg);
    hooked->run(kWarmup);
    hooked->resetStats();
    // Installed after resetStats so the `calls` counter and the
    // ckptWrites stat (zeroed with the window) cover the same span.
    int calls = 0;
    hooked->setCheckpointHook(512, [&calls](Gpu &) { ++calls; });
    hooked->run(kMeasure);
    const GpuStats stats = hooked->collect();

    EXPECT_GT(calls, 0);
    EXPECT_EQ(static_cast<std::uint64_t>(calls), stats.ckptWrites)
        << "collect() reports checkpoint count (host-side)";
    EXPECT_EQ(statsBlob(stats), want)
        << "checkpointing must not perturb simulated results";
}

TEST(CheckpointHook, DisabledCostsNothingAndNeverFires)
{
    const GpuConfig cfg = configFor(DesignPoint::SharedTlb, false);
    auto gpu = makeGpu(cfg);
    int calls = 0;
    gpu->setCheckpointHook(0, [&calls](Gpu &) { ++calls; });
    gpu->run(4000);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(gpu->collect().ckptWrites, 0u);
}

TEST(RunWithCheckpoints, EnabledMatchesDisabledBitExactly)
{
    const GpuConfig cfg = configFor(DesignPoint::Mask, false);
    const std::uint64_t fp = configFingerprint(cfg);
    const auto make = [&cfg]() { return makeGpu(cfg); };

    CheckpointPolicy off;
    const std::string want = statsBlob(runWithCheckpoints(
        make, off, fp, std::string(), kWarmup, kMeasure));

    CheckpointPolicy on;
    on.intervalCycles = 1024;
    on.dir = ::testing::TempDir();
    const std::string path = tmpPath("mask_rwc.snap");
    const GpuStats stats =
        runWithCheckpoints(make, on, fp, path, kWarmup, kMeasure);
    EXPECT_EQ(statsBlob(stats), want);
    EXPECT_GT(stats.ckptWrites, 0u);
    EXPECT_GT(stats.ckptBytes, 0u);
    // keep=false: snapshot files are cleaned up on success.
    std::ifstream left(path);
    EXPECT_FALSE(static_cast<bool>(left))
        << "checkpoint not removed after successful run";
}

TEST(RunWithCheckpoints, ResumesFromKeptCheckpoint)
{
    const GpuConfig cfg = configFor(DesignPoint::Mask, false);
    const std::uint64_t fp = configFingerprint(cfg);
    const auto make = [&cfg]() { return makeGpu(cfg); };
    const std::string path = tmpPath("mask_rwc_keep.snap");
    std::remove(path.c_str());

    CheckpointPolicy keep;
    keep.intervalCycles = 1024;
    keep.dir = ::testing::TempDir();
    keep.keep = true;

    const std::string want = statsBlob(runWithCheckpoints(
        make, keep, fp, path, kWarmup, kMeasure));
    // keep=true leaves the newest periodic snapshot behind...
    const std::uint64_t cycle = snapshotFileCycle(path, fp);
    EXPECT_GT(cycle, kWarmup);
    EXPECT_LE(cycle, kWarmup + kMeasure);

    // ...and a re-run warm-starts from it, bit-identically.
    EXPECT_EQ(statsBlob(runWithCheckpoints(make, keep, fp, path,
                                           kWarmup, kMeasure)),
              want);

    // A corrupted checkpoint is rejected and the run falls back to
    // cycle 0 — same result, no crash.
    std::string data = readFile(path);
    data[data.size() - 3] =
        static_cast<char>(data[data.size() - 3] ^ 0x01);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
    }
    EXPECT_EQ(statsBlob(runWithCheckpoints(make, keep, fp, path,
                                           kWarmup, kMeasure)),
              want);

    std::remove(path.c_str());
    std::remove((path + ".sig").c_str());
}

// ---------------------------------------------------------------------
// MASK_CKPT_* policy plumbing
// ---------------------------------------------------------------------

/** setenv/unsetenv guard restoring prior values on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *prev = std::getenv(name)) {
            had_ = true;
            prev_ = prev;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), prev_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string prev_;
    bool had_ = false;
};

TEST(CheckpointPolicy, FromEnv)
{
    {
        ScopedEnv interval("MASK_CKPT_INTERVAL_CYCLES", nullptr);
        ScopedEnv dir("MASK_CKPT_DIR", nullptr);
        ScopedEnv keep("MASK_CKPT_KEEP", nullptr);
        const CheckpointPolicy policy = checkpointPolicyFromEnv();
        EXPECT_FALSE(policy.enabled());
        EXPECT_EQ(policy.dir, ".");
        EXPECT_FALSE(policy.keep);
    }
    {
        ScopedEnv interval("MASK_CKPT_INTERVAL_CYCLES", "250000");
        ScopedEnv dir("MASK_CKPT_DIR", "/tmp/ckpts");
        ScopedEnv keep("MASK_CKPT_KEEP", "1");
        const CheckpointPolicy policy = checkpointPolicyFromEnv();
        EXPECT_TRUE(policy.enabled());
        EXPECT_EQ(policy.intervalCycles, 250000u);
        EXPECT_EQ(policy.dir, "/tmp/ckpts");
        EXPECT_TRUE(policy.keep);
    }
    {
        // Garbage interval is ignored, not UB.
        ScopedEnv interval("MASK_CKPT_INTERVAL_CYCLES", "10k");
        EXPECT_FALSE(checkpointPolicyFromEnv().enabled());
    }
}

TEST(CheckpointPolicy, PathIsDeterministicAndSanitized)
{
    CheckpointPolicy policy;
    policy.dir = "/tmp/snapdir";
    const std::string path = checkpointPath(
        policy, 0x1234abcdu, {"3dmm", "weird name/x"}, 5000, 20000);
    EXPECT_EQ(path, "/tmp/snapdir/ckpt_000000001234abcd_3dmm_"
                    "weird-name-x_5000_20000.snap");
    // Same job -> same file, so a rerun after a kill finds it.
    EXPECT_EQ(path,
              checkpointPath(policy, 0x1234abcdu,
                             {"3dmm", "weird name/x"}, 5000, 20000));
}

// ---------------------------------------------------------------------
// Emergency snapshots
// ---------------------------------------------------------------------

TEST(EmergencySnapshot, PublishThenFlushWritesLastImage)
{
    const GpuConfig cfg = configFor(DesignPoint::SharedTlb, false);
    const std::uint64_t fp = configFingerprint(cfg);
    auto gpu = makeGpu(cfg);
    gpu->run(1500);
    const std::string image = renderSnapshot(fp, *gpu);

    const std::string path = tmpPath("mask_emergency.sig");
    std::remove(path.c_str());
    {
        ScopedEmergencySnapshot armed(path);
        // Nothing published yet: flush is a no-op.
        flushEmergencySnapshotFromSignal();
        std::ifstream missing(path);
        EXPECT_FALSE(static_cast<bool>(missing));

        publishEmergencySnapshot("stale image");
        publishEmergencySnapshot(image);
        flushEmergencySnapshotFromSignal();
        EXPECT_EQ(readFile(path), image)
            << "flush writes the newest published image";
    }
    // The flushed image is a loadable snapshot.
    auto fresh = makeGpu(cfg);
    loadSnapshotFile(path, fp, *fresh);
    EXPECT_EQ(fresh->now(), 1500u);
    std::remove(path.c_str());

    // Outside the scope the sink is disarmed: publish+flush write
    // nothing.
    publishEmergencySnapshot(image);
    flushEmergencySnapshotFromSignal();
    std::ifstream after(path);
    EXPECT_FALSE(static_cast<bool>(after));
}

TEST(EmergencySnapshot, ScopesNest)
{
    const std::string outer_path = tmpPath("mask_emergency_outer.sig");
    const std::string inner_path = tmpPath("mask_emergency_inner.sig");
    std::remove(outer_path.c_str());
    std::remove(inner_path.c_str());

    ScopedEmergencySnapshot outer(outer_path);
    publishEmergencySnapshot("outer image");
    {
        ScopedEmergencySnapshot inner(inner_path);
        publishEmergencySnapshot("inner image");
        flushEmergencySnapshotFromSignal();
        EXPECT_EQ(readFile(inner_path), "inner image");
    }
    // Inner scope exit restored the outer path but cleared the ready
    // buffer (the outer image was published before the inner scope and
    // may since have been reused): a fresh publish is required.
    publishEmergencySnapshot("outer image again");
    flushEmergencySnapshotFromSignal();
    EXPECT_EQ(readFile(outer_path), "outer image again");

    std::remove(outer_path.c_str());
    std::remove(inner_path.c_str());
}

} // namespace
} // namespace mask
