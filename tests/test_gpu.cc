/**
 * @file
 * Integration tests: the full GPU model, end-to-end, across all
 * design points. Uses small configurations so each test runs in
 * milliseconds.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "workload/suite.hh"

namespace mask {
namespace {

/** Small but complete GPU: 4 cores, 16 warps each. */
GpuConfig
smallConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.warpsPerCore = 16;
    cfg.l2 = CacheConfig{256 * 1024, 128, 8, 10, 4, 2, 64};
    cfg.l2Tlb = TlbConfig{128, 8, 10, 2, 64};
    cfg.dram.channels = 2;
    cfg.mask.epochCycles = 2000;
    return cfg;
}

BenchmarkParams
smallBench(const char *name, std::uint32_t cold,
           std::uint32_t run = 2)
{
    BenchmarkParams p;
    p.name = name;
    p.hotPages = 4;
    p.coldPages = cold;
    p.hotFraction = 0.1;
    p.pageRun = run;
    p.streamFraction = 0.6;
    p.blockWarps = 16;
    p.randWindow = 4;
    p.stepAccesses = 24;
    p.computeMean = 4;
    p.memDivergence = 2;
    p.lineReuse = 0.3;
    return p;
}

class GpuDesignSweep : public ::testing::TestWithParam<DesignPoint>
{
};

TEST_P(GpuDesignSweep, RunsAndMakesProgress)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), GetParam());
    const BenchmarkParams a = smallBench("a", 5000);
    const BenchmarkParams b = smallBench("b", 100, 8);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&b}});
    gpu.run(5000);
    gpu.resetStats();
    gpu.run(15000);
    const GpuStats stats = gpu.collect();
    EXPECT_GT(stats.ipc[0], 0.0);
    EXPECT_GT(stats.ipc[1], 0.0);
    EXPECT_LE(stats.ipc[0] + stats.ipc[1],
              static_cast<double>(cfg.numCores) + 1e-9);
    EXPECT_EQ(stats.cycles, 15000u);
}

TEST_P(GpuDesignSweep, DeterministicAcrossRuns)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), GetParam());
    const BenchmarkParams a = smallBench("a", 5000);
    std::vector<std::uint64_t> instr;
    for (int rep = 0; rep < 2; ++rep) {
        Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
        gpu.run(12000);
        instr.push_back(gpu.appInstructions(0) +
                        (gpu.appInstructions(1) << 20));
    }
    EXPECT_EQ(instr[0], instr[1]);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, GpuDesignSweep,
                         ::testing::ValuesIn(kAllDesignPoints),
                         [](const auto &info) {
                             std::string name =
                                 designPointName(info.param);
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(Gpu, IdealHasNoTranslationActivity)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::Ideal);
    const BenchmarkParams a = smallBench("a", 5000);
    Gpu gpu(cfg, {AppDesc{&a}});
    gpu.run(20000);
    const GpuStats stats = gpu.collect();
    EXPECT_EQ(stats.walks, 0u);
    EXPECT_EQ(stats.l1Tlb.accesses(), 0u);
    EXPECT_EQ(stats.l2Tlb.accesses(), 0u);
    EXPECT_EQ(stats.dram.serviced[1], 0u);
}

TEST(Gpu, SharedTlbDesignWalksOnBigWorkingSets)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 50000);
    Gpu gpu(cfg, {AppDesc{&a}});
    gpu.run(20000);
    const GpuStats stats = gpu.collect();
    EXPECT_GT(stats.walks, 0u);
    EXPECT_GT(stats.l2Tlb.accesses(), 0u);
    EXPECT_GT(stats.l2Cache[1].accesses() + stats.dram.serviced[1],
              0u);
    EXPECT_GT(stats.walkLatency.mean(), 0.0);
}

TEST(Gpu, PwCacheDesignUsesWalkCacheNotSharedTlb)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::PwCache);
    const BenchmarkParams a = smallBench("a", 50000);
    Gpu gpu(cfg, {AppDesc{&a}});
    gpu.run(20000);
    const GpuStats stats = gpu.collect();
    EXPECT_EQ(stats.l2Tlb.accesses(), 0u);
    EXPECT_GT(stats.pwCache.accesses(), 0u);
    EXPECT_GT(stats.walks, 0u);
}

TEST(Gpu, MaskUsesBypassCacheAfterWarmup)
{
    GpuConfig cfg = applyDesignPoint(smallConfig(), DesignPoint::Mask);
    const BenchmarkParams a = smallBench("a", 50000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(40000); // several epochs
    const GpuStats stats = gpu.collect();
    EXPECT_GT(stats.bypassCache.accesses(), 0u)
        << "token-less fills should populate the bypass cache";
}

TEST(Gpu, AddressSpacesGetDisjointPhysicalFrames)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 1000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(10000);
    // Identical benchmarks touch identical VPNs; their frames must
    // never collide.
    PageTable &pt0 = gpu.pageTable(0);
    PageTable &pt1 = gpu.pageTable(1);
    int checked = 0;
    for (Vpn vpn = 0; vpn < 2000; ++vpn) {
        const Pfn f0 = pt0.lookup(vpn);
        const Pfn f1 = pt1.lookup(vpn);
        if (f0 != kInvalidPfn && f1 != kInvalidPfn) {
            EXPECT_NE(f0, f1) << "vpn " << vpn;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(Gpu, TlbNeverReturnsWrongFrame)
{
    // End-to-end translation correctness: every entry the shared TLB
    // holds must match the page table.
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 3000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(15000);
    for (AppId app = 0; app < 2; ++app) {
        PageTable &pt = gpu.pageTable(app);
        const Asid asid = static_cast<Asid>(app + 1);
        for (Vpn vpn = 0; vpn < 4000; ++vpn) {
            Pfn cached = kInvalidPfn;
            // probe() has no side effects; use the L2 TLB directly.
            if (gpu.sharedTlb().probe(asid, vpn)) {
                gpu.sharedTlb().lookup(asid, vpn, &cached);
                EXPECT_EQ(cached, pt.lookup(vpn)) << "vpn " << vpn;
            }
        }
    }
}

TEST(Gpu, InFlightRequestsStayBounded)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 50000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    const std::size_t warps =
        std::size_t{cfg.numCores} * cfg.warpsPerCore;
    for (int step = 0; step < 40; ++step) {
        gpu.run(500);
        // Each warp has at most memDivergence accesses below L1 plus
        // in-flight walk reads (bounded by walker slots x levels).
        EXPECT_LE(gpu.inFlightRequests(),
                  warps * a.memDivergence +
                      cfg.walker.maxConcurrentWalks * 2);
    }
}

TEST(Gpu, ResetStatsZeroesWindow)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 5000);
    Gpu gpu(cfg, {AppDesc{&a}});
    gpu.run(5000);
    gpu.resetStats();
    const GpuStats stats = gpu.collect();
    EXPECT_EQ(stats.cycles, 0u);
    EXPECT_EQ(stats.instructions[0], 0u);
    EXPECT_EQ(stats.l1Tlb.accesses(), 0u);
    EXPECT_EQ(stats.dram.serviced[0], 0u);
}

TEST(Gpu, CoreShareOverridesArePossible)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    cfg.coreShares = {3, 1};
    const BenchmarkParams a = smallBench("a", 500);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    EXPECT_EQ(gpu.coresOf(0).size(), 3u);
    EXPECT_EQ(gpu.coresOf(1).size(), 1u);
}

TEST(Gpu, StaticPartitioningIsolatesDramChannels)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::Static);
    const BenchmarkParams a = smallBench("a", 5000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(10000);
    // With 2 channels and 2 apps, each app owns one channel; both
    // channels should see traffic.
    EXPECT_GT(gpu.dram().channel(0).stats().serviced[0], 0u);
    EXPECT_GT(gpu.dram().channel(1).stats().serviced[0], 0u);
}

TEST(Gpu, TimeMultiplexSwitchDrainsAndSwitches)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 5000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(3000);
    gpu.switchAllCores(1, 100);
    EXPECT_TRUE(gpu.switchesPending());
    int guard = 0;
    while (gpu.switchesPending() && guard++ < 200)
        gpu.run(100);
    EXPECT_FALSE(gpu.switchesPending());
    for (CoreId c = 0; c < gpu.numCores(); ++c)
        EXPECT_EQ(gpu.core(c).app(), 1);

    // The switched GPU keeps making progress for app 1 only.
    const std::uint64_t before0 = gpu.appInstructions(0);
    const std::uint64_t before1 = gpu.appInstructions(1);
    gpu.run(5000);
    EXPECT_EQ(gpu.appInstructions(0), before0);
    EXPECT_GT(gpu.appInstructions(1), before1);
}

TEST(Gpu, TokensRespondToEpochs)
{
    GpuConfig cfg = applyDesignPoint(smallConfig(), DesignPoint::Mask);
    cfg.mask.epochCycles = 1000;
    const BenchmarkParams a = smallBench("a", 50000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(30000);
    EXPECT_GT(gpu.tokenManager().epochsDone(), 10u);
}

TEST(Gpu, TlbShootdownRemovesOnlyTargetAsid)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    const BenchmarkParams a = smallBench("a", 300, 8);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(15000);
    ASSERT_GT(gpu.sharedTlb().occupancy(), 0u);

    gpu.tlbShootdown(1); // app 0's address space
    std::size_t asid1 = 0, asid2 = 0;
    for (Vpn vpn = 0; vpn < 400; ++vpn) {
        asid1 += gpu.sharedTlb().probe(1, vpn);
        asid2 += gpu.sharedTlb().probe(2, vpn);
    }
    EXPECT_EQ(asid1, 0u);
    EXPECT_GT(asid2, 0u)
        << "shootdown of ASID 1 must not disturb ASID 2";

    // The machine keeps running correctly afterwards.
    const std::uint64_t before = gpu.appInstructions(0);
    gpu.run(5000);
    EXPECT_GT(gpu.appInstructions(0), before);
}

TEST(Gpu, ShootdownDuringPendingWalksIsSafe)
{
    const GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::Mask);
    const BenchmarkParams a = smallBench("a", 50000);
    Gpu gpu(cfg, {AppDesc{&a}, AppDesc{&a}});
    gpu.run(7000);
    for (int i = 0; i < 20; ++i) {
        gpu.run(237);
        gpu.tlbShootdown(static_cast<Asid>(1 + i % 2));
    }
    gpu.run(5000);
    EXPECT_GT(gpu.appInstructions(0), 0u);
    EXPECT_GT(gpu.appInstructions(1), 0u);
}

TEST(Gpu, LargePageConfigRuns)
{
    GpuConfig cfg =
        applyDesignPoint(smallConfig(), DesignPoint::SharedTlb);
    cfg.pageBits = 21;
    const BenchmarkParams a = smallBench("a", 2000);
    Gpu gpu(cfg, {AppDesc{&a}});
    gpu.run(10000);
    EXPECT_GT(gpu.appInstructions(0), 0u);
}

} // namespace
} // namespace mask
