/**
 * @file
 * Unit and property tests for the set-associative cache directory.
 */

#include <algorithm>
#include <list>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace mask {
namespace {

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache(4, 2);
    EXPECT_FALSE(cache.lookup(100));
    cache.fill(100, 7);
    std::uint64_t payload = 0;
    EXPECT_TRUE(cache.lookup(100, &payload));
    EXPECT_EQ(payload, 7u);
}

TEST(SetAssocCache, ContainsDoesNotTouchLru)
{
    SetAssocCache cache(1, 2);
    cache.fill(0);
    cache.fill(1);
    // 0 is LRU; contains() must not promote it.
    EXPECT_TRUE(cache.contains(0));
    cache.fill(2); // evicts 0 if contains didn't promote
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
}

TEST(SetAssocCache, LruEvictionOrder)
{
    SetAssocCache cache(1, 4);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.fill(k);
    cache.lookup(0); // promote 0 to MRU
    std::uint64_t evicted = ~0ull;
    EXPECT_TRUE(cache.fill(100, 0, &evicted));
    EXPECT_EQ(evicted, 1u); // 1 is now LRU
    EXPECT_TRUE(cache.contains(0));
}

TEST(SetAssocCache, LruDepth)
{
    SetAssocCache cache(1, 4);
    cache.fill(10);
    cache.fill(20);
    cache.fill(30);
    EXPECT_EQ(cache.lruDepth(30), 0);
    EXPECT_EQ(cache.lruDepth(20), 1);
    EXPECT_EQ(cache.lruDepth(10), 2);
    EXPECT_EQ(cache.lruDepth(99), -1);
    cache.lookup(10);
    EXPECT_EQ(cache.lruDepth(10), 0);
}

TEST(SetAssocCache, SetIndexingSeparatesSets)
{
    SetAssocCache cache(4, 1);
    cache.fill(0); // set 0
    cache.fill(1); // set 1
    cache.fill(2); // set 2
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    cache.fill(4); // set 0 again -> evicts 0
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(4));
}

TEST(SetAssocCache, RefillUpdatesPayloadInPlace)
{
    SetAssocCache cache(1, 2);
    cache.fill(5, 1);
    EXPECT_FALSE(cache.fill(5, 2)); // no eviction
    std::uint64_t payload = 0;
    cache.lookup(5, &payload);
    EXPECT_EQ(payload, 2u);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(SetAssocCache, FillRangeConfinesVictims)
{
    SetAssocCache cache(1, 4);
    // App 0 owns ways [0,2), app 1 owns ways [2,4).
    cache.fillRange(10, 0, 0, 2);
    cache.fillRange(11, 0, 0, 2);
    cache.fillRange(20, 0, 2, 4);
    cache.fillRange(21, 0, 2, 4);
    // A new app-0 fill must evict an app-0 key, never app-1 keys.
    std::uint64_t evicted = ~0ull;
    EXPECT_TRUE(cache.fillRange(12, 0, 0, 2, &evicted));
    EXPECT_TRUE(evicted == 10 || evicted == 11);
    EXPECT_TRUE(cache.contains(20));
    EXPECT_TRUE(cache.contains(21));
}

TEST(SetAssocCache, EraseAndFlush)
{
    SetAssocCache cache(2, 2);
    cache.fill(1);
    cache.fill(2);
    EXPECT_TRUE(cache.erase(1));
    EXPECT_FALSE(cache.erase(1));
    EXPECT_EQ(cache.occupancy(), 1u);
    cache.flush();
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_FALSE(cache.contains(2));
}

TEST(SetAssocCache, FlushIf)
{
    SetAssocCache cache(1, 8);
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.fill(k);
    cache.flushIf([](std::uint64_t k) { return k % 2 == 0; });
    EXPECT_EQ(cache.occupancy(), 4u);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
}

TEST(SetAssocCache, OccupancyTracksFills)
{
    SetAssocCache cache(2, 2);
    EXPECT_EQ(cache.occupancy(), 0u);
    cache.fill(0);
    cache.fill(2); // same set (set 0)
    cache.fill(4); // evicts
    EXPECT_EQ(cache.occupancy(), 2u);
    cache.fill(1);
    EXPECT_EQ(cache.occupancy(), 3u);
}

/**
 * Property test: the cache must agree with a reference model (a map
 * of per-set LRU lists) under a random operation mix.
 */
struct CacheShape
{
    std::uint32_t sets;
    std::uint32_t ways;
};

class CacheProperty : public ::testing::TestWithParam<CacheShape>
{
};

TEST_P(CacheProperty, MatchesReferenceLruModel)
{
    const auto [sets, ways] = GetParam();
    SetAssocCache cache(sets, ways);
    // Reference: per set, MRU-first list of keys.
    std::vector<std::list<std::uint64_t>> ref(sets);
    Rng rng(1234 + sets * 31 + ways);

    auto set_of = [&](std::uint64_t key) { return key & (sets - 1); };
    auto ref_find = [&](std::uint64_t key) {
        auto &lst = ref[set_of(key)];
        return std::find(lst.begin(), lst.end(), key);
    };

    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t key = rng.below(sets * ways * 3);
        const std::uint64_t action = rng.below(10);
        auto &lst = ref[set_of(key)];
        if (action < 5) { // lookup
            auto it = ref_find(key);
            const bool ref_hit = it != lst.end();
            EXPECT_EQ(cache.lookup(key), ref_hit);
            if (ref_hit) {
                lst.erase(it);
                lst.push_front(key);
            }
        } else if (action < 9) { // fill
            cache.fill(key);
            auto it = ref_find(key);
            if (it != lst.end())
                lst.erase(it);
            else if (lst.size() == ways)
                lst.pop_back();
            lst.push_front(key);
        } else { // erase
            auto it = ref_find(key);
            EXPECT_EQ(cache.erase(key), it != lst.end());
            if (it != lst.end())
                lst.erase(it);
        }
    }

    // Final state agrees exactly.
    std::size_t ref_total = 0;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint64_t key : ref[s]) {
            EXPECT_TRUE(cache.contains(key))
                << "missing key " << key << " in set " << s;
        }
        ref_total += ref[s].size();
    }
    EXPECT_EQ(cache.occupancy(), ref_total);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheProperty,
    ::testing::Values(CacheShape{1, 1}, CacheShape{1, 4},
                      CacheShape{1, 32}, CacheShape{4, 2},
                      CacheShape{16, 4}, CacheShape{64, 16},
                      CacheShape{128, 1}));

} // namespace
} // namespace mask
